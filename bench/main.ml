(* The evaluation harness: regenerates every table and figure of the
   paper (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
   for recorded paper-vs-measured results).

     dune exec bench/main.exe             -- everything
     dune exec bench/main.exe -- --only e5,e6
     dune exec bench/main.exe -- --list

   Wall-clock here is simulation time; all reported performance numbers
   come from the virtual clock. *)

module H = Hostos
module Clock = H.Clock
module Sfs = Blockdev.Simplefs
module Guest = Linux_guest.Guest
module KV = Linux_guest.Kernel_version
module Page_cache = Linux_guest.Page_cache
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module Fio = Workloads.Fio

let section title = Printf.printf "\n== %s ==\n%!" title

(* ------------------------------------------------------------------ *)
(* Environment builders                                                 *)
(* ------------------------------------------------------------------ *)

let rootfs_blocks = 2048

(* A guest disk: SimpleFS root in the first [rootfs_blocks] blocks, the
   rest of the device left as scratch space for benchmarks. *)
let make_disk ?(blocks = 16384) h =
  let backend = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks () in
  let rootdev =
    Blockdev.Dev.sub (Blockdev.Backend.dev backend) ~first_block:0
      ~blocks:rootfs_blocks
  in
  let fs =
    match Sfs.mkfs rootdev () with Ok f -> f | Error _ -> failwith "mkfs"
  in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string "bench-vm\n"));
  Sfs.sync fs;
  backend

let boot_qemu ?(seed = 100) ?(profile = Profile.qemu) ?disable_seccomp
    ?ninep_root ?(blocks = 16384) () =
  let h = H.Host.create ~seed () in
  let disk = make_disk ~blocks h in
  let vmm = Vmm.create h ~profile ~disk ?disable_seccomp ?ninep_root () in
  let g = Vmm.boot vmm ~version:KV.V5_10 in
  (h, vmm, g)

(* A roomy VMSH file-system image (the vmsh-blk backing store); charged
   against the host clock like any other disk. *)
let vmsh_image ?clock ?(extra_blocks = 14336) () =
  match
    Blockdev.Image.pack ?clock ~extra_blocks
      [ Blockdev.Image.file "/bin/busybox" 600000 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith ("vmsh image: " ^ H.Errno.show e)

let attach ?(config = Vmsh.Attach.Config.make ()) ?image (h, vmm, _g) =
  let fs_image =
    match image with
    | Some i -> i
    | None -> vmsh_image ~clock:h.H.Host.clock ()
  in
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm) ~fs_image ~config
      ~pump:(fun () -> Vmm.run_until_idle vmm)
      ()
  with
  | Ok s -> s
  | Error e -> failwith ("attach: " ^ Vmsh.Vmsh_error.to_string e)

(* Scratch file system over the tail of the qemu-blk disk. *)
let scratch_fs_qemu vmm g =
  let drv = Guest.boot_blk_exn g in
  let raw = Virtio.Blk.Driver.to_blockdev drv in
  let scratch =
    Blockdev.Dev.sub raw ~first_block:rootfs_blocks
      ~blocks:(raw.Blockdev.Dev.blocks - rootfs_blocks)
  in
  let cache = Guest.page_cache g in
  let bulk ~first ~count =
    Virtio.Blk.Driver.read drv
      ~sector:((first + rootfs_blocks) * Virtio.Blk.sectors_per_block)
      ~len:(count * Blockdev.Dev.block_size)
  in
  let cached = Page_cache.wrap ~bulk_read:bulk cache ~dev_id:11 scratch in
  let fs =
    Vmm.in_guest vmm (fun () ->
        match Sfs.mkfs cached () with Ok f -> f | Error _ -> failwith "mkfs")
  in
  (fs, cache)

(* Scratch file system over the attached vmsh-blk device. *)
let scratch_fs_vmsh vmm g =
  let drv =
    match Guest.vmsh_blk g with
    | Some d -> d
    | None -> failwith "vmsh-blk not attached"
  in
  let raw = Virtio.Blk.Driver.to_blockdev drv in
  let cache = Guest.page_cache g in
  let bulk ~first ~count =
    Virtio.Blk.Driver.read drv
      ~sector:(first * Virtio.Blk.sectors_per_block)
      ~len:(count * Blockdev.Dev.block_size)
  in
  let cached = Page_cache.wrap ~bulk_read:bulk cache ~dev_id:12 raw in
  let fs =
    Vmm.in_guest vmm (fun () ->
        match Sfs.mkfs cached () with Ok f -> f | Error _ -> failwith "mkfs")
  in
  (fs, cache)

(* ------------------------------------------------------------------ *)
(* E2/E3 — Table 1                                                      *)
(* ------------------------------------------------------------------ *)

let try_attach (h, vmm, g) =
  ignore g;
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
      ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
      ~pump:(fun () -> Vmm.run_until_idle vmm)
      ()
  with
  | Ok _ -> Ok ()
  | Error e -> Error (Vmsh.Vmsh_error.to_string e)

let run_table1 () =
  section "Table 1 — hypervisor and kernel support (E2, E3 / paper §6.2)";
  Printf.printf "%-18s %-12s %s\n" "hypervisor" "result" "note";
  List.iter
    (fun (profile, disable_seccomp, note) ->
      let env =
        boot_qemu
          ~seed:(Hashtbl.hash profile.Profile.prof_name)
          ~profile ?disable_seccomp ~blocks:4096 ()
      in
      match try_attach env with
      | Ok () ->
          Printf.printf "%-18s %-12s %s\n" profile.Profile.prof_name "supported"
            note
      | Error e ->
          Printf.printf "%-18s %-12s %s\n" profile.Profile.prof_name
            "UNSUPPORTED"
            (String.concat " " (String.split_on_char '\n' e)))
    [
      (Profile.qemu, None, "");
      (Profile.kvmtool, None, "");
      (Profile.firecracker, Some true, "(seccomp filters disabled, as in the paper)");
      (Profile.crosvm, None, "");
      (Profile.cloud_hypervisor, None, "");
    ];
  (* beyond the paper: stock Firecracker via the seccomp heuristic *)
  (let env =
     boot_qemu ~seed:77 ~profile:Profile.firecracker ~disable_seccomp:false
       ~blocks:4096 ()
   in
   let h, vmm, _ = env in
   let result =
     match
       Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
         ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
         ~config:
           (Vmsh.Attach.Config.with_seccomp_heuristic true
              (Vmsh.Attach.Config.make ()))
         ~pump:(fun () -> Vmm.run_until_idle vmm)
         ()
     with
     | Ok _ -> "supported"
     | Error e -> "FAILED: " ^ Vmsh.Vmsh_error.to_string e
   in
   Printf.printf "%-18s %-12s %s\n" "Firecracker" result
     "(stock seccomp + thread-probing heuristic; paper's future work)");
  (* beyond the paper: Cloud Hypervisor via the VirtIO-over-PCI transport *)
  (let env =
     boot_qemu ~seed:78 ~profile:Profile.cloud_hypervisor ~blocks:4096 ()
   in
   let h, vmm, _ = env in
   let result =
     match
       Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
         ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
         ~config:
           (Vmsh.Attach.Config.with_pci true (Vmsh.Attach.Config.make ()))
         ~pump:(fun () -> Vmm.run_until_idle vmm)
         ()
     with
     | Ok _ -> "supported"
     | Error e -> "FAILED: " ^ Vmsh.Vmsh_error.to_string e
   in
   Printf.printf "%-18s %-12s %s\n" "Cloud Hypervisor" result
     "(VirtIO-over-PCI transport + MSI routes; paper's future work)");
  Printf.printf "\n%-10s %s\n" "kernel" "result";
  List.iter
    (fun version ->
      let h = H.Host.create ~seed:(200 + Hashtbl.hash version) () in
      let disk = make_disk ~blocks:4096 h in
      let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
      let _g = Vmm.boot vmm ~version in
      match
        Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
          ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
          ~pump:(fun () -> Vmm.run_until_idle vmm)
          ()
      with
      | Ok s ->
          let anal = Vmsh.Attach.analysis s in
          Printf.printf "v%-9s attach ok (layout %s, version detected %s)\n"
            (KV.to_string version)
            (match anal.Vmsh.Symbol_analysis.layout with
            | KV.Absolute_value_first -> "abs/value-first"
            | KV.Absolute_name_first -> "abs/name-first"
            | KV.Prel32 -> "prel32")
            (KV.to_string anal.Vmsh.Symbol_analysis.version)
      | Error e ->
          Printf.printf "v%-9s FAILED: %s\n" (KV.to_string version)
            (Vmsh.Vmsh_error.to_string e))
    KV.all_lts

(* ------------------------------------------------------------------ *)
(* E1 — §6.1 robustness (xfstests)                                      *)
(* ------------------------------------------------------------------ *)

let run_e1 () =
  section
    "E1 — xfstests robustness (paper §6.1: 619 tests, 3 quota failures on \
     both devices)";
  let module X = Workloads.Xfstests in
  (* native: the host file system with quota support *)
  let native =
    X.run_suite
      ~make_fs:(fun () ->
        let b = Blockdev.Backend.create ~blocks:1024 () in
        match Sfs.mkfs (Blockdev.Backend.dev b) () with
        | Ok f -> f
        | Error _ -> failwith "mkfs")
      X.native_features
  in
  (* qemu-blk: fresh fs over the guest's VirtIO disk per test *)
  let h, vmm, g = boot_qemu ~seed:301 () in
  ignore h;
  let drv = Guest.boot_blk_exn g in
  let raw = Virtio.Blk.Driver.to_blockdev drv in
  let scratch = Blockdev.Dev.sub raw ~first_block:rootfs_blocks ~blocks:1024 in
  let qemu_blk =
    X.run_suite
      ~make_fs:(fun () ->
        match Sfs.mkfs scratch () with Ok f -> f | Error _ -> failwith "mkfs")
      ~in_ctx:(fun f -> Vmm.in_guest vmm f)
      X.simplefs_features
  in
  (* vmsh-blk: fresh fs over the attached device per test *)
  let env = boot_qemu ~seed:302 () in
  let _session = attach env in
  let _, vmm2, g2 = env in
  let vdrv = Option.get (Guest.vmsh_blk g2) in
  let vraw = Virtio.Blk.Driver.to_blockdev vdrv in
  let vscratch = Blockdev.Dev.sub vraw ~first_block:0 ~blocks:1024 in
  let vmsh_blk =
    X.run_suite
      ~make_fs:(fun () ->
        match Sfs.mkfs vscratch () with Ok f -> f | Error _ -> failwith "mkfs")
      ~in_ctx:(fun f -> Vmm.in_guest vmm2 f)
      X.simplefs_features
  in
  Printf.printf "%-10s %6s %6s %6s %8s\n" "device" "total" "pass" "fail"
    "skipped";
  List.iter
    (fun (name, (s : X.summary)) ->
      Printf.printf "%-10s %6d %6d %6d %8d\n" name s.X.total s.X.passed
        s.X.failed s.X.skipped)
    [ ("native", native); ("qemu-blk", qemu_blk); ("vmsh-blk", vmsh_blk) ];
  let fail_ids s = List.map fst s.X.failures |> List.sort compare in
  Printf.printf "failures qemu-blk: %s\n"
    (String.concat ", " (fail_ids qemu_blk));
  Printf.printf "failures vmsh-blk: %s\n"
    (String.concat ", " (fail_ids vmsh_blk));
  Printf.printf
    "=> vmsh-blk fails exactly the tests qemu-blk fails (quota reporting): %b\n"
    (fail_ids qemu_blk = fail_ids vmsh_blk)

(* ------------------------------------------------------------------ *)
(* E4 — Figure 5: Phoronix suite, vmsh-blk relative to qemu-blk         *)
(* ------------------------------------------------------------------ *)

let run_e4 () =
  section
    "Figure 5 — Phoronix disk suite: vmsh-blk time relative to qemu-blk \
     (paper: 1.5x +- 0.6 mean)";
  (* qemu-blk environment *)
  let hq, vmmq, gq = boot_qemu ~seed:401 ~blocks:24576 () in
  let qfs, qcache = scratch_fs_qemu vmmq gq in
  let qenv =
    {
      Workloads.Phoronix.vmm = vmmq;
      fs = qfs;
      cache = qcache;
      clock = hq.H.Host.clock;
      rng = H.Rng.create ~seed:77;
    }
  in
  (* vmsh-blk environment *)
  let envv = boot_qemu ~seed:402 ~blocks:4096 () in
  let hv0, _, _ = envv in
  let _session =
    attach ~image:(vmsh_image ~clock:hv0.H.Host.clock ~extra_blocks:22528 ()) envv
  in
  let hv, vmmv, gv = envv in
  let vfs, vcache = scratch_fs_vmsh vmmv gv in
  let venv =
    {
      Workloads.Phoronix.vmm = vmmv;
      fs = vfs;
      cache = vcache;
      clock = hv.H.Host.clock;
      rng = H.Rng.create ~seed:77;
    }
  in
  Printf.printf "%-36s %12s %12s %8s\n" "test" "qemu-blk ms" "vmsh-blk ms"
    "ratio";
  let ratios =
    List.map
      (fun t ->
        let q = Workloads.Phoronix.run_one qenv t /. 1e6 in
        let v = Workloads.Phoronix.run_one venv t /. 1e6 in
        let ratio = v /. q in
        Printf.printf "%-36s %12.2f %12.2f %7.2fx\n" t.Workloads.Phoronix.tname
          q v ratio;
        ratio)
      Workloads.Phoronix.tests
  in
  let n = Float.of_int (List.length ratios) in
  let mean = List.fold_left ( +. ) 0.0 ratios /. n in
  let var =
    List.fold_left (fun a r -> a +. ((r -. mean) ** 2.0)) 0.0 ratios /. n
  in
  Printf.printf "mean slowdown: %.2fx +- %.2f (paper: 1.5x +- 0.6)\n" mean
    (sqrt var)

(* ------------------------------------------------------------------ *)
(* E5 — Figure 6: fio across configurations                             *)
(* ------------------------------------------------------------------ *)

let throughput_job =
  Fio.job Fio.Seq_read ~block_size:(256 * 1024) ~total:(16 * 1024 * 1024)

let throughput_job_w =
  Fio.job Fio.Seq_write ~block_size:(256 * 1024) ~total:(16 * 1024 * 1024)

let iops_job = Fio.job Fio.Seq_read ~block_size:4096 ~total:(4 * 1024 * 1024)
let iops_job_w = Fio.job Fio.Seq_write ~block_size:4096 ~total:(4 * 1024 * 1024)

type fio_row = { label : string; read : Fio.result; write : Fio.result }

let print_fio_rows ~metric rows =
  List.iter
    (fun r ->
      match metric with
      | `Throughput ->
          Printf.printf "%-32s read %8.0f MB/s   write %8.0f MB/s\n" r.label
            r.read.Fio.throughput_mb_s r.write.Fio.throughput_mb_s
      | `Iops ->
          Printf.printf "%-32s read %8.1f kIOPS  write %8.1f kIOPS\n" r.label
            (r.read.Fio.iops /. 1000.)
            (r.write.Fio.iops /. 1000.))
    rows

let fio_pair vmm ~clock ~rng target ~rd ~wr =
  let read = Fio.run vmm ~clock ~rng target rd in
  let write = Fio.run vmm ~clock ~rng target wr in
  (read, write)

let run_e5 () =
  section "Figure 6 — fio: throughput (best case) and IOPS (worst case)";
  let collect ~rd ~wr =
    let rows = ref [] in
    let add label read write = rows := { label; read; write } :: !rows in
    (* native *)
    let hn = H.Host.create ~seed:501 () in
    let nat = Blockdev.Backend.create ~clock:hn.H.Host.clock ~blocks:16384 () in
    let rng = H.Rng.create ~seed:5 in
    let r, w =
      fio_pair None ~clock:hn.H.Host.clock ~rng (Fio.Native nat) ~rd ~wr
    in
    add "native" r w;
    (* qemu-blk baseline (no VMSH) *)
    let h, vmm, g = boot_qemu ~seed:502 () in
    let drv = Guest.boot_blk_exn g in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng (Fio.Guest_raw drv) ~rd ~wr
    in
    add "qemu-blk (no vmsh)" r w;
    (* wrap_syscall attached: qemu-blk under tax + vmsh-blk itself *)
    let env = boot_qemu ~seed:503 () in
    let _s =
      attach
        ~config:
          (Vmsh.Attach.Config.with_transport Vmsh.Devices.Wrap_syscall
             (Vmsh.Attach.Config.make ()))
        env
    in
    let h, vmm, g = env in
    let drv = Guest.boot_blk_exn g in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng (Fio.Guest_raw drv) ~rd ~wr
    in
    add "wrap_syscall qemu-blk" r w;
    let vdrv = Option.get (Guest.vmsh_blk g) in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng (Fio.Guest_raw vdrv) ~rd
        ~wr
    in
    add "wrap_syscall vmsh-blk" r w;
    (* ioregionfd attached *)
    let env = boot_qemu ~seed:504 () in
    let _s = attach env in
    let h, vmm, g = env in
    let drv = Guest.boot_blk_exn g in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng (Fio.Guest_raw drv) ~rd ~wr
    in
    add "ioregionfd qemu-blk" r w;
    let vdrv = Option.get (Guest.vmsh_blk g) in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng (Fio.Guest_raw vdrv) ~rd
        ~wr
    in
    add "ioregionfd vmsh-blk" r w;
    (* file IO: qemu-blk fs, qemu-9p, vmsh-blk fs *)
    let h9 = H.Host.create ~seed:505 () in
    let share_backend =
      Blockdev.Backend.create ~clock:h9.H.Host.clock ~blocks:16384 ()
    in
    let share =
      match Sfs.mkfs (Blockdev.Backend.dev share_backend) () with
      | Ok f -> f
      | Error _ -> failwith "mkfs"
    in
    let disk9 = make_disk h9 in
    let vmm = Vmm.create h9 ~profile:Profile.qemu ~disk:disk9 ~ninep_root:share () in
    let g = Vmm.boot vmm ~version:KV.V5_10 in
    let h = h9 in
    let fs, cache = scratch_fs_qemu vmm g in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng
        (Fio.Guest_fs { fs; cache; path = "/fio"; direct = false })
        ~rd ~wr
    in
    add "file-io qemu-blk" r w;
    let ninep = Option.get (Guest.boot_ninep g) in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng
        (Fio.Guest_ninep { drv = ninep; path = "/fio9" })
        ~rd ~wr
    in
    add "file-io qemu-9p" r w;
    let env = boot_qemu ~seed:506 ~blocks:4096 () in
    let h0, _, _ = env in
    let _s =
      attach ~image:(vmsh_image ~clock:h0.H.Host.clock ~extra_blocks:22528 ()) env
    in
    let h, vmm, g = env in
    let fs, cache = scratch_fs_vmsh vmm g in
    let r, w =
      fio_pair (Some vmm) ~clock:h.H.Host.clock ~rng
        (Fio.Guest_fs { fs; cache; path = "/fio"; direct = false })
        ~rd ~wr
    in
    add "file-io vmsh-blk" r w;
    List.rev !rows
  in
  Printf.printf "-- Figure 6a: throughput, 256 KiB sequential --\n";
  print_fio_rows ~metric:`Throughput
    (collect ~rd:throughput_job ~wr:throughput_job_w);
  Printf.printf "\n-- Figure 6b: IOPS, 4 KiB sequential --\n";
  print_fio_rows ~metric:`Iops (collect ~rd:iops_job ~wr:iops_job_w)

(* ------------------------------------------------------------------ *)
(* E6 — Figure 7: console responsiveness                                *)
(* ------------------------------------------------------------------ *)

let run_e6 () =
  section "Figure 7 — console latency (paper: vmsh ~= ssh ~= 0.9 ms)";
  let env = boot_qemu ~seed:601 () in
  let session = attach env in
  let h, _, _ = env in
  let clock = h.H.Host.clock in
  (* let the shell settle *)
  ignore (Vmsh.Attach.console_recv session);
  let results =
    [
      Workloads.Console_latency.native clock;
      Workloads.Console_latency.ssh clock;
      Workloads.Console_latency.vmsh session clock;
    ]
  in
  List.iter
    (fun m ->
      Printf.printf "%-14s %6.2f ms\n" m.Workloads.Console_latency.m_name
        m.Workloads.Console_latency.latency_ms)
    results

(* ------------------------------------------------------------------ *)
(* E7 — Figure 8: image de-bloating                                     *)
(* ------------------------------------------------------------------ *)

let run_e7 () =
  section
    "Figure 8 — VM size reduction, top-40 Docker images (paper: 60% average)";
  let reports = Debloat.Analyze.analyze_all () in
  let scale = Debloat.Dataset.size_scale in
  let mb b = Float.of_int (b * scale) /. 1048576.0 in
  Printf.printf "%-16s %10s %10s %10s %6s\n" "image" "before MB" "after MB"
    "reduction" "works";
  List.iter
    (fun (r : Debloat.Analyze.report) ->
      Printf.printf "%-16s %10.1f %10.1f %9.0f%% %6b\n" r.Debloat.Analyze.r_name
        (mb r.Debloat.Analyze.before_bytes)
        (mb r.Debloat.Analyze.after_bytes)
        r.Debloat.Analyze.reduction_pct r.Debloat.Analyze.still_works)
    reports;
  let under10 =
    List.length
      (List.filter (fun r -> r.Debloat.Analyze.reduction_pct < 10.0) reports)
  in
  Printf.printf
    "average reduction: %.1f%% (paper: 60%%); images under 10%%: %d (paper: 3, \
     static Go binaries)\n"
    (Debloat.Analyze.average_reduction reports)
    under10

(* ------------------------------------------------------------------ *)
(* E8/E9/E10 — use cases                                                *)
(* ------------------------------------------------------------------ *)

let run_e8 () =
  section "E8 — use case #1: serverless debug shell (vHive-style stack)";
  let h = H.Host.create ~seed:801 () in
  let stack =
    Usecases.Serverless.create_stack h
      ~functions:
        [
          ("thumbnailer", fun payload -> Ok ("thumb(" ^ payload ^ ")"));
          ("broken-parser", fun _ -> Error "unexpected token at line 1");
        ]
  in
  ignore (Usecases.Serverless.invoke stack ~fn:"thumbnailer" ~payload:"cat.jpg");
  ignore (Usecases.Serverless.invoke stack ~fn:"broken-parser" ~payload:"{bad");
  match Usecases.Serverless.find_faulty stack with
  | None -> Printf.printf "FAILED: faulty lambda not located\n"
  | Some lam -> (
      Printf.printf "faulty lambda: %s (firecracker pid %d)\n"
        lam.Usecases.Serverless.fn_name
        (Vmm.pid lam.Usecases.Serverless.vmm);
      match Usecases.Serverless.debug_shell h stack lam with
      | Error e -> Printf.printf "FAILED to attach: %s\n" e
      | Ok session ->
          let out = Vmsh.Attach.console_roundtrip session "hostname" in
          Printf.printf "debug shell reports instance: %s" out;
          let reclaimed = Usecases.Serverless.scale_down stack in
          Printf.printf
            "scale-down reclaimed %d instances; debugged instance pinned: %b\n"
            reclaimed
            (not lam.Usecases.Serverless.reclaimed);
          Usecases.Serverless.end_debug stack lam session)

let run_e9 () =
  section "E9 — use case #2: VM rescue (password reset, no reboot)";
  let h, vmm, g = boot_qemu ~seed:901 () in
  Vmm.in_guest vmm (fun () ->
      match Guest.rootfs g with
      | Some fs ->
          ignore
            (Sfs.write_file fs "/etc/shadow"
               (Bytes.of_string "root:$6$forgotten$xxxx:19000:0:99999:7:::\n"))
      | None -> ());
  match
    Usecases.Rescue.reset_password h ~vmm ~user:"root" ~password:"hunter2"
  with
  | Error e -> Printf.printf "FAILED: %s\n" e
  | Ok _out ->
      Printf.printf
        "chpasswd ran in the overlay; password set: %b (VM never rebooted)\n"
        (Usecases.Rescue.verify_password_set vmm g ~user:"root"
           ~password:"hunter2")

let run_e10 () =
  section "E10 — use case #3: package security scanner (Alpine guest)";
  let h, vmm, g = boot_qemu ~seed:1001 () in
  Vmm.in_guest vmm (fun () ->
      match Guest.rootfs g with
      | Some fs ->
          ignore (Sfs.mkdir_p fs "/lib/apk/db");
          ignore
            (Sfs.write_file fs "/lib/apk/db/installed"
               (Bytes.of_string
                  (Usecases.Scanner.apk_db_content
                     [
                       ("musl", "1.2.1"); ("busybox", "1.32.0");
                       ("openssl", "1.1.1j"); ("zlib", "1.2.12");
                       ("curl", "7.80.0"); ("apk-tools", "2.12.7");
                     ])))
      | None -> ());
  match Usecases.Scanner.scan h ~vmm () with
  | Error e -> Printf.printf "FAILED: %s\n" e
  | Ok vulns ->
      Printf.printf "%d vulnerable packages found:\n" (List.length vulns);
      List.iter
        (fun v ->
          Printf.printf "  %-10s %-8s (fixed in %s) %s\n"
            v.Usecases.Scanner.v_pkg v.Usecases.Scanner.installed
            v.Usecases.Scanner.fixed_in v.Usecases.Scanner.cve)
        vulns

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let run_ablation () =
  section
    "Ablation — copy path: bulk process_vm_readv vs 8-byte peeking (paper \
     §5: 'doubles the performance')";
  let run_mode mode =
    let env = boot_qemu ~seed:(1100 + Hashtbl.hash mode) () in
    let _s =
      attach
        ~config:
          (Vmsh.Attach.Config.with_copy_mode mode (Vmsh.Attach.Config.make ()))
        env
    in
    let h, vmm, g = env in
    let vdrv = Option.get (Guest.vmsh_blk g) in
    let rng = H.Rng.create ~seed:11 in
    Fio.run (Some vmm) ~clock:h.H.Host.clock ~rng (Fio.Guest_raw vdrv)
      throughput_job
  in
  let bulk = run_mode Vmsh.Hyp_mem.Bulk in
  let chunked = run_mode Vmsh.Hyp_mem.Chunked_4k in
  let peek = run_mode Vmsh.Hyp_mem.Peek_u64 in
  Printf.printf "bulk process_vm (shipped):        %8.0f MB/s\n"
    bulk.Fio.throughput_mb_s;
  Printf.printf "chunked bounce-buffer (pre-opt):  %8.0f MB/s (%.2fx slower)\n"
    chunked.Fio.throughput_mb_s
    (bulk.Fio.throughput_mb_s /. chunked.Fio.throughput_mb_s);
  Printf.printf "8-byte peeking (debugger API):    %8.0f MB/s (%.1fx slower)\n"
    peek.Fio.throughput_mb_s
    (bulk.Fio.throughput_mb_s /. peek.Fio.throughput_mb_s);
  section "Ablation — wrap_syscall tax vs request count";
  List.iter
    (fun blocks ->
      let measure with_wrap =
        let env = boot_qemu ~seed:(1200 + blocks) () in
        (if with_wrap then
           ignore
             (attach
                ~config:
                  (Vmsh.Attach.Config.with_transport Vmsh.Devices.Wrap_syscall
                     (Vmsh.Attach.Config.make ()))
                env));
        let h, vmm, g = env in
        let drv = Guest.boot_blk_exn g in
        let rng = H.Rng.create ~seed:13 in
        let j = Fio.job Fio.Seq_read ~block_size:4096 ~total:(blocks * 4096) in
        (Fio.run (Some vmm) ~clock:h.H.Host.clock ~rng (Fio.Guest_raw drv) j)
          .Fio.iops
      in
      let base = measure false and taxed = measure true in
      Printf.printf
        "qemu-blk %4d reqs: %8.1f kIOPS -> %8.1f kIOPS under wrap_syscall \
         (%.1fx)\n"
        blocks (base /. 1000.) (taxed /. 1000.) (base /. taxed))
    [ 256; 512; 1024 ]

(* ------------------------------------------------------------------ *)
(* Latency — per-request distributions from the driver histograms,      *)
(* exported machine-readable to BENCH_results.json                      *)
(* ------------------------------------------------------------------ *)

let run_latency () =
  section
    "Latency — per-request distributions (virtual ns) -> BENCH_results.json";
  (* Mixed request sizes so the distribution is non-degenerate. *)
  let mixed_io vmm drv ~n =
    let sizes = [| 4096; 16384; 65536 |] in
    Vmm.in_guest vmm (fun () ->
        for i = 0 to n - 1 do
          let len = sizes.(i mod Array.length sizes) in
          let sector = i * 17 mod 512 * Virtio.Blk.sectors_per_block in
          ignore (Virtio.Blk.Driver.read drv ~sector ~len);
          if i mod 2 = 0 then
            Virtio.Blk.Driver.write drv ~sector (Bytes.make len 'b')
        done;
        Virtio.Blk.Driver.flush drv)
  in
  let hq, vmmq, gq = boot_qemu ~seed:1401 () in
  mixed_io vmmq (Guest.boot_blk_exn gq) ~n:96;
  let env = boot_qemu ~seed:1402 () in
  let _s = attach env in
  let hv, vmmv, gv = env in
  mixed_io vmmv (Option.get (Guest.vmsh_blk gv)) ~n:96;
  (* throughput/latency over the side-loaded NIC: a closed-loop echo
     workload through the RX/TX virtqueues and the simulated fabric *)
  let envn = boot_qemu ~seed:1403 () in
  let hn, vmmn, gn = envn in
  let netcfg =
    let fabric, port =
      Workloads.Traffic.make_network hn ~mode:Workloads.Traffic.Echo ()
    in
    Vmsh.Attach.Config.with_net { Vmsh.Attach.fabric; port }
      (Vmsh.Attach.Config.make ())
  in
  let _s = attach ~config:netcfg envn in
  let r =
    Workloads.Traffic.run_client vmmn gn ~requests:1000 ~payload_size:64
      ~mode:Workloads.Traffic.Echo ()
  in
  Format.printf "vmsh-net echo: %a@." Workloads.Traffic.pp_result r;
  (* recovery-path latency: attaches under seeded fault schedules vs a
     fault-free baseline, aggregated into a dedicated registry *)
  let fobs = Observe.create ~now:(fun () -> 0.0) () in
  let fm = Observe.metrics fobs in
  let timed_attach ~seed ~plan hist =
    let h = H.Host.create ~seed () in
    (match plan with Some p -> H.Host.arm_faults h p | None -> ());
    let disk = make_disk ~blocks:4096 h in
    let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
    let _g = Vmm.boot vmm ~version:KV.V5_10 in
    let t0 = Clock.now_ns h.H.Host.clock in
    (match
       Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
         ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
         ~pump:(fun () -> Vmm.run_until_idle vmm)
         ()
     with
    | Error e ->
        (* a schedule hostile enough to exhaust the bounded retries: a
           clean failure, counted rather than timed *)
        Observe.Metrics.incr
          (Observe.Metrics.counter fm "faults.attach_failed");
        Printf.printf "vmsh-faults: attach failed cleanly under seed %d: %s\n"
          seed (Vmsh.Vmsh_error.to_string e)
    | Ok _ ->
        Observe.Metrics.observe
          (Observe.Metrics.histogram fm hist)
          (Clock.now_ns h.H.Host.clock -. t0));
    List.iter
      (fun c ->
        let cname = Observe.Metrics.counter_name c in
        let prefixed p =
          String.length cname >= String.length p
          && String.sub cname 0 (String.length p) = p
        in
        if prefixed "recovery." || prefixed "faults.injected." then
          Observe.Metrics.incr
            ~by:(Observe.Metrics.counter_value c)
            (Observe.Metrics.counter fm cname))
      (Observe.Metrics.counters (Observe.metrics h.H.Host.observe))
  in
  for seed = 0 to 1 do
    timed_attach ~seed:(1500 + seed) ~plan:None "attach.baseline_ns"
  done;
  (* cap 4 injections per class: fewer consecutive faults than the
     6-attempt retry bound, so every attach completes through the
     recovery path rather than aborting *)
  for seed = 0 to 7 do
    timed_attach ~seed:(1510 + seed)
      ~plan:(Some (Faults.create ~seed ~rate:0.3 ~cap:4 ()))
      "faults.attach_ns"
  done;
  let mean name = Observe.Metrics.mean (Observe.Metrics.histogram fm name) in
  Printf.printf
    "vmsh-faults: attach %.2f ms fault-free -> %.2f ms under a 0.3-rate fault \
     schedule\n"
    (mean "attach.baseline_ns" /. 1e6)
    (mean "faults.attach_ns" /. 1e6);
  (* fleet attach scaling: N concurrent sessions over virtual time with
     the shared build-id symbol cache; per-N latency histograms plus the
     cache counters land in their own registry *)
  let flobs = Observe.create ~now:(fun () -> 0.0) () in
  let flm = Observe.metrics flobs in
  let cold_reports = ref [] in
  List.iter
    (fun n ->
      let r =
        match
          Fleet.run
            (Fleet.Config.make ~vms:n () |> Fleet.Config.with_seed 1600)
        with
        | Ok r -> r
        | Error e -> failwith ("vmsh-fleet: " ^ Vmsh.Vmsh_error.to_string e)
      in
      cold_reports := (n, r) :: !cold_reports;
      Fleet.record flm ~label:(Printf.sprintf "n%d" n) r;
      let ok =
        List.length
          (List.filter
             (fun sr -> Result.is_ok sr.Fleet.s_result)
             r.Fleet.r_sessions)
      in
      Printf.printf
        "vmsh-fleet: n=%-3d %d/%d attached, %d slices, cache %d hits; p50 \
         %.2f ms p99 %.2f ms\n"
        n ok n r.Fleet.r_yields r.Fleet.r_cache_hits
        (Fleet.attach_p r 0.50 /. 1e6)
        (Fleet.attach_p r 0.99 /. 1e6))
    [ 1; 8; 64 ];
  (* copy-on-write fork scaling: bake one baseline, stand whole fleets
     up as linked clones, and hold the fork cost against the cold boots
     above. Cold references reuse the vmsh-fleet runs (same seed); the
     largest size is fork-only — 512 cold boots would hold ~16 GiB of
     private RAM images, the very cost the overlay removes. *)
  let fkobs = Observe.create ~now:(fun () -> 0.0) () in
  let fkm = Observe.metrics fkobs in
  let fork_img = Fleet.Baseline.bake ~seed:1650 () in
  List.iter
    (fun (n, r) ->
      if n > 1 then Fleet.record fkm ~label:(Printf.sprintf "cold.n%d" n) r)
    (List.rev !cold_reports);
  Printf.printf
    "vmsh-fork: cold reference at n=512 skipped (unbounded private RAM); \
     cold.n8/cold.n64 reuse the vmsh-fleet runs\n";
  List.iter
    (fun n ->
      let cfg =
        Fleet.Config.make ~vms:n ()
        |> Fleet.Config.with_seed 1600
        |> Fleet.Config.with_boot_source (Fleet.Config.Fork_of fork_img)
      in
      let r =
        match Fleet.run cfg with
        | Ok r -> r
        | Error e -> failwith ("vmsh-fork: " ^ Vmsh.Vmsh_error.to_string e)
      in
      Fleet.record fkm ~label:(Printf.sprintf "fork.n%d" n) r;
      (* overlay occupancy summed over the fleet's sessions *)
      let total name =
        List.fold_left
          (fun acc s ->
            acc
            + Observe.Metrics.counter_value
                (Observe.Metrics.counter
                   (Observe.metrics s.Fleet.s_host.H.Host.observe)
                   name))
          0 r.Fleet.r_sessions
      in
      let copied = total "overlay.pages_copied"
      and shared = total "overlay.pages_shared"
      and resident = total "overlay.resident_bytes" in
      let set name v =
        Observe.Metrics.set_counter (Observe.Metrics.counter fkm name) v
      in
      set (Printf.sprintf "overlay.pages_copied.n%d" n) copied;
      set (Printf.sprintf "overlay.pages_shared.n%d" n) shared;
      set (Printf.sprintf "overlay.resident_bytes.n%d" n) resident;
      Printf.printf
        "vmsh-fork: n=%-3d attach p50 %.2f ms p99 %.2f ms; fork p50 %.2f us \
         p99 %.2f us; %d pages copied / %d shared (%d KiB resident)\n"
        n
        (Fleet.attach_p r 0.50 /. 1e6)
        (Fleet.attach_p r 0.99 /. 1e6)
        (Fleet.fork_p r 0.50 /. 1e3)
        (Fleet.fork_p r 0.99 /. 1e3)
        copied shared (resident / 1024))
    [ 8; 64; 512 ];
  (* transactional detach: attach+detach round-trip latency with the
     journal on, the snapshot oracle re-checked per cycle, and the
     journal's fault-free overhead vs the with_journal-false ablation *)
  let dobs = Observe.create ~now:(fun () -> 0.0) () in
  let dm = Observe.metrics dobs in
  let detach_cycle ~seed ~journal =
    let h = H.Host.create ~seed () in
    let disk = make_disk ~blocks:4096 h in
    let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
    let _g = Vmm.boot vmm ~version:KV.V5_10 in
    let vm = Vmm.kvm_vm vmm in
    let before = Vmsh.Snapshot.capture vm in
    let t0 = Clock.now_ns h.H.Host.clock in
    match
      Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
        ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
        ~config:
          (Vmsh.Attach.Config.with_journal journal
             (Vmsh.Attach.Config.make ()))
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | Error e -> failwith ("vmsh-detach attach: " ^ Vmsh.Vmsh_error.to_string e)
    | Ok s ->
        let late =
          match Vmsh.Attach.journal s with
          | Some j -> Vmsh.Journal.late_writes j
          | None -> []
        in
        (match Vmsh.Attach.detach s with
        | Ok () -> ()
        | Error e ->
            failwith ("vmsh-detach detach: " ^ Vmsh.Vmsh_error.to_string e));
        let elapsed = Clock.now_ns h.H.Host.clock -. t0 in
        if journal then begin
          Observe.Metrics.observe
            (Observe.Metrics.histogram dm "detach.roundtrip_ns")
            elapsed;
          let exclude = Vmsh.Snapshot.dirty_since vm before @ late in
          Observe.Metrics.incr
            (Observe.Metrics.counter dm
               (if
                  Vmsh.Snapshot.check ~before
                    ~after:(Vmsh.Snapshot.capture vm) ~exclude
                then "detach.oracle_pass"
                else "detach.oracle_fail"))
        end;
        elapsed
  in
  let sum = List.fold_left ( +. ) 0.0 in
  let journaled = sum (List.init 4 (fun i -> detach_cycle ~seed:(1700 + i) ~journal:true)) in
  let bare = sum (List.init 4 (fun i -> detach_cycle ~seed:(1700 + i) ~journal:false)) in
  let overhead_permille =
    int_of_float ((journaled -. bare) /. bare *. 1000.)
  in
  Observe.Metrics.set_counter
    (Observe.Metrics.counter dm "detach.journal_overhead_permille")
    (max 0 overhead_permille);
  Printf.printf
    "vmsh-detach: attach+detach %.2f ms journaled vs %.2f ms bare (journal \
     overhead %+.1f%%)\n"
    (journaled /. 4. /. 1e6) (bare /. 4. /. 1e6)
    (float_of_int overhead_permille /. 10.);
  (* flight recorder: per-stage pipeline profile, the recording-overhead
     ablation (always-on recording vs a disabled recorder — virtual
     time, so the expected overhead is exactly zero), and the
     replay-diff oracle folded into counters *)
  let tobs = Observe.create ~now:(fun () -> 0.0) () in
  let tm = Observe.metrics tobs in
  let smoke_attach ~recording ~seed =
    let h = H.Host.create ~seed () in
    Trace.Recorder.set_enabled h.H.Host.recorder recording;
    let disk = make_disk ~blocks:4096 h in
    let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
    let _g = Vmm.boot vmm ~version:KV.V5_10 in
    let t0 = Clock.now_ns h.H.Host.clock in
    (match
       Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
         ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
         ~pump:(fun () -> Vmm.run_until_idle vmm)
         ()
     with
    | Error e -> failwith ("vmsh-trace attach: " ^ Vmsh.Vmsh_error.to_string e)
    | Ok _ -> ());
    (h, Clock.now_ns h.H.Host.clock -. t0)
  in
  let p50 xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let recorded_hosts, on_ns =
    List.split (List.init 4 (fun i -> smoke_attach ~recording:true ~seed:(1800 + i)))
  in
  let off_ns =
    List.map
      (fun i -> snd (smoke_attach ~recording:false ~seed:(1800 + i)))
      [ 0; 1; 2; 3 ]
  in
  let on50 = p50 on_ns and off50 = p50 off_ns in
  Observe.Metrics.set_counter
    (Observe.Metrics.counter tm "trace.overhead_permille")
    (max 0 (int_of_float ((on50 -. off50) /. off50 *. 1000.)));
  (* the stage profile (stage.attach.*_ns histograms, stage.exit.* and
     stage.pump.* counters) from the recorded attaches *)
  List.iter
    (fun h -> Observe.Metrics.merge_into ~into:tm (Observe.metrics h.H.Host.observe))
    recorded_hosts;
  Observe.Metrics.set_counter
    (Observe.Metrics.counter tm "trace.events")
    (Trace.Recorder.total (List.hd recorded_hosts).H.Host.recorder);
  (* replay-diff oracle: two independent executions of the same recipe
     must produce identical event streams and guest digests *)
  (match
     (Replay.execute (Replay.Attach { seed = 1850 }),
      Replay.execute (Replay.Attach { seed = 1850 }))
   with
  | Ok a, Ok b ->
      let clean =
        Trace.diff a.Replay.run_events b.Replay.run_events = []
        && a.Replay.run_digest = b.Replay.run_digest
      in
      Observe.Metrics.set_counter
        (Observe.Metrics.counter tm
           (if clean then "trace.replay_match" else "trace.replay_mismatch"))
        1
  | _ ->
      Observe.Metrics.set_counter
        (Observe.Metrics.counter tm "trace.replay_mismatch")
        1);
  Printf.printf
    "vmsh-trace: attach p50 %.2f ms recording vs %.2f ms disabled (overhead \
     %d permille); replay-diff %s\n"
    (on50 /. 1e6) (off50 /. 1e6)
    (Observe.Metrics.counter_value
       (Observe.Metrics.counter tm "trace.overhead_permille"))
    (if
       Observe.Metrics.counter_value
         (Observe.Metrics.counter tm "trace.replay_match")
       = 1
     then "clean"
     else "DIVERGED");
  (* the job service under sustained open-loop load: a rate sweep to
     locate the saturation knee, plus the calibrated-point run whose
     latency distribution and admission counters the CI gates check *)
  let sobs = Observe.create ~now:(fun () -> 0.0) () in
  let sm = Observe.metrics sobs in
  let module SD = Service.Dispatch in
  let serve_at ~rate ~jobs =
    let r =
      SD.run { SD.default_config with SD.jobs; rate; seed = 2000; ram_mb = 16 }
    in
    let last_submit =
      Array.fold_left
        (fun acc jr ->
          if Float.is_finite jr.SD.jr_submit_ns then
            Float.max acc jr.SD.jr_submit_ns
          else acc)
        0. r.SD.rp_records
    in
    (* the service kept up if the backlog drained with the arrivals:
       the last completion lands within 5% of the last submission *)
    let kept_up = r.SD.rp_makespan_ns <= 1.05 *. last_submit in
    (r, kept_up)
  in
  let knee = ref 0. in
  List.iter
    (fun rate ->
      let r, kept_up = serve_at ~rate ~jobs:150 in
      if kept_up then knee := Float.max !knee rate;
      let h =
        Observe.Metrics.histogram sm (Printf.sprintf "serve.e2e_ns.r%.0f" rate)
      in
      Array.iter
        (fun jr ->
          if Float.is_finite jr.SD.jr_start_ns then
            Observe.Metrics.observe h (jr.SD.jr_end_ns -. jr.SD.jr_submit_ns))
        r.SD.rp_records;
      Printf.printf
        "vmsh-serve: rate %5.0f/s %s (completed %d, p99 %.2f ms, makespan \
         %.1f ms)\n"
        rate
        (if kept_up then "kept up" else "SATURATED")
        (SD.completed r)
        (Observe.Metrics.percentile h 99.0 /. 1e6)
        (r.SD.rp_makespan_ns /. 1e6))
    [ 400.; 800.; 1200.; 1600. ];
  Observe.Metrics.set_counter
    (Observe.Metrics.counter sm "serve.knee_rps")
    (int_of_float !knee);
  (* the calibrated point: the default tenant set at the default 600/s —
     below the knee, hot tenant over its bucket. Its full service
     registry (service.e2e_ns, queue-depth gauge, per-tenant shed
     counters, merged per-stage aggregates) IS the scenario export. *)
  let rc, _ = serve_at ~rate:600. ~jobs:200 in
  Observe.Metrics.merge_into ~into:sm
    (Observe.metrics rc.SD.rp_host.H.Host.observe);
  Observe.Metrics.set_counter
    (Observe.Metrics.counter sm "serve.calibrated_rps")
    600;
  Printf.printf
    "vmsh-serve: knee %.0f/s; calibrated 600/s: %d/%d completed, e2e p50 \
     %.2f ms p99 %.2f ms p999 %.2f ms\n"
    !knee (SD.completed rc)
    (Array.length rc.SD.rp_records)
    (Observe.Metrics.percentile
       (Observe.Metrics.histogram sm "service.e2e_ns")
       50.0
    /. 1e6)
    (Observe.Metrics.percentile
       (Observe.Metrics.histogram sm "service.e2e_ns")
       99.0
    /. 1e6)
    (Observe.Metrics.percentile
       (Observe.Metrics.histogram sm "service.e2e_ns")
       99.9
    /. 1e6);
  (* trace-mutation fuzzing: a short real campaign over a recorded
     attach. The engine's bookkeeping (mutation application, protocol
     validation, n-gram coverage hashing, corpus plumbing) must stay
     within 5% of the pure attack-execution time — the fuzzer's cost
     is the replays, not the harness around them. *)
  let fzobs = Observe.create ~now:(fun () -> 0.0) () in
  let fzm = Observe.metrics fzobs in
  let fuzz_spec = Replay.Attach { seed = 1900 } in
  let fuzz_base =
    match Replay.execute fuzz_spec with
    | Ok r -> r.Replay.run_events
    | Error e -> failwith ("vmsh-fuzz: " ^ e)
  in
  let fuzz_exec_wall = ref 0.0 in
  let fuzz_replay_hist = Observe.Metrics.histogram fzm "fuzz.replay_ns" in
  let fuzz_execute _mutant muts =
    let t0 = Unix.gettimeofday () in
    let plan = Faults.create ~seed:0 ~rate:0.0 () in
    Faults.set_script plan (Fuzz.script_of_mutations fuzz_base muts);
    let atk = Replay.execute_attack ~plan fuzz_spec in
    fuzz_exec_wall := !fuzz_exec_wall +. (Unix.gettimeofday () -. t0);
    Observe.Metrics.observe fuzz_replay_hist atk.Replay.at_virtual_ns;
    atk.Replay.at_verdict
  in
  let fuzz_t0 = Unix.gettimeofday () in
  let fuzz_rep =
    Fuzz.run_campaign ~base:fuzz_base ~seed:9 ~rounds:8 ~execute:fuzz_execute
      ()
  in
  let fuzz_total = Unix.gettimeofday () -. fuzz_t0 in
  let fuzz_bookkeeping = Float.max 0. (fuzz_total -. !fuzz_exec_wall) in
  let fuzz_overhead =
    int_of_float
      (fuzz_bookkeeping /. Float.max 1e-9 !fuzz_exec_wall *. 1000.)
  in
  let fz_set name v =
    Observe.Metrics.set_counter (Observe.Metrics.counter fzm name) v
  in
  fz_set "fuzz.mutants" fuzz_rep.Fuzz.fz_mutants_run;
  fz_set "fuzz.bugs" fuzz_rep.Fuzz.fz_bugs;
  fz_set "fuzz.corpus.kept" fuzz_rep.Fuzz.fz_corpus_kept;
  fz_set "fuzz.corpus.ngrams" (List.length fuzz_rep.Fuzz.fz_coverage);
  fz_set "fuzz.corpus_overhead_permille" fuzz_overhead;
  Printf.printf
    "vmsh-fuzz: %d mutants at %.1f/s wall (%d survived, %d clean aborts, %d \
     bugs); corpus bookkeeping %.2f ms vs %.0f ms of replays (%d permille)\n"
    fuzz_rep.Fuzz.fz_mutants_run
    (float_of_int fuzz_rep.Fuzz.fz_mutants_run /. Float.max 1e-9 fuzz_total)
    fuzz_rep.Fuzz.fz_survived fuzz_rep.Fuzz.fz_clean_aborts
    fuzz_rep.Fuzz.fz_bugs (fuzz_bookkeeping *. 1e3) (!fuzz_exec_wall *. 1e3)
    fuzz_overhead;
  (* adversarial-guest attach: the latency a hostile guest costs the
     attach path, and what the hardening itself costs a clean one. Two
     distributions (clean attach vs attach under descriptor chaos — the
     noisiest class that still completes) plus the ablation the 5% gate
     holds: use-time symbol revalidation on vs off on a clean guest. *)
  let hobs = Observe.create ~now:(fun () -> 0.0) () in
  let hm = Observe.metrics hobs in
  let hostile_attach ?hostile ?(revalidate = true) ~seed () =
    let h = H.Host.create ~seed () in
    let disk = make_disk ~blocks:4096 h in
    let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
    let _g = Vmm.boot vmm ~version:KV.V5_10 in
    let config =
      let c =
        Vmsh.Attach.Config.with_revalidate revalidate
          (Vmsh.Attach.Config.make ())
      in
      match hostile with
      | None -> c
      | Some cls ->
          let plan = Faults.create ~seed ~rate:0.0 () in
          let eng = Hostile.create ~seed ~cls vmm in
          Faults.set_on_yield plan (Some (fun _ -> Hostile.step eng));
          Vmsh.Attach.Config.with_faults plan c
    in
    let t0 = Clock.now_ns h.H.Host.clock in
    let outcome =
      Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
        ~fs_image:(vmsh_image ~clock:h.H.Host.clock ~extra_blocks:64 ())
        ~config
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    in
    (outcome, Clock.now_ns h.H.Host.clock -. t0)
  in
  let h_clean = Observe.Metrics.histogram hm "hostile.clean_attach_ns" in
  let h_attacked = Observe.Metrics.histogram hm "hostile.attach_ns" in
  let hostile_survived = ref 0 in
  let samples = 5 in
  let clean_ns =
    List.init samples (fun i ->
        let outcome, dt = hostile_attach ~seed:(2100 + i) () in
        (match outcome with
        | Ok _ -> ()
        | Error e ->
            failwith ("vmsh-hostile clean: " ^ Vmsh.Vmsh_error.to_string e));
        Observe.Metrics.observe h_clean dt;
        dt)
  in
  List.iter
    (fun i ->
      let outcome, dt =
        hostile_attach ~hostile:Hostile.Desc_chaos ~seed:(2100 + i) ()
      in
      (match outcome with
      | Ok _ -> incr hostile_survived
      | Error e ->
          (* a clean round-trippable abort is an acceptable outcome
             under attack; anything else fails the bench *)
          let msg = Vmsh.Vmsh_error.to_string e in
          if Vmsh.Vmsh_error.to_string (Vmsh.Vmsh_error.of_string msg) <> msg
          then failwith ("vmsh-hostile: unclean abort: " ^ msg));
      Observe.Metrics.observe h_attacked dt)
    [ 0; 1; 2; 3; 4 ];
  let bare_ns =
    List.init samples (fun i ->
        snd (hostile_attach ~revalidate:false ~seed:(2100 + i) ()))
  in
  let clean50 = p50 clean_ns and bare50 = p50 bare_ns in
  let hardening_overhead =
    max 0 (int_of_float ((clean50 -. bare50) /. bare50 *. 1000.))
  in
  let hm_set name v =
    Observe.Metrics.set_counter (Observe.Metrics.counter hm name) v
  in
  hm_set "hostile.overhead_permille" hardening_overhead;
  hm_set "hostile.survived" !hostile_survived;
  Printf.printf
    "vmsh-hostile: clean attach p50 %.2f ms vs %.2f ms under desc-chaos \
     (%d/%d survived); hardening %.2f ms hardened vs %.2f ms ablated (%d \
     permille)\n"
    (clean50 /. 1e6)
    (Observe.Metrics.percentile h_attacked 50. /. 1e6)
    !hostile_survived samples (clean50 /. 1e6) (bare50 /. 1e6)
    hardening_overhead;
  let scenarios =
    [
      ("qemu-blk", hq.H.Host.observe); ("vmsh-blk", hv.H.Host.observe);
      ("vmsh-net", hn.H.Host.observe); ("vmsh-faults", fobs);
      ("vmsh-fleet", flobs); ("vmsh-fork", fkobs); ("vmsh-detach", dobs);
      ("vmsh-trace", tobs);
      ("vmsh-serve", sobs); ("vmsh-fuzz", fzobs); ("vmsh-hostile", hobs);
    ]
  in
  let oc = open_out "BENCH_results.json" in
  output_string oc
    (Printf.sprintf "{\"scenarios\": {%s}}\n"
       (String.concat ", "
          (List.map
             (fun (label, obs) ->
               Printf.sprintf "%S: %s" label (Observe.Export.metrics_json obs))
             scenarios)));
  close_out oc;
  List.iter
    (fun (label, obs) ->
      List.iter
        (fun hist ->
          let p q = Observe.Metrics.percentile hist q in
          Printf.printf
            "%-11s %-26s n=%4d  p50 %10.0f  p95 %10.0f  p99 %10.0f ns\n" label
            (Observe.Metrics.histogram_name hist)
            (Observe.Metrics.count hist) (p 50.0) (p 95.0) (p 99.0))
        (Observe.Metrics.histograms (Observe.metrics obs)))
    scenarios;
  Printf.printf "written: BENCH_results.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks (wall-clock cost of simulator hot paths;    *)
(* one Test.make per experiment family)                                 *)
(* ------------------------------------------------------------------ *)

let run_bechamel () =
  section "Bechamel — wall-clock microbenchmarks of the harness itself";
  let open Bechamel in
  let test_e1 =
    Test.make ~name:"e1-simplefs-write-file"
      (Staged.stage (fun () ->
           let b = Blockdev.Backend.create ~blocks:256 () in
           let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev b) ()) in
           ignore (Sfs.write_file fs "/f" (Bytes.make 4096 'x'))))
  in
  let test_e23 =
    let env = boot_qemu ~seed:1301 ~blocks:4096 () in
    let h, _, g = env in
    Test.make ~name:"e2e3-symbol-analysis"
      (Staged.stage (fun () ->
           let vmsh = H.Host.spawn h ~name:"bench-vmsh" ~uid:1000 () in
           let slots =
             List.map
               (fun (s : Kvm.Vm.memslot) ->
                 { Vmsh.Hyp_mem.gpa = s.Kvm.Vm.gpa; size = s.size; hva = s.hva })
               (Kvm.Vm.memslots (Guest.vm g))
           in
           let mem =
             Vmsh.Hyp_mem.create h ~vmsh
               ~hypervisor_pid:(Vmm.pid (let _, v, _ = env in v))
               ~slots ()
           in
           let cr3 =
             (Kvm.Vm.vcpu_regs (List.hd (Kvm.Vm.vcpus (Guest.vm g))))
               .X86.Regs.cr3
           in
           match Vmsh.Symbol_analysis.analyze mem ~cr3 with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let test_e5 =
    let env = boot_qemu ~seed:1302 ~blocks:4096 () in
    let _, vmm, g = env in
    let drv = Guest.boot_blk_exn g in
    Test.make ~name:"e5-virtio-blk-roundtrip"
      (Staged.stage (fun () ->
           Vmm.in_guest vmm (fun () ->
               ignore (Virtio.Blk.Driver.read drv ~sector:0 ~len:4096))))
  in
  let test_e7 =
    Test.make ~name:"e7-image-pack"
      (Staged.stage (fun () ->
           ignore (Blockdev.Image.pack [ Blockdev.Image.file "/bin/tool" 65536 ])))
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-30s %12.0f ns/op (wall)\n" name est
          | _ -> Printf.printf "%-30s (no estimate)\n" name)
        results)
    [ test_e1; test_e23; test_e5; test_e7 ]

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("e1", run_e1);
    ("e4", run_e4);
    ("e5", run_e5);
    ("e6", run_e6);
    ("e7", run_e7);
    ("e8", run_e8);
    ("e9", run_e9);
    ("e10", run_e10);
    ("ablation", run_ablation);
    ("latency", run_latency);
    ("bechamel", run_bechamel);
  ]

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then
    List.iter (fun (n, _) -> print_endline n) experiments
  else begin
    let only =
      match
        List.find_map
          (fun a ->
            if String.length a > 7 && String.sub a 0 7 = "--only=" then
              Some (String.sub a 7 (String.length a - 7))
            else None)
          args
      with
      | Some spec -> String.split_on_char ',' spec
      | None ->
          if List.mem "--only" args then
            match args with
            | _ :: "--only" :: spec :: _ -> String.split_on_char ',' spec
            | _ -> List.map fst experiments
          else List.map fst experiments
    in
    List.iter
      (fun (name, f) ->
        if List.mem name only then begin
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s finished in %.1fs wall]\n%!" name
            (Unix.gettimeofday () -. t0)
        end)
      experiments
  end
