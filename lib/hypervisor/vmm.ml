module Mem = Hostos.Mem
module Proc = Hostos.Proc
module Fd = Hostos.Fd
module Clock = Hostos.Clock
module Host = Hostos.Host
module Errno = Hostos.Errno
module Syscall = Hostos.Syscall
module Api = Kvm.Api
module Vm = Kvm.Vm
module Gmem = Virtio.Gmem
module Layout = X86.Layout
module Guest = Linux_guest.Guest

let src = Logs.Src.create "vmm" ~doc:"userspace hypervisor"

module Log = (val Logs.src_log src : Logs.LOG)

exception Stuck of string

type dev_slot = {
  base : int;  (** register window (BAR0 under PCI) *)
  cfg : (int * bytes) option;  (** PCI config window, if any *)
  regs : Virtio.Mmio.Device.t;
  mutable queue_halves : Virtio.Queue.Device.t option array;
  gsi : int;
  mutable irqfd : Fd.t option;
  ioeventfd : Fd.t option;
  process : t -> dev_slot -> unit;
}

and t = {
  h : Host.t;
  profx : Profile.t;
  p : Proc.t;
  io_thread : Proc.thread;
  vm : Vm.t;
  vm_fd : Fd.t;
  vcpu_fds : Fd.t list;
  ram_hva : int;
  ram_size : int;
  scratch : int;  (** hva of a page for ioctl structs *)
  databuf : int;  (** hva of a 256 KiB bounce buffer for disk IO *)
  diskb : Blockdev.Backend.t;
  disk_fd : Fd.t;
  mutable devices : dev_slot list;
  mutable guest_t : Guest.t option;
  mutable is_shutdown : bool;
}

let host t = t.h
let proc t = t.p
let pid t = t.p.Proc.pid
let profile t = t.profx
let kvm_vm t = t.vm
let disk t = t.diskb
let guest t = t.guest_t

let guest_exn t =
  match t.guest_t with
  | Some g -> g
  | None -> invalid_arg "Vmm.guest_exn: not booted"

let crashed t = t.is_shutdown

let main_thread t = Proc.main_thread t.p

let sys t th ~nr ~args = Syscall.call t.h t.p th ~nr ~args

(* Device view of guest RAM: resolve gpa through the VMM's own mapping,
   charging memory-copy cost. *)
let vmm_gmem t =
  {
    Gmem.read =
      (fun ~addr ~len ->
        Clock.copy_bytes t.h.Host.clock len;
        Mem.Addr_space.read t.p.Proc.aspace (t.ram_hva + addr) len);
    write =
      (fun ~addr b ->
        Clock.copy_bytes t.h.Host.clock (Bytes.length b);
        (* device completions serve guest-initiated requests: record the
           interval so the rollback oracle blames the guest, not VMSH *)
        Vm.mark_dirty t.vm ~pa:addr ~len:(Bytes.length b);
        Mem.Addr_space.write t.p.Proc.aspace (t.ram_hva + addr) b);
  }

(* --- the block device iothread --- *)

let create_queue t slot qi =
  match slot.queue_halves.(qi) with
  | Some q -> Some q
  | None ->
      let qs = Virtio.Mmio.Device.queue slot.regs qi in
      if not qs.Virtio.Mmio.Device.ready then None
      else begin
        let q =
          Virtio.Queue.Device.create (vmm_gmem t) ~qsz:qs.Virtio.Mmio.Device.num
            ~desc:qs.Virtio.Mmio.Device.desc ~avail:qs.Virtio.Mmio.Device.avail
            ~used:qs.Virtio.Mmio.Device.used
        in
        slot.queue_halves.(qi) <- Some q;
        Some q
      end

let signal_completion t slot =
  Virtio.Mmio.Device.assert_irq slot.regs;
  match slot.irqfd with
  | Some fd ->
      (* the iothread signals the irqfd with a write syscall *)
      Mem.Addr_space.write_u64 t.p.Proc.aspace t.scratch 1;
      ignore
        (sys t t.io_thread ~nr:Syscall.Nr.write ~args:[| fd.Fd.num; t.scratch; 8 |])
  | None ->
      (* MSI-X style direct injection (Cloud Hypervisor) *)
      Vm.signal_gsi t.vm ~gsi:slot.gsi

let drain_eventfd t slot =
  match slot.ioeventfd with
  | Some fd ->
      ignore
        (sys t t.io_thread ~nr:Syscall.Nr.read ~args:[| fd.Fd.num; t.scratch; 8 |])
  | None -> ()

(* Disk backend routed through pread64/pwrite64 syscalls of the
   iothread, with a bounce buffer in VMM memory (QEMU's aio path). *)
let syscall_blk_backend t =
  let sector_size = Virtio.Blk.sector_size in
  {
    Virtio.Blk.Device.capacity_sectors =
      Blockdev.Dev.size_bytes (Blockdev.Backend.dev t.diskb) / sector_size;
    read =
      (fun ~sector ~len ->
        let ret =
          sys t t.io_thread ~nr:Syscall.Nr.pread64
            ~args:[| t.disk_fd.Fd.num; t.databuf; len; sector * sector_size |]
        in
        if ret < 0 then Bytes.make len '\000'
        else Mem.Addr_space.read t.p.Proc.aspace t.databuf ret);
    write =
      (fun ~sector data ->
        Mem.Addr_space.write t.p.Proc.aspace t.databuf data;
        ignore
          (sys t t.io_thread ~nr:Syscall.Nr.pwrite64
             ~args:
               [| t.disk_fd.Fd.num; t.databuf; Bytes.length data;
                  sector * sector_size |]));
    flush = (fun () -> (Blockdev.Backend.dev t.diskb).Blockdev.Dev.flush ());
    discard =
      (fun ~sector ~len ->
        let bs = Blockdev.Dev.block_size in
        (Blockdev.Backend.dev t.diskb).Blockdev.Dev.trim
          (sector * sector_size / bs) (len / bs));
  }

let process_blk t slot =
  drain_eventfd t slot;
  match create_queue t slot 0 with
  | None -> ()
  | Some q ->
      let n = Virtio.Blk.Device.process q (vmm_gmem t) (syscall_blk_backend t) in
      if n > 0 then signal_completion t slot

(* --- the 9p device --- *)

let ninep_backend t root =
  let module Sfs = Blockdev.Simplefs in
  let clock = t.h.Host.clock in
  let charge_pages len =
    for _ = 1 to max 1 ((len + 4095) / 4096) do
      Clock.page_cache_hit clock
    done
  in
  {
    Virtio.Ninep.Device.handle =
      (fun req ->
        (* the 9p server re-resolves the path (walk), opens and touches
           the host file system and its page cache on every message —
           the double-stack the paper blames for qemu-9p's IOPS *)
        Clock.context_switch clock;
        for _ = 1 to 4 do
          Clock.syscall clock;
          Clock.fs_op clock
        done;
        Clock.context_switch clock;
        let ok payload = { Virtio.Ninep.status = 0; payload } in
        let err e =
          { Virtio.Ninep.status = Errno.to_code e; payload = Bytes.empty }
        in
        match req with
        | Virtio.Ninep.Read { path; off; len } -> (
            charge_pages len;
            match Sfs.lookup root path with
            | Error e -> err e
            | Ok ino -> (
                match Sfs.read root ino ~off ~len with
                | Ok data -> ok data
                | Error e -> err e))
        | Virtio.Ninep.Write { path; off; data } -> (
            charge_pages (Bytes.length data);
            let ino =
              match Sfs.lookup root path with
              | Ok ino -> Ok ino
              | Error Errno.ENOENT -> Sfs.create root path
              | Error e -> Error e
            in
            match ino with
            | Error e -> err e
            | Ok ino -> (
                match Sfs.write root ino ~off data with
                | Ok n ->
                    let b = Bytes.create 8 in
                    Bytes.set_int64_le b 0 (Int64.of_int n);
                    ok b
                | Error e -> err e))
        | Virtio.Ninep.Create path -> (
            match Sfs.create root path with
            | Ok _ | Error Errno.EEXIST -> ok Bytes.empty
            | Error e -> err e)
        | Virtio.Ninep.Stat path -> (
            match Sfs.stat root path with
            | Ok st ->
                let b = Bytes.create 16 in
                Bytes.set_int64_le b 0 (Int64.of_int st.Sfs.st_size);
                ok b
            | Error e -> err e));
  }

let process_ninep root t slot =
  drain_eventfd t slot;
  match create_queue t slot 0 with
  | None -> ()
  | Some q ->
      let n = Virtio.Ninep.Device.process q (vmm_gmem t) (ninep_backend t root) in
      if n > 0 then signal_completion t slot

(* --- setup --- *)

let ioctl_or_fail t th ~fd ~code ~arg ~what =
  let ret = sys t th ~nr:Syscall.Nr.ioctl ~args:[| fd; code; arg |] in
  if ret < 0 then
    failwith (Printf.sprintf "%s: %s failed (%d)" t.profx.Profile.prof_name what ret);
  ret

let add_device t ~slot_index ~regs ~process ~want_irqfd =
  let th = main_thread t in
  let pci = not t.profx.Profile.mmio_transport in
  let stride = Layout.virtio_mmio_stride in
  (* MMIO: one register window per slot. PCI (Cloud Hypervisor): a
     config window followed by the register BAR, per slot. *)
  let base =
    if pci then Layout.hyp_pci_base + (slot_index * 2 * stride) + stride
    else Layout.virtio_mmio_base + (slot_index * stride)
  in
  let gsi = 16 + slot_index in
  (* an MSI-X-only irqchip needs an MSI route before the irqfd *)
  (if pci then begin
     Kvm.Api.write_msi_route t.p.Proc.aspace ~ptr:t.scratch
       { Kvm.Api.route_gsi = gsi; msi_addr = 0xfee0_0000; msi_data = gsi };
     ignore
       (sys t th ~nr:Syscall.Nr.ioctl
          ~args:[| t.vm_fd.Fd.num; Kvm.Api.set_gsi_routing; t.scratch |])
   end);
  (* doorbell: ioeventfd on the QUEUE_NOTIFY register *)
  let ioev_num = sys t th ~nr:Syscall.Nr.eventfd2 ~args:[||] in
  let ioeventfd = Result.to_option (Proc.fd t.p ioev_num) in
  Api.write_ioeventfd_req t.p.Proc.aspace ~ptr:t.scratch
    {
      Api.datamatch = 0;
      ioev_addr = base + Virtio.Mmio.reg_queue_notify;
      ioev_len = 4;
      ioev_fd = ioev_num;
      ioev_flags = 0;
    };
  ignore
    (ioctl_or_fail t th ~fd:t.vm_fd.Fd.num ~code:Api.ioeventfd ~arg:t.scratch
       ~what:"KVM_IOEVENTFD");
  (* completion: irqfd if the VM's irqchip supports plain GSIs *)
  let irqfd =
    if not want_irqfd then None
    else begin
      let ev_num = sys t th ~nr:Syscall.Nr.eventfd2 ~args:[||] in
      Api.write_irqfd_req t.p.Proc.aspace ~ptr:t.scratch
        { Api.irqfd_fd = ev_num; gsi; irqfd_flags = 0 };
      let ret =
        sys t th ~nr:Syscall.Nr.ioctl
          ~args:[| t.vm_fd.Fd.num; Api.irqfd; t.scratch |]
      in
      if ret < 0 then None else Result.to_option (Proc.fd t.p ev_num)
    end
  in
  let cfg =
    if not pci then None
    else
      let device_type =
        (* recover the virtio type from the register machine's identity *)
        let b = Virtio.Mmio.Device.read regs ~off:Virtio.Mmio.reg_device_id ~len:4 in
        Int32.to_int (Bytes.get_int32_le b 0)
      in
      Some
        ( base - stride,
          Virtio.Pci.Config.encode ~device_type ~bar0:base ~msix_gsi:gsi )
  in
  let slot =
    {
      base;
      cfg;
      regs;
      queue_halves = Array.make 4 None;
      gsi;
      irqfd;
      ioeventfd;
      process;
    }
  in
  (match ioeventfd with
  | Some fd -> Vm.add_eventfd_waiter t.vm ~fd (fun () -> slot.process t slot)
  | None -> ());
  Virtio.Mmio.Device.set_notify regs (fun ~queue:_ -> slot.process t slot);
  t.devices <- t.devices @ [ slot ]

type fork_source = { fs_ram : bytes; fs_databuf : bytes }

let create h ~profile:profx ~disk:diskb ?(ram_mb = 64) ?(vcpus = 1)
    ?(disable_seccomp = false) ?ninep_root ?fork () =
  let p = Host.spawn h ~name:profx.Profile.process_name ~uid:1000 () in
  (* A fork maps guest RAM and the bounce buffer as CoW overlays over
     the baseline's frozen regions instead of allocating private
     zeroed pages — the linked-clone analogue of mmapping the baseline
     file MAP_PRIVATE. The mmap syscalls below then pick these up. *)
  (match fork with
  | None -> ()
  | Some f ->
      let ram_size = ram_mb * 1024 * 1024 in
      if Bytes.length f.fs_ram <> ram_size then
        invalid_arg
          (Printf.sprintf
             "Vmm.create: baseline RAM is %d bytes but the VM wants %d"
             (Bytes.length f.fs_ram) ram_size);
      if Bytes.length f.fs_databuf <> 256 * 1024 then
        invalid_arg "Vmm.create: baseline bounce buffer is not 256 KiB";
      p.Proc.mmap_backing <-
        Some
          (fun len ->
            if len = Bytes.length f.fs_ram then Mem.cow f.fs_ram
            else if len = Bytes.length f.fs_databuf then Mem.cow f.fs_databuf
            else Mem.create len));
  let io_thread = Proc.add_thread p ~name:"iothread" in
  let th = Proc.main_thread p in
  let kvm_fd = Vm.dev_kvm h p in
  let vmfd_num =
    Syscall.call h p th ~nr:Syscall.Nr.ioctl
      ~args:[| kvm_fd.Fd.num; Api.create_vm; 0 |]
  in
  if vmfd_num < 0 then failwith "KVM_CREATE_VM failed";
  let vm_fd =
    match Proc.fd p vmfd_num with Ok f -> f | Error _ -> assert false
  in
  let vm = Option.get (Vm.vm_of_fd vm_fd) in
  if not profx.Profile.mmio_transport then Vm.set_gsi_irqfd_support vm false;
  (* scratch page, bounce buffer and guest RAM *)
  let scratch = Syscall.call h p th ~nr:Syscall.Nr.mmap ~args:[| 0; 4096 |] in
  let databuf =
    Syscall.call h p th ~nr:Syscall.Nr.mmap ~args:[| 0; 256 * 1024 |]
  in
  let ram_size = ram_mb * 1024 * 1024 in
  let ram_hva = Syscall.call h p th ~nr:Syscall.Nr.mmap ~args:[| 0; ram_size |] in
  p.Proc.mmap_backing <- None;
  Api.write_memory_region p.Proc.aspace ~ptr:scratch
    {
      Api.slot = 0;
      flags = 0;
      guest_phys_addr = 0;
      memory_size = ram_size;
      userspace_addr = ram_hva;
    };
  let ret =
    Syscall.call h p th ~nr:Syscall.Nr.ioctl
      ~args:[| vmfd_num; Api.set_user_memory_region; scratch |]
  in
  if ret < 0 then failwith "KVM_SET_USER_MEMORY_REGION failed";
  let vcpu_fds =
    List.init vcpus (fun i ->
        let n =
          Syscall.call h p th ~nr:Syscall.Nr.ioctl
            ~args:[| vmfd_num; Api.create_vcpu; i |]
        in
        match Proc.fd p n with Ok f -> f | Error _ -> assert false)
  in
  let disk_fd =
    Proc.install_fd p (fun ~num ->
        Fd.make ~num ~ops:(Blockdev.Backend.fd_ops diskb)
          ~label:"/var/lib/images/disk.img" ())
  in
  let t =
    {
      h;
      profx;
      p;
      io_thread;
      vm;
      vm_fd;
      vcpu_fds;
      ram_hva;
      ram_size;
      scratch;
      databuf;
      diskb;
      disk_fd;
      devices = [];
      guest_t = None;
      is_shutdown = false;
    }
  in
  (* the boot disk at slot 0 (MMIO transport, or virtio-pci for Cloud
     Hypervisor) *)
  begin
    let capacity =
      Blockdev.Dev.size_bytes (Blockdev.Backend.dev diskb)
      / Virtio.Blk.sector_size
    in
    let regs =
      Virtio.Mmio.Device.create ~device_id:Virtio.Blk.device_id ~num_queues:1
        ~config:(Virtio.Blk.Device.config ~capacity_sectors:capacity)
        ()
    in
    add_device t ~slot_index:0 ~regs ~process:process_blk ~want_irqfd:true;
    match (profx.Profile.has_ninep, ninep_root) with
    | true, Some root ->
        let regs9 =
          Virtio.Mmio.Device.create ~device_id:Virtio.Ninep.device_id
            ~num_queues:1 ~config:(Bytes.make 8 '\000') ()
        in
        add_device t ~slot_index:2 ~regs:regs9 ~process:(process_ninep root)
          ~want_irqfd:true
    | _ -> ()
  end;
  (* Firecracker applies its per-thread filters only after setup, right
     before entering the run loop — which is why they catch VMSH's
     injected syscalls but not the VMM's own initialisation. The vCPU
     (main) thread gets the tight filter; the API/io thread keeps the
     laxer management filter. *)
  (if profx.Profile.seccomp = Profile.Per_thread_filters && not disable_seccomp
   then
     List.iter
       (fun thr ->
         thr.Proc.seccomp <-
           Some
             (if thr == io_thread then Profile.seccomp_api_filter
              else Profile.seccomp_filter))
       p.Proc.threads);
  t

(* --- the exit loop --- *)

let handle_mmio_exit t ~phys_addr ~len ~is_write ~data =
  let dev =
    List.find_opt
      (fun d ->
        phys_addr >= d.base && phys_addr < d.base + Layout.virtio_mmio_stride)
      t.devices
  in
  let cfg_dev =
    List.find_opt
      (fun d ->
        match d.cfg with
        | Some (cbase, _) ->
            phys_addr >= cbase && phys_addr < cbase + Layout.virtio_mmio_stride
        | None -> false)
      t.devices
  in
  let vcpu =
    match Vm.vcpus t.vm with v :: _ -> v | [] -> assert false
  in
  match (dev, cfg_dev) with
  | Some d, _ ->
      let off = phys_addr - d.base in
      if is_write then Virtio.Mmio.Device.write d.regs ~off data
      else
        let resp = Virtio.Mmio.Device.read d.regs ~off ~len in
        Api.write_mmio_response (Vm.vcpu_run_page vcpu) resp
  | None, Some d ->
      (* PCI config space access *)
      if not is_write then begin
        let cbase, header = Option.get d.cfg in
        let off = phys_addr - cbase in
        let resp =
          Bytes.init len (fun i ->
              if off + i < Bytes.length header then Bytes.get header (off + i)
              else '\xff')
        in
        Api.write_mmio_response (Vm.vcpu_run_page vcpu) resp
      end
  | None, None ->
      (* unassigned MMIO: reads return zero, writes are dropped *)
      if not is_write then
        Api.write_mmio_response (Vm.vcpu_run_page vcpu) (Bytes.make len '\000')

let run_until_idle ?(max_exits = 2_000_000) t =
  let th = main_thread t in
  let vcpu_fd = List.hd t.vcpu_fds in
  let rec loop exits hlt_streak =
    if exits > max_exits then
      raise (Stuck (Printf.sprintf "%s: exit budget exhausted" t.profx.Profile.prof_name));
    match Vm.run_vcpu t.h t.p th ~vcpu_fd with
    | Api.Exit_hlt ->
        if Vm.has_runnable t.vm then
          if hlt_streak > 10_000 then
            raise
              (Stuck
                 (Printf.sprintf
                    "%s: guest makes no progress despite runnable work"
                    t.profx.Profile.prof_name))
          else loop (exits + 1) (hlt_streak + 1)
        else ()
    | Api.Exit_mmio { phys_addr; len; is_write; data } ->
        handle_mmio_exit t ~phys_addr ~len ~is_write ~data;
        loop (exits + 1) 0
    | Api.Exit_shutdown -> t.is_shutdown <- true
    | Api.Exit_other _ -> loop (exits + 1) 0
  in
  loop 0 0

let boot ?boot_rng ?prebuilt_image t ~version =
  let rng =
    match boot_rng with
    | Some r -> r
    | None -> Hostos.Rng.split t.h.Host.rng
  in
  let g = Guest.boot ~vm:t.vm ~version ~rng ?prebuilt_image () in
  t.guest_t <- Some g;
  run_until_idle t;
  g

(* Freeze the regions a fork shares: called on a baked baseline VM at
   the attach-ready point, before anything attaches. *)
let freeze_fork_state t =
  let mem_at what hva =
    match Mem.Addr_space.resolve t.p.Proc.aspace hva with
    | Some (m, 0) -> m
    | _ -> invalid_arg ("Vmm.freeze_fork_state: cannot resolve " ^ what)
  in
  {
    fs_ram = Mem.freeze (mem_at "guest RAM" t.ram_hva);
    fs_databuf = Mem.freeze (mem_at "bounce buffer" t.databuf);
  }

let run_task t ~name thunk =
  Vm.enqueue_task t.vm ~name thunk;
  run_until_idle t

let in_guest t f =
  let result = ref None in
  run_task t ~name:"in-guest" (fun () -> result := Some (f ()));
  match !result with
  | Some v -> v
  | None -> failwith "Vmm.in_guest: guest context never completed"
