(** A userspace VMM running over the simulated KVM.

    One [t] is one hypervisor process with mapped guest RAM, a qemu-blk
    style VirtIO block device (ioeventfd doorbell + irqfd completion +
    an iothread doing pread/pwrite syscalls against the disk image — so
    a tracer taxing the process's syscalls taxes exactly this path),
    optionally a 9p device, and a KVM_RUN exit loop. *)

type t

type fork_source = { fs_ram : bytes; fs_databuf : bytes }
(** Frozen per-VM memory regions of a baked baseline: guest RAM and
    the VMM's disk bounce buffer (see {!freeze_fork_state}). *)

val create :
  Hostos.Host.t -> profile:Profile.t -> disk:Blockdev.Backend.t ->
  ?ram_mb:int -> ?vcpus:int -> ?disable_seccomp:bool ->
  ?ninep_root:Blockdev.Simplefs.t -> ?fork:fork_source -> unit -> t
(** Spawn the hypervisor process, create the VM, map RAM, register the
    memslot, create vCPUs and instantiate the profile's devices.
    [disable_seccomp] models running Firecracker with its filters off
    (required for VMSH attach, §6.2). *)

val host : t -> Hostos.Host.t
val proc : t -> Hostos.Proc.t
val pid : t -> int
val profile : t -> Profile.t
val kvm_vm : t -> Kvm.Vm.t
val disk : t -> Blockdev.Backend.t
val guest : t -> Linux_guest.Guest.t option
val guest_exn : t -> Linux_guest.Guest.t

val boot :
  ?boot_rng:Hostos.Rng.t -> ?prebuilt_image:bytes -> t ->
  version:Linux_guest.Kernel_version.t -> Linux_guest.Guest.t
(** Install the synthetic guest kernel and run the vCPU until the
    guest's init task completes (devices probed, root mounted).
    [boot_rng] overrides the RNG stream the guest boots under (a fork
    replays its baseline's stream so KASLR, symbol layout and every
    allocation land identically); [prebuilt_image] skips the image
    encoding and installs the given bytes (the baseline's frozen
    kernel image). *)

val freeze_fork_state : t -> fork_source
(** Copy out the regions a fork shares (guest RAM, bounce buffer).
    Call on a baked baseline VM at the attach-ready point. *)

exception Stuck of string
(** Raised when the guest can make no progress (all contexts parked and
    no interrupts pending) or the exit budget is exhausted. *)

val run_until_idle : ?max_exits:int -> t -> unit
(** Drive vCPU 0: re-enter KVM_RUN, emulating this VMM's own MMIO
    devices on exits, until the guest goes idle. *)

val run_task : t -> name:string -> (unit -> unit) -> unit
(** Enqueue guest work and drive it to completion. *)

val in_guest : t -> (unit -> 'a) -> 'a
(** Run a thunk as guest code (effects allowed) and return its value.
    Raises [Failure] if the guest context parked forever. *)

val crashed : t -> bool
