(* Crash-point sweep: the robustness gate for transactional attach.

   For every fault class (plus a fault-free lane) the sweep first runs a
   probe attach with the crash point parked beyond reach to learn Y, the
   number of cooperative yield points the attach path crosses, then
   re-runs the attach Y more times with [abort-at-yield(k)] armed for
   every k in [0, Y). Each point boots a fresh simulated machine, so the
   points are independent and can be interleaved by the virtual-time
   scheduler (the fleet-shaped crash matrix).

   Every aborted point must satisfy three post-conditions:
   - the error is a clean, parseable {!Vmsh.Vmsh_error.t} (an escaped
     exception is reported as unclean);
   - the snapshot oracle finds guest memory and vCPU registers
     byte-identical to the pre-attach capture, modulo pages the guest
     itself dirtied;
   - the host-wide open-descriptor count returns to its pre-attach
     value (nothing leaked in the VMSH process or the hypervisor). *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module KV = Linux_guest.Kernel_version

type point = {
  pt_class : string;  (** armed fault class, or ["fault-free"] *)
  pt_yield : int;  (** k of [abort-at-yield(k)]; the probe uses [-1] *)
  pt_outcome : string;  (** ["completed"] / ["aborted"] / ["clean-fail"] *)
  pt_error : string option;  (** rendered error when not completed *)
  pt_oracle : string list;  (** oracle discrepancies; [[]] = restored *)
  pt_leaked_fds : int;  (** host-wide open-fd delta after the point *)
  pt_unclean : string option;  (** escaped exception, if any *)
  pt_digest : string;  (** {!Vmsh.Snapshot.digest} of the final guest state *)
  pt_events : Trace.event list;  (** the point's flight recording *)
  pt_virtual_ns : float;  (** the point's virtual clock at the end *)
}

type report = {
  sw_points : point list;
  sw_classes : int;
  sw_oracle_pass : int;
  sw_oracle_fail : int;
  sw_leaked_fds : int;
  sw_unclean : int;
}

let fault_free = "fault-free"

let boot_disk h =
  let disk = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:4096 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string "sweep-vm\n"));
  Sfs.sync fs;
  disk

let tools_image clock =
  match
    Blockdev.Image.pack ~clock [ Blockdev.Image.file "/bin/busybox" 800_000 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith (H.Errno.show e)

let open_fds h =
  List.fold_left
    (fun acc p -> acc + List.length (H.Proc.fd_numbers p))
    0 h.H.Host.procs

let class_label = function Some c -> Faults.name c | None -> fault_free

(* The attach path renders a fired crash point through this message (a
   stable part of the error taxonomy, round-tripped by Vmsh_error). *)
let crash_point_fired msg =
  let needle = "crash point at yield" in
  let nl = String.length needle and ml = String.length msg in
  let rec scan i = i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1)) in
  scan 0

(* One sweep point: fresh machine, armed plan, one attach. [k = None]
   is the probe (crash point parked at max_int); returns the point and,
   for the probe, the yield count the attach crossed. [?plan] lets the
   trace-mutation fuzzer run the same harness under its own scripted
   fault plan instead of the sweep's class arming. [?baseline] stands
   the point's machine up as a CoW fork of a baked image instead of a
   cold boot, so the crash matrix also covers forked sessions — the
   rollback oracle then proves restoration through the overlay. *)
let run_point ?log_level ?plan ?baseline ?hostile ~seed ~cls ~k () =
  let host = H.Host.create ~seed () in
  Option.iter (Observe.set_log_level host.H.Host.observe) log_level;
  (* scenario meta makes the point's flight recording self-describing:
     [vmsh trace replay] re-runs this exact cell from the file alone.
     The "hostile" key is only written for hostile cells so plain-sweep
     recordings stay byte-identical to earlier versions. *)
  let rec_meta =
    [
      ("scenario", "sweep-cell");
      ("sweep-seed", string_of_int seed);
      ("class", class_label cls);
      ("k", string_of_int (Option.value k ~default:(-1)));
      ("boot", (match baseline with Some _ -> "fork" | None -> "cold"));
    ]
    @
    match hostile with
    | Some h -> [ ("hostile", Hostile.name h) ]
    | None -> []
  in
  List.iter (fun (key, v) -> Trace.Recorder.set_meta host.H.Host.recorder key v)
    rec_meta;
  let vmm =
    match baseline with
    | None ->
        let vmm =
          Vmm.create host ~profile:Profile.qemu ~disk:(boot_disk host) ()
        in
        ignore (Vmm.boot vmm ~version:KV.V5_10);
        vmm
    | Some img -> (
        match Baseline.fork img ~host ~profile:Profile.qemu ~name:"sweep-vm" with
        | Ok f -> f.Baseline.fk_vmm
        | Error e -> Vmsh.Vmsh_error.fail e)
  in
  let vm = Vmm.kvm_vm vmm in
  let plan =
    match plan with
    | Some p -> p
    | None ->
        let p =
          Faults.create ~seed:((seed * 31) + Option.value k ~default:0)
            ~rate:0.0 ()
        in
        (match cls with
        | Some c -> Faults.set_class p c ~rate:1.0 ~cap:2
        | None -> ());
        p
  in
  Faults.set_abort_at_yield plan (Some (Option.value k ~default:max_int));
  (* the timewarp lowering's executor: a scripted skew at yield point n
     stretches the virtual clock by the factor's excess over unity — a
     4000-permille warp inserts 3 ms of virtual latency right there.
     Compression factors (< 1000) fire but add nothing: virtual time is
     monotone. *)
  if Faults.skew_script plan <> [] then
    Faults.set_on_skew plan
      (Some
         (fun permille ->
           let stretch_ns = float_of_int (max 0 (permille - 1000)) *. 1e3 in
           if stretch_ns > 0. then H.Clock.advance host.H.Host.clock stretch_ns));
  (* the hostile engine rides the same yield-point stream the crash
     point enumerates: one adversarial action per cooperative yield of
     the attach path, from its own seeded stream *)
  (match hostile with
  | Some h ->
      let eng = Hostile.create ~seed ~cls:h vmm in
      Faults.set_on_yield plan (Some (fun _ -> Hostile.step eng))
  | None -> ());
  let before = Vmsh.Snapshot.capture vm in
  let fds_before = open_fds host in
  let config = Vmsh.Attach.Config.(with_faults plan (make ())) in
  let outcome, error, late_writes, unclean, yields =
    match
      Vmsh.Attach.attach host ~hypervisor_pid:(Vmm.pid vmm)
        ~fs_image:(tools_image host.H.Host.clock)
        ~config
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | Ok session -> (
        let yields = Faults.yield_ticks plan in
        ignore (Vmsh.Attach.console_recv session);
        let out = Vmsh.Attach.console_roundtrip session "hostname" in
        let late =
          match Vmsh.Attach.journal session with
          | Some j -> Vmsh.Journal.late_writes j
          | None -> []
        in
        match Vmsh.Attach.detach session with
        | Ok () when String.length out > 0 ->
            ("completed", None, late, None, yields)
        | Ok () ->
            ("completed", None, late, Some "console dead after attach", yields)
        | Error e ->
            ("completed", Some (Vmsh.Vmsh_error.to_string e), late,
             Some "detach failed", yields))
    | Error e ->
        let msg = Vmsh.Vmsh_error.to_string e in
        (* the taxonomy must round-trip: a clean abort is diagnosable
           from its rendered form alone *)
        let unclean =
          if Vmsh.Vmsh_error.to_string (Vmsh.Vmsh_error.of_string msg) <> msg
          then Some ("error does not round-trip: " ^ msg)
          else None
        in
        ((if crash_point_fired msg then "aborted" else "clean-fail"),
         Some msg, [], unclean, 0)
    | exception e ->
        ("unclean", None, [], Some (Printexc.to_string e), 0)
  in
  let exclude = Vmsh.Snapshot.dirty_since vm before @ late_writes in
  let after = Vmsh.Snapshot.capture vm in
  let oracle = Vmsh.Snapshot.diff ~before ~after ~exclude in
  let cell_label =
    match hostile with
    | Some h -> "hostile-" ^ Hostile.name h
    | None -> class_label cls
  in
  let point =
    {
      pt_class = cell_label;
      pt_yield = (match k with Some k -> k | None -> -1);
      pt_outcome = outcome;
      pt_error = error;
      pt_oracle = oracle;
      pt_leaked_fds = open_fds host - fds_before;
      pt_unclean = unclean;
      pt_digest = Vmsh.Snapshot.digest after;
      pt_events = Trace.Recorder.events host.H.Host.recorder;
      pt_virtual_ns = H.Clock.now_ns host.H.Host.clock;
    }
  in
  (* a failed post-condition leaves a replayable artifact when
     VMSH_TRACE_DIR is set (CI uploads them) *)
  if point.pt_oracle <> [] || point.pt_leaked_fds > 0 || point.pt_unclean <> None
  then
    ignore
      (Trace.dump_on_failure host.H.Host.recorder
         ~name:
           (Printf.sprintf "sweep-%s-k%d" point.pt_class
              (Option.value k ~default:(-1)))
         ());
  (point, yields)

(* Run [points] thunks, [vms] at a time, on the virtual-time scheduler
   (vms = 1 degenerates to a plain sequential loop). Every point has
   its own host, so fibers only interleave at the attach path's yield
   points — the same seam the fleet engine exercises. *)
let run_batched ~vms thunks =
  if vms <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let results = Array.make (List.length thunks) None in
    let rec batches i = function
      | [] -> ()
      | rest ->
          let batch = List.filteri (fun j _ -> j < vms) rest in
          let rest' = List.filteri (fun j _ -> j >= vms) rest in
          let sched = Sched.create () in
          List.iteri
            (fun j f ->
              let clock = H.Clock.create () in
              Sched.spawn sched ~name:(Printf.sprintf "pt%d" (i + j)) ~clock
                (fun () -> results.(i + j) <- Some (f ())))
            batch;
          ignore (Sched.run sched);
          batches (i + List.length batch) rest'
    in
    batches 0 thunks;
    List.filter_map Fun.id (Array.to_list results)
  end

let run ?(seed = 5) ?classes ?(vms = 1) ?(max_yields = 256) ?log_level
    ?baseline () =
  let classes =
    match classes with
    | Some cs -> cs
    | None -> None :: List.map Option.some Faults.all
  in
  let points =
    List.concat_map
      (fun cls ->
        (* probe: crash point out of reach; learns Y for this class *)
        let probe, yields =
          run_point ?log_level ?baseline ~seed ~cls ~k:None ()
        in
        let ks = List.init (min yields max_yields) Fun.id in
        let swept =
          run_batched ~vms
            (List.map
               (fun k () ->
                 fst (run_point ?log_level ?baseline ~seed ~cls ~k:(Some k) ()))
               ks)
        in
        probe :: swept)
      classes
  in
  let count f = List.length (List.filter f points) in
  {
    sw_points = points;
    sw_classes = List.length classes;
    sw_oracle_pass = count (fun p -> p.pt_oracle = []);
    sw_oracle_fail = count (fun p -> p.pt_oracle <> []);
    sw_leaked_fds = List.fold_left (fun a p -> a + max 0 p.pt_leaked_fds) 0 points;
    sw_unclean = count (fun p -> p.pt_unclean <> None);
  }

(* The hostile-guest chaos matrix: hostile-class × crash-point cells.
   Same probe-then-sweep shape as the fault matrix, but instead of an
   armed fault class each cell runs a seeded adversarial guest (see
   {!Hostile}) stepping at every yield point while the crash point is
   additionally enumerated — the attack races both the attach and its
   rollback. Post-conditions are identical: every cell must end in a
   completed attach or a clean, round-trippable abort with the snapshot
   oracle passing and no descriptor leaked. *)
let run_hostile ?(seed = 11) ?classes ?(vms = 1) ?(max_yields = 256) ?log_level
    ?baseline () =
  let classes =
    match classes with Some cs -> cs | None -> Hostile.all
  in
  let points =
    List.concat_map
      (fun h ->
        let probe, yields =
          run_point ?log_level ?baseline ~hostile:h ~seed ~cls:None ~k:None ()
        in
        let ks = List.init (min yields max_yields) Fun.id in
        let swept =
          run_batched ~vms
            (List.map
               (fun k () ->
                 fst
                   (run_point ?log_level ?baseline ~hostile:h ~seed ~cls:None
                      ~k:(Some k) ()))
               ks)
        in
        probe :: swept)
      classes
  in
  let count f = List.length (List.filter f points) in
  {
    sw_points = points;
    sw_classes = List.length classes;
    sw_oracle_pass = count (fun p -> p.pt_oracle = []);
    sw_oracle_fail = count (fun p -> p.pt_oracle <> []);
    sw_leaked_fds = List.fold_left (fun a p -> a + max 0 p.pt_leaked_fds) 0 points;
    sw_unclean = count (fun p -> p.pt_unclean <> None);
  }

let ok r = r.sw_oracle_fail = 0 && r.sw_leaked_fds = 0 && r.sw_unclean = 0

let record mx r =
  let set name v =
    Observe.Metrics.set_counter (Observe.Metrics.counter mx name) v
  in
  set "sweep.points" (List.length r.sw_points);
  set "sweep.classes" r.sw_classes;
  set "sweep.oracle_pass" r.sw_oracle_pass;
  set "sweep.oracle_fail" r.sw_oracle_fail;
  set "sweep.leaked_fds" r.sw_leaked_fds;
  set "sweep.unclean" r.sw_unclean;
  set "sweep.aborted"
    (List.length (List.filter (fun p -> p.pt_outcome = "aborted") r.sw_points));
  set "sweep.completed"
    (List.length (List.filter (fun p -> p.pt_outcome = "completed") r.sw_points));
  (* per-cell-class coverage, so the CI gates can prove every class
     (fault or hostile) actually swept at least one cell *)
  List.iter
    (fun p ->
      Observe.Metrics.incr
        (Observe.Metrics.counter mx ("sweep.cells." ^ p.pt_class)))
    r.sw_points

let pp_point ppf p =
  Format.fprintf ppf "%-13s k=%-3s %-10s oracle=%-5s fds=%+d%s%s"
    p.pt_class
    (if p.pt_yield < 0 then "Y" else string_of_int p.pt_yield)
    p.pt_outcome
    (if p.pt_oracle = [] then "pass" else "FAIL")
    p.pt_leaked_fds
    (match p.pt_unclean with Some m -> " UNCLEAN: " ^ m | None -> "")
    (match p.pt_oracle with [] -> "" | d :: _ -> " (" ^ d ^ ")")
