module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module KV = Linux_guest.Kernel_version
module E = Vmsh.Vmsh_error
module Sweep = Fleet_sweep
module Baseline = Baseline

let src = Logs.Src.create "vmsh.fleet" ~doc:"VMSH fleet attach engine"

module Log = (val Logs.src_log src : Logs.LOG)

(* --- configuration ------------------------------------------------ *)

module Config = struct
  type boot_source = Cold_boot | Fork_of of Baseline.image

  type t = {
    vms : int;
    seed : int;
    profile : Profile.t;
    version : KV.t;
    fault_rate : float;
    share_symbols : bool;
    log_level : Observe.level option;
    boot_source : boot_source;
  }

  let make ?(vms = 1) () =
    {
      vms;
      seed = 7;
      profile = Profile.qemu;
      version = KV.V5_10;
      fault_rate = 0.0;
      share_symbols = true;
      log_level = None;
      boot_source = Cold_boot;
    }

  let with_vms vms t = { t with vms }
  let with_seed seed t = { t with seed }
  let with_profile profile t = { t with profile }
  let with_version version t = { t with version }
  let with_fault_rate fault_rate t = { t with fault_rate }
  let with_share_symbols share_symbols t = { t with share_symbols }
  let with_log_level level t = { t with log_level = Some level }
  let with_boot_source boot_source t = { t with boot_source }
  let vms t = t.vms
  let seed t = t.seed
  let profile t = t.profile
  let version t = t.version
  let fault_rate t = t.fault_rate
  let share_symbols t = t.share_symbols
  let log_level t = t.log_level
  let boot_source t = t.boot_source
  let is_fork t = match t.boot_source with Fork_of _ -> true | Cold_boot -> false

  let validate t =
    if t.vms <= 0 then Error (E.Invalid_config "fleet: vms must be positive")
    else if t.fault_rate < 0.0 || t.fault_rate > 1.0 then
      Error (E.Invalid_config "fleet: fault_rate must be within [0, 1]")
    else
      match t.boot_source with
      | Cold_boot -> Ok t
      | Fork_of img -> (
          match Baseline.validate img ~profile:t.profile ~version:t.version with
          | Ok () -> Ok t
          | Error e -> Error e)
end

(* --- per-session reports ------------------------------------------ *)

type session_report = {
  s_name : string;
  s_result : (unit, string) result;
  s_attach_ns : float;
  s_fork_ns : float;
  s_total_ns : float;
  s_host : H.Host.t;
  s_digest : string;
}

type report = {
  r_vms : int;
  r_seed : int;
  r_forked : bool;
  r_sessions : session_report list;
  r_yields : int;
  r_cache_hits : int;
  r_cache_misses : int;
  r_schedule : string;
}

let boot_disk h ~name =
  let disk = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:4096 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string (name ^ "\n")));
  Sfs.sync fs;
  disk

let tools_image clock =
  match
    Blockdev.Image.pack ~clock [ Blockdev.Image.file "/bin/busybox" 800_000 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith (H.Errno.show e)

(* Stand up the session's machine: a cold boot builds disk + VMM +
   guest from scratch; a fork clones the baked baseline through CoW
   overlays and is charged only the linked-clone cost. Returns the live
   VMM plus the virtual nanoseconds the stand-up cost this session. *)
let provision ~host ~name ~(cfg : Config.t) =
  let t0 = H.Clock.now_ns host.H.Host.clock in
  match cfg.Config.boot_source with
  | Config.Cold_boot ->
      let disk = boot_disk host ~name in
      let disable_seccomp =
        cfg.Config.profile.Profile.prof_name = "Firecracker"
      in
      let vmm =
        Vmm.create host ~profile:cfg.Config.profile ~disk ~disable_seccomp ()
      in
      ignore (Vmm.boot vmm ~version:cfg.Config.version);
      Ok (vmm, H.Clock.now_ns host.H.Host.clock -. t0)
  | Config.Fork_of img -> (
      match
        Baseline.fork img ~host ~profile:cfg.Config.profile ~name
      with
      | Ok f -> Ok (f.Baseline.fk_vmm, f.Baseline.fk_fork_ns)
      | Error e -> Error e)

(* Fold the fork's overlay occupancy into the session registry so the
   merged fleet document carries the real memory story: pages still
   shared with the baseline vs pages the clone privately copied. *)
let observe_overlay mx vmm =
  let p = Vmm.proc vmm in
  let ram = H.Mem.Addr_space.cow_totals p.H.Proc.aspace in
  let disk =
    match H.Mem.cow_stats (Blockdev.Backend.mem (Vmm.disk vmm)) with
    | Some s -> s
    | None ->
        {
          H.Mem.cs_pages_total = 0;
          cs_pages_copied = 0;
          cs_silent_writes = 0;
          cs_resident_bytes = 0;
        }
  in
  let set name v =
    Observe.Metrics.set_counter (Observe.Metrics.counter mx name) v
  in
  let total = ram.H.Mem.cs_pages_total + disk.H.Mem.cs_pages_total in
  let copied = ram.H.Mem.cs_pages_copied + disk.H.Mem.cs_pages_copied in
  set "overlay.pages_copied" copied;
  set "overlay.pages_shared" (total - copied);
  set "overlay.silent_writes"
    (ram.H.Mem.cs_silent_writes + disk.H.Mem.cs_silent_writes);
  set "overlay.resident_bytes"
    (ram.H.Mem.cs_resident_bytes + disk.H.Mem.cs_resident_bytes)

(* One fleet session: stand up a VM on its own host (cold boot or CoW
   fork), attach, prove the overlay answers on the console, detach.
   Runs as a fiber; every step between yield points touches only this
   session's host. *)
let session ~host ~name ~(cfg : Config.t) ~index ~cache results () =
  (* tag every flight event and any failure artifact with the session *)
  Trace.Recorder.set_session host.H.Host.recorder index;
  Trace.Recorder.set_meta host.H.Host.recorder "session" name;
  Trace.Recorder.set_meta host.H.Host.recorder "boot"
    (if Config.is_fork cfg then "fork" else "cold");
  match provision ~host ~name ~cfg with
  | Error e ->
      results.(index) <-
        Some
          {
            s_name = name;
            s_result = Error (E.to_string e);
            s_attach_ns = Float.nan;
            s_fork_ns = Float.nan;
            s_total_ns = H.Clock.now_ns host.H.Host.clock;
            s_host = host;
            s_digest = "";
          }
  | Ok (vmm, standup_ns) ->
      let mx = Observe.metrics host.H.Host.observe in
      let fork_ns =
        if Config.is_fork cfg then begin
          Observe.Metrics.observe
            (Observe.Metrics.histogram mx "fleet.fork_ns")
            standup_ns;
          standup_ns
        end
        else Float.nan
      in
      let t0 = H.Clock.now_ns host.H.Host.clock in
      let config =
        let open Vmsh.Attach.Config in
        let c = make () in
        let c =
          match cache with Some k -> with_symbol_cache k c | None -> c
        in
        if cfg.Config.fault_rate > 0.0 then
          with_faults
            (Faults.create
               ~seed:((cfg.Config.seed * 31) + index)
               ~rate:cfg.Config.fault_rate ())
            c
        else c
      in
      let result =
        match
          Vmsh.Attach.attach host ~hypervisor_pid:(Vmm.pid vmm)
            ~fs_image:(tools_image host.H.Host.clock)
            ~config
            ~pump:(fun () -> Vmm.run_until_idle vmm)
            ()
        with
        | Error e -> Error (E.to_string e)
        | Ok sess -> (
            ignore (Vmsh.Attach.console_recv sess);
            let out = Vmsh.Attach.console_roundtrip sess "hostname" in
            match Vmsh.Attach.detach sess with
            | Error e -> Error (E.to_string e)
            | Ok () ->
                if String.length out = 0 then Error "console dead after attach"
                else if
                  (* a fork must answer with its own per-clone hostname:
                     the one write that diverged it from the baseline —
                     and from every sibling *)
                  Config.is_fork cfg
                  && not (String.length out > String.length name
                          && String.sub out 0 (String.length name + 1)
                             = name ^ "\n")
                then
                  Error
                    (Printf.sprintf
                       "fork isolation: console answered %S, want %S" out name)
                else Ok ())
      in
      let now = H.Clock.now_ns host.H.Host.clock in
      if Config.is_fork cfg then observe_overlay mx vmm;
      (* zero-virtual-cost guest-state digest: the replay-diff oracle
         compares it between a live fleet run and its replay *)
      let digest =
        Vmsh.Snapshot.digest (Vmsh.Snapshot.capture (Vmm.kvm_vm vmm))
      in
      results.(index) <-
        Some
          {
            s_name = name;
            s_result = result;
            s_attach_ns = now -. t0;
            s_fork_ns = fork_ns;
            s_total_ns = now;
            s_host = host;
            s_digest = digest;
          }

let counter_value mx name =
  Observe.Metrics.counter_value (Observe.Metrics.counter mx name)

let run_validated (cfg : Config.t) =
  let vms = cfg.Config.vms and seed = cfg.Config.seed in
  let cache =
    if cfg.Config.share_symbols then
      Some (Vmsh.Symbol_analysis.Cache.create ())
    else None
  in
  let sched = Sched.create () in
  let schedule = Buffer.create (vms * 256) in
  let slice = ref 0 in
  Sched.set_tracer sched
    (Some
       (fun ~name ~now_ns ->
         Buffer.add_string schedule
           (Printf.sprintf "slice %d %s t=%.0f\n" !slice name now_ns);
         incr slice));
  let results = Array.make vms None in
  let hosts =
    List.init vms (fun i ->
        (* distinct, well-separated seed per session: each host draws an
           independent deterministic RNG stream *)
        let host = H.Host.create ~seed:((seed * 1009) + (i * 17)) () in
        Option.iter
          (Observe.set_log_level host.H.Host.observe)
          cfg.Config.log_level;
        let name = Printf.sprintf "vm%d" i in
        Sched.spawn sched ~name ~clock:host.H.Host.clock
          (session ~host ~name ~cfg ~index:i ~cache results);
        host)
  in
  let outcomes = Sched.run sched in
  List.iteri
    (fun i (name, outcome) ->
      match (outcome, results.(i)) with
      | Sched.Done, Some _ -> ()
      | Sched.Done, None | Sched.Failed _, _ ->
          (* the fiber died before filing its report (escaped exception
             or an aborted run): synthesize a failed session so the
             report always has [vms] entries *)
          let msg =
            match outcome with
            | Sched.Failed e -> Printexc.to_string e
            | Sched.Done -> "session filed no report"
          in
          let host = List.nth hosts i in
          results.(i) <-
            Some
              {
                s_name = name;
                s_result = Error msg;
                s_attach_ns = Float.nan;
                s_fork_ns = Float.nan;
                s_total_ns = H.Clock.now_ns host.H.Host.clock;
                s_host = host;
                s_digest = "";
              })
    outcomes;
  (* every failed session leaves a replayable artifact when
     VMSH_TRACE_DIR is set (CI uploads them) *)
  Array.iter
    (fun r ->
      match r with
      | Some s when Result.is_error s.s_result ->
          ignore
            (Trace.dump_on_failure s.s_host.H.Host.recorder
               ~name:(Printf.sprintf "fleet-s%d-%s" seed s.s_name)
               ~extra_meta:
                 [
                   ("scenario", "fleet");
                   ("fleet-seed", string_of_int seed);
                   ("vms", string_of_int vms);
                   ( "boot",
                     if Config.is_fork cfg then "fork" else "cold" );
                   ("error", Result.fold ~ok:(fun () -> "") ~error:Fun.id s.s_result);
                 ]
               ())
      | _ -> ())
    results;
  let hits, misses =
    List.fold_left
      (fun (h, m) host ->
        let mx = Observe.metrics host.H.Host.observe in
        ( h + counter_value mx "symcache.hits",
          m + counter_value mx "symcache.misses" ))
      (0, 0) hosts
  in
  {
    r_vms = vms;
    r_seed = seed;
    r_forked = Config.is_fork cfg;
    r_sessions = List.filter_map Fun.id (Array.to_list results);
    r_yields = Sched.yields sched;
    r_cache_hits = hits;
    r_cache_misses = misses;
    r_schedule = Buffer.contents schedule;
  }

let run cfg =
  match Config.validate cfg with
  | Error e -> Error e
  | Ok cfg -> Ok (run_validated cfg)

let successes r =
  List.filter_map
    (fun s -> if Result.is_ok s.s_result then Some s.s_attach_ns else None)
    r.r_sessions

let fork_latencies r =
  List.filter_map
    (fun s ->
      if Result.is_ok s.s_result && not (Float.is_nan s.s_fork_ns) then
        Some s.s_fork_ns
      else None)
    r.r_sessions

let record mx ~label r =
  let hist = Observe.Metrics.histogram mx ("fleet.attach_ns." ^ label) in
  List.iter (Observe.Metrics.observe hist) (successes r);
  (match fork_latencies r with
  | [] -> ()
  | forks ->
      let fh = Observe.Metrics.histogram mx ("fleet.fork_ns." ^ label) in
      List.iter (Observe.Metrics.observe fh) forks);
  let bump name by =
    Observe.Metrics.incr ~by (Observe.Metrics.counter mx name)
  in
  if r.r_cache_hits > 0 then bump "symcache.hits" r.r_cache_hits;
  if r.r_cache_misses > 0 then bump "symcache.misses" r.r_cache_misses;
  bump ("fleet.yields." ^ label) r.r_yields;
  let failures =
    List.length (List.filter (fun s -> Result.is_error s.s_result) r.r_sessions)
  in
  if failures > 0 then bump ("fleet.failures." ^ label) failures

let percentile_of xs p =
  match xs with
  | [] -> Float.nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) i))

let attach_p r p = percentile_of (successes r) p
let fork_p r p = percentile_of (fork_latencies r) p

(* One hex digest over every session's final guest-state digest, in
   session order — the fleet-wide half of the replay-diff oracle. *)
let digest r =
  Digest.to_hex
    (Digest.string (String.concat ";" (List.map (fun s -> s.s_digest) r.r_sessions)))

(* The fleet's merged flight recording: each session's events in
   session order (each already tagged with its session id). Sessions
   are deterministic, so the concatenation is too. *)
let flight_events r =
  List.concat_map
    (fun s -> Trace.Recorder.events s.s_host.H.Host.recorder)
    r.r_sessions

(* One fleet-wide metrics document: per-session registries folded into
   a global registry (counters and histogram buckets add, so the fleet
   p50/p99 come from every session's samples), plus the per-session
   breakdown. *)
let metrics_json r =
  let agg = Observe.create ~now:(fun () -> 0.0) () in
  let mx = Observe.metrics agg in
  List.iter
    (fun s -> Observe.Metrics.merge_into ~into:mx
        (Observe.metrics s.s_host.H.Host.observe))
    r.r_sessions;
  (* the merge already folded each session's symcache, recovery, stage
     and overlay counters together; add only the fleet-level summary
     the sessions cannot know *)
  let hist = Observe.Metrics.histogram mx "fleet.attach_ns.fleet" in
  List.iter (Observe.Metrics.observe hist) (successes r);
  (match fork_latencies r with
  | [] -> ()
  | forks ->
      let fh = Observe.Metrics.histogram mx "fleet.fork_ns.fleet" in
      List.iter (Observe.Metrics.observe fh) forks);
  Observe.Metrics.set_counter
    (Observe.Metrics.counter mx "fleet.yields.fleet")
    r.r_yields;
  let failures =
    List.length (List.filter (fun s -> Result.is_error s.s_result) r.r_sessions)
  in
  if failures > 0 then
    Observe.Metrics.set_counter
      (Observe.Metrics.counter mx "fleet.failures.fleet")
      failures;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"fleet\": ";
  Buffer.add_string b (Observe.Export.metrics_json agg);
  Buffer.add_string b ", \"sessions\": {";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%S: " s.s_name);
      Buffer.add_string b (Observe.Export.metrics_json s.s_host.H.Host.observe))
    r.r_sessions;
  Buffer.add_string b "}}";
  Buffer.contents b
