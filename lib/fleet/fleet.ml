module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module KV = Linux_guest.Kernel_version
module Sweep = Fleet_sweep

let src = Logs.Src.create "vmsh.fleet" ~doc:"VMSH fleet attach engine"

module Log = (val Logs.src_log src : Logs.LOG)

type session_report = {
  s_name : string;
  s_result : (unit, string) result;
  s_attach_ns : float;
  s_total_ns : float;
  s_host : H.Host.t;
  s_digest : string;
}

type report = {
  r_vms : int;
  r_seed : int;
  r_sessions : session_report list;
  r_yields : int;
  r_cache_hits : int;
  r_cache_misses : int;
  r_schedule : string;
}

let boot_disk h ~name =
  let disk = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:4096 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string (name ^ "\n")));
  Sfs.sync fs;
  disk

let tools_image clock =
  match
    Blockdev.Image.pack ~clock [ Blockdev.Image.file "/bin/busybox" 800_000 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith (H.Errno.show e)

(* One fleet session: boot a fresh VM on its own host, attach, prove
   the overlay answers on the console, detach. Runs as a fiber; every
   step between yield points touches only this session's host. *)
let session ~host ~name ~profile ~version ~fault_rate ~seed ~index ~cache
    results () =
  (* tag every flight event and any failure artifact with the session *)
  Trace.Recorder.set_session host.H.Host.recorder index;
  Trace.Recorder.set_meta host.H.Host.recorder "session" name;
  let disk = boot_disk host ~name in
  let disable_seccomp = profile.Profile.prof_name = "Firecracker" in
  let vmm = Vmm.create host ~profile ~disk ~disable_seccomp () in
  ignore (Vmm.boot vmm ~version);
  let t0 = H.Clock.now_ns host.H.Host.clock in
  let config =
    let open Vmsh.Attach.Config in
    let c = make () in
    let c = match cache with Some k -> with_symbol_cache k c | None -> c in
    if fault_rate > 0.0 then
      with_faults (Faults.create ~seed:((seed * 31) + index) ~rate:fault_rate ()) c
    else c
  in
  let result =
    match
      Vmsh.Attach.attach host ~hypervisor_pid:(Vmm.pid vmm)
        ~fs_image:(tools_image host.H.Host.clock)
        ~config
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | Error e -> Error (Vmsh.Vmsh_error.to_string e)
    | Ok sess -> (
        ignore (Vmsh.Attach.console_recv sess);
        let out = Vmsh.Attach.console_roundtrip sess "hostname" in
        match Vmsh.Attach.detach sess with
        | Error e -> Error (Vmsh.Vmsh_error.to_string e)
        | Ok () ->
            if String.length out = 0 then Error "console dead after attach"
            else Ok ())
  in
  let now = H.Clock.now_ns host.H.Host.clock in
  (* zero-virtual-cost guest-state digest: the replay-diff oracle
     compares it between a live fleet run and its replay *)
  let digest = Vmsh.Snapshot.digest (Vmsh.Snapshot.capture (Vmm.kvm_vm vmm)) in
  results.(index) <-
    Some
      {
        s_name = name;
        s_result = result;
        s_attach_ns = now -. t0;
        s_total_ns = now;
        s_host = host;
        s_digest = digest;
      }

let counter_value mx name =
  Observe.Metrics.counter_value (Observe.Metrics.counter mx name)

let run ?(seed = 7) ?(profile = Profile.qemu) ?(version = KV.V5_10)
    ?(fault_rate = 0.0) ?(share_symbols = true) ?log_level ~vms () =
  if vms <= 0 then invalid_arg "Fleet.run: vms must be positive";
  let cache =
    if share_symbols then Some (Vmsh.Symbol_analysis.Cache.create ()) else None
  in
  let sched = Sched.create () in
  let schedule = Buffer.create (vms * 256) in
  let slice = ref 0 in
  Sched.set_tracer sched
    (Some
       (fun ~name ~now_ns ->
         Buffer.add_string schedule
           (Printf.sprintf "slice %d %s t=%.0f\n" !slice name now_ns);
         incr slice));
  let results = Array.make vms None in
  let hosts =
    List.init vms (fun i ->
        (* distinct, well-separated seed per session: each host draws an
           independent deterministic RNG stream *)
        let host = H.Host.create ~seed:((seed * 1009) + (i * 17)) () in
        Option.iter (Observe.set_log_level host.H.Host.observe) log_level;
        let name = Printf.sprintf "vm%d" i in
        Sched.spawn sched ~name ~clock:host.H.Host.clock
          (session ~host ~name ~profile ~version ~fault_rate ~seed ~index:i
             ~cache results);
        host)
  in
  let outcomes = Sched.run sched in
  List.iteri
    (fun i (name, outcome) ->
      match (outcome, results.(i)) with
      | Sched.Done, Some _ -> ()
      | Sched.Done, None | Sched.Failed _, _ ->
          (* the fiber died before filing its report (escaped exception
             or an aborted run): synthesize a failed session so the
             report always has [vms] entries *)
          let msg =
            match outcome with
            | Sched.Failed e -> Printexc.to_string e
            | Sched.Done -> "session filed no report"
          in
          let host = List.nth hosts i in
          results.(i) <-
            Some
              {
                s_name = name;
                s_result = Error msg;
                s_attach_ns = Float.nan;
                s_total_ns = H.Clock.now_ns host.H.Host.clock;
                s_host = host;
                s_digest = "";
              })
    outcomes;
  (* every failed session leaves a replayable artifact when
     VMSH_TRACE_DIR is set (CI uploads them) *)
  Array.iter
    (fun r ->
      match r with
      | Some s when Result.is_error s.s_result ->
          ignore
            (Trace.dump_on_failure s.s_host.H.Host.recorder
               ~name:(Printf.sprintf "fleet-s%d-%s" seed s.s_name)
               ~extra_meta:
                 [
                   ("scenario", "fleet");
                   ("fleet-seed", string_of_int seed);
                   ("vms", string_of_int vms);
                   ("error", Result.fold ~ok:(fun () -> "") ~error:Fun.id s.s_result);
                 ]
               ())
      | _ -> ())
    results;
  let hits, misses =
    List.fold_left
      (fun (h, m) host ->
        let mx = Observe.metrics host.H.Host.observe in
        ( h + counter_value mx "symcache.hits",
          m + counter_value mx "symcache.misses" ))
      (0, 0) hosts
  in
  {
    r_vms = vms;
    r_seed = seed;
    r_sessions = List.filter_map Fun.id (Array.to_list results);
    r_yields = Sched.yields sched;
    r_cache_hits = hits;
    r_cache_misses = misses;
    r_schedule = Buffer.contents schedule;
  }

let successes r =
  List.filter_map
    (fun s -> if Result.is_ok s.s_result then Some s.s_attach_ns else None)
    r.r_sessions

let record mx ~label r =
  let hist = Observe.Metrics.histogram mx ("fleet.attach_ns." ^ label) in
  List.iter (Observe.Metrics.observe hist) (successes r);
  let bump name by =
    Observe.Metrics.incr ~by (Observe.Metrics.counter mx name)
  in
  if r.r_cache_hits > 0 then bump "symcache.hits" r.r_cache_hits;
  if r.r_cache_misses > 0 then bump "symcache.misses" r.r_cache_misses;
  bump ("fleet.yields." ^ label) r.r_yields;
  let failures =
    List.length (List.filter (fun s -> Result.is_error s.s_result) r.r_sessions)
  in
  if failures > 0 then bump ("fleet.failures." ^ label) failures

let attach_p r p =
  match successes r with
  | [] -> Float.nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) i))

(* One hex digest over every session's final guest-state digest, in
   session order — the fleet-wide half of the replay-diff oracle. *)
let digest r =
  Digest.to_hex
    (Digest.string (String.concat ";" (List.map (fun s -> s.s_digest) r.r_sessions)))

(* The fleet's merged flight recording: each session's events in
   session order (each already tagged with its session id). Sessions
   are deterministic, so the concatenation is too. *)
let flight_events r =
  List.concat_map
    (fun s -> Trace.Recorder.events s.s_host.H.Host.recorder)
    r.r_sessions

(* One fleet-wide metrics document: per-session registries folded into
   a global registry (counters and histogram buckets add, so the fleet
   p50/p99 come from every session's samples), plus the per-session
   breakdown. *)
let metrics_json r =
  let agg = Observe.create ~now:(fun () -> 0.0) () in
  let mx = Observe.metrics agg in
  List.iter
    (fun s -> Observe.Metrics.merge_into ~into:mx
        (Observe.metrics s.s_host.H.Host.observe))
    r.r_sessions;
  (* the merge already folded each session's symcache, recovery and
     stage counters together; add only the fleet-level summary the
     sessions cannot know *)
  let hist = Observe.Metrics.histogram mx "fleet.attach_ns.fleet" in
  List.iter (Observe.Metrics.observe hist) (successes r);
  Observe.Metrics.set_counter
    (Observe.Metrics.counter mx "fleet.yields.fleet")
    r.r_yields;
  let failures =
    List.length (List.filter (fun s -> Result.is_error s.s_result) r.r_sessions)
  in
  if failures > 0 then
    Observe.Metrics.set_counter
      (Observe.Metrics.counter mx "fleet.failures.fleet")
      failures;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"fleet\": ";
  Buffer.add_string b (Observe.Export.metrics_json agg);
  Buffer.add_string b ", \"sessions\": {";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%S: " s.s_name);
      Buffer.add_string b (Observe.Export.metrics_json s.s_host.H.Host.observe))
    r.r_sessions;
  Buffer.add_string b "}}";
  Buffer.contents b
