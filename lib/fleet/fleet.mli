(** Fleet attach engine: N concurrent VMSH attaches over virtual time.

    Each session is a fully independent simulated machine — its own
    {!Hostos.Host.t} (clock, RNG, fault plan), its own hypervisor and
    guest, its own attach. The {!Sched} scheduler interleaves the
    sessions at the yield points the attach path exposes (one injected
    syscall, one KVM_RUN, one status poll per slice), always resuming
    the session whose virtual clock is furthest behind — the
    discrete-event analogue of N vmsh processes sharing one physical
    host.

    Sessions come up in one of two ways, chosen by
    {!Config.boot_source}: a {e cold boot} builds disk, hypervisor and
    guest from scratch, while {!Config.Fork_of} clones a baked
    {!Baseline.image} through per-4KiB-page copy-on-write overlays —
    boot once, fork thousands of times, each fork charged only the
    linked-clone cost (orders of magnitude below a cold boot) and
    resident only for the pages it actually diverges.

    Sessions share exactly one piece of state by design: the
    {!Vmsh.Symbol_analysis.Cache}, so the first attach pays the full
    binary analysis and the other N-1 hit the build-id cache — the
    fleet-scale payoff the bench measures. (Forked sessions also share
    their baseline's frozen pages, read-only.)

    Everything is deterministic: the same {!Config.t} gives a
    byte-identical {!report.r_schedule} and metrics. *)

module Sweep = Fleet_sweep
(** The crash-point sweep: abort-at-yield(k) × fault-class matrix with
    rollback-oracle and fd-leak post-conditions (the crash-matrix CI
    gate). *)

module Baseline = Baseline
(** Baked baseline images and copy-on-write VM forking — boot once,
    fork thousands of linked clones through per-page overlays. *)

(** Fleet configuration: a builder mirroring {!Vmsh.Attach.Config}
    (make / with_* / validate). *)
module Config : sig
  type boot_source =
    | Cold_boot  (** build every session from scratch (the default) *)
    | Fork_of of Baseline.image
        (** clone every session from this baked baseline through CoW
            overlays *)

  type t

  val make : ?vms:int -> unit -> t
  (** Defaults: 1 VM, seed 7, QEMU profile, kernel v5.10, no faults,
      shared symbol cache, quiet logs, cold boot. *)

  val with_vms : int -> t -> t
  val with_seed : int -> t -> t
  val with_profile : Hypervisor.Profile.t -> t -> t
  val with_version : Linux_guest.Kernel_version.t -> t -> t
  val with_fault_rate : float -> t -> t
  val with_share_symbols : bool -> t -> t
  val with_log_level : Observe.level -> t -> t
  val with_boot_source : boot_source -> t -> t

  val vms : t -> int
  val seed : t -> int
  val profile : t -> Hypervisor.Profile.t
  val version : t -> Linux_guest.Kernel_version.t
  val fault_rate : t -> float
  val share_symbols : t -> bool
  val log_level : t -> Observe.level option
  val boot_source : t -> boot_source
  val is_fork : t -> bool

  val validate : t -> (t, Vmsh.Vmsh_error.t) result
  (** [Invalid_config] for a non-positive [vms] or a [fault_rate]
      outside [0, 1]; [Baseline_stale] when [Fork_of img] does not
      match the configured kernel version or hypervisor profile. *)
end

type session_report = {
  s_name : string;  (** ["vm0"], ["vm1"], … *)
  s_result : (unit, string) result;  (** rendered {!Vmsh.Vmsh_error.t} *)
  s_attach_ns : float;  (** virtual ready-to-overlay attach latency *)
  s_fork_ns : float;
      (** virtual cost of standing the session up from its baseline
          ([nan] for a cold boot) *)
  s_total_ns : float;  (** session's final virtual time *)
  s_host : Hostos.Host.t;
      (** the session's simulated machine — carries its metrics
          registry and flight recorder for post-run aggregation *)
  s_digest : string;
      (** {!Vmsh.Snapshot.digest} of the guest after detach; [""] when
          the session died before filing its report *)
}

type report = {
  r_vms : int;
  r_seed : int;
  r_forked : bool;  (** sessions were forked from a baseline *)
  r_sessions : session_report list;  (** in session order *)
  r_yields : int;  (** scheduler suspensions across the run *)
  r_cache_hits : int;  (** symcache.hits summed over sessions *)
  r_cache_misses : int;
  r_schedule : string;
      (** one line per scheduling decision ("slice N vmK t=NS") — the
          byte-comparable witness of the interleaving *)
}

val run : Config.t -> (report, Vmsh.Vmsh_error.t) result
(** Boot (or fork) and attach [Config.vms] sessions concurrently. The
    config is {!Config.validate}d first — a stale baseline or invalid
    combination is rejected as a typed error before any session runs.
    A session failure is reported in its {!session_report}, never
    raised; forked sessions additionally verify their per-clone
    isolation on the console (a fork answering with another clone's —
    or the baseline's — hostname is a failure). When [VMSH_TRACE_DIR]
    is set each failed session dumps a replayable [.vmshtrace]
    artifact. *)

val record : Observe.Metrics.t -> label:string -> report -> unit
(** Fold a report into a metrics registry: [fleet.attach_ns.<label>]
    (and, for forked runs, [fleet.fork_ns.<label>]) histograms over
    the successful sessions, plus [symcache.hits] / [symcache.misses]
    / [fleet.yields.<label>] / [fleet.failures.<label>] counters. *)

val attach_p : report -> float -> float
(** [attach_p r 0.99]: percentile over the successful sessions' attach
    latencies (virtual ns); [nan] when none succeeded. *)

val fork_p : report -> float -> float
(** Same percentile over the successful sessions' fork (stand-up)
    latencies; [nan] for a cold-boot report. *)

val digest : report -> string
(** One hex digest folding every session's {!session_report.s_digest}
    in session order — the guest-state half of the replay-diff
    oracle. *)

val flight_events : report -> Trace.event list
(** The fleet's merged flight recording: every session's events
    concatenated in session order, each tagged with its session id.
    Deterministic for a given seed, so a replayed fleet diffs clean. *)

val metrics_json : report -> string
(** One fleet-wide JSON document:
    [{"fleet": <merged>, "sessions": {"vm0": <per-session>, ...}}].
    The merged registry folds every session's counters and histogram
    buckets together (so fleet p50/p99 are over all sessions' samples,
    and forked runs carry [fleet.fork_ns] plus the [overlay.*]
    occupancy counters) and includes the [fleet.attach_ns.fleet]
    summary histogram. *)
