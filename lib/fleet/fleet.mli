(** Fleet attach engine: N concurrent VMSH attaches over virtual time.

    Each session is a fully independent simulated machine — its own
    {!Hostos.Host.t} (clock, RNG, fault plan), its own hypervisor and
    guest, its own attach. The {!Sched} scheduler interleaves the
    sessions at the yield points the attach path exposes (one injected
    syscall, one KVM_RUN, one status poll per slice), always resuming
    the session whose virtual clock is furthest behind — the
    discrete-event analogue of N vmsh processes sharing one physical
    host.

    Sessions share exactly one piece of state by design: the
    {!Vmsh.Symbol_analysis.Cache}, so the first attach pays the full
    binary analysis and the other N-1 hit the build-id cache — the
    fleet-scale payoff the bench measures.

    Everything is deterministic: same [seed] and [vms] give a
    byte-identical {!report.schedule} and metrics. *)

module Sweep = Fleet_sweep
(** The crash-point sweep: abort-at-yield(k) × fault-class matrix with
    rollback-oracle and fd-leak post-conditions (the crash-matrix CI
    gate). *)

type session_report = {
  s_name : string;  (** ["vm0"], ["vm1"], … *)
  s_result : (unit, string) result;  (** rendered {!Vmsh.Vmsh_error.t} *)
  s_attach_ns : float;  (** virtual boot-to-overlay attach latency *)
  s_total_ns : float;  (** session's final virtual time *)
  s_host : Hostos.Host.t;
      (** the session's simulated machine — carries its metrics
          registry and flight recorder for post-run aggregation *)
  s_digest : string;
      (** {!Vmsh.Snapshot.digest} of the guest after detach; [""] when
          the session died before filing its report *)
}

type report = {
  r_vms : int;
  r_seed : int;
  r_sessions : session_report list;  (** in session order *)
  r_yields : int;  (** scheduler suspensions across the run *)
  r_cache_hits : int;  (** symcache.hits summed over sessions *)
  r_cache_misses : int;
  r_schedule : string;
      (** one line per scheduling decision ("slice N vmK t=NS") — the
          byte-comparable witness of the interleaving *)
}

val run :
  ?seed:int ->
  ?profile:Hypervisor.Profile.t ->
  ?version:Linux_guest.Kernel_version.t ->
  ?fault_rate:float ->
  ?share_symbols:bool ->
  ?log_level:Observe.level ->
  vms:int -> unit -> report
(** Boot and attach [vms] sessions concurrently. [fault_rate] arms an
    independent per-session fault plan (default 0: clean runs).
    [share_symbols] (default true) shares the build-id symbol cache
    across sessions. [log_level] sets each session's stderr log level
    (default: the hosts' default, {!Observe.Quiet}). A session failure
    is reported in its {!session_report}, never raised; when
    [VMSH_TRACE_DIR] is set each failed session also dumps a
    replayable [.vmshtrace] artifact. *)

val record : Observe.Metrics.t -> label:string -> report -> unit
(** Fold a report into a metrics registry: an
    [fleet.attach_ns.<label>] histogram over the successful sessions'
    attach latencies, plus [symcache.hits] / [symcache.misses] /
    [fleet.yields.<label>] / [fleet.failures.<label>] counters. *)

val attach_p : report -> float -> float
(** [attach_p r 0.99]: percentile over the successful sessions' attach
    latencies (virtual ns); [nan] when none succeeded. *)

val digest : report -> string
(** One hex digest folding every session's {!session_report.s_digest}
    in session order — the guest-state half of the replay-diff
    oracle. *)

val flight_events : report -> Trace.event list
(** The fleet's merged flight recording: every session's events
    concatenated in session order, each tagged with its session id.
    Deterministic for a given seed, so a replayed fleet diffs clean. *)

val metrics_json : report -> string
(** One fleet-wide JSON document:
    [{"fleet": <merged>, "sessions": {"vm0": <per-session>, ...}}].
    The merged registry folds every session's counters and histogram
    buckets together (so fleet p50/p99 are over all sessions' samples)
    and includes the [fleet.attach_ns.fleet] summary histogram. *)
