(** Baked baseline images and copy-on-write VM forking.

    Boot once, fork thousands of times: {!bake} drives one machine to
    the attach-ready point and freezes its guest RAM (the serialized
    page tables live inside it), disk blocks, bounce buffer, kernel
    image and boot RNG stream into an {!image}. {!fork} stands up a
    session over that image through per-4KiB-page copy-on-write
    overlays — reads fall through to the shared baseline, the first
    diverging write copies exactly one page — and replays the boot
    deterministically inside a {!Hostos.Clock.restore_section}, so the
    clone is charged only the linked-clone cost (provisioning its
    divergent disk blocks plus a fixed syscall budget for mapping
    shared memory and re-creating the KVM fds), orders of magnitude
    below a cold boot. *)

type image
(** A frozen, forkable machine. Immutable: forks never write into it
    (their writes land in private overlay pages). *)

type forked = {
  fk_vmm : Hypervisor.Vmm.t;
  fk_guest : Linux_guest.Guest.t;
  fk_fork_ns : float;  (** virtual cost charged for the fork itself *)
}

val bake :
  ?seed:int ->
  ?profile:Hypervisor.Profile.t ->
  ?version:Linux_guest.Kernel_version.t ->
  ?hostname:string ->
  unit ->
  image
(** Boot one machine to the attach-ready point and freeze it.
    Deterministic: the same arguments always produce the same image
    (which is what lets a trace replay re-bake instead of shipping the
    image in the trace). Defaults: seed [0xba5e], QEMU profile, v5.10,
    hostname ["baseline"]. *)

val fork :
  image ->
  host:Hostos.Host.t ->
  profile:Hypervisor.Profile.t ->
  name:string ->
  (forked, Vmsh.Vmsh_error.t) result
(** Clone the image into a fresh session on [host]: CoW disk view,
    per-clone [/etc/hostname] provisioning ([name]), CoW RAM/bounce
    mappings, deterministic boot replay at zero net virtual cost.
    [Baseline_stale] when the image does not match the requested
    profile or its kernel build id; [Overlay_fault] when a frozen
    region is corrupt or fails to mount. *)

val validate :
  image ->
  profile:Hypervisor.Profile.t ->
  version:Linux_guest.Kernel_version.t ->
  (unit, Vmsh.Vmsh_error.t) result
(** Check the image against a session's requested profile and kernel
    version without forking: [Baseline_stale] on any mismatch. *)

val resident : forked -> Hostos.Mem.cow_stats
(** Overlay occupancy of a live fork: every CoW backing in its VMM
    process (guest RAM, bounce buffer) plus its disk overlay, summed.
    [cs_pages_copied] is the clone's private footprint;
    [cs_pages_total - cs_pages_copied] pages are still shared. *)

val build_id : Linux_guest.Kernel_version.t -> string
(** The guest build id a freshly encoded kernel of this version
    embeds — {!validate} compares the image's recorded id against it. *)

val profile_name : image -> string
val version : image -> Linux_guest.Kernel_version.t
val digest : image -> string
(** {!Vmsh.Snapshot.digest} of the baseline at its freeze point. *)

val hostname : image -> string

(** Raw frozen regions, for tests and oracles that diff a fork against
    its baseline. *)
module Debug : sig
  val ram : image -> bytes
  val disk : image -> bytes
end

val save : image -> path:string -> unit
(** Serialize to [path]: a ["VMSHBASE1"] magic line followed by a
    sparse (non-zero 4 KiB pages only) encoding of the frozen regions. *)

val load : path:string -> (image, Vmsh.Vmsh_error.t) result
(** Read an image back. [Baseline_stale] on a missing file, bad magic,
    truncation or an unknown kernel version; [Overlay_fault] when the
    decoded regions are malformed. *)
