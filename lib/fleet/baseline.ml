(* Baked baseline images and copy-on-write VM forking.

   [bake] boots one machine to the attach-ready point (devices probed,
   root mounted, console answering) and freezes everything a clone
   needs: the guest RAM pages (the serialized page tables live inside
   them), the VMM's disk bounce buffer, the root disk blocks, the
   encoded kernel image, and the boot RNG stream. [fork] then stands up
   a session in microseconds of virtual time: the frozen regions are
   mapped as per-4KiB-page CoW overlays (reads fall through to the
   shared baseline; the first diverging write copies one page), and the
   boot is *replayed* deterministically inside a clock-restore section —
   same RNG stream, same prebuilt kernel image, so every write the
   replay performs is byte-identical to the frozen content and the CoW
   layer absorbs it silently, copying nothing. What the session is
   actually charged is the explicit linked-clone cost: provisioning its
   divergent disk blocks (per-clone /etc/hostname) plus the handful of
   syscalls a real fork spends mapping shared memory and re-creating
   the KVM fds. *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module KV = Linux_guest.Kernel_version
module E = Vmsh.Vmsh_error

type image = {
  img_profile : string;  (** {!Hypervisor.Profile.prof_name} baked under *)
  img_version : KV.t;
  img_build_id : string;  (** guest build id the frozen RAM embeds *)
  img_ram_mb : int;
  img_hostname : string;  (** hostname baked into the frozen disk *)
  img_boot_rng : H.Rng.t;  (** pristine boot stream (pre-KASLR draw) *)
  img_kernel : bytes;  (** encoded kernel image — shared, never copied *)
  img_ram : bytes;  (** frozen guest RAM *)
  img_databuf : bytes;  (** frozen VMM disk bounce buffer *)
  img_disk : bytes;  (** frozen root disk blocks *)
  img_digest : string;  (** {!Vmsh.Snapshot.digest} at the freeze point *)
}

type forked = {
  fk_vmm : Vmm.t;
  fk_guest : Linux_guest.Guest.t;
  fk_fork_ns : float;
}

let build_id version =
  (* must mirror the guest's own derivation: the id baked into the
     frozen RAM is what symbol analysis reads back out at attach *)
  "VMSHBID0" ^ Digest.to_hex (Digest.string (KV.banner version))

let profile_name img = img.img_profile
let version img = img.img_version
let digest img = img.img_digest
let hostname img = img.img_hostname

(* Same provisioning recipe as a cold fleet session, so a fork's disk
   differs from a cold boot's only in the hostname bytes. *)
let bake_disk h ~name =
  let disk = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:4096 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string (name ^ "\n")));
  Sfs.sync fs;
  disk

let bake ?(seed = 0xba5e) ?(profile = Profile.qemu) ?(version = KV.V5_10)
    ?(hostname = "baseline") () =
  let host = H.Host.create ~seed () in
  let disk = bake_disk host ~name:hostname in
  let disable_seccomp = profile.Profile.prof_name = "Firecracker" in
  let vmm = Vmm.create host ~profile ~disk ~disable_seccomp () in
  (* split the boot stream off the host RNG exactly as a cold boot
     would, but keep a pristine copy: forks replay from it *)
  let boot_rng = H.Rng.split host.H.Host.rng in
  let g = Vmm.boot ~boot_rng:(H.Rng.copy boot_rng) vmm ~version in
  let fs = Vmm.freeze_fork_state vmm in
  {
    img_profile = profile.Profile.prof_name;
    img_version = version;
    img_build_id = build_id version;
    img_ram_mb = Bytes.length fs.Vmm.fs_ram / (1024 * 1024);
    img_hostname = hostname;
    img_boot_rng = boot_rng;
    img_kernel = Linux_guest.Guest.kernel_image g;
    img_ram = fs.Vmm.fs_ram;
    img_databuf = fs.Vmm.fs_databuf;
    img_disk = H.Mem.freeze (Blockdev.Backend.mem disk);
    img_digest = Vmsh.Snapshot.digest (Vmsh.Snapshot.capture (Vmm.kvm_vm vmm));
  }

let validate img ~profile ~version =
  if profile.Profile.prof_name <> img.img_profile then
    Error
      (E.Baseline_stale
         (Printf.sprintf "baked for profile %s, session wants %s"
            img.img_profile profile.Profile.prof_name))
  else if not (KV.equal version img.img_version) then
    Error
      (E.Baseline_stale
         (Printf.sprintf "baked for kernel %s, session wants %s"
            (KV.to_string img.img_version) (KV.to_string version)))
  else if img.img_build_id <> build_id img.img_version then
    Error
      (E.Baseline_stale
         (Printf.sprintf "kernel build id mismatch (image %s, current %s)"
            img.img_build_id (build_id img.img_version)))
  else Ok ()

let check_regions img =
  let ram = Bytes.length img.img_ram
  and databuf = Bytes.length img.img_databuf
  and disk = Bytes.length img.img_disk in
  if ram <> img.img_ram_mb * 1024 * 1024 then
    Error
      (E.Overlay_fault
         (Printf.sprintf "frozen RAM is %d bytes, header says %d MiB" ram
            img.img_ram_mb))
  else if databuf <> 256 * 1024 then
    Error
      (E.Overlay_fault
         (Printf.sprintf "frozen bounce buffer is %d bytes, expected 256 KiB"
            databuf))
  else if disk = 0 || disk mod H.Mem.page_size <> 0 then
    Error
      (E.Overlay_fault
         (Printf.sprintf "frozen disk is %d bytes, not block aligned" disk))
  else Ok ()

(* The virtual cost a real linked-clone fork pays that the boot replay
   does not model: clone(2), three MAP_PRIVATE mmaps of the shared
   regions, /dev/kvm open, CREATE_VM, SET_USER_MEMORY_REGION,
   CREATE_VCPU + its run-page mmap, SET_REGS/SREGS, and the
   irqfd/ioeventfd wiring — all O(1) in guest size. *)
let charge_fork_cost clock =
  for _ = 1 to 14 do
    H.Clock.syscall clock
  done;
  H.Clock.context_switch clock

let ( let* ) = Result.bind

let fork img ~host ~profile ~name =
  let* () = validate img ~profile ~version:img.img_version in
  let* () = check_regions img in
  let clock = host.H.Host.clock in
  let t0 = H.Clock.now_ns clock in
  (* the clone's disk: a CoW view over the frozen blocks. Only its
     divergent provisioning (the per-clone hostname) copies blocks. *)
  let disk = Blockdev.Backend.of_mem ~clock (H.Mem.cow img.img_disk) in
  let* () =
    if name = img.img_hostname then Ok ()
    else
      let* fs =
        match Sfs.mount (Blockdev.Backend.dev disk) with
        | Ok fs -> Ok fs
        | Error e ->
            Error
              (E.Overlay_fault
                 ("baseline disk does not mount: " ^ H.Errno.show e))
      in
      let* () =
        match
          Sfs.write_file fs "/etc/hostname" (Bytes.of_string (name ^ "\n"))
        with
        | Ok () -> Ok ()
        | Error e ->
            Error
              (E.Overlay_fault ("clone provisioning failed: " ^ H.Errno.show e))
      in
      Sfs.sync fs;
      Ok ()
  in
  charge_fork_cost clock;
  (* Deterministic boot replay at zero virtual cost: the clone never
     boots — it is cloned. Same RNG stream and prebuilt image mean the
     replay's writes match the frozen baseline byte for byte, so the
     CoW layer absorbs them as silent writes; afterwards the clock and
     its mechanism counters are rewound to the fork instant. *)
  let disable_seccomp = profile.Profile.prof_name = "Firecracker" in
  let vmm, guest =
    H.Clock.restore_section clock (fun () ->
        let vmm =
          Vmm.create host ~profile ~disk ~ram_mb:img.img_ram_mb
            ~disable_seccomp
            ~fork:{ Vmm.fs_ram = img.img_ram; fs_databuf = img.img_databuf }
            ()
        in
        let g =
          Vmm.boot
            ~boot_rng:(H.Rng.copy img.img_boot_rng)
            ~prebuilt_image:img.img_kernel vmm ~version:img.img_version
        in
        (vmm, g))
  in
  (* the replay rebuilt the page-table arena byte-identically over its
     zeroed view; hand those pages back to the shared baseline so the
     clone's resident footprint is its true divergence *)
  ignore
    (H.Mem.Addr_space.cow_reclaim_all (Vmm.proc vmm).H.Proc.aspace : int);
  ignore (H.Mem.cow_reclaim (Blockdev.Backend.mem disk) : int);
  Ok
    {
      fk_vmm = vmm;
      fk_guest = guest;
      fk_fork_ns = H.Clock.now_ns clock -. t0;
    }

module Debug = struct
  let ram img = img.img_ram
  let disk img = img.img_disk
end

let zero_stats =
  {
    H.Mem.cs_pages_total = 0;
    cs_pages_copied = 0;
    cs_silent_writes = 0;
    cs_resident_bytes = 0;
  }

let add_stats a b =
  {
    H.Mem.cs_pages_total = a.H.Mem.cs_pages_total + b.H.Mem.cs_pages_total;
    cs_pages_copied = a.cs_pages_copied + b.cs_pages_copied;
    cs_silent_writes = a.cs_silent_writes + b.cs_silent_writes;
    cs_resident_bytes = a.cs_resident_bytes + b.cs_resident_bytes;
  }

(* Overlay occupancy of a live fork: every CoW backing in the VMM
   process (guest RAM + bounce buffer) plus the disk overlay. *)
let resident f =
  let p = Vmm.proc f.fk_vmm in
  let proc_stats = H.Mem.Addr_space.cow_totals p.H.Proc.aspace in
  let disk_stats =
    match H.Mem.cow_stats (Blockdev.Backend.mem (Vmm.disk f.fk_vmm)) with
    | Some s -> s
    | None -> zero_stats
  in
  add_stats proc_stats disk_stats

(* On-disk format: a magic line, then a Marshal'd [stored] record with
   the big regions encoded sparsely (only non-zero 4 KiB pages). The
   kernel version travels as its string form so a load under a changed
   variant layout degrades into a typed Baseline_stale, not a segfault. *)

let magic = "VMSHBASE1\n"

type stored = {
  st_profile : string;
  st_version : string;
  st_build_id : string;
  st_ram_mb : int;
  st_hostname : string;
  st_boot_rng : H.Rng.t;
  st_kernel : bytes;
  st_ram_len : int;
  st_ram_pages : (int * bytes) list;
  st_databuf : bytes;
  st_disk_len : int;
  st_disk_pages : (int * bytes) list;
  st_digest : string;
}

let is_zero_page b off len =
  let rec go i = i >= len || (Bytes.get b (off + i) = '\000' && go (i + 1)) in
  go 0

let sparse b =
  let len = Bytes.length b in
  let ps = H.Mem.page_size in
  let rec go off acc =
    if off >= len then List.rev acc
    else
      let n = min ps (len - off) in
      let acc =
        if is_zero_page b off n then acc
        else (off / ps, Bytes.sub b off n) :: acc
      in
      go (off + ps) acc
  in
  go 0 []

let densify len pages =
  let b = Bytes.make len '\000' in
  List.iter
    (fun (idx, page) ->
      let off = idx * H.Mem.page_size in
      Bytes.blit page 0 b off (Bytes.length page))
    pages;
  b

let save img ~path =
  let st =
    {
      st_profile = img.img_profile;
      st_version = KV.to_string img.img_version;
      st_build_id = img.img_build_id;
      st_ram_mb = img.img_ram_mb;
      st_hostname = img.img_hostname;
      st_boot_rng = img.img_boot_rng;
      st_kernel = img.img_kernel;
      st_ram_len = Bytes.length img.img_ram;
      st_ram_pages = sparse img.img_ram;
      st_databuf = img.img_databuf;
      st_disk_len = Bytes.length img.img_disk;
      st_disk_pages = sparse img.img_disk;
      st_digest = img.img_digest;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc st [])

let load ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error (E.Baseline_stale ("cannot open: " ^ e))
  | ic -> (
      let r =
        try
          let m = really_input_string ic (String.length magic) in
          if m <> magic then
            Error (E.Baseline_stale ("bad magic in " ^ path))
          else Ok (Marshal.from_channel ic : stored)
        with End_of_file | Failure _ ->
          Error (E.Baseline_stale ("truncated baseline image: " ^ path))
      in
      close_in_noerr ic;
      let* st = r in
      let* ver =
        match KV.of_string st.st_version with
        | Some v -> Ok v
        | None ->
            Error
              (E.Baseline_stale ("unknown kernel version: " ^ st.st_version))
      in
      let img =
        {
          img_profile = st.st_profile;
          img_version = ver;
          img_build_id = st.st_build_id;
          img_ram_mb = st.st_ram_mb;
          img_hostname = st.st_hostname;
          img_boot_rng = st.st_boot_rng;
          img_kernel = st.st_kernel;
          img_ram = densify st.st_ram_len st.st_ram_pages;
          img_databuf = st.st_databuf;
          img_disk = densify st.st_disk_len st.st_disk_pages;
          img_digest = st.st_digest;
        }
      in
      let* () = check_regions img in
      Ok img)
