type t = {
  block_size : int;
  blocks : int;
  read_block : int -> bytes;
  write_block : int -> bytes -> unit;
  flush : unit -> unit;
  trim : int -> int -> unit;
}

let block_size = 4096
let size_bytes t = t.block_size * t.blocks

let read_range t ~off ~len =
  let bs = t.block_size in
  let out = Bytes.create len in
  let rec go off dst remaining =
    if remaining > 0 then begin
      let blk = off / bs and boff = off mod bs in
      let chunk = min remaining (bs - boff) in
      let data = t.read_block blk in
      Bytes.blit data boff out dst chunk;
      go (off + chunk) (dst + chunk) (remaining - chunk)
    end
  in
  go off 0 len;
  out

let write_range t ~off b =
  let bs = t.block_size in
  let rec go off src remaining =
    if remaining > 0 then begin
      let blk = off / bs and boff = off mod bs in
      let chunk = min remaining (bs - boff) in
      if chunk = bs then begin
        t.write_block blk (Bytes.sub b src chunk)
      end
      else begin
        let data = t.read_block blk in
        Bytes.blit b src data boff chunk;
        t.write_block blk data
      end;
      go (off + chunk) (src + chunk) (remaining - chunk)
    end
  in
  go off 0 (Bytes.length b)

let observe obs ~name t =
  let mx = Observe.metrics obs in
  let timed op f =
    let t0 = Observe.now obs in
    let r = f () in
    Observe.Metrics.observe
      (Observe.Metrics.histogram mx (name ^ "." ^ op ^ "_ns"))
      (Observe.now obs -. t0);
    r
  in
  {
    t with
    read_block = (fun i -> timed "read" (fun () -> t.read_block i));
    write_block = (fun i b -> timed "write" (fun () -> t.write_block i b));
    flush = (fun () -> timed "flush" (fun () -> t.flush ()));
  }

let sub t ~first_block ~blocks =
  if first_block + blocks > t.blocks then invalid_arg "Dev.sub: out of range";
  {
    block_size = t.block_size;
    blocks;
    read_block = (fun i -> t.read_block (first_block + i));
    write_block = (fun i b -> t.write_block (first_block + i) b);
    flush = t.flush;
    trim = (fun first count -> t.trim (first_block + first) count);
  }
