(** The block-device interface: what a file system mounts on.

    A record of closures so the same file-system code runs over an
    in-memory backend on the host, over the qemu-blk VirtIO device, or
    over VMSH's vmsh-blk device inside the guest — the substitution at
    the heart of the paper's robustness experiment (§6.1). *)

type t = {
  block_size : int;
  blocks : int;
  read_block : int -> bytes;
  (** [read_block i] returns exactly [block_size] bytes. *)
  write_block : int -> bytes -> unit;
  flush : unit -> unit;  (** barrier / FUA; devices count these *)
  trim : int -> int -> unit;  (** [trim first count] discards blocks *)
}

val block_size : int
(** The simulation-wide block size (4096). *)

val size_bytes : t -> int

val read_range : t -> off:int -> len:int -> bytes
(** Byte-granular helper built on block reads (read-modify for edges). *)

val write_range : t -> off:int -> bytes -> unit

val observe : Observe.t -> name:string -> t -> t
(** A transparent wrapper recording per-block-operation latency
    (virtual ns) into histograms ["<name>.read_ns"], ["<name>.write_ns"]
    and ["<name>.flush_ns"] on the tracer's metrics registry. *)

val sub : t -> first_block:int -> blocks:int -> t
(** A window onto a contiguous range of an existing device (partition). *)
