(* The vmsh job service: a deterministic dispatcher multiplexing a
   bounded worker pool over the virtual-time scheduler.

   Shape of a run:

   - A frontend host owns the service clock, the admission state, the
     service-wide metrics registry, and the flight recorder for
     admission events (service.enqueue / admit / shed).
   - A driver fiber replays a seeded open-loop arrival process: for
     each job it advances the clock by a profile-drawn inter-arrival
     gap, serializes the job onto a lib/net link (the same HTTP-ish
     workload protocol the traffic generators speak), and pumps the
     fabric. The frontend's link handler parses the request, runs
     admission, and answers 202/429 on the wire.
   - There are no persistent worker fibers. A "worker" is a slot in a
     bookkeeping array (busy flag + free-at time); dispatching a job
     spawns a fresh fiber whose private host clock is pre-advanced to
     the dispatch instant, so every timestamp the session ever records
     sits on the one coherent service timeline and the scheduler's
     min-clock pick interleaves job sessions exactly as N real
     processes would. Dispatch is attempted when a job arrives and when
     a job completes — the only instants at which a worker can free up.
   - Every job runs a full session: its own host / VMM / guest /
     fault plan, with the attach journal and the snapshot oracle
     exactly as the one-shot CLI verbs run them. Failing jobs dump
     replayable .vmshtrace artifacts tagged scenario=serve-job.

   Everything downstream of (config, seed) is deterministic: the
   admission decisions, the dispatch order, every per-job latency, the
   metrics export, and the results file are byte-identical across
   runs. *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module KV = Linux_guest.Kernel_version
module Packet = Linux_guest.Netstack.Packet
module Frame = Net.Frame
module E = Vmsh.Vmsh_error

type arrivals = Poisson | Bursty | Ramp

let arrivals_to_string = function
  | Poisson -> "poisson"
  | Bursty -> "bursty"
  | Ramp -> "ramp"

let arrivals_of_string = function
  | "poisson" -> Some Poisson
  | "bursty" -> Some Bursty
  | "ramp" -> Some Ramp
  | _ -> None

(* Job-kind mix, drawn per arrival from the driver RNG. *)
type mix_kind = M_attach | M_attach_detach | M_sweep | M_fuzz

type config = {
  workers : int;
  jobs : int;
  seed : int;
  rate : float;  (** mean arrivals per virtual second *)
  arrivals : arrivals;
  tenants : Admission.tenant_cfg list;
  mix : (mix_kind * int) list;  (** kind, weight *)
  hostile_tenant : (string * string) option;
      (** [(tenant, cls)]: every arrival drawn for [tenant] becomes a
          {!Job.Hostile_attach} of that adversarial class — one
          misbehaving tenant inside an otherwise clean stream *)
  deadline_ns : float;  (** per-job relative deadline; [0.] = none *)
  ram_mb : int;
  log_level : Observe.level option;
}

(* Four tenants; t0 is the hot one — over half the arrival share but a
   tight token bucket, so under load it sheds while t1..t3 ride
   unthrottled. The shape the fairness gate asserts. *)
let default_tenants =
  [
    {
      (Admission.default_tenant "t0") with
      Admission.tc_share = 5;
      tc_rate = 120.;
      tc_burst = 20.;
      tc_queue = 64;
      tc_weight = 1;
    };
    { (Admission.default_tenant "t1") with Admission.tc_share = 2; tc_weight = 2 };
    { (Admission.default_tenant "t2") with Admission.tc_share = 2; tc_weight = 2 };
    { (Admission.default_tenant "t3") with Admission.tc_share = 1; tc_weight = 1 };
  ]

let default_mix =
  [ (M_attach, 60); (M_attach_detach, 25); (M_sweep, 10); (M_fuzz, 5) ]

let default_config =
  {
    workers = 8;
    jobs = 1000;
    seed = 17;
    rate = 600.;
    arrivals = Poisson;
    tenants = default_tenants;
    mix = default_mix;
    hostile_tenant = None;
    deadline_ns = 0.;
    (* 32 MiB guests (64 elsewhere): enough to boot and attach, and it
       bounds the real memory of [workers] concurrent sessions times
       the churn of a thousand-job stream *)
    ram_mb = 32;
    log_level = None;
  }

type job_record = {
  jr_job : Job.t;
  jr_status : Job.status;
  jr_submit_ns : float;
  jr_start_ns : float;  (** [nan] when the job never reached a worker *)
  jr_end_ns : float;
  jr_worker : int;  (** [-1] when the job never reached a worker *)
}

type report = {
  rp_config : config;
  rp_records : job_record array;  (** indexed by job id *)
  rp_host : H.Host.t;
      (** the frontend host: service-wide metrics registry (with every
          session's registry merged in) and the admission flight
          recording *)
  rp_stats : (string * Admission.tenant_stats) list;
  rp_yields : int;
  rp_makespan_ns : float;  (** last completion instant *)
  rp_leaked_workers : int;  (** workers still marked busy at the end *)
}

(* --- per-job simulated machines ------------------------------------ *)

let boot_disk h ~name =
  let disk = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:4096 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string (name ^ "\n")));
  Sfs.sync fs;
  disk

let tools_image clock =
  match
    Blockdev.Image.pack ~clock [ Blockdev.Image.file "/bin/busybox" 800_000 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith (H.Errno.show e)

let open_fds h =
  List.fold_left
    (fun acc p -> acc + List.length (H.Proc.fd_numbers p))
    0 h.H.Host.procs

(* Is a rendered error a clean member of the taxonomy? (The fuzz and
   sweep kinds count a clean, round-trippable abort as success.) *)
let round_trips msg = E.to_string (E.of_string msg) = msg

(* Build the simulated machine a job will run on. Its clock is
   pre-advanced to the dispatch instant, so every timestamp the session
   records — and the scheduler's min-clock pick — sits on the service
   timeline. *)
let prepare_host ~(job : Job.t) ~start_ns ~ram_mb ?log_level ?(worker = -1) ()
    =
  let host = H.Host.create ~seed:job.Job.seed () in
  Option.iter (Observe.set_log_level host.H.Host.observe) log_level;
  H.Clock.advance host.H.Host.clock start_ns;
  Trace.Recorder.set_session host.H.Host.recorder job.Job.id;
  List.iter
    (fun (k, v) -> Trace.Recorder.set_meta host.H.Host.recorder k v)
    [
      ("scenario", "serve-job");
      ("job", string_of_int job.Job.id);
      ("tenant", job.Job.tenant);
      ("kind", Job.kind_to_string job.Job.kind);
      ("job-seed", string_of_int job.Job.seed);
      ("start-ns", Printf.sprintf "%.0f" start_ns);
      ("ram-mb", string_of_int ram_mb);
    ];
  Trace.Recorder.record host.H.Host.recorder ~kind:"service.start"
    ~args:[ ("job", Trace.I job.Job.id); ("worker", Trace.I worker) ]
    ();
  host

(* Execute one job on [host]. Returns the terminal status; never
   raises for in-taxonomy failures (an escaped exception is the
   caller's problem to surface). Also the replay path for serve-job
   .vmshtrace artifacts. *)
let execute_on ~host ~(job : Job.t) ~ram_mb ?cache () =
  let name = Printf.sprintf "job%d" job.Job.id in
  let vmm =
    Vmm.create host ~profile:Profile.qemu ~disk:(boot_disk host ~name) ~ram_mb
      ()
  in
  ignore (Vmm.boot vmm ~version:KV.V5_10);
  let vm = Vmm.kvm_vm vmm in
  (* the oracle baseline and fd watermark, where the kind wants them *)
  let needs_oracle =
    match job.Job.kind with
    | Job.Attach_detach | Job.Sweep_cell _ | Job.Hostile_attach _ -> true
    | Job.Attach | Job.Fuzz_seed _ -> false
  in
  let before = if needs_oracle then Some (Vmsh.Snapshot.capture vm) else None in
  let fds_before = open_fds host in
  let plan =
    match job.Job.kind with
    | Job.Attach | Job.Attach_detach -> None
    | Job.Fuzz_seed { boost } ->
        (* cap 4 injections per class — fewer consecutive faults than
           the 6-attempt retry bound, so transient schedules are always
           survivable and a fuzz job failure means a real bug (the same
           calibration the bench's recovery scenario documents) *)
        let plan =
          Faults.create ~seed:((job.Job.seed * 31) + 7) ~rate:0.25 ~cap:4 ()
        in
        (match Faults.of_name boost with
        | Some c -> Faults.set_class plan c ~rate:1.0 ~cap:2
        | None -> ());
        Some plan
    | Job.Sweep_cell { cls; k } ->
        let plan = Faults.create ~seed:((job.Job.seed * 31) + k) ~rate:0.0 () in
        (match Faults.of_name cls with
        | Some c -> Faults.set_class plan c ~rate:1.0 ~cap:2
        | None -> ());
        Faults.set_abort_at_yield plan (Some k);
        Some plan
    | Job.Hostile_attach { cls } -> (
        (* a rate-0 plan injects no faults; it only carries the yield
           hook the in-guest adversary steps from, exactly as the chaos
           matrix arms it *)
        match Hostile.of_name cls with
        | None -> None
        | Some c ->
            let plan =
              Faults.create ~seed:((job.Job.seed * 31) + 13) ~rate:0.0 ()
            in
            let eng = Hostile.create ~seed:job.Job.seed ~cls:c vmm in
            Faults.set_on_yield plan (Some (fun _ -> Hostile.step eng));
            Some plan)
  in
  let config =
    let open Vmsh.Attach.Config in
    let c = make () in
    let c = match cache with Some k -> with_symbol_cache k c | None -> c in
    match plan with Some p -> with_faults p c | None -> c
  in
  let attach_result =
    match
      Vmsh.Attach.attach host ~hypervisor_pid:(Vmm.pid vmm)
        ~fs_image:(tools_image host.H.Host.clock)
        ~config
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | result -> result
    | exception e -> Error (E.Msg ("escaped exception: " ^ Printexc.to_string e))
  in
  let status =
    match attach_result with
    | Ok session -> (
        ignore (Vmsh.Attach.console_recv session);
        let out = Vmsh.Attach.console_roundtrip session "hostname" in
        let late =
          match Vmsh.Attach.journal session with
          | Some j -> Vmsh.Journal.late_writes j
          | None -> []
        in
        match Vmsh.Attach.detach session with
        | Error e -> Job.Failed ("detach: " ^ E.to_string e)
        | Ok () when String.length out = 0 ->
            Job.Failed "console dead after attach"
        | Ok () -> (
            match before with
            | None -> Job.Completed
            | Some before ->
                let exclude = Vmsh.Snapshot.dirty_since vm before @ late in
                let after = Vmsh.Snapshot.capture vm in
                (match Vmsh.Snapshot.diff ~before ~after ~exclude with
                | [] ->
                    let leaked = open_fds host - fds_before in
                    if leaked > 0 then
                      Job.Failed
                        (Printf.sprintf "leaked %d descriptors" leaked)
                    else Job.Completed
                | d :: _ -> Job.Failed ("oracle: " ^ d))))
    | Error e -> (
        let msg = E.to_string e in
        match job.Job.kind with
        | Job.Attach | Job.Attach_detach -> Job.Failed msg
        | Job.Fuzz_seed _ | Job.Sweep_cell _ | Job.Hostile_attach _ ->
            (* survival kinds: a clean, round-trippable abort that rolls
               the guest back and leaks nothing is a success *)
            if not (round_trips msg) then
              Job.Failed ("error does not round-trip: " ^ msg)
            else
              let oracle =
                match before with
                | None -> []
                | Some before ->
                    let exclude = Vmsh.Snapshot.dirty_since vm before in
                    Vmsh.Snapshot.diff ~before
                      ~after:(Vmsh.Snapshot.capture vm) ~exclude
              in
              (match oracle with
              | d :: _ -> Job.Failed ("oracle: " ^ d)
              | [] ->
                  let leaked = open_fds host - fds_before in
                  if leaked > 0 then
                    Job.Failed (Printf.sprintf "leaked %d descriptors" leaked)
                  else Job.Completed))
  in
  Trace.Recorder.record host.H.Host.recorder ~kind:"service.complete"
    ~args:[ ("job", Trace.I job.Job.id) ]
    ();
  status

(* Convenience for replay: fresh machine + execution in one call. *)
let execute_job ~(job : Job.t) ~start_ns ~ram_mb ?log_level ?cache () =
  let host = prepare_host ~job ~start_ns ~ram_mb ?log_level () in
  let status = execute_on ~host ~job ~ram_mb ?cache () in
  (host, status)

(* --- arrival processes --------------------------------------------- *)

(* Inter-arrival gap in virtual ns for arrival [i] of [jobs]. Open
   loop: the gaps are drawn up front from a dedicated RNG stream, so
   the offered load never adapts to service backlog. *)
let inter_arrival_ns rng ~cfg ~i =
  let exp_gap rate =
    (* inverse-CDF exponential on the deterministic stream *)
    let u = H.Rng.float rng 1.0 in
    -.log (1. -. u) /. rate *. 1e9
  in
  match cfg.arrivals with
  | Poisson -> exp_gap cfg.rate
  | Bursty ->
      (* bursts of 8 back-to-back arrivals (1us apart), burst starts
         Poisson at rate/8 — same mean load, much spikier *)
      if i mod 8 <> 0 then 1_000. else exp_gap (cfg.rate /. 8.)
  | Ramp ->
      (* instantaneous rate climbs linearly 0.25x -> 1.75x across the
         run: the knee shows up inside a single stream *)
      let frac = float_of_int i /. float_of_int (max 1 cfg.jobs) in
      exp_gap (cfg.rate *. (0.25 +. (1.5 *. frac)))

let draw_weighted rng pairs ~weight =
  let total = List.fold_left (fun a x -> a + weight x) 0 pairs in
  let d = H.Rng.int rng (max 1 total) in
  let rec pick acc = function
    | [] -> List.hd pairs
    | x :: rest -> if d < acc + weight x then x else pick (acc + weight x) rest
  in
  pick 0 pairs

let draw_kind rng cfg =
  match fst (draw_weighted rng cfg.mix ~weight:snd) with
  | M_attach -> Job.Attach
  | M_attach_detach -> Job.Attach_detach
  | M_sweep ->
      let cls =
        Faults.name (List.nth Faults.all (H.Rng.int rng (List.length Faults.all)))
      in
      Job.Sweep_cell { cls; k = H.Rng.int rng 24 }
  | M_fuzz ->
      let boost =
        Faults.name (List.nth Faults.all (H.Rng.int rng (List.length Faults.all)))
      in
      Job.Fuzz_seed { boost }

(* --- the service run ----------------------------------------------- *)

let frontend_ip = Packet.make_ip 10 0 0 1
let client_ip = Packet.make_ip 10 0 0 2
let frontend_mac = Frame.make_mac ~vendor:0x0566 ~serial:0x5e7e
let client_mac = Frame.make_mac ~vendor:0x0566 ~serial:0xc11e
let jobs_port = 8080

let run (cfg : config) : report =
  if cfg.workers <= 0 then invalid_arg "Dispatch.run: workers must be positive";
  if cfg.jobs < 0 then invalid_arg "Dispatch.run: jobs must be >= 0";
  let front = H.Host.create ~seed:((cfg.seed * 7919) + 1) () in
  Option.iter (Observe.set_log_level front.H.Host.observe) cfg.log_level;
  let obs = front.H.Host.observe in
  let mx = Observe.metrics obs in
  let recorder = front.H.Host.recorder in
  List.iter
    (fun (k, v) -> Trace.Recorder.set_meta recorder k v)
    [
      ("scenario", "serve");
      ("serve-seed", string_of_int cfg.seed);
      ("workers", string_of_int cfg.workers);
      ("jobs", string_of_int cfg.jobs);
      ("rate", Printf.sprintf "%.0f" cfg.rate);
      ("arrivals", arrivals_to_string cfg.arrivals);
    ];
  let adm = Admission.create cfg.tenants in
  let cache = Vmsh.Symbol_analysis.Cache.create () in
  let sched = Sched.create () in
  let records = Array.make (max 1 cfg.jobs) None in
  (* worker pool bookkeeping: a slot, not a fiber *)
  let busy = Array.make cfg.workers false in
  let free_at = Array.make cfg.workers 0. in
  let busy_count = ref 0 in
  let driver_done = ref false in
  let svc_now = ref 0. in
  (* metrics *)
  let counter name = Observe.Metrics.counter mx name in
  let bump ?by name = Observe.Metrics.incr ?by (counter name) in
  let hist name = Observe.Metrics.histogram mx name in
  let h_e2e = hist "service.e2e_ns" in
  let h_wait = hist "service.wait_ns" in
  let h_exec = hist "service.exec_ns" in
  let h_depth = hist "service.queue.depth" in
  let g_depth = Observe.Metrics.gauge mx "service.queue.depth.now" in
  let record_event kind args =
    Trace.Recorder.record recorder ~kind
      ~args:(List.map (fun (k, v) -> (k, Trace.I v)) args)
      ()
  in
  let sample_depth () =
    let d = Admission.queued adm in
    Observe.Metrics.set_gauge g_depth (float_of_int d);
    Observe.Metrics.observe h_depth (float_of_int d)
  in
  let file_terminal (job : Job.t) ~status ~submit ~start ~end_ ~worker =
    records.(job.Job.id) <-
      Some
        {
          jr_job = job;
          jr_status = status;
          jr_submit_ns = submit;
          jr_start_ns = start;
          jr_end_ns = end_;
          jr_worker = worker;
        }
  in
  let shed (job : Job.t) ~now ~reason =
    bump "service.shed";
    bump (Printf.sprintf "service.shed.%s.%s" reason job.Job.tenant);
    record_event "service.shed" [ ("job", job.Job.id) ];
    Observe.log obs Observe.Info "serve: job %d (%s) shed: %s" job.Job.id
      job.Job.tenant reason;
    file_terminal job ~status:(Job.Shed reason) ~submit:now ~start:Float.nan
      ~end_:now ~worker:(-1)
  in
  (* Dispatch every runnable queued job. Called at the two instants a
     worker can become available or work can appear: a frame delivery
     (submission) and a job completion. When the driver has finished
     and every worker is idle but deferred work remains, virtual time
     jumps to the earliest eligibility instant — the drain phase. *)
  let rec maybe_dispatch ~now () =
    svc_now := Float.max !svc_now now;
    if !busy_count < cfg.workers then
      match Admission.dequeue adm ~now:!svc_now with
      | Some entry ->
          let job = entry.Admission.e_job in
          let submit = entry.Admission.e_submit_ns in
          (* worker slot: the idle one that freed up earliest *)
          let w = ref (-1) in
          for i = cfg.workers - 1 downto 0 do
            if not busy.(i) && (!w < 0 || free_at.(i) <= free_at.(!w)) then
              w := i
          done;
          let w = !w in
          (* start when worker and job were both ready, which can
             predate this dispatch instant (the decision naturally
             batches at arrival/completion events) *)
          let start =
            Float.max entry.Admission.e_eligible_ns
              (Float.max free_at.(w) entry.Admission.e_submit_ns)
          in
          if
            job.Job.deadline_ns > 0.
            && start > submit +. job.Job.deadline_ns
          then begin
            let late = int_of_float (start -. submit -. job.Job.deadline_ns) in
            bump "service.expired";
            bump ("service.expired." ^ job.Job.tenant);
            record_event "service.expired"
              [ ("job", job.Job.id); ("late", late) ];
            Observe.log obs Observe.Info "serve: job %d expired %dns late"
              job.Job.id late;
            file_terminal job ~status:(Job.Expired late) ~submit
              ~start:Float.nan ~end_:start ~worker:(-1);
            maybe_dispatch ~now ()
          end
          else begin
            busy.(w) <- true;
            incr busy_count;
            bump "service.dispatched";
            bump ("service.dispatched." ^ job.Job.tenant);
            let host_done host status =
              let end_ns = H.Clock.now_ns host.H.Host.clock in
              Trace.Recorder.record host.H.Host.recorder
                ~kind:"service.complete"
                ~args:[ ("job", Trace.I job.Job.id) ]
                ();
              file_terminal job ~status ~submit ~start ~end_:end_ns ~worker:w;
              Observe.Metrics.observe h_e2e (end_ns -. submit);
              Observe.Metrics.observe h_wait (start -. submit);
              Observe.Metrics.observe h_exec (end_ns -. start);
              (match status with
              | Job.Completed ->
                  bump "service.completed";
                  bump ("service.completed." ^ job.Job.tenant)
              | Job.Failed err ->
                  bump "service.failed";
                  bump ("service.failed." ^ job.Job.tenant);
                  Observe.log obs Observe.Info "serve: job %d failed: %s"
                    job.Job.id err;
                  ignore
                    (Trace.dump_on_failure host.H.Host.recorder
                       ~name:
                         (Printf.sprintf "serve-s%d-job%d" cfg.seed job.Job.id)
                       ~extra_meta:[ ("error", err) ]
                       ())
              | Job.Shed _ | Job.Expired _ -> ());
              (* fold the session's registry into the service-wide one:
                 the merged export carries stage.attach/exit/pump
                 aggregates over every job the service ever ran *)
              Observe.Metrics.merge_into ~into:mx
                (Observe.metrics host.H.Host.observe);
              busy.(w) <- false;
              free_at.(w) <- end_ns;
              decr busy_count;
              maybe_dispatch ~now:end_ns ()
            in
            (* the job session runs as a fresh fiber pinned to the
               session host's pre-advanced clock; spawning mid-run puts
               it straight into the scheduler's pick set at [start] *)
            let host =
              prepare_host ~job ~start_ns:start ~ram_mb:cfg.ram_mb
                ?log_level:cfg.log_level ~worker:w ()
            in
            Observe.log obs Observe.Info
              "serve: job %d (%s, %s) -> worker %d" job.Job.id job.Job.tenant
              (Job.kind_to_string job.Job.kind)
              w;
            Sched.spawn sched
              ~name:(Printf.sprintf "job%d" job.Job.id)
              ~clock:host.H.Host.clock
              (fun () ->
                match execute_on ~host ~job ~ram_mb:cfg.ram_mb ~cache () with
                | status -> host_done host status
                | exception e ->
                    (* the job machine blew up mid-session: file the
                       failure so the worker still frees *)
                    host_done host
                      (Job.Failed ("escaped exception: " ^ Printexc.to_string e)));
            maybe_dispatch ~now:!svc_now ()
          end
      | None ->
          if !driver_done && !busy_count = 0 && Admission.queued adm > 0 then
            match Admission.next_eligible adm with
            | Some t_el when t_el > !svc_now -> maybe_dispatch ~now:t_el ()
            | _ -> ()
  in
  (* --- the wire frontend --- *)
  let fabric = Net.Fabric.of_host front in
  let link = Net.Link.create fabric ~name:"ingress" () in
  let client = Net.Link.a link and server = Net.Link.b link in
  let reply_to (req : Packet.t) data =
    Net.Link.send server
      (Frame.encode
         {
           Frame.src = frontend_mac;
           dst = client_mac;
           ethertype = Frame.eth_ipv4;
           payload =
             Packet.encode
               {
                 Packet.src_ip = frontend_ip;
                 dst_ip = req.Packet.src_ip;
                 proto = Packet.proto_udp;
                 src_port = jobs_port;
                 dst_port = req.Packet.src_port;
                 seq = 0;
                 flag = Packet.flag_data;
                 data = Bytes.of_string data;
               };
         })
  in
  Net.Link.set_handler server (fun raw ->
      match Frame.decode raw with
      | None -> ()
      | Some f -> (
          match Packet.decode f.Frame.payload with
          | None -> ()
          | Some p when p.Packet.dst_port <> jobs_port -> ()
          | Some p -> (
              let now = H.Clock.now_ns front.H.Host.clock in
              match Job.of_wire (Bytes.to_string p.Packet.data) with
              | Error reason ->
                  bump "service.bad_request";
                  reply_to p (Job.rejected_wire reason)
              | Ok job -> (
                  bump "service.submitted";
                  bump ("service.submitted." ^ job.Job.tenant);
                  record_event "service.enqueue" [ ("job", job.Job.id) ];
                  match Admission.submit adm ~now job with
                  | Admission.Rejected reason ->
                      shed job ~now ~reason;
                      sample_depth ();
                      reply_to p (Job.rejected_wire reason)
                  | Admission.Admitted { evicted } ->
                      bump "service.admitted";
                      bump ("service.admitted." ^ job.Job.tenant);
                      record_event "service.admit" [ ("job", job.Job.id) ];
                      (match evicted with
                      | Some ev ->
                          let ej = ev.Admission.e_job in
                          bump "service.shed";
                          bump
                            (Printf.sprintf "service.shed.evicted.%s"
                               ej.Job.tenant);
                          record_event "service.shed" [ ("job", ej.Job.id) ];
                          file_terminal ej ~status:(Job.Shed "evicted")
                            ~submit:ev.Admission.e_submit_ns ~start:Float.nan
                            ~end_:now ~worker:(-1)
                      | None -> ());
                      sample_depth ();
                      reply_to p Job.accepted_wire;
                      maybe_dispatch ~now ()))));
  (* the client side of the wire protocol: count the frontend's
     202/429 answers so the round trip is observable end to end *)
  Net.Link.set_handler client (fun raw ->
      match Frame.decode raw with
      | None -> ()
      | Some f -> (
          match Packet.decode f.Frame.payload with
          | None -> ()
          | Some p ->
              let body = Bytes.to_string p.Packet.data in
              if String.length body >= 12 then
                match String.sub body 9 3 with
                | "202" -> bump "service.client.accepted"
                | "429" -> bump "service.client.rejected"
                | _ -> ()));
  (* --- the arrival driver --- *)
  let arrival_rng = H.Rng.create ~seed:((cfg.seed * 1009) + 5) in
  let driver () =
    for i = 0 to cfg.jobs - 1 do
      H.Clock.advance front.H.Host.clock
        (inter_arrival_ns arrival_rng ~cfg ~i);
      let tenant =
        (draw_weighted arrival_rng
           (Admission.tenants adm)
           ~weight:(fun tc -> tc.Admission.tc_share))
          .Admission.tc_name
      in
      (* the mix draw always runs, so flipping one tenant hostile
         leaves every other tenant's job stream untouched *)
      let kind = draw_kind arrival_rng cfg in
      let kind =
        match cfg.hostile_tenant with
        | Some (t, cls) when t = tenant -> Job.Hostile_attach { cls }
        | _ -> kind
      in
      let job =
        {
          Job.id = i;
          tenant;
          kind;
          seed = (cfg.seed * 1_000_003) + (i * 7919);
          priority = H.Rng.int arrival_rng 3;
          deadline_ns = cfg.deadline_ns;
        }
      in
      Net.Link.send client
        (Frame.encode
           {
             Frame.src = client_mac;
             dst = frontend_mac;
             ethertype = Frame.eth_ipv4;
             payload =
               Packet.encode
                 {
                   Packet.src_ip = client_ip;
                   dst_ip = frontend_ip;
                   proto = Packet.proto_udp;
                   src_port = 40000;
                   dst_port = jobs_port;
                   seq = 0;
                   flag = Packet.flag_data;
                   data = Bytes.of_string (Job.to_wire job);
                 };
           });
      (* deliver the request (and the 202/429 reply): admission and
         dispatch run at the frame's delivery instant *)
      Net.Fabric.pump fabric;
      Sched.yield ()
    done;
    driver_done := true;
    maybe_dispatch ~now:(H.Clock.now_ns front.H.Host.clock) ()
  in
  Sched.spawn sched ~name:"driver" ~clock:front.H.Host.clock driver;
  let outcomes = Sched.run sched in
  (* a fiber that died without filing a record is a service bug — make
     it visible rather than losing the job *)
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Sched.Done -> ()
      | Sched.Failed e ->
          Observe.log obs Observe.Info "serve: fiber %s died: %s" name
            (Printexc.to_string e))
    outcomes;
  let makespan =
    Array.fold_left
      (fun acc r ->
        match r with
        | Some r when Float.is_finite r.jr_end_ns -> Float.max acc r.jr_end_ns
        | _ -> acc)
      0. records
  in
  let leaked = !busy_count in
  Observe.Metrics.set_counter (counter "service.workers.leaked") leaked;
  Observe.Metrics.set_counter (counter "service.jobs") cfg.jobs;
  Observe.Metrics.set_gauge (Observe.Metrics.gauge mx "service.makespan_ns") makespan;
  let no_record =
    Array.to_list records
    |> List.mapi (fun i r -> (i, r))
    |> List.filter_map (fun (i, r) ->
           if r = None && i < cfg.jobs then Some i else None)
  in
  List.iter
    (fun i ->
      records.(i) <-
        Some
          {
            jr_job =
              {
                Job.id = i;
                tenant = "?";
                kind = Job.Attach;
                seed = 0;
                priority = 0;
                deadline_ns = 0.;
              };
            jr_status = Job.Failed "job produced no result";
            jr_submit_ns = Float.nan;
            jr_start_ns = Float.nan;
            jr_end_ns = Float.nan;
            jr_worker = -1;
          })
    no_record;
  if no_record <> [] then
    Observe.Metrics.set_counter
      (counter "service.lost_jobs")
      (List.length no_record);
  {
    rp_config = cfg;
    rp_records =
      Array.map Option.get (Array.sub records 0 cfg.jobs);
    rp_host = front;
    rp_stats = Admission.stats adm;
    rp_yields = Sched.yields sched;
    rp_makespan_ns = makespan;
    rp_leaked_workers = leaked;
  }

(* --- durable results ------------------------------------------------ *)

let num = Observe.Export.num

let status_fields = function
  | Job.Completed -> ("completed", None)
  | Job.Failed e -> ("failed", Some e)
  | Job.Shed r -> ("shed", Some r)
  | Job.Expired late ->
      ( "expired",
        Some
          (E.to_string (E.Context ("job deadline", E.Deadline_exceeded late)))
      )

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSON object per job, in id order — the service's durable result
   log (ktest-style: the job, its terminal status, and its timeline). *)
let results_jsonl (r : report) =
  let b = Buffer.create 4096 in
  Array.iter
    (fun jr ->
      let j = jr.jr_job in
      let status, detail = status_fields jr.jr_status in
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\": %d, \"tenant\": \"%s\", \"kind\": \"%s\", \"seed\": %d, \
            \"priority\": %d, \"status\": \"%s\", \"detail\": %s, \
            \"submit_ns\": %s, \"start_ns\": %s, \"end_ns\": %s, \"e2e_ns\": \
            %s, \"worker\": %d}\n"
           j.Job.id j.Job.tenant
           (Job.kind_to_string j.Job.kind)
           j.Job.seed j.Job.priority status
           (match detail with
           | None -> "null"
           | Some d -> "\"" ^ json_escape d ^ "\"")
           (num jr.jr_submit_ns) (num jr.jr_start_ns) (num jr.jr_end_ns)
           (num (jr.jr_end_ns -. jr.jr_submit_ns))
           jr.jr_worker))
    r.rp_records;
  Buffer.contents b

let metrics_json (r : report) =
  Observe.Export.metrics_json r.rp_host.H.Host.observe

(* One digest over everything observable: the double-run determinism
   witness. *)
let digest (r : report) =
  Digest.to_hex (Digest.string (results_jsonl r ^ metrics_json r))

let completed (r : report) =
  Array.fold_left
    (fun acc jr -> if jr.jr_status = Job.Completed then acc + 1 else acc)
    0 r.rp_records

let failed (r : report) =
  Array.fold_left
    (fun acc jr ->
      match jr.jr_status with Job.Failed _ -> acc + 1 | _ -> acc)
    0 r.rp_records
