(* The typed job model of the vmsh service: everything a tenant can ask
   the dispatcher to run, plus the durable per-job result shape. A job
   is self-describing — (kind, seed) fully determines the simulated
   machine it runs on — so a failing job's flight recording can be
   replayed from its wire form alone. *)

type kind =
  | Attach  (** boot a guest, attach the overlay, prove the console *)
  | Attach_detach
      (** attach then detach, with the snapshot oracle asserting the
          guest is byte-identical afterwards *)
  | Sweep_cell of { cls : string; k : int }
      (** one crash-matrix cell: fault class armed at rate 1 with
          [abort-at-yield k]; must roll back cleanly *)
  | Fuzz_seed of { boost : string }
      (** a fuzz schedule: every class armed, [boost] at rate 1;
          completion or clean round-trippable failure both count *)
  | Hostile_attach of { cls : string }
      (** an attach against an adversarial guest of the named
          {!Hostile.cls}: the engine races the attach from inside the
          VM; completion or a clean round-trippable abort (with the
          guest rolled back and nothing leaked) both count *)

type t = {
  id : int;  (** dense, assigned by the arrival driver *)
  tenant : string;
  kind : kind;
  seed : int;  (** seeds the job's private simulated machine *)
  priority : int;  (** higher dequeues first within a tenant *)
  deadline_ns : float;  (** relative to submit; [0.] = no deadline *)
}

(* Terminal state of a job. [Shed] jobs never reached a worker;
   [Expired] jobs were admitted but their deadline passed before a
   worker was free (rendered through Vmsh_error.Deadline_exceeded so
   the error round-trips like every other attach failure). *)
type status =
  | Completed
  | Failed of string  (** rendered {!Vmsh.Vmsh_error.t} or oracle text *)
  | Shed of string  (** admission reason: ["rate"] / ["queue-full"] / ["evicted"] *)
  | Expired of int  (** virtual ns past the deadline at dispatch time *)

let kind_to_string = function
  | Attach -> "attach"
  | Attach_detach -> "attach-detach"
  | Sweep_cell { cls; k } -> Printf.sprintf "sweep:%s:%d" cls k
  | Fuzz_seed { boost } -> Printf.sprintf "fuzz:%s" boost
  | Hostile_attach { cls } -> Printf.sprintf "hostile:%s" cls

let kind_of_string s =
  match String.split_on_char ':' s with
  | [ "attach" ] -> Some Attach
  | [ "attach-detach" ] -> Some Attach_detach
  | [ "sweep"; cls; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 0 -> Some (Sweep_cell { cls; k })
      | _ -> None)
  | [ "fuzz"; boost ] -> Some (Fuzz_seed { boost })
  | [ "hostile"; cls ] -> Some (Hostile_attach { cls })
  | _ -> None

let status_to_string = function
  | Completed -> "completed"
  | Failed e -> "failed: " ^ e
  | Shed reason -> "shed: " ^ reason
  | Expired late_ns ->
      (* the round-trippable taxonomy form, checked by the tests *)
      "expired: "
      ^ Vmsh.Vmsh_error.to_string
          (Vmsh.Vmsh_error.Context
             ("job deadline", Vmsh.Vmsh_error.Deadline_exceeded late_ns))

(* --- wire codec -----------------------------------------------------
   Jobs travel to the frontend over the lib/net workload protocol as an
   HTTP-ish POST carried in a UDP datagram:

     POST /jobs HTTP/1.0\r\n
     X-Tenant: t0\r\n
     X-Job: id=12 kind=attach seed=991 prio=2 deadline=1000000\r\n
     \r\n

   The codec is total in both directions and is its own regression
   test: [of_wire (to_wire j) = Ok j]. *)

let to_wire j =
  Printf.sprintf
    "POST /jobs HTTP/1.0\r\nX-Tenant: %s\r\nX-Job: id=%d kind=%s seed=%d \
     prio=%d deadline=%.0f\r\n\r\n"
    j.tenant j.id (kind_to_string j.kind) j.seed j.priority j.deadline_ns

let of_wire s =
  let fail what = Error (Printf.sprintf "bad job request: %s" what) in
  let lines = String.split_on_char '\n' s in
  let lines = List.map (fun l -> String.trim l) lines in
  match lines with
  | req :: rest when req = "POST /jobs HTTP/1.0" -> (
      let header name =
        let prefix = name ^ ": " in
        List.find_map
          (fun l ->
            if String.length l > String.length prefix
               && String.sub l 0 (String.length prefix) = prefix
            then
              Some
                (String.sub l (String.length prefix)
                   (String.length l - String.length prefix))
            else None)
          rest
      in
      match (header "X-Tenant", header "X-Job") with
      | None, _ -> fail "missing X-Tenant"
      | _, None -> fail "missing X-Job"
      | Some tenant, Some jobspec -> (
          let fields =
            List.filter_map
              (fun kv ->
                match String.index_opt kv '=' with
                | Some i ->
                    Some
                      ( String.sub kv 0 i,
                        String.sub kv (i + 1) (String.length kv - i - 1) )
                | None -> None)
              (String.split_on_char ' ' jobspec)
          in
          let int_field name =
            Option.bind (List.assoc_opt name fields) int_of_string_opt
          in
          let float_field name =
            Option.bind (List.assoc_opt name fields) float_of_string_opt
          in
          let kind =
            Option.bind (List.assoc_opt "kind" fields) kind_of_string
          in
          match
            (int_field "id", kind, int_field "seed", int_field "prio",
             float_field "deadline")
          with
          | Some id, Some kind, Some seed, Some priority, Some deadline_ns ->
              Ok { id; tenant; kind; seed; priority; deadline_ns }
          | _ -> fail ("unparseable X-Job: " ^ jobspec)))
  | req :: _ -> fail ("unexpected request line: " ^ req)
  | [] -> fail "empty request"

(* Frontend replies, in kind. *)
let accepted_wire = "HTTP/1.0 202 Accepted\r\n\r\n"

let rejected_wire reason =
  Printf.sprintf "HTTP/1.0 429 Too Many Requests\r\nX-Reason: %s\r\n\r\n"
    reason
