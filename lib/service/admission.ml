(* Per-tenant admission control and backpressure.

   Each tenant owns a token bucket (rate limiting), a bounded priority
   queue, and a weighted-fair service account. All decisions are pure
   functions of (virtual time, configuration, arrival order) — the
   module never reads a clock or an RNG itself, the caller passes
   [~now] — so the same arrival stream always produces the same
   admissions, sheds, and dequeue order.

   The defer policy shapes instead of dropping: a job that arrives
   without a token borrows against future refill (the bucket goes
   negative) and carries an [eligible_ns] timestamp before which the
   dequeue refuses to release it — the classic virtual-scheduling-time
   shaper, with no re-evaluation loops to order nondeterministically. *)

type policy =
  | Reject  (** no token or no queue room: drop the new job *)
  | Shed_oldest
      (** no queue room: evict the oldest queued job to admit the new
          one (no token: still a reject — eviction mints no tokens) *)
  | Defer
      (** no token: admit with a future eligibility time; a full queue
          still rejects *)

let policy_to_string = function
  | Reject -> "reject"
  | Shed_oldest -> "shed-oldest"
  | Defer -> "defer"

let policy_of_string = function
  | "reject" -> Some Reject
  | "shed-oldest" -> Some Shed_oldest
  | "defer" -> Some Defer
  | _ -> None

type tenant_cfg = {
  tc_name : string;
  tc_share : int;
      (** arrival-mix weight used by the driver (not by admission) *)
  tc_weight : int;  (** weighted-fair service weight, >= 1 *)
  tc_rate : float;
      (** admission tokens per virtual second; [infinity] = unlimited *)
  tc_burst : float;  (** bucket capacity, >= 1 *)
  tc_queue : int;  (** queue bound, >= 1 *)
  tc_policy : policy;
}

let default_tenant name =
  {
    tc_name = name;
    tc_share = 1;
    tc_weight = 1;
    tc_rate = infinity;
    tc_burst = 1.;
    tc_queue = 128;
    tc_policy = Reject;
  }

type entry = {
  e_job : Job.t;
  e_submit_ns : float;
  e_seq : int;  (** global arrival sequence — the FIFO tie-break *)
  e_eligible_ns : float;  (** defer shaping; [e_submit_ns] when untouched *)
}

type tenant_stats = {
  ts_submitted : int;
  ts_admitted : int;
  ts_shed_rate : int;
  ts_shed_queue : int;
  ts_shed_evicted : int;
  ts_dispatched : int;
}

type tenant = {
  cfg : tenant_cfg;
  mutable tokens : float;
  mutable refill_ns : float;
  mutable queue : entry list;  (** sorted: priority desc, then seq asc *)
  mutable served : float;  (** weighted-fair virtual service received *)
  mutable submitted : int;
  mutable admitted : int;
  mutable shed_rate : int;
  mutable shed_queue : int;
  mutable shed_evicted : int;
  mutable dispatched : int;
}

(* Tenants live in a list in configuration order — never a hash table —
   so every fold below iterates identically on every run. *)
type t = { tenants : tenant list; mutable next_seq : int }

let create cfgs =
  if cfgs = [] then invalid_arg "Admission.create: no tenants";
  let tenant cfg =
    if cfg.tc_weight < 1 then invalid_arg "Admission.create: weight < 1";
    if cfg.tc_queue < 1 then invalid_arg "Admission.create: queue < 1";
    {
      cfg;
      tokens = cfg.tc_burst;
      refill_ns = 0.;
      queue = [];
      served = 0.;
      submitted = 0;
      admitted = 0;
      shed_rate = 0;
      shed_queue = 0;
      shed_evicted = 0;
      dispatched = 0;
    }
  in
  { tenants = List.map tenant cfgs; next_seq = 0 }

let tenant_exn t name =
  match List.find_opt (fun tn -> tn.cfg.tc_name = name) t.tenants with
  | Some tn -> tn
  | None -> invalid_arg ("Admission: unknown tenant " ^ name)

let refill tn ~now =
  if tn.cfg.tc_rate = infinity then tn.tokens <- tn.cfg.tc_burst
  else begin
    let dt = Float.max 0. (now -. tn.refill_ns) in
    tn.tokens <-
      Float.min tn.cfg.tc_burst (tn.tokens +. (dt /. 1e9 *. tn.cfg.tc_rate));
    tn.refill_ns <- now
  end

let insert_by_priority entry queue =
  let rec go = function
    | [] -> [ entry ]
    | e :: rest
      when e.e_job.Job.priority > entry.e_job.Job.priority
           || (e.e_job.Job.priority = entry.e_job.Job.priority
              && e.e_seq < entry.e_seq) ->
        e :: go rest
    | rest -> entry :: rest
  in
  go queue

type decision =
  | Admitted of { evicted : entry option }
  | Rejected of string  (** reason: ["rate"] or ["queue-full"] *)

let submit t ~now (job : Job.t) =
  let tn = tenant_exn t job.Job.tenant in
  tn.submitted <- tn.submitted + 1;
  refill tn ~now;
  let with_token k =
    if tn.tokens >= 1. then begin
      tn.tokens <- tn.tokens -. 1.;
      k now
    end
    else
      match tn.cfg.tc_policy with
      | Defer ->
          (* borrow against future refill: eligible when the bucket
             would have reached one token *)
          let deficit = 1. -. tn.tokens in
          tn.tokens <- tn.tokens -. 1.;
          k (now +. (deficit /. tn.cfg.tc_rate *. 1e9))
      | Reject | Shed_oldest ->
          tn.shed_rate <- tn.shed_rate + 1;
          Rejected "rate"
  in
  with_token (fun eligible_ns ->
      let enqueue evicted =
        let entry =
          { e_job = job; e_submit_ns = now; e_seq = t.next_seq; e_eligible_ns = eligible_ns }
        in
        t.next_seq <- t.next_seq + 1;
        tn.queue <- insert_by_priority entry tn.queue;
        tn.admitted <- tn.admitted + 1;
        Admitted { evicted }
      in
      if List.length tn.queue < tn.cfg.tc_queue then enqueue None
      else
        match tn.cfg.tc_policy with
        | Shed_oldest ->
            (* evict the true oldest (min seq), regardless of priority *)
            let oldest =
              List.fold_left
                (fun best e ->
                  match best with
                  | Some b when b.e_seq <= e.e_seq -> best
                  | _ -> Some e)
                None tn.queue
            in
            let oldest = Option.get oldest in
            tn.queue <- List.filter (fun e -> e.e_seq <> oldest.e_seq) tn.queue;
            tn.shed_evicted <- tn.shed_evicted + 1;
            enqueue (Some oldest)
        | Reject | Defer ->
            (* refund the token the doomed job took *)
            tn.tokens <- tn.tokens +. 1.;
            tn.shed_queue <- tn.shed_queue + 1;
            Rejected "queue-full")

(* Weighted-fair dequeue: among tenants whose head-of-line entry is
   eligible at [now], release from the one with the least weighted
   service so far; ties break in configuration order. A hot tenant's
   backlog therefore cannot starve a light tenant — each dispatched job
   charges 1/weight to its tenant's account. *)
let dequeue t ~now =
  let candidate =
    List.fold_left
      (fun best tn ->
        match tn.queue with
        | head :: _ when head.e_eligible_ns <= now -> (
            match best with
            | Some (btn, _) when btn.served <= tn.served -> best
            | _ -> Some (tn, head))
        | _ -> best)
      None t.tenants
  in
  match candidate with
  | None -> None
  | Some (tn, head) ->
      tn.queue <- List.tl tn.queue;
      tn.served <- tn.served +. (1. /. float_of_int tn.cfg.tc_weight);
      tn.dispatched <- tn.dispatched + 1;
      Some head

(* Earliest instant at which any queued entry becomes eligible — the
   drain phase advances virtual time here when every worker is idle and
   only deferred work remains. *)
let next_eligible t =
  List.fold_left
    (fun best tn ->
      match tn.queue with
      | head :: _ -> (
          match best with
          | Some b when b <= head.e_eligible_ns -> best
          | _ -> Some head.e_eligible_ns)
      | [] -> best)
    None t.tenants

let queued t =
  List.fold_left (fun acc tn -> acc + List.length tn.queue) 0 t.tenants

let queue_depth t name = List.length (tenant_exn t name).queue
let tenants t = List.map (fun tn -> tn.cfg) t.tenants

let stats t =
  List.map
    (fun tn ->
      ( tn.cfg.tc_name,
        {
          ts_submitted = tn.submitted;
          ts_admitted = tn.admitted;
          ts_shed_rate = tn.shed_rate;
          ts_shed_queue = tn.shed_queue;
          ts_shed_evicted = tn.shed_evicted;
          ts_dispatched = tn.dispatched;
        } ))
    t.tenants
