(* Request/response traffic over the side-loaded NIC: the ROADMAP's
   "serve heavy traffic" workload class, scaled down to a measurable
   primitive. A host-side server sits on one port of the deterministic
   fabric (behind the switch); the guest runs a closed-loop client over
   its vmsh-net driver. Two servers: a UDP echo, and an "HTTP-ish"
   responder with fixed-size replies. Loss is recovered by bounded
   application retries (UDP) or TCP-lite stop-and-wait — both
   deterministic because a reply either sits in the receive ring when
   the transmit kick returns, or was provably dropped. *)

module Clock = Hostos.Clock
module Guest = Linux_guest.Guest
module Netstack = Linux_guest.Netstack
module Packet = Netstack.Packet
module Frame = Net.Frame
module H = Hypervisor.Vmm

(* The fixed addressing plan of the test network. *)
let server_ip = Packet.make_ip 10 0 0 1
let client_ip = Packet.make_ip 10 0 0 2
let server_mac = Frame.make_mac ~vendor:0x0566 ~serial:0xbeef
let echo_port = 7
let http_port = 80

type mode = Echo | Http of int  (** response size in bytes *)

let http_response ~size =
  (* an exactly [size]-byte response: status line + body filler *)
  let header body_len =
    Printf.sprintf "HTTP/1.0 200 OK\r\nContent-Length: %6d\r\n\r\n" body_len
  in
  let body_len = max 0 (size - String.length (header 0)) in
  let b = Buffer.create size in
  Buffer.add_string b (header body_len);
  for i = 0 to body_len - 1 do
    Buffer.add_char b (Char.chr (0x61 + (i mod 26)))
  done;
  Bytes.of_string (Buffer.contents b)

(* Stand a server up on a fabric port (plug the link's other end into
   the switch). Replies to UDP datagrams in kind; speaks TCP-lite
   stop-and-wait for proto-6 segments, re-echoing duplicates so lost
   replies are recovered by client retransmission. *)
let install_server fabric port ~udp_port ~mode =
  let obs = Net.Fabric.observe fabric in
  let count name =
    Observe.Metrics.incr (Observe.Metrics.counter (Observe.metrics obs) name)
  in
  let response req_data =
    match mode with
    | Echo -> req_data
    | Http size -> http_response ~size
  in
  Net.Link.set_handler port (fun raw ->
      match Frame.decode raw with
      | None -> ()
      | Some f when f.Frame.dst <> server_mac && f.Frame.dst <> Frame.broadcast
        ->
          ()
      | Some f -> (
          match Packet.decode f.Frame.payload with
          | None -> ()
          | Some p
            when p.Packet.dst_ip <> server_ip || p.Packet.dst_port <> udp_port
            ->
              count "net-server.misaddressed"
          | Some p ->
              let reply ~proto ~seq ~flag data =
                Net.Link.send port
                  (Frame.encode
                     {
                       Frame.src = server_mac;
                       dst = f.Frame.src;
                       ethertype = Frame.eth_ipv4;
                       payload =
                         Packet.encode
                           {
                             Packet.src_ip = server_ip;
                             dst_ip = p.Packet.src_ip;
                             proto;
                             src_port = udp_port;
                             dst_port = p.Packet.src_port;
                             seq;
                             flag;
                             data;
                           };
                     })
              in
              if p.Packet.proto = Packet.proto_udp then begin
                count "net-server.requests";
                reply ~proto:Packet.proto_udp ~seq:0 ~flag:Packet.flag_data
                  (response p.Packet.data)
              end
              else if
                p.Packet.proto = Packet.proto_tcp
                && p.Packet.flag = Packet.flag_data
              then begin
                (* ack, then answer with the same sequence number; a
                   duplicate request just produces both again *)
                count "net-server.requests";
                reply ~proto:Packet.proto_tcp ~seq:p.Packet.seq
                  ~flag:Packet.flag_ack Bytes.empty;
                reply ~proto:Packet.proto_tcp ~seq:p.Packet.seq
                  ~flag:Packet.flag_data (response p.Packet.data)
              end))

(* Build the canonical two-link test network: guest NIC -- switch --
   server. Returns the fabric, the port to hand to the attach config,
   and installs the server. *)
let make_network (h : Hostos.Host.t) ~mode ?(latency_ns = 30_000.)
    ?(loss = 0.0) () =
  let fabric = Net.Fabric.of_host h in
  let switch = Net.Switch.create fabric ~name:"sw0" in
  let guest_link = Net.Link.create fabric ~name:"guest-sw" ~latency_ns ~loss () in
  let server_link = Net.Link.create fabric ~name:"sw-server" ~latency_ns ~loss () in
  Net.Switch.plug switch (Net.Link.b guest_link);
  Net.Switch.plug switch (Net.Link.a server_link);
  let udp_port = match mode with Echo -> echo_port | Http _ -> http_port in
  install_server fabric (Net.Link.b server_link) ~udp_port ~mode;
  (fabric, Net.Link.a guest_link)

type result = {
  requests : int;
  completed : int;
  retransmits : int;
  bytes_rx : int;
  elapsed_ns : float;
  rps : float;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%d/%d requests, %d retransmits, %d bytes received, %.2f ms, %.0f req/s"
    r.completed r.requests r.retransmits r.bytes_rx (r.elapsed_ns /. 1e6)
    r.rps

let udp_max_retries = 16

(* Closed-loop client, run as guest code against the side-loaded NIC.
   [proto] selects plain datagrams with application retry, or TCP-lite
   via the netstack's stop-and-wait. *)
let run_client vmm g ~requests ~payload_size ~mode
    ?(proto = `Udp) ?(name = "net-echo") () =
  let nic =
    match Guest.vmsh_net g with
    | Some d -> d
    | None -> failwith "traffic: no side-loaded NIC (attach with a net config)"
  in
  let obs = (Kvm.Vm.host (Guest.vm g)).Hostos.Host.observe in
  let mx = Observe.metrics obs in
  let hist = Observe.Metrics.histogram mx (name ^ ".request_ns") in
  let req_c = Observe.Metrics.counter mx (name ^ ".requests") in
  let retr_c = Observe.Metrics.counter mx (name ^ ".retransmits") in
  let clock = (Kvm.Vm.host (Guest.vm g)).Hostos.Host.clock in
  let dst_port = match mode with Echo -> echo_port | Http _ -> http_port in
  let local_port = 40000 in
  H.in_guest vmm (fun () ->
      let st = Netstack.create ~observe:obs nic ~ip:client_ip in
      let payload =
        Bytes.init payload_size (fun i -> Char.chr (0x30 + (i mod 10)))
      in
      let completed = ref 0 and retransmits = ref 0 and bytes_rx = ref 0 in
      let start = Clock.now_ns clock in
      (match proto with
      | `Udp ->
          (match Netstack.bind st ~port:local_port with
          | Ok () -> ()
          | Error e -> failwith ("traffic: bind: " ^ Hostos.Errno.show e));
          for _ = 1 to requests do
            let t0 = Clock.now_ns clock in
            let rec attempt n =
              if n > udp_max_retries then None
              else begin
                if n > 1 then begin
                  incr retransmits;
                  Observe.Metrics.incr retr_c
                end;
                Netstack.udp_send st ~src_port:local_port ~dst_ip:server_ip
                  ~dst_port payload;
                match Netstack.udp_try_recv st ~port:local_port with
                | Some (_, _, data) -> Some data
                | None -> attempt (n + 1)
              end
            in
            (match attempt 1 with
            | Some data ->
                incr completed;
                bytes_rx := !bytes_rx + Bytes.length data
            | None -> ());
            Observe.Metrics.incr req_c;
            Observe.Metrics.observe hist (Clock.now_ns clock -. t0)
          done
      | `Tcp ->
          let s =
            match
              Netstack.tcp_connect st ~local_port ~peer_ip:server_ip
                ~peer_port:dst_port
            with
            | Ok s -> s
            | Error e -> failwith ("traffic: connect: " ^ Hostos.Errno.show e)
          in
          for _ = 1 to requests do
            let t0 = Clock.now_ns clock in
            (match Netstack.tcp_request s payload with
            | Ok data ->
                incr completed;
                bytes_rx := !bytes_rx + Bytes.length data
            | Error _ -> ());
            Observe.Metrics.incr req_c;
            Observe.Metrics.observe hist (Clock.now_ns clock -. t0)
          done);
      let elapsed = Clock.now_ns clock -. start in
      {
        requests;
        completed = !completed;
        retransmits = !retransmits;
        bytes_rx = !bytes_rx;
        elapsed_ns = elapsed;
        rps =
          (if elapsed > 0. then float_of_int !completed /. (elapsed /. 1e9)
           else 0.);
      })
