(* Cooperative scheduler over virtual time.

   Implemented with OCaml 5 effects: a fiber performs [Yield]; the
   handler stashes its continuation and returns control to the
   scheduler loop, which resumes the runnable fiber with the smallest
   [Clock.now_ns]. Determinism hinges on exactly two things: the pick
   is a pure function of (virtual time, spawn id), and fibers never
   touch shared mutable state between yield points except through
   their own per-session Host. *)

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type outcome = Done | Failed of exn

type fiber = {
  id : int;
  name : string;
  clock : Hostos.Clock.t;
  mutable resume : (unit -> unit) option;
  mutable outcome : outcome option;
}

type t = {
  mutable fibers : fiber list; (* live fibers, reverse spawn order *)
  mutable reaped : (int * string * outcome) list; (* finished, any order *)
  mutable next_id : int;
  mutable yields : int;
  mutable running : bool;
  mutable tracer : (name:string -> now_ns:float -> unit) option;
}

(* The scheduler currently driving fibers, if any. [yield] outside a
   run must be a no-op so yield points can live in library code that
   is also exercised by ordinary single-session callers. *)
let current : t option ref = ref None

let create () =
  {
    fibers = [];
    reaped = [];
    next_id = 0;
    yields = 0;
    running = false;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- tracer

(* Spawning is legal both before and during a run: [pick] re-reads
   [t.fibers] on every iteration, so a fiber registered mid-run (e.g. a
   service job dispatched while the driver fiber holds the scheduler)
   joins the pick set at its clock's current virtual time. *)
let spawn t ~name ~clock body =
  let fiber =
    { id = t.next_id; name; clock; resume = None; outcome = None }
  in
  t.next_id <- t.next_id + 1;
  fiber.resume <-
    Some
      (fun () ->
        match_with body ()
          {
            retc = (fun () -> fiber.outcome <- Some Done);
            exnc = (fun e -> fiber.outcome <- Some (Failed e));
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Yield ->
                    Some
                      (fun (k : (a, _) continuation) ->
                        fiber.resume <- Some (fun () -> continue k ()))
                | _ -> None);
          });
  t.fibers <- fiber :: t.fibers

let yield () =
  match !current with
  | Some t ->
      t.yields <- t.yields + 1;
      perform Yield
  | None -> ()

let pick fibers =
  List.fold_left
    (fun best f ->
      match (f.resume, best) with
      | None, _ -> best
      | Some _, None -> Some f
      | Some _, Some b ->
          let tf = Hostos.Clock.now_ns f.clock
          and tb = Hostos.Clock.now_ns b.clock in
          if tf < tb || (tf = tb && f.id < b.id) then Some f else best)
    None fibers

let run t =
  if t.running then invalid_arg "Sched.run: scheduler already running";
  (match !current with
  | Some _ -> invalid_arg "Sched.run: another scheduler is running"
  | None -> ());
  t.running <- true;
  current := Some t;
  let finish () =
    current := None;
    t.running <- false
  in
  (try
     let rec loop () =
       match pick t.fibers with
       | None -> ()
       | Some f ->
           (match t.tracer with
           | Some trace ->
               trace ~name:f.name ~now_ns:(Hostos.Clock.now_ns f.clock)
           | None -> ());
           let resume = Option.get f.resume in
           f.resume <- None;
           resume ();
           (* Reap finished fibers so the pick stays proportional to the
              number of *live* fibers, not every fiber ever spawned — a
              long-running service churns through thousands. *)
           (match f.outcome with
           | Some o ->
               t.fibers <- List.filter (fun g -> g.id <> f.id) t.fibers;
               t.reaped <- (f.id, f.name, o) :: t.reaped
           | None -> ());
           loop ()
     in
     loop ()
   with e ->
     finish ();
     raise e);
  finish ();
  let leftovers =
    List.map
      (fun f ->
        ( f.id,
          f.name,
          match f.outcome with
          | Some o -> o
          | None -> Failed (Invalid_argument "Sched: fiber never completed")
        ))
      t.fibers
  in
  List.concat [ leftovers; t.reaped ]
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, name, o) -> (name, o))

let yields t = t.yields
