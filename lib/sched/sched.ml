(* Cooperative scheduler over virtual time.

   Implemented with OCaml 5 effects: a fiber performs [Yield]; the
   handler stashes its continuation and returns control to the
   scheduler loop, which resumes the runnable fiber with the smallest
   [Clock.now_ns]. Determinism hinges on exactly two things: the pick
   is a pure function of (virtual time, spawn id), and fibers never
   touch shared mutable state between yield points except through
   their own per-session Host.

   The pick set is a binary min-heap keyed by (virtual time, spawn id)
   rather than a linear scan: a forked fleet multiplexes thousands of
   fibers, each yielding at every vmexit of its boot replay, and an
   O(live) scan per slice turns quadratic there. A parked fiber's clock
   can still advance before it is resumed (another fiber pre-advances a
   job host; charges land between spawn and first run), so the heap is
   lazy: entries are validated on pop and re-inserted at the clock's
   current reading when stale. This is exactly equivalent to the full
   scan as long as a *parked* fiber's clock never moves backward —
   virtual clocks only rewind inside [Clock.restore_section], which runs
   within the owning (running) fiber, so the invariant holds. *)

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type outcome = Done | Failed of exn

type fiber = {
  id : int;
  name : string;
  clock : Hostos.Clock.t;
  mutable resume : (unit -> unit) option;
  mutable outcome : outcome option;
}

(* Min-heap of fibers keyed by (key_ns, id): smallest virtual time
   first, spawn order breaking ties. [key_ns] is the clock reading at
   insertion time; it may be stale-low by the time the entry surfaces,
   never stale-high. *)
module Heap = struct
  type entry = { key_ns : float; fib : fiber }
  type h = { mutable a : entry array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let less x y =
    x.key_ns < y.key_ns || (x.key_ns = y.key_ns && x.fib.id < y.fib.id)

  let push h e =
    if h.n = Array.length h.a then begin
      let cap = max 16 (2 * h.n) in
      let a = Array.make cap e in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    (* sift up *)
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(!i) in
      h.a.(!i) <- h.a.(p);
      h.a.(p) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        (* sift down *)
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.n && less h.a.(l) h.a.(!s) then s := l;
          if r < h.n && less h.a.(r) h.a.(!s) then s := r;
          if !s <> !i then begin
            let tmp = h.a.(!i) in
            h.a.(!i) <- h.a.(!s);
            h.a.(!s) <- tmp;
            i := !s
          end
          else continue_ := false
        done
      end;
      Some top
    end
end

type t = {
  mutable fibers : fiber list; (* live fibers, reverse spawn order *)
  mutable reaped : (int * string * outcome) list; (* finished, any order *)
  heap : Heap.h; (* runnable pick set (lazy keys) *)
  mutable next_id : int;
  mutable yields : int;
  mutable running : bool;
  mutable tracer : (name:string -> now_ns:float -> unit) option;
}

(* The scheduler currently driving fibers, if any. [yield] outside a
   run must be a no-op so yield points can live in library code that
   is also exercised by ordinary single-session callers. *)
let current : t option ref = ref None

let create () =
  {
    fibers = [];
    reaped = [];
    heap = Heap.create ();
    next_id = 0;
    yields = 0;
    running = false;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- tracer

(* Spawning is legal both before and during a run: the fiber is pushed
   into the heap at its clock's current virtual time, so one registered
   mid-run (e.g. a service job dispatched while the driver fiber holds
   the scheduler) joins the pick set immediately. *)
let spawn t ~name ~clock body =
  let fiber =
    { id = t.next_id; name; clock; resume = None; outcome = None }
  in
  t.next_id <- t.next_id + 1;
  fiber.resume <-
    Some
      (fun () ->
        match_with body ()
          {
            retc = (fun () -> fiber.outcome <- Some Done);
            exnc = (fun e -> fiber.outcome <- Some (Failed e));
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Yield ->
                    Some
                      (fun (k : (a, _) continuation) ->
                        fiber.resume <- Some (fun () -> continue k ()))
                | _ -> None);
          });
  t.fibers <- fiber :: t.fibers;
  Heap.push t.heap { Heap.key_ns = Hostos.Clock.now_ns clock; fib = fiber }

let yield () =
  match !current with
  | Some t ->
      t.yields <- t.yields + 1;
      perform Yield
  | None -> ()

let run t =
  if t.running then invalid_arg "Sched.run: scheduler already running";
  (match !current with
  | Some _ -> invalid_arg "Sched.run: another scheduler is running"
  | None -> ());
  t.running <- true;
  current := Some t;
  let finish () =
    current := None;
    t.running <- false
  in
  (try
     let rec loop () =
       match Heap.pop t.heap with
       | None -> ()
       | Some { Heap.key_ns; fib = f } -> (
           match f.resume with
           | None -> loop () (* finished before surfacing; already reaped *)
           | Some resume ->
               let now = Hostos.Clock.now_ns f.clock in
               if now > key_ns then begin
                 (* clock advanced while parked: the stored key went
                    stale-low — re-insert at the current reading *)
                 Heap.push t.heap { Heap.key_ns = now; fib = f };
                 loop ()
               end
               else begin
                 (match t.tracer with
                 | Some trace -> trace ~name:f.name ~now_ns:now
                 | None -> ());
                 f.resume <- None;
                 resume ();
                 (* Reap finished fibers so bookkeeping stays proportional
                    to the number of *live* fibers, not every fiber ever
                    spawned — a long-running service churns through
                    thousands. A yielded fiber goes back into the heap at
                    its post-slice virtual time. *)
                 (match f.outcome with
                 | Some o ->
                     t.fibers <- List.filter (fun g -> g.id <> f.id) t.fibers;
                     t.reaped <- (f.id, f.name, o) :: t.reaped
                 | None ->
                     Heap.push t.heap
                       { Heap.key_ns = Hostos.Clock.now_ns f.clock; fib = f });
                 loop ()
               end)
     in
     loop ()
   with e ->
     finish ();
     raise e);
  finish ();
  let leftovers =
    List.map
      (fun f ->
        ( f.id,
          f.name,
          match f.outcome with
          | Some o -> o
          | None -> Failed (Invalid_argument "Sched: fiber never completed")
        ))
      t.fibers
  in
  List.concat [ leftovers; t.reaped ]
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, name, o) -> (name, o))

let yields t = t.yields
