(** Cooperative virtual-time scheduler.

    A [t] multiplexes N fibers, each pinned to its own
    {!Hostos.Clock.t}. Fibers suspend at explicit {!yield} points
    (effect-based, no threads); the scheduler always resumes the
    runnable fiber whose clock shows the smallest virtual time,
    breaking ties by spawn order. The pick is a pure function of the
    fibers' virtual clocks, so a run's interleaving — and therefore
    every trace and metric derived from it — is byte-identical across
    repeats with the same seeds.

    [yield] called outside a scheduler run is a no-op, so library code
    can sprinkle yield points unconditionally. *)

type t

type outcome = Done | Failed of exn

val create : unit -> t

val spawn : t -> name:string -> clock:Hostos.Clock.t -> (unit -> unit) -> unit
(** Register a fiber. Its body runs when {!run} is called; exceptions
    are captured per-fiber (one session's failure does not unwind the
    fleet). Spawning from inside a running fiber is supported: the new
    fiber joins the pick set immediately at its clock's current virtual
    time, which is how the service dispatcher launches job sessions
    while the arrival-driver fiber is live. *)

val run : t -> (string * outcome) list
(** Drive all fibers to completion, interleaving at yield points in
    ascending virtual-time order. The pick set is a min-heap keyed by
    (virtual time, spawn id), so each scheduling decision costs
    O(log live fibers) — a forked fleet of thousands of sessions
    yields at every vmexit of its boot replay, and a linear scan per
    slice turns quadratic there. Finished fibers are reaped as they
    complete. Returns per-fiber outcomes in spawn order
    (including fibers spawned mid-run). Raises [Invalid_argument] on
    re-entrant use. *)

val yield : unit -> unit
(** Suspend the current fiber and let the scheduler pick the next one.
    No-op when no scheduler is running. *)

val yields : t -> int
(** Total number of suspensions taken during {!run}. *)

val set_tracer : t -> (name:string -> now_ns:float -> unit) option -> unit
(** Observe every scheduling decision: called with the chosen fiber and
    its virtual time just before each resume. Because the pick is
    deterministic, the emitted schedule is too — the fleet determinism
    test compares it byte for byte. *)
