(* Hypervisor-boundary flight recorder: bounded event ring + compact
   binary [.vmshtrace] codec + event-stream diff.

   Recording is pure observation. The recorder never reads the clock
   except through the [now] closure it was given (which does not
   advance it), never draws randomness, and allocates only inside its
   fixed-capacity ring — so it can stay always-on without perturbing
   the simulation, and identically-seeded runs serialize to
   byte-identical files. *)

type value = I of int | S of string

type event = {
  kind : string;
  ts : float;
  session : int;
  args : (string * value) list;
}

type file = {
  f_meta : (string * string) list;
  f_dropped : int;
  f_events : event list;
}

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type t = {
    now : unit -> float;
    cap : int;
    buf : event array;
    mutable start : int;
    mutable len : int;
    mutable dropped : int;
    mutable on : bool;
    mutable sess : int;
    mutable hdr : (string * string) list;
  }

  let default_capacity = 65536

  let create ?(capacity = default_capacity) ~now () =
    let dummy = { kind = ""; ts = 0.0; session = 0; args = [] } in
    {
      now;
      cap = max 1 capacity;
      buf = Array.make (max 1 capacity) dummy;
      start = 0;
      len = 0;
      dropped = 0;
      on = true;
      sess = 0;
      hdr = [];
    }

  let enabled t = t.on
  let set_enabled t b = t.on <- b
  let set_session t s = t.sess <- s
  let session t = t.sess

  let set_meta t k v =
    if List.mem_assoc k t.hdr then
      t.hdr <- List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) t.hdr
    else t.hdr <- t.hdr @ [ (k, v) ]

  let meta t = t.hdr

  let record t ~kind ?(args = []) () =
    if t.on then begin
      let e = { kind; ts = t.now (); session = t.sess; args } in
      if t.len < t.cap then begin
        t.buf.((t.start + t.len) mod t.cap) <- e;
        t.len <- t.len + 1
      end
      else begin
        t.buf.(t.start) <- e;
        t.start <- (t.start + 1) mod t.cap;
        t.dropped <- t.dropped + 1
      end
    end

  let events t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))
  let total t = t.len + t.dropped
  let dropped t = t.dropped

  let clear t =
    t.start <- 0;
    t.len <- 0;
    t.dropped <- 0
end

(* ------------------------------------------------------------------ *)
(* Mutation-safe accessors & causality metadata                        *)
(* ------------------------------------------------------------------ *)

(* The trace-mutation fuzzer (lib/fuzz) edits events without knowing
   their layout; these accessors keep every edit well-typed so a mutant
   still round-trips through the codec. *)

let int_arg e k =
  match List.assoc_opt k e.args with Some (I i) -> Some i | _ -> None

let str_arg e k =
  match List.assoc_opt k e.args with Some (S s) -> Some s | _ -> None

let with_int_arg e k v =
  if List.mem_assoc k e.args then
    {
      e with
      args =
        List.map (fun (k', v') -> if k' = k then (k', I v) else (k', v')) e.args;
    }
  else { e with args = e.args @ [ (k, I v) ] }

let with_ts e ts = { e with ts }
let with_session e session = { e with session }

(* Causality metadata: which event pairs a mutator may legally swap.
   Lifecycle events anchor a session's transaction window — everything
   else in the session is causally ordered against them — and two
   same-kind events in one session form a FIFO (descriptor completions,
   injected syscalls, pump rounds) whose order carries meaning. Events
   of different sessions are concurrent by construction (each session
   owns its machine) and always commute. *)

let lifecycle e =
  match e.kind with
  | "attach.begin" | "attach.commit" | "attach.abort" | "journal.rollback" ->
      true
  | _ -> false

let commutes a b =
  a.session <> b.session
  || ((not (lifecycle a)) && (not (lifecycle b)) && a.kind <> b.kind)

(* ------------------------------------------------------------------ *)
(* Binary codec                                                        *)
(* ------------------------------------------------------------------ *)

let magic = "VMSHTRC1"

(* The corpus cache key: coverage accumulated under one codec version
   must not seed a fuzzer reading another. *)
let codec_version = magic

let add_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let add_u32 b v =
  add_u16 b (v land 0xffff);
  add_u16 b ((v lsr 16) land 0xffff)

let add_i64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let add_str32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

(* Strings (kinds, arg names, string arg values) are interned in a
   table built in first-appearance order, which is deterministic. *)
let encode ~meta ?(dropped = 0) events =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  let nstr = ref 0 in
  let intern s =
    match Hashtbl.find_opt table s with
    | Some i -> i
    | None ->
        let i = !nstr in
        Hashtbl.add table s i;
        order := s :: !order;
        incr nstr;
        i
  in
  (* First pass: build the table. *)
  List.iter
    (fun e ->
      ignore (intern e.kind);
      List.iter
        (fun (k, v) ->
          ignore (intern k);
          match v with S s -> ignore (intern s) | I _ -> ())
        e.args)
    events;
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_u32 b (List.length meta);
  List.iter
    (fun (k, v) ->
      add_str32 b k;
      add_str32 b v)
    meta;
  add_u32 b dropped;
  add_u32 b !nstr;
  List.iter (fun s -> add_str32 b s) (List.rev !order);
  add_u32 b (List.length events);
  List.iter
    (fun e ->
      add_u32 b (Hashtbl.find table e.kind);
      add_u32 b e.session;
      add_i64 b (Int64.bits_of_float e.ts);
      add_u16 b (List.length e.args);
      List.iter
        (fun (k, v) ->
          add_u32 b (Hashtbl.find table k);
          match v with
          | I i ->
              Buffer.add_char b '\000';
              add_i64 b (Int64.of_int i)
          | S s ->
              Buffer.add_char b '\001';
              add_u32 b (Hashtbl.find table s))
        e.args)
    events;
  Buffer.contents b

exception Bad of string

let decode s =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length s then raise (Bad "truncated trace file")
  in
  let u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    let lo = u8 () in
    let hi = u8 () in
    lo lor (hi lsl 8)
  in
  let u32 () =
    let lo = u16 () in
    let hi = u16 () in
    lo lor (hi lsl 16)
  in
  let i64 () =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 ())) (8 * i))
    done;
    !v
  in
  let str32 () =
    let n = u32 () in
    need n;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  try
    need (String.length magic);
    if String.sub s 0 (String.length magic) <> magic then
      raise (Bad "bad magic (not a .vmshtrace file)");
    pos := String.length magic;
    let nmeta = u32 () in
    let meta =
      List.init nmeta (fun _ ->
          let k = str32 () in
          let v = str32 () in
          (k, v))
    in
    let dropped = u32 () in
    let nstr = u32 () in
    let table = Array.init nstr (fun _ -> str32 ()) in
    let lookup i =
      if i < 0 || i >= nstr then raise (Bad "string index out of range")
      else table.(i)
    in
    let nev = u32 () in
    let events =
      List.init nev (fun _ ->
          let kind = lookup (u32 ()) in
          let session = u32 () in
          let ts = Int64.float_of_bits (i64 ()) in
          let nargs = u16 () in
          let args =
            List.init nargs (fun _ ->
                let k = lookup (u32 ()) in
                match u8 () with
                | 0 -> (k, I (Int64.to_int (i64 ())))
                | 1 -> (k, S (lookup (u32 ())))
                | t -> raise (Bad (Printf.sprintf "unknown arg tag %d" t)))
          in
          { kind; ts; session; args })
    in
    Ok { f_meta = meta; f_dropped = dropped; f_events = events }
  with Bad m -> Error m

let save r ?(extra_meta = []) path =
  let bytes =
    encode
      ~meta:(Recorder.meta r @ extra_meta)
      ~dropped:(Recorder.dropped r) (Recorder.events r)
  in
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> decode s
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Diff / stat                                                         *)
(* ------------------------------------------------------------------ *)

let value_str = function I i -> string_of_int i | S s -> s

let args_str args =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ value_str v) args)

let event_str e =
  Printf.sprintf "[%.0f] s%d %s %s" e.ts e.session e.kind (args_str e.args)

let pp_event ppf e = Format.pp_print_string ppf (event_str e)

let diff a b =
  let max_report = 16 in
  let rec go i a b acc nmis =
    match (a, b) with
    | [], [] -> (List.rev acc, nmis)
    | x :: _, [] ->
        ( List.rev
            (Printf.sprintf "event %d: only in live: %s" i (event_str x) :: acc),
          nmis + 1 )
    | [], y :: _ ->
        ( List.rev
            (Printf.sprintf "event %d: only in replay: %s" i (event_str y)
            :: acc),
          nmis + 1 )
    | x :: a', y :: b' ->
        if x = y then go (i + 1) a' b' acc nmis
        else
          let acc =
            if nmis < max_report then
              Printf.sprintf "event %d: live %s | replay %s" i (event_str x)
                (event_str y)
              :: acc
            else acc
          in
          go (i + 1) a' b' acc (nmis + 1)
  in
  let lines, nmis = go 0 a b [] 0 in
  let la = List.length a and lb = List.length b in
  let tail =
    if nmis = 0 && la = lb then []
    else
      [
        Printf.sprintf "streams diverge: %d mismatches (%d live vs %d replay events)"
          nmis la lb;
      ]
  in
  if nmis = 0 && la = lb then [] else lines @ tail

let stat events =
  let counts = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt counts e.kind with
      | Some n -> Hashtbl.replace counts e.kind (n + 1)
      | None ->
          Hashtbl.add counts e.kind 1;
          order := e.kind :: !order)
    events;
  List.rev_map (fun k -> (k, Hashtbl.find counts k)) !order

(* ------------------------------------------------------------------ *)
(* Failure artifacts                                                   *)
(* ------------------------------------------------------------------ *)

let dump_dir () =
  match Sys.getenv_opt "VMSH_TRACE_DIR" with
  | Some d when d <> "" -> Some d
  | _ -> None

let dump_on_failure r ~name ?(extra_meta = []) () =
  match dump_dir () with
  | None -> None
  | Some dir -> (
      let path = Filename.concat dir (name ^ ".vmshtrace") in
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        save r ~extra_meta path;
        Some path
      with Sys_error _ -> None)
