(** Hypervisor-boundary flight recorder.

    A {!Recorder.t} is an always-on, bounded-memory ring of KVM-boundary
    events — ioctls, MMIO/PIO exits, eventfd kicks and notify re-kicks,
    injected syscalls, virtqueue pump stages, journal rollback replays —
    each tagged with the virtual timestamp, the session id, and (through
    the header metadata) the fault-plan seed. Recording is pure
    observation: it never advances virtual time and never draws from any
    RNG, so two identically-seeded runs produce byte-identical
    [.vmshtrace] files.

    The on-disk format is a compact string-table-interned binary
    encoding ({!encode}/{!decode}); the header carries the scenario
    recipe (kind, seed, vms, fault class, crash point) that the
    replayer uses to re-drive the run without the original guest. *)

type value = I of int | S of string

type event = {
  kind : string;  (** dot-separated event class, e.g. ["kvm.exit.mmio"] *)
  ts : float;  (** virtual nanoseconds *)
  session : int;  (** fleet session index; 0 for single-VM runs *)
  args : (string * value) list;
}

type file = {
  f_meta : (string * string) list;  (** scenario recipe + tags *)
  f_dropped : int;  (** events overwritten by the bounded ring *)
  f_events : event list;
}

(** Bounded ring of events. Created once per {!Hostos.Host.t} and left
    enabled; capacity bounds memory, oldest events are overwritten. *)
module Recorder : sig
  type t

  val create : ?capacity:int -> now:(unit -> float) -> unit -> t
  (** Default capacity 65536 events. [now] reads the virtual clock. *)

  val enabled : t -> bool

  val set_enabled : t -> bool -> unit
  (** Disabling turns {!record} into a no-op (used by the bench
      recording-overhead ablation). *)

  val set_session : t -> int -> unit
  (** Tag subsequent events with a fleet session index. *)

  val session : t -> int

  val set_meta : t -> string -> string -> unit
  (** Insert-or-overwrite a header key; insertion order is preserved. *)

  val meta : t -> (string * string) list

  val record : t -> kind:string -> ?args:(string * value) list -> unit -> unit
  val events : t -> event list
  val total : t -> int  (** events ever recorded, including dropped *)

  val dropped : t -> int
  val clear : t -> unit  (** drops events and resets counts; keeps meta *)
end

(** {2 Mutation-safe accessors & causality metadata}

    Used by the trace-mutation fuzzer (lib/fuzz) to edit recorded
    events without breaking the codec's typing, and to decide which
    adjacent events may legally be reordered. *)

val int_arg : event -> string -> int option
val str_arg : event -> string -> string option

val with_int_arg : event -> string -> int -> event
(** Replace (or append) an integer argument, preserving arg order. *)

val with_ts : event -> float -> event
val with_session : event -> int -> event

val lifecycle : event -> bool
(** [attach.begin]/[attach.commit]/[attach.abort]/[journal.rollback]:
    the events that anchor a session's transaction window. *)

val commutes : event -> event -> bool
(** May these two adjacent events be swapped without violating
    causality? Different sessions always commute; within a session,
    lifecycle events and same-kind pairs (per-kind FIFOs) never do. *)

val codec_version : string
(** The on-disk format version (the magic string). Nightly fuzz runs
    key their corpus cache on it. *)

val encode : meta:(string * string) list -> ?dropped:int -> event list -> string
(** Serialize to the binary [.vmshtrace] format (magic "VMSHTRC1",
    string-table interned, little-endian, byte-stable). *)

val decode : string -> (file, string) result

val save :
  Recorder.t -> ?extra_meta:(string * string) list -> string -> unit
(** Write the recorder's current contents to [path], appending
    [extra_meta] after the recorder's own header entries. *)

val load : string -> (file, string) result
(** Read and decode a [.vmshtrace] file. *)

val diff : event list -> event list -> string list
(** Event-stream diff: [[]] means the streams are identical. Each
    returned line describes one divergence (first 16 reported, then a
    summary line). *)

val stat : event list -> (string * int) list
(** Per-kind event counts, in order of first appearance. *)

val pp_event : Format.formatter -> event -> unit

val dump_dir : unit -> string option
(** [$VMSH_TRACE_DIR] if set and non-empty: where failure artifacts are
    written. Unset means dump-on-failure is off (the default for unit
    tests). *)

val dump_on_failure :
  Recorder.t ->
  name:string ->
  ?extra_meta:(string * string) list ->
  unit ->
  string option
(** If {!dump_dir} is set, write [<dir>/<name>.vmshtrace] and return
    the path. Never raises: I/O errors are swallowed (the artifact is
    best-effort; the failure being reported must survive). *)
