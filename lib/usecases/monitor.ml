module Image = Blockdev.Image
module Vmm = Hypervisor.Vmm

type process = { m_pid : int; m_uid : int; m_name : string; m_cgroup : string }

type mount_usage = {
  m_source : string;
  m_mountpoint : string;
  total_kb : int;
  used_kb : int;
  avail_kb : int;
}

type report = {
  processes : process list;
  mounts : mount_usage list;
  dmesg_tail : string list;
}

let words s = String.split_on_char ' ' s |> List.filter (( <> ) "")

let parse_ps out =
  String.split_on_char '\n' out
  |> List.filter_map (fun line ->
         match words line with
         | pid :: uid :: name :: rest -> (
             match (int_of_string_opt pid, int_of_string_opt uid) with
             | Some m_pid, Some m_uid ->
                 Some
                   { m_pid; m_uid; m_name = name;
                     m_cgroup = String.concat " " rest }
             | _ -> None)
         | _ -> None)

let parse_df out =
  String.split_on_char '\n' out
  |> List.filter_map (fun line ->
         match words line with
         | [ source; total; used; avail; mountpoint ] -> (
             match
               (int_of_string_opt total, int_of_string_opt used,
                int_of_string_opt avail)
             with
             | Some total_kb, Some used_kb, Some avail_kb ->
                 Some
                   { m_source = source; m_mountpoint = mountpoint; total_kb;
                     used_kb; avail_kb }
             | _ -> None)
         | _ -> None)

let monitor_image () =
  match
    Image.pack
      [ Image.file ~content:"#!vmsh-monitor v1\n" "/usr/bin/vmsh-monitor" 18 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith ("monitor image: " ^ Hostos.Errno.show e)

let collect h ~vmm =
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
      ~fs_image:(monitor_image ())
      ~pump:(fun () -> Vmm.run_until_idle vmm)
      ()
  with
  | Error e -> Error (Vmsh.Vmsh_error.to_string e)
  | Ok session ->
      let ps = Vmsh.Attach.console_roundtrip session "ps" in
      let df = Vmsh.Attach.console_roundtrip session "df" in
      let dmesg = Vmsh.Attach.console_roundtrip session "dmesg" in
      (match Vmsh.Attach.detach session with
      | Ok () -> ()
      | Error e -> failwith (Vmsh.Vmsh_error.to_string e));
      let dmesg_lines =
        String.split_on_char '\n' dmesg
        |> List.filter (fun l -> String.trim l <> "" && l <> "vmsh> ")
      in
      let tail =
        let n = List.length dmesg_lines in
        List.filteri (fun i _ -> i >= n - 5) dmesg_lines
      in
      Ok { processes = parse_ps ps; mounts = parse_df df; dmesg_tail = tail }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d guest processes:" (List.length r.processes);
  List.iter
    (fun p ->
      Format.fprintf ppf "@.  pid %d uid %d %s (%s)" p.m_pid p.m_uid p.m_name
        p.m_cgroup)
    r.processes;
  Format.fprintf ppf "@.%d mounts:" (List.length r.mounts);
  List.iter
    (fun m ->
      Format.fprintf ppf "@.  %s on %s: %d/%d KiB used" m.m_source
        m.m_mountpoint m.used_kb m.total_kb)
    r.mounts;
  Format.fprintf ppf "@.kernel log tail:";
  List.iter (fun l -> Format.fprintf ppf "@.  %s" l) r.dmesg_tail;
  Format.fprintf ppf "@]"
