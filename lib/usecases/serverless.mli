(** Use case #1 (paper §6.5): the serverless debug shell.

    A vHive-style Function-as-a-Service stack running lambda instances
    in slim Firecracker VMs. When an invocation logs an error, the
    operator locates the Firecracker process hosting the faulty lambda,
    attaches VMSH to it (the stack runs its Firecrackers with seccomp
    relaxed for debuggability, as the paper does) and opens an
    interactive shell — while a pin prevents the autoscaler from
    reclaiming the instance mid-session. *)

type lambda = {
  fn_name : string;
  vmm : Hypervisor.Vmm.t;
  guest : Linux_guest.Guest.t;
  mutable invocations : int;
  mutable logs : string list;  (** most recent last *)
  mutable pinned : bool;  (** debug session active: exempt from scale-down *)
  mutable reclaimed : bool;
}

type stack

val create_stack :
  Hostos.Host.t -> functions:(string * (string -> (string, string) result)) list ->
  stack
(** One Firecracker microVM per function; the handler maps a payload to
    a result or an error message. *)

val lambdas : stack -> lambda list

val invoke : stack -> fn:string -> payload:string -> (string, string) result
(** Run an invocation; errors are recorded in the instance's log. *)

val find_faulty : stack -> lambda option
(** The first instance whose log contains an ERROR line. *)

val debug_shell :
  Hostos.Host.t -> stack -> lambda -> (Vmsh.Attach.session, string) result
(** Attach an interactive shell to the lambda's VM and pin it. *)

val end_debug : stack -> lambda -> Vmsh.Attach.session -> unit

val scale_down : stack -> int
(** Reclaim idle unpinned instances; returns how many were reclaimed.
    Pinned instances survive. *)

(** {2 Clone-on-request}

    Instead of one warm microVM per function, bake a single
    attach-ready {!Fleet.Baseline.image} and fork a fresh microVM per
    incoming request through the copy-on-write overlay: per-request
    isolation at linked-clone cost, resident only for the pages each
    request diverges. *)

type clone_pool = {
  cp_image : Fleet.Baseline.image;
  cp_profile : Hypervisor.Profile.t;
  cp_seed : int;
  mutable cp_served : int;
  mutable cp_errors : int;
  mutable cp_fork_ns : float list;  (** per-request, most recent first *)
  mutable cp_resident_bytes : int;  (** summed over served clones *)
}

val clone_pool : ?seed:int -> unit -> clone_pool
(** Bake the pool's baseline (the boot-once cost every request
    amortizes). *)

val serve_request :
  clone_pool ->
  handler:(string -> (string, string) result) ->
  id:int -> payload:string -> (string, string) result
(** Fork a clone, run [handler] inside it (request/response through the
    clone's private overlay pages), verify the clone's identity
    diverged from the base, retire the clone. *)

type flood_report = {
  fl_requests : int;
  fl_served : int;
  fl_errors : int;
  fl_fork_p50_ns : float;
  fl_fork_p99_ns : float;
  fl_resident_bytes : int;
}

val serve_flood :
  clone_pool ->
  handler:(string -> (string, string) result) ->
  requests:int -> flood_report
(** Serve [requests] sequential clone-on-request invocations. *)
