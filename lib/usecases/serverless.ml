module Sfs = Blockdev.Simplefs
module Image = Blockdev.Image
module Guest = Linux_guest.Guest
module Vmm = Hypervisor.Vmm

type lambda = {
  fn_name : string;
  vmm : Vmm.t;
  guest : Guest.t;
  mutable invocations : int;
  mutable logs : string list;
  mutable pinned : bool;
  mutable reclaimed : bool;
}

type stack = {
  h : Hostos.Host.t;
  mutable pool : lambda list;
  handlers : (string * (string -> (string, string) result)) list;
}

let lambda_disk h fn =
  let manifest =
    [
      Image.file ~content:"#!lambda-runtime v1\n" "/usr/bin/lambda-runtime" 20;
      Image.file ~content:(fn ^ "\n") "/etc/lambda/function" (String.length fn + 1);
      Image.file ~content:(fn ^ "-host\n") "/etc/hostname" (String.length fn + 6);
    ]
  in
  match Image.pack ~clock:h.Hostos.Host.clock ~extra_blocks:256 manifest with
  | Ok (_backend, fs) ->
      ignore (Sfs.mkdir_p fs "/dev");
      ignore (Sfs.mkdir_p fs "/var/log");
      Sfs.sync fs;
      _backend
  | Error e -> failwith ("lambda disk: " ^ Hostos.Errno.show e)

let create_stack h ~functions =
  let pool =
    List.map
      (fun (fn_name, _) ->
        (* vHive runs lambdas in slim Firecracker microVMs; seccomp is
           relaxed so VMSH can attach (paper §6.2/§6.5) *)
        let vmm =
          Vmm.create h ~profile:Hypervisor.Profile.firecracker
            ~disk:(lambda_disk h fn_name) ~disable_seccomp:true ()
        in
        let guest = Vmm.boot vmm ~version:Linux_guest.Kernel_version.V5_10 in
        {
          fn_name;
          vmm;
          guest;
          invocations = 0;
          logs = [];
          pinned = false;
          reclaimed = false;
        })
      functions
  in
  { h; pool; handlers = functions }

let lambdas t = t.pool

let log_line lam line =
  lam.logs <- lam.logs @ [ line ];
  (* logs are also written inside the guest (what the operator greps) *)
  Vmm.run_task lam.vmm ~name:"log-append" (fun () ->
      let ns = Guest.root_ns lam.guest in
      let existing =
        match Guest.file_read lam.guest ~ns "/var/log/lambda.log" with
        | Ok b -> Bytes.to_string b
        | Error _ -> ""
      in
      ignore
        (Guest.file_write lam.guest ~ns "/var/log/lambda.log"
           (Bytes.of_string (existing ^ line ^ "\n"))))

let invoke t ~fn ~payload =
  match List.find_opt (fun l -> l.fn_name = fn && not l.reclaimed) t.pool with
  | None -> Error ("no instance for function " ^ fn)
  | Some lam -> (
      lam.invocations <- lam.invocations + 1;
      match List.assoc_opt fn t.handlers with
      | None -> Error "no handler"
      | Some handler -> (
          match handler payload with
          | Ok result ->
              log_line lam (Printf.sprintf "INFO invocation ok: %s" result);
              Ok result
          | Error msg ->
              log_line lam (Printf.sprintf "ERROR invocation failed: %s" msg);
              Error msg))

let find_faulty t =
  let has_error lam =
    List.exists
      (fun line -> String.length line >= 5 && String.sub line 0 5 = "ERROR")
      lam.logs
  in
  List.find_opt (fun l -> has_error l && not l.reclaimed) t.pool

let debug_image () =
  let manifest =
    [
      Image.file "/bin/busybox" (600 * 1024);
      Image.file ~content:"#!strace\n" "/usr/bin/strace" 9;
      Image.file ~content:"#!gdb\n" "/usr/bin/gdb" 6;
    ]
  in
  match Image.pack manifest with
  | Ok (backend, _) -> backend
  | Error e -> failwith ("debug image: " ^ Hostos.Errno.show e)

let debug_shell h t lam =
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid lam.vmm)
      ~fs_image:(debug_image ())
      ~pump:(fun () -> Vmm.run_until_idle lam.vmm)
      ()
  with
  | Error e -> Error (Vmsh.Vmsh_error.to_string e)
  | Ok session ->
      (* the integration prevents scale-down while the user debugs *)
      lam.pinned <- true;
      ignore t;
      Ok session

let end_debug _t lam session =
  (match Vmsh.Attach.detach session with
  | Ok () -> ()
  | Error e -> failwith (Vmsh.Vmsh_error.to_string e));
  lam.pinned <- false

let scale_down t =
  let victims =
    List.filter (fun l -> (not l.pinned) && not l.reclaimed) t.pool
  in
  List.iter (fun l -> l.reclaimed <- true) victims;
  List.length victims
