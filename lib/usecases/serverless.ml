module Sfs = Blockdev.Simplefs
module Image = Blockdev.Image
module Guest = Linux_guest.Guest
module Vmm = Hypervisor.Vmm

type lambda = {
  fn_name : string;
  vmm : Vmm.t;
  guest : Guest.t;
  mutable invocations : int;
  mutable logs : string list;
  mutable pinned : bool;
  mutable reclaimed : bool;
}

type stack = {
  h : Hostos.Host.t;
  mutable pool : lambda list;
  handlers : (string * (string -> (string, string) result)) list;
}

let lambda_disk h fn =
  let manifest =
    [
      Image.file ~content:"#!lambda-runtime v1\n" "/usr/bin/lambda-runtime" 20;
      Image.file ~content:(fn ^ "\n") "/etc/lambda/function" (String.length fn + 1);
      Image.file ~content:(fn ^ "-host\n") "/etc/hostname" (String.length fn + 6);
    ]
  in
  match Image.pack ~clock:h.Hostos.Host.clock ~extra_blocks:256 manifest with
  | Ok (_backend, fs) ->
      ignore (Sfs.mkdir_p fs "/dev");
      ignore (Sfs.mkdir_p fs "/var/log");
      Sfs.sync fs;
      _backend
  | Error e -> failwith ("lambda disk: " ^ Hostos.Errno.show e)

let create_stack h ~functions =
  let pool =
    List.map
      (fun (fn_name, _) ->
        (* vHive runs lambdas in slim Firecracker microVMs; seccomp is
           relaxed so VMSH can attach (paper §6.2/§6.5) *)
        let vmm =
          Vmm.create h ~profile:Hypervisor.Profile.firecracker
            ~disk:(lambda_disk h fn_name) ~disable_seccomp:true ()
        in
        let guest = Vmm.boot vmm ~version:Linux_guest.Kernel_version.V5_10 in
        {
          fn_name;
          vmm;
          guest;
          invocations = 0;
          logs = [];
          pinned = false;
          reclaimed = false;
        })
      functions
  in
  { h; pool; handlers = functions }

let lambdas t = t.pool

let log_line lam line =
  lam.logs <- lam.logs @ [ line ];
  (* logs are also written inside the guest (what the operator greps) *)
  Vmm.run_task lam.vmm ~name:"log-append" (fun () ->
      let ns = Guest.root_ns lam.guest in
      let existing =
        match Guest.file_read lam.guest ~ns "/var/log/lambda.log" with
        | Ok b -> Bytes.to_string b
        | Error _ -> ""
      in
      ignore
        (Guest.file_write lam.guest ~ns "/var/log/lambda.log"
           (Bytes.of_string (existing ^ line ^ "\n"))))

let invoke t ~fn ~payload =
  match List.find_opt (fun l -> l.fn_name = fn && not l.reclaimed) t.pool with
  | None -> Error ("no instance for function " ^ fn)
  | Some lam -> (
      lam.invocations <- lam.invocations + 1;
      match List.assoc_opt fn t.handlers with
      | None -> Error "no handler"
      | Some handler -> (
          match handler payload with
          | Ok result ->
              log_line lam (Printf.sprintf "INFO invocation ok: %s" result);
              Ok result
          | Error msg ->
              log_line lam (Printf.sprintf "ERROR invocation failed: %s" msg);
              Error msg))

let find_faulty t =
  let has_error lam =
    List.exists
      (fun line -> String.length line >= 5 && String.sub line 0 5 = "ERROR")
      lam.logs
  in
  List.find_opt (fun l -> has_error l && not l.reclaimed) t.pool

let debug_image () =
  let manifest =
    [
      Image.file "/bin/busybox" (600 * 1024);
      Image.file ~content:"#!strace\n" "/usr/bin/strace" 9;
      Image.file ~content:"#!gdb\n" "/usr/bin/gdb" 6;
    ]
  in
  match Image.pack manifest with
  | Ok (backend, _) -> backend
  | Error e -> failwith ("debug image: " ^ Hostos.Errno.show e)

let debug_shell h t lam =
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid lam.vmm)
      ~fs_image:(debug_image ())
      ~pump:(fun () -> Vmm.run_until_idle lam.vmm)
      ()
  with
  | Error e -> Error (Vmsh.Vmsh_error.to_string e)
  | Ok session ->
      (* the integration prevents scale-down while the user debugs *)
      lam.pinned <- true;
      ignore t;
      Ok session

let end_debug _t lam session =
  (match Vmsh.Attach.detach session with
  | Ok () -> ()
  | Error e -> failwith (Vmsh.Vmsh_error.to_string e));
  lam.pinned <- false

let scale_down t =
  let victims =
    List.filter (fun l -> (not l.pinned) && not l.reclaimed) t.pool
  in
  List.iter (fun l -> l.reclaimed <- true) victims;
  List.length victims

(* --- clone-on-request: serve a request flood from one baked image --- *)

(* Instead of keeping one warm microVM per function (the pool above),
   a clone-on-request stack bakes a single attach-ready baseline and
   forks a fresh microVM per incoming request through the CoW overlay:
   per-request isolation at linked-clone cost, with only the diverged
   pages resident. *)

type clone_pool = {
  cp_image : Fleet.Baseline.image;
  cp_profile : Hypervisor.Profile.t;
  cp_seed : int;
  mutable cp_served : int;
  mutable cp_errors : int;
  mutable cp_fork_ns : float list;  (** per-request, most recent first *)
  mutable cp_resident_bytes : int;  (** summed over served clones *)
}

let clone_pool ?(seed = 0x5eed) () =
  {
    cp_image = Fleet.Baseline.bake ~seed ();
    cp_profile = Hypervisor.Profile.qemu;
    cp_seed = seed;
    cp_served = 0;
    cp_errors = 0;
    cp_fork_ns = [];
    cp_resident_bytes = 0;
  }

let serve_request p ~handler ~id ~payload =
  let host = Hostos.Host.create ~seed:(p.cp_seed + (id * 13)) () in
  let name = Printf.sprintf "fn-%d" id in
  match Fleet.Baseline.fork p.cp_image ~host ~profile:p.cp_profile ~name with
  | Error e ->
      p.cp_errors <- p.cp_errors + 1;
      Error (Vmsh.Vmsh_error.to_string e)
  | Ok f ->
      p.cp_fork_ns <- f.Fleet.Baseline.fk_fork_ns :: p.cp_fork_ns;
      let vmm = f.Fleet.Baseline.fk_vmm and g = f.Fleet.Baseline.fk_guest in
      let result = ref (Error "request never ran") in
      (* the "function" runs inside the clone: request and response
         live in the clone's private overlay pages, never the base *)
      Vmm.run_task vmm ~name:("serve-" ^ name) (fun () ->
          let ns = Guest.root_ns g in
          ignore (Guest.file_write g ~ns "/etc/request" (Bytes.of_string payload));
          result :=
            match handler payload with
            | Error msg -> Error msg
            | Ok out -> (
                ignore (Guest.file_write g ~ns "/etc/response" (Bytes.of_string out));
                (* per-clone identity must have diverged from the base *)
                match Guest.file_read g ~ns "/etc/hostname" with
                | Ok h when Bytes.to_string h = name ^ "\n" -> Ok out
                | Ok h ->
                    Error
                      (Printf.sprintf "clone isolation: hostname %S, want %S"
                         (Bytes.to_string h) name)
                | Error e -> Error (Hostos.Errno.show e)));
      let result = !result in
      let st = Fleet.Baseline.resident f in
      p.cp_resident_bytes <- p.cp_resident_bytes + st.Hostos.Mem.cs_resident_bytes;
      (match result with
      | Ok _ -> p.cp_served <- p.cp_served + 1
      | Error _ -> p.cp_errors <- p.cp_errors + 1);
      result

type flood_report = {
  fl_requests : int;
  fl_served : int;
  fl_errors : int;
  fl_fork_p50_ns : float;
  fl_fork_p99_ns : float;
  fl_resident_bytes : int;
}

let percentile xs q =
  match xs with
  | [] -> Float.nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      a.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let serve_flood p ~handler ~requests =
  for id = 0 to requests - 1 do
    ignore
      (serve_request p ~handler ~id ~payload:(Printf.sprintf "req-%d" id))
  done;
  {
    fl_requests = requests;
    fl_served = p.cp_served;
    fl_errors = p.cp_errors;
    fl_fork_p50_ns = percentile p.cp_fork_ns 0.50;
    fl_fork_p99_ns = percentile p.cp_fork_ns 0.99;
    fl_resident_bytes = p.cp_resident_bytes;
  }
