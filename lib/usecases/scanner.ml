module Image = Blockdev.Image
module Vmm = Hypervisor.Vmm

type vuln = {
  v_pkg : string;
  installed : string;
  fixed_in : string;
  cve : string;
}

let default_secdb =
  [
    ("openssl", "1.1.1k", "CVE-2021-3450");
    ("busybox", "1.33.1", "CVE-2021-28831");
    ("apk-tools", "2.12.6", "CVE-2021-36159");
    ("musl", "1.2.2", "CVE-2020-28928");
    ("zlib", "1.2.12", "CVE-2018-25032");
    ("curl", "7.79.0", "CVE-2021-22945");
  ]

let compare_versions a b =
  let parse v =
    String.split_on_char '.' v
    |> List.map (fun c -> try int_of_string c with Failure _ -> 0)
  in
  let rec cmp xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys -> if x <> y then compare x y else cmp xs ys
  in
  cmp (parse a) (parse b)

let parse_apk_db content =
  (* apk format: records separated by blank lines with P: and V: lines *)
  let lines = String.split_on_char '\n' content in
  let rec go acc pkg = function
    | [] -> List.rev acc
    | line :: rest ->
        if String.length line > 2 && String.sub line 0 2 = "P:" then
          go acc (Some (String.sub line 2 (String.length line - 2))) rest
        else if String.length line > 2 && String.sub line 0 2 = "V:" then (
          match pkg with
          | Some p ->
              go ((p, String.sub line 2 (String.length line - 2)) :: acc) None rest
          | None -> go acc None rest)
        else go acc pkg rest
  in
  go [] None lines

let apk_db_content pkgs =
  String.concat "\n\n"
    (List.map (fun (p, v) -> Printf.sprintf "P:%s\nV:%s\nA:x86_64" p v) pkgs)
  ^ "\n"

let scanner_image () =
  let manifest =
    [
      Image.file ~content:"#!vmsh-secscan v1\n" "/usr/bin/secscan" 18;
      Image.file "/bin/busybox" (600 * 1024);
    ]
  in
  match Image.pack manifest with
  | Ok (backend, _) -> backend
  | Error e -> failwith ("scanner image: " ^ Hostos.Errno.show e)

let scan h ~vmm ?(secdb = default_secdb) () =
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
      ~fs_image:(scanner_image ())
      ~pump:(fun () -> Vmm.run_until_idle vmm)
      ()
  with
  | Error e -> Error (Vmsh.Vmsh_error.to_string e)
  | Ok session ->
      let out =
        Vmsh.Attach.console_roundtrip session "cat /var/lib/vmsh/lib/apk/db/installed"
      in
      (match Vmsh.Attach.detach session with
      | Ok () -> ()
      | Error e -> failwith (Vmsh.Vmsh_error.to_string e));
      if
        String.length out >= 6
        && String.sub out 0 6 = "error:"
      then Error ("cannot read package database: " ^ out)
      else
        let installed = parse_apk_db out in
        Ok
          (List.filter_map
             (fun (pkg, version) ->
               match
                 List.find_opt (fun (p, _, _) -> p = pkg) secdb
               with
               | Some (_, fixed_in, cve)
                 when compare_versions version fixed_in < 0 ->
                   Some { v_pkg = pkg; installed = version; fixed_in; cve }
               | _ -> None)
             installed)
