module Image = Blockdev.Image
module Guest = Linux_guest.Guest
module Vmm = Hypervisor.Vmm

let rescue_image () =
  let manifest =
    [
      Image.file ~content:"#!chpasswd-from-shadow-utils\n" "/sbin/chpasswd" 29;
      Image.file "/bin/busybox" (600 * 1024);
      Image.file ~content:"vmsh rescue image v1\n" "/etc/vmsh-release" 21;
    ]
  in
  match Image.pack manifest with
  | Ok (backend, _) -> backend
  | Error e -> failwith ("rescue image: " ^ Hostos.Errno.show e)

let reset_password h ~vmm ~user ~password =
  let config =
    Vmsh.Attach.Config.(
      make ()
      |> with_command (Printf.sprintf "chpasswd %s %s" user password))
  in
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
      ~fs_image:(rescue_image ()) ~config
      ~pump:(fun () -> Vmm.run_until_idle vmm)
      ()
  with
  | Error e -> Error (Vmsh.Vmsh_error.to_string e)
  | Ok session ->
      let out = Vmsh.Attach.console_recv session in
      (match Vmsh.Attach.detach session with
      | Ok () -> Ok out
      | Error e -> Error (Vmsh.Vmsh_error.to_string e))

let verify_password_set vmm guest ~user ~password =
  let expected = Vmsh.Shell.mkpasswd ~user ~password in
  match
    Vmm.in_guest vmm (fun () ->
        Guest.file_read guest ~ns:(Guest.root_ns guest) "/etc/shadow")
  with
  | Error _ -> false
  | Ok content ->
      List.mem expected
        (String.split_on_char '\n' (Bytes.to_string content))
