(* A learning Ethernet switch. Each plugged link port becomes a switch
   port; the switch learns source MACs as frames arrive and forwards
   unicast to the learned port, flooding broadcasts and unknown
   destinations to every other port. *)

type t = {
  fabric : Fabric.t;
  name : string;
  mutable ports : Link.port list; (* in plug order *)
  table : (Frame.mac, Link.port) Hashtbl.t;
}

let create fabric ~name = { fabric; name; ports = []; table = Hashtbl.create 16 }

let counter t suffix = Fabric.counter t.fabric (t.name ^ "." ^ suffix)

let forward t ~ingress raw =
  match Frame.decode raw with
  | None -> Observe.Metrics.incr (counter t "malformed")
  | Some f ->
      Hashtbl.replace t.table f.Frame.src ingress;
      let flood () =
        Observe.Metrics.incr (counter t "flooded");
        List.iter
          (fun p -> if p != ingress then Link.send p raw)
          (List.rev t.ports)
      in
      if f.Frame.dst = Frame.broadcast then flood ()
      else
        match Hashtbl.find_opt t.table f.Frame.dst with
        | Some out when out != ingress ->
            Observe.Metrics.incr (counter t "forwarded");
            Link.send out raw
        | Some _ ->
            (* destination lives on the ingress segment; nothing to do *)
            Observe.Metrics.incr (counter t "filtered")
        | None -> flood ()

(* Attach one end of a link to the switch; frames arriving on that port
   are bridged to the other ports. *)
let plug t (p : Link.port) =
  t.ports <- p :: t.ports;
  Link.set_handler p (fun raw -> forward t ~ingress:p raw)

let ports t = List.rev t.ports
let known_macs t = Hashtbl.fold (fun m _ acc -> m :: acc) t.table []
