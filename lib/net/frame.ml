(* Ethernet-ish frames. A MAC is 48 bits in an OCaml int; frames carry
   src/dst/ethertype and an opaque payload, serialized little-endian-ish
   into bytes so they can cross virtqueues and links as real octets. *)

type mac = int

let broadcast = 0xffff_ffff_ffff

(* Locally-administered address space for simulated NICs. *)
let make_mac ~vendor ~serial =
  0x0200_0000_0000 lor ((vendor land 0xffff) lsl 24) lor (serial land 0xff_ffff)

let mac_to_string m =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((m lsr 40) land 0xff)
    ((m lsr 32) land 0xff)
    ((m lsr 24) land 0xff)
    ((m lsr 16) land 0xff)
    ((m lsr 8) land 0xff)
    (m land 0xff)

let pp_mac ppf m = Format.pp_print_string ppf (mac_to_string m)

(* Ethertypes we use. *)
let eth_ipv4 = 0x0800
let eth_experimental = 0x88b5

type t = { src : mac; dst : mac; ethertype : int; payload : bytes }

let header_size = 14
let max_payload = 1986 (* header + payload fit the 2000-byte NIC buffer *)
let wire_size f = header_size + Bytes.length f.payload

let set_mac b off m =
  for i = 0 to 5 do
    Bytes.set_uint8 b (off + i) ((m lsr (8 * (5 - i))) land 0xff)
  done

let get_mac b off =
  let m = ref 0 in
  for i = 0 to 5 do
    m := (!m lsl 8) lor Bytes.get_uint8 b (off + i)
  done;
  !m

let encode f =
  let b = Bytes.create (wire_size f) in
  set_mac b 0 f.dst;
  set_mac b 6 f.src;
  Bytes.set_uint16_be b 12 f.ethertype;
  Bytes.blit f.payload 0 b header_size (Bytes.length f.payload);
  b

let decode b =
  if Bytes.length b < header_size then None
  else
    Some
      {
        dst = get_mac b 0;
        src = get_mac b 6;
        ethertype = Bytes.get_uint16_be b 12;
        payload = Bytes.sub b header_size (Bytes.length b - header_size);
      }
