(* The deterministic delivery engine shared by every link of a network.

   Frames in flight are events with a virtual deliver-at timestamp.
   [pump] plays them in (deliver_at, sequence) order, advancing the
   virtual clock to each delivery instant — the same event-driven
   discipline as the rest of the simulation, so two runs with the same
   RNG seed replay byte-identically (the IRIS property the ISSUE cites).
   All randomness (loss draws) comes from one seeded [Hostos.Rng] split
   off at creation. *)

module Clock = Hostos.Clock
module Rng = Hostos.Rng

type event = { deliver_at : float; seq : int; deliver : unit -> unit }

type t = {
  clock : Clock.t;
  rng : Rng.t;
  obs : Observe.t;
  mutable pending : event list;  (** sorted by (deliver_at, seq) *)
  mutable next_seq : int;
  mutable pumping : bool;
  mutable plan : Faults.t;
  mutable burst_left : int;  (** frames still to drop in the current burst *)
}

let create ~clock ~rng ~observe () =
  {
    clock;
    rng = Rng.split rng;
    obs = observe;
    pending = [];
    next_seq = 0;
    pumping = false;
    plan = Faults.disabled;
    burst_left = 0;
  }

let of_host (h : Hostos.Host.t) =
  let t =
    create ~clock:h.Hostos.Host.clock ~rng:h.Hostos.Host.rng
      ~observe:h.Hostos.Host.observe ()
  in
  t.plan <- h.Hostos.Host.faults;
  t

let set_fault_plan t plan = t.plan <- plan

(* Bursty loss: one [Link_burst] firing condemns the next [burst] frames
   on any link of this fabric, modelling a congested or flapping wire
   rather than independent per-frame loss. *)
let burst_drop t =
  if t.burst_left > 0 then begin
    t.burst_left <- t.burst_left - 1;
    true
  end
  else if Faults.fire t.plan Faults.Link_burst then begin
    t.burst_left <- Faults.burst t.plan - 1;
    true
  end
  else false

let clock t = t.clock
let rng t = t.rng
let observe t = t.obs
let idle t = t.pending = []
let in_flight t = List.length t.pending

let counter t name =
  Observe.Metrics.counter (Observe.metrics t.obs) name

let histogram t name =
  Observe.Metrics.histogram (Observe.metrics t.obs) name

let schedule t ~at deliver =
  let ev = { deliver_at = at; seq = t.next_seq; deliver } in
  t.next_seq <- t.next_seq + 1;
  let rec insert = function
    | [] -> [ ev ]
    | e :: rest when
        e.deliver_at < ev.deliver_at
        || (e.deliver_at = ev.deliver_at && e.seq < ev.seq) ->
        e :: insert rest
    | rest -> ev :: rest
  in
  t.pending <- insert t.pending

(* Deliver everything in flight, advancing virtual time to each event.
   Deliveries may schedule further events (a switch forwarding, a server
   responding); the loop runs until the network is quiet. Re-entrant
   calls (a delivery that transitively pumps again) are no-ops so a
   device handler can call [pump] unconditionally. *)
let pump t =
  if not t.pumping then begin
    t.pumping <- true;
    let rec drain () =
      match t.pending with
      | [] -> ()
      | ev :: rest ->
          t.pending <- rest;
          let now = Clock.now_ns t.clock in
          if ev.deliver_at > now then
            Clock.advance t.clock (ev.deliver_at -. now);
          ev.deliver ();
          drain ()
    in
    Fun.protect ~finally:(fun () -> t.pumping <- false) drain
  end
