(* A duplex point-to-point wire between two ports.

   Each direction models serialization (bandwidth), propagation
   (latency) and random loss: a frame occupies the wire for
   wire_size / bandwidth starting at max(now, busy_until) and arrives
   one latency later. Loss is drawn from the fabric's seeded RNG, so a
   lossy run replays identically under the same seed. *)

module Clock = Hostos.Clock
module Rng = Hostos.Rng

type port = {
  link : link;
  ix : int; (* 0 or 1; the peer is [1 - ix] *)
  mutable handler : (bytes -> unit) option;
  mutable busy_until : float; (* egress serialization horizon, virtual ns *)
}

and link = {
  fabric : Fabric.t;
  name : string;
  latency_ns : float;
  ns_per_byte : float;
  loss : float;
  mutable ports : port array;
}

type t = link

let default_latency_ns = 50_000. (* 50us — a switched LAN hop *)
let default_bandwidth_mbps = 10_000. (* 10 Gbit/s *)

let create fabric ~name ?(latency_ns = default_latency_ns)
    ?(bandwidth_mbps = default_bandwidth_mbps) ?(loss = 0.0) () =
  let ns_per_byte = 8_000. /. bandwidth_mbps in
  let link = { fabric; name; latency_ns; ns_per_byte; loss; ports = [||] } in
  link.ports <-
    [|
      { link; ix = 0; handler = None; busy_until = 0. };
      { link; ix = 1; handler = None; busy_until = 0. };
    |];
  link

let port t i = t.ports.(i)
let a t = t.ports.(0)
let b t = t.ports.(1)
let name t = t.name
let set_handler p f = p.handler <- Some f
let clear_handler p = p.handler <- None
let fabric_of_port p = p.link.fabric

(* Send raw frame bytes out of [p]; they arrive at the peer port's
   handler after serialization + propagation, unless lost. *)
let send p frame =
  let link = p.link in
  let fab = link.fabric in
  let clock = Fabric.clock fab in
  let size = Bytes.length frame in
  Observe.Metrics.incr (Fabric.counter fab "net.frames_tx");
  Observe.Metrics.incr ~by:size (Fabric.counter fab "net.bytes_tx");
  if
    Fabric.burst_drop fab
    || (link.loss > 0. && Rng.float (Fabric.rng fab) 1.0 < link.loss)
  then begin
    Observe.Metrics.incr (Fabric.counter fab "net.frames_dropped");
    if Observe.enabled (Fabric.observe fab) then
      Observe.instant (Fabric.observe fab) ~name:"net.drop"
        ~attrs:[ ("link", Observe.S link.name); ("bytes", Observe.I size) ]
        ()
  end
  else begin
    let now = Clock.now_ns clock in
    let start = Float.max now p.busy_until in
    let tx_done = start +. (float_of_int size *. link.ns_per_byte) in
    p.busy_until <- tx_done;
    let deliver_at = tx_done +. link.latency_ns in
    let peer = link.ports.(1 - p.ix) in
    Fabric.schedule fab ~at:deliver_at (fun () ->
        Observe.Metrics.incr (Fabric.counter fab "net.frames_rx");
        Observe.Metrics.incr ~by:size (Fabric.counter fab "net.bytes_rx");
        Observe.Metrics.observe
          (Fabric.histogram fab "net.frame_latency_ns")
          (deliver_at -. now);
        match peer.handler with
        | Some f -> f frame
        | None ->
            Observe.Metrics.incr
              (Fabric.counter fab "net.frames_unhandled"))
  end
