(* Adversarial-guest engine. One engine = one hostile guest kernel of a
   given class, stepping at the attach path's yield points.

   Two ground rules keep the chaos matrix meaningful:

   - the engine only does what a real guest could do: writes to its own
     physical memory, its own page tables, its own virtqueue rings. All
     writes go through [Kvm.Vm.write_phys], so they are dirty-marked
     exactly like any guest store and the snapshot oracle excludes
     them — the oracle keeps judging *vmsh's* rollback, not the
     adversary's vandalism;

   - every decision comes from a private splitmix64 stream (the same
     idiom as the fault plans), so a (seed, class, yield-count) triple
     replays the same attack byte-identically — hostile cells stay
     double-run reproducible and [.vmshtrace] artifacts stay honest. *)

module H = Hostos
module Vm = Kvm.Vm
module Vmm = Hypervisor.Vmm
module Guest = Linux_guest.Guest
module Queue = Virtio.Queue

type cls = Toctou_scan | Balloon | Desc_chaos | Mem_churn

let all = [ Toctou_scan; Balloon; Desc_chaos; Mem_churn ]

let name = function
  | Toctou_scan -> "toctou-scan"
  | Balloon -> "balloon"
  | Desc_chaos -> "desc-chaos"
  | Mem_churn -> "mem-churn"

let of_name s = List.find_opt (fun c -> name c = s) all

type t = {
  cls : cls;
  vmm : Vmm.t;
  vm : Vm.t;
  host : H.Host.t;
  budget : int;
  mutable state : int64;
  mutable steps_done : int;
  mutable saved : (int * bytes) list;  (** Toctou: phys -> original bytes *)
  mutable unmapped : (int * int) list;  (** Balloon: pte slot -> original *)
  mutable arena : int;  (** Mem_churn scratch base; 0 = not yet allocated *)
}

(* A bounded adversary: a real hostile guest gets unbounded CPU, but an
   unbounded simulated one would make cell cost a function of how many
   yield points the victim path happens to cross. 96 actions is several
   times any attach's yield count. *)
let default_budget = 96

let create ~seed ~cls vmm =
  {
    cls;
    vmm;
    vm = Vmm.kvm_vm vmm;
    host = Vmm.host vmm;
    budget = default_budget;
    state = Int64.of_int ((seed * 2) + 1);
    steps_done = 0;
    saved = [];
    unmapped = [];
    arena = 0;
  }

let cls t = t.cls
let steps t = t.steps_done

(* Private splitmix64 stream (same construction as Faults). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw t n =
  t.state <- Int64.add t.state golden_gamma;
  Int64.to_int (Int64.shift_right_logical (mix64 t.state) 2) mod n

let read_u16 t pa =
  let b = Vm.read_phys t.vm pa 2 in
  Char.code (Bytes.get b 0) lor (Char.code (Bytes.get b 1) lsl 8)

let write_u16 t pa v =
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr (v land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xff));
  Vm.write_phys t.vm pa b

let write_u32 t pa v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Vm.write_phys t.vm pa b

(* --- toctou-scan: corrupt the ksymtab the scanner just read --- *)

(* Mutate only the first stretch of each region: certainly live data
   (the table and strings start at the region base), so every corruption
   is one the scanner or the use-time revalidation can actually see. *)
let toctou_window = 0x800
let toctou_span = 16

let step_toctou t g =
  match (draw t 3, t.saved) with
  | 0, (pa, orig) :: rest ->
      (* restore the oldest corruption: some schedules present a healed
         table to the rescan, covering the corrupt-then-restore race *)
      Vm.write_phys t.vm pa orig;
      t.saved <- rest;
      "restore"
  | _ ->
      let regions = Guest.scanner_target_regions g in
      let pbase, _, len = List.nth regions (draw t (List.length regions)) in
      let off = draw t (min len toctou_window - toctou_span) in
      let pa = pbase + off in
      let orig = Vm.read_phys t.vm pa toctou_span in
      let garbage =
        Bytes.init toctou_span (fun _ -> Char.chr (draw t 256))
      in
      Vm.write_phys t.vm pa garbage;
      t.saved <- t.saved @ [ (pa, orig) ];
      "corrupt"

(* --- balloon: steal scanned pages through the guest page table --- *)

let page_size = 4096

(* Phys address of the 4 KiB PTE mapping [va], or None when a level is
   absent or the mapping is huge (we never split huge mappings — the
   kernel image is 4 KiB-mapped, so scanned pages always resolve). *)
let pte_slot t ~cr3 va =
  let idx l = (va lsr (12 + (9 * l))) land 0x1ff in
  let entry table l = Vm.read_phys_u64 t.vm (table + (8 * idx l)) in
  let next e = e land lnot 0xfff in
  let e3 = entry cr3 3 in
  if e3 land 1 = 0 then None
  else
    let e2 = entry (next e3) 2 in
    if e2 land 1 = 0 then None
    else
      let e1 = entry (next e2) 1 in
      if e1 land 1 = 0 || e1 land X86.Page_table.Flags.huge <> 0 then None
      else Some (next e1 + (8 * idx 0))

let step_balloon t g =
  match (draw t 2, t.unmapped) with
  | 0, (pte, orig) :: rest ->
      (* deflate: give a stolen page back *)
      Vm.write_phys_u64 t.vm pte orig;
      t.unmapped <- rest;
      "deflate"
  | _ -> (
      let regions = Guest.scanner_target_regions g in
      let _, vbase, len = List.nth regions (draw t (List.length regions)) in
      let va = vbase + (draw t (len / page_size) * page_size) in
      let cr3 =
        match Vm.vcpus t.vm with
        | v :: _ -> (Vm.vcpu_regs v).X86.Regs.cr3
        | [] -> 0
      in
      match pte_slot t ~cr3 va with
      | Some pte ->
          let e = Vm.read_phys_u64 t.vm pte in
          if e land 1 <> 0 then begin
            Vm.write_phys_u64 t.vm pte 0;
            t.unmapped <- t.unmapped @ [ (pte, e) ]
          end;
          "inflate"
      | None -> "inflate-absent")

(* --- desc-chaos: self-modifying virtqueue descriptors --- *)

(* Rewrites descriptors of vmsh-blk's queue under the device half: an
   out-of-guest-RAM address, a length far past the device's per-buffer
   bound, or a self-loop. A poisoned in-flight chain is exactly the
   "length mutated after validation" attack; a poisoned free descriptor
   is fully rewritten by the driver's next add (also realistic — the
   mutation raced an allocation). Ring *indices* are left alone: a
   guest corrupting those only deadlocks its own driver, which would
   make every cell measure the guest DoS-ing itself rather than vmsh's
   hardening. The forged-index paths are covered by unit tests where
   the test owns both ring halves. *)
let oob_addr = 0x7f_ffff_f000
let oversize_len = 1 lsl 21

let step_desc t g =
  match Guest.vmsh_blk g with
  | None -> "wait-probe"
  | Some blk ->
      let q = Virtio.Blk.Driver.queue blk in
      let qsz = Queue.Driver.qsz q in
      let desc, _avail, _used = Queue.Driver.rings q in
      let d = draw t qsz in
      let base = desc + (d * 16) in
      (match draw t 3 with
      | 0 ->
          Vm.write_phys_u64 t.vm base oob_addr;
          "desc-oob-addr"
      | 1 ->
          write_u32 t (base + 8) oversize_len;
          "desc-oversize-len"
      | _ ->
          (* self-loop: flags |= F_NEXT, next = self *)
          write_u16 t (base + 12) (read_u16 t (base + 12) lor 0x1);
          write_u16 t (base + 14) d;
          "desc-self-loop")

(* --- mem-churn: dirty-page bursts under memory pressure --- *)

let churn_pages = 16

let step_mem t g =
  if t.arena = 0 then begin
    t.arena <- Guest.alloc_pages g ~count:churn_pages;
    "arena"
  end
  else begin
    let page = t.arena + (draw t churn_pages * page_size) in
    let fill = Char.chr (draw t 256) in
    let b = Bytes.make page_size fill in
    Vm.write_phys t.vm page b;
    if draw t 4 = 0 then begin
      (* silent write: same bytes again — the overlay/journal paths
         must tell it apart from a diverging write *)
      Vm.write_phys t.vm page b;
      "churn-silent"
    end
    else "churn"
  end

let note t act =
  Observe.Metrics.incr
    (Observe.Metrics.counter
       (Observe.metrics t.host.H.Host.observe)
       "hostile.steps");
  Trace.Recorder.record t.host.H.Host.recorder ~kind:"hostile.step"
    ~args:
      [
        ("cls", Trace.S (name t.cls));
        ("n", Trace.I t.steps_done);
        ("act", Trace.S act);
      ]
    ()

let step t =
  if t.steps_done < t.budget then
    match Vmm.guest t.vmm with
    | None -> ()
    | Some g ->
        let act =
          match t.cls with
          | Toctou_scan -> step_toctou t g
          | Balloon -> step_balloon t g
          | Desc_chaos -> step_desc t g
          | Mem_churn -> step_mem t g
        in
        t.steps_done <- t.steps_done + 1;
        note t act
