(** Seeded adversarial-guest engine: drives the guest from inside while
    vmsh attaches.

    Each engine impersonates a hostile guest kernel of one {!cls},
    stepping at the attach path's cooperative yield points (installed
    through [Faults.set_on_yield]) and at the harness's device pump —
    exactly the seams where a real guest races a real attach. All
    mischief is performed through the guest's own state (its physical
    memory, its page tables, its virtqueue rings), every write is
    dirty-marked like any guest write (so the snapshot oracle excludes
    it), and every decision comes from a private splitmix64 stream —
    the same seed replays the same attack byte-identically.

    The engine never touches vmsh-side state: the hardened victim paths
    (use-time revalidation, descriptor quarantine, journal rollback)
    must absorb the attack on their own. *)

type cls =
  | Toctou_scan
      (** corrupt the ksymtab strings/table the scanner just read,
          sometimes restoring them — the classic scan/use race *)
  | Balloon
      (** unmap (inflate) and remap (deflate) scanned pages through the
          guest page table mid-attach *)
  | Desc_chaos
      (** rewrite vmsh virtqueue descriptors under the device: OOB
          addresses, oversize lengths, self-looping chains — including
          descriptors of requests already in flight *)
  | Mem_churn
      (** seeded dirty-page bursts over a private arena, forcing the
          CoW overlay and journal paths through memory pressure *)

val all : cls list

val name : cls -> string
(** Stable kebab-case name (["toctou-scan"], ["balloon"],
    ["desc-chaos"], ["mem-churn"]) used in CLI flags, sweep-cell labels
    and trace metadata. *)

val of_name : string -> cls option

type t

val create : seed:int -> cls:cls -> Hypervisor.Vmm.t -> t
(** An engine over the given VM's guest. [seed] keys the private RNG
    stream; nothing happens until {!step} is called. *)

val step : t -> unit
(** Perform one adversarial action (or nothing, once the step budget
    is exhausted — a bounded adversary keeps every cell terminating).
    Records a [hostile.step] flight-recorder event and bumps the
    [hostile.steps] counter per action taken. *)

val steps : t -> int
(** Actions performed so far. *)

val cls : t -> cls
