(** Deterministic, seeded fault plans for the simulated substrate.

    A plan decides — from its own private RNG stream, never from the
    host's — whether a given operation should suffer a simulated
    transient fault. Each decision point in the substrate names a
    {!cls}; the plan draws once per armed query, so identical seeds and
    identical call sequences replay byte-identically (the IRIS
    property). A disabled plan never draws and never allocates metric
    counters, which keeps the no-faults run bit-identical to a build
    without this library. *)

(** The fault classes, each standing in for a real-world failure of the
    corresponding host interface (see DESIGN.md for the mapping). *)
type cls =
  | Inject_eintr  (** injected syscall interrupted before executing *)
  | Inject_eagain  (** injected syscall bounced with EAGAIN *)
  | Vm_rw_efault  (** transient process_vm_readv/writev EFAULT *)
  | Attach_race  (** PTRACE_ATTACH loses a race with another stop *)
  | Notify_drop  (** ioeventfd doorbell write lost *)
  | Desc_torn  (** torn read of a virtqueue available-ring slot *)
  | Link_burst  (** bursty loss on a network link *)

val all : cls list
val name : cls -> string
(** Stable kebab-case name, used in metric keys
    ([faults.injected.<name>]) and CLI output. *)

val of_name : string -> cls option

type t

val disabled : t
(** The inert default: {!fire} is always [false], no RNG draws, no
    metric registration. *)

val create :
  seed:int ->
  ?rate:float ->
  ?cap:int ->
  ?classes:cls list ->
  ?burst:int ->
  unit ->
  t
(** [create ~seed ()] arms every class at the given [rate] (default
    0.15) with at most [cap] injections per class (default unlimited).
    [classes] restricts the plan to a subset; [burst] is the number of
    consecutive frames lost per [Link_burst] firing (default 3). *)

val set_class : t -> cls -> rate:float -> cap:int -> unit
(** Override one class's rate/cap, e.g. to guarantee coverage of a
    class in one fuzz schedule. *)

val armed : t -> bool
val seed : t -> int
val burst : t -> int

val set_metrics : t -> Observe.Metrics.t option -> unit
(** Mirror every injection into a [faults.injected.<class>] counter of
    the given registry (the host arms this when the plan is
    installed). *)

val fire : t -> cls -> bool
(** Ask the plan whether this operation faults. Draws from the plan's
    RNG only when the plan is armed and the class has a non-zero rate;
    counts the injection when it fires. Every armed query also counts
    one {e decision} for the class (see {!set_script}). *)

(** {2 Scripted injections}

    The trace-mutation fuzzer derives exact perturbations from a
    mutated flight recording — "drop the 4th doorbell", "tear the 2nd
    descriptor read". A script is a list of [(class, decision-index)]
    pairs: the class's n-th armed {!fire} query fires
    deterministically, without an RNG draw, so a zero-rate scripted
    plan draws no randomness at all and scripting never shifts a
    probabilistic replay. *)

val set_script : t -> (cls * int) list -> unit
(** Install the script (replacing any previous one). A no-op on
    {!disabled}. *)

val script : t -> (cls * int) list

val decisions : t -> cls -> int
(** Armed {!fire} queries seen for this class so far. *)

val injected : t -> cls -> int
val total_injected : t -> int

(** {2 Crash points}

    The [abort-at-yield(k)] pseudo-class: deterministically kill the
    guarded operation at its k-th cooperative yield point. Unlike the
    probabilistic classes it draws nothing from the RNG stream (so
    arming it never shifts a probabilistic replay), and it is not part
    of {!all} — the crash-point sweep enumerates k exhaustively instead
    of sampling. *)

exception Crash_point of int
(** Raised by {!yield_tick} at the armed yield index. The attach path
    converts it into a clean [Vmsh_error] after rolling back. *)

val set_abort_at_yield : t -> int option -> unit
(** Arm ([Some k]) or disarm ([None]) the crash point and reset the
    yield counter. Never arm {!disabled} — it is a shared constant. *)

val abort_at_yield : t -> int option

val yield_tick : t -> unit
(** Count one yield point; raises {!Crash_point} when the armed index
    is reached. A no-op on an unarmed plan. *)

val yield_ticks : t -> int
(** Yield points seen since the crash point was last (dis)armed. *)

(** {2 Yield hooks}

    Deterministic observers of the same yield-point stream the crash
    sweep enumerates. Neither draws from the RNG stream nor perturbs
    the yield count. All are no-ops on {!disabled}. *)

val set_on_yield : t -> (int -> unit) option -> unit
(** Install a hook called with the yield index at every {!yield_tick}
    of an armed plan — the seam an adversarial-guest engine uses to
    run guest-side steps exactly where a real guest would race the
    attach. *)

val set_skew_script : t -> (int * int) list -> unit
(** [(yield index, factor in permille)] pairs: at each scripted index,
    {!yield_tick} fires the {!set_on_skew} hook with the factor — the
    scripted lowering of a timewarp trace mutation. *)

val skew_script : t -> (int * int) list

val set_on_skew : t -> (int -> unit) option -> unit
(** The skew executor (the harness advances the virtual clock by the
    scripted proportion); separated from the script so lowering stays
    decoupled from clock ownership. *)

(** {2 Shared abort taxonomy}

    The three-way verdict every perturbation harness (fault matrix,
    crash-point sweep, trace-mutation fuzzer) classifies a run into. *)

module Abort : sig
  type verdict =
    | Survived  (** completed; oracle clean; nothing leaked *)
    | Clean_abort of string
        (** failed with a round-trippable error after full rollback *)
    | Bug of string
        (** escaped exception, oracle divergence, descriptor leak, or
            virtual-budget hang *)

  val label : verdict -> string
  (** ["survived"] / ["clean-abort"] / ["BUG"] — the ledger keys. *)

  val detail : verdict -> string
  val is_bug : verdict -> bool

  val to_string : verdict -> string
  val of_string : string -> verdict option
  (** Round-trips {!to_string} (used by reproducer trace metadata). *)
end
