type cls =
  | Inject_eintr
  | Inject_eagain
  | Vm_rw_efault
  | Attach_race
  | Notify_drop
  | Desc_torn
  | Link_burst

let all =
  [
    Inject_eintr;
    Inject_eagain;
    Vm_rw_efault;
    Attach_race;
    Notify_drop;
    Desc_torn;
    Link_burst;
  ]

let name = function
  | Inject_eintr -> "inject-eintr"
  | Inject_eagain -> "inject-eagain"
  | Vm_rw_efault -> "vm-rw-efault"
  | Attach_race -> "attach-race"
  | Notify_drop -> "notify-drop"
  | Desc_torn -> "desc-torn"
  | Link_burst -> "link-burst"

let of_name s = List.find_opt (fun c -> name c = s) all

let idx = function
  | Inject_eintr -> 0
  | Inject_eagain -> 1
  | Vm_rw_efault -> 2
  | Attach_race -> 3
  | Notify_drop -> 4
  | Desc_torn -> 5
  | Link_burst -> 6

let n_cls = 7

type t = {
  armed : bool;
  seed : int;
  burst : int;
  rates : float array;
  caps : int array;
  counts : int array;
  decisions : int array;
  mutable script : (cls * int) list;
  mutable state : int64;
  mutable metrics : Observe.Metrics.t option;
  mutable abort_at_yield : int option;
  mutable yield_seen : int;
  mutable on_yield : (int -> unit) option;
  mutable skew_script : (int * int) list;
  mutable on_skew : (int -> unit) option;
}

let disabled =
  {
    armed = false;
    seed = 0;
    burst = 0;
    rates = [||];
    caps = [||];
    counts = [||];
    decisions = [||];
    script = [];
    state = 0L;
    metrics = None;
    abort_at_yield = None;
    yield_seen = 0;
    on_yield = None;
    skew_script = [];
    on_skew = None;
  }

(* Private splitmix64 stream: the plan must not perturb the host's RNG,
   or arming faults would shift every downstream draw and break the
   no-faults neutrality invariant. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  Int64.to_int (Int64.shift_right_logical (mix64 t.state) 2)

let draw_unit t = Float.of_int (next t) /. Float.ldexp 1.0 62

let create ~seed ?(rate = 0.15) ?(cap = max_int) ?(classes = all) ?(burst = 3) () =
  let rates = Array.make n_cls 0.0 in
  let caps = Array.make n_cls 0 in
  List.iter
    (fun c ->
      rates.(idx c) <- rate;
      caps.(idx c) <- cap)
    classes;
  {
    armed = true;
    seed;
    burst;
    rates;
    caps;
    counts = Array.make n_cls 0;
    decisions = Array.make n_cls 0;
    script = [];
    state = Int64.of_int seed;
    metrics = None;
    abort_at_yield = None;
    yield_seen = 0;
    on_yield = None;
    skew_script = [];
    on_skew = None;
  }

let set_class t c ~rate ~cap =
  if t.armed then begin
    t.rates.(idx c) <- rate;
    t.caps.(idx c) <- cap
  end

let armed t = t.armed
let seed t = t.seed
let burst t = t.burst
let set_metrics t m = if t.armed then t.metrics <- m

(* --- scripted injections ---

   The trace-mutation fuzzer needs *exact* perturbations — "drop the
   4th doorbell", "tear the 2nd descriptor read" — derived from a
   mutated flight recording, not sampled from a rate. A script is a
   list of [(class, decision-index)] pairs; every armed {!fire} query
   counts as one decision for its class, and a scripted decision fires
   deterministically without touching the RNG stream (so a scripted
   plan with zero rates draws no randomness at all, and mixing a
   script into a rate-driven plan never shifts the probabilistic
   replay). *)

let set_script t s = if t.armed then t.script <- s
let script t = if t.armed then t.script else []
let decisions t c = if t.armed then t.decisions.(idx c) else 0

let count_injection t c i =
  t.counts.(i) <- t.counts.(i) + 1;
  match t.metrics with
  | Some m ->
      Observe.Metrics.incr
        (Observe.Metrics.counter m ("faults.injected." ^ name c))
  | None -> ()

let fire t c =
  if not t.armed then false
  else begin
    let i = idx c in
    let d = t.decisions.(i) in
    t.decisions.(i) <- d + 1;
    if List.exists (fun (c', n) -> c' = c && n = d) t.script then begin
      count_injection t c i;
      true
    end
    else if t.rates.(i) <= 0.0 || t.counts.(i) >= t.caps.(i) then false
    else if draw_unit t < t.rates.(i) then begin
      count_injection t c i;
      true
    end
    else false
  end

let injected t c = if t.armed then t.counts.(idx c) else 0
let total_injected t = if t.armed then Array.fold_left ( + ) 0 t.counts else 0

(* --- crash points ---

   [abort-at-yield(k)] is deterministic by construction, not a
   probabilistic class: the sweep harness needs to kill an attach at
   *every* k-th yield point exactly once, so the decision is an index
   comparison rather than an RNG draw (which also keeps the splitmix64
   stream — and therefore every probabilistic class's replay —
   untouched by arming it). *)

exception Crash_point of int

let set_abort_at_yield t k =
  t.abort_at_yield <- k;
  t.yield_seen <- 0

let abort_at_yield t = t.abort_at_yield
let yield_ticks t = t.yield_seen

(* --- yield hooks ---

   Two deterministic observers ride the same yield-point stream the
   crash-point sweep enumerates. [on_yield] is how an adversarial-guest
   engine interleaves with the attach — it runs guest-side steps at
   exactly the seams where a real guest would race a real attach.
   [skew_script] is the timewarp lowering: at the scripted yield index,
   [on_skew factor_permille] fires (the harness advances the virtual
   clock), turning a mutated recording's timing perturbation into a
   real scheduling decision. Neither draws from the RNG stream, and
   neither perturbs the yield count the sweep measures. *)

let set_on_yield t f = if t.armed then t.on_yield <- f
let set_skew_script t s = if t.armed then t.skew_script <- s
let skew_script t = if t.armed then t.skew_script else []
let set_on_skew t f = if t.armed then t.on_skew <- f

let yield_tick t =
  if t.armed then begin
    let n = t.yield_seen in
    t.yield_seen <- n + 1;
    (match t.on_yield with Some f -> f n | None -> ());
    (match (t.on_skew, List.assoc_opt n t.skew_script) with
    | Some f, Some permille -> f permille
    | _ -> ());
    match t.abort_at_yield with
    | Some k when n = k -> raise (Crash_point k)
    | _ -> ()
  end

(* --- shared abort taxonomy ---

   Every harness that perturbs the pipeline (the fault matrix, the
   crash-point sweep, the trace-mutation fuzzer) classifies a run the
   same three ways, so verdicts render and round-trip through one
   vocabulary. *)

module Abort = struct
  type verdict = Survived | Clean_abort of string | Bug of string

  let label = function
    | Survived -> "survived"
    | Clean_abort _ -> "clean-abort"
    | Bug _ -> "BUG"

  let detail = function Survived -> "" | Clean_abort m | Bug m -> m
  let is_bug = function Bug _ -> true | _ -> false

  let to_string = function
    | Survived -> "survived"
    | Clean_abort m -> "clean-abort: " ^ m
    | Bug m -> "BUG: " ^ m

  let strip_prefix p s =
    let pl = String.length p in
    if String.length s >= pl && String.sub s 0 pl = p then
      Some (String.sub s pl (String.length s - pl))
    else None

  let of_string s =
    if s = "survived" then Some Survived
    else
      match strip_prefix "clean-abort: " s with
      | Some m -> Some (Clean_abort m)
      | None -> (
          match strip_prefix "BUG: " s with
          | Some m -> Some (Bug m)
          | None -> None)
end
