(* virtio-net: a NIC as a split-virtqueue MMIO device.

   Queue 0 is receive, queue 1 is transmit (the virtio order). Every
   descriptor chain carries exactly one Ethernet frame preceded by a
   virtio-net header, which we keep as [hdr_size] zero bytes — we
   negotiate no offloads, and a zeroed header is what Linux sends in
   that case too. The device half bridges chains to a [Net] fabric
   port; the driver half keeps a pool of pre-posted receive buffers
   like the console driver, but frame-granular: one buffer, one frame. *)

let device_id = 1
let hdr_size = 12

(* Device config space: the station MAC, stored as a little-endian u64
   whose low 48 bits are the address (so the driver recovers it with a
   single [read_config_u64]). *)
let config ~mac =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (mac land 0xffff_ffff_ffff));
  b

module Device = struct
  (* Deliver one frame into the next free receive chain. Returns false
     when the guest has no buffer posted (the frame is dropped, exactly
     like a real NIC with an empty ring). *)
  let feed_rx q g frame =
    match Queue.Device.pop q with
    | None -> false
    | Some (head, buffers) ->
        let data = Bytes.cat (Bytes.make hdr_size '\000') frame in
        let total = Bytes.length data in
        let delivered = ref 0 in
        List.iter
          (fun (b : Queue.Device.buffer) ->
            if b.writable && !delivered < total then begin
              let chunk = min b.len (total - !delivered) in
              g.Gmem.write ~addr:b.addr (Bytes.sub data !delivered chunk);
              delivered := !delivered + chunk
            end)
          buffers;
        Queue.Device.push_used q ~head ~written:!delivered;
        !delivered = total

  (* Pop every pending transmit chain, strip the virtio-net header and
     hand the frame to [sink]. Returns the number of frames sent. *)
  let process_tx q g ~sink =
    let n = ref 0 in
    let rec loop () =
      match Queue.Device.pop q with
      | None -> ()
      | Some (head, buffers) ->
          let buf = Buffer.create 256 in
          List.iter
            (fun (b : Queue.Device.buffer) ->
              if not b.writable then
                Buffer.add_bytes buf (g.Gmem.read ~addr:b.addr ~len:b.len))
            buffers;
          Queue.Device.push_used q ~head ~written:0;
          let raw = Buffer.to_bytes buf in
          if Bytes.length raw > hdr_size then begin
            sink (Bytes.sub raw hdr_size (Bytes.length raw - hdr_size));
            incr n
          end;
          loop ()
    in
    loop ();
    !n
end

module Driver = struct
  type t = {
    g : Gmem.t;
    access : Mmio.access;
    rxq : Queue.Driver.t;
    txq : Queue.Driver.t;
    rx_bufs : int array;
    rx_buf_size : int;
    tx_buf : int;
    tx_buf_size : int;
    rx_heads : (int, int) Hashtbl.t;  (** posted chain head -> buffer addr *)
    pending : bytes Stdlib.Queue.t;  (** whole received frames, FIFO *)
    mac : int;  (** 48-bit station address from config space *)
    mutable obs : (Observe.t * string) option;
  }

  let rx_count = 16
  let buf_size = 2048

  let mac t = t.mac

  let kick t ~queue =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int queue);
    t.access.Mmio.mwrite ~off:Mmio.reg_queue_notify b

  let post_rx t addr =
    match Queue.Driver.add t.rxq ~out:[] ~in_:[ (addr, t.rx_buf_size) ] with
    | Some head ->
        Hashtbl.replace t.rx_heads head addr;
        kick t ~queue:0
    | None -> ()

  let init ~gmem ~access ~alloc =
    match Mmio.probe access ~gmem ~expect_device:device_id ~alloc ~queues:2 with
    | Error e -> Error e
    | Ok queues ->
        let region = alloc ~size:((rx_count + 1) * buf_size) in
        let rx_bufs = Array.init rx_count (fun i -> region + (i * buf_size)) in
        let t =
          {
            g = gmem;
            access;
            rxq = queues.(0);
            txq = queues.(1);
            rx_bufs;
            rx_buf_size = buf_size;
            tx_buf = region + (rx_count * buf_size);
            tx_buf_size = buf_size;
            rx_heads = Hashtbl.create 32;
            pending = Stdlib.Queue.create ();
            mac = Mmio.read_config_u64 access 0 land 0xffff_ffff_ffff;
            obs = None;
          }
        in
        Array.iter (fun addr -> post_rx t addr) t.rx_bufs;
        Ok t

  let set_observe t obs ~name = t.obs <- Some (obs, name)

  let measure t op ~bytes f =
    match t.obs with
    | None -> f ()
    | Some (obs, name) ->
        let t0 = Observe.now obs in
        let r = f () in
        let dt = Observe.now obs -. t0 in
        Observe.Metrics.observe
          (Observe.Metrics.histogram (Observe.metrics obs)
             (Printf.sprintf "%s.%s_ns" name op))
          dt;
        if Observe.enabled obs then
          Observe.instant obs
            ~name:(Printf.sprintf "%s.%s" name op)
            ~attrs:[ ("ns", Observe.F dt); ("bytes", Observe.I bytes) ]
            ();
        r

  (* Drain completed rx chains into [pending] (one frame each, header
     stripped) and repost their buffers. *)
  let drain_rx t =
    let rec go () =
      match Queue.Driver.poll_used t.rxq with
      | None -> ()
      | Some (head, written) ->
          (match Hashtbl.find_opt t.rx_heads head with
          | Some addr ->
              Hashtbl.remove t.rx_heads head;
              let written = min written t.rx_buf_size in
              if written > hdr_size then begin
                let raw = t.g.Gmem.read ~addr ~len:written in
                Stdlib.Queue.add
                  (Bytes.sub raw hdr_size (written - hdr_size))
                  t.pending
              end;
              post_rx t addr
          | None -> ());
          go ()
    in
    go ()

  (* Transmit one frame, blocking until the device consumed the chain.
     Because device processing (and any synchronous peer response) runs
     inside the kick, a request/response exchange is complete — reply
     already sitting in the rx ring — when this returns. *)
  let send t raw =
    let len = Bytes.length raw + hdr_size in
    if len > t.tx_buf_size then failwith "virtio-net: frame too large";
    measure t "tx" ~bytes:(Bytes.length raw) (fun () ->
        t.g.Gmem.write ~addr:t.tx_buf (Bytes.make hdr_size '\000');
        t.g.Gmem.write ~addr:(t.tx_buf + hdr_size) raw;
        let rec submit () =
          match Queue.Driver.add t.txq ~out:[ (t.tx_buf, len) ] ~in_:[] with
          | Some head ->
              kick t ~queue:1;
              Effect.perform
                (Kvm.Vm.Yield_until
                   (fun () -> Queue.Driver.completed t.txq ~head))
          | None ->
              Effect.perform
                (Kvm.Vm.Yield_until
                   (fun () ->
                     Queue.Driver.in_flight t.txq < Queue.Driver.qsz t.txq));
              submit ()
        in
        submit ())

  (* Effect-free: safe to call from a scheduler wake-up predicate. *)
  let rx_ready t =
    (not (Stdlib.Queue.is_empty t.pending)) || Queue.Driver.used_pending t.rxq

  let try_recv t =
    drain_rx t;
    Stdlib.Queue.take_opt t.pending

  (* Blocking receive; parks the vCPU until a frame arrives. Returns
     the raw frame bytes — the guest network stack owns the codec. *)
  let recv t =
    let rec await () =
      match try_recv t with
      | Some raw -> raw
      | None ->
          Effect.perform (Kvm.Vm.Yield_until (fun () -> rx_ready t));
          await ()
    in
    await ()
end
