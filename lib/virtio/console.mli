(** VirtIO console device (device id 3): queue 0 receives (device to
    guest), queue 1 transmits (guest to device).

    The device half shuttles bytes between the virtqueues and a pair of
    host byte channels (one end of VMSH's pseudo-terminal); the driver
    half gives guest code blocking [read_line]/[write] primitives. *)

val device_id : int

module Device : sig
  val process_tx : Queue.Device.t -> Gmem.t -> sink:(bytes -> unit) -> int
  (** Drain guest transmissions into [sink]; returns chains completed. *)

  val feed_rx : Queue.Device.t -> Gmem.t -> bytes -> int
  (** Copy host input into posted guest receive buffers; returns the
      number of bytes delivered (0 if the guest posted no buffers). *)
end

module Driver : sig
  type t

  val init :
    gmem:Gmem.t -> access:Mmio.access -> alloc:(size:int -> int) ->
    (t, string) result
  (** Probe and post the initial receive buffers. Guest code. *)

  val set_observe : t -> Observe.t -> name:string -> unit
  (** Record transmit latency (virtual ns) into ["<name>.tx_ns"] on the
      given tracer's metrics registry. Off by default. *)

  val write : t -> bytes -> unit
  (** Transmit, blocking until the device consumed the buffer. *)

  val read_available : t -> bytes
  (** Drain whatever input has arrived (empty if none). *)

  val read_line : t -> string
  (** Block (via [Yield_until]) until a full '\n'-terminated line
      arrived, and return it without the terminator. *)
end
