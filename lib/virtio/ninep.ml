let device_id = 9
let max_msg = 256 * 1024

(* 9p negotiates an msize that bounds every message: larger transfers
   become multiple round trips — a large part of why qemu-9p cannot
   stream (paper §6.3C). *)
let msize = 8 * 1024

type request =
  | Read of { path : string; off : int; len : int }
  | Write of { path : string; off : int; data : bytes }
  | Create of string
  | Stat of string

type response = { status : int; payload : bytes }

let encode_request r =
  let buf = Buffer.create 64 in
  let add_path p =
    Buffer.add_uint16_le buf (String.length p);
    Buffer.add_string buf p
  in
  (match r with
  | Read { path; off; len } ->
      Buffer.add_uint8 buf 1;
      add_path path;
      Buffer.add_int64_le buf (Int64.of_int off);
      Buffer.add_int32_le buf (Int32.of_int len)
  | Write { path; off; data } ->
      Buffer.add_uint8 buf 2;
      add_path path;
      Buffer.add_int64_le buf (Int64.of_int off);
      Buffer.add_int32_le buf (Int32.of_int (Bytes.length data));
      Buffer.add_bytes buf data
  | Create path ->
      Buffer.add_uint8 buf 3;
      add_path path
  | Stat path ->
      Buffer.add_uint8 buf 4;
      add_path path);
  Buffer.to_bytes buf

let decode_request b =
  try
    let op = Bytes.get_uint8 b 0 in
    let plen = Bytes.get_uint16_le b 1 in
    let path = Bytes.sub_string b 3 plen in
    let base = 3 + plen in
    match op with
    | 1 ->
        Some
          (Read
             {
               path;
               off = Int64.to_int (Bytes.get_int64_le b base);
               len = Int32.to_int (Bytes.get_int32_le b (base + 8));
             })
    | 2 ->
        let len = Int32.to_int (Bytes.get_int32_le b (base + 8)) in
        Some
          (Write
             {
               path;
               off = Int64.to_int (Bytes.get_int64_le b base);
               data = Bytes.sub b (base + 12) len;
             })
    | 3 -> Some (Create path)
    | 4 -> Some (Stat path)
    | _ -> None
  with Invalid_argument _ -> None

let encode_response r =
  let buf = Buffer.create 32 in
  Buffer.add_int32_le buf (Int32.of_int r.status);
  Buffer.add_int32_le buf (Int32.of_int (Bytes.length r.payload));
  Buffer.add_bytes buf r.payload;
  Buffer.to_bytes buf

let decode_response b =
  try
    let status = Int32.to_int (Bytes.get_int32_le b 0) in
    let len = Int32.to_int (Bytes.get_int32_le b 4) in
    Some { status; payload = Bytes.sub b 8 len }
  with Invalid_argument _ -> None

module Device = struct
  type backend = { handle : request -> response }

  let process q g backend =
    let n = ref 0 in
    let rec loop () =
      match Queue.Device.pop q with
      | None -> ()
      | Some (head, buffers) ->
          let out_bufs =
            List.filter (fun b -> not b.Queue.Device.writable) buffers
          in
          let in_bufs = List.filter (fun b -> b.Queue.Device.writable) buffers in
          let reqb =
            List.map
              (fun (b : Queue.Device.buffer) -> g.Gmem.read ~addr:b.addr ~len:b.len)
              out_bufs
            |> Bytes.concat Bytes.empty
          in
          let resp =
            match decode_request reqb with
            | Some req -> backend.handle req
            | None -> { status = Hostos.Errno.to_code Hostos.Errno.EINVAL; payload = Bytes.empty }
          in
          let respb = encode_response resp in
          let written = ref 0 in
          List.iter
            (fun (b : Queue.Device.buffer) ->
              if !written < Bytes.length respb then begin
                let chunk = min b.len (Bytes.length respb - !written) in
                g.Gmem.write ~addr:b.addr (Bytes.sub respb !written chunk);
                written := !written + chunk
              end)
            in_bufs;
          Queue.Device.push_used q ~head ~written:!written;
          incr n;
          loop ()
    in
    loop ();
    !n
end

module Driver = struct
  type t = {
    g : Gmem.t;
    access : Mmio.access;
    queue : Queue.Driver.t;
    req_addr : int;
    resp_addr : int;
    mutable obs : (Observe.t * string) option;
  }

  let init ~gmem ~access ~alloc =
    match Mmio.probe access ~gmem ~expect_device:device_id ~alloc ~queues:1 with
    | Error e -> Error e
    | Ok queues ->
        let req_addr = alloc ~size:(max_msg + 64) in
        let resp_addr = alloc ~size:(max_msg + 64) in
        Ok
          {
            g = gmem;
            access;
            queue = queues.(0);
            req_addr;
            resp_addr;
            obs = None;
          }

  let set_observe t obs ~name = t.obs <- Some (obs, name)

  let op_name = function
    | Read _ -> "read"
    | Write _ -> "write"
    | Create _ -> "create"
    | Stat _ -> "stat"

  (* Per-request latency, one histogram per 9p message type. *)
  let measure t req f =
    match t.obs with
    | None -> f ()
    | Some (obs, name) ->
        let op = op_name req in
        let t0 = Observe.now obs in
        let r = f () in
        let dt = Observe.now obs -. t0 in
        Observe.Metrics.observe
          (Observe.Metrics.histogram (Observe.metrics obs)
             (Printf.sprintf "%s.%s_ns" name op))
          dt;
        if Observe.enabled obs then
          Observe.instant obs
            ~name:(Printf.sprintf "%s.%s" name op)
            ~attrs:[ ("ns", Observe.F dt) ]
            ();
        r

  let kick t =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 0l;
    t.access.Mmio.mwrite ~off:Mmio.reg_queue_notify b

  let roundtrip t req ~resp_len =
    measure t req (fun () ->
        let reqb = encode_request req in
        t.g.Gmem.write ~addr:t.req_addr reqb;
        let head =
          match
            Queue.Driver.add t.queue
              ~out:[ (t.req_addr, Bytes.length reqb) ]
              ~in_:[ (t.resp_addr, resp_len + 8) ]
          with
          | Some h -> h
          | None -> failwith "9p driver: ring full"
        in
        kick t;
        Effect.perform
          (Kvm.Vm.Yield_until (fun () -> Queue.Driver.completed t.queue ~head));
        match
          decode_response (t.g.Gmem.read ~addr:t.resp_addr ~len:(resp_len + 8))
        with
        | Some r -> r
        | None -> failwith "9p driver: bad response")

  let to_result r =
    if r.status = 0 then Ok r.payload
    else
      Error
        (Option.value
           (Hostos.Errno.of_code r.status)
           ~default:Hostos.Errno.EIO)

  let read t ~path ~off ~len =
    (* attribute revalidation (Tgetattr) precedes the data messages *)
    ignore (roundtrip t (Stat path) ~resp_len:16);
    (* msize-bounded: one round trip per chunk *)
    let rec go off remaining acc =
      if remaining = 0 then Ok (Bytes.concat Bytes.empty (List.rev acc))
      else
        let chunk = min msize remaining in
        match
          to_result (roundtrip t (Read { path; off; len = chunk }) ~resp_len:chunk)
        with
        | Error e -> Error e
        | Ok data ->
            if Bytes.length data < chunk then
              Ok (Bytes.concat Bytes.empty (List.rev (data :: acc)))
            else go (off + chunk) (remaining - chunk) (data :: acc)
    in
    go off len []

  let write t ~path ~off data =
    ignore (roundtrip t (Stat path) ~resp_len:16);
    let total = Bytes.length data in
    let rec go pos =
      if pos >= total then Ok total
      else
        let chunk = min msize (total - pos) in
        match
          to_result
            (roundtrip t
               (Write { path; off = off + pos; data = Bytes.sub data pos chunk })
               ~resp_len:8)
        with
        | Error e -> Error e
        | Ok _ -> go (pos + chunk)
    in
    go 0

  let create t ~path =
    Result.map ignore (to_result (roundtrip t (Create path) ~resp_len:8))

  let stat_size t ~path =
    Result.map
      (fun payload -> Int64.to_int (Bytes.get_int64_le payload 0))
      (to_result (roundtrip t (Stat path) ~resp_len:16))
end
