let desc_f_next = 0x1
let desc_f_write = 0x2

let desc_entry = 16
let used_entry = 8

let bytes_needed ~qsz =
  let desc_off = 0 in
  let avail_off = qsz * desc_entry in
  let used_off = avail_off + 4 + (2 * qsz) in
  (* align used ring to 4 *)
  let used_off = (used_off + 3) land lnot 3 in
  let total = used_off + 4 + (used_entry * qsz) in
  (desc_off, avail_off, used_off, total)

(* Field accessors shared by both halves. *)

let desc_addr g ~desc i = Gmem.read_u64 g (desc + (i * desc_entry))
let desc_len g ~desc i = Gmem.read_u32 g (desc + (i * desc_entry) + 8)
let desc_flags g ~desc i = Gmem.read_u16 g (desc + (i * desc_entry) + 12)
let desc_next g ~desc i = Gmem.read_u16 g (desc + (i * desc_entry) + 14)

let write_desc g ~desc i ~addr ~len ~flags ~next =
  Gmem.write_u64 g (desc + (i * desc_entry)) addr;
  Gmem.write_u32 g (desc + (i * desc_entry) + 8) len;
  Gmem.write_u16 g (desc + (i * desc_entry) + 12) flags;
  Gmem.write_u16 g (desc + (i * desc_entry) + 14) next

let avail_idx g ~avail = Gmem.read_u16 g (avail + 2)
let set_avail_idx g ~avail v = Gmem.write_u16 g (avail + 2) (v land 0xffff)
let avail_ring g ~avail ~qsz slot = Gmem.read_u16 g (avail + 4 + (2 * (slot mod qsz)))
let set_avail_ring g ~avail ~qsz slot v =
  Gmem.write_u16 g (avail + 4 + (2 * (slot mod qsz))) v

let used_idx g ~used = Gmem.read_u16 g (used + 2)
let set_used_idx g ~used v = Gmem.write_u16 g (used + 2) (v land 0xffff)

let used_elem g ~used ~qsz slot =
  let base = used + 4 + (used_entry * (slot mod qsz)) in
  (Gmem.read_u32 g base, Gmem.read_u32 g (base + 4))

let set_used_elem g ~used ~qsz slot ~id ~len =
  let base = used + 4 + (used_entry * (slot mod qsz)) in
  Gmem.write_u32 g base id;
  Gmem.write_u32 g (base + 4) len

module Driver = struct
  type t = {
    g : Gmem.t;
    qsz : int;
    desc : int;
    avail : int;
    used : int;
    mutable free : int list;  (** free descriptor indices *)
    mutable next_avail : int;  (** shadow of avail idx *)
    mutable last_used : int;  (** last seen used idx *)
    mutable live : int;
    completed_heads : (int, unit) Hashtbl.t;
    outstanding : (int, unit) Hashtbl.t;
        (** heads posted and not yet completed; used-ring entries for
            any other id are forged and dropped *)
  }

  let create g ~qsz ~desc ~avail ~used =
    set_avail_idx g ~avail 0;
    set_used_idx g ~used 0;
    {
      g;
      qsz;
      desc;
      avail;
      used;
      free = List.init qsz Fun.id;
      next_avail = 0;
      last_used = 0;
      live = 0;
      completed_heads = Hashtbl.create 16;
      outstanding = Hashtbl.create 16;
    }

  let qsz t = t.qsz
  let rings t = (t.desc, t.avail, t.used)

  let add t ~out ~in_ =
    let bufs =
      List.map (fun (a, l) -> (a, l, 0)) out
      @ List.map (fun (a, l) -> (a, l, desc_f_write)) in_
    in
    let n = List.length bufs in
    if n = 0 || List.length t.free < n then None
    else begin
      let rec take k acc free =
        if k = 0 then (List.rev acc, free)
        else
          match free with
          | [] -> assert false
          | d :: rest -> take (k - 1) (d :: acc) rest
      in
      let descs, free = take n [] t.free in
      t.free <- free;
      let rec link = function
        | [] -> ()
        | [ (d, (addr, len, wflags)) ] ->
            write_desc t.g ~desc:t.desc d ~addr ~len ~flags:wflags ~next:0
        | (d, (addr, len, wflags)) :: ((d', _) :: _ as rest) ->
            write_desc t.g ~desc:t.desc d ~addr ~len
              ~flags:(wflags lor desc_f_next) ~next:d';
            link rest
      in
      link (List.combine descs bufs);
      let head = List.hd descs in
      Hashtbl.replace t.outstanding head ();
      set_avail_ring t.g ~avail:t.avail ~qsz:t.qsz t.next_avail head;
      t.next_avail <- t.next_avail + 1;
      set_avail_idx t.g ~avail:t.avail t.next_avail;
      t.live <- t.live + 1;
      Some head
    end

  (* Walk the chain from guest memory to return its descriptors to the
     free list. The chain lives in shared memory a hostile guest can
     rewrite, so the walk is bounded and never frees an index twice or
     out of range — a corrupted [next] must not poison the free list. *)
  let free_chain t head =
    let seen = Hashtbl.create 8 in
    List.iter (fun d -> Hashtbl.replace seen d ()) t.free;
    let rec go d acc guard =
      if guard > t.qsz || d >= t.qsz || d < 0 || Hashtbl.mem seen d then acc
      else begin
        Hashtbl.replace seen d ();
        let flags = desc_flags t.g ~desc:t.desc d in
        let acc = d :: acc in
        if flags land desc_f_next <> 0 then
          go (desc_next t.g ~desc:t.desc d) acc (guard + 1)
        else acc
      end
    in
    t.free <- go head [] 0 @ t.free

  let used_pending t = used_idx t.g ~used:t.used <> t.last_used land 0xffff

  let rec poll_used t =
    let cur = used_idx t.g ~used:t.used in
    if t.last_used land 0xffff = cur then None
    else begin
      let id, len = used_elem t.g ~used:t.used ~qsz:t.qsz t.last_used in
      t.last_used <- (t.last_used + 1) land 0xffff;
      if not (Hashtbl.mem t.outstanding id) then
        (* completion for a head we never posted (a forged used element):
           freeing it would corrupt the free list, so drop it *)
        poll_used t
      else begin
        Hashtbl.remove t.outstanding id;
        free_chain t id;
        t.live <- t.live - 1;
        Hashtbl.replace t.completed_heads id ();
        Some (id, len)
      end
    end

  let completed t ~head =
    let rec drain () = match poll_used t with Some _ -> drain () | None -> () in
    drain ();
    if Hashtbl.mem t.completed_heads head then begin
      Hashtbl.remove t.completed_heads head;
      true
    end
    else false

  let in_flight t = t.live
end

module Device = struct
  type buffer = { addr : int; len : int; writable : bool }

  type t = {
    g : Gmem.t;
    qsz : int;
    desc : int;
    avail : int;
    used : int;
    mutable last_avail : int;
    mutable used_count : int;
    torn : (unit -> bool) option;
    on_requeue : (unit -> unit) option;
    validate : (buffer -> bool) option;
    on_quarantine : (int -> unit) option;
    on_ring_reset : (unit -> unit) option;
    quarantine_limit : int;
    mutable quarantined_since_reset : int;
    mutable quarantined_total : int;
    mutable ring_resets : int;
  }

  let create ?torn ?on_requeue ?validate ?on_quarantine ?on_ring_reset
      ?(quarantine_limit = 8) g ~qsz ~desc ~avail ~used =
    { g; qsz; desc; avail; used; last_avail = 0; used_count = 0; torn;
      on_requeue; validate; on_quarantine; on_ring_reset; quarantine_limit;
      quarantined_since_reset = 0; quarantined_total = 0; ring_resets = 0 }

  let read_chain t head =
    let rec go d acc guard =
      if guard > t.qsz then List.rev acc (* malformed chain: stop *)
      else
        let flags = desc_flags t.g ~desc:t.desc d in
        let buf =
          {
            addr = desc_addr t.g ~desc:t.desc d;
            len = desc_len t.g ~desc:t.desc d;
            writable = flags land desc_f_write <> 0;
          }
        in
        if flags land desc_f_next <> 0 then
          go (desc_next t.g ~desc:t.desc d) (buf :: acc) (guard + 1)
        else List.rev (buf :: acc)
    in
    go head [] 0

  (* [read_chain] with shape checking: flags a chain whose [next] links
     loop, leave the table, or run past [qsz] hops — the self-modifying
     descriptor attacks a guest can mount between our validation and
     our use of the chain. *)
  let read_chain_checked t head =
    let visited = Hashtbl.create 8 in
    let rec go d acc guard =
      if d < 0 || d >= t.qsz || Hashtbl.mem visited d || guard > t.qsz then
        (List.rev acc, true)
      else begin
        Hashtbl.replace visited d ();
        let flags = desc_flags t.g ~desc:t.desc d in
        let buf =
          {
            addr = desc_addr t.g ~desc:t.desc d;
            len = desc_len t.g ~desc:t.desc d;
            writable = flags land desc_f_write <> 0;
          }
        in
        if flags land desc_f_next <> 0 then
          go (desc_next t.g ~desc:t.desc d) (buf :: acc) (guard + 1)
        else (List.rev (buf :: acc), false)
      end
    in
    go head [] 0

  let push_used t ~head ~written =
    set_used_elem t.g ~used:t.used ~qsz:t.qsz t.used_count ~id:head ~len:written;
    t.used_count <- (t.used_count + 1) land 0xffff;
    set_used_idx t.g ~used:t.used t.used_count

  (* Graceful ring reset after too many quarantined chains: drain every
     pending available entry, completing the plausible heads with
     [written = 0] so no real request hangs, and start over with a
     clean quarantine budget. The device stays up — a hostile driver
     gets its ring wiped, not the host crashed. *)
  let ring_reset t =
    let cur = avail_idx t.g ~avail:t.avail in
    while t.last_avail land 0xffff <> cur do
      let head = avail_ring t.g ~avail:t.avail ~qsz:t.qsz t.last_avail in
      t.last_avail <- (t.last_avail + 1) land 0xffff;
      if head < t.qsz then push_used t ~head ~written:0
    done;
    t.quarantined_since_reset <- 0;
    t.ring_resets <- t.ring_resets + 1;
    match t.on_ring_reset with Some f -> f () | None -> ()

  let quarantine t head =
    t.quarantined_since_reset <- t.quarantined_since_reset + 1;
    t.quarantined_total <- t.quarantined_total + 1;
    (match t.on_quarantine with Some f -> f head | None -> ());
    (* complete the rejected chain with nothing written: if it was a
       real request the guest mutated, the driver still gets it back
       (marked failed) instead of hanging on a descriptor we ate *)
    push_used t ~head ~written:0;
    if t.quarantined_since_reset >= t.quarantine_limit then ring_reset t

  let rec pop t =
    let cur = avail_idx t.g ~avail:t.avail in
    if t.last_avail land 0xffff = cur then None
    else begin
      let real = avail_ring t.g ~avail:t.avail ~qsz:t.qsz t.last_avail in
      let head =
        match t.torn with
        | Some fire when fire () ->
            (* Torn read of the ring slot: we raced the driver's publish
               and saw garbage. 0xdead is always out of range for our
               queue sizes, so validation below catches it. *)
            0xdead
        | _ -> real
      in
      let head =
        if head < t.qsz then head
        else begin
          (* Invalid head: re-read the slot — by now the driver's store
             has settled — and fall back to skipping the entry if the
             ring itself is corrupt. *)
          (match t.on_requeue with Some f -> f () | None -> ());
          real
        end
      in
      t.last_avail <- (t.last_avail + 1) land 0xffff;
      if head >= t.qsz then pop t
      else begin
        let chain, malformed = read_chain_checked t head in
        let oob =
          match t.validate with
          | Some v -> not (List.for_all v chain)
          | None -> false
        in
        if malformed || oob then begin
          quarantine t head;
          pop t
        end
        else Some (head, chain)
      end
    end

  let quarantined t = t.quarantined_total
  let ring_resets t = t.ring_resets
end
