(** VirtIO network device (device id 1): queue 0 receives, queue 1
    transmits, one Ethernet frame per descriptor chain behind a
    [hdr_size]-byte zeroed virtio-net header (no offloads negotiated).

    The device half bridges chains to raw frame bytes for a host-side
    network (see [Net] in lib/net); the driver half gives guest code
    frame-granular blocking send/recv over pre-posted receive buffers.
    The frame codec itself lives with the guest network stack — this
    layer moves opaque octets. *)

val device_id : int

val hdr_size : int
(** Bytes of virtio-net header preceding each frame on the wire. *)

val config : mac:int -> bytes
(** Device config space advertising the 48-bit station address. *)

module Device : sig
  val feed_rx : Queue.Device.t -> Gmem.t -> bytes -> bool
  (** Deliver one frame into the next posted receive chain. [false]
      when the guest has no buffer (frame dropped) or it was too
      small. *)

  val process_tx : Queue.Device.t -> Gmem.t -> sink:(bytes -> unit) -> int
  (** Drain pending transmit chains, passing each frame (header
      stripped) to [sink]; returns frames sent. *)
end

module Driver : sig
  type t

  val init :
    gmem:Gmem.t -> access:Mmio.access -> alloc:(size:int -> int) ->
    (t, string) result
  (** Probe, read the MAC from config space and post the initial
      receive buffers. Guest code. *)

  val mac : t -> int
  (** The station address the device advertised. *)

  val set_observe : t -> Observe.t -> name:string -> unit
  (** Record transmit latency (virtual ns) into ["<name>.tx_ns"]. *)

  val send : t -> bytes -> unit
  (** Transmit one encoded frame, blocking until the device consumed
      the chain (and, in a synchronous fabric, until any immediate
      response has been delivered back into the receive ring). *)

  val rx_ready : t -> bool
  (** Effect-free: frames pending or completions ready. Safe inside a
      [Yield_until] predicate. *)

  val try_recv : t -> bytes option
  (** Drain the receive ring; pop the next whole frame if any. *)

  val recv : t -> bytes
  (** Blocking receive of one whole frame. *)
end
