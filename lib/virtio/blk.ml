let device_id = 2
let sector_size = 512
let sectors_per_block = Blockdev.Dev.block_size / sector_size
let t_in = 0
let t_out = 1
let t_flush = 4
let t_discard = 11
let status_ok = 0
let status_ioerr = 1
let status_unsupp = 2
let header_size = 16
let max_data = 256 * 1024

module Device = struct
  type backend = {
    capacity_sectors : int;
    read : sector:int -> len:int -> bytes;
    write : sector:int -> bytes -> unit;
    flush : unit -> unit;
    discard : sector:int -> len:int -> unit;
  }

  let backend_of_blockdev dev =
    let open Blockdev in
    {
      capacity_sectors = Dev.size_bytes dev / sector_size;
      read =
        (fun ~sector ~len -> Dev.read_range dev ~off:(sector * sector_size) ~len);
      write =
        (fun ~sector data -> Dev.write_range dev ~off:(sector * sector_size) data);
      flush = (fun () -> dev.Dev.flush ());
      discard =
        (fun ~sector ~len ->
          let first = sector * sector_size / Dev.block_size in
          let count = len / Dev.block_size in
          dev.Dev.trim first count);
    }

  let config ~capacity_sectors =
    let b = Bytes.make 8 '\000' in
    Bytes.set_int64_le b 0 (Int64.of_int capacity_sectors);
    b

  let parse_header g (buf : Queue.Device.buffer) =
    let hdr = g.Gmem.read ~addr:buf.Queue.Device.addr ~len:header_size in
    let typ = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xffffffff in
    let sector = Int64.to_int (Bytes.get_int64_le hdr 8) in
    (typ, sector)

  let process q g backend =
    let completed = ref 0 in
    let rec loop () =
      match Queue.Device.pop q with
      | None -> ()
      | Some (head, buffers) ->
          (match buffers with
          | hdr_buf :: rest when not hdr_buf.Queue.Device.writable -> (
              let typ, sector = parse_header g hdr_buf in
              (* last writable buffer is the status byte *)
              let rec split_status acc = function
                | [] -> (List.rev acc, None)
                | [ last ] when last.Queue.Device.writable -> (List.rev acc, Some last)
                | b :: more -> split_status (b :: acc) more
              in
              let data_bufs, status_buf = split_status [] rest in
              let put_status code =
                match status_buf with
                | Some sb ->
                    g.Gmem.write ~addr:sb.Queue.Device.addr
                      (Bytes.make 1 (Char.chr code))
                | None -> ()
              in
              if typ = t_in then begin
                let data_len =
                  List.fold_left (fun a b -> a + b.Queue.Device.len) 0 data_bufs
                in
                let valid =
                  sector >= 0
                  && sector + ((data_len + sector_size - 1) / sector_size)
                     <= backend.capacity_sectors
                in
                if not valid then put_status status_ioerr
                else begin
                  let data = backend.read ~sector ~len:data_len in
                  let rec scatter off = function
                    | [] -> ()
                    | b :: more ->
                        g.Gmem.write ~addr:b.Queue.Device.addr
                          (Bytes.sub data off b.Queue.Device.len);
                        scatter (off + b.Queue.Device.len) more
                  in
                  scatter 0 data_bufs;
                  put_status status_ok;
                  Queue.Device.push_used q ~head ~written:(data_len + 1)
                end;
                if not valid then Queue.Device.push_used q ~head ~written:1
              end
              else if typ = t_out then begin
                let data =
                  List.map
                    (fun b ->
                      g.Gmem.read ~addr:b.Queue.Device.addr ~len:b.Queue.Device.len)
                    data_bufs
                  |> Bytes.concat Bytes.empty
                in
                let valid =
                  sector >= 0
                  && sector
                     + ((Bytes.length data + sector_size - 1) / sector_size)
                     <= backend.capacity_sectors
                in
                if valid then begin
                  backend.write ~sector data;
                  put_status status_ok
                end
                else put_status status_ioerr;
                Queue.Device.push_used q ~head ~written:1
              end
              else if typ = t_flush then begin
                backend.flush ();
                put_status status_ok;
                Queue.Device.push_used q ~head ~written:1
              end
              else if typ = t_discard then begin
                (match data_bufs with
                | seg :: _ ->
                    let sb = g.Gmem.read ~addr:seg.Queue.Device.addr ~len:16 in
                    let dsec = Int64.to_int (Bytes.get_int64_le sb 0) in
                    let dcount =
                      Int32.to_int (Bytes.get_int32_le sb 8) land 0xffffffff
                    in
                    backend.discard ~sector:dsec ~len:(dcount * sector_size)
                | [] -> ());
                put_status status_ok;
                Queue.Device.push_used q ~head ~written:1
              end
              else begin
                put_status status_unsupp;
                Queue.Device.push_used q ~head ~written:1
              end)
          | _ ->
              (* malformed request: complete it with no status *)
              Queue.Device.push_used q ~head ~written:0);
          incr completed;
          loop ()
    in
    loop ();
    !completed
end

module Driver = struct
  type slot = {
    hdr_addr : int;
    data_addr : int;
    status_addr : int;
    mutable busy : bool;
  }

  type t = {
    g : Gmem.t;
    access : Mmio.access;
    queue : Queue.Driver.t;
    slots : slot array;
    capacity : int;
    mutable obs : (Observe.t * string) option;
  }

  let num_slots = 8

  let init ~gmem ~access ~alloc =
    match Mmio.probe access ~gmem ~expect_device:device_id ~alloc ~queues:1 with
    | Error e -> Error e
    | Ok queues ->
        let slot_bytes = header_size + max_data + 16 in
        let region = alloc ~size:(num_slots * slot_bytes) in
        let slots =
          Array.init num_slots (fun i ->
              let base = region + (i * slot_bytes) in
              {
                hdr_addr = base;
                data_addr = base + header_size;
                status_addr = base + header_size + max_data;
                busy = false;
              })
        in
        Ok
          {
            g = gmem;
            access;
            queue = queues.(0);
            slots;
            capacity = Mmio.read_config_u64 access 0;
            obs = None;
          }

  let capacity_sectors t = t.capacity
  let queue t = t.queue
  let set_observe t obs ~name = t.obs <- Some (obs, name)

  (* Queue-in to completion latency in virtual ns, recorded per request
     kind into "<name>.<op>_ns". *)
  let measure t op ~bytes f =
    match t.obs with
    | None -> f ()
    | Some (obs, name) ->
        let t0 = Observe.now obs in
        let r = f () in
        let dt = Observe.now obs -. t0 in
        Observe.Metrics.observe
          (Observe.Metrics.histogram (Observe.metrics obs)
             (name ^ "." ^ op ^ "_ns"))
          dt;
        if Observe.enabled obs then
          Observe.instant obs
            ~name:(name ^ "." ^ op)
            ~attrs:[ ("ns", Observe.F dt); ("bytes", Observe.I bytes) ]
            ();
        r

  let take_slot t =
    let find () = Array.find_opt (fun s -> not s.busy) t.slots in
    (match find () with
    | Some _ -> ()
    | None -> Effect.perform (Kvm.Vm.Yield_until (fun () -> find () <> None)));
    match find () with
    | Some s ->
        s.busy <- true;
        s
    | None -> failwith "virtio-blk driver: no free slot after wakeup"

  let write_header t slot ~typ ~sector =
    let hdr = Bytes.make header_size '\000' in
    Bytes.set_int32_le hdr 0 (Int32.of_int typ);
    Bytes.set_int64_le hdr 8 (Int64.of_int sector);
    t.g.Gmem.write ~addr:slot.hdr_addr hdr

  let kick t =
    t.access.Mmio.mwrite ~off:Mmio.reg_queue_notify
      (let b = Bytes.create 4 in
       Bytes.set_int32_le b 0 0l;
       b)

  let submit_and_wait t ~out ~in_ =
    let head =
      match Queue.Driver.add t.queue ~out ~in_ with
      | Some h -> h
      | None ->
          Effect.perform
            (Kvm.Vm.Yield_until (fun () -> Queue.Driver.in_flight t.queue < Queue.Driver.qsz t.queue));
          (match Queue.Driver.add t.queue ~out ~in_ with
          | Some h -> h
          | None -> failwith "virtio-blk driver: ring full after wakeup")
    in
    kick t;
    Effect.perform
      (Kvm.Vm.Yield_until (fun () -> Queue.Driver.completed t.queue ~head))

  let status_of t slot =
    Char.code (Bytes.get (t.g.Gmem.read ~addr:slot.status_addr ~len:1) 0)

  let check t slot op =
    let st = status_of t slot in
    slot.busy <- false;
    if st <> status_ok then
      failwith (Printf.sprintf "virtio-blk %s failed with status %d" op st)

  let read t ~sector ~len =
    if len > max_data then invalid_arg "virtio-blk read: request too large";
    measure t "read" ~bytes:len (fun () ->
        let slot = take_slot t in
        write_header t slot ~typ:t_in ~sector;
        submit_and_wait t
          ~out:[ (slot.hdr_addr, header_size) ]
          ~in_:[ (slot.data_addr, len); (slot.status_addr, 1) ];
        let data = t.g.Gmem.read ~addr:slot.data_addr ~len in
        check t slot "read";
        data)

  let write t ~sector data =
    let len = Bytes.length data in
    if len > max_data then invalid_arg "virtio-blk write: request too large";
    measure t "write" ~bytes:len (fun () ->
        let slot = take_slot t in
        write_header t slot ~typ:t_out ~sector;
        t.g.Gmem.write ~addr:slot.data_addr data;
        submit_and_wait t
          ~out:[ (slot.hdr_addr, header_size); (slot.data_addr, len) ]
          ~in_:[ (slot.status_addr, 1) ];
        check t slot "write")

  let flush t =
    measure t "flush" ~bytes:0 (fun () ->
        let slot = take_slot t in
        write_header t slot ~typ:t_flush ~sector:0;
        submit_and_wait t
          ~out:[ (slot.hdr_addr, header_size) ]
          ~in_:[ (slot.status_addr, 1) ];
        check t slot "flush")

  let discard t ~sector ~count =
    measure t "discard" ~bytes:(count * sector_size) (fun () ->
        let slot = take_slot t in
        write_header t slot ~typ:t_discard ~sector:0;
        let seg = Bytes.make 16 '\000' in
        Bytes.set_int64_le seg 0 (Int64.of_int sector);
        Bytes.set_int32_le seg 8 (Int32.of_int count);
        t.g.Gmem.write ~addr:slot.data_addr seg;
        submit_and_wait t
          ~out:[ (slot.hdr_addr, header_size); (slot.data_addr, 16) ]
          ~in_:[ (slot.status_addr, 1) ];
        check t slot "discard")

  let to_blockdev t =
    let bs = Blockdev.Dev.block_size in
    {
      Blockdev.Dev.block_size = bs;
      blocks = t.capacity / sectors_per_block;
      read_block = (fun i -> read t ~sector:(i * sectors_per_block) ~len:bs);
      write_block = (fun i b -> write t ~sector:(i * sectors_per_block) b);
      flush = (fun () -> flush t);
      trim =
        (fun first count ->
          discard t ~sector:(first * sectors_per_block)
            ~count:(count * sectors_per_block * sector_size / sector_size));
    }
end
