(** Split virtqueues (VirtIO 1.1 §2.6) serialized in guest memory.

    Layout per queue of size [qsz]:
    - descriptor table: [qsz] × 16 bytes — {addr: u64, len: u32,
      flags: u16, next: u16}
    - available ring: u16 flags, u16 idx, [qsz] × u16 ring
    - used ring: u16 flags, u16 idx, [qsz] × {u32 id, u32 len}

    Both halves operate on the same guest bytes through a {!Gmem.t}; the
    driver half additionally owns the free-descriptor list (driver-local
    state that never lives in shared memory, as in a real driver). *)

val desc_f_next : int
val desc_f_write : int

val bytes_needed : qsz:int -> int * int * int * int
(** [(desc_off, avail_off, used_off, total)] relative offsets for
    carving one queue's rings out of a contiguous allocation. *)

(** {1 Driver (guest) half} *)

module Driver : sig
  type t

  val create : Gmem.t -> qsz:int -> desc:int -> avail:int -> used:int -> t
  (** Attach to rings at the given guest-physical addresses and
      initialise indices to zero. *)

  val qsz : t -> int

  val add :
    t -> out:(int * int) list -> in_:(int * int) list -> int option
  (** [add q ~out ~in_] links the device-readable [(addr, len)] buffers
      and device-writable ones into a descriptor chain, publishes it in
      the available ring and returns the chain head, or [None] when out
      of descriptors. *)

  val used_pending : t -> bool
  (** Whether the device published used elements we have not consumed.
      Pure read — safe inside parked-context predicates, where MMIO
      effects must not be performed. *)

  val poll_used : t -> (int * int) option
  (** Next unseen used element as [(head, written)]; frees the chain's
      descriptors. *)

  val completed : t -> head:int -> bool
  (** Whether a given chain head has been returned by the device
      (drains [poll_used] internally). *)

  val in_flight : t -> int
end

(** {1 Device (host) half} *)

module Device : sig
  type t

  val create :
    ?torn:(unit -> bool) ->
    ?on_requeue:(unit -> unit) ->
    Gmem.t ->
    qsz:int ->
    desc:int ->
    avail:int ->
    used:int ->
    t
  (** [torn] is polled once per {!pop} of a non-empty ring; when it
      returns [true] the ring-slot read is simulated as torn (a garbage
      head). [on_requeue] is called each time an invalid head forces a
      re-read of the slot. *)

  (** One buffer of a request chain as the device sees it. *)
  type buffer = { addr : int; len : int; writable : bool }

  val pop : t -> (int * buffer list) option
  (** Next available chain as [(head, buffers)], or [None] if the ring
      is empty. Out-of-range heads (torn or corrupt ring slots) are
      re-read once and skipped if still invalid — a chain is never built
      from an invalid descriptor index. *)

  val push_used : t -> head:int -> written:int -> unit
end
