(** Split virtqueues (VirtIO 1.1 §2.6) serialized in guest memory.

    Layout per queue of size [qsz]:
    - descriptor table: [qsz] × 16 bytes — {addr: u64, len: u32,
      flags: u16, next: u16}
    - available ring: u16 flags, u16 idx, [qsz] × u16 ring
    - used ring: u16 flags, u16 idx, [qsz] × {u32 id, u32 len}

    Both halves operate on the same guest bytes through a {!Gmem.t}; the
    driver half additionally owns the free-descriptor list (driver-local
    state that never lives in shared memory, as in a real driver). *)

val desc_f_next : int
val desc_f_write : int

val bytes_needed : qsz:int -> int * int * int * int
(** [(desc_off, avail_off, used_off, total)] relative offsets for
    carving one queue's rings out of a contiguous allocation. *)

(** {1 Driver (guest) half} *)

module Driver : sig
  type t

  val create : Gmem.t -> qsz:int -> desc:int -> avail:int -> used:int -> t
  (** Attach to rings at the given guest-physical addresses and
      initialise indices to zero. *)

  val qsz : t -> int

  val rings : t -> int * int * int
  (** [(desc, avail, used)] guest-physical ring addresses — what an
      in-guest adversary knows about its own queues (the hostile-guest
      engine corrupts rings through this). *)

  val add :
    t -> out:(int * int) list -> in_:(int * int) list -> int option
  (** [add q ~out ~in_] links the device-readable [(addr, len)] buffers
      and device-writable ones into a descriptor chain, publishes it in
      the available ring and returns the chain head, or [None] when out
      of descriptors. *)

  val used_pending : t -> bool
  (** Whether the device published used elements we have not consumed.
      Pure read — safe inside parked-context predicates, where MMIO
      effects must not be performed. *)

  val poll_used : t -> (int * int) option
  (** Next unseen used element as [(head, written)]; frees the chain's
      descriptors. *)

  val completed : t -> head:int -> bool
  (** Whether a given chain head has been returned by the device
      (drains [poll_used] internally). *)

  val in_flight : t -> int
end

(** {1 Device (host) half} *)

module Device : sig
  type t

  (** One buffer of a request chain as the device sees it. *)
  type buffer = { addr : int; len : int; writable : bool }

  val create :
    ?torn:(unit -> bool) ->
    ?on_requeue:(unit -> unit) ->
    ?validate:(buffer -> bool) ->
    ?on_quarantine:(int -> unit) ->
    ?on_ring_reset:(unit -> unit) ->
    ?quarantine_limit:int ->
    Gmem.t ->
    qsz:int ->
    desc:int ->
    avail:int ->
    used:int ->
    t
  (** [torn] is polled once per {!pop} of a non-empty ring; when it
      returns [true] the ring-slot read is simulated as torn (a garbage
      head). [on_requeue] is called each time an invalid head forces a
      re-read of the slot.

      [validate] is the per-buffer bounds check (typically: the guest
      physical range is backed and the length sane). A chain with any
      buffer failing it — or whose [next] links loop, revisit a
      descriptor, or leave the table — is {e quarantined}: completed
      with [written = 0] (so a real-but-mutated request never hangs the
      driver), counted, and reported through [on_quarantine head].
      After [quarantine_limit] (default 8) quarantines the ring is
      gracefully reset — every pending entry drained, plausible heads
      completed empty, [on_ring_reset] fired — instead of crashing. *)

  val pop : t -> (int * buffer list) option
  (** Next available chain as [(head, buffers)], or [None] if the ring
      is empty. Out-of-range heads (torn or corrupt ring slots) are
      re-read once and skipped if still invalid — a chain is never built
      from an invalid descriptor index. Malformed or out-of-bounds
      chains are quarantined (see {!create}) and skipped. *)

  val read_chain : t -> int -> buffer list
  (** The raw bounded chain walk (no validation); exposed for tests. *)

  val push_used : t -> head:int -> written:int -> unit

  val quarantined : t -> int
  (** Chains quarantined over the device's lifetime. *)

  val ring_resets : t -> int
end
