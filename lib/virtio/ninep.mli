(** A virtio-9p-style host file-sharing device (device id 9).

    Stands in for QEMU's virtio-9p in the Fig. 6 file-IO comparison:
    instead of a block device, every file operation travels as a message
    through one virtqueue and is served against a *host-side* file
    system (with the host's own page cache in the path — the double
    caching that cripples qemu-9p's IOPS in the paper).

    The wire format is a simplified 9P: one request/response exchange
    per operation, path-addressed. *)

val device_id : int

type request =
  | Read of { path : string; off : int; len : int }
  | Write of { path : string; off : int; data : bytes }
  | Create of string
  | Stat of string

type response = { status : int; payload : bytes }

val encode_request : request -> bytes
val decode_request : bytes -> request option
val encode_response : response -> bytes
val decode_response : bytes -> response option

module Device : sig
  (** Host-side handler executing operations (over the host FS). *)
  type backend = { handle : request -> response }

  val process : Queue.Device.t -> Gmem.t -> backend -> int
end

module Driver : sig
  type t

  val init :
    gmem:Gmem.t -> access:Mmio.access -> alloc:(size:int -> int) ->
    (t, string) result

  val set_observe : t -> Observe.t -> name:string -> unit
  (** Record per-request latency (virtual ns) into ["<name>.<op>_ns"]
      histograms — one per 9p message type — on the given tracer's
      metrics registry. Off by default. *)

  val read : t -> path:string -> off:int -> len:int -> bytes Hostos.Errno.result
  val write : t -> path:string -> off:int -> bytes -> int Hostos.Errno.result
  val create : t -> path:string -> unit Hostos.Errno.result
  val stat_size : t -> path:string -> int Hostos.Errno.result
end
