let device_id = 3

module Device = struct
  let process_tx q g ~sink =
    let n = ref 0 in
    let rec loop () =
      match Queue.Device.pop q with
      | None -> ()
      | Some (head, buffers) ->
          List.iter
            (fun (b : Queue.Device.buffer) ->
              if not b.writable then
                sink (g.Gmem.read ~addr:b.addr ~len:b.len))
            buffers;
          Queue.Device.push_used q ~head ~written:0;
          incr n;
          loop ()
    in
    loop ();
    !n

  let feed_rx q g data =
    let total = Bytes.length data in
    let delivered = ref 0 in
    let rec loop () =
      if !delivered < total then
        match Queue.Device.pop q with
        | None -> ()
        | Some (head, buffers) ->
            let written = ref 0 in
            List.iter
              (fun (b : Queue.Device.buffer) ->
                if b.writable && !delivered < total then begin
                  let chunk = min b.len (total - !delivered) in
                  g.Gmem.write ~addr:b.addr (Bytes.sub data !delivered chunk);
                  delivered := !delivered + chunk;
                  written := !written + chunk
                end)
              buffers;
            Queue.Device.push_used q ~head ~written:!written;
            loop ()
    in
    loop ();
    !delivered
end

module Driver = struct
  type t = {
    g : Gmem.t;
    access : Mmio.access;
    rxq : Queue.Driver.t;
    txq : Queue.Driver.t;
    rx_bufs : int array;  (** guest-physical addresses of receive buffers *)
    rx_buf_size : int;
    tx_buf : int;
    tx_buf_size : int;
    rx_heads : (int, int) Hashtbl.t;  (** posted chain head -> buffer addr *)
    pending : Buffer.t;  (** received bytes not yet consumed by a reader *)
    mutable obs : (Observe.t * string) option;
  }

  let rx_count = 8
  let buf_size = 1024

  let kick t ~queue =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int queue);
    t.access.Mmio.mwrite ~off:Mmio.reg_queue_notify b

  let post_rx t addr =
    match Queue.Driver.add t.rxq ~out:[] ~in_:[ (addr, t.rx_buf_size) ] with
    | Some head ->
        Hashtbl.replace t.rx_heads head addr;
        kick t ~queue:0
    | None -> ()

  let init ~gmem ~access ~alloc =
    match Mmio.probe access ~gmem ~expect_device:device_id ~alloc ~queues:2 with
    | Error e -> Error e
    | Ok queues ->
        let region = alloc ~size:((rx_count + 1) * buf_size) in
        let rx_bufs = Array.init rx_count (fun i -> region + (i * buf_size)) in
        let t =
          {
            g = gmem;
            access;
            rxq = queues.(0);
            txq = queues.(1);
            rx_bufs;
            rx_buf_size = buf_size;
            tx_buf = region + (rx_count * buf_size);
            tx_buf_size = buf_size;
            rx_heads = Hashtbl.create 16;
            pending = Buffer.create 64;
            obs = None;
          }
        in
        Array.iter (fun addr -> post_rx t addr) t.rx_bufs;
        Ok t

  (* Drain completed rx chains into [pending] and repost their buffers. *)
  let drain_rx t =
    let rec go () =
      match Queue.Driver.poll_used t.rxq with
      | None -> ()
      | Some (head, written) ->
          (match Hashtbl.find_opt t.rx_heads head with
          | Some addr ->
              Hashtbl.remove t.rx_heads head;
              if written > 0 then
                Buffer.add_bytes t.pending
                  (t.g.Gmem.read ~addr ~len:(min written t.rx_buf_size));
              post_rx t addr
          | None -> ());
          go ()
    in
    go ()

  let set_observe t obs ~name = t.obs <- Some (obs, name)

  let measure t ~bytes f =
    match t.obs with
    | None -> f ()
    | Some (obs, name) ->
        let t0 = Observe.now obs in
        let r = f () in
        let dt = Observe.now obs -. t0 in
        Observe.Metrics.observe
          (Observe.Metrics.histogram (Observe.metrics obs) (name ^ ".tx_ns"))
          dt;
        if Observe.enabled obs then
          Observe.instant obs ~name:(name ^ ".tx")
            ~attrs:[ ("ns", Observe.F dt); ("bytes", Observe.I bytes) ]
            ();
        r

  let write t data =
    let len = min (Bytes.length data) t.tx_buf_size in
    measure t ~bytes:len (fun () ->
        t.g.Gmem.write ~addr:t.tx_buf (Bytes.sub data 0 len);
        let head =
          match Queue.Driver.add t.txq ~out:[ (t.tx_buf, len) ] ~in_:[] with
          | Some h -> h
          | None -> failwith "virtio-console: tx ring full"
        in
        kick t ~queue:1;
        Effect.perform
          (Kvm.Vm.Yield_until (fun () -> Queue.Driver.completed t.txq ~head)))

  let read_available t =
    drain_rx t;
    let s = Buffer.to_bytes t.pending in
    Buffer.clear t.pending;
    s

  let read_line t =
    (* The wake-up predicate must be effect-free (it runs in scheduler
       context), so it only peeks; the actual drain — which reposts
       buffers with an MMIO kick — happens back in guest context. *)
    let maybe_ready () =
      String.index_opt (Buffer.contents t.pending) '\n' <> None
      || Queue.Driver.used_pending t.rxq
    in
    let rec await () =
      drain_rx t;
      if String.index_opt (Buffer.contents t.pending) '\n' = None then begin
        Effect.perform (Kvm.Vm.Yield_until maybe_ready);
        await ()
      end
    in
    await ();
    let s = Buffer.contents t.pending in
    match String.index_opt s '\n' with
    | None -> failwith "virtio-console: no line after wakeup"
    | Some i ->
        Buffer.clear t.pending;
        Buffer.add_string t.pending (String.sub s (i + 1) (String.length s - i - 1));
        String.sub s 0 i
end
