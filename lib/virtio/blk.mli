(** VirtIO block device (device id 2): request codec, device-side
    processing, and the guest driver.

    Request layout per the spec: a 16-byte read-only header {type: u32,
    reserved: u32, sector: u64}, data buffers, and a trailing 1-byte
    device-writable status. Sectors are 512 bytes. *)

val device_id : int
val sector_size : int
val sectors_per_block : int

val t_in : int  (** read from device *)

val t_out : int  (** write to device *)

val t_flush : int
val t_discard : int
val status_ok : int
val status_ioerr : int
val status_unsupp : int

module Device : sig
  (** What the device does with sectors — the storage behind it. *)
  type backend = {
    capacity_sectors : int;
    read : sector:int -> len:int -> bytes;
    write : sector:int -> bytes -> unit;
    flush : unit -> unit;
    discard : sector:int -> len:int -> unit;
  }

  val backend_of_blockdev : Blockdev.Dev.t -> backend
  (** Serve a host block device (or packed image). *)

  val config : capacity_sectors:int -> bytes
  (** Device config space (capacity at offset 0). *)

  val process : Queue.Device.t -> Gmem.t -> backend -> int
  (** Drain the available ring: execute every pending request, post used
      entries. Returns the number of requests completed (caller raises
      the interrupt if positive). *)
end

module Driver : sig
  type t

  val init :
    gmem:Gmem.t -> access:Mmio.access -> alloc:(size:int -> int) ->
    (t, string) result
  (** Probe the transport, set up queue 0 and the DMA slot pool, read
      the capacity from config space. Runs as guest code. *)

  val capacity_sectors : t -> int

  val queue : t -> Queue.Driver.t
  (** The request queue — exposed so an in-guest adversary (the
      hostile-guest engine) can reach its own ring addresses. *)

  val set_observe : t -> Observe.t -> name:string -> unit
  (** Record per-request latency (queue-in to completion, virtual ns)
      into histograms ["<name>.read_ns"], ["<name>.write_ns"], etc. on
      the given tracer's metrics registry. Off by default. *)

  val read : t -> sector:int -> len:int -> bytes
  (** Issue one request (up to 256 KiB); blocks the calling guest
      context via [Yield_until] until completion. *)

  val write : t -> sector:int -> bytes -> unit
  val flush : t -> unit
  val discard : t -> sector:int -> count:int -> unit

  val to_blockdev : t -> Blockdev.Dev.t
  (** 4 KiB block-device view for mounting a file system on top. *)
end
