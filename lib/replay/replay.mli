(** The replay-diff oracle: deterministic re-execution of a recorded
    flight log.

    A [.vmshtrace] file carries a {e scenario recipe} in its metadata —
    which driver produced it (smoke attach, fleet run, crash-point
    sweep cell) and every seed that parameterised it. Because the whole
    substrate is a deterministic function of those seeds, {!replay} can
    re-run the scenario without the original guest and compare the
    fresh run against the file, event by event, plus the guest-state
    snapshot digest. Any divergence means either nondeterminism crept
    into the pipeline or the recording is corrupt — a second oracle
    next to {!Vmsh.Snapshot}. *)

type spec =
  | Attach of { seed : int }  (** one fault-free smoke attach *)
  | Fleet_run of { seed : int; vms : int; from_baseline : bool }
      (** a whole fleet run; [from_baseline] replays the sessions as CoW
          forks of a deterministically re-baked {!Fleet.Baseline.image} *)
  | Sweep_cell of { seed : int; cls : string; k : int; hostile : string }
      (** one crash-matrix cell: fault class × abort-at-yield(k);
          [k = -1] is the class's probe (crash point out of reach).
          [hostile] names the adversarial-guest class attacking the
          cell (chaos-matrix recordings), or is [""] for a plain
          sweep cell *)
  | Serve_job of {
      seed : int;
      id : int;
      tenant : string;
      kind : string;
      start_ns : float;
      ram_mb : int;
    }
      (** one service job re-run in isolation: the same machine seed,
          kind and dispatch instant the dispatcher used, so a failing
          job's artifact replays without the rest of the stream *)

type run = {
  run_events : Trace.event list;  (** the fresh run's flight recording *)
  run_digest : string;  (** its guest-state digest *)
}

val meta_of_spec : spec -> (string * string) list
(** The scenario recipe as trace metadata ([scenario], [seed], …). *)

val spec_of_meta : (string * string) list -> (spec, string) result
(** Parse a recipe back out of trace metadata. Accepts both the keys
    {!meta_of_spec} writes and the ones the in-tree dump-on-failure
    sites write ([fleet-seed], [sweep-seed]). *)

val execute : ?log_level:Observe.level -> spec -> (run, string) result
(** Deterministically run the scenario; [Error] only for an unknown
    fault-class or job-kind name. [log_level] sets the re-run hosts'
    stderr log level (default quiet — replay output stays
    byte-comparable). *)

(** {2 Mutant execution}

    The trace-mutation fuzzer (lib/fuzz) derives a scripted
    {!Faults.t} plan from a mutated recording and asks whether the real
    pipeline survives it. *)

type attack = {
  at_verdict : Faults.Abort.verdict;
  at_events : Trace.event list;  (** the attacked run's flight recording *)
  at_virtual_ns : float;  (** virtual time the attacked run consumed *)
}

val default_budget_ns : float
(** 120 virtual seconds — same hang budget as the fault matrix. *)

val execute_attack :
  ?log_level:Observe.level ->
  ?budget_ns:float ->
  ?session:int ->
  plan:Faults.t ->
  spec ->
  attack
(** Re-run the recipe's attach on a fresh machine under [plan] (for a
    fleet recipe, the one [session] the mutation touched, using the
    fleet engine's per-session host-seed derivation), with the journal
    + snapshot oracle and fd-leak check live. Exceeding [budget_ns] of
    virtual time, an escaped exception, an oracle divergence or a
    descriptor leak is a {!Faults.Abort.Bug}; a round-trippable attach
    failure after full rollback is a [Clean_abort]; completion is
    [Survived]. *)

val record :
  ?log_level:Observe.level -> spec -> path:string -> (run, string) result
(** {!execute}, then save the recording (with its recipe and digest in
    the metadata) as a [.vmshtrace] file at [path]. *)

val replay :
  ?log_level:Observe.level -> path:string -> unit -> (string list, string) result
(** Load [path], re-run its recipe, and diff. [Ok []] means the replay
    matched the recording event-for-event and digest-for-digest;
    [Ok lines] lists the divergences; [Error] means the file or its
    recipe could not be read. *)
