(* Scenario-recipe replay: a [.vmshtrace] file names the deterministic
   driver that produced it (plus all of its seeds), so replaying is
   just re-running that driver and diffing the two flight recordings
   and guest-state digests. No guest memory image is needed — the
   recipe *is* the reproducer. *)

type spec =
  | Attach of { seed : int }
  | Fleet_run of { seed : int; vms : int; from_baseline : bool }
  | Sweep_cell of { seed : int; cls : string; k : int; hostile : string }
  | Serve_job of {
      seed : int;  (* the job's host seed *)
      id : int;
      tenant : string;
      kind : string;  (* Service.Job wire kind *)
      start_ns : float;
      ram_mb : int;
    }

type run = { run_events : Trace.event list; run_digest : string }

let meta_of_spec = function
  | Attach { seed } -> [ ("scenario", "attach"); ("seed", string_of_int seed) ]
  | Fleet_run { seed; vms; from_baseline } ->
      [
        ("scenario", "fleet");
        ("fleet-seed", string_of_int seed);
        ("vms", string_of_int vms);
        ("boot", (if from_baseline then "fork" else "cold"));
      ]
  | Sweep_cell { seed; cls; k; hostile } ->
      [
        ("scenario", "sweep-cell");
        ("sweep-seed", string_of_int seed);
        ("class", cls);
        ("k", string_of_int k);
      ]
      (* only chaos-matrix cells carry the key, so plain-sweep
         recordings stay byte-identical to earlier versions *)
      @ (if hostile = "" then [] else [ ("hostile", hostile) ])
  | Serve_job { seed; id; tenant; kind; start_ns; ram_mb } ->
      (* the same keys Service.Dispatch.prepare_host tags serve-job
         failure artifacts with *)
      [
        ("scenario", "serve-job");
        ("job", string_of_int id);
        ("tenant", tenant);
        ("kind", kind);
        ("job-seed", string_of_int seed);
        ("start-ns", Printf.sprintf "%.0f" start_ns);
        ("ram-mb", string_of_int ram_mb);
      ]

let spec_of_meta meta =
  let str k = List.assoc_opt k meta in
  let int_or k default =
    match str k with
    | None -> Ok default
    | Some s -> (
        match int_of_string_opt s with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad integer for %s: %s" k s))
  in
  let ( let* ) = Result.bind in
  match str "scenario" with
  | None -> Error "trace has no scenario metadata; cannot derive a recipe"
  | Some "attach" ->
      let* seed = int_or "seed" 5 in
      Ok (Attach { seed })
  | Some "fleet" ->
      (* dump-on-failure artifacts carry the fleet seed as [fleet-seed];
         the per-session [seed] key is the derived host seed, not the
         recipe's *)
      let* seed =
        match str "fleet-seed" with
        | Some _ -> int_or "fleet-seed" 7
        | None -> int_or "seed" 7
      in
      let* vms = int_or "vms" 1 in
      let from_baseline = str "boot" = Some "fork" in
      Ok (Fleet_run { seed; vms; from_baseline })
  | Some "sweep-cell" ->
      let* seed =
        match str "sweep-seed" with
        | Some _ -> int_or "sweep-seed" 5
        | None -> int_or "seed" 5
      in
      let* k = int_or "k" (-1) in
      let cls = Option.value (str "class") ~default:Fleet.Sweep.fault_free in
      let hostile = Option.value (str "hostile") ~default:"" in
      Ok (Sweep_cell { seed; cls; k; hostile })
  | Some "serve-job" ->
      let* seed = int_or "job-seed" 0 in
      let* id = int_or "job" 0 in
      let* ram_mb = int_or "ram-mb" 32 in
      let tenant = Option.value (str "tenant") ~default:"t0" in
      let kind = Option.value (str "kind") ~default:"attach" in
      let start_ns =
        Option.value
          (Option.bind (str "start-ns") float_of_string_opt)
          ~default:0.
      in
      Ok (Serve_job { seed; id; tenant; kind; start_ns; ram_mb })
  | Some s -> Error ("unknown scenario: " ^ s)

let execute ?log_level = function
  | Attach { seed } ->
      let pt, _ = Fleet.Sweep.run_point ?log_level ~seed ~cls:None ~k:None () in
      Ok
        {
          run_events = pt.Fleet.Sweep.pt_events;
          run_digest = pt.Fleet.Sweep.pt_digest;
        }
  | Fleet_run { seed; vms; from_baseline } -> (
      (* a forked fleet needs no baseline file: baking is itself
         deterministic, so the replay re-bakes the identical image *)
      let cfg = Fleet.Config.make ~vms () |> Fleet.Config.with_seed seed in
      let cfg =
        if from_baseline then
          Fleet.Config.with_boot_source
            (Fleet.Config.Fork_of (Fleet.Baseline.bake ()))
            cfg
        else cfg
      in
      let cfg =
        match log_level with
        | Some l -> Fleet.Config.with_log_level l cfg
        | None -> cfg
      in
      match Fleet.run cfg with
      | Error e -> Error (Vmsh.Vmsh_error.to_string e)
      | Ok r ->
          Ok { run_events = Fleet.flight_events r; run_digest = Fleet.digest r })
  | Sweep_cell { seed; cls; k; hostile } -> (
      let parsed_cls =
        (* chaos-matrix cells record pt_class = "hostile-<class>" with
           no fault class armed; accept that label too *)
        if cls = Fleet.Sweep.fault_free || hostile <> "" then Ok None
        else
          match Faults.of_name cls with
          | Some c -> Ok (Some c)
          | None -> Error ("unknown fault class: " ^ cls)
      in
      let parsed_hostile =
        if hostile = "" then Ok None
        else
          match Hostile.of_name hostile with
          | Some h -> Ok (Some h)
          | None -> Error ("unknown hostile class: " ^ hostile)
      in
      match (parsed_cls, parsed_hostile) with
      | Error e, _ | _, Error e -> Error e
      | Ok cls, Ok hostile ->
          let k = if k < 0 then None else Some k in
          let pt, _ =
            Fleet.Sweep.run_point ?log_level ?hostile ~seed ~cls ~k ()
          in
          Ok
            {
              run_events = pt.Fleet.Sweep.pt_events;
              run_digest = pt.Fleet.Sweep.pt_digest;
            })

  | Serve_job { seed; id; tenant; kind; start_ns; ram_mb } -> (
      match Service.Job.kind_of_string kind with
      | None -> Error ("unknown job kind: " ^ kind)
      | Some job_kind ->
          let job =
            {
              Service.Job.id;
              tenant;
              kind = job_kind;
              seed;
              priority = 0;
              deadline_ns = 0.;
            }
          in
          let host, status =
            Service.Dispatch.execute_job ~job ~start_ns ~ram_mb ?log_level ()
          in
          (* no whole-guest digest survives a detached job; the
             terminal status stands in (computed identically on both
             sides of the diff) *)
          Ok
            {
              run_events = Trace.Recorder.events host.Hostos.Host.recorder;
              run_digest =
                Digest.to_hex
                  (Digest.string (Service.Job.status_to_string status));
            })

(* ------------------------------------------------------------------ *)
(* Mutant execution: drive the recipe under a scripted fault plan      *)
(* ------------------------------------------------------------------ *)

(* The trace-mutation fuzzer turns a mutated flight recording into a
   scripted {!Faults.t} plan and asks: does the real pipeline survive
   that perturbation? The attack re-runs the recipe's attach on a fresh
   machine (for a fleet recipe, the one session the mutation touched —
   per-session host seeds are the fleet's own derivation) with the
   journal + snapshot oracle and the fd-leak check live, then folds the
   sweep point into the shared three-way taxonomy. *)

type attack = {
  at_verdict : Faults.Abort.verdict;
  at_events : Trace.event list;  (** the attacked run's flight recording *)
  at_virtual_ns : float;  (** virtual time the attacked run consumed *)
}

let default_budget_ns = 120e9

let attack_host_seed spec ~session =
  match spec with
  | Attach { seed } -> seed
  | Sweep_cell { seed; _ } -> seed
  | Serve_job { seed; _ } -> seed
  (* the fleet engine's per-session host seed derivation *)
  | Fleet_run { seed; _ } -> (seed * 1009) + (session * 17)

let execute_attack ?log_level ?(budget_ns = default_budget_ns) ?(session = 0)
    ~plan spec =
  let seed = attack_host_seed spec ~session in
  let pt, _ =
    Fleet.Sweep.run_point ?log_level ~plan ~seed ~cls:None ~k:None ()
  in
  let verdict =
    if pt.Fleet.Sweep.pt_virtual_ns > budget_ns then
      Faults.Abort.Bug
        (Printf.sprintf "hang: %.0f ms of virtual time exceeds the budget"
           (pt.Fleet.Sweep.pt_virtual_ns /. 1e6))
    else
      match pt.Fleet.Sweep.pt_unclean with
      | Some m -> Faults.Abort.Bug ("unclean: " ^ m)
      | None ->
          if pt.Fleet.Sweep.pt_oracle <> [] then
            Faults.Abort.Bug
              ("oracle: " ^ List.hd pt.Fleet.Sweep.pt_oracle)
          else if pt.Fleet.Sweep.pt_leaked_fds > 0 then
            Faults.Abort.Bug
              (Printf.sprintf "%d descriptors leaked"
                 pt.Fleet.Sweep.pt_leaked_fds)
          else if pt.Fleet.Sweep.pt_outcome = "completed" then
            Faults.Abort.Survived
          else
            Faults.Abort.Clean_abort
              (Option.value pt.Fleet.Sweep.pt_error
                 ~default:pt.Fleet.Sweep.pt_outcome)
  in
  {
    at_verdict = verdict;
    at_events = pt.Fleet.Sweep.pt_events;
    at_virtual_ns = pt.Fleet.Sweep.pt_virtual_ns;
  }

let record ?log_level spec ~path =
  match execute ?log_level spec with
  | Error _ as e -> e
  | Ok run ->
      let meta = meta_of_spec spec @ [ ("digest", run.run_digest) ] in
      let oc = open_out_bin path in
      output_string oc (Trace.encode ~meta run.run_events);
      close_out oc;
      Ok run

let replay ?log_level ~path () =
  match Trace.load path with
  | Error e -> Error e
  | Ok f -> (
      match spec_of_meta f.Trace.f_meta with
      | Error _ as e -> e
      | Ok spec -> (
          match execute ?log_level spec with
          | Error _ as e -> e
          | Ok run ->
              let diffs = Trace.diff f.Trace.f_events run.run_events in
              let diffs =
                match List.assoc_opt "digest" f.Trace.f_meta with
                | Some d when d <> run.run_digest ->
                    diffs
                    @ [
                        Printf.sprintf
                          "snapshot digest diverges: recorded %s, replay %s" d
                          run.run_digest;
                      ]
                | _ -> diffs
              in
              Ok diffs))
