(** Trace-mutation fuzzing of the hypervisor boundary.

    Mutates a recorded [.vmshtrace] event stream with seeded,
    structure-aware operators and judges each mutant: a
    protocol-violating stream must be rejected by the causality
    validator ([Clean_abort]); a protocol-consistent one is lowered to
    a scripted fault plan and executed for real through the attach
    pipeline with the journal + snapshot oracle live.

    The engine is a pure, deterministic function of
    [(trace, seed, rounds)] — it never touches the filesystem or wall
    clock, and the executor is injected, so tests drive campaigns with
    stub executors and the CLI composes it with
    [Replay.execute_attack]. *)

type verdict = Faults.Abort.verdict

(** {2 Mutators} *)

type mutator =
  | Reorder  (** swap an adjacent, commuting event pair *)
  | Drop  (** lose a doorbell (kick / irq / notify_rekick) *)
  | Duplicate  (** repeat a doorbell *)
  | Corrupt  (** flip bits in a typed integer argument *)
  | Splice  (** graft a window from elsewhere (another session) *)
  | Timewarp  (** rescale the suffix's inter-event spacing *)

val all_mutators : mutator list
(** The six classes, in rotation order. *)

val mutator_name : mutator -> string
val mutator_of_name : string -> mutator option

type mutation = {
  m_op : mutator;
  m_at : int;  (** site index in the stream the mutation applies to *)
  m_src : int;  (** splice: source window start *)
  m_span : int;  (** splice: source window length *)
  m_key : string;  (** corrupt: the integer argument edited *)
  m_delta : int;  (** corrupt: xor mask; timewarp: factor in permille *)
}

val mutation_to_string : mutation -> string
(** [op:at:src:span:key:delta] — the form reproducer metadata carries. *)

val mutation_of_string : string -> mutation option
val mutations_to_string : mutation list -> string
val mutations_of_string : string -> mutation list option

val apply : Trace.event list -> mutation -> Trace.event list option
(** Apply one mutation; [None] when it is illegal at its site (out of
    range, causality-violating reorder, no such typed argument).
    Application re-validates everything, so untrusted reproducer
    metadata cannot smuggle an unchecked edit. *)

val apply_all : Trace.event list -> mutation list -> Trace.event list
(** Fold {!apply} over a chain, skipping mutations that have become
    illegal (minimization legitimately creates those). *)

(** {2 Causality validator} *)

val validate : Trace.event list -> string list
(** The boundary protocol model: each session's virtual time is
    monotone (sessions are clocked independently — a fleet recording
    concatenates per-host streams);
    attach lifecycle events form at most one transaction window per
    session; phases and syscall injections happen only inside an open
    window; rollbacks need a transaction; mmio lengths, GSI numbers
    and ioregionfd ops stay in range. [[]] = protocol-consistent.
    Every unmutated recording the pipeline produces must pass. *)

(** {2 Lowering to a scripted fault plan} *)

val script_of_mutations :
  Trace.event list -> mutation list -> (Faults.cls * int) list
(** Lower a mutation chain (against its base stream) to deterministic
    [(class, decision-index)] injections for {!Faults.set_script}:
    dropped doorbells become notify drops, corrupted descriptors
    become torn reads, corrupted syscall returns become injector
    bounces, reorders near injections become attach races. Duplicate
    and splice mutants execute unperturbed — the pipeline must simply
    survive them; timewarp lowers through
    {!skew_script_of_mutations} instead. *)

val skew_script_of_mutations :
  Trace.event list -> mutation list -> (int * int) list
(** Lower the chain's timewarp mutations to
    [(yield-index, factor-permille)] pairs for
    {!Faults.set_skew_script}: at the scripted yield point of the live
    attach, the harness stretches the virtual clock by the warp
    factor (a scripted timing decision, not a fault injection). *)

val lowering_noops : mutation list -> int
(** How many mutations of the chain have no runtime lowering at all
    (duplicate, splice) — the mutant stream itself is their whole
    perturbation. Campaigns surface the total as the
    [fuzz.lowering.noop] counter. *)

(** {2 Coverage} *)

val coverage_keys : Trace.event list -> string list
(** The stream's event-sequence coverage: FNV-1a hashes of every
    session-tagged 3-gram of event kinds, deduplicated and sorted —
    order-independent across identical double runs and stable across
    compiler versions. *)

(** {2 Minimization} *)

val minimize :
  still_bug:(mutation list -> bool) -> mutation list -> mutation list
(** Delta-debug a buggy mutation chain down to a minimal reproducer:
    drop halves, then single mutations, to fixpoint. Assumes
    [still_bug] holds of the input; deterministic. *)

val truncate_base : Trace.event list -> mutation list -> Trace.event list
(** Truncate a reproducer's base stream to the prefix its mutations
    actually reference — the tail is noise the reproducer replays
    without. *)

(** {2 Campaign} *)

type round_result = {
  rr_round : int;
  rr_op : mutator;
  rr_muts : mutation list;  (** full mutation chain of this mutant *)
  rr_events : Trace.event list;  (** the mutant stream itself *)
  rr_verdict : verdict;
  rr_new_keys : int;  (** novel coverage keys this mutant contributed *)
  rr_minimized : mutation list option;  (** for bugs, the minimal chain *)
}

type report = {
  fz_rounds : round_result list;
  fz_mutants_run : int;
  fz_survived : int;
  fz_clean_aborts : int;
  fz_bugs : int;
  fz_minimized_bugs : int;
  fz_hangs : int;
  fz_mutator_fired : (mutator * int) list;
  fz_corpus_kept : int;  (** mutants added to the corpus this campaign *)
  fz_coverage : string list;  (** full coverage key set, sorted *)
}

val run_campaign :
  base:Trace.event list ->
  seed:int ->
  rounds:int ->
  ?minimize_bugs:bool ->
  ?seen:string list ->
  execute:(Trace.event list -> mutation list -> verdict) ->
  unit ->
  report
(** Run [rounds] mutants. Round [r] leads with mutator class
    [r mod 6] (falling forward when that class has no legal site), so
    every class fires on any non-trivial trace. Parents are drawn from
    the corpus pool (base plus kept mutants, chain depth capped);
    protocol-violating mutants are [Clean_abort]ed by the validator
    without executing; novel-coverage mutants join the pool; bugs are
    minimized via [execute] when [minimize_bugs] (default [true]).
    [seen] pre-loads coverage keys (a persisted corpus), so only
    genuinely new coverage is kept. Deterministic in all arguments. *)

(** {2 Reproducer / corpus-entry trace files} *)

val mutant_scenario : string
(** The [scenario] metadata value tagging fuzz-mutant trace files. *)

val mutant_meta :
  base_meta:(string * string) list ->
  muts:mutation list ->
  prefix:int ->
  verdict:verdict ->
  (string * string) list
(** Metadata for a corpus entry or minimized reproducer: the base
    recipe's keys (its [scenario] preserved as [base-scenario]), the
    serialized mutation chain, the base-prefix length the chain
    applies to, the verdict, and the trace-codec version. *)

type mutant_file = {
  mf_base_meta : (string * string) list;
      (** the base recipe's metadata, scenario key restored *)
  mf_muts : mutation list;
  mf_prefix : int;  (** base-prefix length the chain applies to *)
  mf_verdict : verdict;
}

val parse_mutant_meta :
  (string * string) list -> (mutant_file, string) result
(** Inverse of {!mutant_meta}: recover the base recipe metadata,
    mutation chain, prefix and recorded verdict from a fuzz-mutant
    trace's metadata. *)
