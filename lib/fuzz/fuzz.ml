(* Trace-mutation fuzzing of the hypervisor boundary (the IRIS half
   that PR 6's capture/replay machinery was built for).

   A recorded [.vmshtrace] stream is a byte-exact transcript of every
   KVM-boundary event of a deterministic run. This engine mutates that
   transcript with seeded, structure-aware operators — reorder adjacent
   events within causality constraints, drop/duplicate doorbells and
   interrupts, corrupt typed event arguments, splice a window from a
   second session's stream, time-warp virtual timestamps — and treats
   each mutant as a hypothesis about what a hostile or buggy hypervisor
   could present to the attach protocol.

   Each mutant is judged in two steps:

   1. the {e causality validator} checks the mutant against the
      boundary protocol model (monotonic virtual time, per-session
      transaction windows, typed argument ranges). A violating stream
      is what a correct vmsh must reject — verdict [Clean_abort].
   2. a protocol-consistent mutant is {e executed}: its mutations are
      lowered to a scripted fault plan (drop the n-th doorbell, tear
      the n-th descriptor read, bounce the n-th injected syscall) and
      the recipe's attach re-runs for real under that plan, with the
      journal + snapshot oracle live (see {!Replay.execute_attack}).
      Completion is [Survived]; a rolled-back, round-trippable failure
      is [Clean_abort]; anything else — escaped exception, oracle
      divergence, fd leak, virtual-budget hang — is a [Bug].

   The corpus layer keeps mutants that reach novel event-sequence
   coverage (n-gram hashes of the kind stream) and feeds them back as
   mutation parents; [Bug] mutants are auto-minimized by delta-debugging
   the mutation list (halves, then single mutations) down to a minimal
   reproducer, and the reproducer trace is truncated to the prefix the
   surviving mutations actually touch.

   Everything is a deterministic function of (trace bytes, seed): the
   engine draws only from its private splitmix64 stream, so two
   identical campaigns produce byte-identical mutants, corpora and
   ledgers. *)

type verdict = Faults.Abort.verdict

(* ------------------------------------------------------------------ *)
(* Private RNG (same splitmix64 discipline as lib/faults)              *)
(* ------------------------------------------------------------------ *)

module Rng = struct
  type t = { mutable state : int64 }

  let golden_gamma = 0x9E3779B97F4A7C15L

  let mix64 z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state golden_gamma;
    Int64.to_int (Int64.shift_right_logical (mix64 t.state) 2)

  let int t n = if n <= 0 then 0 else next t mod n
  let pick t l = List.nth l (int t (List.length l))
end

(* ------------------------------------------------------------------ *)
(* Mutators                                                            *)
(* ------------------------------------------------------------------ *)

type mutator = Reorder | Drop | Duplicate | Corrupt | Splice | Timewarp

let all_mutators = [ Reorder; Drop; Duplicate; Corrupt; Splice; Timewarp ]

let mutator_name = function
  | Reorder -> "reorder"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Corrupt -> "corrupt"
  | Splice -> "splice"
  | Timewarp -> "timewarp"

let mutator_of_name s =
  List.find_opt (fun m -> mutator_name m = s) all_mutators

type mutation = {
  m_op : mutator;
  m_at : int;  (** site index in the stream the mutation applies to *)
  m_src : int;  (** splice: source window start *)
  m_span : int;  (** splice: source window length *)
  m_key : string;  (** corrupt: the integer argument edited *)
  m_delta : int;  (** corrupt: xor mask; timewarp: factor in permille *)
}

let mk_mutation ?(src = 0) ?(span = 0) ?(key = "") ?(delta = 0) op at =
  { m_op = op; m_at = at; m_src = src; m_span = span; m_key = key;
    m_delta = delta }

(* One mutation as a compact, colon-separated record; a list joins with
   ';'. This is the form reproducer metadata carries, so it must
   round-trip exactly. *)
let mutation_to_string m =
  Printf.sprintf "%s:%d:%d:%d:%s:%d" (mutator_name m.m_op) m.m_at m.m_src
    m.m_span m.m_key m.m_delta

let mutation_of_string s =
  match String.split_on_char ':' s with
  | [ op; at; src; span; key; delta ] -> (
      match
        ( mutator_of_name op,
          int_of_string_opt at,
          int_of_string_opt src,
          int_of_string_opt span,
          int_of_string_opt delta )
      with
      | Some op, Some at, Some src, Some span, Some delta ->
          Some { m_op = op; m_at = at; m_src = src; m_span = span;
                 m_key = key; m_delta = delta }
      | _ -> None)
  | _ -> None

let mutations_to_string ms = String.concat ";" (List.map mutation_to_string ms)

let mutations_of_string s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ';' s in
    let parsed = List.map mutation_of_string parts in
    if List.for_all Option.is_some parsed then
      Some (List.map Option.get parsed)
    else None

(* --- site legality --- *)

(* Doorbell-shaped events a hostile boundary could lose or repeat. *)
let droppable (e : Trace.event) =
  match e.Trace.kind with
  | "kvm.kick" | "kvm.irq" | "kvm.notify_rekick" -> true
  | _ -> false

(* The typed integer arguments worth corrupting, per event kind. *)
let corruptible_keys (e : Trace.event) =
  let keys =
    match e.Trace.kind with
    | "kvm.exit.ioregionfd" -> [ "addr" ]
    | "kvm.exit.mmio" -> [ "addr"; "len" ]
    | "kvm.irq" -> [ "gsi" ]
    | "kvm.ioctl" -> [ "code" ]
    | "inject.syscall" -> [ "ret" ]
    | _ -> []
  in
  List.filter (fun k -> Trace.int_arg e k <> None) keys

(* --- application --- *)

(* [apply events m] is [None] when the mutation is illegal at its site
   (out of range, causality-violating reorder, no typed argument). The
   proposer only emits legal mutations, but reproducer metadata is
   untrusted, so application re-checks everything. *)
let apply (events : Trace.event list) (m : mutation) :
    Trace.event list option =
  let arr = Array.of_list events in
  let n = Array.length arr in
  match m.m_op with
  | Reorder ->
      if m.m_at < 0 || m.m_at + 1 >= n then None
      else
        let a = arr.(m.m_at) and b = arr.(m.m_at + 1) in
        if not (Trace.commutes a b) then None
        else begin
          (* same-session swaps keep the timestamp slots so the
             session's clock stays monotone and the swap is purely an
             ordering mutation; cross-session swaps keep each event's
             own clock (sessions time independently) *)
          if a.Trace.session = b.Trace.session then begin
            arr.(m.m_at) <- Trace.with_ts b a.Trace.ts;
            arr.(m.m_at + 1) <- Trace.with_ts a b.Trace.ts
          end
          else begin
            arr.(m.m_at) <- b;
            arr.(m.m_at + 1) <- a
          end;
          Some (Array.to_list arr)
        end
  | Drop ->
      if m.m_at < 0 || m.m_at >= n || not (droppable arr.(m.m_at)) then None
      else
        Some
          (List.filteri (fun i _ -> i <> m.m_at) (Array.to_list arr))
  | Duplicate ->
      if m.m_at < 0 || m.m_at >= n || not (droppable arr.(m.m_at)) then None
      else
        Some
          (List.concat
             (List.mapi
                (fun i e -> if i = m.m_at then [ e; e ] else [ e ])
                (Array.to_list arr)))
  | Corrupt -> (
      if m.m_at < 0 || m.m_at >= n then None
      else
        let e = arr.(m.m_at) in
        match Trace.int_arg e m.m_key with
        | None -> None
        | Some v ->
            if not (List.mem m.m_key (corruptible_keys e)) then None
            else begin
              arr.(m.m_at) <- Trace.with_int_arg e m.m_key (v lxor m.m_delta);
              Some (Array.to_list arr)
            end)
  | Splice ->
      (* copy a window from elsewhere in the stream (another session's
         events when the trace has them) to the insertion point,
         re-tagged with the destination session and timestamp so the
         splice reads as foreign traffic arriving at that instant *)
      if
        n < 2 || m.m_span < 1 || m.m_src < 0
        || m.m_src + m.m_span > n
        || m.m_at < 0 || m.m_at >= n
      then None
      else
        let dst = arr.(m.m_at) in
        let window =
          List.map
            (fun i ->
              let e = arr.(m.m_src + i) in
              Trace.with_session (Trace.with_ts e dst.Trace.ts)
                dst.Trace.session)
            (List.init m.m_span Fun.id)
        in
        Some
          (List.concat
             (List.mapi
                (fun i e -> if i = m.m_at then window @ [ e ] else [ e ])
                (Array.to_list arr)))
  | Timewarp ->
      (* scale the inter-event spacing of the suffix by a permille
         factor; positive factors preserve monotonicity, so a
         time-warped stream is still protocol-consistent and probes
         the pipeline's indifference to boundary timing *)
      if m.m_at < 0 || m.m_at >= n || m.m_delta <= 0 then None
      else begin
        let base = if m.m_at = 0 then 0.0 else arr.(m.m_at - 1).Trace.ts in
        let f = float_of_int m.m_delta /. 1000.0 in
        for i = m.m_at to n - 1 do
          arr.(i) <-
            Trace.with_ts arr.(i)
              (base +. ((arr.(i).Trace.ts -. base) *. f))
        done;
        Some (Array.to_list arr)
      end

let apply_all base ms =
  List.fold_left
    (fun ev m -> match apply ev m with Some ev' -> ev' | None -> ev)
    base ms

(* --- proposal --- *)

(* Propose one legal mutation of class [op], or [None] if the stream
   has no legal site (e.g. nothing droppable). Deterministic: all
   choices come from [rng]. *)
let propose rng op (events : Trace.event list) : mutation option =
  let arr = Array.of_list events in
  let n = Array.length arr in
  if n = 0 then None
  else
    let sites pred = List.filter (fun i -> pred arr.(i)) (List.init n Fun.id) in
    match op with
    | Reorder ->
        let legal =
          List.filter
            (fun i -> i + 1 < n && Trace.commutes arr.(i) arr.(i + 1))
            (List.init n Fun.id)
        in
        if legal = [] then None
        else Some (mk_mutation Reorder (Rng.pick rng legal))
    | Drop ->
        let legal = sites droppable in
        if legal = [] then None else Some (mk_mutation Drop (Rng.pick rng legal))
    | Duplicate ->
        let legal = sites droppable in
        if legal = [] then None
        else Some (mk_mutation Duplicate (Rng.pick rng legal))
    | Corrupt ->
        let legal = sites (fun e -> corruptible_keys e <> []) in
        if legal = [] then None
        else
          let at = Rng.pick rng legal in
          let key = Rng.pick rng (corruptible_keys arr.(at)) in
          (* small masks keep the argument plausible (protocol-valid,
             so the mutant executes); large ones push it out of range
             (the validator must catch it) *)
          let delta =
            Rng.pick rng [ 1; 2; 4; 0x10; 0x100; 0x100000; 0x800000 ]
          in
          Some (mk_mutation Corrupt at ~key ~delta)
    | Splice ->
        if n < 4 then None
        else
          let span = 2 + Rng.int rng 3 in
          let src = Rng.int rng (n - span) in
          (* prefer a destination in another session when one exists:
             splicing across sessions is the cross-stream interleaving
             IRIS-style fuzzing is after *)
          let foreign =
            sites (fun e -> e.Trace.session <> arr.(src).Trace.session)
          in
          let at =
            if foreign <> [] then Rng.pick rng foreign else Rng.int rng n
          in
          Some (mk_mutation Splice at ~src ~span)
    | Timewarp ->
        let at = Rng.int rng n in
        let delta = Rng.pick rng [ 250; 500; 2000; 4000 ] in
        Some (mk_mutation Timewarp at ~delta)

(* ------------------------------------------------------------------ *)
(* Causality validator (the boundary protocol model)                   *)
(* ------------------------------------------------------------------ *)

let max_gsi = 1024

let validate (events : Trace.event list) : string list =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let began = Hashtbl.create 8 and closed = Hashtbl.create 8 in
  (* virtual time is per-session: a fleet recording concatenates the
     per-host streams, each timed by its own clock *)
  let last_ts = Hashtbl.create 8 in
  List.iteri
    (fun i (e : Trace.event) ->
      let s = e.Trace.session in
      let prev =
        Option.value (Hashtbl.find_opt last_ts s) ~default:neg_infinity
      in
      if e.Trace.ts < prev then
        report
          "event %d: session %d's virtual time runs backwards (%.0f after \
           %.0f)"
          i s e.Trace.ts prev;
      Hashtbl.replace last_ts s (Float.max prev e.Trace.ts);
      (match e.Trace.kind with
      | "attach.begin" ->
          if Hashtbl.mem began s then
            report "event %d: second attach.begin for session %d" i s
          else Hashtbl.replace began s ()
      | "attach.commit" | "attach.abort" ->
          if not (Hashtbl.mem began s) then
            report "event %d: %s without attach.begin (session %d)" i
              e.Trace.kind s
          else if Hashtbl.mem closed s then
            report "event %d: %s after the window already closed (session %d)"
              i e.Trace.kind s
          else Hashtbl.replace closed s ()
      | "attach.phase" ->
          (* attach phases only happen inside an open attach window *)
          if (not (Hashtbl.mem began s)) || Hashtbl.mem closed s then
            report "event %d: %s outside an attach window (session %d)" i
              e.Trace.kind s
      | "inject.syscall" | "journal.rollback" ->
          (* injection needs an attached session but outlives the
             window: detach replays the journal (rollback + the
             injected teardown syscalls) after commit *)
          if not (Hashtbl.mem began s) then
            report "event %d: %s with no attach transaction (session %d)" i
              e.Trace.kind s
      | _ -> ());
      (match e.Trace.kind with
      | "kvm.exit.mmio" -> (
          (match Trace.int_arg e "len" with
          | Some (1 | 2 | 4 | 8) | None -> ()
          | Some l -> report "event %d: mmio access of %d bytes" i l);
          match Trace.int_arg e "is_write" with
          | Some (0 | 1) | None -> ()
          | Some w -> report "event %d: mmio direction %d" i w)
      | "kvm.irq" -> (
          match Trace.int_arg e "gsi" with
          | Some g when g < 0 || g >= max_gsi ->
              report "event %d: GSI %d out of range" i g
          | _ -> ())
      | "kvm.exit.ioregionfd" -> (
          match Trace.str_arg e "kind" with
          | Some ("read" | "write") | None -> ()
          | Some k -> report "event %d: ioregionfd op %S" i k)
      | _ -> ()))
    events;
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* Lowering: mutant -> scripted fault plan                             *)
(* ------------------------------------------------------------------ *)

(* A protocol-consistent mutant executes by lowering each mutation to a
   deterministic injection at the matching decision point of the live
   attach (see Faults.set_script). Occurrence indices are counted in
   the base stream within the mutation's session; they are folded by a
   small modulus because the live run's decision count need not match
   the recording's event count exactly — the script is a perturbation
   schedule, not a transcript. *)

let script_fold = 8

let script_of_mutations (base : Trace.event list) (ms : mutation list) :
    (Faults.cls * int) list =
  let arr = Array.of_list base in
  let n = Array.length arr in
  let occurrence pred at =
    let sess = arr.(at).Trace.session in
    let c = ref 0 in
    for i = 0 to at - 1 do
      if arr.(i).Trace.session = sess && pred arr.(i) then incr c
    done;
    !c mod script_fold
  in
  let kind_is k (e : Trace.event) = e.Trace.kind = k in
  let entries =
    List.filter_map
      (fun m ->
        if m.m_at < 0 || m.m_at >= n then None
        else
          let e = arr.(m.m_at) in
          match (m.m_op, e.Trace.kind) with
          | Drop, ("kvm.kick" | "kvm.irq" | "kvm.notify_rekick") ->
              Some (Faults.Notify_drop, occurrence droppable m.m_at)
          | Corrupt, "kvm.exit.ioregionfd" | Corrupt, "kvm.exit.mmio" ->
              Some (Faults.Desc_torn, occurrence (kind_is e.Trace.kind) m.m_at)
          | Corrupt, "inject.syscall" ->
              Some
                (Faults.Inject_eintr, occurrence (kind_is "inject.syscall") m.m_at)
          | Corrupt, "kvm.ioctl" ->
              Some (Faults.Inject_eagain, occurrence (kind_is "kvm.ioctl") m.m_at)
          | Corrupt, "kvm.irq" ->
              Some (Faults.Notify_drop, occurrence droppable m.m_at)
          | Reorder, _ ->
              let other = arr.(min (m.m_at + 1) (n - 1)) in
              if
                kind_is "inject.syscall" e || kind_is "inject.syscall" other
              then Some (Faults.Attach_race, 0)
              else
                Some
                  (Faults.Vm_rw_efault, occurrence (fun _ -> true) m.m_at mod 4)
          (* a duplicated doorbell is a spurious kick the devices must
             tolerate; a splice is foreign-session interleaving the
             validator already vetted — both execute the recipe
             unperturbed and must survive. Timewarp lowers separately,
             to the skew script (see [skew_script_of_mutations]). *)
          | Duplicate, _ | Splice, _ | Timewarp, _ -> None
          | Drop, _ | Corrupt, _ -> None)
      ms
  in
  List.sort_uniq compare entries

(* Timewarp's lowering target is not a fault injection but a scripted
   virtual-time decision: at the yield point matching the mutation's
   site (occurrence-folded exactly like the fault script), the harness
   stretches the virtual clock by the warp factor. Compression factors
   (< 1000 permille) still fire but add nothing — virtual time is
   monotone, so a compressed suffix can only be replayed, not
   rewound. *)
let skew_script_of_mutations (base : Trace.event list) (ms : mutation list) :
    (int * int) list =
  let arr = Array.of_list base in
  let n = Array.length arr in
  let occurrence at =
    let sess = arr.(at).Trace.session in
    let c = ref 0 in
    for i = 0 to at - 1 do
      if arr.(i).Trace.session = sess then incr c
    done;
    !c mod script_fold
  in
  List.sort_uniq compare
    (List.filter_map
       (fun m ->
         if m.m_op <> Timewarp || m.m_at < 0 || m.m_at >= n || m.m_delta <= 0
         then None
         else Some (occurrence m.m_at, m.m_delta))
       ms)

(* Mutations with no runtime lowering at all: the mutant stream itself
   is the whole perturbation. Counted per executed chain so campaign
   metrics ([fuzz.lowering.noop]) show how much ran unperturbed. *)
let lowering_noops (ms : mutation list) : int =
  List.length
    (List.filter (fun m -> m.m_op = Duplicate || m.m_op = Splice) ms)

(* ------------------------------------------------------------------ *)
(* Coverage: n-gram keys over the event-kind stream                    *)
(* ------------------------------------------------------------------ *)

let ngram = 3

(* FNV-1a over the kind strings of one window — stable across OCaml
   versions (unlike Hashtbl.hash), so corpora survive toolchain
   bumps. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* The coverage key set of a stream: every n-gram of consecutive event
   kinds (session-tagged, so a fleet interleaving differs from the
   same kinds in one session), deduplicated and sorted — a canonical
   form that is identical across identical double runs regardless of
   discovery order. *)
let coverage_keys (events : Trace.event list) : string list =
  let kinds =
    Array.of_list
      (List.map
         (fun (e : Trace.event) ->
           Printf.sprintf "%d\000%s" e.Trace.session e.Trace.kind)
         events)
  in
  let n = Array.length kinds in
  let keys = Hashtbl.create 256 in
  for i = 0 to n - ngram do
    let h = ref fnv_offset in
    for j = i to i + ngram - 1 do
      h := fnv64 (fnv64 !h kinds.(j)) "\001"
    done;
    Hashtbl.replace keys (Printf.sprintf "%016Lx" !h) ()
  done;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) keys [])

(* ------------------------------------------------------------------ *)
(* Minimization (delta debugging over the mutation list)               *)
(* ------------------------------------------------------------------ *)

(* Truncate a reproducer's base stream to the prefix its mutations
   actually touch: the scripted plan only depends on events at or
   before the last mutation site, so everything after it is noise the
   minimal reproducer does not need. *)
let truncate_base (base : Trace.event list) (ms : mutation list) :
    Trace.event list =
  match ms with
  | [] -> base
  | _ ->
      let last =
        List.fold_left
          (fun acc m ->
            max acc (max m.m_at (if m.m_op = Splice then m.m_src + m.m_span - 1 else 0)))
          0 ms
      in
      List.filteri (fun i _ -> i <= last) base

(* [minimize ~still_bug base ms] assumes [still_bug ms] holds and
   shrinks [ms] by classic delta debugging: first try dropping whole
   halves, then single mutations, until no strict subset reproduces.
   Deterministic, so the same bug always minimizes to the same
   reproducer. *)
let minimize ~(still_bug : mutation list -> bool) (ms : mutation list) :
    mutation list =
  let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
  let halves l =
    let n = List.length l in
    if n < 2 then []
    else
      [
        List.filteri (fun i _ -> i >= n / 2) l;
        List.filteri (fun i _ -> i < n / 2) l;
      ]
  in
  let rec go ms =
    let candidates =
      halves ms @ List.init (List.length ms) (fun i -> drop_nth ms i)
    in
    match
      List.find_opt
        (fun c -> c <> [] && List.length c < List.length ms && still_bug c)
        candidates
    with
    | Some smaller -> go smaller
    | None -> ms
  in
  if List.length ms <= 1 then ms else go ms

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

type round_result = {
  rr_round : int;
  rr_op : mutator;
  rr_muts : mutation list;  (** full mutation chain of this mutant *)
  rr_events : Trace.event list;  (** the mutant stream itself *)
  rr_verdict : verdict;
  rr_new_keys : int;  (** novel coverage keys this mutant contributed *)
  rr_minimized : mutation list option;  (** for bugs, the minimal chain *)
}

type report = {
  fz_rounds : round_result list;
  fz_mutants_run : int;
  fz_survived : int;
  fz_clean_aborts : int;
  fz_bugs : int;
  fz_minimized_bugs : int;
  fz_hangs : int;
  fz_mutator_fired : (mutator * int) list;
  fz_corpus_kept : int;  (** mutants added to the corpus this campaign *)
  fz_coverage : string list;  (** full coverage key set, sorted *)
}

(* Mutation chains deeper than this restart from the base trace: the
   interesting structure lives in small combinations, and bounded
   chains keep minimization cheap. *)
let max_chain = 4

(* How many sites the proposer tries per mutator class before falling
   back to the next class in rotation. *)
let proposal_attempts = 8

let run_campaign ~(base : Trace.event list) ~seed ~rounds ?(minimize_bugs = true)
    ?(seen = []) ~(execute : Trace.event list -> mutation list -> verdict) ()
    : report =
  let rng = Rng.create seed in
  let coverage = Hashtbl.create 1024 in
  List.iter (fun k -> Hashtbl.replace coverage k ()) seen;
  (* the base trace's own coverage is not novel *)
  List.iter (fun k -> Hashtbl.replace coverage k ()) (coverage_keys base);
  let pool = ref [ (base, []) ] in
  let fired = Hashtbl.create 8 in
  let rounds_acc = ref [] in
  let kept = ref 0 in
  let n_mutators = List.length all_mutators in
  for round = 0 to rounds - 1 do
    (* guaranteed operator coverage: round r leads with class r mod 6,
       scanning forward when that class has no legal site *)
    let parent_events, parent_muts =
      let candidates = !pool in
      let pe, pm = List.nth candidates (Rng.int rng (List.length candidates)) in
      if List.length pm >= max_chain then (base, []) else (pe, pm)
    in
    let proposal =
      let rec try_classes k =
        if k >= n_mutators then None
        else
          let op = List.nth all_mutators ((round + k) mod n_mutators) in
          let rec try_sites a =
            if a >= proposal_attempts then None
            else
              match propose rng op parent_events with
              | Some m -> (
                  match apply parent_events m with
                  | Some ev -> Some (op, m, ev)
                  | None -> try_sites (a + 1))
              | None -> None
          in
          match try_sites 0 with
          | Some r -> Some r
          | None -> try_classes (k + 1)
      in
      try_classes 0
    in
    match proposal with
    | None -> () (* a degenerate base with no legal site of any class *)
    | Some (op, m, mutant) ->
        let muts = parent_muts @ [ m ] in
        Hashtbl.replace fired op
          (1 + Option.value (Hashtbl.find_opt fired op) ~default:0);
        let verdict =
          match validate mutant with
          | p :: _ -> Faults.Abort.Clean_abort ("protocol: " ^ p)
          | [] -> execute mutant muts
        in
        let new_keys =
          List.filter
            (fun k -> not (Hashtbl.mem coverage k))
            (coverage_keys mutant)
        in
        List.iter (fun k -> Hashtbl.replace coverage k ()) new_keys;
        (* novel, non-buggy mutants join the corpus and become parents *)
        if new_keys <> [] && not (Faults.Abort.is_bug verdict) then begin
          incr kept;
          pool := !pool @ [ (mutant, muts) ]
        end;
        let minimized =
          if Faults.Abort.is_bug verdict && minimize_bugs then
            let still_bug ms =
              ms <> []
              &&
              let ev = apply_all base ms in
              validate ev = [] && Faults.Abort.is_bug (execute ev ms)
            in
            Some (minimize ~still_bug muts)
          else None
        in
        rounds_acc :=
          {
            rr_round = round;
            rr_op = op;
            rr_muts = muts;
            rr_events = mutant;
            rr_verdict = verdict;
            rr_new_keys = List.length new_keys;
            rr_minimized = minimized;
          }
          :: !rounds_acc
  done;
  let rounds_done = List.rev !rounds_acc in
  let count p = List.length (List.filter p rounds_done) in
  let is_hang r =
    match r.rr_verdict with
    | Faults.Abort.Bug m ->
        String.length m >= 4 && String.sub m 0 4 = "hang"
    | _ -> false
  in
  {
    fz_rounds = rounds_done;
    fz_mutants_run = List.length rounds_done;
    fz_survived = count (fun r -> r.rr_verdict = Faults.Abort.Survived);
    fz_clean_aborts =
      count (fun r ->
          match r.rr_verdict with Faults.Abort.Clean_abort _ -> true | _ -> false);
    fz_bugs = count (fun r -> Faults.Abort.is_bug r.rr_verdict);
    fz_minimized_bugs = count (fun r -> r.rr_minimized <> None);
    fz_hangs = count is_hang;
    fz_mutator_fired =
      List.map
        (fun op ->
          (op, Option.value (Hashtbl.find_opt fired op) ~default:0))
        all_mutators;
    fz_corpus_kept = !kept;
    fz_coverage =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) coverage []);
  }

(* ------------------------------------------------------------------ *)
(* Reproducer / corpus-entry trace files                               *)
(* ------------------------------------------------------------------ *)

(* A corpus entry or minimized reproducer is itself a [.vmshtrace]: the
   mutant stream as events, plus metadata naming the base recipe, the
   mutation chain, the base-prefix length the chain applies to, and
   the verdict — everything [vmsh trace replay] needs to rebuild the
   mutant from the recipe alone and re-execute the attack. *)

let mutant_scenario = "fuzz-mutant"

let mutant_meta ~(base_meta : (string * string) list)
    ~(muts : mutation list) ~(prefix : int) ~(verdict : verdict) :
    (string * string) list =
  let renamed =
    List.filter_map
      (fun (k, v) ->
        match k with
        | "scenario" -> Some ("base-scenario", v)
        | "digest" -> None
        | _ -> Some (k, v))
      base_meta
  in
  [ ("scenario", mutant_scenario) ]
  @ renamed
  @ [
      ("mutations", mutations_to_string muts);
      ("base-prefix", string_of_int prefix);
      ("verdict", Faults.Abort.to_string verdict);
      ("codec", Trace.codec_version);
    ]

type mutant_file = {
  mf_base_meta : (string * string) list;
      (** the base recipe's metadata, scenario key restored *)
  mf_muts : mutation list;
  mf_prefix : int;  (** base-prefix length the chain applies to *)
  mf_verdict : verdict;
}

let parse_mutant_meta (meta : (string * string) list) :
    (mutant_file, string) result =
  if List.assoc_opt "scenario" meta <> Some mutant_scenario then
    Error "not a fuzz-mutant trace"
  else
    match List.assoc_opt "base-scenario" meta with
    | None -> Error "fuzz-mutant trace has no base-scenario"
    | Some base_scenario -> (
        let base_meta =
          List.filter_map
            (fun (k, v) ->
              match k with
              | "scenario" | "mutations" | "base-prefix" | "verdict" | "codec"
                ->
                  None
              | "base-scenario" -> Some ("scenario", v)
              | _ -> Some (k, v))
            meta
        in
        ignore base_scenario;
        match
          Option.bind (List.assoc_opt "mutations" meta) mutations_of_string
        with
        | None -> Error "fuzz-mutant trace has an unparseable mutation chain"
        | Some muts -> (
            match
              Option.bind
                (List.assoc_opt "verdict" meta)
                Faults.Abort.of_string
            with
            | None -> Error "fuzz-mutant trace has an unparseable verdict"
            | Some verdict ->
                let prefix =
                  Option.value
                    (Option.bind
                       (List.assoc_opt "base-prefix" meta)
                       int_of_string_opt)
                    ~default:max_int
                in
                Ok
                  {
                    mf_base_meta = base_meta;
                    mf_muts = muts;
                    mf_prefix = prefix;
                    mf_verdict = verdict;
                  }))
