(** Typed error taxonomy for the attach pipeline.

    Replaces the stringly [Error "..."] / raised [Failure] mix that
    grew across Attach, Tracee and Loader. [to_string] reproduces the
    exact legacy CLI messages, so drivers that match on text keep
    working; [of_string] classifies a rendered message back into the
    taxonomy (inverse of [to_string] for every variant that carries
    enough structure to be recognised). *)

type t =
  | Attach_aborted of t  (** top-level attach failure wrapper *)
  | Guest_error of int  (** guest library status byte (>= 0x80) *)
  | Guest_fault of string  (** guest-side fault surfaced by the vCPU loop *)
  | Substrate of Hostos.Errno.t  (** raw errno from the host substrate *)
  | Injection of string * Hostos.Errno.t
      (** ptrace/syscall-injection failure: what * errno *)
  | Timeout of int  (** guest library never completed; last status *)
  | Invalid_config of string  (** rejected by [Attach.Config.validate] *)
  | Unsupported of string  (** host/hypervisor capability missing *)
  | Context of string * t  (** [what]: [inner] *)
  | Msg of string  (** untyped message (discovery, linking, ...) *)
  | Rollback_failed of t
      (** the guest-mutation journal could not be fully replayed; the
          guest may retain attach side effects *)
  | Deadline_exceeded of int
      (** a virtual-time watchdog expired after this many ns; wrap in
          [Context] to name the guarded phase *)
  | Baseline_stale of string
      (** a fork was requested from a baseline image that no longer
          matches the fleet configuration (kernel version, hypervisor
          profile, or file format drift) *)
  | Overlay_fault of string
      (** the per-page CoW overlay of a forked VM is inconsistent with
          its baseline (size mismatch, corrupt frozen region) *)
  | Guest_misbehavior of string
      (** the guest violated a protocol or memory contract mid-attach
          (TOCTOU mutation of scanned structures, out-of-bounds or
          looping virtqueue descriptors past the quarantine limit,
          scanned pages stolen by a balloon) — the attach rolls back
          rather than trusting the guest *)

exception Error of t
(** For internal paths that must raise (memory fabric, loader arena);
    [Attach.attach] converts it into [Error (Attach_aborted _)]. *)

val to_string : t -> string
(** Renders the same message strings the CLI printed before the
    taxonomy existed. *)

val of_string : string -> t
(** Best-effort inverse of [to_string]: recognises the attach-aborted
    prefix, guest status / timeout formats, errno-tailed contexts and
    injection messages; anything else becomes [Msg]. *)

val substrate : string -> Hostos.Errno.t -> t
(** [substrate what e] = [Context (what, Substrate e)]. *)

val fail : t -> 'a
(** [fail e] raises [Error e]. *)

val guest_status_note : int -> string
(** Human annotation for a guest library failure status (e.g.
    [" (block device registration)"]); [""] when unknown. *)
