module Host = Hostos.Host
module Ebpf = Hostos.Ebpf

let program_name = "vmsh_memslot_dump"

let encode_slots slots =
  let b = Bytes.create (4 + (24 * List.length slots)) in
  Bytes.set_int32_le b 0 (Int32.of_int (List.length slots));
  List.iteri
    (fun i (s : Hyp_mem.slot) ->
      let base = 4 + (24 * i) in
      Bytes.set_int64_le b base (Int64.of_int s.Hyp_mem.gpa);
      Bytes.set_int64_le b (base + 8) (Int64.of_int s.Hyp_mem.size);
      Bytes.set_int64_le b (base + 16) (Int64.of_int s.Hyp_mem.hva))
    slots;
  b

let decode_slots b =
  if Bytes.length b < 4 then None
  else
    let n = Int32.to_int (Bytes.get_int32_le b 0) in
    if n < 0 || Bytes.length b < 4 + (24 * n) then None
    else
      Some
        (List.init n (fun i ->
             let base = 4 + (24 * i) in
             {
               Hyp_mem.gpa = Int64.to_int (Bytes.get_int64_le b base);
               size = Int64.to_int (Bytes.get_int64_le b (base + 8));
               hva = Int64.to_int (Bytes.get_int64_le b (base + 16));
             }))

(* The "program": reads the memslot table from the kvm_vm_ioctl context
   and streams it into a perf buffer the attacher polls. [ring] plays
   the perf ring buffer; its insn_count reflects the small fixed-size
   loop of the real implementation. *)
let make_prog ring =
  {
    Ebpf.name = program_name;
    insn_count = 96;
    run =
      (fun ctx ->
        match ctx.Ebpf.kdata with
        | Kvm.Vm.Kvm_memslots slots ->
            let converted =
              List.map
                (fun (s : Kvm.Vm.memslot) ->
                  { Hyp_mem.gpa = s.Kvm.Vm.gpa; size = s.size; hva = s.hva })
                slots
            in
            let encoded = encode_slots converted in
            ctx.Ebpf.output <- Some encoded;
            ring := Some encoded
        | _ -> ());
  }

let discover tracee =
  let h = Tracee.host tracee in
  let vmsh = Tracee.vmsh_proc tracee in
  let ring = ref None in
  match Host.attach_ebpf h ~caller:vmsh ~hook:"kvm_vm_ioctl" (make_prog ring) with
  | Error e ->
      Error (Vmsh_error.Injection ("attaching eBPF program requires CAP_BPF", e))
  | Ok () ->
      (* Trigger: inject a harmless unknown VM ioctl — kvm_vm_ioctl (and
         so the hook) runs on entry regardless of the ioctl's result. *)
      ignore (Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee) ~code:0xAE00 ());
      Host.detach_ebpf h ~hook:"kvm_vm_ioctl" ~name:program_name;
      (match !ring with
      | None -> Error (Vmsh_error.Msg "eBPF program produced no memslot dump")
      | Some b -> (
          match decode_slots b with
          | Some slots when slots <> [] -> Ok slots
          | Some _ -> Error (Vmsh_error.Msg "memslot dump is empty")
          | None -> Error (Vmsh_error.Msg "malformed memslot dump")))
