(** The binary analysis that recovers the guest kernel's layout
    (paper §4.2).

    Starting from nothing but CR3, the analyzer: walks the guest's page
    tables to find the lowest mapping inside the fixed KASLR region (the
    kernel image base); copies the image out through the hypervisor;
    locates the [.ksymtab_strings] section by scanning for a region of
    NUL-separated names around a known anchor symbol; then searches for
    the [.ksymtab] entry table by trying all known layout epochs *in
    parallel* and keeping the candidate whose entries consistently
    reference string starts (the paper's consistency check); finally
    reads [linux_banner] to learn the kernel version. *)

(** Image-relative locations of the two scanned sections — re-read at
    use time to catch a guest that mutates them after the scan. *)
type witness = {
  w_table_off : int;  (** ksymtab table start, image offset *)
  w_strings_lo : int;  (** strings region, image offsets [lo, hi) *)
  w_strings_hi : int;
}

type analysis = {
  kernel_base : int;  (** virtual base chosen by KASLR *)
  image_len : int;  (** contiguously mapped bytes copied for analysis *)
  layout : Linux_guest.Kernel_version.ksymtab_layout;
  symbols : (string * int) list;  (** exported name -> virtual address *)
  version : Linux_guest.Kernel_version.t;
  witness : witness;
}

val anchor_symbol : string
(** The symbol name whose presence anchors the strings-section scan. *)

val find_kernel_base : Hyp_mem.t -> cr3:int -> (int * int, string) result
(** [(base, mapped_len)] of the kernel image within the KASLR range. *)

(** Memoization across attaches to identically-built kernels, keyed by
    the build-id note found in the image's first page. A hit skips the
    full image copy and both section scans (only the page-table walk
    and an offset rebase remain); counters [symcache.hits] /
    [symcache.misses] are bumped on the analyzed host's registry when a
    cache is supplied. *)
module Cache : sig
  type t

  val create : unit -> t
end

val analyze : ?cache:Cache.t -> Hyp_mem.t -> cr3:int -> (analysis, string) result
(** Without [cache] (the default) behaviour is exactly the uncached
    analysis — byte-identical traces for existing single-attach runs. *)

val resolve : analysis -> string -> int option
(** Look up an exported symbol's address. *)

val revalidate :
  ?names:string list -> Hyp_mem.t -> cr3:int -> analysis ->
  (unit, string) result
(** Use-time TOCTOU check: bounds-recheck the witness, re-read the
    ksymtab table and strings region from the live guest, re-derive the
    live (name, value) pairs with the analysis's layout and compare by
    name against {!analysis.symbols}. [?names] restricts the check to
    the symbols the caller is about to rely on — the right scope for a
    cache-hit analysis, where filler exports and table order
    legitimately differ between VMs of one build while the used
    symbols' layout offsets do not. [Error] names the first divergence:
    a symbol that moved or vanished, or scanned pages the guest
    ballooned away. Pure reads. *)
