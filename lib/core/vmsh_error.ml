module Errno = Hostos.Errno

type t =
  | Attach_aborted of t
  | Guest_error of int
  | Guest_fault of string
  | Substrate of Errno.t
  | Injection of string * Errno.t
  | Timeout of int
  | Invalid_config of string
  | Unsupported of string
  | Context of string * t
  | Msg of string
  | Rollback_failed of t
  | Deadline_exceeded of int
  | Baseline_stale of string
  | Overlay_fault of string
  | Guest_misbehavior of string

exception Error of t

let fail e = raise (Error e)
let substrate what e = Context (what, Substrate e)

let guest_status_note s =
  match s with
  | s when s = Klib_builder.status_err_console -> " (console device registration)"
  | s when s = Klib_builder.status_err_blk -> " (block device registration)"
  | s when s = Klib_builder.status_err_net -> " (net device registration)"
  | s when s = Klib_builder.status_err_ninep -> " (9p device registration)"
  | s when s = Klib_builder.status_err_open -> " (opening exec file)"
  | s when s = Klib_builder.status_err_write -> " (writing program)"
  | s when s = Klib_builder.status_err_spawn -> " (spawning process)"
  | _ -> ""

let rec to_string = function
  | Attach_aborted e -> "attach aborted: " ^ to_string e
  | Guest_error s ->
      Printf.sprintf "guest library failed with status 0x%x%s" s
        (guest_status_note s)
  | Guest_fault m -> "guest error: " ^ m
  | Substrate e -> Errno.show e
  | Injection (what, e) -> what ^ ": errno " ^ Errno.show e
  | Timeout s -> Printf.sprintf "guest library did not complete (status %d)" s
  | Invalid_config m -> "invalid attach config: " ^ m
  | Unsupported m -> m
  | Context (what, e) -> what ^ ": " ^ to_string e
  | Msg m -> m
  | Rollback_failed e -> "rollback failed: " ^ to_string e
  | Deadline_exceeded ns ->
      Printf.sprintf "virtual-time deadline exceeded after %d ns" ns
  | Baseline_stale m -> "stale baseline image: " ^ m
  | Overlay_fault m -> "overlay fault: " ^ m
  | Guest_misbehavior m -> "guest misbehavior: " ^ m

let all_errnos =
  Errno.
    [
      EPERM; ENOENT; ESRCH; EINTR; EIO; EBADF; EAGAIN; ENOMEM; EACCES; EFAULT;
      EBUSY; EEXIST; ENODEV; ENOTDIR; EISDIR; EINVAL; ENOSPC; ERANGE; ENOSYS;
      ENOTEMPTY; EDQUOT;
    ]

let errno_of_show s = List.find_opt (fun e -> Errno.show e = s) all_errnos

let drop_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

(* "what: tail" split on the first ": " occurrence; nested contexts
   then peel outside-in by recursing on the tail. *)
let split_first_colon s =
  let rec find i =
    if i + 1 >= String.length s then None
    else if s.[i] = ':' && s.[i + 1] = ' ' then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
  | None -> None

let rec of_string s =
  match drop_prefix ~prefix:"attach aborted: " s with
  | Some rest -> Attach_aborted (of_string rest)
  | None -> (
      match drop_prefix ~prefix:"rollback failed: " s with
      | Some rest -> Rollback_failed (of_string rest)
      | None -> (
      match
        Scanf.sscanf_opt s "virtual-time deadline exceeded after %d ns"
          (fun v -> v)
      with
      | Some ns -> Deadline_exceeded ns
      | None -> (
      match drop_prefix ~prefix:"stale baseline image: " s with
      | Some rest -> Baseline_stale rest
      | None -> (
      match drop_prefix ~prefix:"overlay fault: " s with
      | Some rest -> Overlay_fault rest
      | None -> (
      match drop_prefix ~prefix:"guest misbehavior: " s with
      | Some rest -> Guest_misbehavior rest
      | None -> (
      match drop_prefix ~prefix:"guest error: " s with
      | Some rest -> Guest_fault rest
      | None -> (
          match drop_prefix ~prefix:"invalid attach config: " s with
          | Some rest -> Invalid_config rest
          | None -> (
              match drop_prefix ~prefix:"guest library failed with status 0x" s with
              | Some rest -> (
                  match Scanf.sscanf_opt rest "%x" (fun v -> v) with
                  | Some v -> Guest_error v
                  | None -> Msg s)
              | None -> (
                  match
                    Scanf.sscanf_opt s
                      "guest library did not complete (status %d)" (fun v -> v)
                  with
                  | Some v -> Timeout v
                  | None -> (
                      match errno_of_show s with
                      | Some e -> Substrate e
                      | None -> (
                          match split_first_colon s with
                          | Some (what, tail) -> (
                              match drop_prefix ~prefix:"errno " tail with
                              | Some en -> (
                                  match errno_of_show en with
                                  | Some e -> Injection (what, e)
                                  | None -> Msg s)
                              | None -> (
                                  (* recurse on the tail so nested
                                     contexts reconstruct outside-in;
                                     an unrecognised tail keeps the
                                     whole string as one Msg *)
                                  match of_string tail with
                                  | Msg _ -> Msg s
                                  | inner -> Context (what, inner)))
                          | None -> Msg s)))))))))))
