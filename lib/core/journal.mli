(** The guest-mutation journal: attach's undo log.

    Every side effect the attach pipeline performs on guest or
    hypervisor state is recorded as a named undo closure; {!replay}
    runs them newest-first, restoring the guest in reverse mutation
    order (DESIGN.md §4f tabulates mutation → undo entry → replay
    order). {!Attach.detach} and every abort path drive it.

    The log is kept small by {!note_owned} (writes wholly inside
    overlay-owned ranges are undone wholesale by the range's own
    teardown entry) and frozen by {!seal} once the attach commits:
    post-seal device writes only accumulate {!late_writes} intervals
    for the snapshot oracle's exclusion set. *)

type t

val create : unit -> t

val record : t -> what:string -> (unit -> unit) -> unit
(** Push an undo entry (no-op once sealed). [what] names the mutation
    in rollback-failure reports and {!labels}. The closure should raise
    [Vmsh_error.Error] on failure. *)

val length : t -> int
val labels : t -> string list
(** Entry names, newest first (= replay order). *)

val seal : t -> unit
(** Commit the transaction: stop recording undo entries; subsequent
    {!note_late_write}s accumulate instead. *)

val sealed : t -> bool

val note_owned : t -> gpa:int -> len:int -> unit
(** Mark a guest-physical range the overlay allocated for itself; byte
    writes wholly inside it are exempt from journaling. *)

val owns : t -> gpa:int -> len:int -> bool

val note_late_write : t -> gpa:int -> len:int -> unit
(** Record a post-seal device write for the oracle's exclusion set. *)

val late_writes : t -> (int * int) list

val replay : ?metrics:Observe.Metrics.t -> t -> (unit, Vmsh_error.t) result
(** Run every undo newest-first and consume the log (an entry never
    replays twice). A failing undo does not stop the replay — later
    (older) entries still restore what they can — but the first failure
    is returned, wrapped in a [Context] naming the entry. When [metrics]
    is given and the log was non-empty, bumps [rollback.replays] and
    [rollback.entries] (registered lazily so fault-free runs stay
    byte-identical). *)
