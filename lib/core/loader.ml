module Syscall = Hostos.Syscall
module Layout = X86.Layout
module PT = X86.Page_table

let src = Logs.Src.create "vmsh.loader" ~doc:"VMSH sideloader"

module Log = (val Logs.src_log src : Logs.LOG)

type loaded = {
  va_base : int;
  gpa_base : int;
  entry_va : int;
  status_gpa : int;
  blob_va : int;
  saved_regs : X86.Regs.t;
}

let memslot_base_index = 61

(* Each attach claims a fresh slot: replacing a previous attach's slot
   would unback guest memory that still holds that attach's library and
   the page-table pages it allocated. *)
let next_memslot = ref memslot_base_index

let memslot_index = memslot_base_index
let pt_arena_pages = 16

let ( let* ) = Result.bind

let page_align n = (n + Layout.page_size - 1) land lnot (Layout.page_size - 1)

(* Undo entries for the mutations [load] performs in the hypervisor /
   guest. A failing undo raises so [Journal.replay] can report it as the
   rollback failure. *)
let record_undo mem ~what f =
  match Hyp_mem.journal mem with
  | Some j ->
      Journal.record j ~what (fun () ->
          match f () with Ok _ -> () | Error e -> Vmsh_error.fail e)
  | None -> ()

let load ~tracee ~mem ~analysis ~image ~layout =
  let region_len =
    page_align layout.Klib_builder.total_len + (pt_arena_pages * Layout.page_size)
  in
  (* guest-physical placement: top of the existing allocations, rounded
     up generously so nothing the hypervisor adds later collides *)
  let gpa_base = max (page_align (Hyp_mem.top_of_guest_phys mem)) 0x1000_0000 in
  (* 1. fresh memory in the hypervisor *)
  let* hva = Tracee.inject tracee ~nr:Syscall.Nr.mmap ~args:[| 0; region_len |] in
  record_undo mem ~what:"klib region mmap" (fun () ->
      Tracee.inject tracee ~nr:Syscall.Nr.munmap ~args:[| hva; region_len |]);
  (* Everything we write inside our own region needs no byte journal —
     the memslot-removal undo tears the whole range down. Only PTE links
     planted in pre-existing guest page-table pages get byte entries. *)
  (match Hyp_mem.journal mem with
  | Some j -> Journal.note_owned j ~gpa:gpa_base ~len:region_len
  | None -> ());
  (* 2. register it as a memslot *)
  let slot_index = !next_memslot in
  incr next_memslot;
  let memslot_arg ~size =
    let b = Bytes.make Kvm.Api.memory_region_size '\000' in
    Bytes.set_int32_le b 0 (Int32.of_int slot_index);
    Bytes.set_int64_le b 8 (Int64.of_int gpa_base);
    Bytes.set_int64_le b 16 (Int64.of_int size);
    Bytes.set_int64_le b 24 (Int64.of_int hva);
    b
  in
  let* _ =
    Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
      ~code:Kvm.Api.set_user_memory_region ~arg:(memslot_arg ~size:region_len)
      ()
  in
  Hyp_mem.add_slot mem { Hyp_mem.gpa = gpa_base; size = region_len; hva };
  record_undo mem ~what:"vmsh memslot" (fun () ->
      (* size 0 deletes the slot in KVM; then forget our remote view *)
      let r =
        Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
          ~code:Kvm.Api.set_user_memory_region ~arg:(memslot_arg ~size:0) ()
      in
      Hyp_mem.remove_slot mem ~gpa:gpa_base;
      r);
  (* 3. link the image for its final virtual address *)
  let va_base =
    analysis.Symbol_analysis.kernel_base + analysis.Symbol_analysis.image_len
  in
  let* text, entry_va =
    match
      Elfkit.Elf.link image ~base:va_base
        ~resolve:(fun name -> Symbol_analysis.resolve analysis name)
    with
    | Ok v -> Ok v
    | Error e -> Error (Vmsh_error.Context ("linking guest library", Vmsh_error.Msg e))
  in
  (* 4. copy into the new guest-physical region *)
  Hyp_mem.write_phys mem ~gpa:gpa_base text;
  (* 5. map into guest virtual memory after the kernel image, using
     page-table pages from our own region's arena *)
  let* regs =
    match Tracee.get_vcpu_regs tracee (List.hd (Tracee.vcpus tracee)) with
    | Ok r -> Ok r
    | Error e -> Error (Vmsh_error.Context ("reading vCPU registers", e))
  in
  let arena_base = gpa_base + page_align layout.Klib_builder.total_len in
  let arena_next = ref arena_base in
  let alloc () =
    let pa = !arena_next in
    arena_next := pa + Layout.page_size;
    if !arena_next > gpa_base + region_len then
      Vmsh_error.fail (Vmsh_error.Msg "vmsh loader: page-table arena exhausted");
    Hyp_mem.write_phys mem ~gpa:pa (Bytes.make Layout.page_size '\000');
    pa
  in
  (match
     PT.map_range (Hyp_mem.pt_access mem) ~alloc ~root:regs.X86.Regs.cr3
       ~virt:va_base ~phys:gpa_base
       ~len:(page_align layout.Klib_builder.total_len)
       ~flags:PT.Flags.(present lor writable)
   with
  | () -> ()
  | exception Failure e -> Vmsh_error.fail (Vmsh_error.Msg e));
  (* 6. stash the interrupted context where the trampoline finds it *)
  let blob_gpa = gpa_base + layout.Klib_builder.blob_off in
  Hyp_mem.write_phys mem ~gpa:blob_gpa (Kvm.Api.regs_to_bytes regs);
  Ok
    {
      va_base;
      gpa_base;
      entry_va;
      status_gpa = gpa_base + layout.Klib_builder.status_off;
      blob_va = va_base + layout.Klib_builder.blob_off;
      saved_regs = regs;
    }

let redirect ~tracee ~mem loaded =
  let regs = X86.Regs.copy loaded.saved_regs in
  regs.X86.Regs.rip <- loaded.entry_va;
  regs.rdi <- loaded.blob_va;
  match Tracee.set_vcpu_regs tracee (List.hd (Tracee.vcpus tracee)) regs with
  | Ok () ->
      record_undo mem ~what:"vCPU redirect" (fun () ->
          Tracee.set_vcpu_regs tracee
            (List.hd (Tracee.vcpus tracee))
            loaded.saved_regs);
      Ok ()
  | Error e -> Error (Vmsh_error.Context ("redirecting vCPU", e))

let poll_status ~mem loaded = Hyp_mem.read_phys_u64 mem loaded.status_gpa
