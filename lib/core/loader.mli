(** Side-loading the kernel library into the guest (paper §4.1–4.2).

    Allocates fresh guest-physical memory at the top of the guest
    address space (hypervisors hand out physical addresses from low to
    high, so the top is collision-free), by injecting an mmap plus a
    KVM_SET_USER_MEMORY_REGION into the hypervisor. Links the ELF image
    against the addresses the symbol analysis recovered, writes it into
    the new region, maps it into guest *virtual* memory right after the
    kernel image by editing the live page tables, saves the interrupted
    vCPU context into the library's status page, and finally redirects
    RIP to the trampoline. *)

type loaded = {
  va_base : int;  (** where the library landed in guest virtual memory *)
  gpa_base : int;
  entry_va : int;
  status_gpa : int;
  blob_va : int;  (** saved-registers blob the trampoline restores *)
  saved_regs : X86.Regs.t;  (** the interrupted context *)
}

val memslot_index : int
(** The first KVM memslot number VMSH claims; every further attach uses
    the next free index (replacing a slot would unback a previous
    attach's live region). *)

val load :
  tracee:Tracee.t -> mem:Hyp_mem.t ->
  analysis:Symbol_analysis.analysis ->
  image:Elfkit.Elf.t -> layout:Klib_builder.layout ->
  (loaded, Vmsh_error.t) result
(** Perform every step above except the final RIP redirect. *)

val redirect :
  tracee:Tracee.t -> mem:Hyp_mem.t -> loaded -> (unit, Vmsh_error.t) result
(** Point vCPU 0 at the library entry (with RDI = saved-context blob).
    Records the register restore on [mem]'s journal so detach/rollback
    resumes the interrupted context. *)

val poll_status : mem:Hyp_mem.t -> loaded -> int
(** Current value of the library's status word. *)
