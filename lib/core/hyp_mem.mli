(** VMSH's window into guest memory, through the hypervisor process.

    Built from the memslot table recovered by the eBPF program: guest-
    physical addresses resolve to hypervisor-virtual addresses, which
    are then read/written with process_vm_readv / process_vm_writev.
    Two copy strategies are supported — the optimised bulk path the
    paper ships, and the 8-bytes-at-a-time fallback used before that
    optimisation ("doubles the performance", §5) — selectable for the
    ablation benchmark. *)

type slot = { gpa : int; size : int; hva : int }

type copy_mode =
  | Bulk
      (** one process_vm call per transfer, directly between the
          hypervisor and the device file (the paper's optimisation) *)
  | Chunked_4k
      (** the pre-optimisation path: pread/pwrite through a local bounce
          buffer, 4 KiB at a time — an extra syscall and an extra copy
          per page ("doubles the performance in Phoronix", §5) *)
  | Peek_u64
      (** PTRACE_PEEKDATA-style: one call per 8 bytes (the naive
          fallback a debugger-API-only implementation would use) *)

type t

val create :
  Hostos.Host.t -> vmsh:Hostos.Proc.t -> hypervisor_pid:int ->
  slots:slot list -> ?mode:copy_mode -> unit -> t

val host : t -> Hostos.Host.t
val slots : t -> slot list

(** [add_slot] records a memslot VMSH itself registered (its own
    guest-physical allocation at the top of the address space). *)
val add_slot : t -> slot -> unit

val remove_slot : t -> gpa:int -> unit
(** Forget the slot based at [gpa] (rollback of [add_slot]). *)

val mode : t -> copy_mode
val set_mode : t -> copy_mode -> unit

val set_journal : t -> Journal.t option -> unit
(** Attach a guest-mutation journal: every subsequent {!write_phys}
    first records the overwritten bytes as an undo entry (or, once the
    journal is sealed, a late-write interval). [None] detaches it —
    rollback itself writes through the raw path. *)

val journal : t -> Journal.t option

val overlay_stats : t -> Hostos.Mem.cow_stats
(** Copy-on-write overlay occupancy of the hypervisor process this
    fabric writes into — the forked clone's private memory footprint
    over its shared baseline. All zeros for a cold-booted VMM (or an
    exited process). *)

val gpa_to_hva : t -> int -> int option

val top_of_guest_phys : t -> int
(** One past the highest guest-physical address backed by a slot — where
    VMSH places its own memory ("hypervisors allocate from low to
    high", §4.2). *)

val backed : t -> gpa:int -> len:int -> bool
(** Whether the whole guest-physical range resolves to memslots — the
    descriptor bounds check, free of side effects (no syscalls, no
    raises). *)

val read_phys : t -> gpa:int -> len:int -> bytes
(** Raises [Failure] on unbacked addresses or access errors. *)

val write_phys : t -> gpa:int -> bytes -> unit
val read_phys_u64 : t -> int -> int
val write_phys_u64 : t -> int -> int -> unit

val pt_access : t -> X86.Page_table.access
(** Page-table accessors over this remote view (what the sideloader's
    CR3 walk uses). *)

val read_virt : t -> cr3:int -> va:int -> len:int -> bytes option
(** Guest-virtual read: walk the tables, then read each page. [None] if
    any page is unmapped. *)

val read_hva : t -> hva:int -> len:int -> bytes
(** Raw hypervisor-virtual read (e.g. the kvm_run pages). *)

val write_hva : t -> hva:int -> bytes -> unit
