(** The traced hypervisor: KVM descriptor discovery and syscall
    injection (paper §4.1, §5 "Sideloader").

    Discovery walks /proc/<pid>/fd and resolves the symlink labels to
    find the descriptors that belong to KVM, and /proc/<pid>/maps to
    find the mmapped kvm_run page of each vCPU. Injection prepares the
    x86-64 syscall ABI register state in a stopped thread, steps one
    syscall in the tracee's context (so its seccomp filters apply —
    which is exactly what breaks stock Firecracker), and restores. *)

type vcpu_handle = { index : int; fd_num : int; run_hva : int }

type t

val pid : t -> int
val vm_fd : t -> int
val vcpus : t -> vcpu_handle list
val vmsh_proc : t -> Hostos.Proc.t
val host : t -> Hostos.Host.t

val attach :
  ?seccomp_heuristic:bool -> Hostos.Host.t -> vmsh:Hostos.Proc.t ->
  pid:int -> (t, Vmsh_error.t) result
(** ptrace-attach, PTRACE_INTERRUPT, discover the KVM fds and map a
    scratch page in the tracee for argument structs. With
    [seccomp_heuristic] the probing strategy of {!set_seccomp_heuristic}
    applies from the very first injected syscall. *)

val detach : t -> unit

val set_seccomp_heuristic : t -> bool -> unit
(** Enable the thread-probing heuristic the paper lists as future work:
    when an injected syscall is killed by a thread's seccomp filter
    (EPERM), retry it on each other thread of the tracee — Firecracker's
    API thread carries a laxer filter than its vCPU threads, so
    injection can succeed without disabling seccomp. *)

val inject : t -> nr:int -> args:int array -> (int, Vmsh_error.t) result
(** Run one syscall in the tracee; negative returns are surfaced as
    errors with the errno name. With the seccomp heuristic enabled,
    EPERM results are retried on every thread before giving up. *)

val scratch : t -> int
(** Hypervisor-virtual address of the injected scratch page. *)

val write_scratch : t -> ?off:int -> bytes -> int
(** Copy bytes into the scratch page; returns their tracee address. *)

val read_scratch : t -> ?off:int -> int -> bytes
(** [read_scratch t len] copies [len] bytes back out of the scratch
    page. *)

val inject_ioctl :
  t -> fd:int -> code:int -> ?arg:bytes -> unit -> (int, Vmsh_error.t) result
(** Write [arg] (if any) to scratch and inject ioctl(fd, code, scratch). *)

val get_vcpu_regs : t -> vcpu_handle -> (X86.Regs.t, Vmsh_error.t) result
(** Injected KVM_GET_REGS + remote read of the result struct. *)

val set_vcpu_regs : t -> vcpu_handle -> X86.Regs.t -> (unit, Vmsh_error.t) result

val hook_syscalls :
  t -> on_entry:(Hostos.Proc.thread -> unit) ->
  on_exit:(Hostos.Proc.thread -> Hostos.Proc.exit_action) -> unit

val unhook_syscalls : t -> unit

val connect_back :
  ?on_socket:(int -> unit) -> t -> path:string -> (int, Vmsh_error.t) result
(** Inject socket() + connect() towards [path]; returns the tracee-side
    descriptor. [on_socket] fires between the two injections, as soon as
    the descriptor exists — the attach journal uses it to record the
    close-undo before the connect()'s own crash point can abort. *)

val send_fds_back : t -> sock_fd:int -> int list -> (unit, Vmsh_error.t) result
(** Inject sendmsg(SCM_RIGHTS) passing tracee descriptors to whoever
    accepted the connection (i.e. VMSH itself). *)
