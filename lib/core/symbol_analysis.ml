module Layout = X86.Layout
module PT = X86.Page_table
module KV = Linux_guest.Kernel_version

type analysis = {
  kernel_base : int;
  image_len : int;
  layout : KV.ksymtab_layout;
  symbols : (string * int) list;
  version : KV.t;
}

let anchor_symbol = "printk"
let max_image = 4 * 1024 * 1024
let max_name_len = 64

let ( let* ) = Result.bind

let find_kernel_base mem ~cr3 =
  let acc = Hyp_mem.pt_access mem in
  let base = ref max_int in
  PT.iter_present acc ~root:cr3 ~f:(fun ~virt ~phys:_ ~huge:_ ->
      if virt >= Layout.kaslr_base && virt < Layout.kaslr_base + Layout.kaslr_size
      then base := min !base virt);
  if !base = max_int then
    Error "no mappings inside the KASLR range: cannot locate the kernel"
  else begin
    (* contiguous extent *)
    let rec extent len =
      if len >= max_image then len
      else
        match PT.translate acc ~root:cr3 (!base + len) with
        | Some _ -> extent (len + Layout.page_size)
        | None -> len
    in
    Ok (!base, extent 0)
  end

let printable c =
  let v = Char.code c in
  v >= 32 && v <= 126

(* Expand a strings region around [pos]: the maximal span of NUL-
   separated printable names (each at most [max_name_len] bytes). *)
let expand_strings_region img pos =
  let n = Bytes.length img in
  let ok c = c = '\000' || printable c in
  (* walk left while structure holds *)
  let rec left i run =
    if i < 0 then 0
    else
      let c = Bytes.get img i in
      if not (ok c) then i + 1
      else if printable c && run >= max_name_len then i + 1
      else left (i - 1) (if printable c then run + 1 else 0)
  in
  let rec right i run =
    if i >= n then n
    else
      let c = Bytes.get img i in
      if not (ok c) then i
      else if printable c && run >= max_name_len then i
      else right (i + 1) (if printable c then run + 1 else 0)
  in
  (left pos 0, right pos 0)

let find_strings_region img =
  (* search for "\000printk\000" (or the anchor at position 0) *)
  let pat = "\000" ^ anchor_symbol ^ "\000" in
  let s = Bytes.unsafe_to_string img in
  let rec find_from i acc =
    if i >= String.length s then List.rev acc
    else
      match String.index_from_opt s i '\000' with
      | None -> List.rev acc
      | Some j ->
          if
            j + String.length pat <= String.length s
            && String.sub s j (String.length pat) = pat
          then find_from (j + 1) ((j + 1) :: acc)
          else find_from (j + 1) acc
  in
  match find_from 0 [] with
  | [] -> Error (Printf.sprintf "anchor symbol %S not found in kernel image" anchor_symbol)
  | candidates ->
      (* keep the largest region among candidates *)
      let regions = List.map (fun pos -> expand_strings_region img pos) candidates in
      let best =
        List.fold_left
          (fun (blo, bhi) (lo, hi) -> if hi - lo > bhi - blo then (lo, hi) else (blo, bhi))
          (0, 0) regions
      in
      if snd best - fst best < 16 then Error "strings region too small"
      else Ok best

(* Is [off] the start of a plausible symbol name inside the region? *)
let string_start img (lo, hi) off =
  off >= lo && off < hi
  && (off = lo || Bytes.get img (off - 1) = '\000')
  && printable (Bytes.get img off)

let read_cstr img off =
  let n = Bytes.length img in
  let rec go i = if i >= n || Bytes.get img i = '\000' then i else go (i + 1) in
  Bytes.sub_string img off (go off - off)

(* Try to parse a ksymtab in the given layout at image offset [off];
   returns the list of (name, value) entries of the longest valid run. *)
let entries_at img ~kbase ~region layout off =
  let n = Bytes.length img in
  let in_kernel va = va >= kbase && va < kbase + n in
  let esz = Linux_guest.Ksymtab.entry_size layout in
  let i64 o = Int64.to_int (Bytes.get_int64_le img o) in
  let i32 o = Int32.to_int (Bytes.get_int32_le img o) in
  let rec run o acc =
    if o + esz > n then List.rev acc
    else
      let parsed =
        match layout with
        | KV.Absolute_value_first ->
            let v =
              try Some (i64 o, i64 (o + 8)) with Invalid_argument _ -> None
            in
            Option.map (fun (value, name_va) -> (value, name_va)) v
        | KV.Absolute_name_first -> (
            try Some (i64 (o + 8), i64 o) with Invalid_argument _ -> None)
        | KV.Prel32 ->
            let value = kbase + o + i32 o in
            let name_va = kbase + o + 4 + i32 (o + 4) in
            Some (value, name_va)
      in
      match parsed with
      | None -> List.rev acc
      | Some (value, name_va) ->
          let name_off = name_va - kbase in
          if
            in_kernel value
            && string_start img region name_off
          then run (o + esz) ((read_cstr img name_off, value) :: acc)
          else List.rev acc
  in
  run off []

let find_table img ~kbase ~region layout =
  let esz = Linux_guest.Ksymtab.entry_size layout in
  let n = Bytes.length img in
  let best = ref [] in
  let o = ref 0 in
  while !o + esz <= n do
    let entries = entries_at img ~kbase ~region layout !o in
    if List.length entries > List.length !best then begin
      best := entries;
      (* skip past this run to avoid re-parsing suffixes *)
      o := !o + (List.length entries * esz)
    end
    else o := !o + 8
  done;
  !best

(* --- build-id memoization ---

   A kernel *build* is identified by the note the image carries (the
   stand-in for NT_GNU_BUILD_ID); two VMs booted from the same build
   differ only in their KASLR base. The cache stores base-relative
   symbol offsets, so a hit needs just the page-table walk, one page of
   the image (for the note) and an offset rebase — skipping the full
   image copy and both section scans. *)

let buildid_magic = "VMSHBID0"
let buildid_hex_len = 32

module Cache = struct
  type entry = {
    c_image_len : int;
    c_layout : KV.ksymtab_layout;
    c_sym_offsets : (string * int) list;  (* name -> va - kernel_base *)
    c_version : KV.t;
  }

  type t = (string, entry) Hashtbl.t

  let create () : t = Hashtbl.create 7
end

(* Locate the build-id note in the image's first page. Scanned for, not
   assumed at a fixed offset — the analyzer discovers everything. *)
let find_build_id page =
  let s = Bytes.unsafe_to_string page in
  let m = String.length buildid_magic in
  let rec go i =
    if i + m + buildid_hex_len > String.length s then None
    else if String.sub s i m = buildid_magic then
      Some (String.sub s (i + m) buildid_hex_len)
    else go (i + 1)
  in
  go 0

let bump mem name =
  let obs = (Hyp_mem.host mem).Hostos.Host.observe in
  Observe.Metrics.incr (Observe.Metrics.counter (Observe.metrics obs) name)

let analyze_full ?cache ~build_id mem ~cr3 ~kernel_base ~image_len =
    match Hyp_mem.read_virt mem ~cr3 ~va:kernel_base ~len:image_len with
    | None -> Error "kernel image pages vanished during analysis"
    | Some img ->
        (* the strings scan and the per-layout table searches each walk
           the copied image once — charge those passes to virtual time
           (the measurable cost a cache hit saves) *)
        Hostos.Clock.copy_bytes (Hyp_mem.host mem).Hostos.Host.clock
          (4 * image_len);
        let* region = find_strings_region img in
        (* all layout variants in parallel; the consistency checks keep
           only entries whose name pointers land exactly on string
           starts, so the wrong layouts produce shorter (usually empty)
           runs *)
        let candidates =
          List.map
            (fun layout ->
              (layout, find_table img ~kbase:kernel_base ~region layout))
            [ KV.Absolute_value_first; KV.Absolute_name_first; KV.Prel32 ]
        in
        let layout, entries =
          List.fold_left
            (fun (bl, be) (l, e) ->
              if List.length e > List.length be then (l, e) else (bl, be))
            (KV.Prel32, []) candidates
        in
        if List.length entries < 8 then
          Error "no consistent ksymtab candidate found in any known layout"
        else
          let symbols = entries in
          let* version =
            match List.assoc_opt "linux_banner" symbols with
            | None -> Error "linux_banner not exported; cannot identify version"
            | Some va -> (
                match Hyp_mem.read_virt mem ~cr3 ~va ~len:128 with
                | None -> Error "cannot read linux_banner"
                | Some b -> (
                    let s = Bytes.to_string b in
                    let s =
                      match String.index_opt s '\000' with
                      | Some i -> String.sub s 0 i
                      | None -> s
                    in
                    match KV.of_banner s with
                    | Some v -> Ok v
                    | None -> Error ("unrecognised banner: " ^ s)))
          in
          begin
            (match (cache, build_id) with
            | Some c, Some bid ->
                Hashtbl.replace c bid
                  {
                    Cache.c_image_len = image_len;
                    c_layout = layout;
                    c_sym_offsets =
                      List.map (fun (n, va) -> (n, va - kernel_base)) symbols;
                    c_version = version;
                  }
            | _ -> ());
            Ok { kernel_base; image_len; layout; symbols; version }
          end

let analyze ?cache mem ~cr3 =
  let* kernel_base, image_len =
    Observe.span
      (Hyp_mem.host mem).Hostos.Host.observe
      ~name:"page-table-walk"
      (fun () -> find_kernel_base mem ~cr3)
  in
  if image_len = 0 then Error "kernel mapping has zero extent"
  else
    let build_id =
      match cache with
      | None -> None
      | Some _ ->
          Option.bind
            (Hyp_mem.read_virt mem ~cr3 ~va:kernel_base
               ~len:(min image_len Layout.page_size))
            find_build_id
    in
    let cached =
      match (cache, build_id) with
      | Some c, Some bid -> Hashtbl.find_opt c bid
      | _ -> None
    in
    match cached with
    | Some e ->
        (* cache hit: rebase the stored offsets to this VM's KASLR
           base; no image copy, no scans *)
        bump mem "symcache.hits";
        Observe.span
          (Hyp_mem.host mem).Hostos.Host.observe
          ~name:"symcache-rebase"
          (fun () ->
            Ok
              {
                kernel_base;
                image_len = e.Cache.c_image_len;
                layout = e.Cache.c_layout;
                symbols =
                  List.map
                    (fun (n, off) -> (n, kernel_base + off))
                    e.Cache.c_sym_offsets;
                version = e.Cache.c_version;
              })
    | None ->
        (match cache with Some _ -> bump mem "symcache.misses" | None -> ());
        analyze_full ?cache ~build_id mem ~cr3 ~kernel_base ~image_len

let resolve a name = List.assoc_opt name a.symbols
