module Layout = X86.Layout
module PT = X86.Page_table
module KV = Linux_guest.Kernel_version

(* Where inside the image the two scanned sections were found — the
   witness the attach path re-reads at use time to detect a guest that
   rewrote them after the scan (TOCTOU). Offsets are base-relative, so
   the witness survives the cache's KASLR rebase. *)
type witness = {
  w_table_off : int;  (** ksymtab table start, image offset *)
  w_strings_lo : int;  (** strings region, image offsets [lo, hi) *)
  w_strings_hi : int;
}

type analysis = {
  kernel_base : int;
  image_len : int;
  layout : KV.ksymtab_layout;
  symbols : (string * int) list;
  version : KV.t;
  witness : witness;
}

let anchor_symbol = "printk"
let max_image = 4 * 1024 * 1024
let max_name_len = 64

let ( let* ) = Result.bind

let find_kernel_base mem ~cr3 =
  let acc = Hyp_mem.pt_access mem in
  let base = ref max_int in
  PT.iter_present acc ~root:cr3 ~f:(fun ~virt ~phys:_ ~huge:_ ->
      if virt >= Layout.kaslr_base && virt < Layout.kaslr_base + Layout.kaslr_size
      then base := min !base virt);
  if !base = max_int then
    Error "no mappings inside the KASLR range: cannot locate the kernel"
  else begin
    (* contiguous extent *)
    let rec extent len =
      if len >= max_image then len
      else
        match PT.translate acc ~root:cr3 (!base + len) with
        | Some _ -> extent (len + Layout.page_size)
        | None -> len
    in
    Ok (!base, extent 0)
  end

let printable c =
  let v = Char.code c in
  v >= 32 && v <= 126

(* Expand a strings region around [pos]: the maximal span of NUL-
   separated printable names (each at most [max_name_len] bytes). *)
let expand_strings_region img pos =
  let n = Bytes.length img in
  let ok c = c = '\000' || printable c in
  (* walk left while structure holds *)
  let rec left i run =
    if i < 0 then 0
    else
      let c = Bytes.get img i in
      if not (ok c) then i + 1
      else if printable c && run >= max_name_len then i + 1
      else left (i - 1) (if printable c then run + 1 else 0)
  in
  let rec right i run =
    if i >= n then n
    else
      let c = Bytes.get img i in
      if not (ok c) then i
      else if printable c && run >= max_name_len then i
      else right (i + 1) (if printable c then run + 1 else 0)
  in
  (left pos 0, right pos 0)

let find_strings_region img =
  (* search for "\000printk\000" (or the anchor at position 0) *)
  let pat = "\000" ^ anchor_symbol ^ "\000" in
  let s = Bytes.unsafe_to_string img in
  let rec find_from i acc =
    if i >= String.length s then List.rev acc
    else
      match String.index_from_opt s i '\000' with
      | None -> List.rev acc
      | Some j ->
          if
            j + String.length pat <= String.length s
            && String.sub s j (String.length pat) = pat
          then find_from (j + 1) ((j + 1) :: acc)
          else find_from (j + 1) acc
  in
  match find_from 0 [] with
  | [] -> Error (Printf.sprintf "anchor symbol %S not found in kernel image" anchor_symbol)
  | candidates ->
      (* keep the largest region among candidates *)
      let regions = List.map (fun pos -> expand_strings_region img pos) candidates in
      let best =
        List.fold_left
          (fun (blo, bhi) (lo, hi) -> if hi - lo > bhi - blo then (lo, hi) else (blo, bhi))
          (0, 0) regions
      in
      if snd best - fst best < 16 then Error "strings region too small"
      else Ok best

(* Is [off] the start of a plausible symbol name inside the region? *)
let string_start img (lo, hi) off =
  off >= lo && off < hi
  && (off = lo || Bytes.get img (off - 1) = '\000')
  && printable (Bytes.get img off)

let read_cstr img off =
  let n = Bytes.length img in
  let rec go i = if i >= n || Bytes.get img i = '\000' then i else go (i + 1) in
  Bytes.sub_string img off (go off - off)

(* Try to parse a ksymtab in the given layout at image offset [off];
   returns the list of (name, value) entries of the longest valid run. *)
let entries_at img ~kbase ~region layout off =
  let n = Bytes.length img in
  let in_kernel va = va >= kbase && va < kbase + n in
  let esz = Linux_guest.Ksymtab.entry_size layout in
  let i64 o = Int64.to_int (Bytes.get_int64_le img o) in
  let i32 o = Int32.to_int (Bytes.get_int32_le img o) in
  let rec run o acc =
    if o + esz > n then List.rev acc
    else
      let parsed =
        match layout with
        | KV.Absolute_value_first ->
            let v =
              try Some (i64 o, i64 (o + 8)) with Invalid_argument _ -> None
            in
            Option.map (fun (value, name_va) -> (value, name_va)) v
        | KV.Absolute_name_first -> (
            try Some (i64 (o + 8), i64 o) with Invalid_argument _ -> None)
        | KV.Prel32 ->
            let value = kbase + o + i32 o in
            let name_va = kbase + o + 4 + i32 (o + 4) in
            Some (value, name_va)
      in
      match parsed with
      | None -> List.rev acc
      | Some (value, name_va) ->
          let name_off = name_va - kbase in
          if
            in_kernel value
            && string_start img region name_off
          then run (o + esz) ((read_cstr img name_off, value) :: acc)
          else List.rev acc
  in
  run off []

let find_table img ~kbase ~region layout =
  let esz = Linux_guest.Ksymtab.entry_size layout in
  let n = Bytes.length img in
  let best = ref [] in
  let best_off = ref 0 in
  let o = ref 0 in
  while !o + esz <= n do
    let entries = entries_at img ~kbase ~region layout !o in
    if List.length entries > List.length !best then begin
      best := entries;
      best_off := !o;
      (* skip past this run to avoid re-parsing suffixes *)
      o := !o + (List.length entries * esz)
    end
    else o := !o + 8
  done;
  (!best_off, !best)

(* --- build-id memoization ---

   A kernel *build* is identified by the note the image carries (the
   stand-in for NT_GNU_BUILD_ID); two VMs booted from the same build
   differ only in their KASLR base. The cache stores base-relative
   symbol offsets, so a hit needs just the page-table walk, one page of
   the image (for the note) and an offset rebase — skipping the full
   image copy and both section scans. *)

let buildid_magic = "VMSHBID0"
let buildid_hex_len = 32

module Cache = struct
  type entry = {
    c_image_len : int;
    c_layout : KV.ksymtab_layout;
    c_sym_offsets : (string * int) list;  (* name -> va - kernel_base *)
    c_version : KV.t;
    c_witness : witness;  (* image offsets: valid for any KASLR base *)
  }

  type t = (string, entry) Hashtbl.t

  let create () : t = Hashtbl.create 7
end

(* Locate the build-id note in the image's first page. Scanned for, not
   assumed at a fixed offset — the analyzer discovers everything. *)
let find_build_id page =
  let s = Bytes.unsafe_to_string page in
  let m = String.length buildid_magic in
  let rec go i =
    if i + m + buildid_hex_len > String.length s then None
    else if String.sub s i m = buildid_magic then
      Some (String.sub s (i + m) buildid_hex_len)
    else go (i + 1)
  in
  go 0

let bump mem name =
  let obs = (Hyp_mem.host mem).Hostos.Host.observe in
  Observe.Metrics.incr (Observe.Metrics.counter (Observe.metrics obs) name)

let analyze_full ?cache ~build_id mem ~cr3 ~kernel_base ~image_len =
    match Hyp_mem.read_virt mem ~cr3 ~va:kernel_base ~len:image_len with
    | None -> Error "kernel image pages vanished during analysis"
    | Some img ->
        (* the strings scan and the per-layout table searches each walk
           the copied image once — charge those passes to virtual time
           (the measurable cost a cache hit saves) *)
        Hostos.Clock.copy_bytes (Hyp_mem.host mem).Hostos.Host.clock
          (4 * image_len);
        let* region = find_strings_region img in
        (* all layout variants in parallel; the consistency checks keep
           only entries whose name pointers land exactly on string
           starts, so the wrong layouts produce shorter (usually empty)
           runs *)
        let candidates =
          List.map
            (fun layout ->
              let off, entries = find_table img ~kbase:kernel_base ~region layout in
              (layout, off, entries))
            [ KV.Absolute_value_first; KV.Absolute_name_first; KV.Prel32 ]
        in
        let layout, table_off, entries =
          List.fold_left
            (fun (bl, bo, be) (l, o, e) ->
              if List.length e > List.length be then (l, o, e) else (bl, bo, be))
            (KV.Prel32, 0, []) candidates
        in
        if List.length entries < 8 then
          Error "no consistent ksymtab candidate found in any known layout"
        else
          let symbols = entries in
          let witness =
            {
              w_table_off = table_off;
              w_strings_lo = fst region;
              w_strings_hi = snd region;
            }
          in
          let* version =
            match List.assoc_opt "linux_banner" symbols with
            | None -> Error "linux_banner not exported; cannot identify version"
            | Some va -> (
                match Hyp_mem.read_virt mem ~cr3 ~va ~len:128 with
                | None -> Error "cannot read linux_banner"
                | Some b -> (
                    let s = Bytes.to_string b in
                    let s =
                      match String.index_opt s '\000' with
                      | Some i -> String.sub s 0 i
                      | None -> s
                    in
                    match KV.of_banner s with
                    | Some v -> Ok v
                    | None -> Error ("unrecognised banner: " ^ s)))
          in
          begin
            (match (cache, build_id) with
            | Some c, Some bid ->
                Hashtbl.replace c bid
                  {
                    Cache.c_image_len = image_len;
                    c_layout = layout;
                    c_sym_offsets =
                      List.map (fun (n, va) -> (n, va - kernel_base)) symbols;
                    c_version = version;
                    c_witness = witness;
                  }
            | _ -> ());
            Ok { kernel_base; image_len; layout; symbols; version; witness }
          end

let analyze ?cache mem ~cr3 =
  let* kernel_base, image_len =
    Observe.span
      (Hyp_mem.host mem).Hostos.Host.observe
      ~name:"page-table-walk"
      (fun () -> find_kernel_base mem ~cr3)
  in
  if image_len = 0 then Error "kernel mapping has zero extent"
  else
    let build_id =
      match cache with
      | None -> None
      | Some _ ->
          Option.bind
            (Hyp_mem.read_virt mem ~cr3 ~va:kernel_base
               ~len:(min image_len Layout.page_size))
            find_build_id
    in
    let cached =
      match (cache, build_id) with
      | Some c, Some bid -> Hashtbl.find_opt c bid
      | _ -> None
    in
    match cached with
    | Some e ->
        (* cache hit: rebase the stored offsets to this VM's KASLR
           base; no image copy, no scans *)
        bump mem "symcache.hits";
        Observe.span
          (Hyp_mem.host mem).Hostos.Host.observe
          ~name:"symcache-rebase"
          (fun () ->
            Ok
              {
                kernel_base;
                image_len = e.Cache.c_image_len;
                layout = e.Cache.c_layout;
                symbols =
                  List.map
                    (fun (n, off) -> (n, kernel_base + off))
                    e.Cache.c_sym_offsets;
                version = e.Cache.c_version;
                witness = e.Cache.c_witness;
              })
    | None ->
        (match cache with Some _ -> bump mem "symcache.misses" | None -> ());
        analyze_full ?cache ~build_id mem ~cr3 ~kernel_base ~image_len

let resolve a name = List.assoc_opt name a.symbols

(* --- use-time revalidation (TOCTOU hardening) ---

   Between the scan and the moment the loader patches the guest, a
   hostile guest can rewrite the ksymtab or its strings, or balloon the
   scanned pages away entirely. [revalidate] re-reads both witnessed
   regions from the live guest, re-derives (name, value) pairs with the
   same layout rules and compares against the scan's result — bounds
   re-check first, then the content check. Pure reads; the witness is
   base-relative, so it survives the cache's KASLR rebase.

   The comparison is by *name*, not by table position, and [?names]
   restricts it to the symbols the caller is about to rely on. Both
   matter for cache-hit analyses: a build-id cache guarantees the
   symbols vmsh uses (deterministic layout offsets), while filler
   exports and their table order legitimately differ VM to VM — only a
   divergence in a symbol we will actually patch through is guest
   misbehavior. *)
let revalidate ?names mem ~cr3 a =
  let w = a.witness in
  let esz = Linux_guest.Ksymtab.entry_size a.layout in
  let table_len = List.length a.symbols * esz in
  let slo = w.w_strings_lo and shi = w.w_strings_hi in
  (* the witnessed hi bound is the *detected* strings extent, which is
     content-dependent: another VM of the same build packs different
     filler names, so its strings run a little shorter or longer. When
     the table follows the strings (every layout we scan), the section
     structurally extends to the table base — validate against that
     window so a cache-hit analysis can resolve this VM's names *)
  let shi = if w.w_table_off >= shi then w.w_table_off else shi in
  if
    w.w_table_off < 0
    || w.w_table_off + table_len > a.image_len
    || slo < 0 || shi > a.image_len || slo >= shi
  then Error "witness out of image bounds"
  else begin
    (* one parse pass over the re-read bytes — charged to virtual time
       like the original scans (a fraction of their cost) *)
    Hostos.Clock.copy_bytes (Hyp_mem.host mem).Hostos.Host.clock
      (table_len + (shi - slo));
    match
      Hyp_mem.read_virt mem ~cr3 ~va:(a.kernel_base + slo) ~len:(shi - slo)
    with
    | None -> Error "strings region pages vanished since the scan"
    | Some strings -> (
        match
          Hyp_mem.read_virt mem ~cr3 ~va:(a.kernel_base + w.w_table_off)
            ~len:table_len
        with
        | None -> Error "ksymtab pages vanished since the scan"
        | Some table ->
            let i64 o = Int64.to_int (Bytes.get_int64_le table o) in
            let i32 o = Int32.to_int (Bytes.get_int32_le table o) in
            let name_at name_va =
              let off = name_va - a.kernel_base - slo in
              if off < 0 || off >= shi - slo then None
              else
                let rec fin i =
                  if i >= shi - slo then None
                  else if Bytes.get strings i = '\000' then Some i
                  else if not (printable (Bytes.get strings i)) then None
                  else fin (i + 1)
                in
                Option.map
                  (fun e -> Bytes.sub_string strings off (e - off))
                  (fin off)
            in
            (* one pass over the live table: every entry that still
               parses and whose name pointer lands in the strings
               region contributes a (name, value) pair; mutated-to-
               garbage entries simply contribute nothing and are caught
               below when a needed name has vanished or moved *)
            let parse i =
              let o = i * esz in
              let parsed =
                try
                  match a.layout with
                  | KV.Absolute_value_first -> Some (i64 o, i64 (o + 8))
                  | KV.Absolute_name_first -> Some (i64 (o + 8), i64 o)
                  | KV.Prel32 ->
                      Some
                        ( a.kernel_base + w.w_table_off + o + i32 o,
                          a.kernel_base + w.w_table_off + o + 4 + i32 (o + 4) )
                with Invalid_argument _ -> None
              in
              match parsed with
              | None -> None
              | Some (value, name_va) ->
                  Option.map (fun n -> (n, value)) (name_at name_va)
            in
            let live =
              List.filter_map parse (List.init (List.length a.symbols) Fun.id)
            in
            let wanted =
              match names with
              | Some ns ->
                  List.filter_map
                    (fun n ->
                      Option.map (fun va -> (n, va)) (List.assoc_opt n a.symbols))
                    ns
              | None -> a.symbols
            in
            let rec check = function
              | [] -> Ok ()
              | (name, va) :: rest -> (
                  match List.assoc_opt name live with
                  | None ->
                      Error
                        (Printf.sprintf
                           "symbol %s vanished from the ksymtab since the scan"
                           name)
                  | Some value when value <> va ->
                      Error
                        (Printf.sprintf
                           "symbol %s moved since the scan (0x%x -> 0x%x)" name
                           va value)
                  | Some _ -> check rest)
            in
            check wanted)
  end
