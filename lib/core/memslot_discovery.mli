(** Guest-memory discovery via eBPF (paper §5, "Sideloader").

    No KVM API exposes the VM's physical memory layout, so VMSH attaches
    a small eBPF program to the [kvm_vm_ioctl] kernel entry point and
    then injects a harmless VM ioctl to trigger it. The program walks
    the kernel's memslot table reachable from its context and streams
    (gpa, size, hva) triples back through its output buffer. Attaching
    requires CAP_BPF — the privilege VMSH drops right afterwards. *)

val discover :
  Tracee.t -> (Hyp_mem.slot list, Vmsh_error.t) result
(** Attach the program, trigger it, parse the slots, detach the
    program. Fails when the calling process lacks CAP_BPF. *)

val program_name : string

val encode_slots : Hyp_mem.slot list -> bytes
(** The output wire format (also used by tests). *)

val decode_slots : bytes -> Hyp_mem.slot list option
