(** End-to-end VMSH attach: the vm-exec abstraction (paper §3, §4).

    [attach] performs the full sequence against a running hypervisor
    process, with no cooperation from it:

    + ptrace-attach and discover the KVM descriptors through /proc;
    + dump the memslot table with the eBPF program, then drop
      privileges;
    + read vCPU 0's registers by injected KVM_GET_REGS; walk the page
      tables from CR3; run the symbol analysis (kernel base, ksymtab,
      version);
    + create irqfds inside the hypervisor and smuggle them back over an
      injected UNIX-socket connection (SCM_RIGHTS);
    + stand up the vmsh-blk / vmsh-console devices on the chosen MMIO
      transport;
    + build the kernel library for the detected kernel version, link it
      against the recovered symbol addresses, side-load it, and redirect
      the vCPU through its trampoline;
    + drive the VM (via the caller's [pump]) until the library reports
      the overlay process is running.

    The caller owns the pump because in this simulation the hypervisor's
    vCPU loop must be driven explicitly; with a real VMM the guest
    simply keeps running.

    Attach sessions are configured through the {!Config} builder and
    report failures as a structured {!Vmsh_error.t}. Between its major
    phases the sequence offers cooperative yield points ({!Sched.yield}),
    so a fleet scheduler can interleave many concurrent attaches over
    virtual time; outside a scheduler the yields are no-ops. *)

type net_attachment = { fabric : Net.Fabric.t; port : Net.Link.port }
(** Cable the side-loaded NIC to one [port] of a deterministic
    {!Net} fabric; the port must belong to [fabric]. *)

(** Validated attach configuration: a builder ({!make} plus [with_*]
    setters, each returning an updated value) and an explicit
    {!validate} step. [attach] validates internally, so callers only
    call {!validate} when they want the error before spending an
    attach attempt. *)
module Config : sig
  type t

  val make : unit -> t
  (** ioregionfd transport, bulk copies, interactive shell, privileges
      dropped after discovery, journal and use-time revalidation on. *)

  val with_transport : Devices.transport -> t -> t
  val with_copy_mode : Hyp_mem.copy_mode -> t -> t

  val with_container_pid : int -> t -> t
  (** Container-aware attach target. *)

  val with_command : string -> t -> t
  (** One-shot command instead of a shell. *)

  val with_drop_privileges : bool -> t -> t
  (** Drop CAP_BPF & co. after discovery (default [true]). *)

  val with_seccomp_heuristic : bool -> t -> t
  (** Probe the hypervisor's threads for one whose seccomp filter
      admits each injected syscall (lets VMSH attach to stock
      Firecracker without disabling its filters — the heuristic the
      paper leaves as future work, implemented here). *)

  val with_pci : bool -> t -> t
  (** Use the VirtIO-over-PCI transport: PCI config spaces in front of
      the register windows and MSI-routed interrupts — attaches to
      Cloud Hypervisor's MSI-X-only irqchip (the paper's other
      future-work item, implemented here). *)

  val with_net : net_attachment -> t -> t
  (** Without a net attachment the NIC still probes but transmits into
      the void. *)

  val with_faults : Faults.t -> t -> t
  (** Arm this fault plan on the host at attach time (fleet sessions
      carry per-session plans this way). *)

  val with_symbol_cache : Symbol_analysis.Cache.t -> t -> t
  (** Share a build-id-keyed symbol cache across attaches; see
      {!Symbol_analysis.Cache}. *)

  val with_journal : bool -> t -> t
  (** Record every guest/hypervisor mutation on a per-session undo
      journal (default [true]), giving transactional attach: any abort
      — and {!detach} — restores the guest byte-for-byte. [false]
      reverts to the journal-free attach of the previous release (the
      bench ablation knob). *)

  val with_revalidate : bool -> t -> t
  (** Re-validate the scanned kernel structures (ksymtab + strings
      region) against their witness at use time, just before the loader
      patches the guest (default [true]). A mismatch earns the guest
      one cache-bypassing rescan; a second mismatch aborts with
      {!Vmsh_error.Guest_misbehavior}. [false] is the bench ablation
      knob that measures the hardening's clean-path overhead. *)

  val validate : t -> (t, string) result
  (** Reject combinations no attach can serve: PCI over the
      wrap_syscall transport, a net port cabled on a different fabric
      than the one supplied, a non-positive container pid, an empty
      command. *)

  val transport : t -> Devices.transport
  val copy_mode : t -> Hyp_mem.copy_mode
  val container_pid : t -> int option
  val command : t -> string option
  val drop_privileges : t -> bool
  val seccomp_heuristic : t -> bool
  val pci : t -> bool
  val net : t -> net_attachment option
  val faults : t -> Faults.t option
  val symbol_cache : t -> Symbol_analysis.Cache.t option
  val journal : t -> bool
  val revalidate : t -> bool
end

type session

val attach :
  Hostos.Host.t -> hypervisor_pid:int -> fs_image:Blockdev.Backend.t ->
  ?config:Config.t -> pump:(unit -> unit) -> unit ->
  (session, Vmsh_error.t) result
(** [Vmsh_error.to_string] renders the same messages the CLI printed
    when errors were bare strings.

    Attach is transactional: every mutation of guest or hypervisor
    state (overwritten guest bytes, PTE installs, the vCPU redirect,
    memslot additions, remote mmaps, eventfds, sockets, device and
    irqfd/ioregionfd wiring) is journaled, and every abort path —
    including a {!Faults.Crash_point} from the sweep harness and the
    virtual-time watchdogs on the guest-ready poll and the device
    handshake — replays the journal in reverse before returning its
    [Error]. A failed undo surfaces as {!Vmsh_error.Rollback_failed}. *)

val vmsh_process : session -> Hostos.Proc.t
val devices : session -> Devices.t
val transport : session -> Devices.transport
val config : session -> Config.t
val analysis : session -> Symbol_analysis.analysis
val status : session -> int
(** Current status word of the side-loaded library. *)

val console_send : session -> string -> unit
(** Type a line into the attached console (appends the newline). *)

val console_recv : session -> string
(** Pump the VM and collect pending console output. *)

val console_roundtrip : session -> string -> string
(** [console_send] + [console_recv]: one command, its output. *)

val journal : session -> Journal.t option
(** The session's sealed mutation journal (None when the session was
    configured with [with_journal false]). Its late-write intervals
    feed the snapshot oracle's exclusion set. *)

val detach : session -> (unit, Vmsh_error.t) result
(** Replay the mutation journal in reverse — unwinding device
    registrations, irqfd/ioregionfd wiring, sockets, the side-loaded
    memslot and every journaled guest byte — then drop ptrace (always
    last: injected undos need the tracee stopped). Leaves guest memory
    and vCPU registers byte-identical to the pre-attach snapshot, modulo
    pages the guest itself dirtied. [Error (Rollback_failed _)] when an
    undo entry failed; ptrace is dropped regardless. *)
