(** End-to-end VMSH attach: the vm-exec abstraction (paper §3, §4).

    [attach] performs the full sequence against a running hypervisor
    process, with no cooperation from it:

    + ptrace-attach and discover the KVM descriptors through /proc;
    + dump the memslot table with the eBPF program, then drop
      privileges;
    + read vCPU 0's registers by injected KVM_GET_REGS; walk the page
      tables from CR3; run the symbol analysis (kernel base, ksymtab,
      version);
    + create irqfds inside the hypervisor and smuggle them back over an
      injected UNIX-socket connection (SCM_RIGHTS);
    + stand up the vmsh-blk / vmsh-console devices on the chosen MMIO
      transport;
    + build the kernel library for the detected kernel version, link it
      against the recovered symbol addresses, side-load it, and redirect
      the vCPU through its trampoline;
    + drive the VM (via the caller's [pump]) until the library reports
      the overlay process is running.

    The caller owns the pump because in this simulation the hypervisor's
    vCPU loop must be driven explicitly; with a real VMM the guest
    simply keeps running. *)

type config = {
  transport : Devices.transport;
  copy_mode : Hyp_mem.copy_mode;
  container_pid : int option;  (** container-aware attach target *)
  command : string option;  (** one-shot command instead of a shell *)
  drop_privileges : bool;  (** drop CAP_BPF & co. after discovery *)
  seccomp_heuristic : bool;
      (** probe the hypervisor's threads for one whose seccomp filter
          admits each injected syscall (lets VMSH attach to stock
          Firecracker without disabling its filters — the heuristic the
          paper leaves as future work, implemented here) *)
  pci : bool;
      (** use the VirtIO-over-PCI transport: PCI config spaces in front
          of the register windows and MSI-routed interrupts — attaches
          to Cloud Hypervisor's MSI-X-only irqchip (the paper's other
          future-work item, implemented here) *)
  net : (Net.Fabric.t * Net.Link.port) option;
      (** cable the side-loaded NIC to a port of a deterministic
          {!Net} fabric; [None] leaves the NIC unplugged *)
}

val default_config : config
(** ioregionfd transport, bulk copies, interactive shell. *)

type session

val attach :
  Hostos.Host.t -> hypervisor_pid:int -> fs_image:Blockdev.Backend.t ->
  ?config:config -> pump:(unit -> unit) -> unit -> (session, string) result

val vmsh_process : session -> Hostos.Proc.t
val devices : session -> Devices.t
val transport : session -> Devices.transport
val analysis : session -> Symbol_analysis.analysis
val status : session -> int
(** Current status word of the side-loaded library. *)

val console_send : session -> string -> unit
(** Type a line into the attached console (appends the newline). *)

val console_recv : session -> string
(** Pump the VM and collect pending console output. *)

val console_roundtrip : session -> string -> string
(** [console_send] + [console_recv]: one command, its output. *)

val detach : session -> unit
(** Remove syscall hooks and ptrace. Guest devices stay registered (as
    with the real prototype, a detached overlay keeps running). *)
