(* Bounded retry with exponential virtual-time backoff — the recovery
   discipline shared by the attach path. Transient substrate failures
   (EINTR/EAGAIN from injected syscalls, EAGAIN from a raced attach,
   EFAULT from process_vm_readv against a page mid-remap) are retried a
   fixed number of times; anything still failing after that surfaces to
   the caller as a clean, diagnosable error.

   Metric registration is lazy — a run in which nothing retries touches
   neither the clock nor the metric registry, keeping the no-faults run
   identical to one built without fault injection. *)

module Host = Hostos.Host
module Clock = Hostos.Clock

let max_attempts = 6
let base_backoff_ns = 20_000.

(* [with_backoff h ~counter ~should_retry f] runs [f] until
   [should_retry] rejects its result or the attempt budget is spent.
   Each retry bumps the named [recovery.*] counter, records the backoff
   in the [recovery.backoff_ns] histogram, emits a trace instant, and
   sleeps the (doubling) backoff in virtual time. *)
let with_backoff h ~counter ~should_retry f =
  let rec go attempt =
    let r = f () in
    if should_retry r && attempt < max_attempts then begin
      let m = Observe.metrics h.Host.observe in
      Observe.Metrics.incr (Observe.Metrics.counter m counter);
      let delay = base_backoff_ns *. Float.ldexp 1.0 (attempt - 1) in
      Observe.Metrics.observe
        (Observe.Metrics.histogram m "recovery.backoff_ns")
        delay;
      if Observe.enabled h.Host.observe then
        Observe.instant h.Host.observe ~name:("recovery.retry:" ^ counter)
          ~attrs:
            [ ("attempt", Observe.I attempt); ("backoff_ns", Observe.F delay) ]
          ();
      Clock.advance h.Host.clock delay;
      go (attempt + 1)
    end
    else r
  in
  go 1
