module Host = Hostos.Host
module Proc = Hostos.Proc
module Fd = Hostos.Fd
module Syscall = Hostos.Syscall
module Layout = X86.Layout
module KV = Linux_guest.Kernel_version
module E = Vmsh_error

let src = Logs.Src.create "vmsh.attach" ~doc:"VMSH attach orchestration"

module Log = (val Logs.src_log src : Logs.LOG)

type net_attachment = { fabric : Net.Fabric.t; port : Net.Link.port }

type config = {
  transport : Devices.transport;
  copy_mode : Hyp_mem.copy_mode;
  container_pid : int option;
  command : string option;
  drop_privileges : bool;
  seccomp_heuristic : bool;
  pci : bool;
  net : (Net.Fabric.t * Net.Link.port) option;
}
[@@deprecated "use Attach.Config (builder + validate) instead"]

module Config = struct
  type t = {
    transport : Devices.transport;
    copy_mode : Hyp_mem.copy_mode;
    container_pid : int option;
    command : string option;
    drop_privileges : bool;
    seccomp_heuristic : bool;
    pci : bool;
    net : net_attachment option;
    faults : Faults.t option;
    symbol_cache : Symbol_analysis.Cache.t option;
  }

  let make () =
    {
      transport = Devices.Ioregionfd;
      copy_mode = Hyp_mem.Bulk;
      container_pid = None;
      command = None;
      drop_privileges = true;
      seccomp_heuristic = false;
      pci = false;
      net = None;
      faults = None;
      symbol_cache = None;
    }

  let with_transport transport t = { t with transport }
  let with_copy_mode copy_mode t = { t with copy_mode }
  let with_container_pid pid t = { t with container_pid = Some pid }
  let with_command cmd t = { t with command = Some cmd }
  let with_drop_privileges drop_privileges t = { t with drop_privileges }
  let with_seccomp_heuristic seccomp_heuristic t = { t with seccomp_heuristic }
  let with_pci pci t = { t with pci }
  let with_net net t = { t with net = Some net }
  let with_faults plan t = { t with faults = Some plan }
  let with_symbol_cache cache t = { t with symbol_cache = Some cache }
  let transport t = t.transport
  let copy_mode t = t.copy_mode
  let container_pid t = t.container_pid
  let command t = t.command
  let drop_privileges t = t.drop_privileges
  let seccomp_heuristic t = t.seccomp_heuristic
  let pci t = t.pci
  let net t = t.net
  let faults t = t.faults
  let symbol_cache t = t.symbol_cache

  let validate t =
    if t.pci && t.transport = Devices.Wrap_syscall then
      Error
        "the PCI transport needs ioregionfd doorbells (wrap_syscall \
         intercepts KVM_RUN exits that MSI-X-only irqchips route \
         differently)"
    else if
      match t.net with
      | Some { fabric; port } -> Net.Link.fabric_of_port port != fabric
      | None -> false
    then Error "net attachment: the port is not cabled on the supplied fabric"
    else if (match t.container_pid with Some p -> p <= 0 | None -> false) then
      Error "container_pid must be positive"
    else if t.command = Some "" then Error "command must be non-empty"
    else Ok t

  let of_legacy (c : config) =
    (* transition shim for the bare-record API; one release only *)
    {
      transport = c.transport;
      copy_mode = c.copy_mode;
      container_pid = c.container_pid;
      command = c.command;
      drop_privileges = c.drop_privileges;
      seccomp_heuristic = c.seccomp_heuristic;
      pci = c.pci;
      net = Option.map (fun (fabric, port) -> { fabric; port }) c.net;
      faults = None;
      symbol_cache = None;
    }
  [@@alert "-deprecated"]
end
[@@alert "-deprecated"]

let default_config =
  {
    transport = Devices.Ioregionfd;
    copy_mode = Hyp_mem.Bulk;
    container_pid = None;
    command = None;
    drop_privileges = true;
    seccomp_heuristic = false;
    pci = false;
    net = None;
  }
[@@alert "-deprecated"] [@@deprecated "use Attach.Config.make instead"]

type session = {
  cfg : Config.t;
  vmsh : Proc.t;
  tracee : Tracee.t;
  mem : Hyp_mem.t;
  devs : Devices.t;
  anal : Symbol_analysis.analysis;
  loaded : Loader.loaded;
  pump : unit -> unit;
}

let vmsh_process s = s.vmsh
let devices s = s.devs
let transport s = Config.transport s.cfg
let config s = s.cfg
let analysis s = s.anal
let status s = Loader.poll_status ~mem:s.mem s.loaded

let ( let* ) = Result.bind

(* The twelve kernel interfaces VMSH relies on (paper §5). *)
let required_symbols =
  [
    "printk"; "register_virtio_mmio_dev"; "unregister_virtio_mmio_dev";
    "filp_open"; "filp_close"; "kernel_read"; "kernel_write";
    "kthread_create_on_node"; "wake_up_process"; "kernel_clone"; "do_exit";
    "schedule";
  ]

(* The devices every attach stands up, in registration order; the
   registry derives windows and GSIs from this order. *)
let device_plan = [ Devices.Console; Devices.Blk; Devices.Net; Devices.Ninep ]

(* Install an MSI route for [gsi] (the PCI transport's interrupt path:
   MSI-X-only irqchips accept irqfds only for MSI-routed GSIs). *)
let install_msi_route tracee ~gsi =
  let arg = Bytes.make Kvm.Api.msi_route_size '\000' in
  Bytes.set_int32_le arg 0 (Int32.of_int gsi);
  Bytes.set_int64_le arg 4 0xfee0_0000L;
  Bytes.set_int32_le arg 12 (Int32.of_int (0x4000 lor gsi));
  match
    Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
      ~code:Kvm.Api.set_gsi_routing ~arg ()
  with
  | Ok _ -> Ok ()
  | Error e -> Error (E.Context ("KVM_SET_GSI_ROUTING", e))

(* Create an eventfd inside the hypervisor, register it as an irqfd for
   [gsi], and return the tracee-side descriptor number. *)
let make_remote_irqfd tracee ~gsi =
  let* ev = Tracee.inject tracee ~nr:Syscall.Nr.eventfd2 ~args:[||] in
  let arg = Bytes.make Kvm.Api.irqfd_req_size '\000' in
  Bytes.set_int32_le arg 0 (Int32.of_int ev);
  Bytes.set_int32_le arg 4 (Int32.of_int gsi);
  let* _ =
    match
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee) ~code:Kvm.Api.irqfd
        ~arg ()
    with
    | Ok r -> Ok r
    | Error _ ->
        Error
          (E.Unsupported
             "KVM_IRQFD rejected: this hypervisor's VM has no GSI-capable \
              irqchip (PCIe MSI-X only) — MMIO transport unsupported (retry \
              with the VirtIO-over-PCI transport)")
  in
  Ok ev

let rec result_map f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = result_map f rest in
      Ok (y :: ys)

(* Pull tracee descriptors into the VMSH process over an injected
   UNIX-socket connection with SCM_RIGHTS. *)
let retrieve_fds host vmsh tracee remote_fds ~path =
  let* listener =
    match Host.unix_bind host vmsh ~path with
    | Ok fd -> Ok fd
    | Error e -> Error (E.substrate ("bind " ^ path) e)
  in
  let* remote_sock = Tracee.connect_back tracee ~path in
  let* local_sock =
    match Host.unix_accept host vmsh ~listener with
    | Ok fd -> Ok fd
    | Error e -> Error (E.substrate "accept" e)
  in
  let* () = Tracee.send_fds_back tracee ~sock_fd:remote_sock remote_fds in
  let rec recv n acc =
    if n = 0 then Ok (List.rev acc)
    else
      match Host.recv_fd host vmsh ~sock:local_sock with
      | Ok fd -> recv (n - 1) (fd :: acc)
      | Error e -> Error (E.substrate "recv_fd" e)
  in
  let* fds = recv (List.length remote_fds) [] in
  Ok (fds, local_sock, remote_sock)

let setup_ioregionfd host vmsh tracee devs ~hypervisor_pid =
  let path =
    Printf.sprintf "/run/vmsh-ioregion-%d-%d.sock" hypervisor_pid
      vmsh.Proc.pid
  in
  let* listener =
    match Host.unix_bind host vmsh ~path with
    | Ok fd -> Ok fd
    | Error e -> Error (E.substrate ("bind " ^ path) e)
  in
  let* remote_sock = Tracee.connect_back tracee ~path in
  let* local_sock =
    match Host.unix_accept host vmsh ~listener with
    | Ok fd -> Ok fd
    | Error e -> Error (E.substrate "accept" e)
  in
  let region_base, region_len = Devices.region devs in
  let arg = Bytes.make Kvm.Api.ioregion_req_size '\000' in
  Bytes.set_int64_le arg 0 (Int64.of_int region_base);
  Bytes.set_int64_le arg 8 (Int64.of_int region_len);
  Bytes.set_int32_le arg 16 (Int32.of_int remote_sock);
  Bytes.set_int32_le arg 20 (Int32.of_int remote_sock);
  let* _ =
    match
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
        ~code:Kvm.Api.set_ioregion ~arg ()
    with
    | Ok r -> Ok r
    | Error e -> Error (E.Context ("KVM_SET_IOREGION", e))
  in
  (* Scheduling seam of the simulation: register the service callback
     that stands for "the VMSH process wakes up when its socket becomes
     readable" (see DESIGN.md). *)
  let* vm =
    let hyp = Host.proc_exn host ~pid:hypervisor_pid in
    match Proc.fd hyp (Tracee.vm_fd tracee) with
    | Ok fd -> (
        match Kvm.Vm.vm_of_fd fd with
        | Some vm -> Ok vm
        | None -> Error (E.Msg "vm fd does not denote a VM"))
    | Error e -> Error (E.substrate "vm fd lookup" e)
  in
  Kvm.Vm.add_ioregion_pump vm (Devices.ioregion_pump devs ~sock:local_sock);
  Ok ()

let wait_ready ~mem ~loaded ~pump =
  let rec go tries =
    (* fleet interleave point: each status poll is one scheduler slice *)
    Sched.yield ();
    let s = Loader.poll_status ~mem loaded in
    if s = Klib_builder.status_done then Ok ()
    else if s >= 0x80 then Error (E.Guest_error s)
    else if tries = 0 then Error (E.Timeout s)
    else begin
      pump ();
      go (tries - 1)
    end
  in
  go 16

let attach host ~hypervisor_pid ~fs_image ?config ~pump () =
  let cfg = match config with Some c -> c | None -> Config.make () in
  let obs = host.Host.observe in
  Observe.span obs ~name:"attach"
    ~attrs:
      [
        ("transport", Observe.S (Devices.show_transport (Config.transport cfg)));
        ("hypervisor_pid", Observe.I hypervisor_pid);
      ]
  @@ fun () ->
  try
    let* cfg =
      match Config.validate cfg with
      | Ok c -> Ok c
      | Error m -> Error (E.Invalid_config m)
    in
    (match Config.faults cfg with
    | Some plan -> Host.arm_faults host plan
    | None -> ());
    (* VMSH starts with the privileges it needs for discovery and drops
       them afterwards (paper §4.5). *)
    let vmsh =
      Host.spawn host ~name:"vmsh" ~uid:1000
        ~caps:[ Proc.CAP_BPF; Proc.CAP_SYS_PTRACE ] ()
    in
    let* tracee =
      Tracee.attach
        ~seccomp_heuristic:(Config.seccomp_heuristic cfg)
        host ~vmsh ~pid:hypervisor_pid
    in
    Sched.yield ();
    let* slots =
      Observe.span obs ~name:"memslot-dump" (fun () ->
          Memslot_discovery.discover tracee)
    in
    if Config.drop_privileges cfg then begin
      Proc.drop_cap vmsh Proc.CAP_BPF;
      Proc.drop_cap vmsh Proc.CAP_SYS_ADMIN
    end;
    let mem =
      Hyp_mem.create host ~vmsh ~hypervisor_pid ~slots
        ~mode:(Config.copy_mode cfg) ()
    in
    let* regs =
      Observe.span obs ~name:"register-read" (fun () ->
          match Tracee.get_vcpu_regs tracee (List.hd (Tracee.vcpus tracee)) with
          | Ok r -> Ok r
          | Error e -> Error (E.Context ("KVM_GET_REGS injection", e)))
    in
    Sched.yield ();
    let* anal =
      Observe.span obs ~name:"symbol-analysis" (fun () ->
          Result.map_error
            (fun m -> E.Msg m)
            (Symbol_analysis.analyze ?cache:(Config.symbol_cache cfg) mem
               ~cr3:regs.X86.Regs.cr3))
    in
    let* () =
      let missing =
        List.filter
          (fun s -> Symbol_analysis.resolve anal s = None)
          required_symbols
      in
      if missing = [] then Ok ()
      else
        Error
          (E.Msg
             ("guest kernel does not export required symbols: "
             ^ String.concat ", " missing))
    in
    Sched.yield ();
    let* devs =
      Observe.span obs ~name:"device-setup" @@ fun () ->
      (* interrupt plumbing; the PCI transport routes the GSIs as MSIs
         first, so the irqfds work on MSI-X-only irqchips *)
      let gsis = Devices.gsi_plan device_plan in
      let* () =
        if Config.pci cfg then
          let rec route = function
            | [] -> Ok ()
            | (_, gsi) :: rest ->
                let* () = install_msi_route tracee ~gsi in
                route rest
          in
          route gsis
        else Ok ()
      in
      let* remote_evs =
        result_map (fun (_, gsi) -> make_remote_irqfd tracee ~gsi) gsis
      in
      let* fds, _ctl_local, _ctl_remote =
        retrieve_fds host vmsh tracee remote_evs
          ~path:
            (Printf.sprintf "/run/vmsh-%d-%d.sock" hypervisor_pid vmsh.Proc.pid)
      in
      let* () =
        if List.length fds = List.length device_plan then Ok ()
        else Error (E.Msg "fd passing returned the wrong number of descriptors")
      in
      let devs =
        Devices.create ~mem ~tracee ~image:fs_image ~pci:(Config.pci cfg)
          ?net:
            (Option.map
               (fun { fabric; port } -> (fabric, port))
               (Config.net cfg))
          ()
      in
      List.iter2
        (fun kind irqfd -> ignore (Devices.register devs kind ~irqfd))
        device_plan fds;
      let* () =
        match Config.transport cfg with
        | Devices.Wrap_syscall ->
            Devices.install_wrap_syscall devs;
            Ok ()
        | Devices.Ioregionfd ->
            setup_ioregionfd host vmsh tracee devs ~hypervisor_pid
      in
      Ok devs
    in
    Sched.yield ();
    let* loaded =
      Observe.span obs ~name:"klib-sideload" @@ fun () ->
      (* guest program + kernel library *)
      let program =
        Overlay.register
          {
            Overlay.container_pid = Config.container_pid cfg;
            command = Config.command cfg;
          }
      in
      let image, layout =
        (* the klib drives each device through its PCI config window
           when the PCI transport is active, through the register
           window itself otherwise — handle_window picks *)
        let win kind = Devices.handle_window (Devices.handle_exn devs kind) in
        let gsi kind = Devices.handle_gsi (Devices.handle_exn devs kind) in
        Klib_builder.build ~version:anal.Symbol_analysis.version
          ~guest_program:program ~pci:(Config.pci cfg)
          ~console_base:(win Devices.Console) ~blk_base:(win Devices.Blk)
          ~net_base:(win Devices.Net) ~ninep_base:(win Devices.Ninep)
          ~console_gsi:(gsi Devices.Console) ~blk_gsi:(gsi Devices.Blk)
          ~net_gsi:(gsi Devices.Net) ~ninep_gsi:(gsi Devices.Ninep) ()
      in
      let* loaded = Loader.load ~tracee ~mem ~analysis:anal ~image ~layout in
      let* () = Loader.redirect ~tracee loaded in
      pump ();
      let* () = wait_ready ~mem ~loaded ~pump in
      Ok loaded
    in
    Ok { cfg; vmsh; tracee; mem; devs; anal; loaded; pump }
  with
  (* A substrate failure that exhausted its bounded retries (or guest
     state the sideloader cannot parse) aborts the attach cleanly: the
     caller gets a diagnosable error, never an escaped exception. *)
  | E.Error e -> Error (E.Attach_aborted e)
  | Failure msg -> Error (E.Attach_aborted (E.Msg msg))
  | Kvm.Vm.Guest_error msg -> Error (E.Attach_aborted (E.Guest_fault msg))

let console_send s line =
  Devices.feed_console_input s.devs (Bytes.of_string (line ^ "\n"));
  s.pump ()

let console_recv s =
  s.pump ();
  Bytes.to_string (Devices.read_console_output s.devs)

let console_roundtrip s line =
  (* drain any pending output (e.g. the prompt) first *)
  ignore (console_recv s);
  console_send s line;
  console_recv s

let detach s =
  (match Config.transport s.cfg with
  | Devices.Wrap_syscall -> Devices.uninstall_wrap_syscall s.devs
  | Devices.Ioregionfd -> ());
  Tracee.detach s.tracee
