module Host = Hostos.Host
module Proc = Hostos.Proc
module Fd = Hostos.Fd
module Syscall = Hostos.Syscall
module Layout = X86.Layout
module KV = Linux_guest.Kernel_version

let src = Logs.Src.create "vmsh.attach" ~doc:"VMSH attach orchestration"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  transport : Devices.transport;
  copy_mode : Hyp_mem.copy_mode;
  container_pid : int option;
  command : string option;
  drop_privileges : bool;
  seccomp_heuristic : bool;
  pci : bool;
  net : (Net.Fabric.t * Net.Link.port) option;
}

let default_config =
  {
    transport = Devices.Ioregionfd;
    copy_mode = Hyp_mem.Bulk;
    container_pid = None;
    command = None;
    drop_privileges = true;
    seccomp_heuristic = false;
    pci = false;
    net = None;
  }

type session = {
  cfg : config;
  vmsh : Proc.t;
  tracee : Tracee.t;
  mem : Hyp_mem.t;
  devs : Devices.t;
  anal : Symbol_analysis.analysis;
  loaded : Loader.loaded;
  pump : unit -> unit;
}

let vmsh_process s = s.vmsh
let devices s = s.devs
let transport s = s.cfg.transport
let analysis s = s.anal
let status s = Loader.poll_status ~mem:s.mem s.loaded

let ( let* ) = Result.bind

(* The twelve kernel interfaces VMSH relies on (paper §5). *)
let required_symbols =
  [
    "printk"; "register_virtio_mmio_dev"; "unregister_virtio_mmio_dev";
    "filp_open"; "filp_close"; "kernel_read"; "kernel_write";
    "kthread_create_on_node"; "wake_up_process"; "kernel_clone"; "do_exit";
    "schedule";
  ]

let console_gsi = 24
let blk_gsi = 25
let net_gsi = 26
let ninep_gsi = 27

(* Install an MSI route for [gsi] (the PCI transport's interrupt path:
   MSI-X-only irqchips accept irqfds only for MSI-routed GSIs). *)
let install_msi_route tracee ~gsi =
  let arg = Bytes.make Kvm.Api.msi_route_size '\000' in
  Bytes.set_int32_le arg 0 (Int32.of_int gsi);
  Bytes.set_int64_le arg 4 0xfee0_0000L;
  Bytes.set_int32_le arg 12 (Int32.of_int (0x4000 lor gsi));
  match
    Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
      ~code:Kvm.Api.set_gsi_routing ~arg ()
  with
  | Ok _ -> Ok ()
  | Error e -> Error ("KVM_SET_GSI_ROUTING: " ^ e)

(* Create an eventfd inside the hypervisor, register it as an irqfd for
   [gsi], and return the tracee-side descriptor number. *)
let make_remote_irqfd tracee ~gsi =
  let* ev = Tracee.inject tracee ~nr:Syscall.Nr.eventfd2 ~args:[||] in
  let arg = Bytes.make Kvm.Api.irqfd_req_size '\000' in
  Bytes.set_int32_le arg 0 (Int32.of_int ev);
  Bytes.set_int32_le arg 4 (Int32.of_int gsi);
  let* _ =
    match
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee) ~code:Kvm.Api.irqfd
        ~arg ()
    with
    | Ok r -> Ok r
    | Error _ ->
        Error
          "KVM_IRQFD rejected: this hypervisor's VM has no GSI-capable \
           irqchip (PCIe MSI-X only) — MMIO transport unsupported (retry \
           with the VirtIO-over-PCI transport)"
  in
  Ok ev

(* Pull tracee descriptors into the VMSH process over an injected
   UNIX-socket connection with SCM_RIGHTS. *)
let retrieve_fds host vmsh tracee remote_fds ~path =
  let* listener =
    match Host.unix_bind host vmsh ~path with
    | Ok fd -> Ok fd
    | Error e -> Error ("bind " ^ path ^ ": " ^ Hostos.Errno.show e)
  in
  let* remote_sock = Tracee.connect_back tracee ~path in
  let* local_sock =
    match Host.unix_accept host vmsh ~listener with
    | Ok fd -> Ok fd
    | Error e -> Error ("accept: " ^ Hostos.Errno.show e)
  in
  let* () = Tracee.send_fds_back tracee ~sock_fd:remote_sock remote_fds in
  let rec recv n acc =
    if n = 0 then Ok (List.rev acc)
    else
      match Host.recv_fd host vmsh ~sock:local_sock with
      | Ok fd -> recv (n - 1) (fd :: acc)
      | Error e -> Error ("recv_fd: " ^ Hostos.Errno.show e)
  in
  let* fds = recv (List.length remote_fds) [] in
  Ok (fds, local_sock, remote_sock)

let setup_ioregionfd host vmsh tracee devs ~hypervisor_pid =
  let path =
    Printf.sprintf "/run/vmsh-ioregion-%d-%d.sock" hypervisor_pid
      vmsh.Proc.pid
  in
  let* listener =
    match Host.unix_bind host vmsh ~path with
    | Ok fd -> Ok fd
    | Error e -> Error ("bind " ^ path ^ ": " ^ Hostos.Errno.show e)
  in
  let* remote_sock = Tracee.connect_back tracee ~path in
  let* local_sock =
    match Host.unix_accept host vmsh ~listener with
    | Ok fd -> Ok fd
    | Error e -> Error ("accept: " ^ Hostos.Errno.show e)
  in
  let region_base, region_len = Devices.region devs in
  let arg = Bytes.make Kvm.Api.ioregion_req_size '\000' in
  Bytes.set_int64_le arg 0 (Int64.of_int region_base);
  Bytes.set_int64_le arg 8 (Int64.of_int region_len);
  Bytes.set_int32_le arg 16 (Int32.of_int remote_sock);
  Bytes.set_int32_le arg 20 (Int32.of_int remote_sock);
  let* _ =
    match
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
        ~code:Kvm.Api.set_ioregion ~arg ()
    with
    | Ok r -> Ok r
    | Error e -> Error ("KVM_SET_IOREGION: " ^ e)
  in
  (* Scheduling seam of the simulation: register the service callback
     that stands for "the VMSH process wakes up when its socket becomes
     readable" (see DESIGN.md). *)
  let* vm =
    let hyp = Host.proc_exn host ~pid:hypervisor_pid in
    match Proc.fd hyp (Tracee.vm_fd tracee) with
    | Ok fd -> (
        match Kvm.Vm.vm_of_fd fd with
        | Some vm -> Ok vm
        | None -> Error "vm fd does not denote a VM")
    | Error e -> Error ("vm fd lookup: " ^ Hostos.Errno.show e)
  in
  Kvm.Vm.add_ioregion_pump vm (Devices.ioregion_pump devs ~sock:local_sock);
  Ok ()

let wait_ready ~mem ~loaded ~pump =
  let rec go tries =
    let s = Loader.poll_status ~mem loaded in
    if s = Klib_builder.status_done then Ok ()
    else if s >= 0x80 then
      Error
        (Printf.sprintf "guest library failed with status 0x%x%s" s
           (match s with
           | s when s = Klib_builder.status_err_console ->
               " (console device registration)"
           | s when s = Klib_builder.status_err_blk ->
               " (block device registration)"
           | s when s = Klib_builder.status_err_net ->
               " (net device registration)"
           | s when s = Klib_builder.status_err_ninep ->
               " (9p device registration)"
           | s when s = Klib_builder.status_err_open -> " (opening exec file)"
           | s when s = Klib_builder.status_err_write -> " (writing program)"
           | s when s = Klib_builder.status_err_spawn -> " (spawning process)"
           | _ -> ""))
    else if tries = 0 then
      Error (Printf.sprintf "guest library did not complete (status %d)" s)
    else begin
      pump ();
      go (tries - 1)
    end
  in
  go 16

let attach host ~hypervisor_pid ~fs_image ?(config = default_config) ~pump () =
  let obs = host.Host.observe in
  Observe.span obs ~name:"attach"
    ~attrs:
      [
        ( "transport",
          Observe.S
            (match config.transport with
            | Devices.Ioregionfd -> "ioregionfd"
            | Devices.Wrap_syscall -> "wrap_syscall") );
        ("hypervisor_pid", Observe.I hypervisor_pid);
      ]
  @@ fun () ->
  try
  (* VMSH starts with the privileges it needs for discovery and drops
     them afterwards (paper §4.5). *)
  let vmsh =
    Host.spawn host ~name:"vmsh" ~uid:1000
      ~caps:[ Proc.CAP_BPF; Proc.CAP_SYS_PTRACE ] ()
  in
    let* tracee =
    Tracee.attach ~seccomp_heuristic:config.seccomp_heuristic host ~vmsh
      ~pid:hypervisor_pid
  in
  let* slots =
    Observe.span obs ~name:"memslot-dump" (fun () ->
        Memslot_discovery.discover tracee)
  in
  if config.drop_privileges then begin
    Proc.drop_cap vmsh Proc.CAP_BPF;
    Proc.drop_cap vmsh Proc.CAP_SYS_ADMIN
  end;
  let mem =
    Hyp_mem.create host ~vmsh ~hypervisor_pid ~slots ~mode:config.copy_mode ()
  in
  let* regs =
    Observe.span obs ~name:"register-read" (fun () ->
        match Tracee.get_vcpu_regs tracee (List.hd (Tracee.vcpus tracee)) with
        | Ok r -> Ok r
        | Error e -> Error ("KVM_GET_REGS injection: " ^ e))
  in
  let* anal =
    Observe.span obs ~name:"symbol-analysis" (fun () ->
        Symbol_analysis.analyze mem ~cr3:regs.X86.Regs.cr3)
  in
  let* () =
    let missing =
      List.filter
        (fun s -> Symbol_analysis.resolve anal s = None)
        required_symbols
    in
    if missing = [] then Ok ()
    else
      Error
        ("guest kernel does not export required symbols: "
        ^ String.concat ", " missing)
  in
  let* devs =
    Observe.span obs ~name:"device-setup" @@ fun () ->
    (* interrupt plumbing; the PCI transport routes the GSIs as MSIs
       first, so the irqfds work on MSI-X-only irqchips *)
    let* () =
      if config.pci then
        let* () = install_msi_route tracee ~gsi:console_gsi in
        let* () = install_msi_route tracee ~gsi:blk_gsi in
        let* () = install_msi_route tracee ~gsi:net_gsi in
        install_msi_route tracee ~gsi:ninep_gsi
      else Ok ()
    in
    let* console_ev = make_remote_irqfd tracee ~gsi:console_gsi in
    let* blk_ev = make_remote_irqfd tracee ~gsi:blk_gsi in
    let* net_ev = make_remote_irqfd tracee ~gsi:net_gsi in
    let* ninep_ev = make_remote_irqfd tracee ~gsi:ninep_gsi in
    let* fds, _ctl_local, _ctl_remote =
      retrieve_fds host vmsh tracee [ console_ev; blk_ev; net_ev; ninep_ev ]
        ~path:
          (Printf.sprintf "/run/vmsh-%d-%d.sock" hypervisor_pid vmsh.Proc.pid)
    in
    let* console_irqfd, blk_irqfd, net_irqfd, ninep_irqfd =
      match fds with
      | [ c; b; n; p ] -> Ok (c, b, n, p)
      | _ -> Error "fd passing returned the wrong number of descriptors"
    in
    let devs =
      Devices.create ~mem ~tracee ~image:fs_image ~blk_irqfd ~console_irqfd
        ~net_irqfd ~ninep_irqfd ~pci:config.pci ?net:config.net ()
    in
    let* () =
      match config.transport with
      | Devices.Wrap_syscall ->
          Devices.install_wrap_syscall devs;
          Ok ()
      | Devices.Ioregionfd ->
          setup_ioregionfd host vmsh tracee devs ~hypervisor_pid
    in
    Ok devs
  in
  let* loaded =
    Observe.span obs ~name:"klib-sideload" @@ fun () ->
    (* guest program + kernel library *)
    let program =
      Overlay.register
        {
          Overlay.container_pid = config.container_pid;
          command = config.command;
        }
    in
    let image, layout =
      (* under PCI the klib is pointed at the config windows (the first
         four strides of the region); under MMIO at the register
         windows themselves *)
      let cfg_window i = fst (Devices.region devs) + (i * Layout.virtio_mmio_stride) in
      Klib_builder.build ~version:anal.Symbol_analysis.version
        ~guest_program:program ~pci:config.pci
        ~console_base:
          (if config.pci then cfg_window 0 else Devices.console_base devs)
        ~blk_base:(if config.pci then cfg_window 1 else Devices.blk_base devs)
        ~net_base:(if config.pci then cfg_window 2 else Devices.net_base devs)
        ~ninep_base:
          (if config.pci then cfg_window 3 else Devices.ninep_base devs)
        ~console_gsi ~blk_gsi ~net_gsi ~ninep_gsi ()
    in
    let* loaded = Loader.load ~tracee ~mem ~analysis:anal ~image ~layout in
    let* () = Loader.redirect ~tracee loaded in
    pump ();
    let* () = wait_ready ~mem ~loaded ~pump in
    Ok loaded
  in
  Ok { cfg = config; vmsh; tracee; mem; devs; anal; loaded; pump }
  with
  (* A substrate failure that exhausted its bounded retries (or guest
     state the sideloader cannot parse) aborts the attach cleanly: the
     caller gets a diagnosable error, never an escaped exception. *)
  | Failure msg -> Error ("attach aborted: " ^ msg)
  | Kvm.Vm.Guest_error msg -> Error ("attach aborted: guest error: " ^ msg)

let console_send s line =
  Devices.feed_console_input s.devs (Bytes.of_string (line ^ "\n"));
  s.pump ()

let console_recv s =
  s.pump ();
  Bytes.to_string (Devices.read_console_output s.devs)

let console_roundtrip s line =
  (* drain any pending output (e.g. the prompt) first *)
  ignore (console_recv s);
  console_send s line;
  console_recv s

let detach s =
  (match s.cfg.transport with
  | Devices.Wrap_syscall -> Devices.uninstall_wrap_syscall s.devs
  | Devices.Ioregionfd -> ());
  Tracee.detach s.tracee
