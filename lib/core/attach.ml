module Host = Hostos.Host
module Proc = Hostos.Proc
module Fd = Hostos.Fd
module Syscall = Hostos.Syscall
module Layout = X86.Layout
module KV = Linux_guest.Kernel_version
module E = Vmsh_error

let src = Logs.Src.create "vmsh.attach" ~doc:"VMSH attach orchestration"

module Log = (val Logs.src_log src : Logs.LOG)

type net_attachment = { fabric : Net.Fabric.t; port : Net.Link.port }

module Config = struct
  type t = {
    transport : Devices.transport;
    copy_mode : Hyp_mem.copy_mode;
    container_pid : int option;
    command : string option;
    drop_privileges : bool;
    seccomp_heuristic : bool;
    pci : bool;
    net : net_attachment option;
    faults : Faults.t option;
    symbol_cache : Symbol_analysis.Cache.t option;
    journal : bool;
    revalidate : bool;
  }

  let make () =
    {
      transport = Devices.Ioregionfd;
      copy_mode = Hyp_mem.Bulk;
      container_pid = None;
      command = None;
      drop_privileges = true;
      seccomp_heuristic = false;
      pci = false;
      net = None;
      faults = None;
      symbol_cache = None;
      journal = true;
      revalidate = true;
    }

  let with_transport transport t = { t with transport }
  let with_copy_mode copy_mode t = { t with copy_mode }
  let with_container_pid pid t = { t with container_pid = Some pid }
  let with_command cmd t = { t with command = Some cmd }
  let with_drop_privileges drop_privileges t = { t with drop_privileges }
  let with_seccomp_heuristic seccomp_heuristic t = { t with seccomp_heuristic }
  let with_pci pci t = { t with pci }
  let with_net net t = { t with net = Some net }
  let with_faults plan t = { t with faults = Some plan }
  let with_symbol_cache cache t = { t with symbol_cache = Some cache }
  let with_journal journal t = { t with journal }
  let with_revalidate revalidate t = { t with revalidate }
  let transport t = t.transport
  let copy_mode t = t.copy_mode
  let container_pid t = t.container_pid
  let command t = t.command
  let drop_privileges t = t.drop_privileges
  let seccomp_heuristic t = t.seccomp_heuristic
  let pci t = t.pci
  let net t = t.net
  let faults t = t.faults
  let symbol_cache t = t.symbol_cache
  let journal t = t.journal
  let revalidate t = t.revalidate

  let validate t =
    if t.pci && t.transport = Devices.Wrap_syscall then
      Error
        "the PCI transport needs ioregionfd doorbells (wrap_syscall \
         intercepts KVM_RUN exits that MSI-X-only irqchips route \
         differently)"
    else if
      match t.net with
      | Some { fabric; port } -> Net.Link.fabric_of_port port != fabric
      | None -> false
    then Error "net attachment: the port is not cabled on the supplied fabric"
    else if (match t.container_pid with Some p -> p <= 0 | None -> false) then
      Error "container_pid must be positive"
    else if t.command = Some "" then Error "command must be non-empty"
    else Ok t
end

type session = {
  cfg : Config.t;
  vmsh : Proc.t;
  tracee : Tracee.t;
  mem : Hyp_mem.t;
  devs : Devices.t;
  anal : Symbol_analysis.analysis;
  loaded : Loader.loaded;
  pump : unit -> unit;
  journal : Journal.t option;
      (** sealed on success; replayed by {!detach} to restore the guest *)
}

let vmsh_process s = s.vmsh
let devices s = s.devs
let transport s = Config.transport s.cfg
let config s = s.cfg
let analysis s = s.anal
let status s = Loader.poll_status ~mem:s.mem s.loaded
let journal s = s.journal

let ( let* ) = Result.bind

(* Per-phase profiling, always-on: each attach phase feeds its virtual
   duration into a stage.attach.<phase>_ns histogram and one
   "attach.phase" flight-recorder event. Pure observation — identical
   in every run — so determinism is preserved. The Observe span inside
   still only fires when the ring sink is enabled. *)
let phase host name f =
  let obs = host.Host.observe in
  let clock = host.Host.clock in
  let t0 = Hostos.Clock.now_ns clock in
  let finish () =
    let dur = Hostos.Clock.now_ns clock -. t0 in
    Observe.Metrics.observe
      (Observe.Metrics.histogram (Observe.metrics obs)
         ("stage.attach." ^ name ^ "_ns"))
      dur;
    Trace.Recorder.record host.Host.recorder ~kind:"attach.phase"
      ~args:[ ("name", Trace.S name); ("dur_ns", Trace.I (int_of_float dur)) ]
      ();
    Observe.log obs Observe.Debug "attach phase %s: %.0f ns" name dur
  in
  match Observe.span obs ~name f with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* Journal plumbing: [jrec] records an undo whose failure matters (the
   closure returns a result; failures surface as [Rollback_failed]),
   [jrec_u] one that cannot fail. Both are no-ops when the transaction
   journal is disabled. *)
let jrec j ~what undo =
  match j with
  | Some j ->
      Journal.record j ~what (fun () ->
          match undo () with Ok _ -> () | Error e -> E.fail e)
  | None -> ()

let jrec_u j ~what undo =
  match j with Some j -> Journal.record j ~what undo | None -> ()

(* Virtual-time watchdog budgets. Generously above what any fault-free
   phase spends, so they only fire when the guest or the handshake
   hangs — turning a would-be unbounded wait into abort → rollback. *)
let ready_deadline_ns = 1_000_000_000.
let handshake_deadline_ns = 1_000_000_000.

(* The watchdog counter registers lazily, on first fire: runs that never
   trip a deadline stay byte-identical. *)
let deadline_error obs ~what ~elapsed_ns =
  Observe.Metrics.incr
    (Observe.Metrics.counter (Observe.metrics obs) "watchdog.fired");
  E.Context (what, E.Deadline_exceeded (int_of_float elapsed_ns))

(* The twelve kernel interfaces VMSH relies on (paper §5). *)
let required_symbols =
  [
    "printk"; "register_virtio_mmio_dev"; "unregister_virtio_mmio_dev";
    "filp_open"; "filp_close"; "kernel_read"; "kernel_write";
    "kthread_create_on_node"; "wake_up_process"; "kernel_clone"; "do_exit";
    "schedule";
  ]

(* The devices every attach stands up, in registration order; the
   registry derives windows and GSIs from this order. *)
let device_plan = [ Devices.Console; Devices.Blk; Devices.Net; Devices.Ninep ]

let missing_symbols anal =
  List.filter (fun s -> Symbol_analysis.resolve anal s = None) required_symbols

(* Use-time TOCTOU check: the scanned kernel structures are only
   trusted at the moment the loader patches the guest, and by then a
   hostile guest may have rewritten them. Re-validate against the
   scan's witness; on a mismatch, grant the guest one benefit of the
   doubt (it may have legitimately modified and settled its ksymtab —
   e.g. a module load) with a single cache-bypassing rescan. A second
   mismatch is misbehavior: abort, roll back, never patch through lying
   metadata. The recovery counter and trace event register lazily, so a
   well-behaved run stays byte-identical. *)
let revalidated_analysis host mem ~cr3 anal =
  match Symbol_analysis.revalidate ~names:required_symbols mem ~cr3 anal with
  | Ok () -> Ok anal
  | Error first -> (
      Observe.Metrics.incr
        (Observe.Metrics.counter
           (Observe.metrics host.Host.observe)
           "recovery.toctou_rescan");
      Trace.Recorder.record host.Host.recorder ~kind:"hostile.rescan"
        ~args:[ ("reason", Trace.S first) ]
        ();
      match Symbol_analysis.analyze mem ~cr3 with
      | Error m ->
          Error
            (E.Guest_misbehavior
               (Printf.sprintf "%s; rescan found no kernel (%s)" first m))
      | Ok anal' -> (
          match missing_symbols anal' with
          | _ :: _ as missing ->
              Error
                (E.Guest_misbehavior
                   (Printf.sprintf "%s; rescan lost required symbols: %s" first
                      (String.concat ", " missing)))
          | [] -> (
              match
                Symbol_analysis.revalidate ~names:required_symbols mem ~cr3
                  anal'
              with
              | Ok () -> Ok anal'
              | Error second ->
                  Error
                    (E.Guest_misbehavior
                       (Printf.sprintf
                          "scanned kernel structures keep mutating under the \
                           scanner: %s"
                          second)))))

(* Install an MSI route for [gsi] (the PCI transport's interrupt path:
   MSI-X-only irqchips accept irqfds only for MSI-routed GSIs). *)
let install_msi_route tracee ~gsi =
  let arg = Bytes.make Kvm.Api.msi_route_size '\000' in
  Bytes.set_int32_le arg 0 (Int32.of_int gsi);
  Bytes.set_int64_le arg 4 0xfee0_0000L;
  Bytes.set_int32_le arg 12 (Int32.of_int (0x4000 lor gsi));
  match
    Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
      ~code:Kvm.Api.set_gsi_routing ~arg ()
  with
  | Ok _ -> Ok ()
  | Error e -> Error (E.Context ("KVM_SET_GSI_ROUTING", e))

(* Create an eventfd inside the hypervisor, register it as an irqfd for
   [gsi], and return the tracee-side descriptor number. The undo
   deassigns the irqfd (flags bit 0) and closes the remote eventfd. *)
let make_remote_irqfd tracee ~j ~gsi =
  let* ev = Tracee.inject tracee ~nr:Syscall.Nr.eventfd2 ~args:[||] in
  jrec j ~what:(Printf.sprintf "remote eventfd (gsi %d)" gsi) (fun () ->
      Tracee.inject tracee ~nr:Syscall.Nr.close ~args:[| ev |]);
  let arg = Bytes.make Kvm.Api.irqfd_req_size '\000' in
  Bytes.set_int32_le arg 0 (Int32.of_int ev);
  Bytes.set_int32_le arg 4 (Int32.of_int gsi);
  let* _ =
    match
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee) ~code:Kvm.Api.irqfd
        ~arg ()
    with
    | Ok r -> Ok r
    | Error _ ->
        Error
          (E.Unsupported
             "KVM_IRQFD rejected: this hypervisor's VM has no GSI-capable \
              irqchip (PCIe MSI-X only) — MMIO transport unsupported (retry \
              with the VirtIO-over-PCI transport)")
  in
  jrec j ~what:(Printf.sprintf "irqfd gsi %d" gsi) (fun () ->
      let arg = Bytes.make Kvm.Api.irqfd_req_size '\000' in
      Bytes.set_int32_le arg 0 (Int32.of_int ev);
      Bytes.set_int32_le arg 4 (Int32.of_int gsi);
      Bytes.set_int32_le arg 8 1l (* KVM_IRQFD_FLAG_DEASSIGN *);
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee) ~code:Kvm.Api.irqfd
        ~arg ());
  Ok ev

let rec result_map f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = result_map f rest in
      Ok (y :: ys)

(* An injected UNIX-socket connection from the tracee back into the
   VMSH process: bind, connect-back, accept. Each descriptor it creates
   gets an undo entry, so an aborted attach leaks no fds on either
   side. *)
let connect_tracee_back host vmsh tracee ~j ~path =
  let* listener =
    match Host.unix_bind host vmsh ~path with
    | Ok fd -> Ok fd
    | Error e -> Error (E.substrate ("bind " ^ path) e)
  in
  jrec j ~what:("unix listener " ^ path) (fun () ->
      Host.unix_unbind host ~path;
      Result.map_error
        (fun e -> E.substrate "close listener" e)
        (Proc.close_fd vmsh listener.Fd.num));
  let* remote_sock =
    Tracee.connect_back tracee ~path ~on_socket:(fun sock ->
        jrec j ~what:"tracee control socket" (fun () ->
            Tracee.inject tracee ~nr:Syscall.Nr.close ~args:[| sock |]))
  in
  let* local_sock =
    match Host.unix_accept host vmsh ~listener with
    | Ok fd -> Ok fd
    | Error e -> Error (E.substrate "accept" e)
  in
  jrec j ~what:"local control socket" (fun () ->
      Result.map_error
        (fun e -> E.substrate "close socket" e)
        (Proc.close_fd vmsh local_sock.Fd.num));
  Ok (listener, local_sock, remote_sock)

(* Pull tracee descriptors into the VMSH process over an injected
   UNIX-socket connection with SCM_RIGHTS. The receive loop runs under
   the device-handshake watchdog: a peer that stops sending aborts the
   attach (and rolls back) instead of spinning forever. *)
let retrieve_fds host vmsh tracee remote_fds ~j ~path =
  let* _listener, local_sock, remote_sock =
    connect_tracee_back host vmsh tracee ~j ~path
  in
  let* () = Tracee.send_fds_back tracee ~sock_fd:remote_sock remote_fds in
  let clock = host.Host.clock in
  let start = Hostos.Clock.now_ns clock in
  let rec recv n acc =
    if n = 0 then Ok (List.rev acc)
    else
      let elapsed = Hostos.Clock.now_ns clock -. start in
      if elapsed > handshake_deadline_ns then
        Error
          (deadline_error host.Host.observe ~what:"device handshake"
             ~elapsed_ns:elapsed)
      else
        match Host.recv_fd host vmsh ~sock:local_sock with
        | Ok fd ->
            jrec j ~what:(Printf.sprintf "received irqfd %d" fd.Fd.num)
              (fun () ->
                Result.map_error
                  (fun e -> E.substrate "close irqfd" e)
                  (Proc.close_fd vmsh fd.Fd.num));
            recv (n - 1) (fd :: acc)
        | Error e -> Error (E.substrate "recv_fd" e)
  in
  let* fds = recv (List.length remote_fds) [] in
  Ok (fds, local_sock, remote_sock)

(* The simulated-KVM VM object behind the tracee's vm fd (the
   simulation's stand-in for in-kernel state only ioctls can reach). *)
let vm_of_tracee host tracee ~hypervisor_pid =
  let hyp = Host.proc_exn host ~pid:hypervisor_pid in
  match Proc.fd hyp (Tracee.vm_fd tracee) with
  | Ok fd -> (
      match Kvm.Vm.vm_of_fd fd with
      | Some vm -> Ok vm
      | None -> Error (E.Msg "vm fd does not denote a VM"))
  | Error e -> Error (E.substrate "vm fd lookup" e)

let setup_ioregionfd host vmsh tracee devs ~j ~hypervisor_pid =
  let path =
    Printf.sprintf "/run/vmsh-ioregion-%d-%d.sock" hypervisor_pid
      vmsh.Proc.pid
  in
  let* _listener, local_sock, remote_sock =
    connect_tracee_back host vmsh tracee ~j ~path
  in
  let region_base, region_len = Devices.region devs in
  let ioregion_arg ~flags =
    let arg = Bytes.make Kvm.Api.ioregion_req_size '\000' in
    Bytes.set_int64_le arg 0 (Int64.of_int region_base);
    Bytes.set_int64_le arg 8 (Int64.of_int region_len);
    Bytes.set_int32_le arg 16 (Int32.of_int remote_sock);
    Bytes.set_int32_le arg 20 (Int32.of_int remote_sock);
    Bytes.set_int32_le arg 24 (Int32.of_int flags);
    arg
  in
  let* _ =
    match
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
        ~code:Kvm.Api.set_ioregion ~arg:(ioregion_arg ~flags:0) ()
    with
    | Ok r -> Ok r
    | Error e -> Error (E.Context ("KVM_SET_IOREGION", e))
  in
  jrec j ~what:"ioregion registration" (fun () ->
      Tracee.inject_ioctl tracee ~fd:(Tracee.vm_fd tracee)
        ~code:Kvm.Api.set_ioregion
        ~arg:(ioregion_arg ~flags:1 (* detach *))
        ());
  (* Scheduling seam of the simulation: register the service callback
     that stands for "the VMSH process wakes up when its socket becomes
     readable" (see DESIGN.md). *)
  let* vm = vm_of_tracee host tracee ~hypervisor_pid in
  let pump_id =
    Kvm.Vm.add_ioregion_pump vm (Devices.ioregion_pump devs ~sock:local_sock)
  in
  jrec_u j ~what:"ioregion pump" (fun () ->
      Kvm.Vm.remove_ioregion_pump vm pump_id);
  Ok ()

(* Poll the library's status word until the overlay reports ready,
   under the guest-ready watchdog: a guest that never flips the word —
   or burns unbounded virtual time getting there — aborts the attach. *)
let wait_ready ~mem ~loaded ~pump =
  let host = Hyp_mem.host mem in
  let clock = host.Host.clock in
  let start = Hostos.Clock.now_ns clock in
  let rec go tries =
    (* fleet interleave point (and crash point): each status poll is
       one scheduler slice *)
    Faults.yield_tick host.Host.faults;
    Sched.yield ();
    let elapsed = Hostos.Clock.now_ns clock -. start in
    if elapsed > ready_deadline_ns then
      Error
        (deadline_error host.Host.observe ~what:"guest-ready poll"
           ~elapsed_ns:elapsed)
    else
      let s = Loader.poll_status ~mem loaded in
      if s = Klib_builder.status_done then Ok ()
      else if s >= 0x80 then Error (E.Guest_error s)
      else if tries = 0 then Error (E.Timeout s)
      else begin
        pump ();
        go (tries - 1)
      end
  in
  go 16

let attach host ~hypervisor_pid ~fs_image ?config ~pump () =
  let cfg = match config with Some c -> c | None -> Config.make () in
  let obs = host.Host.observe in
  let attach_t0 = Hostos.Clock.now_ns host.Host.clock in
  Trace.Recorder.record host.Host.recorder ~kind:"attach.begin"
    ~args:[ ("hypervisor_pid", Trace.I hypervisor_pid) ]
    ();
  Observe.span obs ~name:"attach"
    ~attrs:
      [
        ("transport", Observe.S (Devices.show_transport (Config.transport cfg)));
        ("hypervisor_pid", Observe.I hypervisor_pid);
      ]
  @@ fun () ->
  (* The attach is a transaction: [jref] collects an undo entry for
     every guest/hypervisor mutation below (and [Hyp_mem] adds byte
     entries for guest-memory writes once [memr] is set). Any abort —
     error, escaped exception, or a swept crash point — replays the
     journal before returning. *)
  let jref = ref None in
  let memr = ref None in
  let result =
    try
    let* cfg =
      match Config.validate cfg with
      | Ok c -> Ok c
      | Error m -> Error (E.Invalid_config m)
    in
    (match Config.faults cfg with
    | Some plan -> Host.arm_faults host plan
    | None -> ());
    let j = if Config.journal cfg then Some (Journal.create ()) else None in
    jref := j;
    (* VMSH starts with the privileges it needs for discovery and drops
       them afterwards (paper §4.5). *)
    let vmsh =
      Host.spawn host ~name:"vmsh" ~uid:1000
        ~caps:[ Proc.CAP_BPF; Proc.CAP_SYS_PTRACE ] ()
    in
    let* tracee =
      Tracee.attach
        ~seccomp_heuristic:(Config.seccomp_heuristic cfg)
        host ~vmsh ~pid:hypervisor_pid
    in
    (* recorded first, so it replays last: every other injected undo
       still needs the scratch page for its ioctl arguments *)
    jrec j ~what:"scratch mmap" (fun () ->
        Tracee.inject tracee ~nr:Syscall.Nr.munmap
          ~args:[| Tracee.scratch tracee; 8192 |]);
    Faults.yield_tick host.Host.faults;
    Sched.yield ();
    let* slots =
      phase host "memslot-dump" (fun () -> Memslot_discovery.discover tracee)
    in
    if Config.drop_privileges cfg then begin
      Proc.drop_cap vmsh Proc.CAP_BPF;
      Proc.drop_cap vmsh Proc.CAP_SYS_ADMIN
    end;
    let mem =
      Hyp_mem.create host ~vmsh ~hypervisor_pid ~slots
        ~mode:(Config.copy_mode cfg) ()
    in
    Hyp_mem.set_journal mem j;
    memr := Some mem;
    let* regs =
      phase host "register-read" (fun () ->
          match Tracee.get_vcpu_regs tracee (List.hd (Tracee.vcpus tracee)) with
          | Ok r -> Ok r
          | Error e -> Error (E.Context ("KVM_GET_REGS injection", e)))
    in
    Faults.yield_tick host.Host.faults;
    Sched.yield ();
    let* anal =
      phase host "symbol-analysis" (fun () ->
          Result.map_error
            (fun m -> E.Msg m)
            (Symbol_analysis.analyze ?cache:(Config.symbol_cache cfg) mem
               ~cr3:regs.X86.Regs.cr3))
    in
    let* () =
      let missing = missing_symbols anal in
      if missing = [] then Ok ()
      else
        Error
          (E.Msg
             ("guest kernel does not export required symbols: "
             ^ String.concat ", " missing))
    in
    Faults.yield_tick host.Host.faults;
    Sched.yield ();
    let* devs =
      phase host "device-setup" @@ fun () ->
      (* interrupt plumbing; the PCI transport routes the GSIs as MSIs
         first, so the irqfds work on MSI-X-only irqchips *)
      let gsis = Devices.gsi_plan device_plan in
      let* () =
        if Config.pci cfg then
          let* vm = vm_of_tracee host tracee ~hypervisor_pid in
          let rec route = function
            | [] -> Ok ()
            | (_, gsi) :: rest ->
                let* () = install_msi_route tracee ~gsi in
                (* KVM_SET_GSI_ROUTING has no removal encoding; the undo
                   drops the route from the simulated irqchip directly *)
                jrec_u j ~what:(Printf.sprintf "MSI route gsi %d" gsi)
                  (fun () -> Kvm.Vm.remove_msi_route vm ~gsi);
                route rest
          in
          route gsis
        else Ok ()
      in
      let* remote_evs =
        result_map (fun (_, gsi) -> make_remote_irqfd tracee ~j ~gsi) gsis
      in
      let* fds, _ctl_local, _ctl_remote =
        retrieve_fds host vmsh tracee remote_evs ~j
          ~path:
            (Printf.sprintf "/run/vmsh-%d-%d.sock" hypervisor_pid vmsh.Proc.pid)
      in
      let* () =
        if List.length fds = List.length device_plan then Ok ()
        else Error (E.Msg "fd passing returned the wrong number of descriptors")
      in
      let devs =
        Devices.create ~mem ~tracee ~image:fs_image ~pci:(Config.pci cfg)
          ?net:
            (Option.map
               (fun { fabric; port } -> (fabric, port))
               (Config.net cfg))
          ()
      in
      List.iter2
        (fun kind irqfd ->
          let h = Devices.register devs kind ~irqfd in
          jrec_u j
            ~what:(Printf.sprintf "%s device" (Devices.kind_name kind))
            (fun () -> Devices.unregister devs h))
        device_plan fds;
      let* () =
        match Config.transport cfg with
        | Devices.Wrap_syscall ->
            Devices.install_wrap_syscall devs;
            jrec_u j ~what:"wrap_syscall hook" (fun () ->
                Devices.uninstall_wrap_syscall devs);
            Ok ()
        | Devices.Ioregionfd ->
            setup_ioregionfd host vmsh tracee devs ~j ~hypervisor_pid
      in
      Ok devs
    in
    Faults.yield_tick host.Host.faults;
    Sched.yield ();
    let* loaded, anal =
      phase host "klib-sideload" @@ fun () ->
      (* the scan is stale by now if the guest raced it: re-check the
         witnessed structures before trusting any symbol address *)
      let* anal =
        if Config.revalidate cfg then
          revalidated_analysis host mem ~cr3:regs.X86.Regs.cr3 anal
        else Ok anal
      in
      (* guest program + kernel library *)
      let program =
        Overlay.register
          {
            Overlay.container_pid = Config.container_pid cfg;
            command = Config.command cfg;
          }
      in
      let image, layout =
        (* the klib drives each device through its PCI config window
           when the PCI transport is active, through the register
           window itself otherwise — handle_window picks *)
        let win kind = Devices.handle_window (Devices.handle_exn devs kind) in
        let gsi kind = Devices.handle_gsi (Devices.handle_exn devs kind) in
        Klib_builder.build ~version:anal.Symbol_analysis.version
          ~guest_program:program ~pci:(Config.pci cfg)
          ~console_base:(win Devices.Console) ~blk_base:(win Devices.Blk)
          ~net_base:(win Devices.Net) ~ninep_base:(win Devices.Ninep)
          ~console_gsi:(gsi Devices.Console) ~blk_gsi:(gsi Devices.Blk)
          ~net_gsi:(gsi Devices.Net) ~ninep_gsi:(gsi Devices.Ninep) ()
      in
      let* loaded = Loader.load ~tracee ~mem ~analysis:anal ~image ~layout in
      let* () = Loader.redirect ~tracee ~mem loaded in
      pump ();
      let* () = wait_ready ~mem ~loaded ~pump in
      Ok (loaded, anal)
    in
    Ok { cfg; vmsh; tracee; mem; devs; anal; loaded; pump; journal = j }
    with
    (* A substrate failure that exhausted its bounded retries (or guest
       state the sideloader cannot parse) aborts the attach cleanly: the
       caller gets a diagnosable error, never an escaped exception. *)
    | Faults.Crash_point k ->
        Error
          (E.Attach_aborted (E.Msg (Printf.sprintf "crash point at yield %d" k)))
    | E.Error e -> Error (E.Attach_aborted e)
    | Failure msg -> Error (E.Attach_aborted (E.Msg msg))
    | Kvm.Vm.Guest_error msg -> Error (E.Attach_aborted (E.Guest_fault msg))
  in
  let total_ns () = Hostos.Clock.now_ns host.Host.clock -. attach_t0 in
  let observe_total () =
    Observe.Metrics.observe
      (Observe.Metrics.histogram (Observe.metrics obs) "stage.attach.total_ns")
      (total_ns ())
  in
  match result with
  | Ok s ->
      (* Commit: freeze the log. Steady-state device writes from here on
         are tracked only as oracle-exclusion intervals; [detach] replays
         the sealed log to restore the guest. *)
      (match s.journal with Some j -> Journal.seal j | None -> ());
      observe_total ();
      Trace.Recorder.record host.Host.recorder ~kind:"attach.commit"
        ~args:[ ("dur_ns", Trace.I (int_of_float (total_ns ()))) ]
        ();
      Observe.log obs Observe.Info "attach committed in %.0f virtual ns"
        (total_ns ());
      Ok s
  | Error err -> (
      (* Abort → rollback. Crash points are disarmed first (the rollback
         itself crosses yield points) and the journal is detached from
         the memory view so undo writes go through the raw path. *)
      Faults.set_abort_at_yield host.Host.faults None;
      (match !memr with Some m -> Hyp_mem.set_journal m None | None -> ());
      observe_total ();
      Observe.log obs Observe.Info "attach aborted: %s" (E.to_string err);
      match !jref with
      | None ->
          Trace.Recorder.record host.Host.recorder ~kind:"attach.abort"
            ~args:[ ("entries", Trace.I 0) ]
            ();
          Error err
      | Some j -> (
          Trace.Recorder.record host.Host.recorder ~kind:"journal.rollback"
            ~args:
              [
                ("entries", Trace.I (Journal.length j));
                ("origin", Trace.S "abort");
              ]
            ();
          match Journal.replay ~metrics:(Observe.metrics obs) j with
          | Ok () -> Error err
          | Error re -> Error (E.Rollback_failed re)))

let console_send s line =
  Devices.feed_console_input s.devs (Bytes.of_string (line ^ "\n"));
  s.pump ()

let console_recv s =
  s.pump ();
  Bytes.to_string (Devices.read_console_output s.devs)

let console_roundtrip s line =
  (* drain any pending output (e.g. the prompt) first *)
  ignore (console_recv s);
  console_send s line;
  console_recv s

(* Detach = replay the sealed journal, then drop ptrace. The replay
   unwinds in reverse mutation order: vCPU redirect and guest bytes
   first, then the memslot and its mmap, then device registrations and
   irqfd/ioregionfd wiring, sockets and fds, the scratch page last.
   Ptrace must go last of all — every injected undo still needs the
   tracee stopped. (The pre-journal detach dropped ptrace first, which
   left the irqfds and the ioregion registration dangling in KVM.) *)
let detach s =
  let host = Hyp_mem.host s.mem in
  let replayed =
    match s.journal with
    | Some j ->
        Hyp_mem.set_journal s.mem None;
        Trace.Recorder.record host.Host.recorder ~kind:"journal.rollback"
          ~args:
            [
              ("entries", Trace.I (Journal.length j));
              ("origin", Trace.S "detach");
            ]
          ();
        Journal.replay ~metrics:(Observe.metrics host.Host.observe) j
    | None ->
        (* journal disabled: legacy teardown, transport hook only *)
        (match Config.transport s.cfg with
        | Devices.Wrap_syscall -> Devices.uninstall_wrap_syscall s.devs
        | Devices.Ioregionfd -> ());
        Ok ()
  in
  (* ptrace goes even when an undo failed — a half-restored guest with a
     dangling tracer would be strictly worse *)
  Tracee.detach s.tracee;
  match replayed with
  | Ok () -> Ok ()
  | Error re -> Error (E.Rollback_failed re)
