module Host = Hostos.Host
module Proc = Hostos.Proc

type slot = { gpa : int; size : int; hva : int }
type copy_mode = Bulk | Chunked_4k | Peek_u64

type t = {
  host : Host.t;
  vmsh : Proc.t;
  pid : int;
  mutable slot_list : slot list;
  mutable cmode : copy_mode;
  mutable journal : Journal.t option;
}

let create host ~vmsh ~hypervisor_pid ~slots ?(mode = Bulk) () =
  { host; vmsh; pid = hypervisor_pid; slot_list = slots; cmode = mode;
    journal = None }

let host t = t.host
let slots t = t.slot_list
let add_slot t s = t.slot_list <- t.slot_list @ [ s ]
let remove_slot t ~gpa = t.slot_list <- List.filter (fun s -> s.gpa <> gpa) t.slot_list
let mode t = t.cmode
let set_mode t m = t.cmode <- m
let set_journal t j = t.journal <- j
let journal t = t.journal

(* Overlay occupancy of the hypervisor process backing this fabric: a
   forked VMM maps guest RAM as a CoW view over the shared baseline,
   and every VMSH write lands in the clone's private overlay through
   the same process_vm path — this is the attach-side measure of that
   private footprint (all zeros for a cold-booted hypervisor). *)
let overlay_stats t =
  match Host.find_proc t.host ~pid:t.pid with
  | None ->
      {
        Hostos.Mem.cs_pages_total = 0;
        cs_pages_copied = 0;
        cs_silent_writes = 0;
        cs_resident_bytes = 0;
      }
  | Some p -> Hostos.Mem.Addr_space.cow_totals p.Proc.aspace

let gpa_to_hva t gpa =
  List.find_opt (fun s -> gpa >= s.gpa && gpa < s.gpa + s.size) t.slot_list
  |> Option.map (fun s -> s.hva + (gpa - s.gpa))

let top_of_guest_phys t =
  List.fold_left (fun acc s -> max acc (s.gpa + s.size)) 0 t.slot_list

(* Pure bounds probe — the virtqueue bounds validator asks this for
   every descriptor buffer before any process_vm call is issued, so a
   hostile out-of-bounds address is quarantined instead of raised. *)
let backed t ~gpa ~len =
  len >= 0
  && gpa >= 0
  &&
  let rec go gpa len =
    len = 0
    ||
    match
      List.find_opt (fun s -> gpa >= s.gpa && gpa < s.gpa + s.size) t.slot_list
    with
    | None -> false
    | Some s ->
        let chunk = min (s.gpa + s.size - gpa) len in
        go (gpa + chunk) (len - chunk)
  in
  go gpa len

let fail_errno what e = Vmsh_error.fail (Vmsh_error.substrate ("Hyp_mem." ^ what) e)

(* All remote-memory traffic goes through the bounded-retry wrappers: a
   transient EFAULT (page mid-remap under the hypervisor) or EAGAIN is
   retried with virtual-time backoff; a persistent one still fails. *)
let vm_read t ~addr ~len =
  Retry.with_backoff t.host ~counter:"recovery.vm_rw_retry"
    ~should_retry:(function
      | Error (Hostos.Errno.EFAULT | Hostos.Errno.EAGAIN) -> true
      | _ -> false)
    (fun () -> Host.process_vm_read t.host ~caller:t.vmsh ~pid:t.pid ~addr ~len)

let vm_write t ~addr b =
  Retry.with_backoff t.host ~counter:"recovery.vm_rw_retry"
    ~should_retry:(function
      | Error (Hostos.Errno.EFAULT | Hostos.Errno.EAGAIN) -> true
      | _ -> false)
    (fun () -> Host.process_vm_write t.host ~caller:t.vmsh ~pid:t.pid ~addr b)

let vm_readv t ~iov =
  Retry.with_backoff t.host ~counter:"recovery.vm_rw_retry"
    ~should_retry:(function
      | Error (Hostos.Errno.EFAULT | Hostos.Errno.EAGAIN) -> true
      | _ -> false)
    (fun () -> Host.process_vm_readv t.host ~caller:t.vmsh ~pid:t.pid ~iov)

let vm_writev t ~iov =
  Retry.with_backoff t.host ~counter:"recovery.vm_rw_retry"
    ~should_retry:(function
      | Error (Hostos.Errno.EFAULT | Hostos.Errno.EAGAIN) -> true
      | _ -> false)
    (fun () -> Host.process_vm_writev t.host ~caller:t.vmsh ~pid:t.pid ~iov)

let read_hva t ~hva ~len =
  match t.cmode with
  | Bulk -> (
      match vm_read t ~addr:hva ~len with
      | Ok b -> b
      | Error e -> fail_errno "read_hva" e)
  | Chunked_4k ->
      let clock = t.host.Host.clock in
      let out = Bytes.create len in
      let rec go off =
        if off < len then begin
          let chunk = min 4096 (len - off) in
          (* bounce through a local buffer: the extra pread syscall and
             the extra memcpy of the unoptimised path *)
          Hostos.Clock.syscall clock;
          Hostos.Clock.copy_bytes clock chunk;
          (match vm_read t ~addr:(hva + off) ~len:chunk with
          | Ok b -> Bytes.blit b 0 out off chunk
          | Error e -> fail_errno "read_hva(chunked)" e);
          go (off + chunk)
        end
      in
      go 0;
      out
  | Peek_u64 ->
      let out = Bytes.create len in
      let rec go off =
        if off < len then begin
          let chunk = min 8 (len - off) in
          (match vm_read t ~addr:(hva + off) ~len:chunk with
          | Ok b -> Bytes.blit b 0 out off chunk
          | Error e -> fail_errno "read_hva(peek)" e);
          go (off + 8)
        end
      in
      go 0;
      out

let write_hva t ~hva b =
  match t.cmode with
  | Bulk -> (
      match vm_write t ~addr:hva b with
      | Ok () -> ()
      | Error e -> fail_errno "write_hva" e)
  | Chunked_4k ->
      let clock = t.host.Host.clock in
      let len = Bytes.length b in
      let rec go off =
        if off < len then begin
          let chunk = min 4096 (len - off) in
          Hostos.Clock.syscall clock;
          Hostos.Clock.copy_bytes clock chunk;
          (match vm_write t ~addr:(hva + off) (Bytes.sub b off chunk) with
          | Ok () -> ()
          | Error e -> fail_errno "write_hva(chunked)" e);
          go (off + chunk)
        end
      in
      go 0
  | Peek_u64 ->
      let len = Bytes.length b in
      let rec go off =
        if off < len then begin
          let chunk = min 8 (len - off) in
          (match vm_write t ~addr:(hva + off) (Bytes.sub b off chunk) with
          | Ok () -> ()
          | Error e -> fail_errno "write_hva(peek)" e);
          go (off + 8)
        end
      in
      go 0

(* Physical accesses may cross slot boundaries. [segments] resolves a
   gpa range to host-virtual (hva, len) pieces, merging pieces whose
   hva ranges happen to be contiguous so the Bulk path can hand the
   whole access to one vectored process_vm_readv/writev call. *)
let segments t ~what ~gpa ~len =
  let rec go gpa len acc =
    if len = 0 then List.rev acc
    else
      match
        List.find_opt
          (fun s -> gpa >= s.gpa && gpa < s.gpa + s.size)
          t.slot_list
      with
      | None ->
          Vmsh_error.fail
            (Vmsh_error.Msg (Printf.sprintf "Hyp_mem.%s: 0x%x unbacked" what gpa))
      | Some s ->
          let avail = s.gpa + s.size - gpa in
          let chunk = min avail len in
          let hva = s.hva + (gpa - s.gpa) in
          let acc =
            match acc with
            | (phva, plen) :: rest when phva + plen = hva ->
                (phva, plen + chunk) :: rest
            | _ -> (hva, chunk) :: acc
          in
          go (gpa + chunk) (len - chunk) acc
  in
  go gpa len []

let read_phys t ~gpa ~len =
  if len = 0 then Bytes.empty
  else
    let segs = segments t ~what:"read_phys" ~gpa ~len in
    match (t.cmode, segs) with
    | Bulk, _ -> (
        (* one vectored syscall for the whole access, however many
           memslots back it *)
        match vm_readv t ~iov:segs with
        | Ok parts -> Bytes.concat Bytes.empty parts
        | Error e -> fail_errno "read_phys" e)
    | _, _ ->
        Bytes.concat Bytes.empty
          (List.map (fun (hva, len) -> read_hva t ~hva ~len) segs)

let write_phys_raw t ~gpa b =
  let len = Bytes.length b in
  if len > 0 then begin
    let segs = segments t ~what:"write_phys" ~gpa ~len in
    match t.cmode with
    | Bulk -> (
        let _, iov =
          List.fold_left
            (fun (off, acc) (hva, len) ->
              (off + len, (hva, Bytes.sub b off len) :: acc))
            (0, []) segs
        in
        match vm_writev t ~iov:(List.rev iov) with
        | Ok () -> ()
        | Error e -> fail_errno "write_phys" e)
    | _ ->
        ignore
          (List.fold_left
             (fun off (hva, len) ->
               write_hva t ~hva (Bytes.sub b off len);
               off + len)
             0 segs)
  end

(* Journal hook: before overwriting guest-physical bytes, read and
   record the old content so rollback can restore them (PTE installs
   arrive here too, via [pt_access]'s write_u64). Writes wholly inside
   an overlay-owned range (the fresh vmsh memslot and its page-table
   arena) are exempt — removing the slot undoes them wholesale. After
   the journal seals (attach committed), steady-state device writes are
   only noted as late-write intervals for the snapshot oracle. *)
let write_phys t ~gpa b =
  let len = Bytes.length b in
  (match t.journal with
  | Some j when len > 0 ->
      if Journal.sealed j then Journal.note_late_write j ~gpa ~len
      else if not (Journal.owns j ~gpa ~len) then begin
        let old = read_phys t ~gpa ~len in
        Journal.record j
          ~what:(Printf.sprintf "guest bytes 0x%x+%d" gpa len)
          (fun () -> write_phys_raw t ~gpa old)
      end
  | _ -> ());
  write_phys_raw t ~gpa b

let read_phys_u64 t gpa =
  Int64.to_int (Bytes.get_int64_le (read_phys t ~gpa ~len:8) 0)

let write_phys_u64 t gpa v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  write_phys t ~gpa b

let pt_access t =
  { X86.Page_table.read_u64 = read_phys_u64 t; write_u64 = write_phys_u64 t }

let read_virt t ~cr3 ~va ~len =
  let acc = pt_access t in
  let out = Bytes.create len in
  let page = X86.Layout.page_size in
  let rec go va dst remaining =
    if remaining = 0 then Some out
    else
      let page_rem = page - (va land (page - 1)) in
      let chunk = min remaining page_rem in
      match X86.Page_table.translate acc ~root:cr3 va with
      | None -> None
      | Some pa ->
          Bytes.blit (read_phys t ~gpa:pa ~len:chunk) 0 out dst chunk;
          go (va + chunk) (dst + chunk) (remaining - chunk)
  in
  go va 0 len
