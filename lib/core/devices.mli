(** VMSH's VirtIO devices, emulated inside the VMSH process (§4.3).

    Unlike qemu-blk, these devices live *outside* the hypervisor: they
    reach the virtqueues in guest memory through process_vm_readv-style
    remote accesses ({!Hyp_mem}), and their MMIO doorbells arrive
    through one of two transports:

    - {b wrap_syscall}: ptrace interception around every syscall of the
      hypervisor, peeking at KVM_RUN exits — taxes the whole hypervisor
      (Fig. 6's wrap_syscall rows);
    - {b ioregionfd}: the in-kernel MMIO-to-socket dispatch, invisible
      to the hypervisor (no tax on qemu-blk).

    Devices are added through a typed registry: {!create} claims the
    guest-physical region, {!register} places each device at the next
    free window and GSI. Register windows, PCI config windows and GSIs
    are all functions of the registration index, so callers never
    hard-code a device order. *)

type transport = Wrap_syscall | Ioregionfd

val show_transport : transport -> string

type kind = Console | Blk | Net | Ninep

val kind_name : kind -> string

type t

type handle
(** One registered device: window, interrupt route, queue state. *)

val gsi_base : int
(** First GSI the registry hands out (registration index [i] gets
    [gsi_base + i]). *)

val max_devices : int
(** Windows available in the claimed region. *)

val gsi_plan : kind list -> (kind * int) list
(** The GSIs {!register} will assign to this registration order —
    lets the attach sequence create irqfds before the devices exist. *)

val create :
  mem:Hyp_mem.t -> tracee:Tracee.t ->
  image:Blockdev.Backend.t ->
  ?pci:bool ->
  ?net:Net.Fabric.t * Net.Link.port -> ?mac:int -> unit -> t
(** Claim the device region; no devices exist until {!register}.
    [image] is the file-system image served by vmsh-blk (and, as a file
    tree, by vmsh-9p). [net] cables the NIC to one port of a
    {!Net.Link} on a deterministic fabric — without it the NIC still
    probes but transmits into the void. With [pci] the devices
    additionally expose PCI config spaces (vendor id, BAR0, MSI-X GSI)
    ahead of their register windows — the VirtIO-over-PCI transport. *)

val register : t -> kind -> irqfd:Hostos.Fd.t -> handle
(** Place a device of [kind] at the next free window/GSI and wire its
    doorbell handlers. [irqfd] is VMSH's local end of the descriptor
    passed back from the hypervisor. Raises [Invalid_argument] when the
    region is full or [kind] is already registered. *)

val unregister : t -> handle -> unit
(** Rollback of {!register}: drop the handle (its window and GSI become
    free again) and uncable the NIC's fabric-port handler if it was the
    network device. Safe to call in any order, but the journal replays
    registrations newest-first. *)

val handles : t -> handle list
(** Registration order. *)

val handle_of : t -> kind -> handle option
val handle_exn : t -> kind -> handle
val handle_kind : handle -> kind
val handle_base : handle -> int
(** Base of the register window (BAR0 under PCI). *)

val handle_cfg_base : handle -> int option
(** PCI config window, when the PCI transport is active. *)

val handle_gsi : handle -> int

val handle_window : handle -> int
(** The window the kernel library drives: config window under PCI,
    register window otherwise. *)

val console_base : t -> int
(** Base of the console's *register* window (its BAR0 under PCI).
    Raises when no console is registered (likewise the other per-kind
    accessors below). *)

val blk_base : t -> int
val net_base : t -> int
val ninep_base : t -> int

val region : t -> int * int
(** [(base, len)] of the full guest-physical region VMSH claims — the
    range to trap (register windows, plus config spaces under PCI). *)

val console_gsi : t -> int
val blk_gsi : t -> int
val net_gsi : t -> int
val ninep_gsi : t -> int

val nic_mac : t -> int
(** The 48-bit station address the NIC advertises in config space. *)

val handle_mmio_read : t -> addr:int -> len:int -> bytes option
(** [None] when the address is outside VMSH's windows. *)

val handle_mmio_write : t -> addr:int -> data:bytes -> bool
(** [false] when the address is outside VMSH's windows. *)

val install_wrap_syscall : t -> unit
(** Hook the tracee's syscalls; KVM_RUN exits for VMSH's MMIO windows
    are serviced and transparently re-entered. *)

val uninstall_wrap_syscall : t -> unit

val ioregion_pump : t -> sock:Hostos.Fd.t -> unit -> unit
(** The service loop run when KVM pushes request frames into VMSH's end
    of the ioregionfd socket: drain, dispatch, respond. *)

(** {1 Console plumbing (host side)} *)

val feed_console_input : t -> bytes -> unit
(** Deliver host-terminal input to the guest's receive queue (raising
    the console interrupt). *)

val read_console_output : t -> bytes
(** Drain what the guest transmitted. *)

val stats_requests : t -> int
(** Block requests served (for tests and benches). *)

val stats_net_frames : t -> int
(** Frames the guest transmitted through the NIC. *)

val try_feed_net : t -> unit
(** Push any parked inbound frames into the guest's receive ring,
    raising the net interrupt if something was delivered. *)
