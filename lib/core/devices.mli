(** VMSH's VirtIO devices, emulated inside the VMSH process (§4.3).

    Unlike qemu-blk, these devices live *outside* the hypervisor: they
    reach the virtqueues in guest memory through process_vm_readv-style
    remote accesses ({!Hyp_mem}), and their MMIO doorbells arrive
    through one of two transports:

    - {b wrap_syscall}: ptrace interception around every syscall of the
      hypervisor, peeking at KVM_RUN exits — taxes the whole hypervisor
      (Fig. 6's wrap_syscall rows);
    - {b ioregionfd}: the in-kernel MMIO-to-socket dispatch, invisible
      to the hypervisor (no tax on qemu-blk). *)

type transport = Wrap_syscall | Ioregionfd

val show_transport : transport -> string

type t

val create :
  mem:Hyp_mem.t -> tracee:Tracee.t ->
  image:Blockdev.Backend.t ->
  blk_irqfd:Hostos.Fd.t -> console_irqfd:Hostos.Fd.t ->
  net_irqfd:Hostos.Fd.t -> ninep_irqfd:Hostos.Fd.t ->
  ?pci:bool -> ?console_base:int -> ?blk_base:int ->
  ?net_base:int -> ?ninep_base:int ->
  ?net:Net.Fabric.t * Net.Link.port -> ?mac:int -> unit -> t
(** [image] is the file-system image served by vmsh-blk (and, as a file
    tree, by vmsh-9p); the irqfds are VMSH's local ends of the
    descriptors passed back from the hypervisor. [net] cables the NIC
    to one port of a {!Net.Link} on a deterministic fabric — without it
    the NIC still probes but transmits into the void. With [pci] the
    devices additionally expose PCI config spaces (vendor id, BAR0,
    MSI-X GSI) ahead of their register windows — the VirtIO-over-PCI
    transport. *)

val console_base : t -> int
(** Base of the console's *register* window (its BAR0 under PCI). *)

val blk_base : t -> int
val net_base : t -> int
val ninep_base : t -> int

val region : t -> int * int
(** [(base, len)] of the full guest-physical region VMSH claims — the
    range to trap (four register windows, plus four config spaces under
    PCI). *)

val console_gsi : t -> int
val blk_gsi : t -> int
val net_gsi : t -> int
val ninep_gsi : t -> int

val nic_mac : t -> int
(** The 48-bit station address the NIC advertises in config space. *)

val handle_mmio_read : t -> addr:int -> len:int -> bytes option
(** [None] when the address is outside VMSH's windows. *)

val handle_mmio_write : t -> addr:int -> data:bytes -> bool
(** [false] when the address is outside VMSH's windows. *)

val install_wrap_syscall : t -> unit
(** Hook the tracee's syscalls; KVM_RUN exits for VMSH's MMIO windows
    are serviced and transparently re-entered. *)

val uninstall_wrap_syscall : t -> unit

val ioregion_pump : t -> sock:Hostos.Fd.t -> unit -> unit
(** The service loop run when KVM pushes request frames into VMSH's end
    of the ioregionfd socket: drain, dispatch, respond. *)

(** {1 Console plumbing (host side)} *)

val feed_console_input : t -> bytes -> unit
(** Deliver host-terminal input to the guest's receive queue (raising
    the console interrupt). *)

val read_console_output : t -> bytes
(** Drain what the guest transmitted. *)

val stats_requests : t -> int
(** Block requests served (for tests and benches). *)

val stats_net_frames : t -> int
(** Frames the guest transmitted through the NIC. *)

val try_feed_net : t -> unit
(** Push any parked inbound frames into the guest's receive ring,
    raising the net interrupt if something was delivered. *)
