(* The rollback oracle: hash-based snapshots of guest state.

   [capture] digests guest physical memory page-by-page (through the
   simulated KVM's direct view — zero virtual-time cost, so snapshots
   never perturb schedules or benchmarks) plus every vCPU register
   file. [diff] then proves a detached/aborted attach restored the
   guest byte-for-byte: memslot sets equal, every page digest equal
   outside the exclusion set, registers equal.

   The exclusion set is page-granular and comes from two sources the
   caller supplies: intervals the guest itself dirtied while VMSH was
   attached (ground truth from [Kvm.Vm.dirty_intervals], windowed with
   {!dirty_since}) and the journal's post-seal late-write intervals
   (device ring updates jointly owned with the guest that requested
   the I/O). *)

let page_size = 4096

type t = {
  slots : (int * int * int * string array) list;
      (* (slot, gpa, size, per-page digests), sorted by slot *)
  regs : (int * string) list; (* (vcpu index, digest of register file) *)
  dirty_seen : int; (* length of the VM's dirty-interval list at capture *)
}

let digest_regs regs = Digest.bytes (Kvm.Api.regs_to_bytes regs)

let capture vm =
  let slots =
    Kvm.Vm.memslots vm
    |> List.map (fun (s : Kvm.Vm.memslot) ->
           let pages = (s.size + page_size - 1) / page_size in
           let digests =
             Array.init pages (fun i ->
                 let off = i * page_size in
                 let len = min page_size (s.size - off) in
                 Digest.bytes (Kvm.Vm.read_phys vm (s.gpa + off) len))
           in
           (s.slot, s.gpa, s.size, digests))
    |> List.sort compare
  in
  let regs =
    Kvm.Vm.vcpus vm
    |> List.map (fun v ->
           (Kvm.Vm.vcpu_index v, digest_regs (Kvm.Vm.vcpu_regs v)))
    |> List.sort compare
  in
  { slots; regs; dirty_seen = List.length (Kvm.Vm.dirty_intervals vm) }

(* Guest-write intervals accumulated since [snap] was captured. The
   VM's list is prepend-only, so the delta is its newest prefix. *)
let dirty_since vm snap =
  let all = Kvm.Vm.dirty_intervals vm in
  let fresh = List.length all - snap.dirty_seen in
  List.filteri (fun i _ -> i < fresh) all

(* Page indices of [slot] covered by any (gpa, len) interval. *)
let excluded_pages ~gpa ~size intervals =
  let excluded = Hashtbl.create 16 in
  List.iter
    (fun (base, len) ->
      if len > 0 && base < gpa + size && base + len > gpa then begin
        let lo = max base gpa and hi = min (base + len) (gpa + size) in
        let first = (lo - gpa) / page_size
        and last = (hi - 1 - gpa) / page_size in
        for p = first to last do
          Hashtbl.replace excluded p ()
        done
      end)
    intervals;
  excluded

(* Every discrepancy between two snapshots, as human-readable lines;
   [] means the guest state is byte-identical modulo excluded pages. *)
let diff ~before ~after ~exclude =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let key_of (slot, gpa, size, _) = (slot, gpa, size) in
  let bkeys = List.map key_of before.slots
  and akeys = List.map key_of after.slots in
  List.iter
    (fun ((slot, gpa, size) as k) ->
      if not (List.mem k akeys) then
        note "memslot %d (gpa 0x%x, %d bytes) vanished" slot gpa size)
    bkeys;
  List.iter
    (fun ((slot, gpa, size) as k) ->
      if not (List.mem k bkeys) then
        note "memslot %d (gpa 0x%x, %d bytes) leaked" slot gpa size)
    akeys;
  List.iter
    (fun (slot, gpa, size, bpages) ->
      match
        List.find_opt (fun s -> key_of s = (slot, gpa, size)) after.slots
      with
      | None -> ()
      | Some (_, _, _, apages) ->
          let excl = excluded_pages ~gpa ~size exclude in
          Array.iteri
            (fun p bd ->
              if (not (Hashtbl.mem excl p)) && apages.(p) <> bd then
                note "memslot %d page %d (gpa 0x%x) differs" slot p
                  (gpa + (p * page_size)))
            bpages)
    before.slots;
  List.iter
    (fun (idx, bd) ->
      match List.assoc_opt idx after.regs with
      | None -> note "vCPU %d vanished" idx
      | Some ad -> if ad <> bd then note "vCPU %d registers differ" idx)
    before.regs;
  List.rev !problems

let check ~before ~after ~exclude = diff ~before ~after ~exclude = []

(* One hex string summarizing the whole snapshot — what the flight
   recorder's replay-diff oracle compares between a live run and its
   replay. Folds every page digest and register digest in slot order,
   so two snapshots digest equal iff the captured state is equal. *)
let digest t =
  let b = Buffer.create 4096 in
  List.iter
    (fun (slot, gpa, size, pages) ->
      Buffer.add_string b (Printf.sprintf "%d:%x:%d;" slot gpa size);
      Array.iter (Buffer.add_string b) pages)
    t.slots;
  List.iter
    (fun (idx, d) ->
      Buffer.add_string b (string_of_int idx);
      Buffer.add_string b d)
    t.regs;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))
