module Host = Hostos.Host
module Proc = Hostos.Proc
module Ptrace = Hostos.Ptrace
module Syscall = Hostos.Syscall
module Errno = Hostos.Errno

let src = Logs.Src.create "vmsh.tracee" ~doc:"VMSH sideloader tracee handling"

module Log = (val Logs.src_log src : Logs.LOG)

type vcpu_handle = { index : int; fd_num : int; run_hva : int }

type t = {
  h : Host.t;
  vmsh : Proc.t;
  tracee_pid : int;
  session : Ptrace.session;
  vm_fd_num : int;
  vcpu_list : vcpu_handle list;
  scratch_hva : int;
  mutable seccomp_heuristic : bool;
}

let pid t = t.tracee_pid
let vm_fd t = t.vm_fd_num
let vcpus t = t.vcpu_list
let vmsh_proc t = t.vmsh
let host t = t.h
let scratch t = t.scratch_hva

let ( let* ) = Result.bind

let err m = Error (Vmsh_error.Msg m)

(* Same per-phase profiling as Attach.phase: virtual duration into a
   stage.attach.<name>_ns histogram plus one flight event, always-on. *)
let phase h name ?(attrs = []) f =
  let obs = h.Host.observe in
  let clock = h.Host.clock in
  let t0 = Hostos.Clock.now_ns clock in
  let finish () =
    let dur = Hostos.Clock.now_ns clock -. t0 in
    Observe.Metrics.observe
      (Observe.Metrics.histogram (Observe.metrics obs)
         ("stage.attach." ^ name ^ "_ns"))
      dur;
    Trace.Recorder.record h.Host.recorder ~kind:"attach.phase"
      ~args:[ ("name", Trace.S name); ("dur_ns", Trace.I (int_of_float dur)) ]
      ()
  in
  match Observe.span obs ~name ~attrs f with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* /proc-based discovery of the KVM descriptors (paper §5). *)
let discover_kvm host ~pid =
  let fds = Host.proc_fd_listing host ~pid in
  let vm_fd =
    List.find_opt (fun (_, label) -> label = "anon_inode:kvm-vm") fds
  in
  let vcpu_fds =
    List.filter_map
      (fun (num, label) ->
        match
          (try Scanf.sscanf label "anon_inode:kvm-vcpu:%d" (fun i -> Some i)
           with Scanf.Scan_failure _ | End_of_file | Failure _ -> None)
        with
        | Some index -> Some (index, num)
        | None -> None)
      fds
  in
  match vm_fd with
  | None -> err "no kvm-vm descriptor found in /proc/<pid>/fd"
  | Some (vm_fd_num, _) ->
      if vcpu_fds = [] then err "no kvm-vcpu descriptors found"
      else begin
        (* kvm_run pages from /proc/<pid>/maps *)
        let maps = Host.proc_maps host ~pid in
        let run_hva_of index =
          let tag = Printf.sprintf "kvm-vcpu-run:%d" index in
          List.find_opt (fun (_, _, t) -> t = tag) maps
          |> Option.map (fun (base, _, _) -> base)
        in
        let handles =
          List.filter_map
            (fun (index, fd_num) ->
              match run_hva_of index with
              | Some run_hva -> Some { index; fd_num; run_hva }
              | None -> None)
            (List.sort compare vcpu_fds)
        in
        if handles = [] then err "could not locate mmapped kvm_run pages"
        else Ok (vm_fd_num, handles)
      end

let classify ~nr ret =
  if ret < 0 then
    Error
      (match Errno.of_syscall_ret ret with
      | Error e ->
          Vmsh_error.Injection
            (Printf.sprintf "injected %s failed" (Syscall.Nr.name nr), e)
      | Ok _ -> assert false)
  else Ok ret

(* EINTR/EAGAIN from an injected syscall means the stop raced a signal
   and the call never executed — always safe to re-inject verbatim.
   EPERM is never retried: the seccomp heuristic depends on seeing it. *)
let transient_ret ret =
  match Errno.of_syscall_ret ret with
  | Error Errno.EINTR | Error Errno.EAGAIN -> true
  | _ -> false

let inject_raw h session ?tid ~nr ~args () =
  Retry.with_backoff h ~counter:"recovery.syscall_retry"
    ~should_retry:(function Ok ret -> transient_ret ret | Error _ -> false)
    (fun () -> Ptrace.inject_syscall h session ?tid ~nr ~args ())

let inject_session h session ~nr ~args =
  match inject_raw h session ~nr ~args () with
  | Error e -> Error (Vmsh_error.Injection ("injection transport", e))
  | Ok ret -> classify ~nr ret

(* The seccomp heuristic: probe every tracee thread until one's filter
   lets the syscall through. An organic EPERM from the syscall itself is
   indistinguishable from a filter kill — the heuristic's documented
   imprecision — so EPERM from the last thread is reported as such. *)
let inject_any_thread h session tracee_pid ~nr ~args =
  let threads =
    match Host.find_proc h ~pid:tracee_pid with
    | Some p -> List.map (fun th -> th.Proc.tid) p.Proc.threads
    | None -> []
  in
  let rec try_tids last = function
    | [] -> last
    | tid :: rest -> (
        match inject_raw h session ~tid ~nr ~args () with
        | Error e -> Error (Vmsh_error.Injection ("injection transport", e))
        | Ok ret ->
            if Errno.of_syscall_ret ret = Error Errno.EPERM then
              try_tids (classify ~nr ret) rest
            else classify ~nr ret)
  in
  try_tids (err "tracee has no threads") threads

let attach ?(seccomp_heuristic = false) h ~vmsh ~pid =
  let* session =
    phase h "ptrace-attach"
      ~attrs:[ ("pid", Observe.I pid) ]
      (fun () ->
        match
          Retry.with_backoff h ~counter:"recovery.attach_retry"
            ~should_retry:(function
              | Error Errno.EAGAIN -> true
              | _ -> false)
            (fun () -> Ptrace.attach h ~tracer:vmsh ~pid)
        with
        | Ok s ->
            Ptrace.interrupt h s;
            Ok s
        | Error e -> Error (Vmsh_error.Injection ("ptrace attach", e)))
  in
  let* vm_fd_num, vcpu_list, scratch_hva =
    phase h "fd-discovery" (fun () ->
        let* vm_fd_num, vcpu_list = discover_kvm h ~pid in
        let* scratch_hva =
          if seccomp_heuristic then
            inject_any_thread h session pid ~nr:Syscall.Nr.mmap
              ~args:[| 0; 8192 |]
          else inject_session h session ~nr:Syscall.Nr.mmap ~args:[| 0; 8192 |]
        in
        Ok (vm_fd_num, vcpu_list, scratch_hva))
  in
  Ok
    {
      h;
      vmsh;
      tracee_pid = pid;
      session;
      vm_fd_num;
      vcpu_list;
      scratch_hva;
      seccomp_heuristic;
    }

let detach t = Ptrace.detach t.h t.session
let set_seccomp_heuristic t v = t.seccomp_heuristic <- v

let inject t ~nr ~args =
  (* fleet interleave point: one injected syscall per scheduler slice.
     Also a crash point for the abort-at-yield sweep — ticked before the
     yield so the crash fires whether or not a scheduler is running. *)
  Faults.yield_tick t.h.Host.faults;
  Sched.yield ();
  let r =
    if t.seccomp_heuristic then
      inject_any_thread t.h t.session t.tracee_pid ~nr ~args
    else inject_session t.h t.session ~nr ~args
  in
  Trace.Recorder.record t.h.Host.recorder ~kind:"inject.syscall"
    ~args:
      (("nr", Trace.S (Syscall.Nr.name nr))
      ::
      (match r with
      | Ok ret -> [ ("ret", Trace.I ret) ]
      | Error e -> [ ("err", Trace.S (Vmsh_error.to_string e)) ]))
    ();
  r

let retry_vm_rw h f =
  Retry.with_backoff h ~counter:"recovery.vm_rw_retry"
    ~should_retry:(function
      | Error (Errno.EFAULT | Errno.EAGAIN) -> true
      | _ -> false)
    f

let write_scratch t ?(off = 0) b =
  match
    retry_vm_rw t.h (fun () ->
        Host.process_vm_write t.h ~caller:t.vmsh ~pid:t.tracee_pid
          ~addr:(t.scratch_hva + off) b)
  with
  | Ok () -> t.scratch_hva + off
  | Error e -> Vmsh_error.fail (Vmsh_error.Injection ("Tracee.write_scratch", e))

let read_scratch t ?(off = 0) len =
  match
    retry_vm_rw t.h (fun () ->
        Host.process_vm_read t.h ~caller:t.vmsh ~pid:t.tracee_pid
          ~addr:(t.scratch_hva + off) ~len)
  with
  | Ok b -> b
  | Error e -> Vmsh_error.fail (Vmsh_error.Injection ("Tracee.read_scratch", e))

let inject_ioctl t ~fd ~code ?arg () =
  let ptr =
    match arg with Some b -> write_scratch t b | None -> t.scratch_hva
  in
  inject t ~nr:Syscall.Nr.ioctl ~args:[| fd; code; ptr |]

let get_vcpu_regs t vcpu =
  let* _ =
    inject_ioctl t ~fd:vcpu.fd_num ~code:Kvm.Api.get_regs
      ~arg:(Bytes.make Kvm.Api.regs_size '\000')
      ()
  in
  Ok (Kvm.Api.regs_of_bytes (read_scratch t Kvm.Api.regs_size))

let set_vcpu_regs t vcpu regs =
  let* _ =
    inject_ioctl t ~fd:vcpu.fd_num ~code:Kvm.Api.set_regs
      ~arg:(Kvm.Api.regs_to_bytes regs) ()
  in
  Ok ()

let hook_syscalls t ~on_entry ~on_exit =
  Ptrace.hook_syscalls t.h t.session ~on_entry ~on_exit

let unhook_syscalls t = Ptrace.unhook_syscalls t.h t.session

let connect_back ?(on_socket = fun (_ : int) -> ()) t ~path =
  let* sock = inject t ~nr:Syscall.Nr.socket ~args:[| 1; 1; 0 |] in
  (* the connect() below is itself a yield (and crash) point: give the
     caller the descriptor now so its undo is journaled before we can
     die with the socket already open in the tracee *)
  on_socket sock;
  let path_ptr = write_scratch t ~off:2048 (Bytes.of_string path) in
  let* _ =
    inject t ~nr:Syscall.Nr.connect
      ~args:[| sock; path_ptr; String.length path |]
  in
  Ok sock

let send_fds_back t ~sock_fd fds =
  let msg = Syscall.encode_scm_rights fds in
  let msg_ptr = write_scratch t ~off:2048 msg in
  let* _ =
    inject t ~nr:Syscall.Nr.sendmsg
      ~args:[| sock_fd; msg_ptr; Bytes.length msg |]
  in
  Ok ()
