module Fd = Hostos.Fd
module Chan = Hostos.Chan
module Clock = Hostos.Clock
module Layout = X86.Layout
module Mmio = Virtio.Mmio
module Queue = Virtio.Queue
module Gmem = Virtio.Gmem

let src = Logs.Src.create "vmsh.devices" ~doc:"VMSH virtio devices"

module Log = (val Logs.src_log src : Logs.LOG)

type transport = Wrap_syscall | Ioregionfd

let show_transport = function
  | Wrap_syscall -> "wrap_syscall"
  | Ioregionfd -> "ioregionfd"

type kind = Console | Blk | Net | Ninep

let kind_name = function
  | Console -> "console"
  | Blk -> "blk"
  | Net -> "net"
  | Ninep -> "9p"

(* One registered device: its register window, interrupt route and
   queue state. Window base, config window and GSI all derive from the
   registration index — nothing is hard-coded per kind any more. *)
type handle = {
  kind : kind;
  regs : Mmio.Device.t;
  base : int;  (** register window (BAR0 under PCI) *)
  cfg_base : int option;  (** PCI config window *)
  cfg_header : bytes option;
  gsi : int;
  irqfd : Fd.t;
  mutable q0 : Queue.Device.t option;
  mutable q1 : Queue.Device.t option;
}

type t = {
  mem : Hyp_mem.t;
  tracee : Tracee.t;
  image : Blockdev.Backend.t;
  pci : bool;
  mutable handles : handle list;  (** registration order *)
  region_base : int;
  region_len : int;
  console_in : Chan.t;
  console_out : Chan.t;
  net : (Net.Fabric.t * Net.Link.port) option;
      (** the fabric port the NIC is cabled to, if any *)
  net_pending : bytes Stdlib.Queue.t;
      (** frames that arrived before the guest posted receive buffers *)
  ninep_fs : Blockdev.Simplefs.t option;
      (** the tools image mounted for the 9p server *)
  mac : int;
  mutable requests : int;
  mutable net_frames : int;
  clock : Clock.t;
}

let gsi_base = 24
let max_devices = 4
let gsi_plan kinds = List.mapi (fun i k -> (k, gsi_base + i)) kinds
let handles t = t.handles
let handle_of t kind = List.find_opt (fun h -> h.kind = kind) t.handles

let handle_exn t kind =
  match handle_of t kind with
  | Some h -> h
  | None ->
      invalid_arg
        (Printf.sprintf "Devices.handle_exn: no %s device registered"
           (kind_name kind))

let handle_kind h = h.kind
let handle_base h = h.base
let handle_cfg_base h = h.cfg_base
let handle_gsi h = h.gsi

(* The window the kernel library drives: the PCI config space when the
   device sits behind the PCI transport, the raw register window
   otherwise. *)
let handle_window h = match h.cfg_base with Some c -> c | None -> h.base

let console_base t = (handle_exn t Console).base
let blk_base t = (handle_exn t Blk).base
let net_base t = (handle_exn t Net).base
let ninep_base t = (handle_exn t Ninep).base
let region t = (t.region_base, t.region_len)
let console_gsi t = (handle_exn t Console).gsi
let blk_gsi t = (handle_exn t Blk).gsi
let net_gsi t = (handle_exn t Net).gsi
let ninep_gsi t = (handle_exn t Ninep).gsi
let nic_mac t = t.mac
let stats_requests t = t.requests
let stats_net_frames t = t.net_frames

(* Upper bound on a single descriptor buffer. No legitimate driver in
   this guest posts anything close to 1 MiB in one descriptor; a larger
   length is a hostile mutation (or garbage read through a torn
   pointer) and is quarantined before any process_vm call. *)
let max_desc_len = 1 lsl 20

(* Remote view of guest memory for the device-side queue halves. *)
let remote_gmem t =
  {
    Gmem.read = (fun ~addr ~len -> Hyp_mem.read_phys t.mem ~gpa:addr ~len);
    write = (fun ~addr b -> Hyp_mem.write_phys t.mem ~gpa:addr b);
  }

let ensure_queue t h slot =
  let getter, setter =
    if slot = 0 then ((fun () -> h.q0), fun q -> h.q0 <- q)
    else ((fun () -> h.q1), fun q -> h.q1 <- q)
  in
  match getter () with
  | Some q -> Some q
  | None ->
      let qs = Mmio.Device.queue h.regs slot in
      if not qs.Mmio.Device.ready then None
      else begin
        let host = Tracee.host t.tracee in
        let dev = kind_name h.kind in
        (* hostile-descriptor counters and events are lazily registered:
           a run with no quarantines keeps a byte-identical metrics
           registry and flight recording *)
        let bump name =
          Observe.Metrics.incr
            (Observe.Metrics.counter
               (Observe.metrics host.Hostos.Host.observe)
               name)
        in
        let q =
          Queue.Device.create
            ~torn:(fun () ->
              Faults.fire host.Hostos.Host.faults Faults.Desc_torn)
            ~on_requeue:(fun () -> bump "recovery.vq_requeue")
            ~validate:(fun b ->
              b.Queue.Device.len <= max_desc_len
              && Hyp_mem.backed t.mem ~gpa:b.Queue.Device.addr
                   ~len:b.Queue.Device.len)
            ~on_quarantine:(fun head ->
              bump (Printf.sprintf "vmsh-%s.quarantined" dev);
              Trace.Recorder.record host.Hostos.Host.recorder
                ~kind:"hostile.quarantine"
                ~args:[ ("dev", Trace.S dev); ("head", Trace.I head) ]
                ())
            ~on_ring_reset:(fun () ->
              bump (Printf.sprintf "vmsh-%s.ring_resets" dev);
              Trace.Recorder.record host.Hostos.Host.recorder
                ~kind:"hostile.ring_reset"
                ~args:[ ("dev", Trace.S dev) ]
                ())
            (remote_gmem t) ~qsz:qs.Mmio.Device.num ~desc:qs.Mmio.Device.desc
            ~avail:qs.Mmio.Device.avail ~used:qs.Mmio.Device.used
        in
        setter (Some q);
        Some q
      end

(* Signal an irqfd from the VMSH process: one write syscall. *)
let signal t fd =
  Clock.syscall t.clock;
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 1L;
  ignore (fd.Fd.ops.write b)

let host_observe t = (Tracee.host t.tracee).Hostos.Host.observe

let incr_counter t name ~by =
  Observe.Metrics.incr ~by
    (Observe.Metrics.counter (Observe.metrics (host_observe t)) name)

(* Virtqueue pump-stage instrumentation, always-on: every pump
   invocation bumps its stage.pump.<stage> counter and appends one
   flight-recorder event — pure observation, no virtual cost. *)
let pump_stage t name =
  incr_counter t ("stage.pump." ^ name) ~by:1;
  Trace.Recorder.record (Tracee.host t.tracee).Hostos.Host.recorder
    ~kind:("pump." ^ name) ()

(* The image is served with synchronous, unpipelined file IO (the
   prototype's device is single-threaded), so each request pays the full
   device latency again instead of overlapping with its neighbours —
   the main reason vmsh-blk runs at about half of qemu-blk (§6.3C). *)
let blk_backend t =
  let obs = host_observe t in
  let b =
    Virtio.Blk.Device.backend_of_blockdev
      (Blockdev.Dev.observe obs ~name:"vmsh-blk.backend"
         (Blockdev.Backend.dev t.image))
  in
  let sync_penalty len =
    Clock.context_switch t.clock;
    Clock.device_op t.clock ~blocks:(max 1 (len / Blockdev.Dev.block_size))
  in
  {
    b with
    Virtio.Blk.Device.read =
      (fun ~sector ~len ->
        sync_penalty len;
        b.Virtio.Blk.Device.read ~sector ~len);
    write =
      (fun ~sector data ->
        sync_penalty (Bytes.length data);
        b.Virtio.Blk.Device.write ~sector data);
  }

let process_blk t h =
  pump_stage t "blk";
  match ensure_queue t h 0 with
  | None -> ()
  | Some q ->
      let n = Virtio.Blk.Device.process q (remote_gmem t) (blk_backend t) in
      if n > 0 then begin
        t.requests <- t.requests + n;
        incr_counter t "vmsh-blk.requests" ~by:n;
        Mmio.Device.assert_irq h.regs;
        signal t h.irqfd
      end

(* --- the network device --- *)

(* Deliver frames parked in [net_pending] into posted receive chains.
   Stops at the first frame the guest has no buffer for (frame order is
   preserved; nothing is dropped on the host side). *)
let try_feed_net_h t h =
  pump_stage t "net-rx";
  match ensure_queue t h 0 with
  | None -> ()
  | Some rxq ->
      let delivered = ref 0 in
      let rec go () =
        match Stdlib.Queue.peek_opt t.net_pending with
        | None -> ()
        | Some frame ->
            if Virtio.Net.Device.feed_rx rxq (remote_gmem t) frame then begin
              (* one recvmsg-and-copy into guest memory per frame *)
              Clock.socket_msg t.clock;
              ignore (Stdlib.Queue.pop t.net_pending);
              incr delivered;
              go ()
            end
      in
      go ();
      if !delivered > 0 then begin
        incr_counter t "vmsh-net.rx_frames" ~by:!delivered;
        Mmio.Device.assert_irq h.regs;
        signal t h.irqfd
      end

let try_feed_net t =
  match handle_of t Net with Some h -> try_feed_net_h t h | None -> ()

let process_net_tx t h =
  pump_stage t "net-tx";
  match ensure_queue t h 1 with
  | None -> ()
  | Some txq ->
      let n =
        Virtio.Net.Device.process_tx txq (remote_gmem t) ~sink:(fun frame ->
            (* one sendmsg out of the VMSH process per frame *)
            Clock.socket_msg t.clock;
            match t.net with
            | Some (_, port) -> Net.Link.send port frame
            | None -> incr_counter t "vmsh-net.tx_unplugged" ~by:1)
      in
      if n > 0 then begin
        t.net_frames <- t.net_frames + n;
        incr_counter t "vmsh-net.tx_frames" ~by:n;
        Mmio.Device.assert_irq h.regs;
        signal t h.irqfd;
        (* The fabric runs inside the kick: frames propagate, peers
           respond, and responses land back in [net_pending] before the
           guest resumes — keeping the whole exchange deterministic. *)
        match t.net with
        | Some (fab, _) ->
            Net.Fabric.pump fab;
            try_feed_net_h t h
        | None -> ()
      end

(* --- the 9p device (serves the tools image as a file tree) --- *)

let ninep_backend t fs =
  let module Sfs = Blockdev.Simplefs in
  let charge_pages len =
    for _ = 1 to max 1 ((len + 4095) / 4096) do
      Clock.page_cache_hit t.clock
    done
  in
  {
    Virtio.Ninep.Device.handle =
      (fun req ->
        (* path walk + open + IO against VMSH's own file system — the
           same per-message syscall tax as the hypervisor's 9p server *)
        Clock.context_switch t.clock;
        for _ = 1 to 4 do
          Clock.syscall t.clock;
          Clock.fs_op t.clock
        done;
        Clock.context_switch t.clock;
        let ok payload = { Virtio.Ninep.status = 0; payload } in
        let err e =
          {
            Virtio.Ninep.status = Hostos.Errno.to_code e;
            payload = Bytes.empty;
          }
        in
        match req with
        | Virtio.Ninep.Read { path; off; len } -> (
            charge_pages len;
            match Sfs.lookup fs path with
            | Error e -> err e
            | Ok ino -> (
                match Sfs.read fs ino ~off ~len with
                | Ok data -> ok data
                | Error e -> err e))
        | Virtio.Ninep.Write { path; off; data } -> (
            charge_pages (Bytes.length data);
            let ino =
              match Sfs.lookup fs path with
              | Ok ino -> Ok ino
              | Error Hostos.Errno.ENOENT -> Sfs.create fs path
              | Error e -> Error e
            in
            match ino with
            | Error e -> err e
            | Ok ino -> (
                match Sfs.write fs ino ~off data with
                | Ok n ->
                    let b = Bytes.create 8 in
                    Bytes.set_int64_le b 0 (Int64.of_int n);
                    ok b
                | Error e -> err e))
        | Virtio.Ninep.Create path -> (
            match Sfs.create fs path with
            | Ok _ | Error Hostos.Errno.EEXIST -> ok Bytes.empty
            | Error e -> err e)
        | Virtio.Ninep.Stat path -> (
            match Sfs.stat fs path with
            | Ok st ->
                let b = Bytes.create 16 in
                Bytes.set_int64_le b 0 (Int64.of_int st.Sfs.st_size);
                ok b
            | Error e -> err e));
  }

let process_ninep t h =
  pump_stage t "ninep";
  match t.ninep_fs with
  | None -> ()
  | Some fs -> (
      match ensure_queue t h 0 with
      | None -> ()
      | Some q ->
          let n =
            Virtio.Ninep.Device.process q (remote_gmem t) (ninep_backend t fs)
          in
          if n > 0 then begin
            incr_counter t "vmsh-9p.requests" ~by:n;
            Mmio.Device.assert_irq h.regs;
            signal t h.irqfd
          end)

let try_feed_console t h =
  pump_stage t "console-rx";
  match ensure_queue t h 0 with
  | None -> ()
  | Some rxq -> (
      match Chan.read t.console_in 4096 with
      | Ok pending when Bytes.length pending > 0 ->
          let delivered =
            Virtio.Console.Device.feed_rx rxq (remote_gmem t) pending
          in
          (* anything not delivered goes back to the front of the input *)
          if delivered < Bytes.length pending then
            ignore
              (Chan.write t.console_in
                 (Bytes.sub pending delivered (Bytes.length pending - delivered)));
          if delivered > 0 then begin
            Mmio.Device.assert_irq h.regs;
            signal t h.irqfd
          end
      | _ -> ())

let process_console_tx t h =
  pump_stage t "console-tx";
  match ensure_queue t h 1 with
  | None -> ()
  | Some txq ->
      let n =
        Virtio.Console.Device.process_tx txq (remote_gmem t) ~sink:(fun b ->
            ignore (Chan.write t.console_out b))
      in
      if n > 0 then begin
        Mmio.Device.assert_irq h.regs;
        signal t h.irqfd
      end

let default_mac = Net.Frame.make_mac ~vendor:0x0566 ~serial:1

let create ~mem ~tracee ~image ?(pci = false) ?net ?(mac = default_mac) () =
  let stride = Layout.virtio_mmio_stride in
  let region_base =
    if pci then Layout.vmsh_pci_base else Layout.vmsh_mmio_base
  in
  (* The region is sized for [max_devices] registrations up front: PCI
     puts the config windows in the first [max_devices] strides and the
     BARs after them; MMIO uses the strides directly. *)
  let region_len = (if pci then 2 * max_devices else max_devices) * stride in
  {
    mem;
    tracee;
    image;
    pci;
    handles = [];
    region_base;
    region_len;
    console_in = Chan.create ~capacity:65536 ();
    console_out = Chan.create ~capacity:1048576 ();
    net;
    net_pending = Stdlib.Queue.create ();
    ninep_fs =
      (match Blockdev.Simplefs.mount (Blockdev.Backend.dev image) with
      | Ok fs -> Some fs
      | Error _ -> None);
    mac;
    requests = 0;
    net_frames = 0;
    clock = (Tracee.host tracee).Hostos.Host.clock;
  }

let make_regs t = function
  | Console ->
      Mmio.Device.create ~device_id:Virtio.Console.device_id ~num_queues:2
        ~config:(Bytes.make 8 '\000') ()
  | Blk ->
      let capacity =
        Blockdev.Dev.size_bytes (Blockdev.Backend.dev t.image)
        / Virtio.Blk.sector_size
      in
      Mmio.Device.create ~device_id:Virtio.Blk.device_id ~num_queues:1
        ~config:(Virtio.Blk.Device.config ~capacity_sectors:capacity)
        ()
  | Net ->
      Mmio.Device.create ~device_id:Virtio.Net.device_id ~num_queues:2
        ~config:(Virtio.Net.config ~mac:t.mac) ()
  | Ninep ->
      Mmio.Device.create ~device_id:Virtio.Ninep.device_id ~num_queues:1
        ~config:(Bytes.make 8 '\000') ()

let device_type = function
  | Console -> Virtio.Console.device_id
  | Blk -> Virtio.Blk.device_id
  | Net -> Virtio.Net.device_id
  | Ninep -> Virtio.Ninep.device_id

let register t kind ~irqfd =
  let index = List.length t.handles in
  if index >= max_devices then
    invalid_arg "Devices.register: device region is full";
  if List.exists (fun h -> h.kind = kind) t.handles then
    invalid_arg
      (Printf.sprintf "Devices.register: %s already registered"
         (kind_name kind));
  let stride = Layout.virtio_mmio_stride in
  let base =
    t.region_base + ((if t.pci then max_devices + index else index) * stride)
  in
  let cfg_base = if t.pci then Some (t.region_base + (index * stride)) else None in
  let gsi = gsi_base + index in
  let cfg_header =
    if t.pci then
      Some
        (Virtio.Pci.Config.encode ~device_type:(device_type kind) ~bar0:base
           ~msix_gsi:gsi)
    else None
  in
  let h =
    {
      kind;
      regs = make_regs t kind;
      base;
      cfg_base;
      cfg_header;
      gsi;
      irqfd;
      q0 = None;
      q1 = None;
    }
  in
  t.handles <- t.handles @ [ h ];
  (match kind with
  | Console ->
      Mmio.Device.set_notify h.regs (fun ~queue ->
          if queue = 1 then process_console_tx t h else try_feed_console t h)
  | Blk -> Mmio.Device.set_notify h.regs (fun ~queue:_ -> process_blk t h)
  | Net ->
      Mmio.Device.set_notify h.regs (fun ~queue ->
          if queue = 1 then process_net_tx t h else try_feed_net_h t h);
      (* Cable the NIC to its fabric port: frames arriving from the
         network park in [net_pending] and are pushed into the guest's
         receive ring (with an interrupt) as buffers allow. *)
      (match t.net with
      | Some (_, port) ->
          Net.Link.set_handler port (fun frame ->
              Stdlib.Queue.add frame t.net_pending;
              try_feed_net_h t h)
      | None -> ())
  | Ninep -> Mmio.Device.set_notify h.regs (fun ~queue:_ -> process_ninep t h));
  h

(* Rollback of [register]: drop the handle and uncable any external
   plumbing it claimed. Replayed newest-first by the journal, so handles
   leave in reverse registration order and the index arithmetic in
   [register] stays consistent for a later re-attach. *)
let unregister t h =
  t.handles <- List.filter (fun h' -> h' != h) t.handles;
  match h.kind with
  | Net -> (
      match t.net with
      | Some (_, port) -> Net.Link.clear_handler port
      | None -> ())
  | Console | Blk | Ninep -> ()

let window_of t addr =
  List.find_map
    (fun h ->
      if addr >= h.base && addr < h.base + Layout.virtio_mmio_stride then
        Some (h.regs, addr - h.base)
      else None)
    t.handles

let config_of t addr =
  List.find_map
    (fun h ->
      match (h.cfg_base, h.cfg_header) with
      | Some base, Some header
        when addr >= base && addr < base + Layout.virtio_mmio_stride ->
          Some (base, header)
      | _ -> None)
    t.handles

let handle_mmio_read t ~addr ~len =
  match window_of t addr with
  | Some (regs, off) -> Some (Mmio.Device.read regs ~off ~len)
  | None -> (
      match config_of t addr with
      | Some (base, header) ->
          (* PCI config read: bytes from the header, 0xff beyond it (as
             unimplemented config space reads on real hardware) *)
          let off = addr - base in
          Some
            (Bytes.init len (fun i ->
                 if off + i < Bytes.length header then Bytes.get header (off + i)
                 else '\xff'))
      | None -> None)

let handle_mmio_write t ~addr ~data =
  match window_of t addr with
  | Some (regs, off) ->
      Mmio.Device.write regs ~off data;
      true
  | None -> (
      match config_of t addr with
      | Some _ -> true (* config writes (e.g. BAR probing) are absorbed *)
      | None -> false)

(* --- wrap_syscall transport --- *)

let install_wrap_syscall t =
  let vcpus = Tracee.vcpus t.tracee in
  Tracee.hook_syscalls t.tracee
    ~on_entry:(fun _ -> ())
    ~on_exit:(fun th ->
      let regs = th.Hostos.Proc.regs in
      let vcpu =
        if regs.X86.Regs.rsi = Kvm.Api.run then
          List.find_opt
            (fun v -> v.Tracee.fd_num = regs.X86.Regs.rdi)
            vcpus
        else None
      in
      match vcpu with
      | None -> Hostos.Proc.Deliver
      | Some v -> (
          (* read the kvm_run page remotely and look at the exit *)
          let page =
            Hostos.Mem.of_bytes
              (Hyp_mem.read_hva t.mem ~hva:v.Tracee.run_hva ~len:32)
          in
          match Kvm.Api.read_exit page with
          | Kvm.Api.Exit_mmio { phys_addr; len; is_write; data } -> (
              if is_write then
                if handle_mmio_write t ~addr:phys_addr ~data then
                  Hostos.Proc.Reenter
                else Hostos.Proc.Deliver
              else
                match handle_mmio_read t ~addr:phys_addr ~len with
                | Some resp ->
                    (* complete the MMIO read: place the data where KVM
                       picks it up on re-entry *)
                    let buf = Bytes.make 8 '\000' in
                    Bytes.blit resp 0 buf 0 (min 8 (Bytes.length resp));
                    Hyp_mem.write_hva t.mem ~hva:(v.Tracee.run_hva + 24) buf;
                    Hostos.Proc.Reenter
                | None -> Hostos.Proc.Deliver)
          | _ -> Hostos.Proc.Deliver))

let uninstall_wrap_syscall t = Tracee.unhook_syscalls t.tracee

(* --- ioregionfd transport --- *)

let ioregion_pump t ~sock () =
  let rec drain () =
    match sock.Fd.ops.read ~len:32 with
    | Error _ -> ()
    | Ok frame when Bytes.length frame = 0 -> ()
    | Ok frame ->
        (match Kvm.Api.decode_ioregion_msg frame with
        | Some (Kvm.Api.Ioreg_read { offset; len }) ->
            let addr = t.region_base + offset in
            let resp =
              match handle_mmio_read t ~addr ~len with
              | Some b -> b
              | None -> Bytes.make len '\000'
            in
            ignore (sock.Fd.ops.write (Kvm.Api.encode_ioregion_resp resp))
        | Some (Kvm.Api.Ioreg_write { offset; data }) ->
            let addr = t.region_base + offset in
            ignore (handle_mmio_write t ~addr ~data);
            ignore (sock.Fd.ops.write (Kvm.Api.encode_ioregion_resp Bytes.empty))
        | None -> ());
        drain ()
  in
  drain ()

(* --- console host side --- *)

let feed_console_input t b =
  ignore (Chan.write t.console_in b);
  match handle_of t Console with
  | Some h -> try_feed_console t h
  | None -> ()

let read_console_output t =
  match Chan.read t.console_out 1048576 with
  | Ok b -> b
  | Error _ -> Bytes.empty
