module Fd = Hostos.Fd
module Chan = Hostos.Chan
module Clock = Hostos.Clock
module Layout = X86.Layout
module Mmio = Virtio.Mmio
module Queue = Virtio.Queue
module Gmem = Virtio.Gmem

let src = Logs.Src.create "vmsh.devices" ~doc:"VMSH virtio devices"

module Log = (val Logs.src_log src : Logs.LOG)

type transport = Wrap_syscall | Ioregionfd

let show_transport = function
  | Wrap_syscall -> "wrap_syscall"
  | Ioregionfd -> "ioregionfd"

type t = {
  mem : Hyp_mem.t;
  tracee : Tracee.t;
  image : Blockdev.Backend.t;
  blk_regs : Mmio.Device.t;
  console_regs : Mmio.Device.t;
  mutable blk_queue : Queue.Device.t option;
  mutable console_rx : Queue.Device.t option;
  mutable console_tx : Queue.Device.t option;
  blk_irqfd : Fd.t;
  console_irqfd : Fd.t;
  cons_base : int;
  b_base : int;
  region_base : int;
  region_len : int;
  pci_configs : (int * bytes) list;  (** (window base, header bytes) *)
  console_in : Chan.t;
  console_out : Chan.t;
  mutable requests : int;
  clock : Clock.t;
}

let console_base t = t.cons_base
let blk_base t = t.b_base
let region t = (t.region_base, t.region_len)
let console_gsi _t = 24
let blk_gsi _t = 25
let stats_requests t = t.requests

(* Remote view of guest memory for the device-side queue halves. *)
let remote_gmem t =
  {
    Gmem.read = (fun ~addr ~len -> Hyp_mem.read_phys t.mem ~gpa:addr ~len);
    write = (fun ~addr b -> Hyp_mem.write_phys t.mem ~gpa:addr b);
  }

let ensure_queue t regs slot getter setter =
  match getter () with
  | Some q -> Some q
  | None ->
      let qs = Mmio.Device.queue regs slot in
      if not qs.Mmio.Device.ready then None
      else begin
        let q =
          Queue.Device.create (remote_gmem t) ~qsz:qs.Mmio.Device.num
            ~desc:qs.Mmio.Device.desc ~avail:qs.Mmio.Device.avail
            ~used:qs.Mmio.Device.used
        in
        setter (Some q);
        Some q
      end

(* Signal an irqfd from the VMSH process: one write syscall. *)
let signal t fd =
  Clock.syscall t.clock;
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 1L;
  ignore (fd.Fd.ops.write b)

(* The image is served with synchronous, unpipelined file IO (the
   prototype's device is single-threaded), so each request pays the full
   device latency again instead of overlapping with its neighbours —
   the main reason vmsh-blk runs at about half of qemu-blk (§6.3C). *)
let blk_backend t =
  let obs = (Tracee.host t.tracee).Hostos.Host.observe in
  let b =
    Virtio.Blk.Device.backend_of_blockdev
      (Blockdev.Dev.observe obs ~name:"vmsh-blk.backend"
         (Blockdev.Backend.dev t.image))
  in
  let sync_penalty len =
    Clock.context_switch t.clock;
    Clock.device_op t.clock ~blocks:(max 1 (len / Blockdev.Dev.block_size))
  in
  {
    b with
    Virtio.Blk.Device.read =
      (fun ~sector ~len ->
        sync_penalty len;
        b.Virtio.Blk.Device.read ~sector ~len);
    write =
      (fun ~sector data ->
        sync_penalty (Bytes.length data);
        b.Virtio.Blk.Device.write ~sector data);
  }

let process_blk t =
  match
    ensure_queue t t.blk_regs 0
      (fun () -> t.blk_queue)
      (fun q -> t.blk_queue <- q)
  with
  | None -> ()
  | Some q ->
      let n = Virtio.Blk.Device.process q (remote_gmem t) (blk_backend t) in
      if n > 0 then begin
        t.requests <- t.requests + n;
        Observe.Metrics.incr ~by:n
          (Observe.Metrics.counter
             (Observe.metrics (Tracee.host t.tracee).Hostos.Host.observe)
             "vmsh-blk.requests");
        Mmio.Device.assert_irq t.blk_regs;
        signal t t.blk_irqfd
      end

let try_feed_console t =
  match
    ensure_queue t t.console_regs 0
      (fun () -> t.console_rx)
      (fun q -> t.console_rx <- q)
  with
  | None -> ()
  | Some rxq -> (
      match Chan.read t.console_in 4096 with
      | Ok pending when Bytes.length pending > 0 ->
          let delivered =
            Virtio.Console.Device.feed_rx rxq (remote_gmem t) pending
          in
          (* anything not delivered goes back to the front of the input *)
          if delivered < Bytes.length pending then
            ignore
              (Chan.write t.console_in
                 (Bytes.sub pending delivered (Bytes.length pending - delivered)));
          if delivered > 0 then begin
            Mmio.Device.assert_irq t.console_regs;
            signal t t.console_irqfd
          end
      | _ -> ())

let process_console_tx t =
  match
    ensure_queue t t.console_regs 1
      (fun () -> t.console_tx)
      (fun q -> t.console_tx <- q)
  with
  | None -> ()
  | Some txq ->
      let n =
        Virtio.Console.Device.process_tx txq (remote_gmem t) ~sink:(fun b ->
            ignore (Chan.write t.console_out b))
      in
      if n > 0 then begin
        Mmio.Device.assert_irq t.console_regs;
        signal t t.console_irqfd
      end

let create ~mem ~tracee ~image ~blk_irqfd ~console_irqfd ?(pci = false)
    ?console_base ?blk_base () =
  let stride = Layout.virtio_mmio_stride in
  let region_base = if pci then Layout.vmsh_pci_base else Layout.vmsh_mmio_base in
  let region_len = (if pci then 4 else 2) * stride in
  (* PCI layout: [cfg console][cfg blk][bar console][bar blk];
     MMIO layout: [regs console][regs blk] *)
  let console_base =
    Option.value console_base
      ~default:(if pci then region_base + (2 * stride) else region_base)
  in
  let blk_base =
    Option.value blk_base
      ~default:
        (if pci then region_base + (3 * stride) else region_base + stride)
  in
  let pci_configs =
    if not pci then []
    else
      [
        ( region_base,
          Virtio.Pci.Config.encode ~device_type:Virtio.Console.device_id
            ~bar0:console_base ~msix_gsi:24 );
        ( region_base + stride,
          Virtio.Pci.Config.encode ~device_type:Virtio.Blk.device_id
            ~bar0:blk_base ~msix_gsi:25 );
      ]
  in
  let capacity =
    Blockdev.Dev.size_bytes (Blockdev.Backend.dev image)
    / Virtio.Blk.sector_size
  in
  let t =
    {
      mem;
      tracee;
      image;
      blk_regs =
        Mmio.Device.create ~device_id:Virtio.Blk.device_id ~num_queues:1
          ~config:(Virtio.Blk.Device.config ~capacity_sectors:capacity)
          ();
      console_regs =
        Mmio.Device.create ~device_id:Virtio.Console.device_id ~num_queues:2
          ~config:(Bytes.make 8 '\000') ();
      blk_queue = None;
      console_rx = None;
      console_tx = None;
      blk_irqfd;
      console_irqfd;
      cons_base = console_base;
      b_base = blk_base;
      region_base;
      region_len;
      pci_configs;
      console_in = Chan.create ~capacity:65536 ();
      console_out = Chan.create ~capacity:1048576 ();
      requests = 0;
      clock = (Tracee.host tracee).Hostos.Host.clock;
    }
  in
  Mmio.Device.set_notify t.blk_regs (fun ~queue:_ -> process_blk t);
  Mmio.Device.set_notify t.console_regs (fun ~queue ->
      if queue = 1 then process_console_tx t else try_feed_console t);
  t

let window_of t addr =
  if addr >= t.cons_base && addr < t.cons_base + Layout.virtio_mmio_stride then
    Some (t.console_regs, addr - t.cons_base)
  else if addr >= t.b_base && addr < t.b_base + Layout.virtio_mmio_stride then
    Some (t.blk_regs, addr - t.b_base)
  else None

let config_of t addr =
  List.find_opt
    (fun (base, _) -> addr >= base && addr < base + Layout.virtio_mmio_stride)
    t.pci_configs

let handle_mmio_read t ~addr ~len =
  match window_of t addr with
  | Some (regs, off) -> Some (Mmio.Device.read regs ~off ~len)
  | None -> (
      match config_of t addr with
      | Some (base, header) ->
          (* PCI config read: bytes from the header, 0xff beyond it (as
             unimplemented config space reads on real hardware) *)
          let off = addr - base in
          Some
            (Bytes.init len (fun i ->
                 if off + i < Bytes.length header then Bytes.get header (off + i)
                 else '\xff'))
      | None -> None)

let handle_mmio_write t ~addr ~data =
  match window_of t addr with
  | Some (regs, off) ->
      Mmio.Device.write regs ~off data;
      true
  | None -> (
      match config_of t addr with
      | Some _ -> true (* config writes (e.g. BAR probing) are absorbed *)
      | None -> false)

(* --- wrap_syscall transport --- *)

let install_wrap_syscall t =
  let vcpus = Tracee.vcpus t.tracee in
  Tracee.hook_syscalls t.tracee
    ~on_entry:(fun _ -> ())
    ~on_exit:(fun th ->
      let regs = th.Hostos.Proc.regs in
      let vcpu =
        if regs.X86.Regs.rsi = Kvm.Api.run then
          List.find_opt
            (fun v -> v.Tracee.fd_num = regs.X86.Regs.rdi)
            vcpus
        else None
      in
      match vcpu with
      | None -> Hostos.Proc.Deliver
      | Some v -> (
          (* read the kvm_run page remotely and look at the exit *)
          let page =
            Hostos.Mem.of_bytes
              (Hyp_mem.read_hva t.mem ~hva:v.Tracee.run_hva ~len:32)
          in
          match Kvm.Api.read_exit page with
          | Kvm.Api.Exit_mmio { phys_addr; len; is_write; data } -> (
              if is_write then
                if handle_mmio_write t ~addr:phys_addr ~data then
                  Hostos.Proc.Reenter
                else Hostos.Proc.Deliver
              else
                match handle_mmio_read t ~addr:phys_addr ~len with
                | Some resp ->
                    (* complete the MMIO read: place the data where KVM
                       picks it up on re-entry *)
                    let buf = Bytes.make 8 '\000' in
                    Bytes.blit resp 0 buf 0 (min 8 (Bytes.length resp));
                    Hyp_mem.write_hva t.mem ~hva:(v.Tracee.run_hva + 24) buf;
                    Hostos.Proc.Reenter
                | None -> Hostos.Proc.Deliver)
          | _ -> Hostos.Proc.Deliver))

let uninstall_wrap_syscall t = Tracee.unhook_syscalls t.tracee

(* --- ioregionfd transport --- *)

let ioregion_pump t ~sock () =
  let rec drain () =
    match sock.Fd.ops.read ~len:32 with
    | Error _ -> ()
    | Ok frame when Bytes.length frame = 0 -> ()
    | Ok frame ->
        (match Kvm.Api.decode_ioregion_msg frame with
        | Some (Kvm.Api.Ioreg_read { offset; len }) ->
            let addr = t.region_base + offset in
            let resp =
              match handle_mmio_read t ~addr ~len with
              | Some b -> b
              | None -> Bytes.make len '\000'
            in
            ignore (sock.Fd.ops.write (Kvm.Api.encode_ioregion_resp resp))
        | Some (Kvm.Api.Ioreg_write { offset; data }) ->
            let addr = t.region_base + offset in
            ignore (handle_mmio_write t ~addr ~data);
            ignore (sock.Fd.ops.write (Kvm.Api.encode_ioregion_resp Bytes.empty))
        | None -> ());
        drain ()
  in
  drain ()

(* --- console host side --- *)

let feed_console_input t b =
  ignore (Chan.write t.console_in b);
  try_feed_console t

let read_console_output t =
  match Chan.read t.console_out 1048576 with
  | Ok b -> b
  | Error _ -> Bytes.empty
