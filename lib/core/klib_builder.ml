module KV = Linux_guest.Kernel_version
module Klib = Linux_guest.Klib
module Guest = Linux_guest.Guest
module Layout = X86.Layout

type layout = {
  text_len : int;
  status_off : int;
  blob_off : int;
  total_len : int;
}

let status_devices_ready = 1
let status_done = 2
let status_err_console = 0x81
let status_err_blk = 0x82
let status_err_open = 0x83
let status_err_write = 0x84
let status_err_spawn = 0x85
let status_err_net = 0x86
let status_err_ninep = 0x87

let base_symbol = "__vmsh_lib"
let entry_symbol = "vmsh_entry"

let required_imports =
  [
    "printk"; "register_virtio_mmio_dev"; "register_virtio_pci_dev";
    "filp_open"; "filp_close"; "kernel_write"; "kthread_create_on_node";
    "wake_up_process";
  ]

(* Data area assembled alongside the ops; returns offsets. *)
module Data = struct
  type t = { buf : Buffer.t; mutable relocs : (int * int) list }
  (* relocs: (offset within data, addend relative to image base) *)

  let create () = { buf = Buffer.create 256; relocs = [] }

  let align t n =
    while Buffer.length t.buf mod n <> 0 do
      Buffer.add_char t.buf '\000'
    done

  let add_bytes t b =
    align t 8;
    let off = Buffer.length t.buf in
    Buffer.add_bytes t.buf b;
    off

  let add_string t s = add_bytes t (Bytes.of_string (s ^ "\000"))

  let add_u64_slot t v =
    align t 8;
    let off = Buffer.length t.buf in
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Buffer.add_bytes t.buf b;
    off

  (* record that the u64 at [field_off] must hold image_base + target *)
  let pointer_fixup t ~field_off ~target = t.relocs <- (field_off, target) :: t.relocs
end

let build ~version ~guest_program ?(pci = false)
    ?console_base ?blk_base ?net_base ?ninep_base
    ?(console_gsi = 24) ?(blk_gsi = 25) ?(net_gsi = 26) ?(ninep_gsi = 27)
    ?(exec_path = "/dev/.vmsh-exec")
    ?force_rw_abi ?force_struct_version () =
  let region_base = if pci then Layout.vmsh_pci_base else Layout.vmsh_mmio_base in
  let default_base i =
    region_base + (i * Layout.virtio_mmio_stride)
  in
  let console_base = Option.value console_base ~default:(default_base 0) in
  let blk_base = Option.value blk_base ~default:(default_base 1) in
  let net_base = Option.value net_base ~default:(default_base 2) in
  let ninep_base = Option.value ninep_base ~default:(default_base 3) in
  let register_import =
    if pci then "register_virtio_pci_dev" else "register_virtio_mmio_dev"
  in
  let rw_abi = Option.value force_rw_abi ~default:(KV.rw_abi version) in
  let desc_version =
    Option.value force_struct_version ~default:(KV.virtio_desc_version version)
  in
  let thread_version =
    Option.value force_struct_version
      ~default:(KV.thread_struct_version version)
  in
  let data = Data.create () in
  let msg_loading = Data.add_string data "vmsh: side-loaded library starting" in
  let msg_done = Data.add_string data "vmsh: guest overlay process spawned" in
  let path_off = Data.add_string data exec_path in
  let console_desc =
    Data.add_bytes data
      (Guest.encode_virtio_desc ~version_tag:desc_version
         ~device_type:Virtio.Console.device_id ~mmio_base:console_base
         ~gsi:console_gsi)
  in
  let blk_desc =
    Data.add_bytes data
      (Guest.encode_virtio_desc ~version_tag:desc_version
         ~device_type:Virtio.Blk.device_id ~mmio_base:blk_base ~gsi:blk_gsi)
  in
  let net_desc =
    Data.add_bytes data
      (Guest.encode_virtio_desc ~version_tag:desc_version
         ~device_type:Virtio.Net.device_id ~mmio_base:net_base ~gsi:net_gsi)
  in
  let ninep_desc =
    Data.add_bytes data
      (Guest.encode_virtio_desc ~version_tag:desc_version
         ~device_type:Virtio.Ninep.device_id ~mmio_base:ninep_base
         ~gsi:ninep_gsi)
  in
  let thread_struct =
    Data.add_bytes data
      (Guest.encode_thread_struct ~version_tag:thread_version ~kind:1 ~arg:0)
  in
  (* thread_struct.arg (offset +8) must point at the exec path *)
  Data.pointer_fixup data ~field_off:(thread_struct + 8) ~target:path_off;
  let fd_slot = Data.add_u64_slot data 0 in
  let pos_slot = Data.add_u64_slot data 0 in
  let prog_off = Data.add_bytes data guest_program in
  let prog_len = Bytes.length guest_program in
  let data_bytes = Buffer.to_bytes data.Data.buf in

  (* --- assemble ops with symbolic pushes --- *)
  (* A push is either an immediate, an imported symbol address, or an
     image-base-relative data address. *)
  let ops : [ `Op of Klib.op | `Push_import of string | `Push_data of int ] list ref =
    ref []
  in
  let emit op = ops := `Op op :: !ops
  and push_imm v = ops := `Op (Klib.Push v) :: !ops
  and push_import s = ops := `Push_import s :: !ops
  and push_data off = ops := `Push_data off :: !ops in
  let pc () = List.length !ops in
  (* status offsets are only known after the ops are counted; statuses
     are written via data-relative pushes patched with the final status
     offset, so we must reserve it now: we compute sizes iteratively.
     Simpler: the status page is addressed via a dedicated data slot? No:
     we push it as `Push_data status_off` once status_off is known. To
     break the circularity we do a two-pass assembly with a fixed
     placeholder and patch after layout. *)
  let status_pushes = ref [] in
  let push_status () =
    status_pushes := pc () :: !status_pushes;
    push_data 0 (* patched later *)
  in
  let write_status code =
    push_status ();
    push_imm code;
    emit Klib.Write64
  in
  (* error stubs are emitted at the end; record (site, code) and patch *)
  let err_sites = ref [] in
  let jneg_err code =
    err_sites := (pc (), code) :: !err_sites;
    emit (Klib.Jneg 0 (* patched *))
  in

  emit Klib.Tramp;
  (* printk(loading) *)
  push_data msg_loading;
  push_import "printk";
  emit (Klib.Call 1);
  emit Klib.Drop;
  (* register console *)
  push_data console_desc;
  push_import register_import;
  emit (Klib.Call 1);
  jneg_err status_err_console;
  (* register blk *)
  push_data blk_desc;
  push_import register_import;
  emit (Klib.Call 1);
  jneg_err status_err_blk;
  (* register net *)
  push_data net_desc;
  push_import register_import;
  emit (Klib.Call 1);
  jneg_err status_err_net;
  (* register 9p *)
  push_data ninep_desc;
  push_import register_import;
  emit (Klib.Call 1);
  jneg_err status_err_ninep;
  write_status status_devices_ready;
  (* fd = filp_open(path, O_CREAT|O_WRONLY, 0755) *)
  push_data path_off;
  push_imm (Guest.o_creat lor Guest.o_wronly);
  push_imm 0o755;
  push_import "filp_open";
  emit (Klib.Call 3);
  emit Klib.Dup;
  jneg_err status_err_open;
  (* store fd *)
  push_data fd_slot;
  emit Klib.Swap;
  emit Klib.Write64;
  (* kernel_write(fd, prog, len) with the version's ABI *)
  push_data fd_slot;
  emit Klib.Read64;
  (match rw_abi with
  | KV.Rw_old ->
      (* (fd, pos, buf, count) *)
      push_imm 0;
      push_data prog_off;
      push_imm prog_len
  | KV.Rw_new ->
      (* (fd, buf, count, pos_ptr) *)
      push_data prog_off;
      push_imm prog_len;
      push_data pos_slot);
  push_import "kernel_write";
  emit (Klib.Call 4);
  emit Klib.Dup;
  jneg_err status_err_write;
  emit Klib.Drop;
  (* filp_close(fd) *)
  push_data fd_slot;
  emit Klib.Read64;
  push_import "filp_close";
  emit (Klib.Call 1);
  emit Klib.Drop;
  (* spawn the guest program *)
  push_data thread_struct;
  push_import "kthread_create_on_node";
  emit (Klib.Call 1);
  emit Klib.Dup;
  jneg_err status_err_spawn;
  push_import "wake_up_process";
  emit (Klib.Call 1);
  jneg_err status_err_spawn;
  write_status status_done;
  push_data msg_done;
  push_import "printk";
  emit (Klib.Call 1);
  emit Klib.Drop;
  emit Klib.Ret;
  (* error stubs: one per distinct code *)
  let codes = List.sort_uniq compare (List.map snd !err_sites) in
  let stub_pc =
    List.map
      (fun code ->
        let at = pc () in
        write_status code;
        emit Klib.Ret;
        (code, at))
      codes
  in
  (* resolve: materialize op list *)
  let op_list = List.rev !ops in
  let op_count = List.length op_list in
  let ops_len = op_count * Klib.op_size in
  let data_off = ((ops_len + 15) / 16) * 16 in
  let text_len = data_off + Bytes.length data_bytes in
  let status_off = ((text_len + 4095) / 4096) * 4096 in
  let blob_off = status_off + 0x100 in
  let total_len = status_off + 4096 in
  (* second pass: patch err sites and status pushes, build final ops +
     relocations *)
  let err_sites = !err_sites and status_pushes = !status_pushes in
  let relocs = ref [] in
  let final_ops =
    List.mapi
      (fun i item ->
        match item with
        | `Op (Klib.Jneg _) when List.mem_assoc i err_sites ->
            let code = List.assoc i err_sites in
            Klib.Jneg (List.assoc code stub_pc)
        | `Op op -> op
        | `Push_import s ->
            relocs :=
              {
                Elfkit.Elf.rel_offset = Klib.operand_offset i;
                rel_symbol = s;
                rel_addend = 0;
              }
              :: !relocs;
            Klib.Push 0
        | `Push_data off ->
            let target =
              if List.mem i status_pushes then status_off else data_off + off
            in
            relocs :=
              {
                Elfkit.Elf.rel_offset = Klib.operand_offset i;
                rel_symbol = base_symbol;
                rel_addend = target;
              }
              :: !relocs;
            Klib.Push 0)
      op_list
  in
  (* data pointer fixups *)
  List.iter
    (fun (field_off, target) ->
      relocs :=
        {
          Elfkit.Elf.rel_offset = data_off + field_off;
          rel_symbol = base_symbol;
          rel_addend = data_off + target;
        }
        :: !relocs)
    data.Data.relocs;
  let text = Bytes.make text_len '\000' in
  Bytes.blit (Klib.encode final_ops) 0 text 0 ops_len;
  Bytes.blit data_bytes 0 text data_off (Bytes.length data_bytes);
  let image =
    {
      Elfkit.Elf.text;
      symbols =
        [
          { Elfkit.Elf.sym_name = base_symbol; sym_value = Some 0 };
          { sym_name = entry_symbol; sym_value = Some 0 };
        ]
        @ List.map
            (fun s -> { Elfkit.Elf.sym_name = s; sym_value = None })
            required_imports;
      relocs = List.rev !relocs;
      entry = 0;
    }
  in
  (image, { text_len; status_off; blob_off; total_len })
