(* Guest-mutation journal: the undo log that makes attach a
   transaction.

   Every side effect the attach pipeline performs on guest or
   hypervisor state — overwritten guest-physical bytes, PTE installs,
   vCPU register mutations, memslot additions, remote mmaps and fds,
   device/irqfd/ioregionfd wiring — is recorded as an undo entry on a
   per-session log. [Attach.detach] and every abort path call [replay],
   which runs the undo closures newest-first so the guest is restored
   byte-for-byte in the reverse of the mutation order (see DESIGN.md
   §4f for the mutation → undo → replay-order table).

   Two refinements keep the log small and the fault-free path cheap:

   - [note_owned] marks guest-physical ranges the overlay allocated for
     itself (the side-loaded library's memslot, its page-table arena).
     Writes wholly inside an owned range need no byte journal — the
     range is torn down wholesale by its own undo entry (memslot
     removal), so journaling its interior would only restore bytes into
     a region about to vanish.

   - [seal] freezes the log once the attach transaction commits.
     Steady-state device activity after a successful attach (virtqueue
     used-ring updates while the overlay serves requests) appends no
     undo entries; those writes are tracked as [late_writes] intervals
     instead, which the snapshot oracle excludes alongside pages the
     guest itself dirtied — in-flight ring updates are jointly owned
     with the guest that requested the I/O.

   Rollback counters ([rollback.replays], [rollback.entries]) are
   registered lazily at replay time, mirroring the recovery.* pattern:
   a run that never rolls back allocates no counters and stays
   byte-identical to a build without this module. *)

type entry = { what : string; undo : unit -> unit }

type t = {
  mutable entries : entry list; (* newest first = replay order *)
  mutable sealed : bool;
  mutable owned : (int * int) list; (* (gpa, len) overlay-owned ranges *)
  mutable late_writes : (int * int) list; (* post-seal device writes *)
}

let create () = { entries = []; sealed = false; owned = []; late_writes = [] }

let record t ~what undo =
  if not t.sealed then t.entries <- { what; undo } :: t.entries

let length t = List.length t.entries
let labels t = List.map (fun e -> e.what) t.entries

let seal t = t.sealed <- true
let sealed t = t.sealed

let note_owned t ~gpa ~len = t.owned <- (gpa, len) :: t.owned

let owns t ~gpa ~len =
  List.exists (fun (base, sz) -> gpa >= base && gpa + len <= base + sz) t.owned

let note_late_write t ~gpa ~len = t.late_writes <- (gpa, len) :: t.late_writes
let late_writes t = t.late_writes

(* Replay newest-first. A failing undo does not stop the replay — the
   remaining (older) entries still restore as much state as possible —
   but the first failure is reported so the caller can surface a
   [Rollback_failed]. The log is consumed either way; an entry must
   never be replayed twice. *)
let replay ?metrics t =
  let entries = t.entries in
  t.entries <- [];
  let first_err = ref None in
  List.iter
    (fun e ->
      try e.undo ()
      with exn ->
        if !first_err = None then
          let inner =
            match exn with
            | Vmsh_error.Error err -> err
            | exn -> Vmsh_error.Msg (Printexc.to_string exn)
          in
          first_err := Some (Vmsh_error.Context (e.what, inner)))
    entries;
  (match metrics with
  | Some m when entries <> [] ->
      Observe.Metrics.incr (Observe.Metrics.counter m "rollback.replays");
      Observe.Metrics.incr
        ~by:(List.length entries)
        (Observe.Metrics.counter m "rollback.entries")
  | _ -> ());
  match !first_err with None -> Ok () | Some e -> Error e
