(** The rollback oracle: snapshots of guest memory and vCPU registers.

    {!capture} hashes guest physical memory per 4 KiB page (via the
    simulated KVM's direct view — zero virtual-time cost) and each
    vCPU's register file. {!diff} compares two snapshots modulo an
    exclusion interval set, proving that a detached or aborted attach
    restored the guest byte-for-byte. *)

type t

val page_size : int

val capture : Kvm.Vm.t -> t

val dirty_since : Kvm.Vm.t -> t -> (int * int) list
(** Intervals the guest itself has written since the snapshot was
    captured — the legitimate mutations the oracle must not blame on
    VMSH. Union these with the journal's {!Journal.late_writes} as the
    [exclude] argument to {!diff}. *)

val diff : before:t -> after:t -> exclude:(int * int) list -> string list
(** Every discrepancy, as human-readable lines; [[]] means clean.
    Checks memslot-set equality, per-page digests outside the excluded
    pages (page-granular), and register files. *)

val check : before:t -> after:t -> exclude:(int * int) list -> bool

val digest : t -> string
(** One hex digest over every page and register digest — equal iff the
    captured guest states are equal. The replay-diff oracle compares
    this between a live run and its replay. *)
