(** Builder of the side-loaded guest kernel library (paper §5).

    Emits a genuine ET_DYN ELF image whose [.text] holds the klib
    bytecode followed by an embedded data area (descriptor structs,
    strings, the guest userspace program) and a status page. Undefined
    symbols are the guest kernel functions; internal references use
    relocations against a local base symbol, so the image is fully
    position-independent until {!Elfkit.Elf.link} runs.

    The builder conditions two things on the detected kernel version,
    exactly as the paper reports having to: the [kernel_write] call ABI
    (old: offset by value; new: position pointer) and the version tags
    of the two structures passed to driver/thread creation. *)

type layout = {
  text_len : int;  (** bytecode + data bytes *)
  status_off : int;  (** page-aligned offset of the status page *)
  blob_off : int;  (** offset of the saved-registers blob within image *)
  total_len : int;  (** full image size incl. status page *)
}

(** Values the guest library stores at [status_off]. *)
val status_devices_ready : int

val status_done : int
val status_err_console : int
val status_err_blk : int
val status_err_open : int
val status_err_write : int
val status_err_spawn : int
val status_err_net : int
val status_err_ninep : int

val required_imports : string list
(** The kernel functions the library links against. *)

val build :
  version:Linux_guest.Kernel_version.t ->
  guest_program:bytes ->
  ?pci:bool ->
  ?console_base:int -> ?blk_base:int -> ?net_base:int -> ?ninep_base:int ->
  ?console_gsi:int -> ?blk_gsi:int -> ?net_gsi:int -> ?ninep_gsi:int ->
  ?exec_path:string ->
  ?force_rw_abi:Linux_guest.Kernel_version.rw_abi ->
  ?force_struct_version:int ->
  unit -> Elfkit.Elf.t * layout
(** With [pci], the library registers the devices through
    [register_virtio_pci_dev] and the base addresses are PCI config
    spaces rather than MMIO windows (the VirtIO-over-PCI transport for
    Cloud Hypervisor). [force_rw_abi] / [force_struct_version]
    deliberately mis-build the library (for the version-compatibility
    failure tests). *)
