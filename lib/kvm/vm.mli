(** The KVM virtual machine object: memslots, vCPUs, interrupts, the
    guest execution loop, and the /dev/kvm ioctl surface.

    Guest code runs as OCaml closures that perform the {!Mmio} and
    {!Yield_until} effects; [KVM_RUN] executes them under a handler that
    turns unclaimed MMIO accesses into genuine exits (continuations are
    parked in the vCPU and resumed on re-entry, mirroring how hardware
    suspends the guest at the faulting instruction). *)

type memslot = {
  slot : int;
  gpa : int;  (** guest-physical base *)
  size : int;
  hva : int;  (** base in the hypervisor's virtual address space *)
}

(** Effects performed by guest code. *)
type mmio_request =
  | Mmio_read of { addr : int; len : int }
  | Mmio_write of { addr : int; data : bytes }

type _ Effect.t +=
  | Mmio : mmio_request -> bytes Effect.t
        (** Access a guest-physical address not backed by RAM. Reads
            resolve to the returned bytes. *)
  | Yield_until : (unit -> bool) -> unit Effect.t
        (** Block the current guest context until the predicate holds
            (e.g. a virtio completion has been posted). *)

type t
type vcpu

exception Guest_error of string
(** Raised by the guest execution loop when guest code reaches a state
    the model cannot represent (e.g. an unhandled exit reason). *)

type Hostos.Ebpf.kdata += Kvm_memslots of memslot list
      (** Kernel-internal data exposed to eBPF programs attached to the
          [kvm_vm_ioctl] hook — the memslot table VMSH's discovery
          program dumps. *)

(** Hooks the guest kernel model installs on the VM. *)
type runtime = {
  on_irq : gsi:int -> unit;
      (** interrupt delivery: called at guest scheduling points for each
          pending GSI *)
  resolve_rip : X86.Regs.t -> (unit -> unit) option;
      (** if the vCPU's instruction pointer was redirected somewhere
          special (VMSH's side-loaded library), return the guest code to
          execute there *)
}

val host : t -> Hostos.Host.t
val owner : t -> Hostos.Proc.t
(** The hypervisor process that created the VM. *)

val set_runtime : t -> runtime -> unit
val runtime_installed : t -> bool

val enqueue_task : t -> name:string -> (unit -> unit) -> unit
(** Queue runnable guest work (the guest kernel model schedules workload
    steps through this). *)

val has_work : t -> bool
(** Runnable tasks or parked contexts remain. *)

val has_runnable : t -> bool
(** Whether re-entering KVM_RUN can make progress right now: queued
    tasks, pending direct GSIs, or signalled irqfds. Parked contexts
    with nothing to wake them do not count — a guest blocked on console
    input is idle, not stuck. *)

(** {1 Guest physical memory} *)

val memslots : t -> memslot list

val overlay_stats : t -> Hostos.Mem.cow_stats
(** Summed copy-on-write overlay occupancy across the VM's memslots —
    the private footprint of a forked (linked-clone) VM over its
    shared baseline. All zeros for a cold-booted VM. *)

val read_phys : t -> int -> int -> bytes
(** In-guest view of RAM: resolves through the memslots to the
    hypervisor memory backing them. Raises on unbacked addresses. *)

val write_phys : t -> int -> bytes -> unit
val read_phys_u64 : t -> int -> int
val write_phys_u64 : t -> int -> int -> unit
val is_ram : t -> int -> bool

val pt_access : t -> X86.Page_table.access
(** Physical accessors for the page-table walker. *)

(** {1 vCPUs} *)

val vcpus : t -> vcpu list
val vcpu_index : vcpu -> int
val vcpu_regs : vcpu -> X86.Regs.t
val vcpu_run_page : vcpu -> Hostos.Mem.t
val vcpu_run_hva : vcpu -> int
(** Where the kvm_run page is mapped in the hypervisor address space. *)

(** {1 Interrupt and notification plumbing} *)

val set_gsi_irqfd_support : t -> bool -> unit
(** Whether KVM_IRQFD with a plain GSI is accepted. Cloud Hypervisor
    configures its VMs for PCIe MSI-X only, which is what makes it
    incompatible with VMSH's MMIO transport (paper §6.2). *)

val signal_gsi : t -> gsi:int -> unit
(** Kernel-side interrupt injection: pend the GSI directly (used by
    in-process devices that hold no eventfd). *)

val add_eventfd_waiter : t -> fd:Hostos.Fd.t -> (unit -> unit) -> unit
(** Register a callback invoked when the given ioeventfd is signalled by
    a guest doorbell (models the VMM iothread wake-up). *)

val add_ioregion_pump : t -> (unit -> unit) -> int
(** Register a callback that drains ioregionfd sockets and posts
    responses (models the VMSH device thread being scheduled). Returns
    a pump id for {!remove_ioregion_pump}. *)

val remove_ioregion_pump : t -> int -> unit
(** Unregister a pump by id (detach/rollback of the device thread). *)

val remove_msi_route : t -> gsi:int -> unit
(** Drop an MSI route installed via KVM_SET_GSI_ROUTING (rollback). *)

val mark_dirty : t -> pa:int -> len:int -> unit
(** Record a guest-initiated write interval without performing it —
    used by VMM device emulation that writes guest RAM through its own
    process mapping rather than {!write_phys}. *)

val dirty_intervals : t -> (int * int) list
(** (gpa, len) intervals the guest itself has written through
    {!write_phys} / {!write_phys_u64} (or noted via {!mark_dirty})
    since the VM was created — the ground truth the rollback snapshot
    oracle uses to exclude pages the guest legitimately dirtied while
    VMSH was attached. *)

(** {1 Creation and the ioctl surface} *)

val dev_kvm : Hostos.Host.t -> Hostos.Proc.t -> Hostos.Fd.t
(** Open /dev/kvm in the given process: the returned fd accepts
    KVM_CREATE_VM and KVM_GET_VCPU_MMAP_SIZE. *)

val vm_of_fd : Hostos.Fd.t -> t option
(** Recover the VM behind a "anon_inode:kvm-vm" descriptor. *)

val vcpu_of_fd : Hostos.Fd.t -> vcpu option

val run_vcpu : Hostos.Host.t -> Hostos.Proc.t -> Hostos.Proc.thread ->
  vcpu_fd:Hostos.Fd.t -> Api.exit_info
(** Convenience for VMM loops: ioctl(KVM_RUN) through the (hookable)
    syscall path, then decode the exit from the run page. *)
