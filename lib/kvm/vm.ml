module Mem = Hostos.Mem
module Proc = Hostos.Proc
module Fd = Hostos.Fd
module Clock = Hostos.Clock
module Host = Hostos.Host
module Errno = Hostos.Errno
module Syscall = Hostos.Syscall

let src = Logs.Src.create "kvm" ~doc:"simulated KVM"

module Log = (val Logs.src_log src : Logs.LOG)

type memslot = { slot : int; gpa : int; size : int; hva : int }

type mmio_request =
  | Mmio_read of { addr : int; len : int }
  | Mmio_write of { addr : int; data : bytes }

type _ Effect.t +=
  | Mmio : mmio_request -> bytes Effect.t
  | Yield_until : (unit -> bool) -> unit Effect.t

type runtime = {
  on_irq : gsi:int -> unit;
  resolve_rip : X86.Regs.t -> (unit -> unit) option;
}

(* Outcome of running one guest slice to its own end under the effect
   handler: the slice finished (or parked itself), or it triggered a
   genuine exit that must be delivered to the hypervisor. *)
type slice_outcome = Done | Exited

type parked = {
  pred : unit -> bool;
  k : (unit, slice_outcome) Effect.Deep.continuation;
}

type islot = { s : memslot; backing : Mem.t; boff : int }

type ioregion = { base : int; rlen : int; rfd : Fd.t; wfd : Fd.t }

type t = {
  host : Host.t;
  owner : Proc.t;
  mutable islots : islot list;
  mutable vcpu_list : vcpu list;
  mutable rt : runtime option;
  tasks : (string * (unit -> unit)) Queue.t;
  mutable parked : parked list;
  irqfds : (int, Fd.t) Hashtbl.t;
  msi_routes : (int, int * int) Hashtbl.t;  (** gsi -> (msi addr, data) *)
  mutable pending_gsi : int list;
  mutable ioeventfds : (int * int option * Fd.t) list;
  mutable eventfd_waiters : (Fd.t * (unit -> unit)) list;
  mutable missed_notifies : (int * Fd.t) list;
      (** doorbell writes whose eventfd signal was dropped (fault
          injection); re-kicked by [deliver_irqs] *)
  mutable ioregions : ioregion list;
  mutable ioregion_pumps : (int * (unit -> unit)) list;
  mutable next_pump_id : int;
  mutable current : vcpu option;
  mutable gsi_irqfd_supported : bool;
  mutable dirty_writes : (int * int) list;
      (** (gpa, len) of every in-guest write since boot — the ground
          truth "pages the guest itself dirtied" that the rollback
          snapshot oracle excludes *)
}

and vcpu = {
  index : int;
  vm : t;
  vregs : X86.Regs.t;
  run_page : Mem.t;
  run_hva : int;
  mutable pending_mmio : (bytes, slice_outcome) Effect.Deep.continuation option;
}

type Hostos.Ebpf.kdata += Kvm_memslots of memslot list
type Fd.kind += Kvm_dev | Kvm_vm of t | Kvm_vcpu of vcpu

exception Guest_error of string

let host t = t.host
let owner t = t.owner

(* Flight-recorder + per-exit-class profiling, both always-on: the
   recorder is pure observation and the stage counters register
   identically in every run, so neither perturbs determinism. *)
let flight t ~kind args =
  Trace.Recorder.record t.host.Host.recorder ~kind ~args ()

let stage_exit t cls =
  Observe.Metrics.incr
    (Observe.Metrics.counter
       (Observe.metrics t.host.Host.observe)
       ("stage.exit." ^ cls))
let set_runtime t rt = t.rt <- Some rt
let runtime_installed t = t.rt <> None
let enqueue_task t ~name thunk = Queue.push (name, thunk) t.tasks
let has_work t = not (Queue.is_empty t.tasks) || t.parked <> []

let has_runnable t =
  (not (Queue.is_empty t.tasks))
  || t.pending_gsi <> []
  || Hashtbl.fold
       (fun _ fd acc ->
         acc || match Fd.eventfd_count fd with Some n -> n > 0 | None -> false)
       t.irqfds false
  || t.missed_notifies <> []
  (* a parked context whose predicate already holds can also run *)
  || List.exists (fun p -> p.pred ()) t.parked
let memslots t = List.map (fun i -> i.s) t.islots

(* Summed overlay occupancy over every distinct CoW-backed memslot: a
   forked VM's RAM is an overlay over the shared baseline, so this is
   the clone's private guest-memory footprint. All zeros for
   cold-booted VMs (flat backings). *)
let overlay_stats t =
  let zero =
    {
      Mem.cs_pages_total = 0;
      cs_pages_copied = 0;
      cs_silent_writes = 0;
      cs_resident_bytes = 0;
    }
  in
  let seen = ref [] in
  List.fold_left
    (fun acc i ->
      if List.memq i.backing !seen then acc
      else begin
        seen := i.backing :: !seen;
        match Mem.cow_stats i.backing with
        | None -> acc
        | Some s ->
            {
              Mem.cs_pages_total = acc.Mem.cs_pages_total + s.Mem.cs_pages_total;
              cs_pages_copied = acc.cs_pages_copied + s.cs_pages_copied;
              cs_silent_writes = acc.cs_silent_writes + s.cs_silent_writes;
              cs_resident_bytes = acc.cs_resident_bytes + s.cs_resident_bytes;
            }
      end)
    zero t.islots
let vcpus t = t.vcpu_list
let vcpu_index v = v.index
let vcpu_regs v = v.vregs
let vcpu_run_page v = v.run_page
let vcpu_run_hva v = v.run_hva

(* --- guest physical memory --- *)

let find_slot t pa =
  List.find_opt (fun i -> pa >= i.s.gpa && pa < i.s.gpa + i.s.size) t.islots

let resolve_phys t pa =
  match find_slot t pa with
  | Some i -> (i.backing, i.boff + (pa - i.s.gpa))
  | None ->
      raise (Guest_error (Printf.sprintf "physical address 0x%x unbacked" pa))

let is_ram t pa = find_slot t pa <> None

let read_phys t pa len =
  let m, off = resolve_phys t pa in
  Mem.read_bytes m off len

let mark_dirty t ~pa ~len =
  if len > 0 then t.dirty_writes <- (pa, len) :: t.dirty_writes

let write_phys t pa b =
  let m, off = resolve_phys t pa in
  mark_dirty t ~pa ~len:(Bytes.length b);
  Mem.write_bytes m off b

let read_phys_u64 t pa =
  let m, off = resolve_phys t pa in
  Mem.read_u64 m off

let write_phys_u64 t pa v =
  let m, off = resolve_phys t pa in
  mark_dirty t ~pa ~len:8;
  Mem.write_u64 m off v

let pt_access t =
  { X86.Page_table.read_u64 = read_phys_u64 t; write_u64 = write_phys_u64 t }

(* --- interrupts and notification --- *)

let set_gsi_irqfd_support t v = t.gsi_irqfd_supported <- v

let signal_gsi t ~gsi =
  if not (List.mem gsi t.pending_gsi) then
    t.pending_gsi <- t.pending_gsi @ [ gsi ]

let add_eventfd_waiter t ~fd waiter =
  t.eventfd_waiters <- t.eventfd_waiters @ [ (fd, waiter) ]

let add_ioregion_pump t pump =
  let id = t.next_pump_id in
  t.next_pump_id <- id + 1;
  t.ioregion_pumps <- t.ioregion_pumps @ [ (id, pump) ];
  id

let remove_ioregion_pump t id =
  t.ioregion_pumps <- List.filter (fun (i, _) -> i <> id) t.ioregion_pumps

let remove_msi_route t ~gsi = Hashtbl.remove t.msi_routes gsi
let dirty_intervals t = t.dirty_writes

(* A dropped doorbell signal leaves the iothread unaware that the ring
   has work. Real device backends recover by re-kicking pending queues
   from a timer/poll path; our equivalent is the scheduler loop, which
   re-delivers every recorded missed notify before normal irq
   processing. *)
let rekick_missed_notifies t =
  match t.missed_notifies with
  | [] -> ()
  | missed ->
      t.missed_notifies <- [];
      let obs = t.host.Host.observe in
      let clock = t.host.Host.clock in
      let rekicks =
        Observe.Metrics.counter (Observe.metrics obs) "recovery.notify_rekick"
      in
      List.iter
        (fun (addr, fd) ->
          Observe.Metrics.incr rekicks;
          flight t ~kind:"kvm.notify_rekick" [ ("addr", Trace.I addr) ];
          if Observe.enabled obs then
            Observe.instant obs ~name:"kvm.notify_rekick"
              ~attrs:[ ("addr", Observe.I addr) ]
              ();
          Fd.eventfd_signal fd;
          List.iter
            (fun (wfd, waiter) ->
              if wfd == fd then begin
                Clock.context_switch clock;
                waiter ()
              end)
            t.eventfd_waiters)
        missed

let deliver_irqs t =
  rekick_missed_notifies t;
  match t.rt with
  | None -> ()
  | Some rt ->
      let direct = t.pending_gsi in
      t.pending_gsi <- [];
      let obs = t.host.Host.observe in
      List.iter
        (fun gsi ->
          Clock.irq_injection t.host.Host.clock;
          flight t ~kind:"kvm.irq"
            [ ("gsi", Trace.I gsi); ("source", Trace.S "direct") ];
          if Observe.enabled obs then
            Observe.instant obs ~name:"kvm.irq"
              ~attrs:[ ("gsi", Observe.I gsi); ("source", Observe.S "direct") ]
              ();
          rt.on_irq ~gsi)
        direct;
      Hashtbl.iter
        (fun gsi fd ->
          match Fd.eventfd_count fd with
          | Some n when n > 0 ->
              ignore (fd.Fd.ops.read ~len:8);
              Clock.irq_injection t.host.Host.clock;
              flight t ~kind:"kvm.irq"
                [ ("gsi", Trace.I gsi); ("source", Trace.S "irqfd") ];
              if Observe.enabled obs then
                Observe.instant obs ~name:"kvm.irq"
                  ~attrs:
                    [ ("gsi", Observe.I gsi); ("source", Observe.S "irqfd") ]
                  ();
              rt.on_irq ~gsi
          | _ -> ())
        t.irqfds

(* --- MMIO routing inside KVM_RUN --- *)

type route = Inline of bytes | Needs_exit

let mmio_addr = function
  | Mmio_read { addr; _ } -> addr
  | Mmio_write { addr; _ } -> addr

let route_mmio t req =
  let clock = t.host.Host.clock in
  let addr = mmio_addr req in
  match
    List.find_opt (fun r -> addr >= r.base && addr < r.base + r.rlen) t.ioregions
  with
  | Some region -> (
      (* ioregionfd: the exit is handled in-kernel by forwarding a frame
         over the registered socket; the hypervisor never wakes up. *)
      Clock.vmexit clock;
      stage_exit t "ioregionfd";
      flight t ~kind:"kvm.exit.ioregionfd"
        [
          ("addr", Trace.I addr);
          ( "kind",
            Trace.S
              (match req with Mmio_read _ -> "read" | Mmio_write _ -> "write")
          );
        ];
      (let obs = t.host.Host.observe in
       if Observe.enabled obs then
         Observe.instant obs ~name:"kvm.exit:ioregionfd"
           ~attrs:
             [
               ("addr", Observe.I addr);
               ( "kind",
                 Observe.S
                   (match req with
                   | Mmio_read _ -> "read"
                   | Mmio_write _ -> "write") );
             ]
           ());
      let msg =
        match req with
        | Mmio_read { addr; len } ->
            Api.Ioreg_read { offset = addr - region.base; len }
        | Mmio_write { addr; data } ->
            Api.Ioreg_write { offset = addr - region.base; data }
      in
      Clock.socket_msg clock;
      (match region.wfd.Fd.ops.write (Api.encode_ioregion_msg msg) with
      | Ok _ -> ()
      | Error e ->
          raise (Guest_error ("ioregionfd write: " ^ Hostos.Errno.show e)));
      Clock.context_switch clock;
      List.iter (fun (_, pump) -> pump ()) t.ioregion_pumps;
      Clock.socket_msg clock;
      Clock.context_switch clock;
      match req with
      | Mmio_write _ ->
          (* drain the ack if the service posted one *)
          ignore (region.rfd.Fd.ops.read ~len:32);
          Inline Bytes.empty
      | Mmio_read { len; _ } -> (
          match region.rfd.Fd.ops.read ~len:32 with
          | Ok frame -> (
              match Api.decode_ioregion_resp frame with
              | Some data -> Inline (Bytes.sub data 0 (min len (Bytes.length data)))
              | None -> raise (Guest_error "ioregionfd: bad response frame"))
          | Error _ -> raise (Guest_error "ioregionfd: no response")))
  | None -> (
      match req with
      | Mmio_write { addr; data } -> (
          let matches (a, dm, _) =
            a = addr
            &&
            match dm with
            | None -> true
            | Some v ->
                Bytes.length data >= 4
                && Int32.to_int (Bytes.get_int32_le data 0) land 0xffffffff = v
          in
          match List.find_opt matches t.ioeventfds with
          | Some (_, _, fd)
            when Faults.fire t.host.Host.faults Faults.Notify_drop ->
              (* The exit happened but the wakeup is lost in flight; the
                 guest proceeds while the iothread sleeps until the
                 scheduler's re-kick path finds the missed notify. *)
              Clock.vmexit clock;
              stage_exit t "ioeventfd";
              flight t ~kind:"kvm.notify_drop" [ ("addr", Trace.I addr) ];
              t.missed_notifies <- t.missed_notifies @ [ (addr, fd) ];
              Inline Bytes.empty
          | Some (_, _, fd) ->
              (* ioeventfd: lightweight in-kernel exit; the iothread is
                 woken to process the queue. *)
              Clock.vmexit clock;
              stage_exit t "ioeventfd";
              flight t ~kind:"kvm.kick" [ ("addr", Trace.I addr) ];
              (let obs = t.host.Host.observe in
               if Observe.enabled obs then
                 Observe.instant obs ~name:"kvm.exit:ioeventfd"
                   ~attrs:[ ("addr", Observe.I addr) ]
                   ());
              Fd.eventfd_signal fd;
              List.iter
                (fun (wfd, waiter) ->
                  if wfd == fd then begin
                    Clock.context_switch clock;
                    waiter ()
                  end)
                t.eventfd_waiters;
              Inline Bytes.empty
          | None -> Needs_exit)
      | Mmio_read _ -> Needs_exit)

let current_vcpu t =
  match t.current with
  | Some v -> v
  | None -> raise (Guest_error "guest code ran outside KVM_RUN")

let effect_handler t =
  let open Effect.Deep in
  {
    retc = (fun () -> Done);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Mmio req ->
            Some
              (fun (k : (a, slice_outcome) continuation) ->
                match route_mmio t req with
                | Inline data -> continue k data
                | Needs_exit ->
                    let vcpu = current_vcpu t in
                    let phys_addr = mmio_addr req in
                    let len, is_write, data =
                      match req with
                      | Mmio_read { len; _ } -> (len, false, Bytes.empty)
                      | Mmio_write { data; _ } ->
                          (Bytes.length data, true, data)
                    in
                    Api.write_exit vcpu.run_page
                      (Api.Exit_mmio { phys_addr; len; is_write; data });
                    vcpu.pending_mmio <- Some k;
                    Clock.mmio_exit t.host.Host.clock;
                    stage_exit t "mmio-userspace";
                    flight t ~kind:"kvm.exit.mmio"
                      [
                        ("addr", Trace.I phys_addr);
                        ("len", Trace.I len);
                        ("is_write", Trace.I (Bool.to_int is_write));
                      ];
                    (let obs = t.host.Host.observe in
                     if Observe.enabled obs then
                       Observe.instant obs ~name:"kvm.exit:mmio-userspace"
                         ~attrs:
                           [
                             ("addr", Observe.I phys_addr);
                             ("len", Observe.I len);
                             ("is_write", Observe.I (Bool.to_int is_write));
                           ]
                         ());
                    Exited)
        | Yield_until pred ->
            Some
              (fun (k : (a, slice_outcome) continuation) ->
                if pred () then continue k ()
                else begin
                  t.parked <- t.parked @ [ { pred; k } ];
                  Done
                end)
        | _ -> None);
  }

let run_slice t thunk = Effect.Deep.match_with thunk () (effect_handler t)

let pop_ready_parked t =
  let rec go acc = function
    | [] -> None
    | p :: rest ->
        if p.pred () then begin
          t.parked <- List.rev_append acc rest;
          Some p
        end
        else go (p :: acc) rest
  in
  go [] t.parked

let rec scheduler_loop t vcpu =
  deliver_irqs t;
  match pop_ready_parked t with
  | Some p -> (
      match Effect.Deep.continue p.k () with
      | Done -> scheduler_loop t vcpu
      | Exited -> ())
  | None -> (
      let rip_thunk =
        match t.rt with Some rt -> rt.resolve_rip vcpu.vregs | None -> None
      in
      match rip_thunk with
      | Some thunk -> (
          match run_slice t thunk with
          | Done -> scheduler_loop t vcpu
          | Exited -> ())
      | None -> (
          match Queue.take_opt t.tasks with
          | Some (_, thunk) -> (
              match run_slice t thunk with
              | Done -> scheduler_loop t vcpu
              | Exited -> ())
          | None ->
              Clock.vmexit_userspace t.host.Host.clock;
              Api.write_exit vcpu.run_page Api.Exit_hlt))

let do_run t vcpu =
  t.current <- Some vcpu;
  let resumed =
    match vcpu.pending_mmio with
    | Some k ->
        vcpu.pending_mmio <- None;
        let data = Api.read_mmio_response vcpu.run_page ~len:8 in
        Effect.Deep.continue k data
    | None -> Done
  in
  (match resumed with Done -> scheduler_loop t vcpu | Exited -> ());
  t.current <- None

(* --- fd / ioctl surface --- *)

let vm_of_fd fd = match fd.Fd.kind with Kvm_vm vm -> Some vm | _ -> None
let vcpu_of_fd fd = match fd.Fd.kind with Kvm_vcpu v -> Some v | _ -> None

let vcpu_ioctl vcpu ~code ~arg : int Errno.result =
  let t = vcpu.vm in
  if code = Api.run then begin
    do_run t vcpu;
    Ok 0
  end
  else if code = Api.get_regs then begin
    match Api.write_regs t.owner.Proc.aspace ~ptr:arg vcpu.vregs with
    | () -> Ok 0
    | exception Invalid_argument _ -> Error Errno.EFAULT
  end
  else if code = Api.set_regs then begin
    match Api.read_regs t.owner.Proc.aspace ~ptr:arg with
    | regs ->
        X86.Regs.restore vcpu.vregs ~from:regs;
        Ok 0
    | exception Invalid_argument _ -> Error Errno.EFAULT
  end
  else Error Errno.EINVAL

let make_vcpu t ~index =
  let run_page = Mem.create Api.run_page_size in
  let aspace = t.owner.Proc.aspace in
  let run_hva =
    Mem.Addr_space.find_free aspace ~hint:0x7f00_0000_0000 ~len:Api.run_page_size
  in
  Mem.Addr_space.map aspace
    {
      base = run_hva;
      len = Api.run_page_size;
      backing = run_page;
      backing_off = 0;
      tag = Printf.sprintf "kvm-vcpu-run:%d" index;
    };
  let vcpu =
    { index; vm = t; vregs = X86.Regs.zero (); run_page; run_hva;
      pending_mmio = None }
  in
  t.vcpu_list <- t.vcpu_list @ [ vcpu ];
  vcpu

let vm_ioctl t ~code ~arg : int Errno.result =
  (* The kvm_vm_ioctl kernel entry point: the attach point of VMSH's
     eBPF memslot-discovery program. *)
  flight t ~kind:"kvm.ioctl" [ ("code", Trace.I code) ];
  ignore
    (Host.fire_ebpf t.host ~hook:"kvm_vm_ioctl" ~args:[| code; arg |]
       (Kvm_memslots (memslots t)));
  if code = Api.create_vcpu then begin
    let index = arg in
    let vcpu = make_vcpu t ~index in
    let fd =
      Proc.install_fd t.owner (fun ~num ->
          Fd.make ~num ~kind:(Kvm_vcpu vcpu)
            ~ops:
              {
                Fd.default_ops with
                ioctl = (fun ~code ~arg -> vcpu_ioctl vcpu ~code ~arg);
              }
            ~label:(Printf.sprintf "anon_inode:kvm-vcpu:%d" index)
            ())
    in
    Ok fd.Fd.num
  end
  else if code = Api.set_user_memory_region then begin
    match Api.read_memory_region t.owner.Proc.aspace ~ptr:arg with
    | exception Invalid_argument _ -> Error Errno.EFAULT
    | r ->
        if r.Api.memory_size = 0 then begin
          t.islots <- List.filter (fun i -> i.s.slot <> r.Api.slot) t.islots;
          Ok 0
        end
        else begin
          match Mem.Addr_space.resolve t.owner.Proc.aspace r.Api.userspace_addr with
          | None -> Error Errno.EFAULT
          | Some (backing, boff) ->
              let s =
                {
                  slot = r.Api.slot;
                  gpa = r.Api.guest_phys_addr;
                  size = r.Api.memory_size;
                  hva = r.Api.userspace_addr;
                }
              in
              t.islots <-
                { s; backing; boff }
                :: List.filter (fun i -> i.s.slot <> s.slot) t.islots;
              Ok 0
        end
  end
  else if code = Api.set_gsi_routing then begin
    (* single-entry MSI routing update: after this, irqfds for the GSI
       are MSI-backed and work even on an MSI-X-only irqchip *)
    match Api.read_msi_route t.owner.Proc.aspace ~ptr:arg with
    | exception Invalid_argument _ -> Error Errno.EFAULT
    | r ->
        Hashtbl.replace t.msi_routes r.Api.route_gsi
          (r.Api.msi_addr, r.Api.msi_data);
        Ok 0
  end
  else if code = Api.irqfd then begin
    match Api.read_irqfd_req t.owner.Proc.aspace ~ptr:arg with
    | exception Invalid_argument _ -> Error Errno.EFAULT
    | r ->
        (* flags bit 0 = KVM_IRQFD_FLAG_DEASSIGN: drop the gsi route.
           Accepted regardless of fd state — deassign during teardown
           must work even when the eventfd is about to close. *)
        if r.Api.irqfd_flags land 1 = 1 then begin
          Hashtbl.remove t.irqfds r.Api.gsi;
          Ok 0
        end
        (* a plain-GSI irqfd needs a GSI-capable irqchip; an MSI-routed
           GSI works on any irqchip (Cloud Hypervisor's MSI-X-only one
           included) *)
        else if
          (not t.gsi_irqfd_supported)
          && not (Hashtbl.mem t.msi_routes r.Api.gsi)
        then Error Errno.EINVAL
        else (
          match Proc.fd t.owner r.Api.irqfd_fd with
          | Error e -> Error e
          | Ok fd -> (
              match fd.Fd.kind with
              | Fd.Eventfd _ ->
                  Hashtbl.replace t.irqfds r.Api.gsi fd;
                  Ok 0
              | _ -> Error Errno.EINVAL))
  end
  else if code = Api.ioeventfd then begin
    match Api.read_ioeventfd_req t.owner.Proc.aspace ~ptr:arg with
    | exception Invalid_argument _ -> Error Errno.EFAULT
    | r -> (
        match Proc.fd t.owner r.Api.ioev_fd with
        | Error e -> Error e
        | Ok fd ->
            (* flags bit 2 = KVM_IOEVENTFD_FLAG_DEASSIGN *)
            if r.Api.ioev_flags land 4 = 4 then begin
              t.ioeventfds <-
                List.filter
                  (fun (a, _, f) ->
                    not (a = r.Api.ioev_addr && f.Fd.num = fd.Fd.num))
                  t.ioeventfds;
              Ok 0
            end
            else begin
              let dm = if r.Api.ioev_flags land 1 = 1 then Some r.Api.datamatch else None in
              t.ioeventfds <- (r.Api.ioev_addr, dm, fd) :: t.ioeventfds;
              Ok 0
            end)
  end
  else if code = Api.set_ioregion then begin
    match Api.read_ioregion_req t.owner.Proc.aspace ~ptr:arg with
    | exception Invalid_argument _ -> Error Errno.EFAULT
    | r ->
        (* flags bit 0 = detach: unregister the region at this base
           (before its sockets close, so no fd validation here) *)
        if r.Api.region_flags land 1 = 1 then begin
          t.ioregions <-
            List.filter (fun ir -> ir.base <> r.Api.region_gpa) t.ioregions;
          Ok 0
        end
        else (
        match (Proc.fd t.owner r.Api.region_rfd, Proc.fd t.owner r.Api.region_wfd) with
        | Ok rfd, Ok wfd ->
            t.ioregions <-
              { base = r.Api.region_gpa; rlen = r.Api.region_size; rfd; wfd }
              :: t.ioregions;
            Ok 0
        | _ -> Error Errno.EBADF)
  end
  else Error Errno.EINVAL

let create_vm host owner =
  {
    host;
    owner;
    islots = [];
    vcpu_list = [];
    rt = None;
    tasks = Queue.create ();
    parked = [];
    irqfds = Hashtbl.create 8;
    msi_routes = Hashtbl.create 8;
    pending_gsi = [];
    ioeventfds = [];
    eventfd_waiters = [];
    missed_notifies = [];
    ioregions = [];
    ioregion_pumps = [];
    next_pump_id = 0;
    dirty_writes = [];
    current = None;
    gsi_irqfd_supported = true;
  }

let dev_kvm host proc =
  Proc.install_fd proc (fun ~num ->
      Fd.make ~num ~kind:Kvm_dev
        ~ops:
          {
            Fd.default_ops with
            ioctl =
              (fun ~code ~arg:_ ->
                if code = Api.get_vcpu_mmap_size then Ok Api.run_page_size
                else if code = Api.create_vm then begin
                  let vm = create_vm host proc in
                  let fd =
                    Proc.install_fd proc (fun ~num ->
                        Fd.make ~num ~kind:(Kvm_vm vm)
                          ~ops:
                            {
                              Fd.default_ops with
                              ioctl = (fun ~code ~arg -> vm_ioctl vm ~code ~arg);
                            }
                          ~label:"anon_inode:kvm-vm" ())
                  in
                  Ok fd.Fd.num
                end
                else Error Errno.EINVAL);
          }
        ~label:"/dev/kvm" ())

let run_vcpu host proc thread ~vcpu_fd =
  (* fleet interleave point: one KVM_RUN per scheduler slice *)
  Sched.yield ();
  let ret =
    Syscall.call host proc thread ~nr:Syscall.Nr.ioctl
      ~args:[| vcpu_fd.Fd.num; Api.run; 0 |]
  in
  match vcpu_of_fd vcpu_fd with
  | None -> invalid_arg "Vm.run_vcpu: not a vcpu fd"
  | Some vcpu ->
      if ret < 0 then Api.Exit_other ret else Api.read_exit vcpu.run_page
