(** Virtual-time tracing spans, metric histograms, and exporters.

    A tracer [t] records {e spans} (named begin/end pairs with per-span
    deltas of the global event counters), {e instants}, and {e metrics}
    (counters, gauges, log-bucketed histograms) against a caller-
    supplied notion of time — in this repo, the virtual nanosecond clock
    of {!Hostos.Clock}. Recording never advances virtual time, so
    enabling tracing cannot change any simulated result, and two
    identical runs export byte-identical traces.

    The event sink defaults to a no-op: [span t ~name f] is just [f ()]
    until {!enable} installs the bounded ring buffer. Metrics are
    always-on (they are pure observation with zero virtual cost). *)

type value = S of string | I of int | F of float
type attr = string * value

type event =
  | Begin of { name : string; ts : float; attrs : attr list }
  | End of { name : string; ts : float; deltas : (string * int) list }
      (** [deltas] are end-minus-begin values of every global counter,
          i.e. the events (vmexits, ptrace stops, bytes copied, ...)
          attributable to the span, inclusive of children. *)
  | Instant of { name : string; ts : float; attrs : attr list }

(** Counters, gauges, and log-bucketed histograms. Histogram quantiles
    carry a bounded relative error of about half a bucket (~4.5%). *)
module Metrics : sig
  type t
  type counter
  type gauge
  type histogram

  val create : unit -> t

  val counter : t -> string -> counter
  (** Find-or-create by name; registration order is preserved. *)

  val incr : ?by:int -> counter -> unit
  val set_counter : counter -> int -> unit
  val counter_value : counter -> int
  val gauge : t -> string -> gauge
  val set_gauge : gauge -> float -> unit
  val gauge_value : gauge -> float
  val histogram : t -> string -> histogram
  val observe : histogram -> float -> unit
  val count : histogram -> int
  val mean : histogram -> float
  val min_value : histogram -> float
  val max_value : histogram -> float

  val percentile : histogram -> float -> float
  (** [percentile h 99.0] estimates p99 from the log buckets, clamped
      to the observed min/max. *)

  val counter_name : counter -> string
  val gauge_name : gauge -> string
  val histogram_name : histogram -> string
  val counters : t -> counter list
  val gauges : t -> gauge list
  val histograms : t -> histogram list

  val merge_into : into:t -> t -> unit
  (** Fold one registry into another: counters and histogram buckets
      add, gauges take the source's value. Used to aggregate
      per-session fleet metrics into one fleet-wide registry. *)
end

type t

val create :
  now:(unit -> float) -> ?counters:(unit -> (string * int) list) -> unit -> t
(** [create ~now ~counters ()] builds a disabled tracer. [now] reads
    the virtual clock; [counters] reads the global counter vector whose
    deltas annotate each span (the list must keep a stable order). *)

val null : unit -> t
(** A tracer whose clock is stuck at 0; useful as an inert default. *)

val enabled : t -> bool

val enable : ?capacity:int -> t -> unit
(** Install a fresh bounded ring sink (default capacity 65536 events;
    oldest events are overwritten once full and counted in
    {!dropped}). *)

val disable : t -> unit
val now : t -> float
val metrics : t -> Metrics.t

val set_listener : t -> (event -> unit) option -> unit
(** Live event tap (e.g. the CLI's [-v] reporter); called for every
    recorded event, after it is stored. *)

val span : t -> name:string -> ?attrs:attr list -> (unit -> 'a) -> 'a
(** Run [f] inside a named span. With the no-op sink this is exactly
    [f ()]. Spans nest; the [End] event is emitted even if [f]
    raises. *)

val instant : t -> name:string -> ?attrs:attr list -> unit -> unit
val events : t -> event list
val dropped : t -> int
val clear : t -> unit

(** {2 Leveled stderr logging}

    Structured, virtual-time-stamped log lines. The default level is
    {!Quiet}, which emits nothing, so stderr stays byte-identical to a
    build without logging unless a run opts in (e.g. the CLI's
    [--log-level] flag). *)

type level = Quiet | Info | Debug

val set_log_level : t -> level -> unit
val log_level : t -> level
val level_of_string : string -> level option
val level_to_string : level -> string

val log : t -> level -> ('a, unit, string, unit) format4 -> 'a
(** [log t Info "attached %s" name] prints
    ["[vt <virtual-ns>] info  attached <name>"] to stderr when the
    tracer's level admits it; otherwise the format arguments are
    consumed and discarded. *)

module Export : sig
  val chrome_trace : t -> string
  (** Chrome [trace_event] JSON (open in chrome://tracing or Perfetto).
      Timestamps are virtual nanoseconds in the format's microsecond
      field, byte-stable across identical runs. *)

  val metrics_json : t -> string
  (** Flat JSON snapshot: counters, gauges, histogram stats
      (count/mean/min/max/p50/p90/p95/p99/p999). Always valid JSON:
      non-finite stats are clamped to finite numbers. *)

  val num : float -> string
  (** Byte-stable, always-finite JSON number formatting. *)

  val histogram_stats_json : Metrics.histogram -> string
  val pp_event : Format.formatter -> event -> unit
end
