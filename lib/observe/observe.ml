(* Virtual-time tracing spans, metric histograms, and exporters.

   The tracer is deliberately decoupled from the simulation: it is told
   how to read "now" (the virtual clock) and how to read the global
   event counters through closures, so the host OS layer can depend on
   this library without a cycle. Recording never advances virtual time,
   which keeps traces byte-stable across identical runs and keeps the
   simulation's results independent of whether tracing is on. *)

type value = S of string | I of int | F of float
type attr = string * value

type event =
  | Begin of { name : string; ts : float; attrs : attr list }
  | End of { name : string; ts : float; deltas : (string * int) list }
  | Instant of { name : string; ts : float; attrs : attr list }

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  (* Log-bucketed histogram: bucket [i] covers values in
     [growth^i, growth^(i+1)). growth = 2^(1/8) bounds the relative
     quantile error at ~4.5% (half a bucket) while 512 buckets span the
     full range of plausible virtual-ns values (up to 2^64). *)
  let nbuckets = 512
  let log_growth = 0.125 *. Float.log 2.0

  type counter = { c_name : string; mutable c_count : int }
  type gauge = { g_name : string; mutable g_value : float }

  type histogram = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  type t = {
    mutable cs : counter list;
    mutable gs : gauge list;
    mutable hs : histogram list;
  }

  let create () = { cs = []; gs = []; hs = [] }

  (* Find-or-create, preserving registration order for exports. *)
  let counter t name =
    match List.find_opt (fun c -> c.c_name = name) t.cs with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_count = 0 } in
        t.cs <- t.cs @ [ c ];
        c

  let incr ?(by = 1) c = c.c_count <- c.c_count + by
  let set_counter c v = c.c_count <- v
  let counter_value c = c.c_count
  let counter_name c = c.c_name
  let gauge_name g = g.g_name
  let histogram_name h = h.h_name

  let gauge t name =
    match List.find_opt (fun g -> g.g_name = name) t.gs with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_value = 0.0 } in
        t.gs <- t.gs @ [ g ];
        g

  let set_gauge g v = g.g_value <- v
  let gauge_value g = g.g_value

  let histogram t name =
    match List.find_opt (fun h -> h.h_name = name) t.hs with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Array.make nbuckets 0;
          }
        in
        t.hs <- t.hs @ [ h ];
        h

  let bucket_of v =
    if v <= 1.0 then 0
    else min (nbuckets - 1) (int_of_float (Float.log v /. log_growth))

  (* NaN observations are dropped: recording one would poison min/max
     (NaN comparisons are always false, leaving h_min = infinity with a
     nonzero count) and make every later export non-JSON. A failed
     fleet session's attach time is NaN, so this path is reachable. *)
  let observe h v =
    if not (Float.is_nan v) then begin
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let i = bucket_of v in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1
    end

  let count h = h.h_count

  let finite_or v fallback = if Float.is_finite v then v else fallback
  let mean h =
    if h.h_count = 0 then 0.0
    else finite_or (h.h_sum /. float_of_int h.h_count) 0.0
  let min_value h = if h.h_count = 0 then 0.0 else finite_or h.h_min 0.0
  let max_value h = if h.h_count = 0 then 0.0 else finite_or h.h_max 0.0

  (* Quantile estimate: geometric midpoint of the bucket containing the
     target rank, clamped to the observed [min, max]. *)
  let percentile h p =
    if h.h_count = 0 then 0.0
    else begin
      let target =
        max 1
          (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_count)))
      in
      let rec go i cum =
        if i >= nbuckets then h.h_max
        else
          let cum = cum + h.h_buckets.(i) in
          if cum >= target then
            Float.exp ((float_of_int i +. 0.5) *. log_growth)
          else go (i + 1) cum
      in
      finite_or (Float.min h.h_max (Float.max h.h_min (go 0 0))) 0.0
    end

  let counters t = t.cs
  let gauges t = t.gs
  let histograms t = t.hs

  (* Fold [src] into [into]: counters and histogram buckets add,
     gauges take src's value. Used to aggregate per-session fleet
     registries into one fleet-wide view. *)
  let merge_into ~into src =
    List.iter
      (fun c -> incr ~by:c.c_count (counter into c.c_name))
      src.cs;
    List.iter (fun g -> set_gauge (gauge into g.g_name) g.g_value) src.gs;
    List.iter
      (fun h ->
        let d = histogram into h.h_name in
        d.h_count <- d.h_count + h.h_count;
        d.h_sum <- d.h_sum +. h.h_sum;
        if h.h_count > 0 then begin
          if h.h_min < d.h_min then d.h_min <- h.h_min;
          if h.h_max > d.h_max then d.h_max <- h.h_max
        end;
        Array.iteri (fun i n -> d.h_buckets.(i) <- d.h_buckets.(i) + n)
          h.h_buckets)
      src.hs
end

(* ------------------------------------------------------------------ *)
(* The tracer                                                           *)
(* ------------------------------------------------------------------ *)

type ring = {
  cap : int;
  buf : event array;
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
}

type sink = Noop | Ring of ring

type level = Quiet | Info | Debug

type t = {
  now : unit -> float;
  read_counters : unit -> (string * int) list;
  mutable sink : sink;
  mutable listener : (event -> unit) option;
  mutable log_level : level;
  mx : Metrics.t;
}

let default_capacity = 65536

let create ~now ?(counters = fun () -> []) () =
  { now; read_counters = counters; sink = Noop; listener = None;
    log_level = Quiet; mx = Metrics.create () }

let null () = create ~now:(fun () -> 0.0) ()
let now t = t.now ()
let metrics t = t.mx
let enabled t = match t.sink with Noop -> false | Ring _ -> true

let enable ?(capacity = default_capacity) t =
  let dummy = Instant { name = ""; ts = 0.0; attrs = [] } in
  t.sink <-
    Ring { cap = capacity; buf = Array.make capacity dummy; start = 0;
           len = 0; dropped = 0 }

let disable t = t.sink <- Noop
let set_listener t f = t.listener <- f

let emit t e =
  (match t.sink with
  | Noop -> ()
  | Ring r ->
      if r.len < r.cap then begin
        r.buf.((r.start + r.len) mod r.cap) <- e;
        r.len <- r.len + 1
      end
      else begin
        r.buf.(r.start) <- e;
        r.start <- (r.start + 1) mod r.cap;
        r.dropped <- r.dropped + 1
      end);
  match t.listener with Some f -> f e | None -> ()

let events t =
  match t.sink with
  | Noop -> []
  | Ring r -> List.init r.len (fun i -> r.buf.((r.start + i) mod r.cap))

let dropped t = match t.sink with Noop -> 0 | Ring r -> r.dropped

let clear t =
  match t.sink with
  | Noop -> ()
  | Ring r ->
      r.start <- 0;
      r.len <- 0;
      r.dropped <- 0

let instant t ~name ?(attrs = []) () =
  match (t.sink, t.listener) with
  | Noop, None -> ()
  | _ -> emit t (Instant { name; ts = t.now (); attrs })

(* ------------------------------------------------------------------ *)
(* Leveled stderr logging                                               *)
(* ------------------------------------------------------------------ *)

(* Structured, virtual-time-stamped log lines on stderr. The default
   level is Quiet, so runs that never opt in stay byte-identical to a
   build without logging at all. *)

let set_log_level t l = t.log_level <- l
let log_level t = t.log_level

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let level_to_string = function
  | Quiet -> "quiet"
  | Info -> "info"
  | Debug -> "debug"

let log_enabled t l =
  match (t.log_level, l) with
  | Quiet, _ -> false
  | Info, Info -> true
  | Info, Debug -> false
  | Debug, (Info | Debug) -> true
  | _, Quiet -> false

let log t l fmt =
  if log_enabled t l then
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "[vt %12.0f] %-5s %s\n%!" (t.now ())
          (level_to_string l) msg)
      fmt
  else Printf.ksprintf (fun _ -> ()) fmt

let span t ~name ?(attrs = []) f =
  match t.sink with
  | Noop -> f ()
  | Ring _ ->
      let before = t.read_counters () in
      emit t (Begin { name; ts = t.now (); attrs });
      let finish () =
        let deltas =
          List.map2 (fun (k, v0) (_, v1) -> (k, v1 - v0)) before
            (t.read_counters ())
        in
        emit t (End { name; ts = t.now (); deltas })
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

module Export = struct
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 32 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Fixed-precision float formatting keeps exports byte-stable.
     Non-finite values are clamped to valid JSON numbers so an exporter
     can never emit "inf"/"nan" and fail a run. *)
  let num f =
    if Float.is_nan f then "0"
    else if f = infinity then "1e308"
    else if f = neg_infinity then "-1e308"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.3f" f

  let value_json = function
    | S s -> "\"" ^ escape s ^ "\""
    | I i -> string_of_int i
    | F f -> num f

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ v) fields) ^ "}"

  let attrs_json attrs = obj (List.map (fun (k, v) -> (k, value_json v)) attrs)

  let deltas_json ds = obj (List.map (fun (k, v) -> (k, string_of_int v)) ds)

  (* Chrome trace_event JSON array format; timestamps are virtual
     nanoseconds expressed in the format's microsecond unit, so Perfetto
     and chrome://tracing render spans on the virtual timeline. *)
  let chrome_trace t =
    let us ns = num (ns /. 1000.0) in
    let common = "\"cat\":\"vmsh\",\"pid\":1,\"tid\":1" in
    let event_json = function
      | Begin { name; ts; attrs } ->
          Printf.sprintf "{\"name\":\"%s\",\"ph\":\"B\",%s,\"ts\":%s,\"args\":%s}"
            (escape name) common (us ts) (attrs_json attrs)
      | End { name; ts; deltas } ->
          Printf.sprintf "{\"name\":\"%s\",\"ph\":\"E\",%s,\"ts\":%s,\"args\":%s}"
            (escape name) common (us ts) (deltas_json deltas)
      | Instant { name; ts; attrs } ->
          Printf.sprintf
            "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",%s,\"ts\":%s,\"args\":%s}"
            (escape name) common (us ts) (attrs_json attrs)
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (event_json e))
      (events t);
    Buffer.add_string b
      (Printf.sprintf
         "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"virtual-ns\",\"dropped\":%d}}"
         (dropped t));
    Buffer.contents b

  let histogram_stats_json h =
    obj
      [
        ("count", string_of_int (Metrics.count h));
        ("mean", num (Metrics.mean h));
        ("min", num (Metrics.min_value h));
        ("max", num (Metrics.max_value h));
        ("p50", num (Metrics.percentile h 50.0));
        ("p90", num (Metrics.percentile h 90.0));
        ("p95", num (Metrics.percentile h 95.0));
        ("p99", num (Metrics.percentile h 99.0));
        ("p999", num (Metrics.percentile h 99.9));
      ]

  let metrics_json t =
    let m = t.mx in
    obj
      [
        ( "counters",
          obj
            (List.map
               (fun c -> (c.Metrics.c_name, string_of_int c.Metrics.c_count))
               (Metrics.counters m)) );
        ( "gauges",
          obj
            (List.map
               (fun g -> (g.Metrics.g_name, num g.Metrics.g_value))
               (Metrics.gauges m)) );
        ( "histograms",
          obj
            (List.map
               (fun h -> (h.Metrics.h_name, histogram_stats_json h))
               (Metrics.histograms m)) );
      ]

  let pp_value ppf = function
    | S s -> Format.pp_print_string ppf s
    | I i -> Format.pp_print_int ppf i
    | F f -> Format.fprintf ppf "%.1f" f

  let pp_attrs ppf attrs =
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) attrs

  let pp_event ppf = function
    | Begin { name; ts; attrs } ->
        Format.fprintf ppf "[%12.1f] >> %s%a" ts name pp_attrs attrs
    | End { name; ts; deltas } ->
        let nz = List.filter (fun (_, v) -> v <> 0) deltas in
        Format.fprintf ppf "[%12.1f] << %s%a" ts name pp_attrs
          (List.map (fun (k, v) -> (k, I v)) nz)
    | Instant { name; ts; attrs } ->
        Format.fprintf ppf "[%12.1f]  . %s%a" ts name pp_attrs attrs
end
