(* A minimal guest network stack over the side-loaded virtio-net NIC.

   One simplified transport header serves both protocols (a UDP-style
   datagram and a stop-and-wait TCP-lite), carried in an Ethernet frame
   with the IPv4 ethertype. Address resolution is learned, ARP-free:
   the first packet to an unknown IP goes out as broadcast, and every
   received packet teaches us the sender's MAC — which also teaches the
   switch on the path our own port. The [Packet] codec is pure so the
   host-side traffic servers (lib/workloads) speak the same wire
   format without a driver. *)

module Frame = Net.Frame

module Packet = struct
  let proto_udp = 17
  let proto_tcp = 6

  (* data = payload; ACK and data packets share the layout, [flag]
     distinguishes them for TCP-lite. *)
  type t = {
    src_ip : int;
    dst_ip : int;
    proto : int;
    src_port : int;
    dst_port : int;
    seq : int;  (** TCP-lite sequence number; 0 for UDP *)
    flag : int;  (** 0 = data, 1 = ack; 0 for UDP *)
    data : bytes;
  }

  let flag_data = 0
  let flag_ack = 1
  let header_size = 18

  let udp ~src_ip ~dst_ip ~src_port ~dst_port data =
    { src_ip; dst_ip; proto = proto_udp; src_port; dst_port; seq = 0;
      flag = flag_data; data }

  let ip_to_string ip =
    Printf.sprintf "%d.%d.%d.%d" ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff)
      ((ip lsr 8) land 0xff) (ip land 0xff)

  let make_ip a b c d =
    ((a land 0xff) lsl 24) lor ((b land 0xff) lsl 16)
    lor ((c land 0xff) lsl 8) lor (d land 0xff)

  let encode p =
    let n = Bytes.length p.data in
    let b = Bytes.create (header_size + n) in
    Bytes.set_int32_be b 0 (Int32.of_int p.src_ip);
    Bytes.set_int32_be b 4 (Int32.of_int p.dst_ip);
    Bytes.set_uint8 b 8 p.proto;
    Bytes.set_uint16_be b 9 p.src_port;
    Bytes.set_uint16_be b 11 p.dst_port;
    Bytes.set_int32_be b 13 (Int32.of_int p.seq);
    Bytes.set_uint8 b 17 p.flag;
    Bytes.blit p.data 0 b header_size n;
    b

  let decode b =
    if Bytes.length b < header_size then None
    else
      Some
        {
          src_ip = Int32.to_int (Bytes.get_int32_be b 0) land 0xffffffff;
          dst_ip = Int32.to_int (Bytes.get_int32_be b 4) land 0xffffffff;
          proto = Bytes.get_uint8 b 8;
          src_port = Bytes.get_uint16_be b 9;
          dst_port = Bytes.get_uint16_be b 11;
          seq = Int32.to_int (Bytes.get_int32_be b 13) land 0xffffffff;
          flag = Bytes.get_uint8 b 17;
          data = Bytes.sub b header_size (Bytes.length b - header_size);
        }

  let max_data = Frame.max_payload - header_size
end

type datagram = { from_ip : int; from_port : int; payload : bytes }

type t = {
  nic : Virtio.Net.Driver.t;
  ip : int;
  mac : int;
  neighbours : (int, int) Hashtbl.t;  (** learned ip -> mac *)
  socks : (int, datagram Stdlib.Queue.t) Hashtbl.t;  (** by local port *)
  obs : Observe.t option;
}

let create ?observe nic ~ip =
  {
    nic;
    ip;
    mac = Virtio.Net.Driver.mac nic;
    neighbours = Hashtbl.create 16;
    socks = Hashtbl.create 16;
    obs = observe;
  }

let ip t = t.ip
let mac t = t.mac

let count t name =
  match t.obs with
  | None -> ()
  | Some obs ->
      Observe.Metrics.incr
        (Observe.Metrics.counter (Observe.metrics obs) name)

let deliver t (frame : Frame.t) =
  match Packet.decode frame.Frame.payload with
  | None -> count t "netstack.malformed"
  | Some p -> (
      Hashtbl.replace t.neighbours p.Packet.src_ip frame.Frame.src;
      if p.Packet.dst_ip <> t.ip && frame.Frame.dst <> Frame.broadcast then
        count t "netstack.not_ours"
      else
        match Hashtbl.find_opt t.socks p.Packet.dst_port with
        | None -> count t "netstack.port_unreachable"
        | Some q ->
            Stdlib.Queue.add
              {
                from_ip = p.Packet.src_ip;
                from_port = p.Packet.src_port;
                payload = frame.Frame.payload;
              }
              q)

(* Drain the NIC into the per-port queues. Guest context only. *)
let poll t =
  let rec go () =
    match Virtio.Net.Driver.try_recv t.nic with
    | None -> ()
    | Some raw ->
        (match Frame.decode raw with
        | None -> count t "netstack.runt"
        | Some f -> deliver t f);
        go ()
  in
  go ()

let bind t ~port =
  if Hashtbl.mem t.socks port then Error Hostos.Errno.EBUSY
  else begin
    Hashtbl.replace t.socks port (Stdlib.Queue.create ());
    Ok ()
  end

let close t ~port = Hashtbl.remove t.socks port

let send_packet t p =
  let dst_mac =
    match Hashtbl.find_opt t.neighbours p.Packet.dst_ip with
    | Some m -> m
    | None -> Frame.broadcast (* resolution by flooding; replies teach us *)
  in
  Virtio.Net.Driver.send t.nic
    (Frame.encode
       {
         Frame.src = t.mac;
         dst = dst_mac;
         ethertype = Frame.eth_ipv4;
         payload = Packet.encode p;
       });
  (* the fabric ran inside the kick: pull in whatever came back *)
  poll t

let udp_send t ~src_port ~dst_ip ~dst_port data =
  send_packet t
    (Packet.udp ~src_ip:t.ip ~dst_ip ~src_port ~dst_port data)

let sock_exn t port =
  match Hashtbl.find_opt t.socks port with
  | Some q -> q
  | None -> invalid_arg "Netstack: port not bound"

let udp_try_recv t ~port =
  poll t;
  match Stdlib.Queue.take_opt (sock_exn t port) with
  | None -> None
  | Some d -> (
      match Packet.decode d.payload with
      | Some p -> Some (d.from_ip, d.from_port, p.Packet.data)
      | None -> None)

(* Blocking receive: parks the vCPU until a datagram lands on [port]. *)
let udp_recv t ~port =
  let q = sock_exn t port in
  let rec await () =
    match udp_try_recv t ~port with
    | Some r -> r
    | None ->
        Effect.perform
          (Kvm.Vm.Yield_until
             (fun () ->
               (not (Stdlib.Queue.is_empty q))
               || Virtio.Net.Driver.rx_ready t.nic));
        await ()
  in
  await ()

(* --- TCP-lite: stop-and-wait reliability over the same packets ---

   One outstanding segment; the peer acks each sequence number. Because
   the fabric is synchronous (delivery happens inside the transmit
   kick), a missing ack after [send_packet] returns deterministically
   means a loss on the path — so retransmission needs no timers, just a
   bounded retry loop. *)

type stream = {
  st : t;
  peer_ip : int;
  peer_port : int;
  local_port : int;
  mutable tx_seq : int;
  mutable rx_seq : int;  (** next sequence number expected from peer *)
}

let max_retries = 32

let tcp_connect t ~local_port ~peer_ip ~peer_port =
  match bind t ~port:local_port with
  | Error e -> Error e
  | Ok () ->
      Ok { st = t; peer_ip; peer_port; local_port; tx_seq = 1; rx_seq = 1 }

let stream_packet s ~seq ~flag data =
  {
    Packet.src_ip = s.st.ip;
    dst_ip = s.peer_ip;
    proto = Packet.proto_tcp;
    src_port = s.local_port;
    dst_port = s.peer_port;
    seq;
    flag;
    data;
  }

(* Scan the stream's queue for an ack of [seq]; requeue data packets
   (they may arrive interleaved with the ack). *)
let take_ack s ~seq =
  let q = sock_exn s.st s.local_port in
  let n = Stdlib.Queue.length q in
  let found = ref false in
  for _ = 1 to n do
    let d = Stdlib.Queue.pop q in
    match Packet.decode d.payload with
    | Some p when p.Packet.flag = Packet.flag_ack && p.Packet.seq = seq ->
        found := true
    | _ -> Stdlib.Queue.add d q
  done;
  !found

let tcp_send s data =
  if Bytes.length data > Packet.max_data then
    invalid_arg "Netstack.tcp_send: segment too large";
  let seq = s.tx_seq in
  let rec attempt n =
    if n > max_retries then Error Hostos.Errno.EIO
    else begin
      if n > 1 then count s.st "netstack.retransmits";
      send_packet s.st (stream_packet s ~seq ~flag:Packet.flag_data data);
      if take_ack s ~seq then begin
        s.tx_seq <- seq + 1;
        Ok ()
      end
      else attempt (n + 1)
    end
  in
  attempt 1

(* One request/response exchange: send a segment, await the peer's
   data reply with the same sequence number. A reply-capable peer
   re-echoes on duplicate requests, so a lost reply (or lost request)
   is recovered by retransmitting the request — the response doubles as
   the ack. *)
let tcp_request s data =
  let seq = s.tx_seq in
  let q = sock_exn s.st s.local_port in
  (* scan the queue for the peer's data segment for [seq]; drop acks of
     [seq] and stale duplicates along the way *)
  let take_response () =
    let n = Stdlib.Queue.length q in
    let found = ref None in
    for _ = 1 to n do
      let d = Stdlib.Queue.pop q in
      match Packet.decode d.payload with
      | Some p when p.Packet.flag = Packet.flag_ack -> ()
      | Some p when p.Packet.flag = Packet.flag_data && p.Packet.seq = seq ->
          found := Some p.Packet.data
      | Some p when p.Packet.flag = Packet.flag_data && p.Packet.seq < seq ->
          () (* stale duplicate of an answered request *)
      | _ -> Stdlib.Queue.add d q
    done;
    !found
  in
  let rec attempt n =
    if n > max_retries then Error Hostos.Errno.EIO
    else begin
      if n > 1 then count s.st "netstack.retransmits";
      send_packet s.st (stream_packet s ~seq ~flag:Packet.flag_data data);
      match take_response () with
      | Some reply ->
          s.tx_seq <- seq + 1;
          Ok reply
      | None -> attempt (n + 1)
    end
  in
  attempt 1

(* Receive the next in-order segment, acking it (and re-acking
   duplicates of already-received segments, whose acks were lost). *)
let tcp_recv s =
  let q = sock_exn s.st s.local_port in
  let ack seq =
    send_packet s.st (stream_packet s ~seq ~flag:Packet.flag_ack Bytes.empty)
  in
  let rec scan () =
    match Stdlib.Queue.take_opt q with
    | None ->
        Effect.perform
          (Kvm.Vm.Yield_until
             (fun () ->
               (not (Stdlib.Queue.is_empty q))
               || Virtio.Net.Driver.rx_ready s.st.nic));
        poll s.st;
        scan ()
    | Some d -> (
        match Packet.decode d.payload with
        | Some p when p.Packet.flag = Packet.flag_data ->
            if p.Packet.seq = s.rx_seq then begin
              s.rx_seq <- s.rx_seq + 1;
              ack p.Packet.seq;
              p.Packet.data
            end
            else if p.Packet.seq < s.rx_seq then begin
              (* duplicate: our ack was lost — ack again, keep waiting *)
              count s.st "netstack.dup_segments";
              ack p.Packet.seq;
              scan ()
            end
            else scan () (* out of window; stop-and-wait never does this *)
        | _ -> scan ())
  in
  scan ()
