module Mem = Hostos.Mem
module Clock = Hostos.Clock
module Rng = Hostos.Rng
module Errno = Hostos.Errno
module Layout = X86.Layout
module PT = X86.Page_table
module Vm = Kvm.Vm
module Sfs = Blockdev.Simplefs

let src = Logs.Src.create "guest" ~doc:"synthetic guest kernel"

module Log = (val Logs.src_log src : Logs.LOG)

(* Fixed physical layout (guest-physical addresses). *)
let pt_arena_start = 0x10_0000
let pt_arena_pages = 768
let kernel_phys = 0x40_0000
let image_pad = 0x20_0000

(* Fixed offsets inside the kernel image. The analyzer never learns
   these; it must rediscover the sections by scanning. *)
let buildid_off = 0x200
let idle_off = 0x800
let kfun_base_off = 0x1000
let kfun_stride = 0x40
let text_size = 0x10_0000
let banner_off = 0x10_0100
let strings_off = 0x11_0000
let table_off = 0x12_0000
let image_size = 0x14_0000

let o_creat = 0x40
let o_wronly = 0x1

type kfile = { kpath : string; mutable kpos : int }

type t = {
  vmh : Vm.t;
  ver : Kernel_version.t;
  rng : Rng.t;
  clock : Clock.t;
  ram_size : int;
  pt_root : int;
  mutable pt_next : int;
  mutable phys_brk : int;
  kvirt : int;
  mutable exports_list : (string * int) list;
  kfun_tbl : (int, string * (args:int list -> int)) Hashtbl.t;
  idle : int;
  vfs_t : Vfs.t;
  root_ns_id : int;
  cache : Page_cache.t;
  mutable proc_list : Gproc.t list;
  mutable next_gpid : int;
  mutable dmesg_rev : string list;
  mutable crash : string option;
  mutable klib_running : bool;
  mutable boot_blk_drv : Virtio.Blk.Driver.t option;
  mutable boot_ninep_drv : Virtio.Ninep.Driver.t option;
  mutable boot_rootfs : Sfs.t option;
  mutable vmsh_blk_drv : Virtio.Blk.Driver.t option;
  mutable vmsh_console_drv : Virtio.Console.Driver.t option;
  mutable vmsh_net_drv : Virtio.Net.Driver.t option;
  mutable vmsh_ninep_drv : Virtio.Ninep.Driver.t option;
  programs : (string, t -> Gproc.t -> unit) Hashtbl.t;
  kfiles : (int, kfile) Hashtbl.t;
  mutable next_kfd : int;
  mutable pending_threads : (int * int * int) list;
      (** (handle, kind, arg) created but not woken *)
  mutable kimage : bytes;
      (** the encoded kernel image (shared, not copied, when booted
          from a baseline's prebuilt image) *)
}

let vm t = t.vmh

(* The guest structures the attach scanner reads (ksymtab strings and
   table) — ground truth a hostile guest running inside this kernel
   would know and mutate to race the scan. *)
let scanner_target_regions t =
  [
    (kernel_phys + strings_off, t.kvirt + strings_off, table_off - strings_off);
    (kernel_phys + table_off, t.kvirt + table_off, image_size - table_off);
  ]
let kernel_image t = t.kimage
let observe_of t = (Vm.host t.vmh).Hostos.Host.observe
let version t = t.ver
let kernel_virt t = t.kvirt
let image_bytes _t = image_size
let idle_rip t = t.idle
let page_cache t = t.cache
let crashed t = t.crash
let dmesg t = List.rev t.dmesg_rev
let printk t s = t.dmesg_rev <- s :: t.dmesg_rev
let vfs t = t.vfs_t
let root_ns t = t.root_ns_id
let rootfs t = t.boot_rootfs
let procs t = t.proc_list
let find_proc t ~gpid = List.find_opt (fun p -> p.Gproc.gpid = gpid) t.proc_list
let exports t = t.exports_list
let boot_blk t = t.boot_blk_drv

let boot_blk_exn t =
  match t.boot_blk_drv with
  | Some d -> d
  | None -> invalid_arg "Guest.boot_blk_exn: no boot block device"

let boot_ninep t = t.boot_ninep_drv
let vmsh_blk t = t.vmsh_blk_drv
let vmsh_console t = t.vmsh_console_drv
let vmsh_net t = t.vmsh_net_drv
let vmsh_ninep t = t.vmsh_ninep_drv

let init_proc t =
  match t.proc_list with
  | p :: _ -> p
  | [] -> invalid_arg "Guest.init_proc: no processes"

(* --- memory services --- *)

let alloc_pages t ~count =
  let pa = t.phys_brk in
  t.phys_brk <- pa + (count * Layout.page_size);
  if t.phys_brk > t.ram_size then failwith "guest: out of physical memory";
  pa

let pt_alloc t () =
  let pa = t.pt_next in
  t.pt_next <- pa + Layout.page_size;
  if t.pt_next > pt_arena_start + (pt_arena_pages * Layout.page_size) then
    failwith "guest: page-table arena exhausted";
  pa

let cr3 t =
  match Vm.vcpus t.vmh with
  | v :: _ -> (Vm.vcpu_regs v).X86.Regs.cr3
  | [] -> t.pt_root

let translate t va = PT.translate (Vm.pt_access t.vmh) ~root:(cr3 t) va

let vread t ~va ~len =
  let out = Bytes.create len in
  let rec go va dst remaining =
    if remaining > 0 then begin
      let page_rem = Layout.page_size - (va land (Layout.page_size - 1)) in
      let chunk = min remaining page_rem in
      match translate t va with
      | None -> failwith (Printf.sprintf "guest vread: 0x%x unmapped" va)
      | Some pa ->
          Bytes.blit (Vm.read_phys t.vmh pa chunk) 0 out dst chunk;
          go (va + chunk) (dst + chunk) (remaining - chunk)
    end
  in
  go va 0 len;
  out

let vwrite t ~va b =
  let rec go va src remaining =
    if remaining > 0 then begin
      let page_rem = Layout.page_size - (va land (Layout.page_size - 1)) in
      let chunk = min remaining page_rem in
      match translate t va with
      | None -> failwith (Printf.sprintf "guest vwrite: 0x%x unmapped" va)
      | Some pa ->
          Vm.write_phys t.vmh pa (Bytes.sub b src chunk);
          go (va + chunk) (src + chunk) (remaining - chunk)
    end
  in
  go va 0 (Bytes.length b)

let vread_cstr t ~va ~max =
  let rec scan acc va remaining =
    if remaining = 0 then String.concat "" (List.rev acc)
    else
      let b = vread t ~va ~len:1 in
      if Bytes.get b 0 = '\000' then String.concat "" (List.rev acc)
      else scan (Bytes.to_string b :: acc) (va + 1) (remaining - 1)
  in
  scan [] va max

(* --- processes --- *)

let spawn_proc t ~name ?(uid = 0) ?mnt_ns ?(cgroup = "/") ?caps ?apparmor () =
  let gpid = t.next_gpid in
  t.next_gpid <- gpid + 1;
  let p =
    Gproc.make ~gpid ~name ~uid
      ~mnt_ns:(Option.value mnt_ns ~default:t.root_ns_id)
      ~cgroup ?caps ?apparmor ()
  in
  t.proc_list <- t.proc_list @ [ p ];
  p

let file_read t ~ns path = Vfs.read_file t.vfs_t ~ns path
let file_write t ~ns path data = Vfs.write_file t.vfs_t ~ns path data

let run_as t ~proc ~name thunk =
  Vm.enqueue_task t.vmh ~name:(Printf.sprintf "%s(pid %d)" name proc.Gproc.gpid)
    thunk

let spawn_container t ~name ~image =
  let ns = Vfs.new_namespace t.vfs_t ~from:t.root_ns_id in
  (* the container sees its image files through an overlay dir in its
     own namespace; we approximate by writing them into the root fs
     under a container-private prefix and binding that as the ns root *)
  (match t.boot_rootfs with
  | Some fs ->
      List.iter
        (fun (path, content) ->
          let cpath = "/containers/" ^ name ^ path in
          let rec ensure prefix = function
            | [] | [ _ ] -> ()
            | d :: rest ->
                let dir = prefix ^ "/" ^ d in
                (match Sfs.mkdir fs dir with Ok _ | Error _ -> ());
                ensure dir rest
          in
          ensure "" (String.split_on_char '/' cpath |> List.filter (( <> ) ""));
          ignore (Sfs.write_file fs cpath (Bytes.of_string content)))
        image
  | None -> ());
  spawn_proc t ~name ~uid:0 ~mnt_ns:ns
    ~cgroup:(Printf.sprintf "/sys/fs/cgroup/system.slice/docker-%s.scope" name)
    ~caps:Gproc.container_caps
    ~apparmor:("docker-default-" ^ name) ()

let global_programs : (string, t -> Gproc.t -> unit) Hashtbl.t =
  Hashtbl.create 8

let register_global_program ~content closure =
  Hashtbl.replace global_programs (Digest.bytes content |> Digest.to_hex) closure

let register_program t ~content closure =
  Hashtbl.replace t.programs (Digest.bytes content |> Digest.to_hex) closure

(* --- struct codecs (shared with the library builder) --- *)

let encode_virtio_desc ~version_tag ~device_type ~mmio_base ~gsi =
  let len = if version_tag >= 2 then 24 else 16 in
  let b = Bytes.make len '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int version_tag);
  Bytes.set_int32_le b 4 (Int32.of_int device_type);
  Bytes.set_int64_le b 8 (Int64.of_int mmio_base);
  if version_tag >= 2 then begin
    Bytes.set_int32_le b 16 (Int32.of_int gsi);
    Bytes.set_int32_le b 20 0l
  end;
  b

let encode_thread_struct ~version_tag ~kind ~arg =
  let len = if version_tag >= 2 then 24 else 16 in
  let b = Bytes.make len '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int version_tag);
  Bytes.set_int32_le b 4 (Int32.of_int kind);
  Bytes.set_int64_le b 8 (Int64.of_int arg);
  b

(* --- virtio driver probing (guest code; performs effects) --- *)

let mmio_access base =
  {
    Virtio.Mmio.mread =
      (fun ~off ~len ->
        Effect.perform (Vm.Mmio (Vm.Mmio_read { addr = base + off; len })));
    mwrite =
      (fun ~off b ->
        ignore
          (Effect.perform (Vm.Mmio (Vm.Mmio_write { addr = base + off; data = b }))));
  }

let probe_device t ~base ~expect ~init =
  let access = mmio_access base in
  let magic =
    let b = access.Virtio.Mmio.mread ~off:Virtio.Mmio.reg_magic ~len:4 in
    Int32.to_int (Bytes.get_int32_le b 0) land 0xffffffff
  in
  if magic <> Virtio.Mmio.magic_value then Error "no device"
  else
    init ~gmem:(Virtio.Gmem.of_vm t.vmh) ~access
      ~alloc:(fun ~size ->
        alloc_pages t ~count:((size + Layout.page_size - 1) / Layout.page_size))
  |> fun r ->
  ignore expect;
  r

(* --- kernel function implementations --- *)

let neg_errno e = -Errno.to_code e

(* Shared by the MMIO and PCI register kfuns: probe [base] as
   [device_type], stash the driver and attach its metrics. [via] only
   colours the printk lines. *)
let register_device_at t ~device_type ~base ~via =
  let registered what =
    printk t (Printf.sprintf "%s: virtio%s device registered" what via);
    0
  in
  let failed what e =
    printk t (Printf.sprintf "%s: probe failed: %s" what e);
    neg_errno Errno.ENODEV
  in
  if device_type = Virtio.Blk.device_id then
    match probe_device t ~base ~expect:device_type ~init:Virtio.Blk.Driver.init with
    | Ok drv ->
        Virtio.Blk.Driver.set_observe drv (observe_of t) ~name:"vmsh-blk";
        t.vmsh_blk_drv <- Some drv;
        registered "vmsh-blk"
    | Error e -> failed "vmsh-blk" e
  else if device_type = Virtio.Console.device_id then
    match
      probe_device t ~base ~expect:device_type ~init:Virtio.Console.Driver.init
    with
    | Ok drv ->
        Virtio.Console.Driver.set_observe drv (observe_of t)
          ~name:"vmsh-console";
        t.vmsh_console_drv <- Some drv;
        registered "vmsh-console"
    | Error e -> failed "vmsh-console" e
  else if device_type = Virtio.Net.device_id then
    match probe_device t ~base ~expect:device_type ~init:Virtio.Net.Driver.init with
    | Ok drv ->
        Virtio.Net.Driver.set_observe drv (observe_of t) ~name:"vmsh-net";
        t.vmsh_net_drv <- Some drv;
        registered "vmsh-net"
    | Error e -> failed "vmsh-net" e
  else if device_type = Virtio.Ninep.device_id then
    match
      probe_device t ~base ~expect:device_type ~init:Virtio.Ninep.Driver.init
    with
    | Ok drv ->
        Virtio.Ninep.Driver.set_observe drv (observe_of t) ~name:"vmsh-9p";
        t.vmsh_ninep_drv <- Some drv;
        registered "vmsh-9p"
    | Error e -> failed "vmsh-9p" e
  else neg_errno Errno.ENODEV

let install_kfuns t =
  let reg name impl va = Hashtbl.replace t.kfun_tbl va (name, impl) in
  let badv = ref 0 in
  ignore badv;
  let funs : (string * (args:int list -> int)) list =
    [
      ( "printk",
        fun ~args ->
          match args with
          | [ str_va ] ->
              (try printk t (vread_cstr t ~va:str_va ~max:256) with _ -> ());
              0
          | _ -> neg_errno Errno.EINVAL );
      ( "register_virtio_mmio_dev",
        fun ~args ->
          match args with
          | [ desc_va ] -> (
              try
                let tag =
                  Int32.to_int (Bytes.get_int32_le (vread t ~va:desc_va ~len:4) 0)
                in
                let expected = Kernel_version.virtio_desc_version t.ver in
                if tag <> expected then begin
                  printk t
                    (Printf.sprintf
                       "virtio_mmio: bad device descriptor version %d (kernel \
                        expects %d)"
                       tag expected);
                  neg_errno Errno.EINVAL
                end
                else begin
                  let hdr = vread t ~va:desc_va ~len:16 in
                  let device_type =
                    Int32.to_int (Bytes.get_int32_le hdr 4) land 0xffffffff
                  in
                  let mmio_base = Int64.to_int (Bytes.get_int64_le hdr 8) in
                  register_device_at t ~device_type ~base:mmio_base ~via:""
                end
              with Failure msg ->
                printk t ("virtio_mmio: fault reading descriptor: " ^ msg);
                neg_errno Errno.EFAULT)
          | _ -> neg_errno Errno.EINVAL );
      ( "register_virtio_pci_dev",
        fun ~args ->
          match args with
          | [ desc_va ] -> (
              try
                let tag =
                  Int32.to_int (Bytes.get_int32_le (vread t ~va:desc_va ~len:4) 0)
                in
                let expected = Kernel_version.virtio_desc_version t.ver in
                if tag <> expected then begin
                  printk t
                    (Printf.sprintf
                       "virtio_pci: bad device descriptor version %d (kernel \
                        expects %d)"
                       tag expected);
                  neg_errno Errno.EINVAL
                end
                else begin
                  let hdr = vread t ~va:desc_va ~len:16 in
                  let cfg_base = Int64.to_int (Bytes.get_int64_le hdr 8) in
                  (* walk the PCI config space of the device *)
                  let cfg_read ~off ~len =
                    Effect.perform
                      (Vm.Mmio (Vm.Mmio_read { addr = cfg_base + off; len }))
                  in
                  match Virtio.Pci.Config.probe ~read:cfg_read with
                  | None ->
                      printk t "virtio_pci: no virtio device in config space";
                      neg_errno Errno.ENODEV
                  | Some cfg ->
                      register_device_at t
                        ~device_type:cfg.Virtio.Pci.Config.device_type
                        ~base:cfg.Virtio.Pci.Config.bar0 ~via:"-pci (MSI-X)"
                end
              with Failure msg ->
                printk t ("virtio_pci: fault reading descriptor: " ^ msg);
                neg_errno Errno.EFAULT)
          | _ -> neg_errno Errno.EINVAL );
      ( "unregister_virtio_mmio_dev",
        fun ~args ->
          match args with
          | [ device_type ] ->
              if device_type = Virtio.Blk.device_id then t.vmsh_blk_drv <- None
              else if device_type = Virtio.Console.device_id then
                t.vmsh_console_drv <- None
              else if device_type = Virtio.Net.device_id then
                t.vmsh_net_drv <- None
              else if device_type = Virtio.Ninep.device_id then
                t.vmsh_ninep_drv <- None;
              0
          | _ -> neg_errno Errno.EINVAL );
      ( "filp_open",
        fun ~args ->
          match args with
          | [ path_va; flags; _mode ] -> (
              match
                (try Some (vread_cstr t ~va:path_va ~max:256) with _ -> None)
              with
              | None -> neg_errno Errno.EFAULT
              | Some path ->
                  let exists = Vfs.exists t.vfs_t ~ns:t.root_ns_id path in
                  if (not exists) && flags land o_creat = 0 then
                    neg_errno Errno.ENOENT
                  else begin
                    (if not exists then
                       match Vfs.write_file t.vfs_t ~ns:t.root_ns_id path Bytes.empty with
                       | Ok () -> ()
                       | Error _ -> ());
                    let fd = t.next_kfd in
                    t.next_kfd <- fd + 1;
                    Hashtbl.replace t.kfiles fd { kpath = path; kpos = 0 };
                    fd
                  end)
          | _ -> neg_errno Errno.EINVAL );
      ( "filp_close",
        fun ~args ->
          match args with
          | [ fd ] ->
              if Hashtbl.mem t.kfiles fd then begin
                Hashtbl.remove t.kfiles fd;
                0
              end
              else neg_errno Errno.EBADF
          | _ -> neg_errno Errno.EINVAL );
      ( "kernel_read",
        fun ~args ->
          let do_read ~fd ~buf_va ~count ~pos =
            match Hashtbl.find_opt t.kfiles fd with
            | None -> neg_errno Errno.EBADF
            | Some f -> (
                match
                  Vfs.read_at t.vfs_t ~ns:t.root_ns_id f.kpath ~off:pos ~len:count
                with
                | Error e -> neg_errno e
                | Ok data -> (
                    try
                      vwrite t ~va:buf_va data;
                      f.kpos <- pos + Bytes.length data;
                      Bytes.length data
                    with Failure _ -> neg_errno Errno.EFAULT))
          in
          match (Kernel_version.rw_abi t.ver, args) with
          | Kernel_version.Rw_old, [ fd; pos; buf_va; count ] ->
              if count < 0 || count > 0x100_0000 then neg_errno Errno.EINVAL
              else do_read ~fd ~buf_va ~count ~pos
          | Kernel_version.Rw_new, [ fd; buf_va; count; pos_va ] -> (
              if count < 0 || count > 0x100_0000 then neg_errno Errno.EINVAL
              else
                try
                  let pos =
                    Int64.to_int (Bytes.get_int64_le (vread t ~va:pos_va ~len:8) 0)
                  in
                  let n = do_read ~fd ~buf_va ~count ~pos in
                  if n >= 0 then begin
                    let b = Bytes.create 8 in
                    Bytes.set_int64_le b 0 (Int64.of_int (pos + n));
                    vwrite t ~va:pos_va b
                  end;
                  n
                with Failure _ -> neg_errno Errno.EFAULT)
          | _ -> neg_errno Errno.EINVAL );
      ( "kernel_write",
        fun ~args ->
          let do_write ~fd ~buf_va ~count ~pos =
            match Hashtbl.find_opt t.kfiles fd with
            | None -> neg_errno Errno.EBADF
            | Some f -> (
                match (try Some (vread t ~va:buf_va ~len:count) with _ -> None) with
                | None -> neg_errno Errno.EFAULT
                | Some data -> (
                    match
                      Vfs.write_at t.vfs_t ~ns:t.root_ns_id f.kpath ~off:pos data
                    with
                    | Error e -> neg_errno e
                    | Ok n ->
                        f.kpos <- pos + n;
                        n))
          in
          match (Kernel_version.rw_abi t.ver, args) with
          | Kernel_version.Rw_old, [ fd; pos; buf_va; count ] ->
              if count < 0 || count > 0x100_0000 then neg_errno Errno.EINVAL
              else do_write ~fd ~buf_va ~count ~pos
          | Kernel_version.Rw_new, [ fd; buf_va; count; pos_va ] -> (
              if count < 0 || count > 0x100_0000 then neg_errno Errno.EINVAL
              else
                try
                  let pos =
                    Int64.to_int (Bytes.get_int64_le (vread t ~va:pos_va ~len:8) 0)
                  in
                  let n = do_write ~fd ~buf_va ~count ~pos in
                  if n >= 0 then begin
                    let b = Bytes.create 8 in
                    Bytes.set_int64_le b 0 (Int64.of_int (pos + n));
                    vwrite t ~va:pos_va b
                  end;
                  n
                with Failure _ -> neg_errno Errno.EFAULT)
          | _ -> neg_errno Errno.EINVAL );
      ( "kthread_create_on_node",
        fun ~args ->
          match args with
          | [ struct_va ] -> (
              try
                let b = vread t ~va:struct_va ~len:16 in
                let tag = Int32.to_int (Bytes.get_int32_le b 0) in
                let expected = Kernel_version.thread_struct_version t.ver in
                if tag <> expected then begin
                  printk t
                    (Printf.sprintf
                       "kthread: bad create-struct version %d (kernel expects %d)"
                       tag expected);
                  neg_errno Errno.EINVAL
                end
                else begin
                  let kind = Int32.to_int (Bytes.get_int32_le b 4) in
                  let arg = Int64.to_int (Bytes.get_int64_le b 8) in
                  let handle = 0x1000 + List.length t.pending_threads in
                  t.pending_threads <- (handle, kind, arg) :: t.pending_threads;
                  handle
                end
              with Failure _ -> neg_errno Errno.EFAULT)
          | _ -> neg_errno Errno.EINVAL );
      ( "wake_up_process",
        fun ~args ->
          match args with
          | [ handle ] -> (
              match List.assoc_opt handle (List.map (fun (h, k, a) -> (h, (k, a))) t.pending_threads) with
              | None -> neg_errno Errno.ESRCH
              | Some (kind, arg) ->
                  t.pending_threads <-
                    List.filter (fun (h, _, _) -> h <> handle) t.pending_threads;
                  if kind = 1 then begin
                    (* exec the file at the path string [arg] points to *)
                    match
                      (try Some (vread_cstr t ~va:arg ~max:256) with _ -> None)
                    with
                    | None -> neg_errno Errno.EFAULT
                    | Some path -> (
                        match Vfs.read_file t.vfs_t ~ns:t.root_ns_id path with
                        | Error e ->
                            printk t ("exec: cannot read " ^ path);
                            neg_errno e
                        | Ok content -> (
                            let h = Digest.bytes content |> Digest.to_hex in
                            let prog =
                              match Hashtbl.find_opt t.programs h with
                              | Some p -> Some p
                              | None -> Hashtbl.find_opt global_programs h
                            in
                            match prog with
                            | None ->
                                printk t ("exec: unknown binary " ^ path);
                                neg_errno Errno.ENOENT
                            | Some closure ->
                                let p = spawn_proc t ~name:path () in
                                run_as t ~proc:p ~name:"exec" (fun () ->
                                    closure t p);
                                p.Gproc.gpid))
                  end
                  else 0)
          | _ -> neg_errno Errno.EINVAL );
      ( "kernel_clone",
        fun ~args ->
          match args with
          | [ _flags ] ->
              let p = spawn_proc t ~name:"kthread" () in
              p.Gproc.gpid
          | _ -> neg_errno Errno.EINVAL );
      ( "do_exit",
        fun ~args ->
          match args with
          | [ gpid ] ->
              (match find_proc t ~gpid with
              | Some p -> p.Gproc.alive <- false
              | None -> ());
              0
          | _ -> 0 );
      ("schedule", fun ~args:_ -> 0);
    ]
  in
  List.mapi
    (fun i (name, impl) ->
      let va = t.kvirt + kfun_base_off + (i * kfun_stride) in
      reg name impl va;
      { Ksymtab.name; va })
    funs

(* --- boot --- *)

let build_image t ~syms =
  let img = Bytes.create image_size in
  (* deterministic noise text *)
  let r = Rng.split t.rng in
  for i = 0 to image_size - 1 do
    Bytes.set img i (Char.chr (Rng.int r 256))
  done;
  (* idle loop marker *)
  Bytes.blit_string "\xf4\xeb\xfd" 0 img idle_off 3;
  (* hlt; jmp *)
  (* build-id note: identifies the kernel *build*, not this boot — the
     per-VM rng noise above differs across VMs of the same build, so
     the id is derived from the version banner alone (as a distro
     kernel's NT_GNU_BUILD_ID is fixed per package) *)
  let bid =
    "VMSHBID0" ^ Digest.to_hex (Digest.string (Kernel_version.banner t.ver))
  in
  Bytes.blit_string bid 0 img buildid_off (String.length bid);
  (* banner *)
  let banner = Kernel_version.banner t.ver in
  Bytes.blit_string banner 0 img banner_off (String.length banner);
  Bytes.set img (banner_off + String.length banner) '\000';
  (* symbol sections *)
  let strings, name_offsets = Ksymtab.build_strings syms in
  if Bytes.length strings > table_off - strings_off then
    failwith "guest image: strings section overflow";
  (* clear a window around the strings so the scanner sees clean
     boundaries (real sections are padded with zeros too) *)
  Bytes.fill img (strings_off - 64) (Bytes.length strings + 128) '\000';
  Bytes.blit strings 0 img strings_off (Bytes.length strings);
  let table =
    Ksymtab.build_table
      (Kernel_version.ksymtab_layout t.ver)
      ~syms
      ~strings_va:(t.kvirt + strings_off)
      ~table_va:(t.kvirt + table_off)
      ~name_offsets
  in
  if table_off + Bytes.length table > image_size then
    failwith "guest image: table section overflow";
  Bytes.fill img (table_off - 64) (Bytes.length table + 128) '\000';
  Bytes.blit table 0 img table_off (Bytes.length table);
  img

let decode_regs_blob b (regs : X86.Regs.t) =
  let f i = Int64.to_int (Bytes.get_int64_le b (8 * i)) in
  regs.rax <- f 0;
  regs.rbx <- f 1;
  regs.rcx <- f 2;
  regs.rdx <- f 3;
  regs.rsi <- f 4;
  regs.rdi <- f 5;
  regs.rbp <- f 6;
  regs.rsp <- f 7;
  regs.r8 <- f 8;
  regs.r9 <- f 9;
  regs.r10 <- f 10;
  regs.r11 <- f 11;
  regs.r12 <- f 12;
  regs.r13 <- f 13;
  regs.r14 <- f 14;
  regs.r15 <- f 15;
  regs.rip <- f 16;
  regs.rflags <- f 17;
  regs.cr3 <- f 18

let run_klib t (regs : X86.Regs.t) () =
  t.klib_running <- true;
  let entry = regs.X86.Regs.rip in
  let saved_blob_va = regs.rdi in
  let env =
    {
      Klib.read = (fun ~va ~len -> vread t ~va ~len);
      write = (fun ~va b -> vwrite t ~va b);
      call =
        (fun ~addr ~args ->
          match Hashtbl.find_opt t.kfun_tbl addr with
          | Some (_, impl) -> impl ~args
          | None ->
              raise
                (Klib.Fault
                   (Printf.sprintf
                      "call to 0x%x: not a kernel function (bad relocation?)"
                      addr)));
      restore_regs =
        (fun () ->
          let b = vread t ~va:saved_blob_va ~len:(19 * 8) in
          decode_regs_blob b regs;
          t.klib_running <- false);
    }
  in
  try Klib.execute env ~entry
  with Klib.Fault msg | Failure msg ->
    t.crash <- Some msg;
    printk t ("BUG: unable to handle side-loaded code: " ^ msg);
    regs.rip <- t.idle;
    t.klib_running <- false

let in_kernel t rip = rip >= t.kvirt && rip < t.kvirt + image_pad

let install_runtime t =
  Vm.set_runtime t.vmh
    {
      Vm.on_irq = (fun ~gsi:_ -> () (* parked predicates re-poll used rings *));
      resolve_rip =
        (fun regs ->
          let rip = regs.X86.Regs.rip in
          if t.klib_running || rip = 0 || in_kernel t rip then None
          else if t.crash <> None then None
          else Some (run_klib t regs));
    }

let mount_root_from t drv =
  let raw = Virtio.Blk.Driver.to_blockdev drv in
  let bulk ~first ~count =
    Virtio.Blk.Driver.read drv
      ~sector:(first * Virtio.Blk.sectors_per_block)
      ~len:(count * Layout.page_size)
  in
  let cached = Page_cache.wrap ~bulk_read:bulk t.cache ~dev_id:0 raw in
  match Sfs.mount cached with
  | Ok fs ->
      t.boot_rootfs <- Some fs;
      Vfs.mount t.vfs_t ~ns:t.root_ns_id ~at:"/" ~source:"/dev/vda"
        (Vfs.Simple fs);
      printk t "VFS: mounted root (simplefs) readwrite on /dev/vda"
  | Error _ -> printk t "VFS: no valid root file system on /dev/vda"

(* Cloud-Hypervisor-style guests find their disk behind a PCI config
   space rather than an MMIO window. *)
let probe_pci_boot_blk t =
  let cfg_base = Layout.hyp_pci_base in
  let cfg_read ~off ~len =
    Effect.perform (Vm.Mmio (Vm.Mmio_read { addr = cfg_base + off; len }))
  in
  match Virtio.Pci.Config.probe ~read:cfg_read with
  | Some cfg when cfg.Virtio.Pci.Config.device_type = Virtio.Blk.device_id -> (
      match
        probe_device t ~base:cfg.Virtio.Pci.Config.bar0
          ~expect:Virtio.Blk.device_id ~init:Virtio.Blk.Driver.init
      with
      | Ok drv ->
          Virtio.Blk.Driver.set_observe drv (observe_of t) ~name:"guest-blk";
          t.boot_blk_drv <- Some drv;
          printk t "virtio-pci: block device at 0000:00:00.0";
          mount_root_from t drv
      | Error e -> printk t ("virtio-pci: probe failed: " ^ e))
  | Some _ | None -> printk t "virtio_mmio: no block device at slot 0"

let mount_boot_devices t =
  (* Probe the hypervisor-emulated devices at the standard window. *)
  (match
     probe_device t ~base:Layout.virtio_mmio_base ~expect:Virtio.Blk.device_id
       ~init:Virtio.Blk.Driver.init
   with
  | Ok drv ->
      Virtio.Blk.Driver.set_observe drv (observe_of t) ~name:"guest-blk";
      t.boot_blk_drv <- Some drv;
      mount_root_from t drv
  | Error _ -> probe_pci_boot_blk t);
  (match
     probe_device t
       ~base:(Layout.virtio_mmio_base + (2 * Layout.virtio_mmio_stride))
       ~expect:Virtio.Ninep.device_id ~init:Virtio.Ninep.Driver.init
   with
  | Ok drv ->
      Virtio.Ninep.Driver.set_observe drv (observe_of t) ~name:"guest-9p";
      t.boot_ninep_drv <- Some drv;
      printk t "9p: host file sharing mounted on /host"
  | Error _ -> ());
  (* /proc view *)
  Vfs.mount t.vfs_t ~ns:t.root_ns_id ~at:"/proc" ~source:"proc"
    (Vfs.Pseudo
       (fun () ->
         List.concat_map
           (fun p ->
             if p.Gproc.alive then
               [
                 ( string_of_int p.Gproc.gpid ^ "/comm", p.Gproc.pname );
                 ( string_of_int p.Gproc.gpid ^ "/cgroup", p.Gproc.cgroup );
               ]
             else [])
           t.proc_list))

let boot ~vm:vmh ~version:ver ~rng ?(cache_blocks = 4096) ?prebuilt_image () =
  let host = Vm.host vmh in
  let clock = host.Hostos.Host.clock in
  let ram_size =
    match Vm.memslots vmh with
    | [] -> invalid_arg "Guest.boot: VM has no memory slots"
    | slots -> (
        match List.find_opt (fun s -> s.Vm.gpa = 0) slots with
        | Some s -> s.Vm.size
        | None -> invalid_arg "Guest.boot: no RAM at guest-physical 0")
  in
  let slot = Rng.int rng Layout.kaslr_slots in
  let kvirt = Layout.kaslr_base + (slot * Layout.kaslr_align) in
  let vfs_t, root_ns_id = Vfs.create () in
  let t =
    {
      vmh;
      ver;
      rng = Rng.split rng;
      clock;
      ram_size;
      pt_root = pt_arena_start;
      pt_next = pt_arena_start + Layout.page_size;
      phys_brk = kernel_phys + image_pad;
      kvirt;
      exports_list = [];
      kfun_tbl = Hashtbl.create 64;
      idle = kvirt + idle_off;
      vfs_t;
      root_ns_id;
      cache = Page_cache.create ~clock ~capacity_blocks:cache_blocks;
      proc_list = [];
      next_gpid = 1;
      dmesg_rev = [];
      crash = None;
      klib_running = false;
      boot_blk_drv = None;
      boot_ninep_drv = None;
      boot_rootfs = None;
      vmsh_blk_drv = None;
      vmsh_console_drv = None;
      vmsh_net_drv = None;
      vmsh_ninep_drv = None;
      programs = Hashtbl.create 8;
      kfiles = Hashtbl.create 16;
      next_kfd = 3;
      pending_threads = [];
      kimage = Bytes.empty;
    }
  in
  (* kernel functions + exported symbols *)
  let kfun_syms = install_kfuns t in
  let banner_sym =
    { Ksymtab.name = "linux_banner"; va = kvirt + banner_off }
  in
  let noise =
    Ksymtab.noise_symbols t.rng ~version:ver ~count:180 ~text_va:kvirt
      ~text_size
  in
  let all_syms =
    let arr = Array.of_list (kfun_syms @ [ banner_sym ] @ noise) in
    Rng.shuffle t.rng arr;
    Array.to_list arr
  in
  t.exports_list <- List.map (fun s -> (s.Ksymtab.name, s.Ksymtab.va)) all_syms;
  (* encode the image into guest physical memory. A forked VM passes
     the baseline's prebuilt image so the expensive noise-text build is
     skipped; the [Rng.split] build_image would have drawn still
     advances [t.rng] so every later draw stays aligned with the
     baseline's boot. *)
  let img =
    match prebuilt_image with
    | Some img ->
        ignore (Rng.split t.rng : Rng.t);
        img
    | None -> build_image t ~syms:all_syms
  in
  t.kimage <- img;
  Vm.write_phys vmh kernel_phys img;
  (* page tables: zero root, direct map, kernel mapping. A forked VM's
     RAM view falls through to the frozen baseline, whose arena holds
     the *final* boot tables — and the mapper reads entries before
     writing them, so a replay would graft its fresh allocations onto
     the baseline's future tree and corrupt it. Make the whole arena
     read as empty first: zero pages over already-zero baseline pages
     are absorbed silently by the CoW layer, and the few real PT pages
     diverge only until the mapper rebuilds them byte-identically. *)
  (match prebuilt_image with
  | Some _ ->
      Vm.write_phys vmh pt_arena_start
        (Bytes.make (pt_arena_pages * Layout.page_size) '\000')
  | None -> Vm.write_phys vmh t.pt_root (Bytes.make Layout.page_size '\000'));
  let acc = Vm.pt_access vmh in
  let alloc = pt_alloc t in
  let flags = PT.Flags.(present lor writable) in
  PT.map_range acc ~alloc ~root:t.pt_root ~virt:Layout.direct_map_base ~phys:0
    ~len:ram_size ~flags;
  PT.map_range acc ~alloc ~root:t.pt_root ~virt:kvirt ~phys:kernel_phys
    ~len:image_pad ~flags;
  (* vCPU 0 state *)
  (match Vm.vcpus vmh with
  | v :: _ ->
      let regs = Vm.vcpu_regs v in
      regs.X86.Regs.cr3 <- t.pt_root;
      regs.rip <- t.idle;
      regs.rsp <- Layout.phys_to_direct (alloc_pages t ~count:4) + (4 * 4096)
  | [] -> invalid_arg "Guest.boot: VM has no vCPUs");
  install_runtime t;
  (* pid 1 *)
  ignore (spawn_proc t ~name:"init" ());
  printk t (Kernel_version.banner ver);
  printk t
    (Printf.sprintf "KASLR: kernel image at slot %d (v%s)" slot
       (Kernel_version.to_string ver));
  Vm.enqueue_task vmh ~name:"guest-init" (fun () -> mount_boot_devices t);
  t
