(** The synthetic guest Linux kernel.

    [boot] assembles a bootable guest inside an existing KVM VM (whose
    RAM the hypervisor already registered): it encodes a kernel image —
    text, banner, ksymtab sections in the version's layout — into guest
    physical memory at a KASLR-randomised virtual base, builds genuine
    4-level page tables (direct map + kernel mapping), points the vCPU's
    CR3/RIP at them, and installs the VM runtime hooks (interrupt
    delivery and the side-loaded-library interpreter).

    Everything VMSH later discovers by binary analysis — the kernel
    base, the symbol sections, the banner — exists only as bytes in
    guest memory placed here. *)

type t

(** {1 Boot} *)

val boot :
  vm:Kvm.Vm.t -> version:Kernel_version.t -> rng:Hostos.Rng.t ->
  ?cache_blocks:int -> ?prebuilt_image:bytes -> unit -> t
(** Requires RAM at guest-physical 0 (memslot registered by the VMM).
    Device probing and root mounting are queued as the guest's init
    task — drive the vCPU (e.g. [Vmm.run_until_idle]) to complete
    boot. [prebuilt_image] (a forked VM replaying its baseline's boot)
    skips the expensive image encoding and installs the given bytes
    instead; the caller must supply the same [rng] stream the image
    was built under, or the symbol layout will not match. *)

val kernel_image : t -> bytes
(** The encoded kernel image this guest booted — what a baseline
    freezes so its forks can pass it back as [prebuilt_image]. *)

val vm : t -> Kvm.Vm.t
val version : t -> Kernel_version.t
val kernel_virt : t -> int
(** Where KASLR placed the kernel (ground truth, for tests only). *)

val scanner_target_regions : t -> (int * int * int) list
(** [(phys, virt, len)] of the ksymtab strings and table regions — the
    guest structures the attach scanner reads, and therefore what an
    adversarial guest mutates to race the scan (the hostile-guest
    engine's targets). *)

val image_bytes : t -> int
val idle_rip : t -> int
val page_cache : t -> Page_cache.t
val crashed : t -> string option
(** A kernel-level fault (bad side-load, bad opcode...), if any. *)

val dmesg : t -> string list
val printk : t -> string -> unit

(** {1 Memory services} *)

val alloc_pages : t -> count:int -> int
(** Allocate fresh guest-physical pages (identity in the direct map). *)

val translate : t -> int -> int option
(** Virtual-to-physical through the live page tables (vCPU 0 CR3). *)

val vread : t -> va:int -> len:int -> bytes
(** Read guest *virtual* memory (page-by-page translation). Raises
    [Failure] on an unmapped address. *)

val vwrite : t -> va:int -> bytes -> unit

(** {1 Files and processes} *)

val vfs : t -> Vfs.t
val root_ns : t -> int
val rootfs : t -> Blockdev.Simplefs.t option
val procs : t -> Gproc.t list
val find_proc : t -> gpid:int -> Gproc.t option
val init_proc : t -> Gproc.t

val spawn_proc :
  t -> name:string -> ?uid:int -> ?mnt_ns:int -> ?cgroup:string ->
  ?caps:string list -> ?apparmor:string -> unit -> Gproc.t

val spawn_container : t -> name:string -> image:(string * string) list -> Gproc.t
(** A containerised process: fresh mount namespace (with the given
    extra files visible at /), restricted capabilities, its own cgroup
    and an AppArmor profile — the target of container-aware attach. *)

val run_as : t -> proc:Gproc.t -> name:string -> (unit -> unit) -> unit
(** Enqueue guest code attributed to [proc] (effects allowed). *)

val file_read : t -> ns:int -> string -> bytes Hostos.Errno.result
val file_write : t -> ns:int -> string -> bytes -> unit Hostos.Errno.result

(** {1 Boot-time VirtIO devices (hypervisor-emulated)} *)

val boot_blk : t -> Virtio.Blk.Driver.t option
val boot_blk_exn : t -> Virtio.Blk.Driver.t
val boot_ninep : t -> Virtio.Ninep.Driver.t option
(** The hypervisor's 9p file-sharing device (QEMU profile only). *)

(** {1 Side-loading support (consumed by VMSH)} *)

val exports : t -> (string * int) list
(** Ground-truth exported symbol table (tests compare the analyzer's
    result against this; VMSH itself never reads it). *)

val register_global_program : content:bytes -> (t -> Gproc.t -> unit) -> unit
(** Like {!register_program} but visible to every guest — how VMSH's
    embedded guest program is known before VMSH has any handle on the
    guest it attaches to. *)

val register_program : t -> content:bytes -> (t -> Gproc.t -> unit) -> unit
(** Declare the semantics of a guest userspace binary: when a file with
    exactly [content] is executed inside the guest, the closure runs as
    the new process. This is the simulation stand-in for machine code in
    the embedded guest program (see DESIGN.md). *)

val vmsh_blk : t -> Virtio.Blk.Driver.t option
(** The driver instance the side-loaded library registered, if any. *)

val vmsh_console : t -> Virtio.Console.Driver.t option

val vmsh_net : t -> Virtio.Net.Driver.t option
(** The side-loaded NIC driver, if the klib registered one. *)

val vmsh_ninep : t -> Virtio.Ninep.Driver.t option
(** The side-loaded 9p file-sharing driver, if any. *)

(** {1 Struct layouts passed to kernel functions}

    Helpers shared with the library builder so both sides agree on the
    *intended* encoding; whether the encoding matches what the booted
    kernel expects is checked at run time via the version tags. *)

val encode_virtio_desc : version_tag:int -> device_type:int -> mmio_base:int ->
  gsi:int -> bytes

val encode_thread_struct : version_tag:int -> kind:int -> arg:int -> bytes

val o_creat : int
val o_wronly : int
