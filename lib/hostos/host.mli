(** The simulated host kernel: process table, /proc, eBPF attach points,
    UNIX-domain sockets and remote-memory syscalls.

    One [t] is one machine. All state is reachable from it — nothing is
    global — so tests can run many independent hosts. *)

type t = {
  clock : Clock.t;
  observe : Observe.t;
      (** Tracing spans + metrics wired to [clock]; sink is a no-op
          until [Observe.enable] is called on it. *)
  recorder : Trace.Recorder.t;
      (** Always-on bounded flight recorder of KVM-boundary events,
          tagged with the host seed (and the fault-plan seed once
          {!arm_faults} runs). Pure observation: never advances the
          clock, never draws from [rng]. *)
  rng : Rng.t;
  mutable procs : Proc.t list;
  mutable next_pid : int;
  ebpf_progs : (string, Ebpf.prog list ref) Hashtbl.t;
  unix_listeners : (string, Fd.t Queue.t) Hashtbl.t;
      (** bound path -> queue of not-yet-accepted peer socket ends *)
  mutable faults : Faults.t;
      (** Fault plan consulted at every substrate decision point;
          defaults to [Faults.disabled] (never draws, never fires). *)
}

val create : ?seed:int -> ?costs:Clock.costs -> unit -> t

val arm_faults : t -> Faults.t -> unit
(** Install a fault plan, wire its [faults.injected.*] counters into
    this host's metric registry, and tag the flight-recorder header
    with the plan's seed. *)

val spawn : t -> name:string -> ?uid:int -> ?caps:Proc.cap list -> unit -> Proc.t
(** Create a process with a fresh pid and a single main thread. *)

val find_proc : t -> pid:int -> Proc.t option
val proc_exn : t -> pid:int -> Proc.t

val readlink_fd : t -> pid:int -> fdnum:int -> string Errno.result
(** What [readlink /proc/<pid>/fd/<n>] would return — the fd's label.
    This is how the sideloader identifies KVM descriptors (paper §5). *)

val proc_fd_listing : t -> pid:int -> (int * string) list
(** All of /proc/<pid>/fd at once: (number, label) pairs. *)

val proc_comm : t -> pid:int -> string Errno.result
(** /proc/<pid>/comm. *)

val pids : t -> int list

val proc_maps : t -> pid:int -> (int * int * string) list
(** /proc/<pid>/maps: (base, length, tag) of every mapping, ascending.
    VMSH uses this to locate the mmapped kvm_run pages of vCPU fds. *)

(** {1 eBPF} *)

val attach_ebpf :
  t -> caller:Proc.t -> hook:string -> Ebpf.prog -> unit Errno.result
(** Verifies the program and requires CAP_BPF or CAP_SYS_ADMIN. *)

val detach_ebpf : t -> hook:string -> name:string -> unit

val fire_ebpf : t -> hook:string -> args:int array -> Ebpf.kdata -> bytes option
(** Run every program attached to [hook]; the last program output wins.
    Called from kernel paths such as kvm_vm_ioctl. *)

(** {1 UNIX-domain sockets with fd passing} *)

val unix_bind : t -> Proc.t -> path:string -> Fd.t Errno.result
(** Create a listening socket at [path] in the caller's fd table. *)

val unix_unbind : t -> path:string -> unit
(** Forget the listener at [path] (rollback of {!unix_bind}); pending
    unaccepted connections are dropped. The listener fd itself is closed
    separately by its owner. *)

val unix_connect : t -> Proc.t -> path:string -> Fd.t Errno.result
(** Connect to a bound path; the peer end is queued for [unix_accept]. *)

val unix_accept : t -> Proc.t -> listener:Fd.t -> Fd.t Errno.result

val send_fd : t -> sock:Fd.t -> Fd.t -> unit Errno.result
(** SCM_RIGHTS: enqueue a descriptor towards the peer. *)

val recv_fd : t -> Proc.t -> sock:Fd.t -> Fd.t Errno.result
(** Dequeue a passed descriptor and install it in the receiver's table
    under a fresh number (sharing the open file description). *)

(** {1 Remote process memory (process_vm_readv / process_vm_writev)} *)

val process_vm_read :
  t -> caller:Proc.t -> pid:int -> addr:int -> len:int -> bytes Errno.result
(** Requires same uid or CAP_SYS_PTRACE; charges remote-copy cost. *)

val process_vm_write :
  t -> caller:Proc.t -> pid:int -> addr:int -> bytes -> unit Errno.result

val process_vm_readv :
  t ->
  caller:Proc.t ->
  pid:int ->
  iov:(int * int) list ->
  bytes list Errno.result
(** Vectored read: one syscall entry covering every [(addr, len)]
    segment — one permission/fault check, copy cost charged on the
    summed length. Fails atomically: any unreadable segment fails the
    whole call. *)

val process_vm_writev :
  t ->
  caller:Proc.t ->
  pid:int ->
  iov:(int * bytes) list ->
  unit Errno.result
(** Vectored write: one syscall entry for the batch. Segments are
    written in order; a faulting segment stops the batch with EFAULT
    (earlier segments stay written, as with the real syscall's partial
    transfer). *)
