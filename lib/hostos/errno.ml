type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | ENODEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENOSPC
  | ERANGE
  | ENOSYS
  | ENOTEMPTY
  | EDQUOT
[@@deriving show, eq]

let table =
  [
    (EPERM, 1); (ENOENT, 2); (ESRCH, 3); (EINTR, 4); (EIO, 5); (EBADF, 9);
    (EAGAIN, 11);
    (ENOMEM, 12); (EACCES, 13); (EFAULT, 14); (EBUSY, 16); (EEXIST, 17);
    (ENODEV, 19); (ENOTDIR, 20); (EISDIR, 21); (EINVAL, 22); (ENOSPC, 28);
    (ERANGE, 34); (ENOTEMPTY, 39); (ENOSYS, 38); (EDQUOT, 122);
  ]

let to_code e = List.assoc e table
let of_code c = List.find_opt (fun (_, c') -> c' = c) table |> Option.map fst

type 'a result = ('a, t) Stdlib.result

let to_syscall_ret = function Ok v -> v | Error e -> -to_code e

let of_syscall_ret v =
  if v >= 0 then Ok v
  else match of_code (-v) with Some e -> Error e | None -> Error EINVAL
