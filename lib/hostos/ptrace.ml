type session = { tracer : Proc.t; tracee : Proc.t }

let may_trace tracer target =
  tracer.Proc.uid = 0
  || tracer.Proc.uid = target.Proc.uid
  || Proc.has_cap tracer CAP_SYS_PTRACE

let attach host ~tracer ~pid =
  match Host.find_proc host ~pid with
  | None -> Error Errno.ESRCH
  | Some tracee ->
      if not (may_trace tracer tracee) then Error Errno.EPERM
      else if tracee.Proc.tracer <> None then Error Errno.EPERM
      else if Faults.fire host.Host.faults Faults.Attach_race then begin
        (* The target took a competing stop between our permission check
           and the attach: the kernel reports EAGAIN and the tracee is
           left untouched, so the caller may simply retry. *)
        Clock.syscall host.Host.clock;
        Error Errno.EAGAIN
      end
      else begin
        tracee.Proc.tracer <- Some tracer.Proc.pid;
        Clock.syscall host.Host.clock;
        Ok { tracer; tracee }
      end

let detach _host s =
  s.tracee.Proc.tracer <- None;
  s.tracee.Proc.hook <- None

let check s =
  if s.tracee.Proc.tracer <> Some s.tracer.Proc.pid then Error Errno.ESRCH
  else Ok ()

let interrupt host s = ignore (check s); Clock.ptrace_stop host.Host.clock

let getregs host s ~tid =
  match check s with
  | Error e -> Error e
  | Ok () -> (
      match Proc.find_thread s.tracee ~tid with
      | None -> Error Errno.ESRCH
      | Some th ->
          Clock.syscall host.Host.clock;
          Ok (X86.Regs.copy th.Proc.regs))

let setregs host s ~tid regs =
  match check s with
  | Error e -> Error e
  | Ok () -> (
      match Proc.find_thread s.tracee ~tid with
      | None -> Error Errno.ESRCH
      | Some th ->
          Clock.syscall host.Host.clock;
          X86.Regs.restore th.Proc.regs ~from:regs;
          Ok ())

let inject_syscall host s ?tid ~nr ~args () =
  match check s with
  | Error e -> Error e
  | Ok () -> (
      let tid = Option.value tid ~default:s.tracee.Proc.pid in
      match Proc.find_thread s.tracee ~tid with
      | None -> Error Errno.ESRCH
      | Some th ->
          Observe.span host.Host.observe
            ~name:("ptrace.inject:" ^ Syscall.Nr.name nr)
            (fun () ->
              let faulted =
                if Faults.fire host.Host.faults Faults.Inject_eintr then
                  Some Errno.EINTR
                else if Faults.fire host.Host.faults Faults.Inject_eagain then
                  Some Errno.EAGAIN
                else None
              in
              match faulted with
              | Some e ->
                  (* The stop was delivered but the syscall never ran:
                     the tracee bounces back with a transient errno and
                     unchanged registers, exactly like a signal racing a
                     PTRACE_SYSCALL restart. Safe to retry verbatim. *)
                  Clock.ptrace_stop host.Host.clock;
                  Ok (-Errno.to_code e)
              | None ->
                  let saved = X86.Regs.copy th.Proc.regs in
                  (* Injected syscalls must not re-trigger the tracer's own
                     wrap_syscall hooks (the real implementation distinguishes
                     injected stops from organic ones). *)
                  let saved_hook = s.tracee.Proc.hook in
                  s.tracee.Proc.hook <- None;
                  Clock.ptrace_stop host.Host.clock;
                  let ret = Syscall.call host s.tracee th ~nr ~args in
                  Clock.ptrace_stop host.Host.clock;
                  s.tracee.Proc.hook <- saved_hook;
                  X86.Regs.restore th.Proc.regs ~from:saved;
                  Ok ret))

let hook_syscalls host s ~on_entry ~on_exit =
  let clock = host.Host.clock in
  s.tracee.Proc.hook <-
    Some
      {
        Proc.on_entry =
          (fun th ->
            Clock.ptrace_stop clock;
            on_entry th);
        on_exit =
          (fun th ->
            Clock.ptrace_stop clock;
            on_exit th);
      }

let unhook_syscalls _host s = s.tracee.Proc.hook <- None
