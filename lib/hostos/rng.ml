type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  assert (bound > 0);
  next t mod bound

let in_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(* NB: 2^62 is not representable as an OCaml int (63-bit), so the
   divisor must be built as a float. *)
let float t x = Float.of_int (next t) /. Float.ldexp 1.0 62 *. x

let bool t = Int64.logand (next64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  (* Box-Muller transform; we draw until u1 is nonzero to avoid log 0. *)
  let rec u1 () =
    let x = float t 1.0 in
    if x > 0.0 then x else u1 ()
  in
  let u1 = u1 () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let split t = { state = mix64 (next64 t) }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
