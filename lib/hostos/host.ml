type t = {
  clock : Clock.t;
  observe : Observe.t;
  recorder : Trace.Recorder.t;
  rng : Rng.t;
  mutable procs : Proc.t list;
  mutable next_pid : int;
  ebpf_progs : (string, Ebpf.prog list ref) Hashtbl.t;
  unix_listeners : (string, Fd.t Queue.t) Hashtbl.t;
  mutable faults : Faults.t;
}

let create ?(seed = 0xb5ee5) ?costs () =
  let clock = Clock.create ?costs () in
  let recorder =
    Trace.Recorder.create ~now:(fun () -> Clock.now_ns clock) ()
  in
  Trace.Recorder.set_meta recorder "seed" (string_of_int seed);
  {
    clock;
    observe =
      Observe.create
        ~now:(fun () -> Clock.now_ns clock)
        ~counters:(fun () -> Clock.to_fields (Clock.counters clock))
        ();
    recorder;
    rng = Rng.create ~seed;
    procs = [];
    next_pid = 100;
    ebpf_progs = Hashtbl.create 8;
    unix_listeners = Hashtbl.create 8;
    faults = Faults.disabled;
  }

(* Install a fault plan and point its injection counters at this host's
   metric registry. The default [Faults.disabled] plan never draws, so
   unarmed hosts behave bit-identically to builds without lib/faults.
   The flight-recorder header is tagged with the plan's seed so a
   failure artifact names the exact fault stream that produced it. *)
let arm_faults t plan =
  Faults.set_metrics plan (Some (Observe.metrics t.observe));
  Trace.Recorder.set_meta t.recorder "fault-plan-seed"
    (string_of_int (Faults.seed plan));
  t.faults <- plan

let spawn t ~name ?(uid = 1000) ?(caps = []) () =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let p = Proc.create ~pid ~name ~uid in
  p.Proc.caps <- caps;
  t.procs <- t.procs @ [ p ];
  p

let find_proc t ~pid = List.find_opt (fun p -> p.Proc.pid = pid) t.procs

let proc_exn t ~pid =
  match find_proc t ~pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Host.proc_exn: no pid %d" pid)

let readlink_fd t ~pid ~fdnum =
  match find_proc t ~pid with
  | None -> Error Errno.ESRCH
  | Some p -> (
      match Proc.fd p fdnum with
      | Error _ as e -> e |> Result.map (fun _ -> "")
      | Ok f -> Ok f.Fd.label)

let proc_fd_listing t ~pid =
  match find_proc t ~pid with
  | None -> []
  | Some p ->
      List.filter_map
        (fun n ->
          match Proc.fd p n with
          | Ok f -> Some (n, f.Fd.label)
          | Error _ -> None)
        (Proc.fd_numbers p)

let proc_comm t ~pid =
  match find_proc t ~pid with
  | None -> Error Errno.ESRCH
  | Some p -> Ok p.Proc.proc_name

let pids t = List.map (fun p -> p.Proc.pid) t.procs

let proc_maps t ~pid =
  match find_proc t ~pid with
  | None -> []
  | Some p ->
      List.map
        (fun m ->
          Mem.Addr_space.(m.base, m.len, m.tag))
        (Mem.Addr_space.mappings p.Proc.aspace)

(* --- eBPF --- *)

let attach_ebpf t ~caller ~hook prog =
  if not (Proc.has_cap caller CAP_BPF || Proc.has_cap caller CAP_SYS_ADMIN)
  then Error Errno.EPERM
  else
    match Ebpf.verify prog with
    | Error _ as e -> e
    | Ok () ->
        let cell =
          match Hashtbl.find_opt t.ebpf_progs hook with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.replace t.ebpf_progs hook c;
              c
        in
        cell := !cell @ [ prog ];
        Ok ()

let detach_ebpf t ~hook ~name =
  match Hashtbl.find_opt t.ebpf_progs hook with
  | None -> ()
  | Some cell -> cell := List.filter (fun p -> p.Ebpf.name <> name) !cell

let fire_ebpf t ~hook ~args kdata =
  match Hashtbl.find_opt t.ebpf_progs hook with
  | None -> None
  | Some cell ->
      let ctx = { Ebpf.hook; args; kdata; output = None } in
      List.iter
        (fun p ->
          Clock.advance t.clock 80.0;
          p.Ebpf.run ctx)
        !cell;
      ctx.Ebpf.output

(* --- UNIX sockets --- *)

let make_sock_pair () =
  let c1 = Chan.create () and c2 = Chan.create () in
  let qa = Queue.create () and qb = Queue.create () in
  let chan_ops rx tx =
    {
      Fd.default_ops with
      read = (fun ~len -> Chan.read rx len);
      write = (fun b -> Chan.write tx b);
    }
  in
  let end_a ~num =
    Fd.make ~num
      ~kind:(Fd.Sock { rx = c1; tx = c2; fdq_in = qa; fdq_out = qb })
      ~ops:(chan_ops c1 c2) ~label:"socket:[unix]" ()
  and end_b ~num =
    Fd.make ~num
      ~kind:(Fd.Sock { rx = c2; tx = c1; fdq_in = qb; fdq_out = qa })
      ~ops:(chan_ops c2 c1) ~label:"socket:[unix]" ()
  in
  (end_a, end_b)

let unix_bind t p ~path =
  if Hashtbl.mem t.unix_listeners path then Error Errno.EEXIST
  else begin
    let q = Queue.create () in
    Hashtbl.replace t.unix_listeners path q;
    let fd =
      Proc.install_fd p (fun ~num ->
          Fd.make ~num ~label:(Printf.sprintf "socket:[unix-listen %s]" path) ())
    in
    Ok fd
  end

(* Rollback of unix_bind: forget the listener so the path can be bound
   again by a later attach. Pending (unaccepted) peer ends are dropped
   with the queue. *)
let unix_unbind t ~path = Hashtbl.remove t.unix_listeners path

let unix_connect t p ~path =
  match Hashtbl.find_opt t.unix_listeners path with
  | None -> Error Errno.ENOENT
  | Some pending ->
      let make_a, make_b = make_sock_pair () in
      let mine = Proc.install_fd p (fun ~num -> make_a ~num) in
      (* The peer end has no owner yet; it is installed at accept time.
         Descriptor number 0 is a placeholder until then. *)
      Queue.push (make_b ~num:0) pending;
      Clock.syscall t.clock;
      Ok mine

let unix_accept t p ~listener =
  let path_of label =
    (* label is "socket:[unix-listen <path>]" *)
    try Scanf.sscanf label "socket:[unix-listen %s@]" (fun s -> Some s)
    with Scanf.Scan_failure _ | End_of_file -> None
  in
  match path_of listener.Fd.label with
  | None -> Error Errno.EINVAL
  | Some path -> (
      match Hashtbl.find_opt t.unix_listeners path with
      | None -> Error Errno.EBADF
      | Some pending ->
          if Queue.is_empty pending then Error Errno.EAGAIN
          else begin
            let peer = Queue.pop pending in
            let fd =
              Proc.install_fd p (fun ~num -> { peer with Fd.num })
            in
            Clock.syscall t.clock;
            Ok fd
          end)

let send_fd t ~sock passed =
  match sock.Fd.kind with
  | Fd.Sock { fdq_out; _ } ->
      Queue.push passed fdq_out;
      Clock.syscall t.clock;
      Ok ()
  | _ -> Error Errno.EINVAL

let recv_fd t p ~sock =
  match sock.Fd.kind with
  | Fd.Sock { fdq_in; _ } ->
      if Queue.is_empty fdq_in then Error Errno.EAGAIN
      else begin
        let passed = Queue.pop fdq_in in
        let fd = Proc.install_fd p (fun ~num -> { passed with Fd.num }) in
        Clock.syscall t.clock;
        Ok fd
      end
  | _ -> Error Errno.EINVAL

(* --- remote memory --- *)

let may_access caller target =
  caller.Proc.uid = target.Proc.uid
  || caller.Proc.uid = 0
  || Proc.has_cap caller CAP_SYS_PTRACE

let process_vm_read t ~caller ~pid ~addr ~len =
  match find_proc t ~pid with
  | None -> Error Errno.ESRCH
  | Some target ->
      if not (may_access caller target) then Error Errno.EPERM
      else if Faults.fire t.faults Faults.Vm_rw_efault then begin
        (* Transient fault: the syscall entered the kernel and bounced. *)
        Clock.syscall t.clock;
        Error Errno.EFAULT
      end
      else begin
        Clock.syscall t.clock;
        Clock.copy_bytes_remote t.clock len;
        match Mem.Addr_space.read target.Proc.aspace addr len with
        | b -> Ok b
        | exception Invalid_argument _ -> Error Errno.EFAULT
      end

(* Vectored remote copies: the whole iovec batch is one syscall entry —
   one permission check, one fault-injection draw, copy cost charged on
   the summed byte count. A bad segment fails the batch atomically
   (nothing observable was transferred), mirroring the partial-transfer
   guard our callers would otherwise need. *)
let process_vm_readv t ~caller ~pid ~iov =
  match find_proc t ~pid with
  | None -> Error Errno.ESRCH
  | Some target ->
      if not (may_access caller target) then Error Errno.EPERM
      else if Faults.fire t.faults Faults.Vm_rw_efault then begin
        Clock.syscall t.clock;
        Error Errno.EFAULT
      end
      else begin
        Clock.syscall t.clock;
        Clock.copy_bytes_remote t.clock
          (List.fold_left (fun acc (_, len) -> acc + len) 0 iov);
        try
          Ok
            (List.map
               (fun (addr, len) ->
                 Mem.Addr_space.read target.Proc.aspace addr len)
               iov)
        with Invalid_argument _ -> Error Errno.EFAULT
      end

let process_vm_write t ~caller ~pid ~addr b =
  match find_proc t ~pid with
  | None -> Error Errno.ESRCH
  | Some target ->
      if not (may_access caller target) then Error Errno.EPERM
      else if Faults.fire t.faults Faults.Vm_rw_efault then begin
        Clock.syscall t.clock;
        Error Errno.EFAULT
      end
      else begin
        Clock.syscall t.clock;
        Clock.copy_bytes_remote t.clock (Bytes.length b);
        match Mem.Addr_space.write target.Proc.aspace addr b with
        | () -> Ok ()
        | exception Invalid_argument _ -> Error Errno.EFAULT
      end

let process_vm_writev t ~caller ~pid ~iov =
  match find_proc t ~pid with
  | None -> Error Errno.ESRCH
  | Some target ->
      if not (may_access caller target) then Error Errno.EPERM
      else if Faults.fire t.faults Faults.Vm_rw_efault then begin
        Clock.syscall t.clock;
        Error Errno.EFAULT
      end
      else begin
        Clock.syscall t.clock;
        Clock.copy_bytes_remote t.clock
          (List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 iov);
        try
          List.iter
            (fun (addr, b) -> Mem.Addr_space.write target.Proc.aspace addr b)
            iov;
          Ok ()
        with Invalid_argument _ -> Error Errno.EFAULT
      end
