type costs = {
  ns_context_switch : float;
  ns_syscall : float;
  ns_vmexit : float;
  ns_vmexit_userspace : float;
  ns_ptrace_stop : float;
  ns_per_byte_copy : float;
  ns_per_byte_remote_copy : float;
  ns_page_cache_hit : float;
  ns_irq_injection : float;
  ns_socket_msg : float;
  ns_device_4k : float;
  ns_fs_op : float;
}

(* Calibrated to an i9-9900K-class host with a fast NVMe drive: a raw
   syscall is ~300ns, a context switch ~1.2us, an in-kernel VMEXIT ~1.5us
   and a userspace-handled one ~4us; memcpy streams at ~10GB/s and
   process_vm_readv at ~7GB/s. *)
let default_costs =
  {
    ns_context_switch = 1200.0;
    ns_syscall = 300.0;
    ns_vmexit = 1500.0;
    ns_vmexit_userspace = 4000.0;
    ns_ptrace_stop = 2600.0;
    ns_per_byte_copy = 0.10;
    ns_per_byte_remote_copy = 0.145;
    ns_page_cache_hit = 450.0;
    ns_irq_injection = 900.0;
    ns_socket_msg = 1800.0;
    ns_device_4k = 2700.0;
    ns_fs_op = 700.0;
  }

type counters = {
  mutable context_switches : int;
  mutable syscalls : int;
  mutable vmexits : int;
  mutable mmio_exits : int;
  mutable ptrace_stops : int;
  mutable bytes_copied : int;
  mutable bytes_copied_remote : int;
  mutable page_cache_hits : int;
  mutable page_cache_misses : int;
  mutable irq_injections : int;
  mutable socket_msgs : int;
  mutable device_ops : int;
  mutable fs_ops : int;
}

let zero_counters () =
  {
    context_switches = 0;
    syscalls = 0;
    vmexits = 0;
    mmio_exits = 0;
    ptrace_stops = 0;
    bytes_copied = 0;
    bytes_copied_remote = 0;
    page_cache_hits = 0;
    page_cache_misses = 0;
    irq_injections = 0;
    socket_msgs = 0;
    device_ops = 0;
    fs_ops = 0;
  }

type t = { mutable now : float; counters : counters; costs : costs }

let create ?(costs = default_costs) () =
  { now = 0.0; counters = zero_counters (); costs }

let now_ns t = t.now
let counters t = t.counters
let costs t = t.costs
let advance t ns = t.now <- t.now +. ns

let reset_counters t =
  let c = t.counters and z = zero_counters () in
  c.context_switches <- z.context_switches;
  c.syscalls <- z.syscalls;
  c.vmexits <- z.vmexits;
  c.mmio_exits <- z.mmio_exits;
  c.ptrace_stops <- z.ptrace_stops;
  c.bytes_copied <- z.bytes_copied;
  c.bytes_copied_remote <- z.bytes_copied_remote;
  c.page_cache_hits <- z.page_cache_hits;
  c.page_cache_misses <- z.page_cache_misses;
  c.irq_injections <- z.irq_injections;
  c.socket_msgs <- z.socket_msgs;
  c.device_ops <- z.device_ops;
  c.fs_ops <- z.fs_ops

let snapshot t =
  let c = t.counters in
  {
    context_switches = c.context_switches;
    syscalls = c.syscalls;
    vmexits = c.vmexits;
    mmio_exits = c.mmio_exits;
    ptrace_stops = c.ptrace_stops;
    bytes_copied = c.bytes_copied;
    bytes_copied_remote = c.bytes_copied_remote;
    page_cache_hits = c.page_cache_hits;
    page_cache_misses = c.page_cache_misses;
    irq_injections = c.irq_injections;
    socket_msgs = c.socket_msgs;
    device_ops = c.device_ops;
    fs_ops = c.fs_ops;
  }

let context_switch t =
  t.counters.context_switches <- t.counters.context_switches + 1;
  advance t t.costs.ns_context_switch

let syscall t =
  t.counters.syscalls <- t.counters.syscalls + 1;
  advance t t.costs.ns_syscall

let vmexit t =
  t.counters.vmexits <- t.counters.vmexits + 1;
  advance t t.costs.ns_vmexit

let vmexit_userspace t =
  t.counters.vmexits <- t.counters.vmexits + 1;
  advance t t.costs.ns_vmexit_userspace

let mmio_exit t =
  t.counters.mmio_exits <- t.counters.mmio_exits + 1;
  advance t t.costs.ns_vmexit_userspace

let ptrace_stop t =
  t.counters.ptrace_stops <- t.counters.ptrace_stops + 1;
  context_switch t;
  context_switch t;
  advance t t.costs.ns_ptrace_stop

let copy_bytes t n =
  t.counters.bytes_copied <- t.counters.bytes_copied + n;
  advance t (t.costs.ns_per_byte_copy *. Float.of_int n)

let copy_bytes_remote t n =
  t.counters.bytes_copied_remote <- t.counters.bytes_copied_remote + n;
  advance t (t.costs.ns_per_byte_remote_copy *. Float.of_int n)

let page_cache_hit t =
  t.counters.page_cache_hits <- t.counters.page_cache_hits + 1;
  advance t t.costs.ns_page_cache_hit

let page_cache_miss t =
  t.counters.page_cache_misses <- t.counters.page_cache_misses + 1

let irq_injection t =
  t.counters.irq_injections <- t.counters.irq_injections + 1;
  advance t t.costs.ns_irq_injection

let socket_msg t =
  t.counters.socket_msgs <- t.counters.socket_msgs + 1;
  advance t t.costs.ns_socket_msg

let device_op t ~blocks =
  t.counters.device_ops <- t.counters.device_ops + 1;
  advance t (t.costs.ns_device_4k *. Float.of_int (max 1 blocks))

let fs_op t =
  t.counters.fs_ops <- t.counters.fs_ops + 1;
  advance t t.costs.ns_fs_op

(* Run [f], then restore both the time and the counters to their
   values at entry. Used by VM forking: the fork *replays* the
   baseline's deterministic boot to reconstruct in-simulation state,
   but the forked machine never booted — it was cloned — so none of
   the replay's events may be observable in virtual time or in the
   mechanism counters. The caller charges the true fork cost (a few
   syscalls mapping shared memory) afterwards. *)
let restore_section t f =
  let now = t.now in
  let saved = snapshot t in
  let restore () =
    t.now <- now;
    let c = t.counters in
    c.context_switches <- saved.context_switches;
    c.syscalls <- saved.syscalls;
    c.vmexits <- saved.vmexits;
    c.mmio_exits <- saved.mmio_exits;
    c.ptrace_stops <- saved.ptrace_stops;
    c.bytes_copied <- saved.bytes_copied;
    c.bytes_copied_remote <- saved.bytes_copied_remote;
    c.page_cache_hits <- saved.page_cache_hits;
    c.page_cache_misses <- saved.page_cache_misses;
    c.irq_injections <- saved.irq_injections;
    c.socket_msgs <- saved.socket_msgs;
    c.device_ops <- saved.device_ops;
    c.fs_ops <- saved.fs_ops
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let to_fields c =
  [
    ("context_switches", c.context_switches);
    ("syscalls", c.syscalls);
    ("vmexits", c.vmexits);
    ("mmio_exits", c.mmio_exits);
    ("ptrace_stops", c.ptrace_stops);
    ("bytes_copied", c.bytes_copied);
    ("bytes_copied_remote", c.bytes_copied_remote);
    ("page_cache_hits", c.page_cache_hits);
    ("page_cache_misses", c.page_cache_misses);
    ("irq_injections", c.irq_injections);
    ("socket_msgs", c.socket_msgs);
    ("device_ops", c.device_ops);
    ("fs_ops", c.fs_ops);
  ]

let pp_counters ppf c =
  Format.fprintf ppf
    "@[<v>ctx-switches %d; syscalls %d; vmexits %d (mmio %d); ptrace-stops \
     %d;@ copied %dB local / %dB remote; page-cache %d hit / %d miss;@ irqs \
     %d; socket msgs %d; device ops %d; fs ops %d@]"
    c.context_switches c.syscalls c.vmexits c.mmio_exits c.ptrace_stops
    c.bytes_copied c.bytes_copied_remote c.page_cache_hits c.page_cache_misses
    c.irq_injections c.socket_msgs c.device_ops c.fs_ops
