(** Simulated host processes and threads.

    A process owns a virtual address space and a descriptor table; each
    thread owns an x86-64 register file (the target of ptrace GETREGS /
    SETREGS) and an optional seccomp filter (Firecracker installs these
    per thread, which is what breaks VMSH's syscall injection unless
    disabled — paper §6.2). *)

(** Linux capabilities relevant to VMSH's privilege story. *)
type cap = CAP_SYS_PTRACE | CAP_BPF | CAP_SYS_ADMIN | CAP_SETUID
[@@deriving show, eq]

type seccomp = {
  filter_name : string;
  allows : int -> bool;  (** predicate over syscall numbers *)
}

type thread = {
  tid : int;
  mutable thread_name : string;
  regs : X86.Regs.t;
  mutable seccomp : seccomp option;
}

(** What the tracer decides after inspecting a completed syscall:
    deliver the result to the tracee, or transparently re-enter the same
    syscall (how [wrap_syscall] hides VMSH's MMIO exits from the
    hypervisor). *)
type exit_action = Deliver | Reenter

(** Callbacks a tracer installs around the tracee's syscalls
    (PTRACE_SYSCALL interception, the basis of [wrap_syscall]). *)
type syscall_hook = {
  on_entry : thread -> unit;
  on_exit : thread -> exit_action;
}

type t = {
  pid : int;
  mutable proc_name : string;
  mutable uid : int;
  mutable caps : cap list;
  aspace : Mem.Addr_space.t;
  fds : (int, Fd.t) Hashtbl.t;
  mutable next_fd : int;
  mutable threads : thread list;
  mutable tracer : int option;  (** pid of the attached tracer, if any *)
  mutable hook : syscall_hook option;
  mutable exited : bool;
  mutable mmap_backing : (int -> Mem.t) option;
      (** when set, the next mmap syscalls take their backing buffer
          from this allocator (given the requested length) instead of
          a fresh zeroed one — how a forked VMM maps guest RAM as a
          CoW overlay over a shared baseline instead of allocating
          private pages. The installer clears it when done. *)
}

val create : pid:int -> name:string -> uid:int -> t
(** A process with a single main thread (tid = pid). *)

val add_thread : t -> name:string -> thread
val main_thread : t -> thread
val find_thread : t -> tid:int -> thread option

val install_fd : t -> (num:int -> Fd.t) -> Fd.t
(** Allocate the next descriptor number and register the fd built by the
    callback for it. *)

val fd : t -> int -> Fd.t Errno.result
(** Look up an open descriptor. *)

val close_fd : t -> int -> unit Errno.result

val fd_numbers : t -> int list
(** Open descriptor numbers, ascending (contents of /proc/<pid>/fd). *)

val has_cap : t -> cap -> bool
val drop_cap : t -> cap -> unit
val drop_all_caps : t -> unit
