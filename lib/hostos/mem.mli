(** Raw byte memory and virtual address spaces.

    A {!t} is a flat byte buffer (e.g. the physical memory of a guest, or
    an anonymous mmap region in a host process). An {!Addr_space.t} maps
    virtual address ranges onto offsets inside such buffers, exactly like
    the page-granular mappings of a host process: guest physical memory
    appears inside the hypervisor's address space through one of these
    mappings (paper, Fig. 3). *)

type t
(** A contiguous byte buffer with little-endian accessors — either a
    flat private allocation or a per-4KiB-page copy-on-write overlay
    over a frozen base (see {!cow}). *)

val create : int -> t
(** [create len] allocates [len] zeroed bytes. *)

val of_bytes : bytes -> t
val length : t -> int

val page_size : int
(** Overlay granularity: 4096. *)

val cow : bytes -> t
(** [cow base] is a copy-on-write view over the frozen [base]: reads
    fall through to [base]; the first write that *diverges* from the
    base copies that 4KiB page into a private overlay. Writing bytes
    identical to the base is recorded as a silent write and copies
    nothing, so a deterministic replay against the overlay stays fully
    shared. [base] must never be mutated while any view is alive. *)

val freeze : t -> bytes
(** A private snapshot of the full current contents (base + overlay
    for CoW buffers) — the frozen image a {!cow} view forks from. *)

val is_cow : t -> bool

(** Overlay occupancy counters of a {!cow} buffer. *)
type cow_stats = {
  cs_pages_total : int;  (** pages spanned by the buffer *)
  cs_pages_copied : int;  (** privately materialised pages *)
  cs_silent_writes : int;  (** writes that matched the base (no copy) *)
  cs_resident_bytes : int;  (** private overlay footprint in bytes *)
}

val cow_stats : t -> cow_stats option

val cow_reclaim : t -> int
(** Drop private overlay pages whose content re-converged with the
    shared base (e.g. page tables a fork's boot replay rebuilt
    byte-identically) so they stop counting as resident. Returns the
    number of pages reclaimed; 0 on a flat buffer. *)
(** [None] for flat buffers. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_u64 : t -> int -> int
(** [read_u64 m off] reads 8 little-endian bytes as a non-negative OCaml
    int. The simulation restricts all stored values to 62 bits, so this
    cannot overflow. Raises [Invalid_argument] on a value with the two top
    bits set. *)

val write_u64 : t -> int -> int -> unit
val read_i32 : t -> int -> int
(** Sign-extending 32-bit read (for PREL32 relative references). *)

val write_i32 : t -> int -> int -> unit
val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit
val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
val fill : t -> int -> int -> char -> unit

val read_cstr : t -> int -> max:int -> string option
(** [read_cstr m off ~max] reads a NUL-terminated string of at most [max]
    bytes; [None] if no terminator is found within [max] bytes. *)

val write_cstr : t -> int -> string -> unit

module Addr_space : sig
  type mem = t

  (** One virtual mapping: [len] bytes at virtual address [base], backed
      by [backing] starting at [backing_off]. *)
  type mapping = {
    base : int;
    len : int;
    backing : mem;
    backing_off : int;
    tag : string;  (** human-readable origin, e.g. "guest-ram" or "mmap" *)
  }

  type t

  val create : unit -> t
  val mappings : t -> mapping list
  val map : t -> mapping -> unit
  (** Raises [Invalid_argument] if the range overlaps an existing one. *)

  val unmap : t -> base:int -> unit
  val find : t -> int -> mapping option
  (** Mapping containing the given virtual address, if any. *)

  val find_free : t -> hint:int -> len:int -> int
  (** A free virtual base of [len] bytes at or above [hint]. *)

  val resolve : t -> int -> (mem * int) option
  (** [resolve t va] is the backing buffer and offset for [va]. *)

  val read : t -> int -> int -> bytes
  (** [read t va len] reads across mapping boundaries. Raises
      [Invalid_argument] on an unmapped address. *)

  val write : t -> int -> bytes -> unit
  val read_u64 : t -> int -> int
  val write_u64 : t -> int -> int -> unit

  val cow_totals : t -> cow_stats

  val cow_reclaim_all : t -> int
  (** {!cow_reclaim} over every distinct CoW buffer mapped here;
      returns the total number of pages reclaimed. *)
  (** Summed {!cow_stats} over every distinct CoW buffer mapped in
      this address space (zeros when none is mapped) — the overlay
      footprint of a forked process. *)
end
