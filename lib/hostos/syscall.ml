module Nr = struct
  let read = 0
  let write = 1
  let close = 3
  let pread64 = 17
  let pwrite64 = 18
  let mmap = 9
  let munmap = 11
  let ioctl = 16
  let socket = 41
  let connect = 42
  let sendmsg = 46
  let recvmsg = 47
  let eventfd2 = 290
  let process_vm_readv = 310
  let process_vm_writev = 311

  let name = function
    | 0 -> "read"
    | 1 -> "write"
    | 3 -> "close"
    | 9 -> "mmap"
    | 17 -> "pread64"
    | 18 -> "pwrite64"
    | 11 -> "munmap"
    | 16 -> "ioctl"
    | 41 -> "socket"
    | 42 -> "connect"
    | 46 -> "sendmsg"
    | 47 -> "recvmsg"
    | 290 -> "eventfd2"
    | 310 -> "process_vm_readv"
    | 311 -> "process_vm_writev"
    | n -> Printf.sprintf "sys_%d" n
end

let mmap_area_base = 0x5000_0000_0000

let encode_scm_rights fds =
  let b = Bytes.create (4 + (4 * List.length fds)) in
  Bytes.set_int32_le b 0 (Int32.of_int (List.length fds));
  List.iteri (fun i fd -> Bytes.set_int32_le b (4 + (4 * i)) (Int32.of_int fd)) fds;
  b

let decode_scm_rights b =
  if Bytes.length b < 4 then None
  else
    let n = Int32.to_int (Bytes.get_int32_le b 0) in
    if n < 0 || Bytes.length b < 4 + (4 * n) then None
    else
      Some
        (List.init n (fun i -> Int32.to_int (Bytes.get_int32_le b (4 + (4 * i)))))

(* Read [len] bytes at [ptr] in the process address space, EFAULT-safe. *)
let user_read p ptr len =
  match Mem.Addr_space.read p.Proc.aspace ptr len with
  | b -> Ok b
  | exception Invalid_argument _ -> Error Errno.EFAULT

let user_write p ptr b =
  match Mem.Addr_space.write p.Proc.aspace ptr b with
  | () -> Ok ()
  | exception Invalid_argument _ -> Error Errno.EFAULT

let dispatch host p (th : Proc.thread) : int Errno.result =
  let regs = th.Proc.regs in
  let nr = regs.X86.Regs.rax in
  let a1 = regs.rdi and a2 = regs.rsi and a3 = regs.rdx in
  let open Errno in
  if nr = Nr.mmap then begin
    (* mmap(addr_hint, len, prot, flags, fd, off) — anonymous only *)
    let len = a2 in
    if len <= 0 then Error EINVAL
    else begin
      let backing =
        match p.Proc.mmap_backing with
        | Some alloc -> alloc len
        | None -> Mem.create len
      in
      let hint = if a1 <> 0 then a1 else mmap_area_base in
      let base = Mem.Addr_space.find_free p.Proc.aspace ~hint ~len in
      Mem.Addr_space.map p.Proc.aspace
        { base; len; backing; backing_off = 0; tag = "mmap" };
      Ok base
    end
  end
  else if nr = Nr.munmap then begin
    Mem.Addr_space.unmap p.Proc.aspace ~base:a1;
    Ok 0
  end
  else if nr = Nr.close then
    Result.map (fun () -> 0) (Proc.close_fd p a1)
  else if nr = Nr.read then
    match Proc.fd p a1 with
    | Error e -> Error e
    | Ok f -> (
        match f.Fd.ops.read ~len:a3 with
        | Error e -> Error e
        | Ok data -> (
            Clock.copy_bytes host.Host.clock (Bytes.length data);
            match user_write p a2 data with
            | Ok () -> Ok (Bytes.length data)
            | Error e -> Error e))
  else if nr = Nr.write then
    match Proc.fd p a1 with
    | Error e -> Error e
    | Ok f -> (
        match user_read p a2 a3 with
        | Error e -> Error e
        | Ok data ->
            Clock.copy_bytes host.Host.clock (Bytes.length data);
            f.Fd.ops.write data)
  else if nr = Nr.pread64 then
    (* pread64(fd, buf, len, off) *)
    match Proc.fd p a1 with
    | Error e -> Error e
    | Ok f -> (
        match f.Fd.ops.pread ~off:regs.r10 ~len:a3 with
        | Error e -> Error e
        | Ok data -> (
            Clock.copy_bytes host.Host.clock (Bytes.length data);
            match user_write p a2 data with
            | Ok () -> Ok (Bytes.length data)
            | Error e -> Error e))
  else if nr = Nr.pwrite64 then
    match Proc.fd p a1 with
    | Error e -> Error e
    | Ok f -> (
        match user_read p a2 a3 with
        | Error e -> Error e
        | Ok data ->
            Clock.copy_bytes host.Host.clock (Bytes.length data);
            f.Fd.ops.pwrite ~off:regs.r10 data)
  else if nr = Nr.ioctl then
    match Proc.fd p a1 with
    | Error e -> Error e
    | Ok f -> f.Fd.ops.ioctl ~code:a2 ~arg:a3
  else if nr = Nr.eventfd2 then begin
    let fd = Proc.install_fd p (fun ~num -> Fd.eventfd ~num) in
    Ok fd.Fd.num
  end
  else if nr = Nr.socket then begin
    (* Descriptor is completed by a subsequent connect; represent the
       unconnected socket as an anonymous fd replaced on connect. *)
    let fd =
      Proc.install_fd p (fun ~num -> Fd.make ~num ~label:"socket:[unconnected]" ())
    in
    Ok fd.Fd.num
  end
  else if nr = Nr.connect then begin
    (* connect(fd, path_ptr, path_len); replaces fd's slot with the
       connected socket end. *)
    match user_read p a2 a3 with
    | Error e -> Error e
    | Ok pathb -> (
        let path = Bytes.to_string pathb in
        match Host.unix_connect host p ~path with
        | Error e -> Error e
        | Ok sock ->
            Hashtbl.remove p.Proc.fds a1;
            Hashtbl.replace p.Proc.fds a1 { sock with Fd.num = a1 };
            Hashtbl.remove p.Proc.fds sock.Fd.num;
            Ok 0)
  end
  else if nr = Nr.sendmsg then begin
    (* sendmsg(fd, msg_ptr, msg_len) with the simplified SCM_RIGHTS wire
       format documented in the interface. *)
    match Proc.fd p a1 with
    | Error e -> Error e
    | Ok sock -> (
        match user_read p a2 a3 with
        | Error e -> Error e
        | Ok msg -> (
            match decode_scm_rights msg with
            | None -> Error EINVAL
            | Some fdnums ->
                let rec send = function
                  | [] -> Ok 0
                  | n :: rest -> (
                      match Proc.fd p n with
                      | Error e -> Error e
                      | Ok f -> (
                          match Host.send_fd host ~sock f with
                          | Error e -> Error e
                          | Ok () -> send rest))
                in
                send fdnums))
  end
  else if nr = Nr.recvmsg then
    match Proc.fd p a1 with
    | Error e -> Error e
    | Ok sock -> (
        match Host.recv_fd host p ~sock with
        | Error e -> Error e
        | Ok fd ->
            let msg = encode_scm_rights [ fd.Fd.num ] in
            Result.map (fun () -> fd.Fd.num) (user_write p a2 msg))
  else Error ENOSYS

let seccomp_allows (th : Proc.thread) nr =
  match th.Proc.seccomp with None -> true | Some f -> f.Proc.allows nr

let rec run_once host p th =
  let nr = th.Proc.regs.X86.Regs.rax in
  Clock.syscall host.Host.clock;
  let result =
    if not (seccomp_allows th nr) then Error Errno.EPERM
    else dispatch host p th
  in
  th.Proc.regs.X86.Regs.rax <- Errno.to_syscall_ret result;
  if Observe.enabled host.Host.observe then
    Observe.instant host.Host.observe
      ~name:("syscall:" ^ Nr.name nr)
      ~attrs:[ ("ret", Observe.I (Errno.to_syscall_ret result)) ]
      ();
  match p.Proc.hook with
  | Some hook -> (
      match hook.Proc.on_exit th with
      | Proc.Deliver -> ()
      | Proc.Reenter ->
          (* Restore the syscall number clobbered by the return value and
             run the same syscall again, invisibly to the tracee. *)
          th.Proc.regs.X86.Regs.rax <- nr;
          run_once host p th)
  | None -> ()

let invoke host p th =
  (match p.Proc.hook with Some hook -> hook.Proc.on_entry th | None -> ());
  run_once host p th

let call host p th ~nr ~args =
  if Array.length args > 6 then invalid_arg "Syscall.call: more than 6 args";
  let regs = th.Proc.regs in
  let get i = if Array.length args > i then args.(i) else 0 in
  regs.X86.Regs.rax <- nr;
  regs.rdi <- get 0;
  regs.rsi <- get 1;
  regs.rdx <- get 2;
  regs.r10 <- get 3;
  regs.r8 <- get 4;
  regs.r9 <- get 5;
  invoke host p th;
  regs.X86.Regs.rax
