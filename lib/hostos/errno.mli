(** Unix error codes used across the simulated kernel interfaces. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | ENODEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENOSPC
  | ERANGE
  | ENOSYS
  | ENOTEMPTY
  | EDQUOT
[@@deriving show, eq]

val to_code : t -> int
(** The (positive) Linux numeric value; syscalls return its negation. *)

val of_code : int -> t option

type 'a result = ('a, t) Stdlib.result

val to_syscall_ret : int result -> int
(** Encode a result in Linux syscall convention: the value itself on
    success, [-errno] on failure. *)

val of_syscall_ret : int -> int result
