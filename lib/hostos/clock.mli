(** Virtual monotonic clock and event accounting.

    The simulation does not run in real time: every modelled hardware or
    kernel event (context switch, syscall, VMEXIT, byte copy, ...) charges
    a cost in virtual nanoseconds to a {!t}. Benchmarks report durations
    read from this clock, so the measured shapes emerge from the *counted
    mechanism* (how many exits, how many copies) rather than from wall
    time of the simulator itself. *)

(** Per-event cost table, in nanoseconds (or ns/byte for copies).
    The defaults are calibrated against commodity x86 servers (an
    i9-9900K-class machine); see {!default_costs}. *)
type costs = {
  ns_context_switch : float;  (** direct cost of one context switch *)
  ns_syscall : float;  (** user->kernel->user round trip *)
  ns_vmexit : float;  (** lightweight VMEXIT handled in-kernel *)
  ns_vmexit_userspace : float;  (** VMEXIT handled by the userspace VMM *)
  ns_ptrace_stop : float;  (** one ptrace stop + resume of the tracee *)
  ns_per_byte_copy : float;  (** memcpy cost per byte *)
  ns_per_byte_remote_copy : float;  (** process_vm_readv/writev per byte *)
  ns_page_cache_hit : float;  (** serving 4KiB from the guest page cache *)
  ns_irq_injection : float;  (** posting an irqfd interrupt *)
  ns_socket_msg : float;  (** one message over a local socket (ioregionfd) *)
  ns_device_4k : float;  (** backing-store service time per 4KiB block *)
  ns_fs_op : float;  (** in-kernel file-system metadata operation *)
}

val default_costs : costs

(** Cumulative event counters. Exposed so tests can assert on mechanism
    (e.g. "vmsh-blk performs twice the context switches of qemu-blk"). *)
type counters = {
  mutable context_switches : int;
  mutable syscalls : int;
  mutable vmexits : int;
  mutable mmio_exits : int;
  mutable ptrace_stops : int;
  mutable bytes_copied : int;
  mutable bytes_copied_remote : int;
  mutable page_cache_hits : int;
  mutable page_cache_misses : int;
  mutable irq_injections : int;
  mutable socket_msgs : int;
  mutable device_ops : int;
  mutable fs_ops : int;
}

type t

val create : ?costs:costs -> unit -> t
val now_ns : t -> float
(** Current virtual time in nanoseconds since creation. *)

val counters : t -> counters
val costs : t -> costs

val advance : t -> float -> unit
(** [advance t ns] moves virtual time forward unconditionally. *)

val reset_counters : t -> unit
(** Zero all counters without touching the time. *)

val snapshot : t -> counters
(** A copy of the current counters (for differential measurements). *)

(** Charging helpers: each bumps the matching counter and advances time. *)

val context_switch : t -> unit
val syscall : t -> unit
val vmexit : t -> unit
val vmexit_userspace : t -> unit
val mmio_exit : t -> unit
val ptrace_stop : t -> unit
val copy_bytes : t -> int -> unit
val copy_bytes_remote : t -> int -> unit
val page_cache_hit : t -> unit
val page_cache_miss : t -> unit
val irq_injection : t -> unit
val socket_msg : t -> unit
val device_op : t -> blocks:int -> unit
val fs_op : t -> unit

val restore_section : t -> (unit -> 'a) -> 'a
(** [restore_section t f] runs [f] and then rewinds both the virtual
    time and the counters to their values at entry (also on
    exception). VM forking replays the baseline's deterministic boot
    inside such a section: the replay reconstructs simulator state but
    the clone never booted, so none of its events are chargeable; the
    caller accounts the true fork cost separately. *)

val to_fields : counters -> (string * int) list
(** The counters as a stably-ordered (name, value) vector — the shape
    the tracing layer diffs to attribute events to spans. *)

val pp_counters : Format.formatter -> counters -> unit
