type cap = CAP_SYS_PTRACE | CAP_BPF | CAP_SYS_ADMIN | CAP_SETUID
[@@deriving show, eq]

type seccomp = { filter_name : string; allows : int -> bool }

type thread = {
  tid : int;
  mutable thread_name : string;
  regs : X86.Regs.t;
  mutable seccomp : seccomp option;
}

type exit_action = Deliver | Reenter

type syscall_hook = {
  on_entry : thread -> unit;
  on_exit : thread -> exit_action;
}

type t = {
  pid : int;
  mutable proc_name : string;
  mutable uid : int;
  mutable caps : cap list;
  aspace : Mem.Addr_space.t;
  fds : (int, Fd.t) Hashtbl.t;
  mutable next_fd : int;
  mutable threads : thread list;
  mutable tracer : int option;
  mutable hook : syscall_hook option;
  mutable exited : bool;
  mutable mmap_backing : (int -> Mem.t) option;
}

let make_thread ~tid ~name =
  { tid; thread_name = name; regs = X86.Regs.zero (); seccomp = None }

let create ~pid ~name ~uid =
  {
    pid;
    proc_name = name;
    uid;
    caps = [];
    aspace = Mem.Addr_space.create ();
    fds = Hashtbl.create 16;
    next_fd = 3;
    threads = [ make_thread ~tid:pid ~name ];
    tracer = None;
    hook = None;
    exited = false;
    mmap_backing = None;
  }

let add_thread t ~name =
  let tid = t.pid * 1000 + List.length t.threads in
  let th = make_thread ~tid ~name in
  t.threads <- t.threads @ [ th ];
  th

let main_thread t =
  match t.threads with
  | th :: _ -> th
  | [] -> invalid_arg "Proc.main_thread: no threads"

let find_thread t ~tid = List.find_opt (fun th -> th.tid = tid) t.threads

let install_fd t build =
  let num = t.next_fd in
  t.next_fd <- num + 1;
  let fd = build ~num in
  Hashtbl.replace t.fds num fd;
  fd

let fd t num =
  match Hashtbl.find_opt t.fds num with
  | Some f when not f.Fd.closed -> Ok f
  | _ -> Error Errno.EBADF

let close_fd t num =
  match Hashtbl.find_opt t.fds num with
  | Some f when not f.Fd.closed ->
      f.Fd.closed <- true;
      f.Fd.ops.close ();
      Hashtbl.remove t.fds num;
      Ok ()
  | _ -> Error Errno.EBADF

let fd_numbers t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.fds [] |> List.sort compare

let has_cap t c = List.mem c t.caps
let drop_cap t c = t.caps <- List.filter (fun c' -> c' <> c) t.caps
let drop_all_caps t = t.caps <- []
