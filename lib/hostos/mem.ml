(* Flat buffers plus per-4KiB-page copy-on-write overlays.

   A CoW buffer shares an immutable [base] (the frozen RAM/disk of a
   baked baseline VM) and materialises a private page only on the
   first *diverging* write: writing bytes identical to the base is a
   "silent" write that leaves the page shared. Silent writes are what
   let a forked VM replay its deterministic boot against the overlay
   without copying anything — only state that genuinely differs from
   the baseline (a per-clone hostname block, attach-time injections)
   becomes resident. *)

let page_size = 4096

type overlay = {
  base : bytes;  (* frozen, shared across every fork; never written *)
  pages : (int, bytes) Hashtbl.t;  (* page index -> private copy *)
  mutable copied : int;
  mutable silent : int;
}

type backing = Flat of bytes | Cow of overlay

type t = { mutable backing : backing; len : int }

type cow_stats = {
  cs_pages_total : int;
  cs_pages_copied : int;
  cs_silent_writes : int;
  cs_resident_bytes : int;
}

let create len = { backing = Flat (Bytes.make len '\000'); len }
let of_bytes buf = { backing = Flat buf; len = Bytes.length buf }

let cow base =
  {
    backing =
      Cow { base; pages = Hashtbl.create 64; copied = 0; silent = 0 };
    len = Bytes.length base;
  }

let length t = t.len
let is_cow t = match t.backing with Cow _ -> true | Flat _ -> false

let cow_stats t =
  match t.backing with
  | Flat _ -> None
  | Cow c ->
      Some
        {
          cs_pages_total = (t.len + page_size - 1) / page_size;
          cs_pages_copied = c.copied;
          cs_silent_writes = c.silent;
          cs_resident_bytes = c.copied * page_size;
        }

(* Page [pi] of a CoW buffer as (buffer, offset of the page's first
   byte inside that buffer): the private copy when one exists, else a
   window into the shared base. *)
let cow_page c pi =
  match Hashtbl.find_opt c.pages pi with
  | Some p -> (p, 0)
  | None -> (c.base, pi * page_size)

let cow_page_len t pi = min page_size (t.len - (pi * page_size))

(* Private copy of page [pi], materialising it from the base first if
   needed (the caller has already decided the write diverges). *)
let cow_page_rw t c pi =
  match Hashtbl.find_opt c.pages pi with
  | Some p -> p
  | None ->
      let p = Bytes.sub c.base (pi * page_size) (cow_page_len t pi) in
      Hashtbl.add c.pages pi p;
      c.copied <- c.copied + 1;
      p

let region_equal buf boff src soff len =
  let rec go i =
    i >= len
    || (Bytes.get buf (boff + i) = Bytes.get src (soff + i) && go (i + 1))
  in
  go 0

(* Write [len] bytes of [src] at [soff] into a CoW buffer at [off],
   page by page; per page, an identical write is recorded as silent
   and copies nothing. *)
let cow_write t c off src soff len =
  let rec go off soff len =
    if len > 0 then begin
      let pi = off / page_size in
      let poff = off mod page_size in
      let chunk = min len (page_size - poff) in
      (match Hashtbl.find_opt c.pages pi with
      | Some p -> Bytes.blit src soff p poff chunk
      | None ->
          if region_equal c.base ((pi * page_size) + poff) src soff chunk
          then c.silent <- c.silent + 1
          else Bytes.blit src soff (cow_page_rw t c pi) poff chunk);
      go (off + chunk) (soff + chunk) (len - chunk)
    end
  in
  go off soff len

let cow_read c off dst doff len =
  let rec go off doff len =
    if len > 0 then begin
      let pi = off / page_size in
      let poff = off mod page_size in
      let chunk = min len (page_size - poff) in
      let buf, pbase = cow_page c pi in
      Bytes.blit buf (pbase + poff) dst doff chunk;
      go (off + chunk) (doff + chunk) (len - chunk)
    end
  in
  go off doff len

let freeze t =
  match t.backing with
  | Flat buf -> Bytes.sub buf 0 t.len
  | Cow c ->
      let out = Bytes.sub c.base 0 t.len in
      Hashtbl.iter
        (fun pi p -> Bytes.blit p 0 out (pi * page_size) (Bytes.length p))
        c.pages;
      out

(* Drop private pages whose content re-converged with the base: a
   fork's boot replay must rewrite the page-table arena from scratch
   (it cannot read the baseline's future tables), and once rebuilt the
   pages are byte-identical to the frozen base again — sharing them
   back keeps the clone's resident footprint at its true divergence.
   Returns the number of pages reclaimed. *)
let cow_reclaim t =
  match t.backing with
  | Flat _ -> 0
  | Cow c ->
      let dead =
        Hashtbl.fold
          (fun pi p acc ->
            if region_equal c.base (pi * page_size) p 0 (Bytes.length p) then
              pi :: acc
            else acc)
          c.pages []
      in
      List.iter
        (fun pi ->
          Hashtbl.remove c.pages pi;
          c.copied <- c.copied - 1)
        dead;
      List.length dead

(* --- scalar accessors ---

   The Flat arm is the pre-overlay fast path (guest RAM of a
   cold-booted VM, every mmap). The Cow arm serves straight from the
   shared base or the private page; scalars that straddle a page
   boundary fall back to the byte-wise path. *)

let read_u8 t off =
  match t.backing with
  | Flat buf -> Char.code (Bytes.get buf off)
  | Cow c ->
      let buf, pbase = cow_page c (off / page_size) in
      Char.code (Bytes.get buf (pbase + (off mod page_size)))

let scalar_ro t off n =
  (* (buffer, offset) holding [n] bytes at [off], for reads only *)
  match t.backing with
  | Flat buf -> (buf, off)
  | Cow c ->
      let pi = off / page_size in
      let poff = off mod page_size in
      if poff + n <= page_size then
        let buf, pbase = cow_page c pi in
        (buf, pbase + poff)
      else begin
        let tmp = Bytes.create n in
        cow_read c off tmp 0 n;
        (tmp, 0)
      end

let scalar_write t off n (put : bytes -> int -> unit) =
  match t.backing with
  | Flat buf -> put buf off
  | Cow c ->
      let tmp = Bytes.create n in
      put tmp 0;
      cow_write t c off tmp 0 n

let read_u16 t off =
  let buf, o = scalar_ro t off 2 in
  Bytes.get_uint16_le buf o

let write_u16 t off v =
  scalar_write t off 2 (fun b o -> Bytes.set_uint16_le b o (v land 0xffff))

let read_u32 t off =
  let buf, o = scalar_ro t off 4 in
  Int32.to_int (Bytes.get_int32_le buf o) land 0xffffffff

let write_u32 t off v =
  scalar_write t off 4 (fun b o -> Bytes.set_int32_le b o (Int32.of_int v))

let read_u64 t off =
  let buf, o = scalar_ro t off 8 in
  let v = Bytes.get_int64_le buf o in
  if Int64.shift_right_logical v 62 <> 0L then
    invalid_arg
      (Printf.sprintf "Mem.read_u64: value 0x%Lx at offset %d exceeds 62 bits"
         v off);
  Int64.to_int v

let write_u64 t off v =
  scalar_write t off 8 (fun b o -> Bytes.set_int64_le b o (Int64.of_int v))

let read_i32 t off =
  let buf, o = scalar_ro t off 4 in
  Int32.to_int (Bytes.get_int32_le buf o)

let write_i32 t off v =
  scalar_write t off 4 (fun b o -> Bytes.set_int32_le b o (Int32.of_int v))

let write_u8 t off v =
  scalar_write t off 1 (fun b o -> Bytes.set b o (Char.chr (v land 0xff)))

let read_bytes t off len =
  match t.backing with
  | Flat buf -> Bytes.sub buf off len
  | Cow c ->
      let out = Bytes.create len in
      cow_read c off out 0 len;
      out

let write_bytes t off b =
  match t.backing with
  | Flat buf -> Bytes.blit b 0 buf off (Bytes.length b)
  | Cow c -> cow_write t c off b 0 (Bytes.length b)

let blit ~src ~src_off ~dst ~dst_off ~len =
  match (src.backing, dst.backing) with
  | Flat s, Flat d -> Bytes.blit s src_off d dst_off len
  | Flat s, Cow c -> cow_write dst c dst_off s src_off len
  | Cow c, Flat d -> cow_read c src_off d dst_off len
  | Cow _, Cow _ ->
      let tmp = read_bytes src src_off len in
      write_bytes dst dst_off tmp

let fill t off len ch =
  match t.backing with
  | Flat buf -> Bytes.fill buf off len ch
  | Cow c ->
      let tmp = Bytes.make (min len page_size) ch in
      let rec go off len =
        if len > 0 then begin
          let chunk = min len (page_size - (off mod page_size)) in
          cow_write t c off tmp 0 chunk;
          go (off + chunk) (len - chunk)
        end
      in
      go off len

let read_cstr t off ~max =
  let limit = min (off + max) (length t) in
  let rec scan i =
    if i >= limit then None
    else if read_u8 t i = 0 then Some (Bytes.to_string (read_bytes t off (i - off)))
    else scan (i + 1)
  in
  scan off

let write_cstr t off s =
  write_bytes t off (Bytes.of_string s);
  write_u8 t (off + String.length s) 0

module Addr_space = struct
  type mem = t

  type mapping = {
    base : int;
    len : int;
    backing : mem;
    backing_off : int;
    tag : string;
  }

  type nonrec t = { mutable maps : mapping list }

  let create () = { maps = [] }
  let mappings t = t.maps

  let overlaps a b =
    a.base < b.base + b.len && b.base < a.base + a.len

  let map t m =
    if m.len <= 0 then invalid_arg "Addr_space.map: empty mapping";
    (match List.find_opt (overlaps m) t.maps with
    | Some existing ->
        invalid_arg
          (Printf.sprintf
             "Addr_space.map: [0x%x,+0x%x) overlaps %s at [0x%x,+0x%x)" m.base
             m.len existing.tag existing.base existing.len)
    | None -> ());
    t.maps <- List.sort (fun a b -> compare a.base b.base) (m :: t.maps)

  let unmap t ~base = t.maps <- List.filter (fun m -> m.base <> base) t.maps

  let find t va =
    List.find_opt (fun m -> va >= m.base && va < m.base + m.len) t.maps

  let find_free t ~hint ~len =
    let rec probe base = function
      | [] -> base
      | m :: rest ->
          if base + len <= m.base then base
          else probe (max base (m.base + m.len)) rest
    in
    probe hint (List.filter (fun m -> m.base + m.len > hint) t.maps)

  let resolve t va =
    match find t va with
    | None -> None
    | Some m -> Some (m.backing, m.backing_off + (va - m.base))

  let rec read t va len =
    if len = 0 then Bytes.empty
    else
      match find t va with
      | None -> invalid_arg (Printf.sprintf "Addr_space.read: 0x%x unmapped" va)
      | Some m ->
          let avail = m.base + m.len - va in
          let chunk = min avail len in
          let part = read_bytes m.backing (m.backing_off + (va - m.base)) chunk in
          if chunk = len then part
          else Bytes.cat part (read t (va + chunk) (len - chunk))

  let rec write t va b =
    let len = Bytes.length b in
    if len > 0 then
      match find t va with
      | None -> invalid_arg (Printf.sprintf "Addr_space.write: 0x%x unmapped" va)
      | Some m ->
          let avail = m.base + m.len - va in
          let chunk = min avail len in
          blit ~src:(of_bytes b) ~src_off:0 ~dst:m.backing
            ~dst_off:(m.backing_off + (va - m.base)) ~len:chunk;
          if chunk < len then
            write t (va + chunk) (Bytes.sub b chunk (len - chunk))

  let read_u64 t va =
    match resolve t va with
    | Some (m, off) when off + 8 <= length m -> read_u64 m off
    | _ -> (
        let b = read t va 8 in
        match read_u64 (of_bytes b) 0 with v -> v)

  let write_u64 t va v =
    match resolve t va with
    | Some (m, off) when off + 8 <= length m -> write_u64 m off v
    | _ ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int v);
        write t va b

  (* Reclaim re-converged private pages across every distinct CoW
     buffer mapped in this address space (post-replay cleanup of a
     forked VMM). *)
  let cow_reclaim_all t =
    let seen = ref [] in
    List.fold_left
      (fun acc m ->
        if List.memq m.backing !seen then acc
        else begin
          seen := m.backing :: !seen;
          acc + cow_reclaim m.backing
        end)
      0 (mappings t)

  (* Overlay totals for every distinct CoW buffer mapped in this
     address space (a forked VMM maps guest RAM and its bounce buffer
     over the baseline; the disk backend is counted by its owner). *)
  let cow_totals t =
    let seen = ref [] in
    List.fold_left
      (fun acc m ->
        if List.memq m.backing !seen then acc
        else begin
          seen := m.backing :: !seen;
          match cow_stats m.backing with
          | None -> acc
          | Some s ->
              {
                cs_pages_total = acc.cs_pages_total + s.cs_pages_total;
                cs_pages_copied = acc.cs_pages_copied + s.cs_pages_copied;
                cs_silent_writes = acc.cs_silent_writes + s.cs_silent_writes;
                cs_resident_bytes = acc.cs_resident_bytes + s.cs_resident_bytes;
              }
        end)
      {
        cs_pages_total = 0;
        cs_pages_copied = 0;
        cs_silent_writes = 0;
        cs_resident_bytes = 0;
      }
      t.maps
end
