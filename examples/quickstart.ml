(* Quickstart: boot a microVM, attach VMSH to its hypervisor process and
   drive the interactive shell — the docker-exec-for-VMs experience of
   the paper's Fig. 1.

     dune exec examples/quickstart.exe *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Guest = Linux_guest.Guest

let step fmt = Printf.printf ("\n--- " ^^ fmt ^^ " ---\n%!")

let () =
  (* 1. A host machine with a QEMU-style hypervisor and a tiny guest.
     The guest image is deliberately minimal: an application and its
     config — no shell, no coreutils, nothing to debug with. *)
  step "booting a minimal VM (no tools inside)";
  let host = H.Host.create ~seed:2024 () in
  let disk = Blockdev.Backend.create ~clock:host.H.Host.clock ~blocks:2048 () in
  let rootfs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p rootfs "/dev");
  ignore (Sfs.mkdir_p rootfs "/etc");
  ignore (Sfs.write_file rootfs "/etc/hostname" (Bytes.of_string "prod-vm-17\n"));
  ignore (Sfs.write_file rootfs "/etc/app.conf" (Bytes.of_string "workers=4\n"));
  Sfs.sync rootfs;
  let vmm = Vmm.create host ~profile:Hypervisor.Profile.qemu ~disk () in
  let guest = Vmm.boot vmm ~version:Linux_guest.Kernel_version.V5_10 in
  Printf.printf "guest booted: %s\n"
    (List.hd (Guest.dmesg guest));

  (* 2. A tools image lives on the host — it was never installed in the
     VM. VMSH will serve it over its own block device. *)
  step "packing the tools image on the host";
  let fs_image =
    match
      Blockdev.Image.pack ~clock:host.H.Host.clock
        [
          Blockdev.Image.file "/bin/busybox" 800_000;
          Blockdev.Image.file ~content:"#!/bin/sh\necho diagnostics\n"
            "/bin/diagnose" 27;
        ]
    with
    | Ok (backend, _) -> backend
    | Error e -> failwith (H.Errno.show e)
  in

  (* 3. Attach: no guest agent, no hypervisor API — just the pid. *)
  step "attaching VMSH to hypervisor pid %d" (Vmm.pid vmm);
  let session =
    match
      Vmsh.Attach.attach host ~hypervisor_pid:(Vmm.pid vmm) ~fs_image
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | Ok s -> s
    | Error e -> failwith ("attach failed: " ^ Vmsh.Vmsh_error.to_string e)
  in
  let anal = Vmsh.Attach.analysis session in
  Printf.printf
    "side-loaded: kernel found at 0x%x, %d exported symbols recovered, \
     version %s\n"
    anal.Vmsh.Symbol_analysis.kernel_base
    (List.length anal.Vmsh.Symbol_analysis.symbols)
    (Linux_guest.Kernel_version.to_string anal.Vmsh.Symbol_analysis.version);

  (* 4. Use the shell. The overlay's root is the tools image; the real
     guest is reachable (but protected) under /var/lib/vmsh. *)
  step "interacting with the guest overlay shell";
  print_string (Vmsh.Attach.console_recv session);
  List.iter
    (fun cmd ->
      Printf.printf "vmsh> %s\n" cmd;
      print_string (Vmsh.Attach.console_roundtrip session cmd))
    [ "ls /bin"; "hostname"; "cat /var/lib/vmsh/etc/app.conf"; "ps"; "mounts" ];

  (* 5. Detach: the guest never noticed beyond a dmesg line. *)
  step "detaching";
  (match Vmsh.Attach.detach session with
  | Ok () -> ()
  | Error e -> failwith (Vmsh.Vmsh_error.to_string e));
  Printf.printf "guest kernel log tail:\n";
  List.iter (Printf.printf "  %s\n")
    (List.filteri (fun i _ -> i >= max 0 (List.length (Guest.dmesg guest) - 4))
       (Guest.dmesg guest));
  Printf.printf "\nquickstart done.\n"
