(* The vmsh command-line tool.

   Because this reproduction runs against a simulated host (see
   DESIGN.md), every subcommand first stands up a simulated machine with
   a running hypervisor, then exercises the *real* VMSH code paths
   against it:

     vmsh attach   -- attach to a freshly booted VM and run shell commands
     vmsh matrix   -- the Table-1 support matrix
     vmsh debloat  -- trace + strip one of the top-40 images
     vmsh rescue   -- the password-reset use case end to end *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module KV = Linux_guest.Kernel_version
module Guest = Linux_guest.Guest
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let profile_of_string = function
  | "qemu" -> Ok Profile.qemu
  | "kvmtool" -> Ok Profile.kvmtool
  | "firecracker" -> Ok Profile.firecracker
  | "crosvm" -> Ok Profile.crosvm
  | "cloud-hypervisor" -> Ok Profile.cloud_hypervisor
  | s -> Error (`Msg ("unknown hypervisor: " ^ s))

let profile_conv =
  Arg.conv
    ( profile_of_string,
      fun ppf p -> Format.pp_print_string ppf p.Profile.prof_name )

let version_conv =
  Arg.conv
    ( (fun s ->
        match KV.of_string s with
        | Some v -> Ok v
        | None -> Error (`Msg ("unknown kernel version: " ^ s))),
      fun ppf v -> Format.pp_print_string ppf (KV.to_string v) )

let transport_conv =
  Arg.conv
    ( (function
      | "ioregionfd" -> Ok Vmsh.Devices.Ioregionfd
      | "wrap_syscall" -> Ok Vmsh.Devices.Wrap_syscall
      | s -> Error (`Msg ("unknown transport: " ^ s))),
      fun ppf t -> Format.pp_print_string ppf (Vmsh.Devices.show_transport t) )

let boot_vm ~profile ~version ~seed =
  let h = H.Host.create ~seed () in
  let disk = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:4096 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string "cli-vm\n"));
  Sfs.sync fs;
  let disable_seccomp = profile.Profile.prof_name = "Firecracker" in
  let vmm = Vmm.create h ~profile ~disk ~disable_seccomp () in
  let g = Vmm.boot vmm ~version in
  (h, vmm, g)

let tools_image clock =
  match
    Blockdev.Image.pack ~clock
      [ Blockdev.Image.file "/bin/busybox" 800_000 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith (H.Errno.show e)

(* --- attach --- *)

(* Sync the virtual clock's counters into the metrics registry so the
   JSON snapshot carries them alongside the histograms. *)
let snapshot_clock_metrics h =
  let obs = h.H.Host.observe in
  let mx = Observe.metrics obs in
  Observe.Metrics.set_gauge
    (Observe.Metrics.gauge mx "clock.virtual_ns")
    (Observe.now obs);
  List.iter
    (fun (k, v) ->
      Observe.Metrics.set_counter (Observe.Metrics.counter mx ("clock." ^ k)) v)
    (H.Clock.to_fields (H.Clock.counters h.H.Host.clock))

let write_observe_outputs h ~trace_out ~metrics_out =
  let obs = h.H.Host.observe in
  let ok = ref true in
  let write path data =
    match open_out path with
    | oc ->
        output_string oc data;
        close_out oc;
        true
    | exception Sys_error msg ->
        Printf.eprintf "vmsh: cannot write output: %s\n" msg;
        ok := false;
        false
  in
  (match trace_out with
  | None -> ()
  | Some path ->
      if write path (Observe.Export.chrome_trace obs) then
        Printf.printf
          "trace written to %s (load it in Perfetto or chrome://tracing)\n" path);
  (match metrics_out with
  | None -> ()
  | Some path ->
      snapshot_clock_metrics h;
      if write path (Observe.Export.metrics_json obs) then
        Printf.printf "metrics written to %s\n" path);
  !ok

let attach_cmd =
  let run verbose profile version transport commands net_echo trace_out
      metrics_out =
    setup_logs verbose;
    let h, vmm, g = boot_vm ~profile ~version ~seed:11 in
    let obs = h.H.Host.observe in
    if verbose || trace_out <> None || metrics_out <> None then
      Observe.enable obs;
    if verbose then
      Observe.set_listener obs
        (Some (fun e -> Format.eprintf "%a@." Observe.Export.pp_event e));
    Observe.instant obs ~name:"cli.booted" ();
    Printf.printf "booted %s with guest kernel v%s (hypervisor pid %d)\n"
      profile.Profile.prof_name (KV.to_string version) (Vmm.pid vmm);
    let net =
      if net_echo > 0 then
        Some (Workloads.Traffic.make_network h ~mode:Workloads.Traffic.Echo ())
      else None
    in
    let config = { Vmsh.Attach.default_config with transport; net } in
    match
      Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
        ~fs_image:(tools_image h.H.Host.clock)
        ~config
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | Error e ->
        ignore (write_observe_outputs h ~trace_out ~metrics_out);
        Printf.eprintf "attach failed: %s\n" e;
        exit 1
    | Ok session ->
        Observe.instant obs ~name:"cli.attached" ();
        let anal = Vmsh.Attach.analysis session in
        Printf.printf
          "attached (%s): kernel at 0x%x, %d symbols, ksymtab layout %s\n"
          (Vmsh.Devices.show_transport transport)
          anal.Vmsh.Symbol_analysis.kernel_base
          (List.length anal.Vmsh.Symbol_analysis.symbols)
          (match anal.Vmsh.Symbol_analysis.layout with
          | KV.Prel32 -> "prel32"
          | KV.Absolute_value_first -> "absolute (value first)"
          | KV.Absolute_name_first -> "absolute (name first)");
        ignore (Vmsh.Attach.console_recv session);
        let commands = if commands = [] then [ "ls /"; "hostname"; "ps" ] else commands in
        List.iter
          (fun cmd ->
            Printf.printf "vmsh> %s\n%s" cmd
              (Vmsh.Attach.console_roundtrip session cmd))
          commands;
        if net_echo > 0 then begin
          let r =
            Workloads.Traffic.run_client vmm g ~requests:net_echo
              ~payload_size:64 ~mode:Workloads.Traffic.Echo ()
          in
          Format.printf "net echo over vmsh-net: %a@."
            Workloads.Traffic.pp_result r
        end;
        Vmsh.Attach.detach session;
        Observe.instant obs ~name:"cli.detached" ();
        let outputs_ok = write_observe_outputs h ~trace_out ~metrics_out in
        Printf.printf "detached; %d block requests served by vmsh-blk\n"
          (Vmsh.Devices.stats_requests (Vmsh.Attach.devices session));
        if not outputs_ok then exit 1
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.") in
  let profile =
    Arg.(
      value
      & opt profile_conv Profile.qemu
      & info [ "hypervisor" ] ~docv:"NAME"
          ~doc:"Hypervisor: qemu, kvmtool, firecracker, crosvm, cloud-hypervisor.")
  in
  let version =
    Arg.(
      value
      & opt version_conv KV.V5_10
      & info [ "kernel" ] ~docv:"VER" ~doc:"Guest kernel LTS version.")
  in
  let transport =
    Arg.(
      value
      & opt transport_conv Vmsh.Devices.Ioregionfd
      & info [ "transport" ] ~docv:"T" ~doc:"MMIO transport: ioregionfd or wrap_syscall.")
  in
  let commands =
    Arg.(value & opt_all string [] & info [ "exec"; "e" ] ~docv:"CMD"
           ~doc:"Shell command to run (repeatable).")
  in
  let net_echo =
    Arg.(
      value
      & opt int 0
      & info [ "net-echo" ] ~docv:"N"
          ~doc:
            "Cable the side-loaded virtio-net NIC to a simulated network \
             and run N echo request/response round-trips after the shell \
             commands.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON of the attach (virtual-ns \
             timestamps; load in Perfetto or chrome://tracing).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write a flat JSON snapshot of counters/gauges/histograms.")
  in
  Cmd.v
    (Cmd.info "attach" ~doc:"Boot a VM and attach a VMSH shell to it")
    Term.(
      const run $ verbose $ profile $ version $ transport $ commands
      $ net_echo $ trace_out $ metrics_out)

(* --- matrix --- *)

let matrix_cmd =
  let run () =
    Printf.printf "%-18s %s\n" "hypervisor" "vmsh attach";
    List.iter
      (fun profile ->
        let h, vmm, _ = boot_vm ~profile ~version:KV.V5_10 ~seed:21 in
        let result =
          match
            Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
              ~fs_image:(tools_image h.H.Host.clock)
              ~pump:(fun () -> Vmm.run_until_idle vmm)
              ()
          with
          | Ok _ -> "supported"
          | Error _ -> "unsupported"
        in
        Printf.printf "%-18s %s\n" profile.Profile.prof_name result)
      Profile.all;
    Printf.printf "\n%-10s %s\n" "kernel" "vmsh attach";
    List.iter
      (fun version ->
        let h, vmm, _ = boot_vm ~profile:Profile.qemu ~version ~seed:23 in
        let result =
          match
            Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
              ~fs_image:(tools_image h.H.Host.clock)
              ~pump:(fun () -> Vmm.run_until_idle vmm)
              ()
          with
          | Ok _ -> "supported"
          | Error e -> "FAILED: " ^ e
        in
        Printf.printf "v%-9s %s\n" (KV.to_string version) result)
      KV.all_lts
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Print the hypervisor/kernel support matrix (Table 1)")
    Term.(const run $ const ())

(* --- debloat --- *)

let debloat_cmd =
  let run name =
    match Debloat.Dataset.find name with
    | None ->
        Printf.eprintf "unknown image %S; available: %s\n" name
          (String.concat ", "
             (List.map (fun i -> i.Debloat.Dataset.iname) (Debloat.Dataset.top40 ())));
        exit 1
    | Some image ->
        let h = H.Host.create ~seed:33 () in
        let r = Debloat.Analyze.analyze h image in
        let scale = Debloat.Dataset.size_scale in
        let mb b = Float.of_int (b * scale) /. 1048576.0 in
        Printf.printf
          "%s: %.1f MB -> %.1f MB (%.0f%% reduction); app still works: %b\n"
          r.Debloat.Analyze.r_name
          (mb r.Debloat.Analyze.before_bytes)
          (mb r.Debloat.Analyze.after_bytes)
          r.Debloat.Analyze.reduction_pct r.Debloat.Analyze.still_works
  in
  let image_arg =
    Arg.(value & pos 0 string "nginx" & info [] ~docv:"IMAGE" ~doc:"Image name.")
  in
  Cmd.v
    (Cmd.info "debloat" ~doc:"Trace and strip one of the top-40 images (Fig. 8)")
    Term.(const run $ image_arg)

(* --- monitor --- *)

let monitor_cmd =
  let run () =
    let h, vmm, g = boot_vm ~profile:Profile.qemu ~version:KV.V5_10 ~seed:51 in
    (* some workload to observe *)
    Vmm.in_guest vmm (fun () ->
        ignore
          (Guest.spawn_container g ~name:"web"
             ~image:[ ("/etc/nginx.conf", "worker_processes 4;\n") ]));
    match Usecases.Monitor.collect h ~vmm with
    | Error e ->
        Printf.eprintf "monitor failed: %s\n" e;
        exit 1
    | Ok report -> Format.printf "%a@." Usecases.Monitor.pp_report report
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Collect guest-OS metrics (process list, disk usage) without an agent")
    Term.(const run $ const ())

(* --- rescue --- *)

let rescue_cmd =
  let run user password =
    let h, vmm, g = boot_vm ~profile:Profile.qemu ~version:KV.V5_10 ~seed:41 in
    Vmm.in_guest vmm (fun () ->
        ignore
          (Guest.file_write g ~ns:(Guest.root_ns g) "/etc/shadow"
             (Bytes.of_string (user ^ ":$6$lost$00000000:19000:0:99999:7:::\n"))));
    match Usecases.Rescue.reset_password h ~vmm ~user ~password with
    | Error e ->
        Printf.eprintf "rescue failed: %s\n" e;
        exit 1
    | Ok _ ->
        Printf.printf "password for %S reset on the running VM: %b\n" user
          (Usecases.Rescue.verify_password_set vmm g ~user ~password)
  in
  let user = Arg.(value & pos 0 string "root" & info [] ~docv:"USER") in
  let password = Arg.(value & pos 1 string "hunter2" & info [] ~docv:"PASSWORD") in
  Cmd.v
    (Cmd.info "rescue" ~doc:"Reset a password in a running VM (use case #2)")
    Term.(const run $ user $ password)

let () =
  let info =
    Cmd.info "vmsh" ~version:"0.1.0"
      ~doc:"Hypervisor-agnostic guest overlays for VMs (simulated reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ attach_cmd; matrix_cmd; debloat_cmd; rescue_cmd; monitor_cmd ]))
