(* The vmsh command-line tool.

   Because this reproduction runs against a simulated host (see
   DESIGN.md), every subcommand first stands up a simulated machine with
   a running hypervisor, then exercises the *real* VMSH code paths
   against it:

     vmsh attach   -- attach to a freshly booted VM and run shell commands
     vmsh matrix   -- the Table-1 support matrix
     vmsh debloat  -- trace + strip one of the top-40 images
     vmsh rescue   -- the password-reset use case end to end *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module KV = Linux_guest.Kernel_version
module Guest = Linux_guest.Guest
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let profile_of_string = function
  | "qemu" -> Ok Profile.qemu
  | "kvmtool" -> Ok Profile.kvmtool
  | "firecracker" -> Ok Profile.firecracker
  | "crosvm" -> Ok Profile.crosvm
  | "cloud-hypervisor" -> Ok Profile.cloud_hypervisor
  | s -> Error (`Msg ("unknown hypervisor: " ^ s))

let profile_conv =
  Arg.conv
    ( profile_of_string,
      fun ppf p -> Format.pp_print_string ppf p.Profile.prof_name )

let version_conv =
  Arg.conv
    ( (fun s ->
        match KV.of_string s with
        | Some v -> Ok v
        | None -> Error (`Msg ("unknown kernel version: " ^ s))),
      fun ppf v -> Format.pp_print_string ppf (KV.to_string v) )

let transport_conv =
  Arg.conv
    ( (function
      | "ioregionfd" -> Ok Vmsh.Devices.Ioregionfd
      | "wrap_syscall" -> Ok Vmsh.Devices.Wrap_syscall
      | s -> Error (`Msg ("unknown transport: " ^ s))),
      fun ppf t -> Format.pp_print_string ppf (Vmsh.Devices.show_transport t) )

let log_level_conv =
  Arg.conv
    ( (fun s ->
        match Observe.level_of_string s with
        | Some l -> Ok l
        | None -> Error (`Msg ("unknown log level: " ^ s))),
      fun ppf l -> Format.pp_print_string ppf (Observe.level_to_string l) )

let log_level_arg =
  Arg.(
    value
    & opt (some log_level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Structured, virtual-time-stamped stderr logging: quiet, info or \
           debug. Default quiet (stderr byte-identical to a build without \
           logging).")

let boot_vm_on h ~profile ~version =
  let disk = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:4096 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev disk) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.mkdir_p fs "/etc");
  ignore (Sfs.write_file fs "/etc/hostname" (Bytes.of_string "cli-vm\n"));
  Sfs.sync fs;
  let disable_seccomp = profile.Profile.prof_name = "Firecracker" in
  let vmm = Vmm.create h ~profile ~disk ~disable_seccomp () in
  let g = Vmm.boot vmm ~version in
  (vmm, g)

let boot_vm ~profile ~version ~seed =
  let h = H.Host.create ~seed () in
  let vmm, g = boot_vm_on h ~profile ~version in
  (h, vmm, g)

let tools_image clock =
  match
    Blockdev.Image.pack ~clock
      [ Blockdev.Image.file "/bin/busybox" 800_000 ]
  with
  | Ok (backend, _) -> backend
  | Error e -> failwith (H.Errno.show e)

(* --- attach --- *)

(* Sync the virtual clock's counters into the metrics registry so the
   JSON snapshot carries them alongside the histograms. *)
let snapshot_clock_metrics h =
  let obs = h.H.Host.observe in
  let mx = Observe.metrics obs in
  Observe.Metrics.set_gauge
    (Observe.Metrics.gauge mx "clock.virtual_ns")
    (Observe.now obs);
  List.iter
    (fun (k, v) ->
      Observe.Metrics.set_counter (Observe.Metrics.counter mx ("clock." ^ k)) v)
    (H.Clock.to_fields (H.Clock.counters h.H.Host.clock))

let write_observe_outputs h ~trace_out ~metrics_out =
  let obs = h.H.Host.observe in
  let ok = ref true in
  let write path data =
    match open_out path with
    | oc ->
        output_string oc data;
        close_out oc;
        true
    | exception Sys_error msg ->
        Printf.eprintf "vmsh: cannot write output: %s\n" msg;
        ok := false;
        false
  in
  (match trace_out with
  | None -> ()
  | Some path ->
      if write path (Observe.Export.chrome_trace obs) then
        Printf.printf
          "trace written to %s (load it in Perfetto or chrome://tracing)\n" path);
  (match metrics_out with
  | None -> ()
  | Some path ->
      snapshot_clock_metrics h;
      if write path (Observe.Export.metrics_json obs) then
        Printf.printf "metrics written to %s\n" path);
  !ok

let attach_cmd =
  let run verbose profile version transport commands net_echo detach_after
      hostile trace_out metrics_out log_level =
    setup_logs verbose;
    let hostile =
      Option.map
        (fun s ->
          match Hostile.of_name s with
          | Some c -> c
          | None ->
              Printf.eprintf "attach: unknown hostile class %S (one of: %s)\n"
                s
                (String.concat ", " (List.map Hostile.name Hostile.all));
              exit 2)
        hostile
    in
    let h, vmm, g = boot_vm ~profile ~version ~seed:11 in
    let obs = h.H.Host.observe in
    Option.iter (Observe.set_log_level obs) log_level;
    if verbose || trace_out <> None || metrics_out <> None then
      Observe.enable obs;
    if verbose then
      Observe.set_listener obs
        (Some (fun e -> Format.eprintf "%a@." Observe.Export.pp_event e));
    Observe.instant obs ~name:"cli.booted" ();
    Printf.printf "booted %s with guest kernel v%s (hypervisor pid %d)\n"
      profile.Profile.prof_name (KV.to_string version) (Vmm.pid vmm);
    let net =
      if net_echo > 0 then
        Some (Workloads.Traffic.make_network h ~mode:Workloads.Traffic.Echo ())
      else None
    in
    let config =
      let c =
        Vmsh.Attach.Config.with_transport transport
          (Vmsh.Attach.Config.make ())
      in
      match net with
      | Some (fabric, port) ->
          Vmsh.Attach.Config.with_net { Vmsh.Attach.fabric; port } c
      | None -> c
    in
    (* an adversarial guest races the attach from inside: one seeded
       engine step at every cooperative yield point of the attach path *)
    let config =
      match hostile with
      | None -> config
      | Some cls ->
          let plan = Faults.create ~seed:11 ~rate:0.0 () in
          let eng = Hostile.create ~seed:11 ~cls vmm in
          Faults.set_on_yield plan (Some (fun _ -> Hostile.step eng));
          Printf.printf "hostile guest armed: %s\n" (Hostile.name cls);
          Vmsh.Attach.Config.with_faults plan config
    in
    let before =
      if detach_after then Some (Vmsh.Snapshot.capture (Vmm.kvm_vm vmm))
      else None
    in
    match
      Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
        ~fs_image:(tools_image h.H.Host.clock)
        ~config
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | Error e ->
        ignore (write_observe_outputs h ~trace_out ~metrics_out);
        Printf.eprintf "attach failed: %s\n" (Vmsh.Vmsh_error.to_string e);
        exit 1
    | Ok session ->
        Observe.instant obs ~name:"cli.attached" ();
        let anal = Vmsh.Attach.analysis session in
        Printf.printf
          "attached (%s): kernel at 0x%x, %d symbols, ksymtab layout %s\n"
          (Vmsh.Devices.show_transport transport)
          anal.Vmsh.Symbol_analysis.kernel_base
          (List.length anal.Vmsh.Symbol_analysis.symbols)
          (match anal.Vmsh.Symbol_analysis.layout with
          | KV.Prel32 -> "prel32"
          | KV.Absolute_value_first -> "absolute (value first)"
          | KV.Absolute_name_first -> "absolute (name first)");
        ignore (Vmsh.Attach.console_recv session);
        let commands = if commands = [] then [ "ls /"; "hostname"; "ps" ] else commands in
        List.iter
          (fun cmd ->
            Printf.printf "vmsh> %s\n%s" cmd
              (Vmsh.Attach.console_roundtrip session cmd))
          commands;
        if net_echo > 0 then begin
          let r =
            Workloads.Traffic.run_client vmm g ~requests:net_echo
              ~payload_size:64 ~mode:Workloads.Traffic.Echo ()
          in
          Format.printf "net echo over vmsh-net: %a@."
            Workloads.Traffic.pp_result r
        end;
        (* grab the journal's late-write intervals before detach replays
           and drops the log *)
        let late_writes =
          match Vmsh.Attach.journal session with
          | Some j -> Vmsh.Journal.late_writes j
          | None -> []
        in
        (match Vmsh.Attach.detach session with
        | Ok () -> ()
        | Error e ->
            ignore (write_observe_outputs h ~trace_out ~metrics_out);
            Printf.eprintf "detach failed: %s\n" (Vmsh.Vmsh_error.to_string e);
            exit 1);
        Observe.instant obs ~name:"cli.detached" ();
        let oracle_ok =
          match before with
          | None -> true
          | Some snap ->
              let vm = Vmm.kvm_vm vmm in
              let exclude = Vmsh.Snapshot.dirty_since vm snap @ late_writes in
              let problems =
                Vmsh.Snapshot.diff ~before:snap
                  ~after:(Vmsh.Snapshot.capture vm) ~exclude
              in
              (match problems with
              | [] ->
                  Printf.printf
                    "rollback oracle: guest restored byte-for-byte (modulo \
                     guest-dirtied pages)\n"
              | ps ->
                  List.iter (Printf.eprintf "rollback oracle: %s\n") ps);
              problems = []
        in
        let outputs_ok = write_observe_outputs h ~trace_out ~metrics_out in
        Printf.printf "detached; %d block requests served by vmsh-blk\n"
          (Vmsh.Devices.stats_requests (Vmsh.Attach.devices session));
        if not (outputs_ok && oracle_ok) then exit 1
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.") in
  let profile =
    Arg.(
      value
      & opt profile_conv Profile.qemu
      & info [ "hypervisor" ] ~docv:"NAME"
          ~doc:"Hypervisor: qemu, kvmtool, firecracker, crosvm, cloud-hypervisor.")
  in
  let version =
    Arg.(
      value
      & opt version_conv KV.V5_10
      & info [ "kernel" ] ~docv:"VER" ~doc:"Guest kernel LTS version.")
  in
  let transport =
    Arg.(
      value
      & opt transport_conv Vmsh.Devices.Ioregionfd
      & info [ "transport" ] ~docv:"T" ~doc:"MMIO transport: ioregionfd or wrap_syscall.")
  in
  let commands =
    Arg.(value & opt_all string [] & info [ "exec"; "e" ] ~docv:"CMD"
           ~doc:"Shell command to run (repeatable).")
  in
  let net_echo =
    Arg.(
      value
      & opt int 0
      & info [ "net-echo" ] ~docv:"N"
          ~doc:
            "Cable the side-loaded virtio-net NIC to a simulated network \
             and run N echo request/response round-trips after the shell \
             commands.")
  in
  let detach_after =
    Arg.(
      value & flag
      & info [ "detach-after" ]
          ~doc:
            "Snapshot guest memory and vCPU registers before attaching and \
             verify after detach that the journal replay restored the guest \
             byte-for-byte (modulo pages the guest itself dirtied); exit 1 \
             if the oracle finds a discrepancy.")
  in
  let hostile =
    Arg.(
      value
      & opt (some string) None
      & info [ "hostile" ] ~docv:"CLASS"
          ~doc:
            "Attach while a seeded adversarial guest attacks from inside \
             (toctou-scan, balloon, desc-chaos or mem-churn); combine with \
             --detach-after to assert the rollback oracle under attack.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON of the attach (virtual-ns \
             timestamps; load in Perfetto or chrome://tracing).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write a flat JSON snapshot of counters/gauges/histograms.")
  in
  Cmd.v
    (Cmd.info "attach" ~doc:"Boot a VM and attach a VMSH shell to it")
    Term.(
      const run $ verbose $ profile $ version $ transport $ commands
      $ net_echo $ detach_after $ hostile $ trace_out $ metrics_out
      $ log_level_arg)

(* --- matrix --- *)

let matrix_cmd =
  let run () =
    Printf.printf "%-18s %s\n" "hypervisor" "vmsh attach";
    List.iter
      (fun profile ->
        let h, vmm, _ = boot_vm ~profile ~version:KV.V5_10 ~seed:21 in
        let result =
          match
            Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
              ~fs_image:(tools_image h.H.Host.clock)
              ~pump:(fun () -> Vmm.run_until_idle vmm)
              ()
          with
          | Ok _ -> "supported"
          | Error _ -> "unsupported"
        in
        Printf.printf "%-18s %s\n" profile.Profile.prof_name result)
      Profile.all;
    Printf.printf "\n%-10s %s\n" "kernel" "vmsh attach";
    List.iter
      (fun version ->
        let h, vmm, _ = boot_vm ~profile:Profile.qemu ~version ~seed:23 in
        let result =
          match
            Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
              ~fs_image:(tools_image h.H.Host.clock)
              ~pump:(fun () -> Vmm.run_until_idle vmm)
              ()
          with
          | Ok _ -> "supported"
          | Error e -> "FAILED: " ^ Vmsh.Vmsh_error.to_string e
        in
        Printf.printf "v%-9s %s\n" (KV.to_string version) result)
      KV.all_lts
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Print the hypervisor/kernel support matrix (Table 1)")
    Term.(const run $ const ())

(* --- debloat --- *)

let debloat_cmd =
  let run name =
    match Debloat.Dataset.find name with
    | None ->
        Printf.eprintf "unknown image %S; available: %s\n" name
          (String.concat ", "
             (List.map (fun i -> i.Debloat.Dataset.iname) (Debloat.Dataset.top40 ())));
        exit 1
    | Some image ->
        let h = H.Host.create ~seed:33 () in
        let r = Debloat.Analyze.analyze h image in
        let scale = Debloat.Dataset.size_scale in
        let mb b = Float.of_int (b * scale) /. 1048576.0 in
        Printf.printf
          "%s: %.1f MB -> %.1f MB (%.0f%% reduction); app still works: %b\n"
          r.Debloat.Analyze.r_name
          (mb r.Debloat.Analyze.before_bytes)
          (mb r.Debloat.Analyze.after_bytes)
          r.Debloat.Analyze.reduction_pct r.Debloat.Analyze.still_works
  in
  let image_arg =
    Arg.(value & pos 0 string "nginx" & info [] ~docv:"IMAGE" ~doc:"Image name.")
  in
  Cmd.v
    (Cmd.info "debloat" ~doc:"Trace and strip one of the top-40 images (Fig. 8)")
    Term.(const run $ image_arg)

(* --- monitor --- *)

let monitor_cmd =
  let run () =
    let h, vmm, g = boot_vm ~profile:Profile.qemu ~version:KV.V5_10 ~seed:51 in
    (* some workload to observe *)
    Vmm.in_guest vmm (fun () ->
        ignore
          (Guest.spawn_container g ~name:"web"
             ~image:[ ("/etc/nginx.conf", "worker_processes 4;\n") ]));
    match Usecases.Monitor.collect h ~vmm with
    | Error e ->
        Printf.eprintf "monitor failed: %s\n" e;
        exit 1
    | Ok report -> Format.printf "%a@." Usecases.Monitor.pp_report report
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Collect guest-OS metrics (process list, disk usage) without an agent")
    Term.(const run $ const ())

(* --- rescue --- *)

let rescue_cmd =
  let run user password =
    let h, vmm, g = boot_vm ~profile:Profile.qemu ~version:KV.V5_10 ~seed:41 in
    Vmm.in_guest vmm (fun () ->
        ignore
          (Guest.file_write g ~ns:(Guest.root_ns g) "/etc/shadow"
             (Bytes.of_string (user ^ ":$6$lost$00000000:19000:0:99999:7:::\n"))));
    match Usecases.Rescue.reset_password h ~vmm ~user ~password with
    | Error e ->
        Printf.eprintf "rescue failed: %s\n" e;
        exit 1
    | Ok _ ->
        Printf.printf "password for %S reset on the running VM: %b\n" user
          (Usecases.Rescue.verify_password_set vmm g ~user ~password)
  in
  let user = Arg.(value & pos 0 string "root" & info [] ~docv:"USER") in
  let password = Arg.(value & pos 1 string "hunter2" & info [] ~docv:"PASSWORD") in
  Cmd.v
    (Cmd.info "rescue" ~doc:"Reset a password in a running VM (use case #2)")
    Term.(const run $ user $ password)

(* --- fuzz --- *)

(* The deterministic fault-matrix sweep: one seeded fault schedule per
   seed, each exercising the full attach path (boot, ptrace attach,
   injected syscalls, remote memory, device side-load, echo traffic over
   the side-loaded NIC with bursty link loss). Every attach must either
   complete or fail cleanly with a diagnosable error; because every
   retry loop in the substrate is bounded, a run that exceeds the
   virtual-time budget is reported as a hang. *)

let fuzz_budget_ns = 120e9
let fuzz_echo_requests = 20

type fuzz_outcome =
  | Fuzz_completed
  | Fuzz_clean_fail of string
  | Fuzz_unclean of string
  | Fuzz_hang

let outcome_label = function
  | Fuzz_completed -> "completed"
  | Fuzz_clean_fail _ -> "clean-fail"
  | Fuzz_unclean _ -> "UNCLEAN"
  | Fuzz_hang -> "HANG"

let fuzz_one ?log_level ~seed ~rate ~trace () =
  let plan = Faults.create ~seed ~rate () in
  (* Boost one class per seed to certainty (with a small cap so bounded
     retries still win): 25 seeds sweep all 7 classes several times over
     while the background rate keeps every other class in play. *)
  let boosted = List.nth Faults.all (seed mod List.length Faults.all) in
  Faults.set_class plan boosted ~rate:1.0 ~cap:2;
  let h = H.Host.create ~seed:(0xf0 + seed) () in
  (* the recipe a failure artifact needs to be replayed without us *)
  List.iter
    (fun (k, v) -> Trace.Recorder.set_meta h.H.Host.recorder k v)
    [
      ("scenario", "fuzz");
      ("fuzz-seed", string_of_int seed);
      ("rate", string_of_float rate);
    ];
  Option.iter (Observe.set_log_level h.H.Host.observe) log_level;
  H.Host.arm_faults h plan;
  if trace then Observe.enable h.H.Host.observe;
  let outcome =
    match
      let vmm, g = boot_vm_on h ~profile:Profile.qemu ~version:KV.V5_10 in
      let net =
        Workloads.Traffic.make_network h ~mode:Workloads.Traffic.Echo ()
      in
      let config =
        let fabric, port = net in
        Vmsh.Attach.Config.(make () |> with_net { Vmsh.Attach.fabric; port })
      in
      match
        Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
          ~fs_image:(tools_image h.H.Host.clock)
          ~config
          ~pump:(fun () -> Vmm.run_until_idle vmm)
          ()
      with
      | Error e -> Fuzz_clean_fail (Vmsh.Vmsh_error.to_string e)
      | Ok session ->
          ignore (Vmsh.Attach.console_recv session);
          let out = Vmsh.Attach.console_roundtrip session "hostname" in
          let echo =
            Workloads.Traffic.run_client vmm g ~requests:fuzz_echo_requests
              ~payload_size:64 ~mode:Workloads.Traffic.Echo ()
          in
          (match Vmsh.Attach.detach session with
          | Error e -> Fuzz_unclean ("detach: " ^ Vmsh.Vmsh_error.to_string e)
          | Ok () ->
              if String.length out = 0 then
                Fuzz_unclean "console dead after attach (guest state corrupted?)"
              else if
                echo.Workloads.Traffic.completed = 0
                && Faults.injected plan Faults.Link_burst = 0
              then Fuzz_unclean "echo made no progress despite a clean link"
              else Fuzz_completed)
    with
    | outcome -> outcome
    | exception e -> Fuzz_unclean (Printexc.to_string e)
  in
  let outcome =
    if H.Clock.now_ns h.H.Host.clock > fuzz_budget_ns then Fuzz_hang
    else outcome
  in
  (h, plan, boosted, outcome)

(* --- fuzz --from-trace: trace-mutation campaigns --- *)

(* The session a mutation chain perturbs — the session of its first
   site in the base stream. A fleet recording interleaves sessions;
   the attack re-runs the one the mutation touched. *)
let mutation_session base (ms : Fuzz.mutation list) =
  let arr = Array.of_list base in
  match ms with
  | m :: _ when m.Fuzz.m_at >= 0 && m.Fuzz.m_at < Array.length arr ->
      arr.(m.Fuzz.m_at).Trace.session
  | _ -> 0

(* A corpus entry or reproducer is a .vmshtrace holding the base-recipe
   prefix the chain applies to, with the chain itself (and the verdict)
   in the metadata — [vmsh trace replay] rebuilds the mutant and
   re-executes the attack from the file alone. *)
let write_mutant_trace ~path ~base_meta ~base_events ~muts ~verdict =
  let events = Fuzz.truncate_base base_events muts in
  let meta =
    Fuzz.mutant_meta ~base_meta ~muts ~prefix:(List.length events) ~verdict
  in
  let oc = open_out_bin path in
  output_string oc (Trace.encode ~meta events);
  close_out oc

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (if l = "" then acc else l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

(* Build the executor the campaign judges protocol-consistent mutants
   with: lower the chain to a scripted fault plan and re-run the
   recipe's attach for real, oracle live. *)
let attack_executor ?log_level ~base ~spec () =
  let virtual_ns = ref 0.0 in
  let noops = ref 0 in
  let execute _mutant muts =
    let plan = Faults.create ~seed:0 ~rate:0.0 () in
    Faults.set_script plan (Fuzz.script_of_mutations base muts);
    Faults.set_skew_script plan (Fuzz.skew_script_of_mutations base muts);
    noops := !noops + Fuzz.lowering_noops muts;
    let session = mutation_session base muts in
    let atk = Replay.execute_attack ?log_level ~session ~plan spec in
    virtual_ns := !virtual_ns +. atk.Replay.at_virtual_ns;
    atk.Replay.at_verdict
  in
  (execute, virtual_ns, noops)

let fuzz_from_trace ?log_level ~file ~rounds ~seed ~corpus ~minimize
    ~metrics_out () =
  let f =
    match Trace.load file with
    | Ok f -> f
    | Error e ->
        Printf.eprintf "fuzz: %s\n" e;
        exit 1
  in
  let spec =
    match Replay.spec_of_meta f.Trace.f_meta with
    | Ok s -> s
    | Error e ->
        Printf.eprintf "fuzz: %s\n" e;
        exit 1
  in
  let base = f.Trace.f_events in
  (match Fuzz.validate base with
  | [] -> ()
  | p :: _ ->
      Printf.eprintf "fuzz: base recording violates the protocol model: %s\n" p;
      exit 1);
  let seen =
    match corpus with
    | Some dir -> read_lines (Filename.concat dir "coverage.txt")
    | None -> []
  in
  let execute, _, lowering_noops = attack_executor ?log_level ~base ~spec () in
  let rep =
    Fuzz.run_campaign ~base ~seed ~rounds ~minimize_bugs:minimize ~seen
      ~execute ()
  in
  (* the verdict ledger: one deterministic line per mutant *)
  let ledger =
    List.map
      (fun (r : Fuzz.round_result) ->
        Printf.sprintf "round=%d op=%s chain=%d verdict=%s new-keys=%d muts=%s"
          r.Fuzz.rr_round
          (Fuzz.mutator_name r.Fuzz.rr_op)
          (List.length r.Fuzz.rr_muts)
          (Faults.Abort.label r.Fuzz.rr_verdict)
          r.Fuzz.rr_new_keys
          (Fuzz.mutations_to_string r.Fuzz.rr_muts))
      rep.Fuzz.fz_rounds
  in
  List.iter print_endline ledger;
  (* persist the corpus: coverage keys, the ledger, kept mutants and
     minimized reproducers, all deterministic functions of (trace,
     seed) so a double run is byte-identical *)
  (match corpus with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      write_lines (Filename.concat dir "coverage.txt") rep.Fuzz.fz_coverage;
      write_lines (Filename.concat dir "ledger.txt") ledger;
      List.iter
        (fun (r : Fuzz.round_result) ->
          if r.Fuzz.rr_new_keys > 0 && not (Faults.Abort.is_bug r.Fuzz.rr_verdict)
          then
            write_mutant_trace
              ~path:
                (Filename.concat dir
                   (Printf.sprintf "mutant-%d.vmshtrace" r.Fuzz.rr_round))
              ~base_meta:f.Trace.f_meta ~base_events:base ~muts:r.Fuzz.rr_muts
              ~verdict:r.Fuzz.rr_verdict;
          match r.Fuzz.rr_minimized with
          | None -> ()
          | Some min_muts ->
              (* the reproducer carries the minimized chain's own
                 verdict (recomputed — minimization can land on a
                 different failure message than the full chain) *)
              let mutant = Fuzz.apply_all base min_muts in
              let verdict =
                match Fuzz.validate mutant with
                | p :: _ -> Faults.Abort.Clean_abort ("protocol: " ^ p)
                | [] -> execute mutant min_muts
              in
              write_mutant_trace
                ~path:
                  (Filename.concat dir
                     (Printf.sprintf "repro-%d.vmshtrace" r.Fuzz.rr_round))
                ~base_meta:f.Trace.f_meta ~base_events:base ~muts:min_muts
                ~verdict)
        rep.Fuzz.fz_rounds);
  (match metrics_out with
  | None -> ()
  | Some path ->
      let sobs = Observe.create ~now:(fun () -> 0.0) () in
      let sm = Observe.metrics sobs in
      let set name v =
        Observe.Metrics.set_counter (Observe.Metrics.counter sm name) v
      in
      set "fuzz.mutants_run" rep.Fuzz.fz_mutants_run;
      set "fuzz.survived" rep.Fuzz.fz_survived;
      set "fuzz.clean_aborts" rep.Fuzz.fz_clean_aborts;
      set "fuzz.bugs" rep.Fuzz.fz_bugs;
      set "fuzz.minimized_bugs" rep.Fuzz.fz_minimized_bugs;
      set "fuzz.hangs" rep.Fuzz.fz_hangs;
      set "fuzz.corpus.kept" rep.Fuzz.fz_corpus_kept;
      set "fuzz.corpus.ngrams" (List.length rep.Fuzz.fz_coverage);
      set "fuzz.lowering.noop" !lowering_noops;
      List.iter
        (fun (op, n) -> set ("fuzz.mutator_fired." ^ Fuzz.mutator_name op) n)
        rep.Fuzz.fz_mutator_fired;
      let oc = open_out path in
      output_string oc (Observe.Export.metrics_json sobs);
      close_out oc;
      Printf.printf "fuzz metrics written to %s\n" path);
  Printf.printf
    "fuzz --from-trace: %d mutants, %d survived, %d clean aborts, %d bugs \
     (%d minimized), %d hangs, corpus +%d entries / %d n-grams\n"
    rep.Fuzz.fz_mutants_run rep.Fuzz.fz_survived rep.Fuzz.fz_clean_aborts
    rep.Fuzz.fz_bugs rep.Fuzz.fz_minimized_bugs rep.Fuzz.fz_hangs
    rep.Fuzz.fz_corpus_kept
    (List.length rep.Fuzz.fz_coverage);
  if rep.Fuzz.fz_bugs > 0 then exit 1

let fuzz_cmd =
  let run verbose seeds rate metrics_out trace_out trace_seed from_trace
      rounds campaign_seed corpus minimize log_level =
    setup_logs verbose;
    (match from_trace with
    | Some file ->
        if rounds <= 0 then begin
          Printf.eprintf "fuzz: --rounds must be positive\n";
          exit 2
        end;
        fuzz_from_trace ?log_level ~file ~rounds ~seed:campaign_seed ~corpus
          ~minimize ~metrics_out ();
        exit 0
    | None -> ());
    if seeds <= 0 then begin
      Printf.eprintf "fuzz: --seeds must be positive\n";
      exit 2
    end;
    let sobs = Observe.create ~now:(fun () -> 0.0) () in
    let sm = Observe.metrics sobs in
    let scount ?(by = 1) name =
      Observe.Metrics.incr ~by (Observe.Metrics.counter sm name)
    in
    let attach_hist = Observe.Metrics.histogram sm "fuzz.attach_virtual_ns" in
    let hangs = ref 0 and unclean = ref 0 in
    for seed = 0 to seeds - 1 do
      let trace = trace_out <> None && seed = trace_seed in
      let h, plan, boosted, outcome = fuzz_one ?log_level ~seed ~rate ~trace () in
      scount "fuzz.seeds";
      (match outcome with
      | Fuzz_completed -> scount "fuzz.completed"
      | Fuzz_clean_fail _ -> scount "fuzz.clean_failures"
      | Fuzz_unclean _ ->
          incr unclean;
          scount "fuzz.unclean"
      | Fuzz_hang ->
          incr hangs;
          scount "fuzz.hangs");
      (* every fuzz failure leaves a replayable flight recording when
         VMSH_TRACE_DIR is set *)
      (match outcome with
      | Fuzz_unclean _ | Fuzz_hang ->
          ignore
            (Trace.dump_on_failure h.H.Host.recorder
               ~name:(Printf.sprintf "fuzz-seed%d" seed)
               ())
      | Fuzz_completed | Fuzz_clean_fail _ -> ());
      List.iter
        (fun cls ->
          let n = Faults.injected plan cls in
          if n > 0 then begin
            scount ("fuzz.class_seen." ^ Faults.name cls);
            scount ~by:n ("faults.injected." ^ Faults.name cls)
          end)
        Faults.all;
      List.iter
        (fun c ->
          let name = Observe.Metrics.counter_name c in
          if String.length name >= 9 && String.sub name 0 9 = "recovery." then
            scount ~by:(Observe.Metrics.counter_value c) name)
        (Observe.Metrics.counters (Observe.metrics h.H.Host.observe));
      Observe.Metrics.observe attach_hist (H.Clock.now_ns h.H.Host.clock);
      Printf.printf "seed %2d: %-10s boosted=%-13s injected=%2d virtual=%6.1f ms%s\n"
        seed (outcome_label outcome) (Faults.name boosted)
        (Faults.total_injected plan)
        (H.Clock.now_ns h.H.Host.clock /. 1e6)
        (match outcome with
        | Fuzz_clean_fail m | Fuzz_unclean m -> " (" ^ m ^ ")"
        | _ -> "");
      if trace then
        match trace_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (Observe.Export.chrome_trace h.H.Host.observe);
            close_out oc
        | None -> ()
    done;
    (match metrics_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Observe.Export.metrics_json sobs);
        close_out oc;
        Printf.printf "fuzz metrics written to %s\n" path);
    let classes_seen =
      List.length
        (List.filter
           (fun cls ->
             List.exists
               (fun c ->
                 Observe.Metrics.counter_name c
                 = "fuzz.class_seen." ^ Faults.name cls
                 && Observe.Metrics.counter_value c > 0)
               (Observe.Metrics.counters sm))
           Faults.all)
    in
    Printf.printf
      "fuzz: %d seeds, %d hangs, %d unclean failures, %d/%d fault classes seen\n"
      seeds !hangs !unclean classes_seen
      (List.length Faults.all);
    if !hangs > 0 || !unclean > 0 then exit 1
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.") in
  let seeds =
    Arg.(
      value & opt int 25
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of fault schedules to sweep.")
  in
  let rate =
    Arg.(
      value & opt float 0.15
      & info [ "rate" ] ~docv:"P"
          ~doc:"Background per-decision fault probability for every class.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the aggregate fuzz metrics (outcomes, per-class \
             injection and recovery counters) as JSON.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace of the schedule chosen by --trace-seed.")
  in
  let trace_seed =
    Arg.(
      value & opt int 0
      & info [ "trace-seed" ] ~docv:"K"
          ~doc:"Which schedule --trace-out captures (default 0).")
  in
  let from_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:
            "Trace-mutation mode: mutate the recorded .vmshtrace with seeded \
             structure-aware operators and judge every mutant through the \
             causality validator and the live attach pipeline (journal + \
             snapshot oracle). Replaces the --seeds sweep.")
  in
  let rounds =
    Arg.(
      value & opt int 32
      & info [ "rounds" ] ~docv:"N"
          ~doc:"Mutants per campaign (--from-trace mode).")
  in
  let campaign_seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Campaign seed (--from-trace mode); the whole campaign is a \
             deterministic function of (trace bytes, seed, rounds).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory (--from-trace mode): pre-loads coverage.txt, \
             then persists coverage, the verdict ledger, kept mutants and \
             minimized reproducers as .vmshtrace files.")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:
            "Auto-minimize every BUG mutant by delta-debugging its mutation \
             chain (--from-trace mode).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Sweep N deterministic fault schedules through boot + attach (or, \
          with --from-trace, mutate a recorded boundary trace) and assert \
          every run completes or fails cleanly")
    Term.(
      const run $ verbose $ seeds $ rate $ metrics_out $ trace_out $ trace_seed
      $ from_trace $ rounds $ campaign_seed $ corpus $ minimize
      $ log_level_arg)

(* --- sweep --- *)

(* The crash-point sweep gate: for every fault class, learn how many
   cooperative yield points the attach crosses, then kill the attach at
   each one and assert the transaction rolled the guest back. *)

let sweep_cmd =
  let run verbose vms seed classes hostile metrics_out log_level =
    setup_logs verbose;
    if vms <= 0 then begin
      Printf.eprintf "sweep: --vms must be positive\n";
      exit 2
    end;
    let r =
      if hostile then begin
        (* the hostile-guest chaos matrix: --class names select hostile
           classes here, not fault classes *)
        let classes =
          match classes with
          | [] -> None
          | cs ->
              Some
                (List.map
                   (fun s ->
                     match Hostile.of_name s with
                     | Some c -> c
                     | None ->
                         Printf.eprintf
                           "sweep: unknown hostile class %S (one of: %s)\n" s
                           (String.concat ", "
                              (List.map Hostile.name Hostile.all));
                         exit 2)
                   cs)
        in
        Fleet.Sweep.run_hostile ~seed ?classes ~vms ?log_level ()
      end
      else
        let classes =
          match classes with
          | [] -> None
          | cs ->
              Some
                (List.map
                   (fun s ->
                     if s = "fault-free" then None
                     else
                       match Faults.of_name s with
                       | Some c -> Some c
                       | None ->
                           Printf.eprintf
                             "sweep: unknown fault class %S (try fault-free \
                              or: %s)\n"
                             s
                             (String.concat ", "
                                (List.map Faults.name Faults.all));
                           exit 2)
                   cs)
        in
        Fleet.Sweep.run ~seed ?classes ~vms ?log_level ()
    in
    if verbose then
      List.iter
        (fun p -> Format.printf "%a@." Fleet.Sweep.pp_point p)
        r.Fleet.Sweep.sw_points;
    (match metrics_out with
    | None -> ()
    | Some path ->
        let sobs = Observe.create ~now:(fun () -> 0.0) () in
        Fleet.Sweep.record (Observe.metrics sobs) r;
        let oc = open_out path in
        output_string oc (Observe.Export.metrics_json sobs);
        close_out oc;
        Printf.printf "sweep metrics written to %s\n" path);
    Printf.printf
      "sweep: %d points over %d classes, oracle %d pass / %d FAIL, %d leaked \
       fds, %d unclean\n"
      (List.length r.Fleet.Sweep.sw_points)
      r.Fleet.Sweep.sw_classes r.Fleet.Sweep.sw_oracle_pass
      r.Fleet.Sweep.sw_oracle_fail r.Fleet.Sweep.sw_leaked_fds
      r.Fleet.Sweep.sw_unclean;
    if not (Fleet.Sweep.ok r) then begin
      List.iter
        (fun p ->
          if p.Fleet.Sweep.pt_oracle <> [] || p.Fleet.Sweep.pt_leaked_fds > 0
             || p.Fleet.Sweep.pt_unclean <> None
          then Format.eprintf "%a@." Fleet.Sweep.pp_point p)
        r.Fleet.Sweep.sw_points;
      exit 1
    end
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"One line per sweep point.")
  in
  let vms =
    Arg.(
      value & opt int 1
      & info [ "vms" ] ~docv:"N"
          ~doc:"Interleave N sweep points concurrently on the virtual-time \
                scheduler (each point still gets its own machine).")
  in
  let seed =
    Arg.(
      value & opt int 5
      & info [ "seed" ] ~docv:"S" ~doc:"Base seed for the per-point hosts.")
  in
  let classes =
    Arg.(
      value & opt_all string []
      & info [ "class" ] ~docv:"CLS"
          ~doc:
            "Restrict the sweep to this fault class (repeatable; \
             \"fault-free\" sweeps crash points with no faults armed). \
             Default: fault-free plus every class. With --hostile, names \
             select hostile classes instead.")
  in
  let hostile =
    Arg.(
      value & flag
      & info [ "hostile" ]
          ~doc:
            "Run the hostile-guest chaos matrix instead of the fault sweep: \
             every cell races the attach (and each crash point) against a \
             seeded adversarial guest mutating scanned structures, \
             ballooning scanned pages, corrupting virtqueue descriptors or \
             churning memory from inside.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the sweep.* counters (points, oracle verdicts, leaked \
                fds) as JSON.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Kill the attach at every yield point under every fault class and \
          assert full rollback (crash-point sweep gate)")
    Term.(
      const run $ verbose $ vms $ seed $ classes $ hostile $ metrics_out
      $ log_level_arg)

(* --- fleet --- *)

(* Bake a boot-once baseline image and persist it; [vmsh fleet
   --from-baseline FILE] then stands every session up as a CoW fork. *)
let bake_baseline_cmd =
  let run seed hostname out =
    let img = Fleet.Baseline.bake ~seed ~hostname () in
    (match Fleet.Baseline.save img ~path:out with
    | () -> ()
    | exception Sys_error e ->
        Printf.eprintf "bake-baseline: %s\n" e;
        exit 1);
    Printf.printf "baked baseline (kernel %s, hostname %s, digest %s) to %s\n"
      (Linux_guest.Kernel_version.to_string (Fleet.Baseline.version img))
      (Fleet.Baseline.hostname img)
      (Fleet.Baseline.digest img)
      out
  in
  let seed =
    Arg.(
      value & opt int 0xba5e
      & info [ "seed" ] ~docv:"S" ~doc:"Seed for the baseline's boot host.")
  in
  let hostname =
    Arg.(
      value & opt string "baseline"
      & info [ "hostname" ] ~docv:"H"
          ~doc:"Hostname frozen into the baseline (forks that keep it copy \
                zero pages).")
  in
  let out =
    Arg.(
      value & opt string "baseline.vmshbase"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output image file.")
  in
  Cmd.v
    (Cmd.info "bake-baseline"
       ~doc:
         "Boot one machine to the attach-ready point and freeze it as a \
          forkable baseline image")
    Term.(const run $ seed $ hostname $ out)

let fleet_cmd =
  let run verbose vms seed fault_rate no_share from_baseline metrics_out
      trace_out log_level =
    setup_logs verbose;
    let cfg =
      Fleet.Config.make ~vms ()
      |> Fleet.Config.with_seed seed
      |> Fleet.Config.with_fault_rate fault_rate
      |> Fleet.Config.with_share_symbols (not no_share)
    in
    let cfg =
      match log_level with
      | Some l -> Fleet.Config.with_log_level l cfg
      | None -> cfg
    in
    let cfg =
      match from_baseline with
      | None -> cfg
      | Some path -> (
          match Fleet.Baseline.load ~path with
          | Ok img ->
              Fleet.Config.with_boot_source (Fleet.Config.Fork_of img) cfg
          | Error e ->
              Printf.eprintf "fleet: %s\n" (Vmsh.Vmsh_error.to_string e);
              exit 2)
    in
    let r =
      match Fleet.run cfg with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "fleet: %s\n" (Vmsh.Vmsh_error.to_string e);
          exit 2
    in
    let failures =
      List.filter
        (fun s -> Result.is_error s.Fleet.s_result)
        r.Fleet.r_sessions
    in
    if verbose then
      List.iter
        (fun s ->
          Printf.printf "%-6s %-9s attach=%8.2f ms total=%8.2f ms%s\n"
            s.Fleet.s_name
            (match s.Fleet.s_result with Ok () -> "attached" | Error _ -> "FAILED")
            (s.Fleet.s_attach_ns /. 1e6)
            (s.Fleet.s_total_ns /. 1e6)
            (match s.Fleet.s_result with Ok () -> "" | Error e -> " (" ^ e ^ ")"))
        r.Fleet.r_sessions;
    Printf.printf
      "fleet: %d/%d attached, %d scheduler slices, symbol cache %d hits / %d \
       misses\n"
      (vms - List.length failures)
      vms r.Fleet.r_yields r.Fleet.r_cache_hits r.Fleet.r_cache_misses;
    let p50 = Fleet.attach_p r 0.50 and p99 = Fleet.attach_p r 0.99 in
    if not (Float.is_nan p50) then
      Printf.printf "attach latency: p50 %.2f ms, p99 %.2f ms (virtual)\n"
        (p50 /. 1e6) (p99 /. 1e6);
    if r.Fleet.r_forked then begin
      let f50 = Fleet.fork_p r 0.50 and f99 = Fleet.fork_p r 0.99 in
      if not (Float.is_nan f50) then
        Printf.printf "fork latency:   p50 %.2f us, p99 %.2f us (virtual)\n"
          (f50 /. 1e3) (f99 /. 1e3)
    end;
    (match metrics_out with
    | None -> ()
    | Some path ->
        (* one merged document: fleet-wide aggregates (every session's
           counters and histogram samples folded together) plus the
           per-session breakdown *)
        let oc = open_out path in
        output_string oc (Fleet.metrics_json r);
        close_out oc;
        Printf.printf "fleet metrics written to %s\n" path);
    (match trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc r.Fleet.r_schedule;
        close_out oc;
        Printf.printf "fleet schedule written to %s\n" path);
    (* clean runs must attach everything; under injected faults a clean
       per-session failure is an expected outcome *)
    if fault_rate = 0.0 && failures <> [] then begin
      List.iter
        (fun s ->
          Printf.eprintf "%s: %s\n" s.Fleet.s_name
            (match s.Fleet.s_result with Error e -> e | Ok () -> ""))
        failures;
      exit 1
    end
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-session lines.") in
  let vms =
    Arg.(
      value & opt int 8
      & info [ "vms" ] ~docv:"N" ~doc:"Number of concurrent attach sessions.")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"S"
          ~doc:"Base seed; every per-session host derives its own stream.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Arm an independent per-session fault plan at this rate.")
  in
  let no_share =
    Arg.(
      value & flag
      & info [ "no-share-symbols" ]
          ~doc:"Disable the shared build-id symbol cache (every session \
                pays the full binary analysis).")
  in
  let from_baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-baseline" ] ~docv:"FILE"
          ~doc:"Fork every session from this baked baseline image (see \
                $(b,vmsh bake-baseline)) through per-page copy-on-write \
                overlays instead of cold-booting it.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write attach-latency histograms and cache counters as JSON \
                (forked runs also carry fleet.fork_ns and the overlay.* \
                occupancy counters).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the scheduler's slice-by-slice interleaving (byte-\
                identical across runs with the same seed).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Attach to N VMs concurrently over virtual time with a shared \
          symbol cache")
    Term.(
      const run $ verbose $ vms $ seed $ fault_rate $ no_share $ from_baseline
      $ metrics_out $ trace_out $ log_level_arg)

(* --- serve --- *)

(* The long-running-service verb: feed a seeded open-loop arrival
   stream of attach/detach/sweep/fuzz jobs through per-tenant admission
   into a bounded worker pool, all on the virtual-time scheduler. *)

let serve_cmd =
  let module D = Service.Dispatch in
  let run verbose workers jobs seed rate arrivals deadline_ms ram_mb
      hot_rate hostile_tenant metrics_out results_out trace_out log_level =
    setup_logs verbose;
    if workers <= 0 then begin
      Printf.eprintf "serve: --workers must be positive\n";
      exit 2
    end;
    let hostile_tenant =
      match hostile_tenant with
      | None -> None
      | Some spec -> (
          match String.index_opt spec ':' with
          | None ->
              Printf.eprintf
                "serve: --hostile-tenant wants TENANT:CLASS, got %S\n" spec;
              exit 2
          | Some i ->
              let tenant = String.sub spec 0 i in
              let cls =
                String.sub spec (i + 1) (String.length spec - i - 1)
              in
              if Hostile.of_name cls = None then begin
                Printf.eprintf
                  "serve: unknown hostile class %S (try %s)\n" cls
                  (String.concat ", " (List.map Hostile.name Hostile.all));
                exit 2
              end;
              Some (tenant, cls))
    in
    let arrivals =
      match D.arrivals_of_string arrivals with
      | Some a -> a
      | None ->
          Printf.eprintf
            "serve: unknown arrival profile %S (try poisson, bursty, ramp)\n"
            arrivals;
          exit 2
    in
    let tenants =
      List.map
        (fun tc ->
          if tc.Service.Admission.tc_name = "t0" then
            { tc with Service.Admission.tc_rate = hot_rate }
          else tc)
        D.default_tenants
    in
    let cfg =
      {
        D.default_config with
        D.workers;
        jobs;
        seed;
        rate;
        arrivals;
        tenants;
        hostile_tenant;
        deadline_ns = deadline_ms *. 1e6;
        ram_mb;
        log_level;
      }
    in
    let r = D.run cfg in
    let mx = Observe.metrics r.D.rp_host.H.Host.observe in
    let shed, expired =
      Array.fold_left
        (fun (s, x) jr ->
          match jr.D.jr_status with
          | Service.Job.Shed _ -> (s + 1, x)
          | Service.Job.Expired _ -> (s, x + 1)
          | _ -> (s, x))
        (0, 0) r.D.rp_records
    in
    Printf.printf "serve: %d jobs over %d tenants, %d workers (%s arrivals at %.0f/s)\n"
      jobs
      (List.length cfg.D.tenants)
      workers (D.arrivals_to_string arrivals) rate;
    List.iter
      (fun (name, st) ->
        Printf.printf
          "  %-4s submitted %4d  admitted %4d  shed %d (rate %d, queue %d, \
           evicted %d)\n"
          name st.Service.Admission.ts_submitted st.Service.Admission.ts_admitted
          (st.Service.Admission.ts_shed_rate
          + st.Service.Admission.ts_shed_queue
          + st.Service.Admission.ts_shed_evicted)
          st.Service.Admission.ts_shed_rate st.Service.Admission.ts_shed_queue
          st.Service.Admission.ts_shed_evicted)
      r.D.rp_stats;
    let h = Observe.Metrics.histogram mx "service.e2e_ns" in
    if Observe.Metrics.count h > 0 then
      Printf.printf
        "e2e latency: p50 %.2f ms, p99 %.2f ms, p999 %.2f ms (virtual, %d \
         jobs ran)\n"
        (Observe.Metrics.percentile h 50. /. 1e6)
        (Observe.Metrics.percentile h 99. /. 1e6)
        (Observe.Metrics.percentile h 99.9 /. 1e6)
        (Observe.Metrics.count h);
    Printf.printf
      "completed %d  failed %d  shed %d  expired %d  makespan %.1f ms  \
       throughput %.0f jobs/s (virtual)\n"
      (D.completed r) (D.failed r) shed expired
      (r.D.rp_makespan_ns /. 1e6)
      (if r.D.rp_makespan_ns > 0. then
         float_of_int (D.completed r) /. (r.D.rp_makespan_ns /. 1e9)
       else 0.);
    if verbose then
      Array.iter
        (fun jr ->
          let j = jr.D.jr_job in
          Printf.printf "  job %4d %-4s %-24s %s\n" j.Service.Job.id
            j.Service.Job.tenant
            (Service.Job.kind_to_string j.Service.Job.kind)
            (Service.Job.status_to_string jr.D.jr_status))
        r.D.rp_records;
    (match metrics_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (D.metrics_json r);
        close_out oc;
        Printf.printf "serve metrics written to %s\n" path);
    (match results_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (D.results_jsonl r);
        close_out oc;
        Printf.printf "serve results written to %s\n" path);
    (match trace_out with
    | None -> ()
    | Some path ->
        let recorder = r.D.rp_host.H.Host.recorder in
        let oc = open_out_bin path in
        output_string oc
          (Trace.encode
             ~meta:(Trace.Recorder.meta recorder)
             (Trace.Recorder.events recorder));
        close_out oc;
        Printf.printf "admission flight recording written to %s\n" path);
    if D.failed r > 0 || r.D.rp_leaked_workers > 0 then begin
      Array.iter
        (fun jr ->
          match jr.D.jr_status with
          | Service.Job.Failed e ->
              Printf.eprintf "job %d: %s\n" jr.D.jr_job.Service.Job.id e
          | _ -> ())
        r.D.rp_records;
      if r.D.rp_leaked_workers > 0 then
        Printf.eprintf "serve: %d workers still busy after drain\n"
          r.D.rp_leaked_workers;
      exit 1
    end
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"One line per job.")
  in
  let workers =
    Arg.(
      value & opt int 8
      & info [ "workers" ] ~docv:"K"
          ~doc:"Bounded worker pool size: at most K job sessions run \
                concurrently on the virtual-time scheduler.")
  in
  let jobs =
    Arg.(
      value & opt int 1000
      & info [ "jobs" ] ~docv:"N" ~doc:"Length of the arrival stream.")
  in
  let seed =
    Arg.(
      value & opt int 17
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seeds the arrival process and every job's machine; the whole \
                run is a deterministic function of it.")
  in
  let rate =
    Arg.(
      value & opt float 600.
      & info [ "rate" ] ~docv:"R"
          ~doc:"Mean offered load in jobs per virtual second (open loop).")
  in
  let arrivals =
    Arg.(
      value & opt string "poisson"
      & info [ "arrivals" ] ~docv:"P"
          ~doc:"Arrival profile: poisson, bursty (batches of 8), or ramp \
                (0.25x to 1.75x of --rate across the run).")
  in
  let deadline_ms =
    Arg.(
      value & opt float 0.
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-job relative deadline in virtual milliseconds; a job \
                still queued past it is dropped with Deadline_exceeded. 0 \
                disables.")
  in
  let ram_mb =
    Arg.(
      value & opt int 32
      & info [ "ram-mb" ] ~docv:"MB"
          ~doc:"Guest RAM per job VM (bounds the real memory of K \
                concurrent sessions).")
  in
  let hot_rate =
    Arg.(
      value & opt float 120.
      & info [ "hot-rate" ] ~docv:"R"
          ~doc:"Token-bucket rate (jobs/s) of the hot tenant t0, which \
                carries over half the arrival share: arrivals beyond this \
                are shed at admission.")
  in
  let hostile_tenant =
    Arg.(
      value
      & opt (some string) None
      & info [ "hostile-tenant" ] ~docv:"TENANT:CLASS"
          ~doc:"Turn every job of TENANT into an adversarial-guest attach \
                of the named hostile class (e.g. t3:desc-chaos): the \
                misbehaving tenant's guests race their own attaches while \
                the other tenants' streams run unchanged.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the merged service metrics (latency histograms, \
                queue-depth gauges, admission/shed counters, per-stage \
                aggregates over every job session) as JSON.")
  in
  let results_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "results-out" ] ~docv:"FILE"
          ~doc:"Write the durable per-job result log (JSON lines, one \
                object per job in id order).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the frontend's admission flight recording \
                (service.enqueue/admit/shed events) as .vmshtrace.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run vmsh as a long-running job service: seeded arrival stream, \
          per-tenant admission and backpressure, bounded worker pool")
    Term.(
      const run $ verbose $ workers $ jobs $ seed $ rate $ arrivals
      $ deadline_ms $ ram_mb $ hot_rate $ hostile_tenant $ metrics_out
      $ results_out
      $ trace_out $ log_level_arg)

(* --- trace --- *)

(* The flight-recorder verb: record a scenario as a .vmshtrace file,
   replay one deterministically and diff, or inspect an artifact a
   failed sweep/fuzz/fleet run left behind. *)

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"A .vmshtrace flight recording.")

let trace_record_cmd =
  let run scenario seed vms from_baseline cls k hostile out log_level =
    let spec =
      match scenario with
      | "attach" -> Replay.Attach { seed }
      | "fleet" -> Replay.Fleet_run { seed; vms; from_baseline }
      | "sweep" | "sweep-cell" -> Replay.Sweep_cell { seed; cls; k; hostile }
      | s ->
          Printf.eprintf
            "trace record: unknown scenario %S (try attach, fleet or sweep)\n" s;
          exit 2
    in
    match Replay.record ?log_level spec ~path:out with
    | Error e ->
        Printf.eprintf "trace record: %s\n" e;
        exit 1
    | Ok r ->
        Printf.printf "recorded %d events (guest digest %s) to %s\n"
          (List.length r.Replay.run_events)
          r.Replay.run_digest out
  in
  let scenario =
    Arg.(
      value & opt string "attach"
      & info [ "scenario" ] ~docv:"S"
          ~doc:"What to run and record: attach, fleet, or sweep (one cell).")
  in
  let seed =
    Arg.(
      value & opt int 5
      & info [ "seed" ] ~docv:"N" ~doc:"Scenario seed (fleet default is 7).")
  in
  let vms =
    Arg.(
      value & opt int 8
      & info [ "vms" ] ~docv:"N" ~doc:"Fleet size (fleet scenario only).")
  in
  let from_baseline =
    Arg.(
      value & flag
      & info [ "from-baseline" ]
          ~doc:"Fork the fleet's sessions from a deterministically re-baked \
                baseline instead of cold-booting them (fleet scenario only; \
                the replay re-bakes the identical image).")
  in
  let cls =
    Arg.(
      value & opt string "fault-free"
      & info [ "class" ] ~docv:"CLS"
          ~doc:"Fault class of the sweep cell (sweep scenario only).")
  in
  let k =
    Arg.(
      value & opt int (-1)
      & info [ "k" ] ~docv:"K"
          ~doc:
            "Abort-at-yield index of the sweep cell; -1 is the probe \
             (sweep scenario only).")
  in
  let hostile =
    Arg.(
      value & opt string ""
      & info [ "hostile" ] ~docv:"CLASS"
          ~doc:
            "Adversarial-guest class attacking the sweep cell (sweep \
             scenario only; empty = no adversary).")
  in
  let out =
    Arg.(
      value & opt string "out.vmshtrace"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run a deterministic scenario and save its flight recording")
    Term.(
      const run $ scenario $ seed $ vms $ from_baseline $ cls $ k $ hostile
      $ out $ log_level_arg)

let trace_replay_cmd =
  let run file log_level =
    match Trace.load file with
    | Error e ->
        Printf.eprintf "trace replay: %s\n" e;
        exit 1
    | Ok f -> (
        (* fuzz artifacts replay through the CLI's own fuzz driver;
           fuzz-mutant corpus entries and reproducers by rebuilding the
           mutant from the stored base prefix + mutation chain and
           re-executing the attack; every other scenario through the
           recipe library *)
        let diffs =
          match List.assoc_opt "scenario" f.Trace.f_meta with
          | Some s when s = Fuzz.mutant_scenario -> (
              match Fuzz.parse_mutant_meta f.Trace.f_meta with
              | Error _ as e -> e
              | Ok mf -> (
                  match Replay.spec_of_meta mf.Fuzz.mf_base_meta with
                  | Error _ as e -> e
                  | Ok spec ->
                      let base = f.Trace.f_events in
                      let mutant = Fuzz.apply_all base mf.Fuzz.mf_muts in
                      let verdict =
                        match Fuzz.validate mutant with
                        | p :: _ ->
                            Faults.Abort.Clean_abort ("protocol: " ^ p)
                        | [] ->
                            let execute, _, _ =
                              attack_executor ?log_level ~base ~spec ()
                            in
                            execute mutant mf.Fuzz.mf_muts
                      in
                      let got = Faults.Abort.to_string verdict in
                      let want = Faults.Abort.to_string mf.Fuzz.mf_verdict in
                      Ok
                        (if got = want then []
                         else
                           [
                             Printf.sprintf
                               "mutant verdict diverges: recorded %S, replay \
                                %S"
                               want got;
                           ])))
          | Some "fuzz" ->
              let geti key d =
                Option.bind (List.assoc_opt key f.Trace.f_meta)
                  int_of_string_opt
                |> Option.value ~default:d
              in
              let rate =
                Option.bind (List.assoc_opt "rate" f.Trace.f_meta)
                  float_of_string_opt
                |> Option.value ~default:0.15
              in
              let h, _, _, _ =
                fuzz_one ?log_level ~seed:(geti "fuzz-seed" 0) ~rate
                  ~trace:false ()
              in
              Ok
                (Trace.diff f.Trace.f_events
                   (Trace.Recorder.events h.H.Host.recorder))
          | _ -> Replay.replay ?log_level ~path:file ()
        in
        match diffs with
        | Error e ->
            Printf.eprintf "trace replay: %s\n" e;
            exit 1
        | Ok [] ->
            if
              List.assoc_opt "scenario" f.Trace.f_meta
              = Some Fuzz.mutant_scenario
            then
              Printf.printf
                "mutant re-executes to its recorded verdict (%s; %d base \
                 events)\n"
                (Option.value
                   (List.assoc_opt "verdict" f.Trace.f_meta)
                   ~default:"?")
                (List.length f.Trace.f_events)
            else
              Printf.printf
                "replay matches recording: %d events, guest digest identical\n"
                (List.length f.Trace.f_events)
        | Ok lines ->
            List.iter (Printf.eprintf "replay-diff: %s\n") lines;
            exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run a recording's scenario deterministically and diff the two \
          event streams and guest digests")
    Term.(const run $ trace_file_arg $ log_level_arg)

let trace_dump_cmd =
  let run file limit =
    match Trace.load file with
    | Error e ->
        Printf.eprintf "trace dump: %s\n" e;
        exit 1
    | Ok f ->
        List.iter (fun (k, v) -> Printf.printf "# %s = %s\n" k v) f.Trace.f_meta;
        if f.Trace.f_dropped > 0 then
          Printf.printf "# dropped = %d\n" f.Trace.f_dropped;
        let n = List.length f.Trace.f_events in
        List.iteri
          (fun i e ->
            if limit <= 0 || i < limit then
              Format.printf "%a@." Trace.pp_event e)
          f.Trace.f_events;
        if limit > 0 && n > limit then
          Printf.printf "... %d more events (raise --limit)\n" (n - limit)
  in
  let limit =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N"
          ~doc:"Print at most N events (0 = everything).")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print a recording's metadata and events")
    Term.(const run $ trace_file_arg $ limit)

let trace_stat_cmd =
  let run file =
    match Trace.load file with
    | Error e ->
        Printf.eprintf "trace stat: %s\n" e;
        exit 1
    | Ok f ->
        Printf.printf "%d events (%d dropped at record time)\n"
          (List.length f.Trace.f_events)
          f.Trace.f_dropped;
        List.iter
          (fun (kind, n) -> Printf.printf "%8d  %s\n" n kind)
          (Trace.stat f.Trace.f_events)
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Per-event-kind counts of a recording")
    Term.(const run $ trace_file_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Record, replay and inspect hypervisor-boundary flight recordings \
          (.vmshtrace)")
    [ trace_record_cmd; trace_replay_cmd; trace_dump_cmd; trace_stat_cmd ]

let () =
  let info =
    Cmd.info "vmsh" ~version:"0.1.0"
      ~doc:"Hypervisor-agnostic guest overlays for VMs (simulated reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            attach_cmd; matrix_cmd; debloat_cmd; rescue_cmd; monitor_cmd;
            fuzz_cmd; fleet_cmd; bake_baseline_cmd; sweep_cmd; serve_cmd;
            trace_cmd;
          ]))
