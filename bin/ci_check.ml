(* CI output validator: the JSON assertions ci.sh used to delegate to
   python3 (and silently skipped when python was absent), as a small
   dune-built executable with a hand-rolled JSON reader.

   Usage:
     ci_check json FILE...       well-formed JSON
     ci_check trace FILE         chrome trace contains every attach phase
     ci_check net-metrics FILE   vmsh-net counters + echo histogram
     ci_check bench FILE         BENCH_results.json scenarios
     ci_check fuzz FILE          fault-matrix gate: 0 hangs, 0 unclean,
                                 every fault class exercised
     ci_check fuzz-trace FILE    trace-mutation gate: verdicts account
                                 for every mutant (survived + clean
                                 aborts + bugs = mutants run), 0 hangs,
                                 every bug minimized, every mutator
                                 class fired, the corpus non-vacuous
     ci_check sweep FILE         crash-matrix gate: every abort-at-yield
                                 point restored the guest, leaked no
                                 descriptors, failed cleanly
     ci_check fleet-fork COLD FORK
                                 CoW-fork gate: fork p99 <= 10% of the
                                 cold attach p50, overlay mostly shared
                                 (copied < shared), zero session failures
     ci_check serve FILE         job-service gate: per-tenant admission
                                 enforced, wire replies account for every
                                 submission, zero failures/leaked workers
     ci_check hostile FILE       chaos-matrix gate: every hostile guest
                                 class swept, every cell restored the
                                 guest, leaked nothing, aborted cleanly
                                 (or completed) under attack

   Note: the metrics exporter writes counter values as JSON strings;
   [int_field] accepts both numbers and numeric strings. *)

(* --- minimal JSON --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "bad escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "bad \\u escape";
                  let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                  pos := !pos + 4;
                  (* non-BMP escapes don't occur in our exports *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else Buffer.add_char b '?'
              | _ -> fail "bad escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "ci_check: %s\n" msg;
      exit 1
  in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  try parse data
  with Bad msg ->
    Printf.eprintf "ci_check: %s: invalid JSON: %s\n" path msg;
    exit 1

(* --- accessors --- *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("ci_check: " ^ msg); exit 1) fmt

let field obj k =
  match obj with
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let field_exn ~ctx obj k =
  match field obj k with
  | Some v -> v
  | None -> fail "%s: missing field %S" ctx k

(* Counter values are exported as JSON strings; histogram stats as
   numbers. Accept either spelling for robustness. *)
let as_int ~ctx = function
  | Num f -> int_of_float f
  | Str st -> (
      match int_of_string_opt (String.trim st) with
      | Some i -> i
      | None -> fail "%s: %S is not an integer" ctx st)
  | _ -> fail "%s: expected an integer" ctx

let int_field ~ctx obj k = as_int ~ctx:(ctx ^ "." ^ k) (field_exn ~ctx obj k)
let opt_int_field ~ctx obj k =
  match field obj k with Some v -> as_int ~ctx:(ctx ^ "." ^ k) v | None -> 0

(* --- checks --- *)

let attach_phases =
  [
    "attach"; "ptrace-attach"; "fd-discovery"; "memslot-dump"; "register-read";
    "page-table-walk"; "symbol-analysis"; "device-setup"; "klib-sideload";
  ]

let fault_classes =
  [
    "inject-eintr"; "inject-eagain"; "vm-rw-efault"; "attach-race";
    "notify-drop"; "desc-torn"; "link-burst";
  ]

let check_trace path =
  let j = load path in
  let events =
    match field_exn ~ctx:path j "traceEvents" with
    | List l -> l
    | _ -> fail "%s: traceEvents is not a list" path
  in
  let names =
    List.filter_map
      (fun e -> match field e "name" with Some (Str s) -> Some s | _ -> None)
      events
  in
  List.iter
    (fun p ->
      if not (List.mem p names) then
        fail "%s: trace is missing attach phase %S" path p)
    attach_phases

let check_net_metrics path =
  let j = load path in
  let counters = field_exn ~ctx:path j "counters" in
  let tx = int_field ~ctx:path counters "vmsh-net.tx_frames" in
  let rx = int_field ~ctx:path counters "vmsh-net.rx_frames" in
  if tx < 1000 then fail "%s: expected >=1000 TX frames through vmsh-net, got %d" path tx;
  if rx < 1000 then fail "%s: expected >=1000 RX frames through vmsh-net, got %d" path rx;
  let hist =
    field_exn ~ctx:path (field_exn ~ctx:path j "histograms") "net-echo.request_ns"
  in
  let count = int_field ~ctx:path hist "count" in
  if count <> 1000 then fail "%s: echo histogram count: %d" path count

let check_bench path =
  let j = load path in
  let scen = field_exn ~ctx:path j "scenarios" in
  List.iter
    (fun required ->
      if field scen required = None then
        fail "%s: missing scenario %S" path required)
    [
      "qemu-blk"; "vmsh-blk"; "vmsh-net"; "vmsh-faults"; "vmsh-fleet";
      "vmsh-fork"; "vmsh-detach"; "vmsh-trace"; "vmsh-serve"; "vmsh-fuzz";
      "vmsh-hostile";
    ];
  let net = field_exn ~ctx:path scen "vmsh-net" in
  let hist =
    field_exn ~ctx:path (field_exn ~ctx:path net "histograms") "net-echo.request_ns"
  in
  if int_field ~ctx:path hist "count" < 1000 then
    fail "%s: vmsh-net echo histogram count < 1000" path;
  let faults = field_exn ~ctx:path scen "vmsh-faults" in
  let rhist =
    field_exn ~ctx:path
      (field_exn ~ctx:path faults "histograms")
      "faults.attach_ns"
  in
  if int_field ~ctx:path rhist "count" < 1 then
    fail "%s: vmsh-faults recorded no attach latencies" path;
  (* fleet scaling: a per-N attach histogram for every swept fleet
     size, and proof the shared symbol cache actually hit *)
  let fleet = field_exn ~ctx:path scen "vmsh-fleet" in
  let fhists = field_exn ~ctx:path fleet "histograms" in
  List.iter
    (fun (n, expect) ->
      let h = field_exn ~ctx:path fhists (Printf.sprintf "fleet.attach_ns.n%d" n) in
      let c = int_field ~ctx:path h "count" in
      if c <> expect then
        fail "%s: fleet.attach_ns.n%d count: %d (want %d)" path n c expect)
    [ (1, 1); (8, 8); (64, 64) ];
  let fcounters = field_exn ~ctx:path fleet "counters" in
  if int_field ~ctx:path fcounters "symcache.hits" < 1 then
    fail "%s: vmsh-fleet symbol cache never hit" path;
  (* the fork scenario: per-N fork histograms for every forked fleet
     size, and an overlay that stays mostly shared at the largest one *)
  let forksc = field_exn ~ctx:path scen "vmsh-fork" in
  let fkhists = field_exn ~ctx:path forksc "histograms" in
  List.iter
    (fun n ->
      let h =
        field_exn ~ctx:path fkhists (Printf.sprintf "fleet.fork_ns.fork.n%d" n)
      in
      let c = int_field ~ctx:path h "count" in
      if c <> n then
        fail "%s: fleet.fork_ns.fork.n%d count: %d (want %d)" path n c n)
    [ 8; 64; 512 ];
  let fkcounters = field_exn ~ctx:path forksc "counters" in
  let fkcopied = int_field ~ctx:path fkcounters "overlay.pages_copied.n512" in
  let fkshared = int_field ~ctx:path fkcounters "overlay.pages_shared.n512" in
  if fkcopied >= fkshared then
    fail "%s: vmsh-fork n512 copied %d pages vs %d shared" path fkcopied
      fkshared;
  (* transactional detach: round-trips recorded, oracle clean, and the
     journal's fault-free overhead within the 5%% acceptance bound *)
  let detach = field_exn ~ctx:path scen "vmsh-detach" in
  let dhist =
    field_exn ~ctx:path
      (field_exn ~ctx:path detach "histograms")
      "detach.roundtrip_ns"
  in
  if int_field ~ctx:path dhist "count" < 1 then
    fail "%s: vmsh-detach recorded no round-trips" path;
  let dcounters = field_exn ~ctx:path detach "counters" in
  if int_field ~ctx:path dcounters "detach.oracle_pass" < 1 then
    fail "%s: vmsh-detach oracle never passed" path;
  if opt_int_field ~ctx:path dcounters "detach.oracle_fail" > 0 then
    fail "%s: vmsh-detach oracle failures" path;
  let overhead =
    int_field ~ctx:path dcounters "detach.journal_overhead_permille"
  in
  if overhead > 50 then
    fail "%s: journal overhead %d permille exceeds the 5%% bound" path overhead;
  (* flight recorder: always-on recording within the 5%% attach-p50
     bound, the replay-diff oracle clean, and the per-stage pipeline
     profile (attach phases, exit classes, pump stages) present *)
  let trace = field_exn ~ctx:path scen "vmsh-trace" in
  let tcounters = field_exn ~ctx:path trace "counters" in
  let toverhead = int_field ~ctx:path tcounters "trace.overhead_permille" in
  if toverhead > 50 then
    fail "%s: recording overhead %d permille exceeds the 5%% bound" path
      toverhead;
  if int_field ~ctx:path tcounters "trace.events" < 1 then
    fail "%s: the flight recorder captured no events" path;
  if opt_int_field ~ctx:path tcounters "trace.replay_mismatch" > 0 then
    fail "%s: replay-diff oracle diverged" path;
  if opt_int_field ~ctx:path tcounters "trace.replay_match" < 1 then
    fail "%s: replay-diff oracle never ran" path;
  List.iter
    (fun c ->
      if int_field ~ctx:path tcounters c < 1 then
        fail "%s: stage profile counter %S is empty" path c)
    [ "stage.exit.ioregionfd"; "stage.exit.mmio-userspace"; "stage.pump.blk" ];
  let thists = field_exn ~ctx:path trace "histograms" in
  List.iter
    (fun name ->
      let h = field_exn ~ctx:path thists ("stage.attach." ^ name ^ "_ns") in
      if int_field ~ctx:path h "count" < 1 then
        fail "%s: stage profile histogram %S is empty" path name)
    [
      "ptrace-attach"; "fd-discovery"; "memslot-dump"; "register-read";
      "symbol-analysis"; "device-setup"; "klib-sideload"; "total";
    ];
  (* the job service under sustained load: the rate sweep found a knee,
     the calibrated point's latency distribution is present and within
     its bound, the hot tenant shed while the others rode clean, and no
     worker leaked *)
  let serve = field_exn ~ctx:path scen "vmsh-serve" in
  let scounters = field_exn ~ctx:path serve "counters" in
  let shists = field_exn ~ctx:path serve "histograms" in
  List.iter
    (fun rate ->
      let h = field_exn ~ctx:path shists (Printf.sprintf "serve.e2e_ns.r%d" rate) in
      if int_field ~ctx:path h "count" < 1 then
        fail "%s: serve sweep point %d/s has no latency samples" path rate)
    [ 400; 800; 1200; 1600 ];
  if int_field ~ctx:path scounters "serve.knee_rps" < 400 then
    fail "%s: serve rate sweep found no saturation knee (knee < lowest rate)"
      path;
  let se2e = field_exn ~ctx:path shists "service.e2e_ns" in
  if int_field ~ctx:path se2e "count" < 100 then
    fail "%s: calibrated serve point ran fewer than 100 jobs" path;
  (* calibrated: p99 measured ~53 ms at 600/s with 8 workers; the gate
     allows 2x headroom before declaring a latency regression *)
  if int_field ~ctx:path se2e "p99" > 110_000_000 then
    fail "%s: calibrated serve p99 %d ns exceeds the 110 ms bound" path
      (int_field ~ctx:path se2e "p99");
  if opt_int_field ~ctx:path scounters "service.workers.leaked" > 0 then
    fail "%s: serve leaked workers" path;
  if opt_int_field ~ctx:path scounters "service.failed" > 0 then
    fail "%s: serve jobs failed at the calibrated point" path;
  if opt_int_field ~ctx:path scounters "service.shed.rate.t0" < 1 then
    fail "%s: hot tenant t0 was never rate-shed (admission vacuous)" path;
  List.iter
    (fun t ->
      List.iter
        (fun reason ->
          let k = Printf.sprintf "service.shed.%s.%s" reason t in
          if opt_int_field ~ctx:path scounters k > 0 then
            fail "%s: light tenant %s was shed (%s)" path t k)
        [ "rate"; "queue-full"; "evicted" ])
    [ "t1"; "t2"; "t3" ];
  (* trace-mutation fuzzing: the campaign ran real mutants through the
     attack executor, none of them broke the pipeline, and the corpus
     bookkeeping (mutation, validation, coverage hashing, minimizer
     plumbing) stays within 5%% of the pure execution time *)
  let fz = field_exn ~ctx:path scen "vmsh-fuzz" in
  let fzc = field_exn ~ctx:path fz "counters" in
  if int_field ~ctx:path fzc "fuzz.mutants" < 1 then
    fail "%s: vmsh-fuzz ran no mutants" path;
  if opt_int_field ~ctx:path fzc "fuzz.bugs" > 0 then
    fail "%s: vmsh-fuzz found BUG verdicts in a clean build" path;
  let fov = int_field ~ctx:path fzc "fuzz.corpus_overhead_permille" in
  if fov > 50 then
    fail "%s: fuzz corpus bookkeeping %d permille exceeds the 5%% bound" path
      fov;
  let fzh =
    field_exn ~ctx:path (field_exn ~ctx:path fz "histograms") "fuzz.replay_ns"
  in
  if int_field ~ctx:path fzh "count" < 1 then
    fail "%s: vmsh-fuzz recorded no per-mutant replay times" path;
  (* adversarial-guest attach: both latency distributions populated,
     and the hardening ablation (use-time revalidation on vs off on a
     clean guest) within the 5%% acceptance bound *)
  let ho = field_exn ~ctx:path scen "vmsh-hostile" in
  let hoh = field_exn ~ctx:path ho "histograms" in
  List.iter
    (fun name ->
      let h = field_exn ~ctx:path hoh name in
      if int_field ~ctx:path h "count" < 1 then
        fail "%s: vmsh-hostile histogram %S is empty" path name)
    [ "hostile.clean_attach_ns"; "hostile.attach_ns" ];
  let hoc = field_exn ~ctx:path ho "counters" in
  let hov = int_field ~ctx:path hoc "hostile.overhead_permille" in
  if hov > 50 then
    fail "%s: hardening overhead %d permille exceeds the 5%% bound" path hov;
  if int_field ~ctx:path hoc "hostile.survived" < 1 then
    fail "%s: no attach ever completed under the hostile guest" path

(* The serve metrics document (vmsh serve --metrics-out): per-tenant
   admission enforced, every submission accounted for on the wire, no
   failures, no leaked workers, and the latency histograms populated. *)
let check_serve path =
  let j = load path in
  let counters = field_exn ~ctx:path j "counters" in
  let jobs = int_field ~ctx:path counters "service.jobs" in
  if jobs < 1 then fail "%s: no jobs recorded" path;
  let submitted = int_field ~ctx:path counters "service.submitted" in
  if submitted <> jobs then
    fail "%s: submitted %d of %d jobs (driver lost arrivals)" path submitted
      jobs;
  let admitted = int_field ~ctx:path counters "service.admitted" in
  let shed = opt_int_field ~ctx:path counters "service.shed" in
  let completed = opt_int_field ~ctx:path counters "service.completed" in
  if admitted < 1 then fail "%s: admission admitted nothing" path;
  if completed < 1 then fail "%s: no job ever completed" path;
  (* the wire protocol is observable end to end: every admission was a
     202 at the client, every rejection a 429 *)
  let accepted = opt_int_field ~ctx:path counters "service.client.accepted" in
  let rejected = opt_int_field ~ctx:path counters "service.client.rejected" in
  if accepted <> admitted then
    fail "%s: client saw %d accepts for %d admissions" path accepted admitted;
  if accepted + rejected <> submitted then
    fail "%s: client replies (%d) do not cover submissions (%d)" path
      (accepted + rejected) submitted;
  if opt_int_field ~ctx:path counters "service.failed" > 0 then
    fail "%s: %d jobs failed" path
      (opt_int_field ~ctx:path counters "service.failed");
  if opt_int_field ~ctx:path counters "service.workers.leaked" > 0 then
    fail "%s: workers still busy after drain" path;
  if opt_int_field ~ctx:path counters "service.lost_jobs" > 0 then
    fail "%s: jobs vanished without a terminal record" path;
  (* shed-counter sanity: the taxonomy sums to the total, the hot
     tenant carries every shed, the light tenants ride clean *)
  let shed_sum =
    List.fold_left
      (fun acc t ->
        List.fold_left
          (fun acc reason ->
            acc
            + opt_int_field ~ctx:path counters
                (Printf.sprintf "service.shed.%s.%s" reason t))
          acc [ "rate"; "queue-full"; "evicted" ])
      0 [ "t0"; "t1"; "t2"; "t3" ]
  in
  if shed_sum <> shed then
    fail "%s: per-tenant shed counters sum to %d, total says %d" path shed_sum
      shed;
  if opt_int_field ~ctx:path counters "service.shed.rate.t0" < 1 then
    fail "%s: hot tenant t0 was never rate-shed (admission vacuous)" path;
  List.iter
    (fun t ->
      List.iter
        (fun reason ->
          let k = Printf.sprintf "service.shed.%s.%s" reason t in
          if opt_int_field ~ctx:path counters k > 0 then
            fail "%s: light tenant %s was shed (%s)" path t k)
        [ "rate"; "queue-full"; "evicted" ])
    [ "t1"; "t2"; "t3" ];
  let hists = field_exn ~ctx:path j "histograms" in
  List.iter
    (fun name ->
      let h = field_exn ~ctx:path hists name in
      if int_field ~ctx:path h "count" < 1 then
        fail "%s: histogram %S is empty" path name)
    [ "service.e2e_ns"; "service.wait_ns"; "service.exec_ns";
      "service.queue.depth" ];
  let e2e = field_exn ~ctx:path hists "service.e2e_ns" in
  if int_field ~ctx:path e2e "count" <> completed + opt_int_field ~ctx:path counters "service.failed"
  then
    fail "%s: e2e histogram count %d does not match executed jobs %d" path
      (int_field ~ctx:path e2e "count")
      completed

(* The fleet metrics document is one merged object: fleet-wide
   aggregates (every session's counters and histogram buckets folded
   together) under "fleet", per-session registries under "sessions". *)
let check_fleet path =
  let j = load path in
  let fleet = field_exn ~ctx:path j "fleet" in
  let sessions =
    match field_exn ~ctx:path j "sessions" with
    | Obj kvs -> kvs
    | _ -> fail "%s: sessions is not an object" path
  in
  let n = List.length sessions in
  if n < 1 then fail "%s: no per-session breakdown" path;
  let counters = field_exn ~ctx:path fleet "counters" in
  if int_field ~ctx:path counters "symcache.hits" < 1 then
    fail "%s: fleet symbol cache never hit" path;
  if int_field ~ctx:path counters "symcache.misses" < 1 then
    fail "%s: fleet recorded no cold analysis" path;
  if opt_int_field ~ctx:path counters "fleet.failures.fleet" > 0 then
    fail "%s: fleet sessions failed in a clean run" path;
  let hist =
    field_exn ~ctx:path
      (field_exn ~ctx:path fleet "histograms")
      "fleet.attach_ns.fleet"
  in
  if int_field ~ctx:path hist "count" <> n then
    fail "%s: fleet attach histogram count: %d (want %d sessions)" path
      (int_field ~ctx:path hist "count")
      n;
  (* every session carries its own stage profile *)
  List.iter
    (fun (name, sj) ->
      let h =
        field_exn ~ctx:(path ^ ":" ^ name)
          (field_exn ~ctx:(path ^ ":" ^ name) sj "histograms")
          "stage.attach.total_ns"
      in
      if int_field ~ctx:(path ^ ":" ^ name) h "count" < 1 then
        fail "%s: session %s has no stage profile" path name)
    sessions

(* The fork gate: hold a forked fleet's metrics document against a
   cold-boot one. Forking must be at least 10x below the cold attach
   p50, the overlay must stay mostly shared (copied < shared), every
   forked session must attach, and the per-fork isolation/oracle
   checks (counted into fleet.failures on violation) must be silent. *)
let check_fleet_fork cold_path fork_path =
  let cold = load cold_path and fork = load fork_path in
  let fleet_of j path = field_exn ~ctx:path j "fleet" in
  let cold_fleet = fleet_of cold cold_path
  and fork_fleet = fleet_of fork fork_path in
  let hist ~path fleet name =
    field_exn ~ctx:path (field_exn ~ctx:path fleet "histograms") name
  in
  let cold_attach = hist ~path:cold_path cold_fleet "fleet.attach_ns.fleet" in
  let fork_hist = hist ~path:fork_path fork_fleet "fleet.fork_ns.fleet" in
  let sessions j path =
    match field_exn ~ctx:path j "sessions" with
    | Obj kvs -> List.length kvs
    | _ -> fail "%s: sessions is not an object" path
  in
  let n = sessions fork fork_path in
  if n < 1 then fail "%s: no forked sessions" fork_path;
  if int_field ~ctx:fork_path fork_hist "count" <> n then
    fail "%s: fork histogram count %d does not cover %d sessions" fork_path
      (int_field ~ctx:fork_path fork_hist "count")
      n;
  let cold_p50 = int_field ~ctx:cold_path cold_attach "p50" in
  let fork_p99 = int_field ~ctx:fork_path fork_hist "p99" in
  if fork_p99 * 10 > cold_p50 then
    fail
      "%s: fork p99 %d ns exceeds 10%% of the cold-boot attach p50 %d ns \
       (forking is not a cheap spawn)"
      fork_path fork_p99 cold_p50;
  let fcounters = field_exn ~ctx:fork_path fork_fleet "counters" in
  let copied = int_field ~ctx:fork_path fcounters "overlay.pages_copied" in
  let shared = int_field ~ctx:fork_path fcounters "overlay.pages_shared" in
  if copied >= shared then
    fail "%s: overlay copied %d pages vs %d shared (CoW is not sharing)"
      fork_path copied shared;
  (* session failures fold the fork-isolation console check and every
     per-session oracle into one counter *)
  if opt_int_field ~ctx:fork_path fcounters "fleet.failures.fleet" > 0 then
    fail "%s: forked sessions failed" fork_path;
  if
    opt_int_field ~ctx:cold_path
      (field_exn ~ctx:cold_path cold_fleet "counters")
      "fleet.failures.fleet"
    > 0
  then fail "%s: cold-boot sessions failed" cold_path

let check_fuzz path =
  let j = load path in
  let counters = field_exn ~ctx:path j "counters" in
  let seeds = int_field ~ctx:path counters "fuzz.seeds" in
  if seeds < 1 then fail "%s: no fuzz seeds recorded" path;
  let hangs = opt_int_field ~ctx:path counters "fuzz.hangs" in
  let unclean = opt_int_field ~ctx:path counters "fuzz.unclean" in
  if hangs > 0 then fail "%s: %d hangs in the fault matrix" path hangs;
  if unclean > 0 then fail "%s: %d unclean failures in the fault matrix" path unclean;
  List.iter
    (fun cls ->
      let seen = opt_int_field ~ctx:path counters ("fuzz.class_seen." ^ cls) in
      if seen < 1 then fail "%s: fault class %S was never exercised" path cls)
    fault_classes

let mutator_classes =
  [ "reorder"; "drop"; "duplicate"; "corrupt"; "splice"; "timewarp" ]

(* The trace-mutation campaign metrics (vmsh fuzz --from-trace). A BUG
   verdict is any hang, unclean failure, oracle divergence or
   descriptor leak — the gate demands zero of them, every bug (if any
   ever appears) auto-minimized, and the campaign non-vacuous: every
   mutator class proposed at least one mutant and the corpus kept
   novel coverage. *)
let check_fuzz_trace path =
  let j = load path in
  let counters = field_exn ~ctx:path j "counters" in
  let run = int_field ~ctx:path counters "fuzz.mutants_run" in
  if run < 1 then fail "%s: no mutants were run" path;
  let survived = opt_int_field ~ctx:path counters "fuzz.survived" in
  let clean = opt_int_field ~ctx:path counters "fuzz.clean_aborts" in
  let bugs = opt_int_field ~ctx:path counters "fuzz.bugs" in
  let minimized = opt_int_field ~ctx:path counters "fuzz.minimized_bugs" in
  let hangs = opt_int_field ~ctx:path counters "fuzz.hangs" in
  if survived + clean + bugs <> run then
    fail "%s: verdicts (%d survived + %d clean + %d bugs) do not account for \
          %d mutants"
      path survived clean bugs run;
  if hangs > 0 then fail "%s: %d mutants hung the pipeline" path hangs;
  if bugs > 0 then
    fail "%s: %d mutants broke the pipeline (BUG verdicts)" path bugs;
  if minimized <> bugs then
    fail "%s: %d bugs but %d minimized reproducers" path bugs minimized;
  List.iter
    (fun cls ->
      if opt_int_field ~ctx:path counters ("fuzz.mutator_fired." ^ cls) < 1
      then fail "%s: mutator class %S never fired" path cls)
    mutator_classes;
  if int_field ~ctx:path counters "fuzz.corpus.kept" < 1 then
    fail "%s: the corpus kept nothing (coverage feedback vacuous)" path;
  if int_field ~ctx:path counters "fuzz.corpus.ngrams" < 1 then
    fail "%s: no coverage n-grams recorded" path

let check_sweep path =
  let j = load path in
  let counters = field_exn ~ctx:path j "counters" in
  let points = int_field ~ctx:path counters "sweep.points" in
  if points < 1 then fail "%s: no sweep points recorded" path;
  if int_field ~ctx:path counters "sweep.classes" < 2 then
    fail "%s: sweep covered fewer than 2 fault classes" path;
  let pass = int_field ~ctx:path counters "sweep.oracle_pass" in
  let oracle_fail = opt_int_field ~ctx:path counters "sweep.oracle_fail" in
  if oracle_fail > 0 then
    fail "%s: %d sweep points left the guest mutated" path oracle_fail;
  if pass <> points then
    fail "%s: oracle passed %d of %d points" path pass points;
  let leaked = opt_int_field ~ctx:path counters "sweep.leaked_fds" in
  if leaked > 0 then fail "%s: %d descriptors leaked across the sweep" path leaked;
  let unclean = opt_int_field ~ctx:path counters "sweep.unclean" in
  if unclean > 0 then fail "%s: %d unclean failures in the sweep" path unclean;
  if opt_int_field ~ctx:path counters "sweep.aborted" < 1 then
    fail "%s: no crash point ever fired (sweep vacuous)" path;
  if opt_int_field ~ctx:path counters "sweep.completed" < 1 then
    fail "%s: no probe completed (sweep vacuous)" path

let hostile_classes =
  [ "toctou-scan"; "balloon"; "desc-chaos"; "mem-churn" ]

(* The hostile-guest chaos matrix (vmsh sweep --hostile): the standard
   sweep post-conditions must hold with an adversary racing every cell
   — snapshot oracle clean everywhere, nothing leaked, no unclean
   failure — and the matrix must be non-vacuous: all four adversarial
   classes swept at least one cell, at least one crash point fired
   under attack, and at least one attach completed despite it. *)
let check_hostile path =
  let j = load path in
  let counters = field_exn ~ctx:path j "counters" in
  let points = int_field ~ctx:path counters "sweep.points" in
  if points < 1 then fail "%s: no hostile cells recorded" path;
  if int_field ~ctx:path counters "sweep.classes" < List.length hostile_classes
  then
    fail "%s: hostile matrix covered fewer than %d adversary classes" path
      (List.length hostile_classes);
  List.iter
    (fun cls ->
      let k = "sweep.cells.hostile-" ^ cls in
      if opt_int_field ~ctx:path counters k < 1 then
        fail "%s: hostile class %S never swept a cell" path cls)
    hostile_classes;
  let pass = int_field ~ctx:path counters "sweep.oracle_pass" in
  if pass <> points then
    fail "%s: oracle passed %d of %d hostile cells" path pass points;
  if opt_int_field ~ctx:path counters "sweep.oracle_fail" > 0 then
    fail "%s: hostile cells left the guest mutated" path;
  let leaked = opt_int_field ~ctx:path counters "sweep.leaked_fds" in
  if leaked > 0 then
    fail "%s: %d descriptors leaked to the adversary" path leaked;
  let unclean = opt_int_field ~ctx:path counters "sweep.unclean" in
  if unclean > 0 then
    fail "%s: %d unclean failures under attack" path unclean;
  if opt_int_field ~ctx:path counters "sweep.aborted" < 1 then
    fail "%s: no crash point ever fired under attack (matrix vacuous)" path;
  if opt_int_field ~ctx:path counters "sweep.completed" < 1 then
    fail "%s: no attach ever completed under attack (hardening vacuous)" path

let () =
  match Array.to_list Sys.argv with
  | _ :: "json" :: (_ :: _ as files) -> List.iter (fun f -> ignore (load f)) files
  | [ _; "trace"; f ] -> check_trace f
  | [ _; "net-metrics"; f ] -> check_net_metrics f
  | [ _; "bench"; f ] -> check_bench f
  | [ _; "fuzz"; f ] -> check_fuzz f
  | [ _; "fuzz-trace"; f ] -> check_fuzz_trace f
  | [ _; "fleet"; f ] -> check_fleet f
  | [ _; "fleet-fork"; cold; fork ] -> check_fleet_fork cold fork
  | [ _; "sweep"; f ] -> check_sweep f
  | [ _; "serve"; f ] -> check_serve f
  | [ _; "hostile"; f ] -> check_hostile f
  | _ ->
      prerr_endline
        "usage: ci_check {json FILE... | trace FILE | net-metrics FILE | \
         bench FILE | fuzz FILE | fuzz-trace FILE | fleet FILE | \
         fleet-fork COLD FORK | sweep FILE | serve FILE | hostile FILE}";
      exit 2
