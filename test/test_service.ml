(* The job-service subsystem: admission policies as pure units, the
   wire codec, deadline surfacing, and the whole-service determinism
   gate (double run of a loaded serve is byte-identical). *)

module H = Hostos
module Job = Service.Job
module Adm = Service.Admission
module D = Service.Dispatch

let check = Alcotest.check
let cint = Alcotest.int
let cbool = Alcotest.bool
let cstr = Alcotest.string

let job ?(id = 0) ?(tenant = "t0") ?(kind = Job.Attach) ?(seed = 1)
    ?(priority = 0) ?(deadline_ns = 0.) () =
  { Job.id; tenant; kind; seed; priority; deadline_ns }

(* --- wire codec --- *)

let test_wire_roundtrip () =
  let kinds =
    [
      Job.Attach;
      Job.Attach_detach;
      Job.Sweep_cell { cls = "wedged-stop"; k = 7 };
      Job.Fuzz_seed { boost = "msg-drop" };
      Job.Hostile_attach { cls = "desc-chaos" };
    ]
  in
  List.iteri
    (fun i kind ->
      let j =
        job ~id:(100 + i) ~tenant:"t2" ~kind ~seed:(i * 31) ~priority:2
          ~deadline_ns:5e6 ()
      in
      match Job.of_wire (Job.to_wire j) with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok j' ->
          check cint "id" j.Job.id j'.Job.id;
          check cstr "tenant" j.Job.tenant j'.Job.tenant;
          check cstr "kind"
            (Job.kind_to_string j.Job.kind)
            (Job.kind_to_string j'.Job.kind);
          check cint "seed" j.Job.seed j'.Job.seed;
          check cint "priority" j.Job.priority j'.Job.priority;
          check cbool "deadline" true (j.Job.deadline_ns = j'.Job.deadline_ns))
    kinds

let test_wire_rejects_garbage () =
  List.iter
    (fun s ->
      match Job.of_wire s with
      | Ok _ -> Alcotest.failf "accepted garbage: %S" s
      | Error _ -> ())
    [
      "";
      "GET /jobs HTTP/1.0\r\n\r\n";
      "POST /jobs HTTP/1.0\r\nX-Tenant: t0\r\n\r\n";
      "POST /jobs HTTP/1.0\r\nX-Job: id=1 kind=attach seed=1 prio=0 \
       deadline=0\r\n\r\n";
    ]

(* --- token bucket --- *)

let tenant_cfg ?(rate = 10.) ?(burst = 2.) ?(queue = 4) ?(policy = Adm.Reject)
    name =
  {
    (Adm.default_tenant name) with
    Adm.tc_rate = rate;
    tc_burst = burst;
    tc_queue = queue;
    tc_policy = policy;
  }

let test_token_bucket_reject () =
  let adm = Adm.create [ tenant_cfg "t0" ] in
  (* burst of 2: two admits, then rate sheds until refill *)
  let d1 = Adm.submit adm ~now:0. (job ~id:0 ()) in
  let d2 = Adm.submit adm ~now:0. (job ~id:1 ()) in
  let d3 = Adm.submit adm ~now:0. (job ~id:2 ()) in
  check cbool "first admitted" true (match d1 with Adm.Admitted _ -> true | _ -> false);
  check cbool "second admitted" true (match d2 with Adm.Admitted _ -> true | _ -> false);
  (match d3 with
  | Adm.Rejected reason -> check cstr "shed reason" "rate" reason
  | Adm.Admitted _ -> Alcotest.fail "third should be rate-shed");
  (* 100ms at 10 tok/s mints exactly one token *)
  let d4 = Adm.submit adm ~now:100e6 (job ~id:3 ()) in
  let d5 = Adm.submit adm ~now:100e6 (job ~id:4 ()) in
  check cbool "refilled token admits" true
    (match d4 with Adm.Admitted _ -> true | _ -> false);
  check cbool "but only one" true
    (match d5 with Adm.Rejected "rate" -> true | _ -> false);
  let stats = List.assoc "t0" (Adm.stats adm) in
  check cint "submitted" 5 stats.Adm.ts_submitted;
  check cint "admitted" 3 stats.Adm.ts_admitted;
  check cint "rate sheds counted" 2 stats.Adm.ts_shed_rate

let test_token_bucket_defer () =
  let adm = Adm.create [ tenant_cfg ~policy:Adm.Defer "t0" ] in
  ignore (Adm.submit adm ~now:0. (job ~id:0 ()));
  ignore (Adm.submit adm ~now:0. (job ~id:1 ()));
  (* bucket empty: defer admits but stamps a future eligibility *)
  (match Adm.submit adm ~now:0. (job ~id:2 ()) with
  | Adm.Rejected r -> Alcotest.failf "defer rejected: %s" r
  | Adm.Admitted _ -> ());
  check cint "all three queued" 3 (Adm.queued adm);
  (* heads 0 and 1 are eligible now; 2 only after one refill (100ms) *)
  check cbool "first dequeues now" true (Adm.dequeue adm ~now:0. <> None);
  check cbool "second dequeues now" true (Adm.dequeue adm ~now:0. <> None);
  check cbool "deferred job not yet eligible" true
    (Adm.dequeue adm ~now:50e6 = None);
  (match Adm.next_eligible adm with
  | None -> Alcotest.fail "deferred job should report eligibility"
  | Some t -> check cbool "eligible at one refill period" true (t = 100e6));
  (match Adm.dequeue adm ~now:100e6 with
  | None -> Alcotest.fail "deferred job should release at eligibility"
  | Some e -> check cint "it is the deferred job" 2 e.Adm.e_job.Job.id)

(* --- queue bounds --- *)

let test_queue_bound_reject () =
  let adm = Adm.create [ tenant_cfg ~rate:infinity ~queue:2 "t0" ] in
  ignore (Adm.submit adm ~now:0. (job ~id:0 ()));
  ignore (Adm.submit adm ~now:0. (job ~id:1 ()));
  (match Adm.submit adm ~now:0. (job ~id:2 ()) with
  | Adm.Rejected reason -> check cstr "reason" "queue-full" reason
  | Adm.Admitted _ -> Alcotest.fail "full queue must reject");
  check cint "depth capped" 2 (Adm.queue_depth adm "t0")

let test_queue_bound_shed_oldest () =
  let adm =
    Adm.create [ tenant_cfg ~rate:infinity ~queue:2 ~policy:Adm.Shed_oldest "t0" ]
  in
  ignore (Adm.submit adm ~now:0. (job ~id:0 ()));
  ignore (Adm.submit adm ~now:0. (job ~id:1 ()));
  (match Adm.submit adm ~now:0. (job ~id:2 ()) with
  | Adm.Admitted { evicted = Some ev } ->
      check cint "oldest evicted" 0 ev.Adm.e_job.Job.id
  | Adm.Admitted { evicted = None } -> Alcotest.fail "must evict to make room"
  | Adm.Rejected r -> Alcotest.failf "shed-oldest rejected: %s" r);
  check cint "depth still capped" 2 (Adm.queue_depth adm "t0");
  let stats = List.assoc "t0" (Adm.stats adm) in
  check cint "eviction counted" 1 stats.Adm.ts_shed_evicted;
  (* remaining queue is jobs 1 and 2 *)
  let ids =
    [ Adm.dequeue adm ~now:0.; Adm.dequeue adm ~now:0. ]
    |> List.filter_map (Option.map (fun e -> e.Adm.e_job.Job.id))
  in
  check cbool "survivors are 1 and 2" true (List.sort compare ids = [ 1; 2 ])

let test_priority_order_within_tenant () =
  let adm = Adm.create [ tenant_cfg ~rate:infinity "t0" ] in
  ignore (Adm.submit adm ~now:0. (job ~id:0 ~priority:0 ()));
  ignore (Adm.submit adm ~now:0. (job ~id:1 ~priority:2 ()));
  ignore (Adm.submit adm ~now:0. (job ~id:2 ~priority:2 ()));
  let next () =
    match Adm.dequeue adm ~now:0. with
    | Some e -> e.Adm.e_job.Job.id
    | None -> Alcotest.fail "queue should not be empty"
  in
  check cint "highest priority first" 1 (next ());
  check cint "fifo within priority" 2 (next ());
  check cint "low priority last" 0 (next ())

(* --- weighted-fair dequeue --- *)

let test_wfq_hot_tenant_cannot_starve () =
  (* hot tenant floods 20 jobs, light tenant (double weight) has 4;
     with both backlogged, the light tenant's jobs must all release
     within the first stretch rather than queue behind the flood *)
  let adm =
    Adm.create
      [
        tenant_cfg ~rate:infinity ~queue:64 "hot";
        { (tenant_cfg ~rate:infinity ~queue:64 "light") with Adm.tc_weight = 2 };
      ]
  in
  for i = 0 to 19 do
    ignore (Adm.submit adm ~now:0. (job ~id:i ~tenant:"hot" ()))
  done;
  for i = 20 to 23 do
    ignore (Adm.submit adm ~now:0. (job ~id:i ~tenant:"light" ()))
  done;
  let order = ref [] in
  let rec drain () =
    match Adm.dequeue adm ~now:0. with
    | Some e ->
        order := e.Adm.e_job.Job.tenant :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  let order = List.rev !order in
  check cint "everything drained" 24 (List.length order);
  (* weight 2 vs 1: while light has backlog it gets 2 of every 3
     dispatches, so all 4 light jobs are gone within the first 6 *)
  let first6 = List.filteri (fun i _ -> i < 6) order in
  check cint "light tenant served 4 of first 6" 4
    (List.length (List.filter (( = ) "light") first6));
  let hot_stats = List.assoc "hot" (Adm.stats adm) in
  check cint "hot still fully served eventually" 20
    hot_stats.Adm.ts_dispatched

(* --- deadlines surface the error taxonomy --- *)

let test_deadline_exceeded_roundtrip () =
  (* 1 worker, a burst of slow jobs, 1ms deadline: jobs stuck behind
     the first one expire, rendered via Vmsh_error.Deadline_exceeded *)
  let cfg =
    {
      D.default_config with
      D.workers = 1;
      jobs = 6;
      seed = 3;
      rate = 4000.;
      arrivals = D.Bursty;
      deadline_ns = 1e6;
      ram_mb = 16;
    }
  in
  let r = D.run cfg in
  let expired =
    Array.to_list r.D.rp_records
    |> List.filter_map (fun jr ->
           match jr.D.jr_status with
           | Job.Expired late -> Some (jr.D.jr_job.Job.id, late)
           | _ -> None)
  in
  check cbool "some jobs expired behind the slow worker" true (expired <> []);
  List.iter
    (fun (_, late) ->
      check cbool "lateness positive" true (late > 0);
      let rendered =
        Vmsh.Vmsh_error.to_string
          (Vmsh.Vmsh_error.Context
             ("job deadline", Vmsh.Vmsh_error.Deadline_exceeded late))
      in
      (* the taxonomy must round-trip so the durable result log is
         diagnosable from its rendered form alone *)
      check cstr "deadline error round-trips" rendered
        (Vmsh.Vmsh_error.to_string (Vmsh.Vmsh_error.of_string rendered)))
    expired;
  (* the rendered form also lands in the results file *)
  let results = D.results_jsonl r in
  check cbool "results carry deadline detail" true
    (let needle = "deadline" in
     let nl = String.length needle and rl = String.length results in
     let rec scan i =
       i + nl <= rl && (String.sub results i nl = needle || scan (i + 1))
     in
     scan 0)

(* --- whole-service determinism --- *)

let test_serve_double_run_identical () =
  (* a loaded run: hot tenant over its bucket, all four kinds in the
     mix, workers contended — then the whole observable output
     (results file + merged metrics) must be byte-identical *)
  let cfg =
    { D.default_config with D.workers = 4; jobs = 40; seed = 29; ram_mb = 16 }
  in
  let r1 = D.run cfg in
  let r2 = D.run cfg in
  check cstr "results byte-identical" (D.results_jsonl r1) (D.results_jsonl r2);
  check cstr "metrics byte-identical" (D.metrics_json r1) (D.metrics_json r2);
  check cstr "digest stable" (D.digest r1) (D.digest r2);
  check cint "no failures" 0 (D.failed r1);
  check cint "no leaked workers" 0 r1.D.rp_leaked_workers

let test_serve_hot_tenant_shed_others_clean () =
  let cfg =
    { D.default_config with D.workers = 4; jobs = 120; seed = 17; ram_mb = 16 }
  in
  let r = D.run cfg in
  let stat name = List.assoc name r.D.rp_stats in
  let sheds s =
    s.Adm.ts_shed_rate + s.Adm.ts_shed_queue + s.Adm.ts_shed_evicted
  in
  check cbool "hot tenant shed under load" true (sheds (stat "t0") > 0);
  List.iter
    (fun t -> check cint (t ^ " unaffected") 0 (sheds (stat t)))
    [ "t1"; "t2"; "t3" ];
  check cint "no failures" 0 (D.failed r);
  check cint "no leaked workers" 0 r.D.rp_leaked_workers;
  (* every job has a terminal record *)
  check cint "every job accounted for" cfg.D.jobs
    (Array.length r.D.rp_records)

(* --- a hostile tenant cannot hurt its neighbours --- *)

let test_serve_hostile_tenant_isolated () =
  (* turn one tenant's entire stream into adversarial-guest attaches:
     its guests race their own attach from inside the VM. The other
     tenants' jobs — same ids, kinds and machine seeds either way —
     must reach the same terminal statuses, and the adversary must not
     fail jobs, leak workers, or break whole-service determinism *)
  let base =
    { D.default_config with D.workers = 4; jobs = 40; seed = 29; ram_mb = 16 }
  in
  let hostile = { base with D.hostile_tenant = Some ("t3", "toctou-scan") } in
  let clean_r = D.run base in
  let host_r = D.run hostile in
  check cint "no failures under attack" 0 (D.failed host_r);
  check cint "no leaked workers under attack" 0 host_r.D.rp_leaked_workers;
  let hostile_jobs =
    Array.to_list host_r.D.rp_records
    |> List.filter (fun jr ->
           match jr.D.jr_job.Job.kind with
           | Job.Hostile_attach _ -> true
           | _ -> false)
  in
  check cbool "the hostile tenant actually ran hostile jobs" true
    (hostile_jobs <> []);
  List.iter
    (fun jr ->
      check cstr "hostile jobs confined to the hostile tenant" "t3"
        jr.D.jr_job.Job.tenant)
    hostile_jobs;
  let neighbour_outcomes r =
    Array.to_list r.D.rp_records
    |> List.filter (fun jr -> jr.D.jr_job.Job.tenant <> "t3")
    |> List.map (fun jr ->
           ( jr.D.jr_job.Job.id,
             Job.kind_to_string jr.D.jr_job.Job.kind,
             Job.status_to_string jr.D.jr_status ))
  in
  check cbool "neighbour tenants' outcomes unchanged by the adversary" true
    (neighbour_outcomes clean_r = neighbour_outcomes host_r);
  let host_r2 = D.run hostile in
  check cstr "hostile run still double-run identical" (D.digest host_r)
    (D.digest host_r2)

let suite =
  [
    ( "service.units",
      [
        Alcotest.test_case "job wire codec round-trips" `Quick
          test_wire_roundtrip;
        Alcotest.test_case "wire codec rejects garbage" `Quick
          test_wire_rejects_garbage;
        Alcotest.test_case "token bucket sheds at rate" `Quick
          test_token_bucket_reject;
        Alcotest.test_case "defer borrows and shapes" `Quick
          test_token_bucket_defer;
        Alcotest.test_case "queue bound rejects" `Quick test_queue_bound_reject;
        Alcotest.test_case "shed-oldest evicts the oldest" `Quick
          test_queue_bound_shed_oldest;
        Alcotest.test_case "priority order within tenant" `Quick
          test_priority_order_within_tenant;
        Alcotest.test_case "weighted-fair dequeue under hot tenant" `Quick
          test_wfq_hot_tenant_cannot_starve;
      ] );
    ( "service.e2e",
      [
        Alcotest.test_case "deadline exceeded surfaces round-trippably"
          `Quick test_deadline_exceeded_roundtrip;
        Alcotest.test_case "double run byte-identical" `Quick
          test_serve_double_run_identical;
        Alcotest.test_case "hot tenant shed, others unaffected" `Quick
          test_serve_hot_tenant_shed_others_clean;
        Alcotest.test_case "hostile tenant isolated from neighbours" `Quick
          test_serve_hostile_tenant_isolated;
      ] );
  ]
