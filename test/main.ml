let () =
  Alcotest.run "vmsh"
    (Test_hostos.suite @ Test_x86.suite @ Test_elfkit.suite @ Test_blockdev.suite @ Test_virtio.suite @ Test_kvm.suite @ Test_linux_guest.suite @ Test_boot.suite @ Test_attach.suite @ Test_vmsh_units.suite @ Test_workloads.suite @ Test_usecases.suite @ Test_hypervisor.suite
     @ Test_attach.robustness_suite @ Test_observe.suite @ Test_net.suite @ Test_faults.suite
     @ Test_fleet.suite @ Test_service.suite @ Test_rollback.suite @ Test_trace.suite
     @ Test_fuzz.suite @ Test_hostile.suite)
