(* The hostile-guest engine and the chaos matrix built on it.

   The unit half checks the engine's contract (seeded determinism,
   bounded budget, class naming); the integration half runs single
   matrix cells end-to-end and asserts the hardened attach path's
   guarantee: completed attach or clean round-trippable abort, snapshot
   oracle passing, nothing leaked. The full matrix (every class × every
   crash point) runs in the [hostile-matrix] CI stage, not here. *)

module Sweep = Fleet.Sweep

let test_names () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Hostile.name c ^ " round-trips") true
        (Hostile.of_name (Hostile.name c) = Some c))
    Hostile.all;
  Alcotest.(check (option reject)) "unknown name" None (Hostile.of_name "evil")

(* One probe cell per class: no crash point, adversary stepping at
   every yield. Whatever the outcome, the post-conditions must hold. *)
let check_cell ?k h =
  let point, _yields =
    Sweep.run_point ~hostile:h ~seed:11 ~cls:None ~k ()
  in
  let label = Format.asprintf "%a" Sweep.pp_point point in
  Alcotest.(check (list string)) (label ^ ": oracle") [] point.Sweep.pt_oracle;
  Alcotest.(check int) (label ^ ": fd leak") 0 point.Sweep.pt_leaked_fds;
  (match point.Sweep.pt_unclean with
  | Some m -> Alcotest.failf "%s: unclean: %s" label m
  | None -> ());
  point

let test_probe_cells () =
  List.iter
    (fun h ->
      let p = check_cell h in
      (* the adversary must actually have acted, not silently no-oped *)
      Alcotest.(check bool)
        (Hostile.name h ^ " stepped")
        true
        (List.exists
           (fun e -> e.Trace.kind = "hostile.step")
           p.Sweep.pt_events))
    Hostile.all

(* The same cell twice must be byte-identical: same outcome, same
   digest, same flight recording (the determinism gate every hostile
   reproducer depends on). *)
let test_cell_determinism () =
  List.iter
    (fun h ->
      let a = check_cell h and b = check_cell h in
      Alcotest.(check string)
        (Hostile.name h ^ " outcome") a.Sweep.pt_outcome b.Sweep.pt_outcome;
      Alcotest.(check string)
        (Hostile.name h ^ " digest") a.Sweep.pt_digest b.Sweep.pt_digest;
      Alcotest.(check int)
        (Hostile.name h ^ " events")
        (List.length a.Sweep.pt_events)
        (List.length b.Sweep.pt_events))
    Hostile.all

(* A mid-attach crash point under an active adversary: the journal must
   still roll the guest back cleanly. *)
let test_crash_under_attack () =
  List.iter (fun h -> ignore (check_cell ~k:3 h)) Hostile.all

let test_hostile_meta () =
  let point, _ =
    Sweep.run_point ~hostile:Hostile.Toctou_scan ~seed:11 ~cls:None ~k:None ()
  in
  Alcotest.(check bool)
    "cell labelled hostile" true
    (point.Sweep.pt_class = "hostile-toctou-scan")

let suite =
  [
    ( "hostile",
      [
        Alcotest.test_case "class names round-trip" `Quick test_names;
        Alcotest.test_case "probe cells clean" `Slow test_probe_cells;
        Alcotest.test_case "cells are deterministic" `Slow test_cell_determinism;
        Alcotest.test_case "crash point under attack" `Slow test_crash_under_attack;
        Alcotest.test_case "hostile cell labelling" `Quick test_hostile_meta;
      ] );
  ]
