(* lib/fuzz: the trace-mutation engine — seeded mutators, the causality
   validator, n-gram coverage, the deterministic campaign loop and the
   delta-debugging minimizer. Campaigns here run against stub executors
   (the engine is executor-agnostic by construction); one test drives a
   real recorded attach through the real attack executor. *)

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstr = Alcotest.string

let ev ?(session = 0) ?(args = []) ts kind =
  { Trace.kind; ts; session; args }

(* A protocol-consistent synthetic boundary stream with legal sites for
   every mutator class: droppable doorbells, corruptible typed args,
   commuting adjacent pairs, and enough length to splice. *)
let base_events =
  [
    ev 10. "attach.begin" ~args:[ ("hypervisor_pid", Trace.I 100) ];
    ev 20. "attach.phase"
      ~args:[ ("name", Trace.S "ptrace-attach"); ("dur_ns", Trace.I 10) ];
    ev 30. "inject.syscall" ~args:[ ("nr", Trace.S "ioctl"); ("ret", Trace.I 0) ];
    ev 40. "kvm.ioctl" ~args:[ ("code", Trace.I 0xae80) ];
    ev 50. "kvm.exit.mmio"
      ~args:[ ("addr", Trace.I 0xfe003000); ("len", Trace.I 4); ("is_write", Trace.I 1) ];
    ev 60. "kvm.exit.ioregionfd"
      ~args:[ ("addr", Trace.I 0xfe004000); ("kind", Trace.S "read") ];
    ev 70. "kvm.kick" ~args:[ ("addr", Trace.I 0xfe005000) ];
    ev 80. "kvm.irq" ~args:[ ("gsi", Trace.I 33); ("source", Trace.S "msi") ];
    ev 90. "kvm.notify_rekick" ~args:[];
    ev 100. "inject.syscall"
      ~args:[ ("nr", Trace.S "eventfd2"); ("ret", Trace.I 9) ];
    ev 110. "kvm.kick" ~args:[ ("addr", Trace.I 0xfe005000) ];
    ev 120. "pump.blk" ~args:[ ("n", Trace.I 3) ];
    ev 130. "kvm.irq" ~args:[ ("gsi", Trace.I 34); ("source", Trace.S "msi") ];
    ev 140. "attach.commit" ~args:[ ("dur_ns", Trace.I 130) ];
    ev 150. "journal.rollback"
      ~args:[ ("entries", Trace.I 7); ("origin", Trace.S "detach") ];
    ev 160. "inject.syscall"
      ~args:[ ("nr", Trace.S "close"); ("ret", Trace.I 0) ];
  ]

let survive_all _events _muts = Faults.Abort.Survived

(* --- mutation serialization --- *)

let sample_mutations =
  [
    { Fuzz.m_op = Fuzz.Reorder; m_at = 4; m_src = 0; m_span = 0; m_key = ""; m_delta = 0 };
    { Fuzz.m_op = Fuzz.Drop; m_at = 6; m_src = 0; m_span = 0; m_key = ""; m_delta = 0 };
    { Fuzz.m_op = Fuzz.Duplicate; m_at = 8; m_src = 0; m_span = 0; m_key = ""; m_delta = 0 };
    { Fuzz.m_op = Fuzz.Corrupt; m_at = 7; m_src = 0; m_span = 0; m_key = "gsi"; m_delta = 2 };
    { Fuzz.m_op = Fuzz.Splice; m_at = 11; m_src = 3; m_span = 3; m_key = ""; m_delta = 0 };
    { Fuzz.m_op = Fuzz.Timewarp; m_at = 5; m_src = 0; m_span = 0; m_key = ""; m_delta = 500 };
  ]

let test_mutation_roundtrip () =
  List.iter
    (fun m ->
      match Fuzz.mutation_of_string (Fuzz.mutation_to_string m) with
      | Some m' ->
          check cbool
            ("round-trips: " ^ Fuzz.mutation_to_string m)
            true (m = m')
      | None ->
          Alcotest.failf "unparseable: %s" (Fuzz.mutation_to_string m))
    sample_mutations;
  (match Fuzz.mutations_of_string (Fuzz.mutations_to_string sample_mutations) with
  | Some ms -> check cbool "chain round-trips" true (ms = sample_mutations)
  | None -> Alcotest.fail "chain unparseable");
  check cbool "empty chain round-trips" true
    (Fuzz.mutations_of_string (Fuzz.mutations_to_string []) = Some []);
  check cbool "garbage rejected" true
    (Fuzz.mutations_of_string "reorder:x:0:0::0" = None)

(* Every mutator class applies to the synthetic base and the mutant
   still round-trips through the binary trace codec. *)
let test_mutants_roundtrip_codec () =
  List.iter
    (fun m ->
      match Fuzz.apply base_events m with
      | None ->
          Alcotest.failf "mutation did not apply: %s"
            (Fuzz.mutation_to_string m)
      | Some mutant -> (
          let bytes = Trace.encode ~meta:[] mutant in
          match Trace.decode bytes with
          | Error e -> Alcotest.failf "mutant decode failed: %s" e
          | Ok f ->
              check cbool
                ("codec round-trip after " ^ Fuzz.mutator_name m.Fuzz.m_op)
                true
                (f.Trace.f_events = mutant)))
    sample_mutations

(* --- causality validator --- *)

let test_validator_accepts_base () =
  check cbool "synthetic base is protocol-consistent" true
    (Fuzz.validate base_events = [])

let test_validator_rejects_violations () =
  let violates evs = Fuzz.validate evs <> [] in
  check cbool "phase before begin" true
    (violates [ ev 1. "attach.phase" ~args:[ ("name", Trace.S "x") ] ]);
  check cbool "double begin" true
    (violates [ ev 1. "attach.begin"; ev 2. "attach.begin" ]);
  check cbool "commit without begin" true (violates [ ev 1. "attach.commit" ]);
  check cbool "injection with no transaction" true
    (violates [ ev 1. "inject.syscall" ~args:[ ("ret", Trace.I 0) ] ]);
  check cbool "session clock runs backwards" true
    (violates [ ev 5. "kvm.kick"; ev 1. "kvm.kick" ]);
  check cbool "independent session clocks accepted" true
    (not
       (violates [ ev ~session:0 5. "kvm.kick"; ev ~session:1 1. "kvm.kick" ]));
  check cbool "mmio len out of range" true
    (violates [ ev 1. "kvm.exit.mmio" ~args:[ ("len", Trace.I 3) ] ]);
  check cbool "gsi out of range" true
    (violates [ ev 1. "kvm.irq" ~args:[ ("gsi", Trace.I 5000) ] ]);
  check cbool "bad ioregionfd op" true
    (violates [ ev 1. "kvm.exit.ioregionfd" ~args:[ ("kind", Trace.S "rmw") ] ])

(* --- coverage --- *)

let test_coverage_keys () =
  let keys = Fuzz.coverage_keys base_events in
  check cbool "non-empty" true (keys <> []);
  check cbool "sorted" true (List.sort compare keys = keys);
  check cint "deduplicated" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  (* set semantics: repeating the stream adds no new 3-grams beyond the
     seam, and identical double computations are identical *)
  check cbool "double computation identical" true
    (Fuzz.coverage_keys base_events = keys);
  let renumbered =
    List.map (fun e -> Trace.with_session e 1) base_events
  in
  check cbool "session is part of the key" true
    (Fuzz.coverage_keys renumbered <> keys)

(* --- campaign determinism: same (trace, seed) => byte-identical
   mutant streams, ledger and coverage --- *)

let test_campaign_deterministic () =
  let run () =
    Fuzz.run_campaign ~base:base_events ~seed:42 ~rounds:18
      ~execute:survive_all ()
  in
  let a = run () and b = run () in
  check cint "same mutant count" a.Fuzz.fz_mutants_run b.Fuzz.fz_mutants_run;
  check cint "18 mutants ran" 18 a.Fuzz.fz_mutants_run;
  List.iter2
    (fun (ra : Fuzz.round_result) (rb : Fuzz.round_result) ->
      check cstr
        (Printf.sprintf "round %d mutant stream byte-identical" ra.Fuzz.rr_round)
        (Trace.encode ~meta:[] ra.Fuzz.rr_events)
        (Trace.encode ~meta:[] rb.Fuzz.rr_events);
      check cstr
        (Printf.sprintf "round %d chain identical" ra.Fuzz.rr_round)
        (Fuzz.mutations_to_string ra.Fuzz.rr_muts)
        (Fuzz.mutations_to_string rb.Fuzz.rr_muts))
    a.Fuzz.fz_rounds b.Fuzz.fz_rounds;
  check cbool "coverage identical" true (a.Fuzz.fz_coverage = b.Fuzz.fz_coverage);
  (* every mutator class fired across 18 rounds of round-robin boosting *)
  List.iter
    (fun (op, n) ->
      check cbool ("mutator fired: " ^ Fuzz.mutator_name op) true (n >= 1))
    a.Fuzz.fz_mutator_fired;
  check cbool "corpus kept novel mutants" true (a.Fuzz.fz_corpus_kept >= 1);
  (* a different seed explores differently *)
  let c =
    Fuzz.run_campaign ~base:base_events ~seed:43 ~rounds:18
      ~execute:survive_all ()
  in
  check cbool "different seed, different campaign" true
    (List.map (fun (r : Fuzz.round_result) -> Fuzz.mutations_to_string r.Fuzz.rr_muts)
       a.Fuzz.fz_rounds
    <> List.map (fun (r : Fuzz.round_result) -> Fuzz.mutations_to_string r.Fuzz.rr_muts)
         c.Fuzz.fz_rounds)

(* --- minimization: a seeded known-bad mutant shrinks to a stable,
   minimal reproducer --- *)

(* Stub executor wired to a planted failure mode: any chain containing
   a Drop mutation is a BUG. *)
let bug_on_drop _events muts =
  if List.exists (fun m -> m.Fuzz.m_op = Fuzz.Drop) muts then
    Faults.Abort.Bug "planted: dropped doorbell wedges the device"
  else Faults.Abort.Survived

let test_minimizer () =
  let still_bug ms =
    ms <> [] && Faults.Abort.is_bug (bug_on_drop [] ms)
  in
  let chain =
    List.filter
      (fun m -> m.Fuzz.m_op <> Fuzz.Drop)
      sample_mutations
  in
  let drop =
    { Fuzz.m_op = Fuzz.Drop; m_at = 6; m_src = 0; m_span = 0; m_key = "";
      m_delta = 0 }
  in
  let noisy = List.concat [ chain; [ drop ]; chain ] in
  let min1 = Fuzz.minimize ~still_bug noisy in
  check cint "minimizes to a single mutation" 1 (List.length min1);
  check cbool "and it is the planted drop" true
    ((List.hd min1).Fuzz.m_op = Fuzz.Drop);
  let min2 = Fuzz.minimize ~still_bug noisy in
  check cbool "minimization is stable across double runs" true (min1 = min2)

let test_campaign_minimizes_bugs () =
  let run () =
    Fuzz.run_campaign ~base:base_events ~seed:7 ~rounds:18
      ~execute:bug_on_drop ()
  in
  let rep = run () in
  check cbool "the planted bug fired" true (rep.Fuzz.fz_bugs >= 1);
  check cint "every bug was minimized" rep.Fuzz.fz_bugs
    rep.Fuzz.fz_minimized_bugs;
  check cint "verdicts account for every mutant" rep.Fuzz.fz_mutants_run
    (rep.Fuzz.fz_survived + rep.Fuzz.fz_clean_aborts + rep.Fuzz.fz_bugs);
  List.iter
    (fun (r : Fuzz.round_result) ->
      match r.Fuzz.rr_minimized with
      | None -> ()
      | Some ms ->
          check cint "reproducer is a single mutation" 1 (List.length ms);
          check cbool "reproducer is the planted drop" true
            ((List.hd ms).Fuzz.m_op = Fuzz.Drop);
          (* the reproducer's truncated base is genuinely smaller and
             the chain still applies to it *)
          let trunc = Fuzz.truncate_base base_events ms in
          check cbool "base truncated" true
            (List.length trunc < List.length base_events);
          check cbool "chain still applies to the truncated base" true
            (Fuzz.apply trunc (List.hd ms) <> None))
    rep.Fuzz.fz_rounds;
  let rep2 = run () in
  check cbool "bug campaign is deterministic" true
    (List.map (fun (r : Fuzz.round_result) -> r.Fuzz.rr_minimized)
       rep.Fuzz.fz_rounds
    = List.map (fun (r : Fuzz.round_result) -> r.Fuzz.rr_minimized)
        rep2.Fuzz.fz_rounds)

(* --- lowering --- *)

let test_script_of_mutations () =
  let drop_kick =
    { Fuzz.m_op = Fuzz.Drop; m_at = 10; m_src = 0; m_span = 0; m_key = "";
      m_delta = 0 }
  in
  let corrupt_ioregionfd =
    { Fuzz.m_op = Fuzz.Corrupt; m_at = 5; m_src = 0; m_span = 0;
      m_key = "addr"; m_delta = 4 }
  in
  let script =
    Fuzz.script_of_mutations base_events [ drop_kick; corrupt_ioregionfd ]
  in
  (* event 10 is the 4th doorbell-shaped event (kick, irq, rekick,
     syscall... no — kick@6 irq@7 rekick@8 kick@10: occurrence 3) *)
  check cbool "dropped doorbell lowers to a notify drop" true
    (List.mem (Faults.Notify_drop, 3) script);
  check cbool "corrupted descriptor lowers to a torn read" true
    (List.exists (fun (c, _) -> c = Faults.Desc_torn) script);
  check cbool "script is deterministic" true
    (script = Fuzz.script_of_mutations base_events [ drop_kick; corrupt_ioregionfd ]);
  (* timewarp contributes nothing to the fault script — it lowers to
     the skew script instead, as a (yield-index, permille) decision *)
  let warp =
    { Fuzz.m_op = Fuzz.Timewarp; m_at = 3; m_src = 0; m_span = 0;
      m_key = ""; m_delta = 4000 }
  in
  check cbool "timewarp lowers to no fault injection" true
    (Fuzz.script_of_mutations base_events [ warp ] = []);
  check cbool "timewarp lowers to a scripted skew" true
    (Fuzz.skew_script_of_mutations base_events [ warp ] = [ (3, 4000) ]);
  check cbool "skew script is deterministic" true
    (Fuzz.skew_script_of_mutations base_events [ warp ]
    = Fuzz.skew_script_of_mutations base_events [ warp ]);
  (* duplicate and splice have no lowering at all; the noop count is
     what [fuzz.lowering.noop] surfaces *)
  let dup =
    { Fuzz.m_op = Fuzz.Duplicate; m_at = 6; m_src = 0; m_span = 0;
      m_key = ""; m_delta = 0 }
  in
  check cint "noop lowerings counted" 1
    (Fuzz.lowering_noops [ warp; dup; drop_kick ]);
  check cbool "non-timewarp mutations skew nothing" true
    (Fuzz.skew_script_of_mutations base_events [ dup; drop_kick ] = [])

(* --- reproducer metadata --- *)

let test_mutant_meta_roundtrip () =
  let base_meta = [ ("scenario", "attach"); ("seed", "5"); ("digest", "ff") ] in
  let verdict = Faults.Abort.Bug "unclean: boom" in
  let meta =
    Fuzz.mutant_meta ~base_meta ~muts:sample_mutations ~prefix:12 ~verdict
  in
  check cbool "tagged as a fuzz mutant" true
    (List.assoc_opt "scenario" meta = Some Fuzz.mutant_scenario);
  match Fuzz.parse_mutant_meta meta with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok mf ->
      check cbool "chain survives" true (mf.Fuzz.mf_muts = sample_mutations);
      check cint "prefix survives" 12 mf.Fuzz.mf_prefix;
      check cbool "verdict survives" true (mf.Fuzz.mf_verdict = verdict);
      check cbool "base scenario restored" true
        (List.assoc_opt "scenario" mf.Fuzz.mf_base_meta = Some "attach");
      check cbool "base seed survives" true
        (List.assoc_opt "seed" mf.Fuzz.mf_base_meta = Some "5")

(* --- the real pipeline: a recorded attach validates, and the attack
   executor survives both an empty and a scripted plan --- *)

let test_real_trace_validates_and_survives () =
  let spec = Replay.Attach { seed = 5 } in
  match Replay.execute spec with
  | Error e -> Alcotest.failf "attach execute failed: %s" e
  | Ok run ->
      check cbool "recorded attach passes the protocol model" true
        (Fuzz.validate run.Replay.run_events = []);
      let attack plan = Replay.execute_attack ~plan spec in
      let empty = Faults.create ~seed:0 ~rate:0.0 () in
      check cbool "unperturbed attack survives" true
        ((attack empty).Replay.at_verdict = Faults.Abort.Survived);
      (* a scripted doorbell drop must be absorbed (retry/rekick), not
         break the pipeline *)
      let scripted = Faults.create ~seed:0 ~rate:0.0 () in
      Faults.set_script scripted [ (Faults.Notify_drop, 0) ];
      let v = (attack scripted).Replay.at_verdict in
      check cbool "scripted notify drop is survivable or a clean abort" true
        (not (Faults.Abort.is_bug v))

(* --- ci.sh regression: an unknown --stage must list stages and exit 2
   (the old substring match let "build test" run zero stages, exit 0) --- *)

let find_ci_sh () =
  let rec up dir n =
    if n = 0 then None
    else
      let candidate = Filename.concat dir "ci.sh" in
      if Sys.file_exists candidate then Some candidate
      else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 6

let test_ci_stage_exact_match () =
  match find_ci_sh () with
  | None -> () (* not running from a build tree; nothing to check *)
  | Some ci ->
      let run arg =
        Sys.command
          (Printf.sprintf "sh %s --stage %s > /dev/null 2>&1"
             (Filename.quote ci) (Filename.quote arg))
      in
      check cint "unknown stage exits 2" 2 (run "not-a-stage");
      (* the regression: a word-boundary substring of the stage list
         used to pass validation and silently run nothing *)
      check cint "stage-list substring exits 2" 2 (run "build test")

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "mutation serialization round-trips" `Quick
          test_mutation_roundtrip;
        Alcotest.test_case "every mutator round-trips the codec" `Quick
          test_mutants_roundtrip_codec;
        Alcotest.test_case "validator accepts the synthetic base" `Quick
          test_validator_accepts_base;
        Alcotest.test_case "validator rejects protocol violations" `Quick
          test_validator_rejects_violations;
        Alcotest.test_case "coverage keys are canonical" `Quick
          test_coverage_keys;
        Alcotest.test_case "campaigns are deterministic" `Quick
          test_campaign_deterministic;
        Alcotest.test_case "minimizer shrinks to the planted mutation" `Quick
          test_minimizer;
        Alcotest.test_case "campaign auto-minimizes bugs" `Quick
          test_campaign_minimizes_bugs;
        Alcotest.test_case "mutations lower to scripted faults" `Quick
          test_script_of_mutations;
        Alcotest.test_case "reproducer metadata round-trips" `Quick
          test_mutant_meta_roundtrip;
        Alcotest.test_case "recorded attach validates and survives attack"
          `Quick test_real_trace_validates_and_survives;
        Alcotest.test_case "ci.sh rejects unknown stages" `Quick
          test_ci_stage_exact_match;
      ] );
  ]
