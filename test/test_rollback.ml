(* Transactional attach: the guest-mutation journal, rollback on
   abort/detach, the snapshot oracle, and the crash-point sweep gate. *)

module H = Hostos
module Vmm = Hypervisor.Vmm
module J = Vmsh.Journal
module E = Vmsh.Vmsh_error

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstr = Alcotest.string

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let open_fds h =
  List.fold_left
    (fun acc p -> acc + List.length (H.Proc.fd_numbers p))
    0 h.H.Host.procs

(* --- the journal itself --- *)

let test_journal_replays_newest_first () =
  let j = J.create () in
  let order = Buffer.create 16 in
  List.iter
    (fun name ->
      J.record j ~what:name (fun () -> Buffer.add_string order (name ^ ";")))
    [ "a"; "b"; "c" ];
  check cint "three entries" 3 (J.length j);
  check cbool "labels newest first" true (J.labels j = [ "c"; "b"; "a" ]);
  (match J.replay j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "replay: %s" (E.to_string e));
  check cstr "undone in reverse mutation order" "c;b;a;"
    (Buffer.contents order);
  check cint "log consumed" 0 (J.length j);
  (* a consumed entry must never replay twice *)
  (match J.replay j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "re-replay: %s" (E.to_string e));
  check cstr "no double undo" "c;b;a;" (Buffer.contents order)

let test_journal_seal_owned_late_writes () =
  let j = J.create () in
  J.record j ~what:"kept" (fun () -> ());
  J.note_owned j ~gpa:0x1000 ~len:0x2000;
  check cbool "write inside an owned range is exempt" true
    (J.owns j ~gpa:0x1800 ~len:0x100);
  check cbool "straddling write is not" false
    (J.owns j ~gpa:0x2800 ~len:0x1000);
  check cbool "not sealed yet" false (J.sealed j);
  J.seal j;
  check cbool "sealed" true (J.sealed j);
  J.record j ~what:"dropped" (fun () ->
      Alcotest.fail "post-seal undo must never run");
  check cint "post-seal record is a no-op" 1 (J.length j);
  J.note_late_write j ~gpa:0x5000 ~len:16;
  J.note_late_write j ~gpa:0x6000 ~len:8;
  check cbool "late writes accumulate for the oracle" true
    (J.late_writes j = [ (0x6000, 8); (0x5000, 16) ]);
  match J.replay j with
  | Ok () -> check cint "sealed log still replays" 0 (J.length j)
  | Error e -> Alcotest.failf "replay: %s" (E.to_string e)

let test_journal_failing_undo_continues () =
  let j = J.create () in
  let ran = ref [] in
  J.record j ~what:"oldest" (fun () -> ran := "oldest" :: !ran);
  J.record j ~what:"broken" (fun () -> E.fail (E.Msg "undo boom"));
  J.record j ~what:"newest" (fun () -> ran := "newest" :: !ran);
  match J.replay j with
  | Ok () -> Alcotest.fail "the broken undo must surface"
  | Error e ->
      (* the first failure, wrapped in a Context naming the entry *)
      check cstr "failure names the entry" "broken: undo boom" (E.to_string e);
      check cbool "older entries still restored" true
        (!ran = [ "oldest"; "newest" ]);
      check cint "log consumed despite the failure" 0 (J.length j)

let test_journal_metrics_register_lazily () =
  let obs = Observe.create ~now:(fun () -> 0.0) () in
  let mx = Observe.metrics obs in
  let j = J.create () in
  (match J.replay ~metrics:mx j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty replay: %s" (E.to_string e));
  check cbool "empty replay registers no counters" false
    (contains (Observe.Export.metrics_json obs) "rollback.");
  J.record j ~what:"x" (fun () -> ());
  (match J.replay ~metrics:mx j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "replay: %s" (E.to_string e));
  let after = Observe.Export.metrics_json obs in
  check cbool "replays counted" true (contains after "rollback.replays");
  check cbool "entries counted" true (contains after "rollback.entries")

(* --- attach as a transaction --- *)

let test_detach_restores_guest_byte_for_byte () =
  let ((_, vmm, _) as env) = Test_attach.setup ~seed:61 () in
  let vm = Vmm.kvm_vm vmm in
  let before = Vmsh.Snapshot.capture vm in
  match Test_attach.do_attach env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok session ->
      ignore (Vmsh.Attach.console_roundtrip session "hostname");
      let late =
        match Vmsh.Attach.journal session with
        | Some j -> J.late_writes j
        | None -> Alcotest.fail "journal must be on by default"
      in
      (match Vmsh.Attach.detach session with
      | Ok () -> ()
      | Error e -> Alcotest.failf "detach: %s" (E.to_string e));
      let exclude = Vmsh.Snapshot.dirty_since vm before @ late in
      (match
         Vmsh.Snapshot.diff ~before ~after:(Vmsh.Snapshot.capture vm) ~exclude
       with
      | [] -> ()
      | d :: _ as all ->
          Alcotest.failf "oracle: %s (%d discrepancies)" d (List.length all))

let test_crash_point_aborts_and_rolls_back () =
  let ((h, vmm, _) as env) = Test_attach.setup ~seed:67 () in
  let vm = Vmm.kvm_vm vmm in
  let plan = Faults.create ~seed:1 ~rate:0.0 () in
  Faults.set_abort_at_yield plan (Some 3);
  let before = Vmsh.Snapshot.capture vm in
  let fds = open_fds h in
  let config = Vmsh.Attach.Config.(with_faults plan (make ())) in
  match Test_attach.do_attach ~config env with
  | Ok _ -> Alcotest.fail "an armed crash point must abort the attach"
  | Error msg ->
      check cbool "error names the crash point" true
        (contains msg "crash point at yield 3");
      check cbool "error round-trips through the taxonomy" true
        (E.to_string (E.of_string msg) = msg);
      check cint "no descriptors leaked host-wide" fds (open_fds h);
      let exclude = Vmsh.Snapshot.dirty_since vm before in
      check cbool "guest restored byte-for-byte" true
        (Vmsh.Snapshot.check ~before ~after:(Vmsh.Snapshot.capture vm) ~exclude)

let test_journal_off_reverts_to_legacy_detach () =
  let env = Test_attach.setup ~seed:71 () in
  let config = Vmsh.Attach.Config.(with_journal false (make ())) in
  match Test_attach.do_attach ~config env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok session ->
      check cbool "no journal carried" true
        (Vmsh.Attach.journal session = None);
      (match Vmsh.Attach.detach session with
      | Ok () -> ()
      | Error e -> Alcotest.failf "legacy detach: %s" (E.to_string e))

let test_rollback_counters_stay_lazy () =
  (* a fault-free attach must not even register the rollback/watchdog
     counters (the recovery.* laziness pattern); the detach replay is
     the first thing allowed to *)
  let ((h, _, _) as env) = Test_attach.setup ~seed:73 () in
  match Test_attach.do_attach env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok session ->
      let m = Observe.Export.metrics_json h.H.Host.observe in
      check cbool "no rollback counters after a clean attach" false
        (contains m "rollback.");
      check cbool "no watchdog counters either" false (contains m "watchdog.");
      (match Vmsh.Attach.detach session with
      | Ok () -> ()
      | Error e -> Alcotest.failf "detach: %s" (E.to_string e));
      let m = Observe.Export.metrics_json h.H.Host.observe in
      check cbool "detach replay ticks rollback.replays" true
        (contains m "rollback.replays")

(* --- the sweep gate --- *)

let test_sweep_gate_subset () =
  (* CI runs the full class matrix; the unit gate sweeps a subset with
     a capped yield range so runtest stays fast *)
  let r =
    Fleet.Sweep.run ~seed:5
      ~classes:[ None; Some Faults.Inject_eintr ]
      ~max_yields:6 ()
  in
  check cint "two classes swept" 2 r.Fleet.Sweep.sw_classes;
  check cint "every point restores the guest" 0 r.Fleet.Sweep.sw_oracle_fail;
  check cint "no leaked descriptors" 0 r.Fleet.Sweep.sw_leaked_fds;
  check cint "no escaped exceptions" 0 r.Fleet.Sweep.sw_unclean;
  check cbool "gate passes" true (Fleet.Sweep.ok r);
  check cbool "crash points actually fired" true
    (List.exists
       (fun p -> p.Fleet.Sweep.pt_outcome = "aborted")
       r.Fleet.Sweep.sw_points);
  check cbool "both probes completed" true
    (List.for_all
       (fun p -> p.Fleet.Sweep.pt_outcome = "completed")
       (List.filter
          (fun p -> p.Fleet.Sweep.pt_yield < 0)
          r.Fleet.Sweep.sw_points))

let test_sweep_covers_forked_sessions () =
  (* the crash matrix must hold through the CoW overlay too: sweep one
     class against sessions forked from a baked baseline and require
     the rollback oracle to prove restoration of the overlay *)
  let baseline = Fleet.Baseline.bake () in
  let r =
    Fleet.Sweep.run ~seed:5 ~classes:[ None ] ~max_yields:4 ~baseline ()
  in
  check cbool "forked gate passes" true (Fleet.Sweep.ok r);
  check cbool "forked crash points fired" true
    (List.exists
       (fun p -> p.Fleet.Sweep.pt_outcome = "aborted")
       r.Fleet.Sweep.sw_points)

let test_sweep_interleaves_on_scheduler () =
  (* vms > 1 runs the points as fibers on the virtual-time scheduler;
     the post-conditions must hold under interleaving too *)
  let r = Fleet.Sweep.run ~seed:9 ~classes:[ None ] ~max_yields:4 ~vms:2 () in
  check cbool "gate passes interleaved" true (Fleet.Sweep.ok r);
  check cint "probe + swept points" 5 (List.length r.Fleet.Sweep.sw_points)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "rollback.journal",
      [
        t "replays newest-first and consumes" test_journal_replays_newest_first;
        t "seal / owned ranges / late writes" test_journal_seal_owned_late_writes;
        t "failing undo continues, reports first" test_journal_failing_undo_continues;
        t "counters register lazily" test_journal_metrics_register_lazily;
      ] );
    ( "rollback.attach",
      [
        t "detach restores guest byte-for-byte"
          test_detach_restores_guest_byte_for_byte;
        t "crash point aborts and rolls back"
          test_crash_point_aborts_and_rolls_back;
        t "journal off reverts to legacy detach"
          test_journal_off_reverts_to_legacy_detach;
        t "rollback counters stay lazy" test_rollback_counters_stay_lazy;
      ] );
    ( "rollback.sweep",
      [
        t "crash-point sweep gate (subset)" test_sweep_gate_subset;
        t "sweep covers forked sessions" test_sweep_covers_forked_sessions;
        t "sweep interleaves on the scheduler" test_sweep_interleaves_on_scheduler;
      ] );
  ]
