(* Tests for the VMM layer itself: device plumbing, the iothread's
   syscall data path, per-profile differences, and PCI codecs. *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile
module Guest = Linux_guest.Guest
module KV = Linux_guest.Kernel_version

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let make_disk h =
  let backend = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:2048 () in
  let fs = Result.get_ok (Sfs.mkfs (Blockdev.Backend.dev backend) ()) in
  ignore (Sfs.mkdir_p fs "/dev");
  ignore (Sfs.write_file fs "/marker" (Bytes.of_string "present"));
  Sfs.sync fs;
  backend

let test_iothread_uses_syscalls () =
  (* the qemu-blk data path must go through the syscall layer (that is
     what wrap_syscall taxes): count syscalls across a guest read *)
  let h = H.Host.create ~seed:201 () in
  let disk = make_disk h in
  let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
  let g = Vmm.boot vmm ~version:KV.V5_10 in
  let before = (H.Clock.counters h.H.Host.clock).H.Clock.syscalls in
  Vmm.in_guest vmm (fun () ->
      let drv = Guest.boot_blk_exn g in
      ignore (Virtio.Blk.Driver.read drv ~sector:0 ~len:4096));
  let after = (H.Clock.counters h.H.Host.clock).H.Clock.syscalls in
  (* at least eventfd-read + pread + irqfd-write *)
  check cbool "iothread performed syscalls" true (after - before >= 3)

let test_vmsh_blk_more_context_switches () =
  (* the paper's §6.3C mechanism: vmsh-blk performs about twice the
     context switches of qemu-blk over the same request count *)
  let run_attached () =
    let h = H.Host.create ~seed:202 () in
    let disk = make_disk h in
    let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
    let g = Vmm.boot vmm ~version:KV.V5_10 in
    let image =
      match
        Blockdev.Image.pack ~clock:h.H.Host.clock ~extra_blocks:512
          [ Blockdev.Image.file "/t" 4096 ]
      with
      | Ok (b, _) -> b
      | Error _ -> Alcotest.fail "image"
    in
    match
      Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm) ~fs_image:image
        ~pump:(fun () -> Vmm.run_until_idle vmm)
        ()
    with
    | Error e -> Alcotest.fail (Vmsh.Vmsh_error.to_string e)
    | Ok _ -> (h, vmm, g)
  in
  let h, vmm, g = run_attached () in
  let counters = H.Clock.counters h.H.Host.clock in
  let measure drv =
    let before = counters.H.Clock.context_switches in
    Vmm.in_guest vmm (fun () ->
        for i = 0 to 31 do
          ignore (Virtio.Blk.Driver.read drv ~sector:(i * 8) ~len:4096)
        done);
    counters.H.Clock.context_switches - before
  in
  let qemu = measure (Guest.boot_blk_exn g) in
  let vmsh = measure (Option.get (Guest.vmsh_blk g)) in
  check cbool
    (Printf.sprintf "vmsh-blk switches (%d) > 1.5x qemu-blk (%d)" vmsh qemu)
    true
    (Float.of_int vmsh > 1.5 *. Float.of_int qemu)

let test_profiles_differ_as_specified () =
  check cbool "qemu has 9p" true Profile.qemu.Profile.has_ninep;
  check cbool "firecracker no 9p" false Profile.firecracker.Profile.has_ninep;
  check cbool "only firecracker filters" true
    (List.for_all
       (fun p ->
         (p.Profile.seccomp = Profile.Per_thread_filters)
         = (p.Profile.prof_name = "Firecracker"))
       Profile.all);
  check cbool "only cloud hypervisor lacks mmio" true
    (List.for_all
       (fun p ->
         (not p.Profile.mmio_transport) = (p.Profile.prof_name = "Cloud Hypervisor"))
       Profile.all);
  (* the api filter is strictly laxer than the vcpu filter *)
  let open H.Syscall.Nr in
  check cbool "vcpu filter blocks mmap" false (Profile.seccomp_filter.H.Proc.allows mmap);
  check cbool "api filter allows mmap" true (Profile.seccomp_api_filter.H.Proc.allows mmap);
  check cbool "api superset of vcpu" true
    (List.for_all
       (fun nr ->
         (not (Profile.seccomp_filter.H.Proc.allows nr))
         || Profile.seccomp_api_filter.H.Proc.allows nr)
       [ read; write; ioctl; pread64; pwrite64; close; mmap; socket ])

let test_cloud_hypervisor_boots_from_pci () =
  let h = H.Host.create ~seed:203 () in
  let disk = make_disk h in
  let vmm = Vmm.create h ~profile:Profile.cloud_hypervisor ~disk () in
  let g = Vmm.boot vmm ~version:KV.V5_10 in
  check cbool "rootfs mounted via virtio-pci" true (Guest.rootfs g <> None);
  check cbool "dmesg mentions virtio-pci" true
    (List.exists
       (fun l ->
         try
           ignore (Str.search_forward (Str.regexp_string "virtio-pci") l 0);
           true
         with Not_found -> false)
       (Guest.dmesg g));
  (* data still flows *)
  let content =
    Vmm.in_guest vmm (fun () ->
        Guest.file_read g ~ns:(Guest.root_ns g) "/marker")
  in
  check cbool "file readable over pci disk" true
    (match content with Ok b -> Bytes.to_string b = "present" | Error _ -> false)

let test_run_until_idle_terminates_on_parked () =
  (* a guest context parked on a condition with no interrupt source must
     leave the VM idle, not spin the exit loop *)
  let h = H.Host.create ~seed:204 () in
  let disk = make_disk h in
  let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
  let g = Vmm.boot vmm ~version:KV.V5_10 in
  ignore g;
  let flag = ref false in
  Kvm.Vm.enqueue_task (Vmm.kvm_vm vmm) ~name:"eternal" (fun () ->
      Effect.perform (Kvm.Vm.Yield_until (fun () -> !flag)));
  Vmm.run_until_idle vmm;
  check cbool "returned with parked context" true
    (Kvm.Vm.has_work (Vmm.kvm_vm vmm));
  (* and the context resumes when the condition flips *)
  flag := true;
  Vmm.run_until_idle vmm;
  check cbool "drained after wakeup" false (Kvm.Vm.has_work (Vmm.kvm_vm vmm))

(* --- PCI codec --- *)

let test_pci_config_codec () =
  let b =
    Virtio.Pci.Config.encode ~device_type:Virtio.Blk.device_id
      ~bar0:0xe802_0000 ~msix_gsi:25
  in
  match Virtio.Pci.Config.decode b with
  | None -> Alcotest.fail "decode"
  | Some cfg ->
      check cint "vendor" Virtio.Pci.vendor_virtio cfg.Virtio.Pci.Config.vendor;
      check cint "type" Virtio.Blk.device_id cfg.Virtio.Pci.Config.device_type;
      check cint "bar0" 0xe802_0000 cfg.Virtio.Pci.Config.bar0;
      check cint "gsi" 25 cfg.Virtio.Pci.Config.msix_gsi

let test_pci_config_rejects_non_virtio () =
  let b = Bytes.make Virtio.Pci.header_size '\xff' in
  check cbool "all-ones (no device) rejected" true
    (Virtio.Pci.Config.decode b = None)

let prop_pci_codec_roundtrip =
  QCheck.Test.make ~name:"pci config encode/decode roundtrip" ~count:100
    QCheck.(triple (int_bound 30) (QCheck.make (Gen.int_range 0 0xfffff000)) (int_bound 255))
    (fun (dtype, bar_page, gsi) ->
      let bar0 = bar_page land lnot 0xfff in
      match
        Virtio.Pci.Config.decode
          (Virtio.Pci.Config.encode ~device_type:dtype ~bar0 ~msix_gsi:gsi)
      with
      | Some cfg ->
          cfg.Virtio.Pci.Config.device_type = dtype
          && cfg.Virtio.Pci.Config.bar0 = bar0
          && cfg.Virtio.Pci.Config.msix_gsi = gsi
      | None -> false)

(* --- klib codec property --- *)

let prop_klib_roundtrip =
  let open Linux_guest.Klib in
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          return Tramp; map (fun v -> Push v) (int_range 0 0x3fffffff);
          map (fun n -> Call n) (int_range 0 6); return Write64; return Read64;
          map (fun i -> Jz i) (int_range 0 100);
          map (fun i -> Jneg i) (int_range 0 100);
          map (fun i -> Jmp i) (int_range 0 100); return Dup; return Swap;
          return Drop; map (fun c -> Trap c) (int_range 0 255); return Ret;
        ])
  in
  QCheck.Test.make ~name:"klib ops encode to fixed-size cells" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 40) op_gen))
    (fun ops ->
      Bytes.length (encode ops) = List.length ops * op_size)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "hypervisor.vmm",
      [
        t "iothread syscalls" test_iothread_uses_syscalls;
        t "vmsh-blk context switches" test_vmsh_blk_more_context_switches;
        t "profile traits" test_profiles_differ_as_specified;
        t "cloud hv boots from pci" test_cloud_hypervisor_boots_from_pci;
        t "idle with parked contexts" test_run_until_idle_terminates_on_parked;
      ] );
    ( "hypervisor.pci",
      [
        t "config codec" test_pci_config_codec;
        t "rejects non-virtio" test_pci_config_rejects_non_virtio;
        QCheck_alcotest.to_alcotest prop_pci_codec_roundtrip;
        QCheck_alcotest.to_alcotest prop_klib_roundtrip;
      ] );
  ]
