(* End-to-end VMSH attach tests: the paper's core claims as unit tests.
   E2 (hypervisor generality), E3 (kernel generality), plus the failure
   modes Table 1 documents. *)

module H = Hostos
module Sfs = Blockdev.Simplefs
module Guest = Linux_guest.Guest
module KV = Linux_guest.Kernel_version
module Vmm = Hypervisor.Vmm
module Profile = Hypervisor.Profile

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstr = Alcotest.string

let populate fs files =
  List.iter
    (fun (p, c) ->
      (match Filename.dirname p with
      | "/" -> ()
      | dir -> ignore (Sfs.mkdir_p fs dir));
      match Sfs.write_file fs p (Bytes.of_string c) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "populate %s: %a" p H.Errno.pp e)
    files

(* Root disk for the guest: must contain /dev for the exec drop. *)
let make_root_disk ?(extra = []) h =
  let backend = Blockdev.Backend.create ~clock:h.H.Host.clock ~blocks:2048 () in
  let fs =
    match Sfs.mkfs (Blockdev.Backend.dev backend) () with
    | Ok fs -> fs
    | Error _ -> Alcotest.fail "mkfs"
  in
  ignore (Sfs.mkdir_p fs "/dev");
  populate fs
    ([
       ("/etc/hostname", "target-vm\n");
       ("/etc/shadow", "root:$6$old$deadbeef:19000:0:99999:7:::\n");
       ("/bin/app", "the application\n");
     ]
    @ extra);
  Sfs.sync fs;
  backend

(* VMSH's tools image. *)
let make_fs_image () =
  let manifest =
    [
      Blockdev.Image.file "/bin/busybox" 820000;
      Blockdev.Image.file ~content:"#!/bin/sh\necho rescue\n" "/bin/rescue" 23;
      Blockdev.Image.file ~content:"tools image marker\n" "/etc/vmsh-release" 19;
    ]
  in
  match Blockdev.Image.pack manifest with
  | Ok (backend, _) -> backend
  | Error e -> Alcotest.failf "image pack: %a" H.Errno.pp e

let setup ?(profile = Profile.qemu) ?(version = KV.V5_10) ?(seed = 23)
    ?disable_seccomp ?extra_root () =
  let h = H.Host.create ~seed () in
  let disk = make_root_disk ?extra:extra_root h in
  let vmm = Vmm.create h ~profile ~disk ?disable_seccomp () in
  let g = Vmm.boot vmm ~version in
  check cbool "booted" true (Guest.crashed g = None);
  (h, vmm, g)

let do_attach ?config (h, vmm, _g) =
  Result.map_error Vmsh.Vmsh_error.to_string
    (Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
       ~fs_image:(make_fs_image ()) ?config
       ~pump:(fun () -> Vmm.run_until_idle vmm)
       ())

let test_attach_ioregionfd () =
  let env = setup () in
  match do_attach env with
  | Error e -> Alcotest.failf "attach failed: %s" e
  | Ok session ->
      check cint "library reported done" Vmsh.Klib_builder.status_done
        (Vmsh.Attach.status session);
      let _, _, g = env in
      check cbool "vmsh-blk registered in guest" true (Guest.vmsh_blk g <> None);
      check cbool "vmsh-console registered" true (Guest.vmsh_console g <> None);
      check cbool "guest did not crash" true (Guest.crashed g = None)

let test_attach_wrap_syscall () =
  let env = setup () in
  let config =
    Vmsh.Attach.Config.with_transport Vmsh.Devices.Wrap_syscall
      (Vmsh.Attach.Config.make ())
  in
  match do_attach ~config env with
  | Error e -> Alcotest.failf "attach failed: %s" e
  | Ok session ->
      check cint "done" Vmsh.Klib_builder.status_done (Vmsh.Attach.status session);
      (match Vmsh.Attach.detach session with
      | Ok () -> ()
      | Error e -> Alcotest.failf "detach: %s" (Vmsh.Vmsh_error.to_string e));
      let _, _, g = env in
      check cbool "no crash" true (Guest.crashed g = None)

let test_shell_roundtrip () =
  let env = setup () in
  match do_attach env with
  | Error e -> Alcotest.failf "attach failed: %s" e
  | Ok session ->
      let out = Vmsh.Attach.console_recv session in
      check cbool "banner seen" true
        (String.length out > 0
        &&
        try
          ignore (Str.search_forward (Str.regexp_string "vmsh shell") out 0);
          true
        with Not_found -> false)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_shell_commands () =
  let env = setup () in
  match do_attach env with
  | Error e -> Alcotest.failf "attach failed: %s" e
  | Ok session ->
      (* ls / shows the *image* root, not the guest's *)
      let out = Vmsh.Attach.console_roundtrip session "ls /" in
      check cbool "image /bin listed" true (contains out "bin");
      let out = Vmsh.Attach.console_roundtrip session "cat /etc/vmsh-release" in
      check cbool "image file readable" true (contains out "tools image marker");
      (* the original guest is under /var/lib/vmsh *)
      let out =
        Vmsh.Attach.console_roundtrip session "cat /var/lib/vmsh/etc/hostname"
      in
      check cbool "guest fs reachable under overlay prefix" true
        (contains out "target-vm");
      let out = Vmsh.Attach.console_roundtrip session "hostname" in
      check cbool "hostname command" true (contains out "target-vm");
      let out = Vmsh.Attach.console_roundtrip session "ps" in
      check cbool "ps lists init" true (contains out "init")

let test_shell_write_protects_guest () =
  let env = setup () in
  match do_attach env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok session ->
      (* writing to / goes to the image, not the guest root *)
      ignore (Vmsh.Attach.console_roundtrip session "write /scratch.txt hello");
      let _, _, g = env in
      check cbool "guest root untouched" false
        (Result.is_ok
           (match Guest.rootfs g with
           | Some fs -> Sfs.lookup fs "/scratch.txt"
           | None -> Error H.Errno.ENOENT))

let test_generality_all_hypervisors () =
  (* Table 1: QEMU, kvmtool, Firecracker (seccomp off), crosvm attach;
     Cloud Hypervisor is refused. *)
  List.iter
    (fun (profile, disable_seccomp, expect_ok) ->
      let env = setup ~profile ?disable_seccomp () in
      match (do_attach env, expect_ok) with
      | Ok _, true -> ()
      | Error e, true ->
          Alcotest.failf "%s should attach: %s" profile.Profile.prof_name e
      | Ok _, false ->
          Alcotest.failf "%s should be unsupported" profile.Profile.prof_name
      | Error _, false -> ())
    [
      (Profile.qemu, None, true);
      (Profile.kvmtool, None, true);
      (Profile.crosvm, None, true);
      (Profile.firecracker, Some true, true);
      (Profile.cloud_hypervisor, None, false);
    ]

let test_firecracker_seccomp_blocks_attach () =
  (* with the stock filters on, syscall injection dies on seccomp *)
  let env = setup ~profile:Profile.firecracker ~disable_seccomp:false () in
  match do_attach env with
  | Ok _ -> Alcotest.fail "attach should fail under seccomp"
  | Error e ->
      check cbool "mentions injection" true
        (contains e "injected" || contains e "injection")

let test_firecracker_seccomp_heuristic () =
  (* the future-work heuristic: with stock filters on, probing the
     hypervisor's threads finds the API thread (laxer filter) and the
     attach completes without disabling seccomp *)
  let env = setup ~profile:Profile.firecracker ~disable_seccomp:false () in
  let config =
    Vmsh.Attach.Config.with_seccomp_heuristic true (Vmsh.Attach.Config.make ())
  in
  match do_attach ~config env with
  | Ok session ->
      check cint "done" Vmsh.Klib_builder.status_done (Vmsh.Attach.status session);
      let _, _, g = env in
      check cbool "no crash" true (Guest.crashed g = None)
  | Error e -> Alcotest.failf "heuristic attach failed: %s" e

let test_cloud_hypervisor_pci_transport () =
  (* the other future-work item: the VirtIO-over-PCI transport (config
     spaces + MSI-routed interrupts) attaches to Cloud Hypervisor's
     MSI-X-only irqchip, which refuses the MMIO transport *)
  let env = setup ~profile:Profile.cloud_hypervisor () in
  (match do_attach env with
  | Ok _ -> Alcotest.fail "MMIO transport should be refused"
  | Error _ -> ());
  let env = setup ~profile:Profile.cloud_hypervisor ~seed:29 () in
  let config = Vmsh.Attach.Config.with_pci true (Vmsh.Attach.Config.make ()) in
  match do_attach ~config env with
  | Error e -> Alcotest.failf "PCI attach failed: %s" e
  | Ok session ->
      check cint "done" Vmsh.Klib_builder.status_done (Vmsh.Attach.status session);
      let _, _, g = env in
      check cbool "devices registered over PCI" true
        (Guest.vmsh_blk g <> None && Guest.vmsh_console g <> None);
      check cbool "no crash" true (Guest.crashed g = None);
      let out = Vmsh.Attach.console_roundtrip session "dmesg" in
      check cbool "guest log mentions virtio-pci" true (contains out "virtio-pci")

let test_pci_transport_on_qemu_too () =
  (* the PCI transport is not Cloud-Hypervisor-specific *)
  let env = setup ~seed:31 () in
  let config = Vmsh.Attach.Config.with_pci true (Vmsh.Attach.Config.make ()) in
  match do_attach ~config env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok session ->
      let out = Vmsh.Attach.console_roundtrip session "hostname" in
      check cbool "shell over pci" true (contains out "target-vm")

let test_generality_all_kernels () =
  List.iter
    (fun version ->
      let env = setup ~version ~seed:(37 + Hashtbl.hash version) () in
      match do_attach env with
      | Ok session ->
          let anal = Vmsh.Attach.analysis session in
          check cbool
            (KV.to_string version ^ " version detected")
            true
            (KV.equal anal.Vmsh.Symbol_analysis.version version)
      | Error e -> Alcotest.failf "attach to %s: %s" (KV.to_string version) e)
    KV.all_lts

let test_symbol_analysis_matches_ground_truth () =
  let env = setup () in
  match do_attach env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok session ->
      let _, _, g = env in
      let anal = Vmsh.Attach.analysis session in
      check cint "kernel base recovered" (Guest.kernel_virt g)
        anal.Vmsh.Symbol_analysis.kernel_base;
      (* every ground-truth export was recovered at the right address *)
      let truth = Guest.exports g in
      check cint "all exports recovered" (List.length truth)
        (List.length anal.Vmsh.Symbol_analysis.symbols);
      List.iter
        (fun (name, va) ->
          match Vmsh.Symbol_analysis.resolve anal name with
          | Some va' when va' = va -> ()
          | Some va' ->
              Alcotest.failf "%s: recovered 0x%x, truth 0x%x" name va' va
          | None -> Alcotest.failf "%s not recovered" name)
        truth

let test_wrong_struct_version_fails_cleanly () =
  (* a mis-built library must be rejected by the guest kernel's tag
     check, reported through the status page — not crash the guest *)
  let h, vmm, g = setup () in
  let fs_image = make_fs_image () in
  ignore fs_image;
  (* build a library with the wrong struct version and check the guest
     rejects the device registration *)
  let bad_tag = if KV.virtio_desc_version KV.V5_10 = 2 then 1 else 2 in
  let image, _layout =
    Vmsh.Klib_builder.build ~version:KV.V5_10
      ~guest_program:(Bytes.of_string "bogus") ~force_struct_version:bad_tag ()
  in
  ignore image;
  (* full-path variant: attach with a builder override is not exposed in
     the public API, so exercise the kernel-side check directly *)
  let desc =
    Guest.encode_virtio_desc ~version_tag:bad_tag
      ~device_type:Virtio.Blk.device_id ~mmio_base:X86.Layout.vmsh_mmio_base
      ~gsi:25
  in
  Vmm.run_task vmm ~name:"bad-register" (fun () ->
      ignore desc);
  check cbool "guest alive" true (Guest.crashed g = None);
  ignore h

let test_attach_leaves_existing_guest_files_intact () =
  let env = setup () in
  let _, vmm, g = env in
  match do_attach env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok _ ->
      let content =
        Vmm.in_guest vmm (fun () ->
            Guest.file_read g ~ns:(Guest.root_ns g) "/bin/app")
      in
      (match content with
      | Ok b -> check cstr "app intact" "the application\n" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %a" H.Errno.pp e)

let test_ninep_side_loaded_share () =
  (* the attach also hot-plugs a virtio-9p share of the tools image:
     read a known file through the side-loaded driver's virtqueue and
     check the per-request latency histograms were recorded *)
  let env = setup () in
  let h, vmm, g = env in
  match do_attach env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok _ -> (
      let drv =
        match Guest.vmsh_ninep g with
        | Some d -> d
        | None -> Alcotest.fail "no vmsh-9p driver registered"
      in
      let size =
        Vmm.in_guest vmm (fun () ->
            Virtio.Ninep.Driver.stat_size drv ~path:"/etc/vmsh-release")
      in
      (match size with
      | Ok n -> check cint "stat size" (String.length "tools image marker\n") n
      | Error e -> Alcotest.failf "stat: %a" H.Errno.pp e);
      match
        Vmm.in_guest vmm (fun () ->
            Virtio.Ninep.Driver.read drv ~path:"/etc/vmsh-release" ~off:0
              ~len:64)
      with
      | Error e -> Alcotest.failf "read: %a" H.Errno.pp e
      | Ok b ->
          check cstr "tools image served over 9p" "tools image marker\n"
            (Bytes.to_string b);
          let mx = Observe.metrics h.H.Host.observe in
          check cbool "read latency histogram recorded" true
            (Observe.Metrics.count
               (Observe.Metrics.histogram mx "vmsh-9p.read_ns")
            >= 1);
          check cbool "stat latency histogram recorded" true
            (Observe.Metrics.count
               (Observe.Metrics.histogram mx "vmsh-9p.stat_ns")
            >= 1);
          check cbool "host processed 9p requests" true
            (Observe.Metrics.counter_value
               (Observe.Metrics.counter mx "vmsh-9p.requests")
            >= 2))

let test_privileges_dropped_after_discovery () =
  let env = setup () in
  match do_attach env with
  | Error e -> Alcotest.failf "attach: %s" e
  | Ok session ->
      let p = Vmsh.Attach.vmsh_process session in
      check cbool "CAP_BPF dropped" false (H.Proc.has_cap p H.Proc.CAP_BPF)

let test_container_aware_attach () =
  let env = setup () in
  let _, vmm, g = env in
  (* create a containerised workload in the guest (guest context: its
     image files are written through the virtio stack) *)
  let container =
    Vmm.in_guest vmm (fun () ->
        Guest.spawn_container g ~name:"web"
          ~image:[ ("/etc/web.conf", "listen 80\n") ])
  in
  let config =
    Vmsh.Attach.Config.with_container_pid container.Linux_guest.Gproc.gpid
      (Vmsh.Attach.Config.make ())
  in
  match do_attach ~config env with
  | Error e -> Alcotest.failf "container attach: %s" e
  | Ok session ->
      let out = Vmsh.Attach.console_roundtrip session "id" in
      (* the shell adopted the container's restricted capability set *)
      check cbool "container caps applied" true
        (contains out
           (string_of_int (List.length Linux_guest.Gproc.container_caps)));
      check cbool "apparmor label applied" true (contains out "docker-default-web")

let test_double_attach_two_sessions () =
  (* a second attach to the same VM must fail cleanly (the tracee is
     already being traced by the first session) *)
  let env = setup () in
  match do_attach env with
  | Error e -> Alcotest.failf "first attach: %s" e
  | Ok _ -> (
      match do_attach env with
      | Ok _ -> Alcotest.fail "second attach should fail (already traced)"
      | Error e -> check cbool "mentions ptrace" true (contains e "ptrace"))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "vmsh.attach",
      [
        t "ioregionfd transport" test_attach_ioregionfd;
        t "wrap_syscall transport" test_attach_wrap_syscall;
        t "shell banner" test_shell_roundtrip;
        t "shell commands" test_shell_commands;
        t "overlay protects guest root" test_shell_write_protects_guest;
        t "guest files intact" test_attach_leaves_existing_guest_files_intact;
        t "9p tools share" test_ninep_side_loaded_share;
        t "privileges dropped" test_privileges_dropped_after_discovery;
        t "container-aware attach" test_container_aware_attach;
        t "double attach refused" test_double_attach_two_sessions;
      ] );
    ( "vmsh.generality",
      [
        t "hypervisor matrix (Table 1)" test_generality_all_hypervisors;
        t "firecracker seccomp blocks" test_firecracker_seccomp_blocks_attach;
        t "firecracker seccomp heuristic" test_firecracker_seccomp_heuristic;
        t "cloud hypervisor via pci" test_cloud_hypervisor_pci_transport;
        t "pci transport on qemu" test_pci_transport_on_qemu_too;
        t "kernel matrix (Table 1)" test_generality_all_kernels;
        t "symbol analysis vs ground truth" test_symbol_analysis_matches_ground_truth;
        t "wrong struct version" test_wrong_struct_version_fails_cleanly;
      ] );
  ]

let test_detach_then_reattach () =
  (* repeated attach to the same VM after a clean detach (the first
     session's journal replay unwinds its devices, sockets and memslot,
     so the second attach starts from a pristine guest) *)
  let env = setup ~seed:43 () in
  (match do_attach env with
  | Ok session -> (
      match Vmsh.Attach.detach session with
      | Ok () -> ()
      | Error e -> Alcotest.failf "first detach: %s" (Vmsh.Vmsh_error.to_string e))
  | Error e -> Alcotest.failf "first attach: %s" e);
  match do_attach env with
  | Ok session ->
      let out = Vmsh.Attach.console_roundtrip session "hostname" in
      check cbool "second session works" true (contains out "target-vm")
  | Error e -> Alcotest.failf "re-attach: %s" e

let test_multi_vcpu_attach () =
  let h = H.Host.create ~seed:47 () in
  let disk = make_root_disk h in
  let vmm = Vmm.create h ~profile:Profile.qemu ~disk ~vcpus:4 () in
  let g = Vmm.boot vmm ~version:KV.V5_10 in
  check cbool "booted" true (Guest.crashed g = None);
  match
    Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
      ~fs_image:(make_fs_image ())
      ~pump:(fun () -> Vmm.run_until_idle vmm)
      ()
  with
  | Ok session ->
      check cint "done" Vmsh.Klib_builder.status_done (Vmsh.Attach.status session)
  | Error e ->
      Alcotest.failf "attach to 4-vcpu VM: %s" (Vmsh.Vmsh_error.to_string e)

let test_loader_region_never_overlaps =
  (* DESIGN.md ablation promise: the top-of-address-space placement never
     collides with hypervisor memslots, across RAM sizes and seeds *)
  QCheck.Test.make ~name:"vmsh memslot never overlaps existing slots" ~count:12
    QCheck.(pair (QCheck.make (QCheck.Gen.int_range 16 96)) small_nat)
    (fun (ram_mb, seed) ->
      let h = H.Host.create ~seed:(100 + seed) () in
      let disk = make_root_disk h in
      let vmm = Vmm.create h ~profile:Profile.qemu ~disk ~ram_mb () in
      let g = Vmm.boot vmm ~version:KV.V5_10 in
      if Guest.crashed g <> None then false
      else
        match
          Vmsh.Attach.attach h ~hypervisor_pid:(Vmm.pid vmm)
            ~fs_image:(make_fs_image ())
            ~pump:(fun () -> Vmm.run_until_idle vmm)
            ()
        with
        | Error _ -> false
        | Ok _ ->
            let slots = Kvm.Vm.memslots (Guest.vm g) in
            (* pairwise disjoint *)
            List.for_all
              (fun (a : Kvm.Vm.memslot) ->
                List.for_all
                  (fun (b : Kvm.Vm.memslot) ->
                    a.Kvm.Vm.slot = b.Kvm.Vm.slot
                    || a.Kvm.Vm.gpa + a.Kvm.Vm.size <= b.Kvm.Vm.gpa
                    || b.Kvm.Vm.gpa + b.Kvm.Vm.size <= a.Kvm.Vm.gpa)
                  slots)
              slots)

let test_analysis_rejects_corrupted_ksymtab () =
  (* flip bytes across the kernel image: the analyzer must either still
     answer correctly (corruption missed the sections) or fail cleanly —
     never return wrong symbol addresses for the functions VMSH calls *)
  let h = H.Host.create ~seed:53 () in
  let disk = make_root_disk h in
  let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
  let g = Vmm.boot vmm ~version:KV.V5_10 in
  let truth = Guest.exports g in
  let vm = Guest.vm g in
  let kphys = 0x40_0000 in
  (* corrupt a sweep of 64-byte stripes through the image *)
  for i = 0 to 200 do
    Kvm.Vm.write_phys vm (kphys + 0x11_0000 + (i * 97 * 64) mod 0x30000)
      (Bytes.make 8 '\xff')
  done;
  let vmsh = H.Host.spawn h ~name:"vmsh-corrupt" ~uid:1000 () in
  let slots =
    List.map
      (fun (s : Kvm.Vm.memslot) ->
        { Vmsh.Hyp_mem.gpa = s.Kvm.Vm.gpa; size = s.size; hva = s.hva })
      (Kvm.Vm.memslots vm)
  in
  let mem = Vmsh.Hyp_mem.create h ~vmsh ~hypervisor_pid:(Vmm.pid vmm) ~slots () in
  let cr3 = (Kvm.Vm.vcpu_regs (List.hd (Kvm.Vm.vcpus vm))).X86.Regs.cr3 in
  match Vmsh.Symbol_analysis.analyze mem ~cr3 with
  | Error _ -> () (* clean failure is acceptable *)
  | Ok anal ->
      (* whatever survived must agree with the ground truth *)
      List.iter
        (fun (name, va) ->
          match List.assoc_opt name truth with
          | Some tva ->
              if va <> tva then
                Alcotest.failf "corrupted analysis returned wrong %s" name
          | None -> ())
        anal.Vmsh.Symbol_analysis.symbols

(* Boot + analyze, returning the handles the revalidation tests poke. *)
let analysis_fixture ~seed =
  let h = H.Host.create ~seed () in
  let disk = make_root_disk h in
  let vmm = Vmm.create h ~profile:Profile.qemu ~disk () in
  let g = Vmm.boot vmm ~version:KV.V5_10 in
  let vm = Guest.vm g in
  let vmsh = H.Host.spawn h ~name:"vmsh-reval" ~uid:1000 () in
  let slots =
    List.map
      (fun (s : Kvm.Vm.memslot) ->
        { Vmsh.Hyp_mem.gpa = s.Kvm.Vm.gpa; size = s.size; hva = s.hva })
      (Kvm.Vm.memslots vm)
  in
  let mem = Vmsh.Hyp_mem.create h ~vmsh ~hypervisor_pid:(Vmm.pid vmm) ~slots () in
  let cr3 = (Kvm.Vm.vcpu_regs (List.hd (Kvm.Vm.vcpus vm))).X86.Regs.cr3 in
  match Vmsh.Symbol_analysis.analyze mem ~cr3 with
  | Error e -> Alcotest.failf "analyze: %s" e
  | Ok anal -> (g, vm, cr3, mem, anal)

(* Guest-physical offset of an exported name inside .ksymtab_strings,
   found the way the adversary would: by scanning its own memory. *)
let find_name_phys vm name =
  let strings_phys = 0x40_0000 + 0x11_0000 in
  let blob = Kvm.Vm.read_phys vm strings_phys 0x1_0000 in
  let needle = Bytes.of_string (name ^ "\000") in
  let nlen = Bytes.length needle in
  let rec go i =
    if i + nlen > Bytes.length blob then
      Alcotest.failf "%s not found in strings section" name
    else if
      Bytes.sub blob i nlen = needle
      && (i = 0 || Bytes.get blob (i - 1) = '\000')
    then strings_phys + i
    else go (i + 1)
  in
  go 0

let test_revalidate_clean_guest_passes () =
  let _, _, cr3, mem, anal = analysis_fixture ~seed:57 in
  (match Vmsh.Symbol_analysis.revalidate mem ~cr3 anal with
  | Ok () -> ()
  | Error e -> Alcotest.failf "full revalidate on a clean guest: %s" e);
  let some_name, _ = List.hd anal.Vmsh.Symbol_analysis.symbols in
  match Vmsh.Symbol_analysis.revalidate ~names:[ some_name ] mem ~cr3 anal with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scoped revalidate on a clean guest: %s" e

let test_revalidate_catches_mutated_symbol () =
  let g, vm, cr3, mem, anal = analysis_fixture ~seed:59 in
  (* pick two distinct ground-truth exports; clobber one's name bytes
     the way the TOCTOU engine rewrites just-scanned pages *)
  let victim, bystander =
    match Guest.exports g with
    | a :: b :: _ -> (fst a, fst b)
    | _ -> Alcotest.fail "need two exports"
  in
  Kvm.Vm.write_phys vm (find_name_phys vm victim) (Bytes.of_string "\xff");
  (match Vmsh.Symbol_analysis.revalidate ~names:[ victim ] mem ~cr3 anal with
  | Error e ->
      check cbool "error names the symbol" true
        (contains e victim && contains e "since the scan")
  | Ok () -> Alcotest.fail "mutated symbol must fail revalidation");
  (* scoping: a symbol the caller does not rely on is not re-checked *)
  match Vmsh.Symbol_analysis.revalidate ~names:[ bystander ] mem ~cr3 anal with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bystander symbol dragged in: %s" e

let test_revalidate_catches_moved_table () =
  let _, vm, cr3, mem, anal = analysis_fixture ~seed:61 in
  (* corrupt the first entries of the ksymtab table itself *)
  let table_phys = 0x40_0000 + 0x12_0000 in
  Kvm.Vm.write_phys vm table_phys (Bytes.make 16 '\xA5');
  match Vmsh.Symbol_analysis.revalidate mem ~cr3 anal with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted table must fail full revalidation"

let robustness_suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "vmsh.robustness",
      [
        t "detach then reattach" test_detach_then_reattach;
        t "multi-vcpu attach" test_multi_vcpu_attach;
        QCheck_alcotest.to_alcotest test_loader_region_never_overlaps;
        t "corrupted ksymtab" test_analysis_rejects_corrupted_ksymtab;
        t "revalidate: clean guest passes" test_revalidate_clean_guest_passes;
        t "revalidate: mutated symbol caught"
          test_revalidate_catches_mutated_symbol;
        t "revalidate: corrupted table caught"
          test_revalidate_catches_moved_table;
      ] );
  ]
