(* The fleet attach engine and the redesigned session API: scheduler
   determinism, config-builder validation, the error taxonomy's
   round-trips, and the cache-accelerated concurrent attach itself. *)

module H = Hostos
module E = Vmsh.Vmsh_error

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstr = Alcotest.string

(* --- scheduler --- *)

let test_sched_orders_by_virtual_time () =
  (* three fibers burning different per-slice costs: the trace must
     always resume the fiber whose clock is furthest behind *)
  let sched = Sched.create () in
  let order = Buffer.create 64 in
  Sched.set_tracer sched
    (Some (fun ~name ~now_ns:_ -> Buffer.add_string order (name ^ ";")));
  let fiber name cost =
    let clock = H.Clock.create () in
    Sched.spawn sched ~name ~clock (fun () ->
        for _ = 1 to 3 do
          H.Clock.advance clock cost;
          Sched.yield ()
        done)
  in
  fiber "slow" 300.;
  fiber "fast" 100.;
  let outcomes = Sched.run sched in
  List.iter
    (fun (n, o) -> check cbool (n ^ " done") true (o = Sched.Done))
    outcomes;
  (* both start at t=0 (spawn order breaks the tie), then fast runs
     three slices for every one of slow's *)
  (* the final "slow;slow;" is the run-to-completion pair: once fast
     finishes at t=300, slow owns the tail of the schedule *)
  check cstr "interleave"
    "slow;fast;fast;fast;slow;fast;slow;slow;" (Buffer.contents order);
  check cint "yields counted" 6 (Sched.yields sched)

let test_sched_captures_fiber_failure () =
  let sched = Sched.create () in
  let clock = H.Clock.create () in
  Sched.spawn sched ~name:"ok" ~clock (fun () -> Sched.yield ());
  Sched.spawn sched ~name:"bad" ~clock:(H.Clock.create ()) (fun () ->
      failwith "boom");
  match Sched.run sched with
  | [ ("ok", Sched.Done); ("bad", Sched.Failed e) ] ->
      check cstr "failure preserved" "boom"
        (match e with Failure m -> m | _ -> Printexc.to_string e)
  | outcomes ->
      Alcotest.failf "unexpected outcomes (%d fibers)" (List.length outcomes)

let test_yield_outside_run_is_noop () =
  Sched.yield ();
  Sched.yield ()

(* --- config builder --- *)

let validate c =
  match Vmsh.Attach.Config.validate c with
  | Ok _ -> Ok ()
  | Error m -> Error m

let test_config_defaults_valid () =
  check cbool "defaults validate" true
    (Result.is_ok (validate (Vmsh.Attach.Config.make ())))

let test_config_rejects_pci_wrap_conflict () =
  let c =
    Vmsh.Attach.Config.with_pci true
      (Vmsh.Attach.Config.with_transport Vmsh.Devices.Wrap_syscall
         (Vmsh.Attach.Config.make ()))
  in
  match validate c with
  | Ok () -> Alcotest.fail "pci + wrap_syscall must be rejected"
  | Error m -> check cbool "names the conflict" true (String.length m > 0)

let test_config_rejects_miscabled_net () =
  let h = H.Host.create ~seed:3 () in
  let fabric_a = Net.Fabric.of_host h in
  let h2 = H.Host.create ~seed:4 () in
  let fabric_b = Net.Fabric.of_host h2 in
  let link = Net.Link.create fabric_b ~name:"wrong" () in
  let c =
    Vmsh.Attach.Config.with_net
      { Vmsh.Attach.fabric = fabric_a; port = Net.Link.a link }
      (Vmsh.Attach.Config.make ())
  in
  (match validate c with
  | Ok () -> Alcotest.fail "port on another fabric must be rejected"
  | Error _ -> ());
  (* correctly cabled passes *)
  let good =
    Vmsh.Attach.Config.with_net
      { Vmsh.Attach.fabric = fabric_b; port = Net.Link.a link }
      (Vmsh.Attach.Config.make ())
  in
  check cbool "same fabric validates" true (Result.is_ok (validate good))

let test_config_rejects_bad_pid_and_command () =
  let bad_pid =
    Vmsh.Attach.Config.with_container_pid 0 (Vmsh.Attach.Config.make ())
  in
  check cbool "pid 0 rejected" true (Result.is_error (validate bad_pid));
  let bad_cmd =
    Vmsh.Attach.Config.with_command "" (Vmsh.Attach.Config.make ())
  in
  check cbool "empty command rejected" true (Result.is_error (validate bad_cmd))

let test_invalid_config_surfaces_through_attach () =
  let env = Test_attach.setup ~seed:51 () in
  let config =
    Vmsh.Attach.Config.with_pci true
      (Vmsh.Attach.Config.with_transport Vmsh.Devices.Wrap_syscall
         (Vmsh.Attach.Config.make ()))
  in
  match Test_attach.do_attach ~config env with
  | Ok _ -> Alcotest.fail "invalid config must not attach"
  | Error e ->
      check cbool "rendered as invalid attach config" true
        (String.length e >= 21 && String.sub e 0 21 = "invalid attach config")

(* --- error taxonomy --- *)

let test_error_roundtrips () =
  let cases =
    [
      E.Attach_aborted (E.Msg "tracee has no threads");
      E.Attach_aborted (E.Guest_fault "triple fault");
      E.Guest_error Vmsh.Klib_builder.status_err_blk;
      E.Guest_fault "bad opcode";
      E.Substrate H.Errno.EPERM;
      E.Injection ("ptrace attach", H.Errno.EACCES);
      E.Injection ("injected ioctl failed", H.Errno.EINTR);
      E.Timeout 1;
      E.Invalid_config "container_pid must be positive";
      E.Context ("KVM_SET_GSI_ROUTING", E.Substrate H.Errno.EINVAL);
      E.Context
        ( "reading vCPU registers",
          E.Injection ("injection transport", H.Errno.ESRCH) );
      E.Deadline_exceeded 1_000_000_001;
      E.Context ("guest-ready poll", E.Deadline_exceeded 2_000_000_000);
      E.Rollback_failed (E.Context ("remote eventfd", E.Substrate H.Errno.EBADF));
      E.Attach_aborted
        (E.Rollback_failed
           (E.Injection ("injected munmap failed", H.Errno.EBADF)));
    ]
  in
  List.iter
    (fun e ->
      let rendered = E.to_string e in
      check cbool
        ("roundtrip: " ^ rendered)
        true
        (E.of_string rendered = e))
    cases

let test_error_strings_preserve_legacy_messages () =
  check cstr "guest status note"
    "guest library failed with status 0x82 (block device registration)"
    (E.to_string (E.Guest_error Vmsh.Klib_builder.status_err_blk));
  check cstr "attach aborted prefix" "attach aborted: guest error: boom"
    (E.to_string (E.Attach_aborted (E.Guest_fault "boom")));
  check cstr "injection style"
    ("ptrace attach: errno " ^ H.Errno.show H.Errno.EPERM)
    (E.to_string (E.Injection ("ptrace attach", H.Errno.EPERM)));
  check cstr "substrate context"
    ("bind /run/x.sock: " ^ H.Errno.show H.Errno.EACCES)
    (E.to_string (E.substrate "bind /run/x.sock" H.Errno.EACCES))

(* --- device registry --- *)

let test_gsi_plan_matches_legacy_assignment () =
  match
    Vmsh.Devices.gsi_plan
      [ Vmsh.Devices.Console; Vmsh.Devices.Blk; Vmsh.Devices.Net;
        Vmsh.Devices.Ninep ]
  with
  | [ (Vmsh.Devices.Console, 24); (Vmsh.Devices.Blk, 25);
      (Vmsh.Devices.Net, 26); (Vmsh.Devices.Ninep, 27) ] ->
      ()
  | plan -> Alcotest.failf "unexpected plan (%d entries)" (List.length plan)

(* --- fleet engine --- *)

let test_fleet_attaches_all_sessions () =
  let r = Fleet.run ~seed:5 ~vms:3 () in
  check cint "three sessions" 3 (List.length r.Fleet.r_sessions);
  List.iter
    (fun s ->
      check cbool (s.Fleet.s_name ^ " attached") true
        (Result.is_ok s.Fleet.s_result))
    r.Fleet.r_sessions;
  check cbool "scheduler interleaved" true (r.Fleet.r_yields > 0);
  check cbool "schedule nonempty" true (String.length r.Fleet.r_schedule > 0)

let test_fleet_shares_symbol_cache () =
  let r = Fleet.run ~seed:6 ~vms:4 () in
  check cint "one full analysis" 1 r.Fleet.r_cache_misses;
  check cint "rest hit the cache" 3 r.Fleet.r_cache_hits;
  (* the hit must be measurably cheaper: every cached session attaches
     faster than the one that paid the image scan *)
  match r.Fleet.r_sessions with
  | first :: rest ->
      List.iter
        (fun s ->
          check cbool (s.Fleet.s_name ^ " faster than cold attach") true
            (s.Fleet.s_attach_ns < first.Fleet.s_attach_ns))
        rest
  | [] -> Alcotest.fail "no sessions"

let test_fleet_no_sharing_all_miss () =
  let r = Fleet.run ~seed:6 ~vms:2 ~share_symbols:false () in
  check cint "no hits" 0 r.Fleet.r_cache_hits;
  check cint "no misses counted (no cache armed)" 0 r.Fleet.r_cache_misses

let test_fleet_deterministic () =
  (* the acceptance bar: two identical runs, byte-identical schedules
     and metrics *)
  let run () =
    let r = Fleet.run ~seed:7 ~vms:8 () in
    let obs = Observe.create ~now:(fun () -> 0.0) () in
    Fleet.record (Observe.metrics obs) ~label:"n8" r;
    (r.Fleet.r_schedule, Observe.Export.metrics_json obs)
  in
  let sched_a, metrics_a = run () in
  let sched_b, metrics_b = run () in
  check cstr "byte-identical schedule" sched_a sched_b;
  check cstr "byte-identical metrics" metrics_a metrics_b;
  check cbool "schedule mentions every session" true
    (List.for_all
       (fun i ->
         let needle = Printf.sprintf " vm%d " i in
         let hay = " " ^ sched_a ^ " " in
         let rec find j =
           j + String.length needle <= String.length hay
           && (String.sub hay j (String.length needle) = needle
              || find (j + 1))
         in
         find 0)
       [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_fleet_merged_metrics () =
  let r = Fleet.run ~seed:9 ~vms:3 () in
  let json = Fleet.metrics_json r in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i =
      i + nl <= hl && (String.sub json i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      check cbool ("metrics_json carries " ^ needle) true (contains needle))
    [
      (* merged fleet-wide registry plus the per-session breakdown *)
      "\"fleet\"";
      "\"sessions\"";
      "\"vm0\"";
      "\"vm1\"";
      "\"vm2\"";
      (* fleet-level summary only the aggregate can know *)
      "\"fleet.attach_ns.fleet\"";
      "\"fleet.yields.fleet\"";
      (* per-stage pipeline profile folded in from every session *)
      "\"stage.attach.total_ns\"";
      "\"symcache.hits\"";
    ];
  check cbool "no failures counter on a clean run" false
    (contains "\"fleet.failures.fleet\"");
  (* the merged document must be as deterministic as the run itself *)
  check cstr "byte-identical merged metrics" json
    (Fleet.metrics_json (Fleet.run ~seed:9 ~vms:3 ()));
  (* the fleet digest folds every session digest, so it is non-empty
     and stable across identical runs *)
  check cstr "stable fleet digest" (Fleet.digest r)
    (Fleet.digest (Fleet.run ~seed:9 ~vms:3 ()))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "sched",
      [
        t "resumes smallest virtual time" test_sched_orders_by_virtual_time;
        t "captures fiber failure" test_sched_captures_fiber_failure;
        t "yield outside run is noop" test_yield_outside_run_is_noop;
      ] );
    ( "attach.config",
      [
        t "defaults valid" test_config_defaults_valid;
        t "pci + wrap_syscall rejected" test_config_rejects_pci_wrap_conflict;
        t "miscabled net rejected" test_config_rejects_miscabled_net;
        t "bad pid / empty command rejected"
          test_config_rejects_bad_pid_and_command;
        t "invalid config surfaces through attach"
          test_invalid_config_surfaces_through_attach;
      ] );
    ( "vmsh.errors",
      [
        t "to_string/of_string roundtrip" test_error_roundtrips;
        t "legacy messages preserved" test_error_strings_preserve_legacy_messages;
      ] );
    ( "devices.registry",
      [ t "gsi plan matches legacy" test_gsi_plan_matches_legacy_assignment ] );
    ( "fleet",
      [
        t "all sessions attach" test_fleet_attaches_all_sessions;
        t "symbol cache shared" test_fleet_shares_symbol_cache;
        t "sharing can be disabled" test_fleet_no_sharing_all_miss;
        t "vms=8 byte-identical runs" test_fleet_deterministic;
        t "merged metrics document" test_fleet_merged_metrics;
      ] );
  ]
